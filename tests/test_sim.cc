/**
 * @file
 * Tests of the trace-driven CPU model: cache behaviour, core timing,
 * deallocation paths, and the workload generators.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "mem/controller.h"
#include "sim/cache.h"
#include "sim/core.h"
#include "sim/workloads.h"

namespace codic {
namespace {

// --- Cache. ---

TEST(Cache, MissThenHit)
{
    Cache c(4096, 2);
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(63, false).hit); // Same line.
    EXPECT_FALSE(c.access(64, false).hit); // Next line.
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way, 2 sets, 64 B lines: addresses 0, 128, 256 share set 0.
    Cache c(256, 2);
    c.access(0, false);
    c.access(128, false);
    c.access(0, false);   // Refresh line 0.
    c.access(256, false); // Evicts 128 (LRU).
    EXPECT_TRUE(c.access(0, false).hit);
    EXPECT_FALSE(c.access(128, false).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(256, 2);
    c.access(0, true); // Dirty.
    c.access(128, false);
    const auto r = c.access(256, false); // Evicts dirty line 0.
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_addr, 0u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c(256, 2);
    c.access(0, false);
    c.access(128, false);
    EXPECT_FALSE(c.access(256, false).writeback);
}

TEST(Cache, FlushLineReportsDirtiness)
{
    Cache c(4096, 2);
    c.access(0, true);
    EXPECT_TRUE(c.flushLine(0));
    EXPECT_FALSE(c.access(0, false).hit); // Invalidated.
    c.access(64, false);
    EXPECT_FALSE(c.flushLine(64)); // Clean.
    EXPECT_FALSE(c.flushLine(8192)); // Absent.
}

TEST(Cache, InvalidateRangeDropsAllLines)
{
    Cache c(8192, 4);
    for (uint64_t a = 0; a < 1024; a += 64)
        c.access(a, true);
    c.invalidateRange(0, 1024);
    for (uint64_t a = 0; a < 1024; a += 64)
        EXPECT_FALSE(c.flushLine(a));
}

TEST(Cache, WritePropagatesDirtyOnHit)
{
    Cache c(256, 2);
    c.access(0, false);
    c.access(0, true); // Hit, now dirty.
    c.access(128, false);
    EXPECT_TRUE(c.access(256, false).writeback);
}

// --- Core. ---

struct CoreHarness
{
    DramChannel channel{DramConfig::ddr3_1600(256)};
    MemoryController controller{channel};
    CoreConfig config;
    InOrderCore core{controller, config};
};

TEST(Core, ComputeTimeMatchesClock)
{
    CoreHarness h;
    Workload w{"t", {{OpType::Compute, 0, 3200}}};
    h.core.bind(&w);
    const double end = h.core.run();
    EXPECT_NEAR(end, 1000.0, 1.0); // 3200 instr at 3.2 GHz = 1 us.
    EXPECT_EQ(h.core.stats().instructions, 3200u);
}

TEST(Core, CacheHitLoadIsFasterThanMiss)
{
    CoreHarness h1;
    Workload miss{"m", {{OpType::Load, 0, 0}}};
    h1.core.bind(&miss);
    const double t_miss = h1.core.run();

    CoreHarness h2;
    Workload hit{"h",
                 {{OpType::Load, 0, 0}, {OpType::Load, 0, 0}}};
    h2.core.bind(&hit);
    const double t_two = h2.core.run();
    // The second (hit) load adds only ~one CPU cycle.
    EXPECT_LT(t_two - t_miss, 5.0);
    EXPECT_GT(t_miss, 20.0); // DRAM access dominates the miss.
}

TEST(Core, StoreMissFetchesLine)
{
    CoreHarness h;
    Workload w{"s", {{OpType::Store, 0, 0}}};
    h.core.bind(&w);
    h.core.run();
    EXPECT_EQ(h.channel.counts().rd, 1u); // Read-for-ownership.
}

TEST(Core, SoftwareDeallocZeroesEveryLine)
{
    CoreHarness h;
    Workload w{"d", {{OpType::DeallocRegion, 0, 8192}}};
    h.core.bind(&w);
    h.core.run();
    EXPECT_EQ(h.core.stats().dealloc_lines_zeroed, 128u);
    EXPECT_EQ(h.core.stats().dealloc_rows, 0u);
}

TEST(Core, HardwareDeallocIssuesRowOps)
{
    CoreHarness h;
    h.config.dealloc = DeallocMode::CodicDet;
    InOrderCore core(h.controller, h.config);
    Workload w{"d", {{OpType::DeallocRegion, 0, 16384}}};
    core.bind(&w);
    core.run();
    EXPECT_EQ(core.stats().dealloc_rows, 2u);
    EXPECT_EQ(core.stats().dealloc_lines_zeroed, 0u);
    EXPECT_EQ(h.channel.counts().codic, 2u);
}

TEST(Core, HardwareDeallocInvalidatesCachedCopies)
{
    CoreHarness h;
    h.config.dealloc = DeallocMode::RowClone;
    InOrderCore core(h.controller, h.config);
    // Touch the region (dirty lines), then dealloc; the dirty lines
    // must not be written back afterwards (they are dead).
    std::vector<TraceOp> ops;
    for (uint64_t a = 8192; a < 16384; a += 64)
        ops.push_back({OpType::Store, a, 0});
    ops.push_back({OpType::DeallocRegion, 8192, 8192});
    Workload w{"d", ops};
    core.bind(&w);
    core.run();
    const uint64_t writes_before = h.channel.counts().wr;
    h.controller.drainWrites();
    EXPECT_EQ(h.channel.counts().wr, writes_before);
}

TEST(Core, SoftwareDeallocSlowerThanHardware)
{
    Workload w{"d", {{OpType::DeallocRegion, 0, 65536}}};
    CoreHarness hw;
    hw.config.dealloc = DeallocMode::CodicDet;
    InOrderCore fast(hw.controller, hw.config);
    fast.bind(&w);
    const double t_hw = fast.run();

    CoreHarness sw;
    InOrderCore slow(sw.controller, sw.config);
    slow.bind(&w);
    const double t_sw = slow.run();
    EXPECT_GT(t_sw, 10.0 * t_hw);
}

TEST(Core, FlushWritesBackDirtyLine)
{
    CoreHarness h;
    Workload w{"f", {{OpType::Store, 0, 0}, {OpType::Flush, 0, 0}}};
    h.core.bind(&w);
    h.core.run();
    h.controller.drainWrites();
    EXPECT_GE(h.channel.counts().wr, 1u);
}

// --- Workloads. ---

TEST(Workloads, DeallocRegionsAreRowAligned)
{
    const Workload w =
        generateWorkload(benchmarkParams("malloc", 1));
    for (const auto &op : w.ops) {
        if (op.type != OpType::DeallocRegion)
            continue;
        EXPECT_EQ(op.addr % 8192, 0u);
        EXPECT_EQ(op.count % 8192, 0u);
        EXPECT_GT(op.count, 0u);
    }
}

TEST(Workloads, IntensiveBenchmarksDeallocate)
{
    for (const auto &name : allocationIntensiveBenchmarks()) {
        const Workload w = generateWorkload(benchmarkParams(name, 2));
        EXPECT_GT(w.deallocBytes(), 0u) << name;
        EXPECT_GT(w.instructionCount(), 0u) << name;
    }
}

TEST(Workloads, BackgroundBenchmarksDoNot)
{
    for (const auto &name : backgroundBenchmarks()) {
        const Workload w = generateWorkload(benchmarkParams(name, 2));
        EXPECT_EQ(w.deallocBytes(), 0u) << name;
    }
}

TEST(Workloads, UnknownBenchmarkIsFatal)
{
    EXPECT_THROW(benchmarkParams("nonsense", 1), FatalError);
}

TEST(Workloads, GenerationIsDeterministicPerSeed)
{
    const Workload a = generateWorkload(benchmarkParams("shell", 9));
    const Workload b = generateWorkload(benchmarkParams("shell", 9));
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t i = 0; i < a.ops.size(); ++i)
        EXPECT_EQ(a.ops[i].addr, b.ops[i].addr);
}

TEST(Workloads, RepresentativeMixesMatchTable9)
{
    const auto mixes = representativeMixes(1);
    ASSERT_EQ(mixes.size(), 5u);
    for (const auto &mix : mixes)
        EXPECT_EQ(mix.traces.size(), 4u);
    EXPECT_EQ(mixes[0].traces[0].name, "malloc");
    EXPECT_EQ(mixes[2].traces[2].name, "pagerank");
}

TEST(Workloads, RandomMixesPairIntensiveWithBackground)
{
    const auto mixes = randomMixes(10, 3);
    ASSERT_EQ(mixes.size(), 10u);
    for (const auto &mix : mixes) {
        ASSERT_EQ(mix.traces.size(), 4u);
        EXPECT_GT(mix.traces[0].deallocBytes(), 0u);
        EXPECT_GT(mix.traces[1].deallocBytes(), 0u);
        EXPECT_EQ(mix.traces[2].deallocBytes(), 0u);
        EXPECT_EQ(mix.traces[3].deallocBytes(), 0u);
    }
}

TEST(Workloads, TraceStatsHelpers)
{
    Workload w{"t",
               {{OpType::Compute, 0, 100},
                {OpType::Store, 0, 0},
                {OpType::Load, 64, 0},
                {OpType::DeallocRegion, 8192, 16384}}};
    EXPECT_EQ(w.deallocBytes(), 16384u);
    EXPECT_EQ(w.instructionCount(), 100u + 8u + 1u + 1u);
}

} // namespace
} // namespace codic
