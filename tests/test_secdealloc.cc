/**
 * @file
 * Tests of the secure-deallocation evaluation (paper Appendix A,
 * Figs. 8 and 9): hardware mechanisms beat the software baseline on
 * time and energy for every allocation-intensive benchmark, single-
 * and multi-core.
 */

#include <gtest/gtest.h>

#include "secdealloc/evaluate.h"

namespace codic {
namespace {

TEST(Metrics, SpeedupAndSavingsMath)
{
    DeallocRunResult base;
    base.time_ns = 200.0;
    base.energy_nj = 100.0;
    DeallocRunResult fast;
    fast.time_ns = 100.0;
    fast.energy_nj = 80.0;
    EXPECT_DOUBLE_EQ(speedupOver(base, fast), 1.0);
    EXPECT_DOUBLE_EQ(energySavings(base, fast), 0.2);
}

class SingleCoreBenchTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SingleCoreBenchTest, HardwareBeatsSoftwareOnTimeAndEnergy)
{
    const auto c = compareSingleCore(GetParam());
    // Paper Fig. 8: all hardware approaches improve performance (up
    // to 21 %) and energy (up to 34 %) over software zeroing.
    EXPECT_GT(c.codic_speedup, 0.02);
    EXPECT_LT(c.codic_speedup, 0.25);
    EXPECT_GT(c.rowclone_speedup, 0.02);
    EXPECT_GT(c.lisa_speedup, 0.02);
    EXPECT_GT(c.codic_energy, 0.05);
    EXPECT_LT(c.codic_energy, 0.45);
    // CODIC never loses to the clone mechanisms.
    EXPECT_GE(c.codic_energy + 1e-9, c.rowclone_energy);
    EXPECT_GE(c.rowclone_energy + 1e-9, c.lisa_energy);
    EXPECT_GE(c.codic_speedup + 0.002, c.rowclone_speedup);
    EXPECT_GE(c.codic_speedup + 0.002, c.lisa_speedup);
}

INSTANTIATE_TEST_SUITE_P(
    Table8, SingleCoreBenchTest,
    ::testing::Values("mysql", "memcached", "compiler", "bootup",
                      "shell", "malloc"));

TEST(SingleCore, MallocIsTheMostAllocationBound)
{
    const auto stress = compareSingleCore("malloc");
    const auto gcc = compareSingleCore("compiler");
    EXPECT_GT(stress.codic_speedup, gcc.codic_speedup);
}

TEST(SingleCore, RunReportsConsistentStats)
{
    const Workload w =
        generateWorkload(benchmarkParams("shell", 11));
    const auto sw = runSingleCore(w, DeallocMode::SoftwareZero);
    const auto hw = runSingleCore(w, DeallocMode::CodicDet);
    EXPECT_GT(sw.core_stats.dealloc_lines_zeroed, 0u);
    EXPECT_EQ(hw.core_stats.dealloc_lines_zeroed, 0u);
    EXPECT_GT(hw.core_stats.dealloc_rows, 0u);
    EXPECT_EQ(hw.commands.codic, hw.core_stats.dealloc_rows);
    EXPECT_GT(sw.time_ns, hw.time_ns);
}

TEST(MultiCore, MixesImproveUnderHardwareDealloc)
{
    const auto mixes = representativeMixes(77);
    const auto c = compareMultiCore(mixes[0]);
    // Paper Fig. 9: positive but smaller than single-core (only two
    // of four cores deallocate).
    EXPECT_GT(c.codic_speedup, 0.01);
    EXPECT_LT(c.codic_speedup, 0.20);
    EXPECT_GT(c.codic_energy, 0.03);
}

TEST(MultiCore, AllRepresentativeMixesImprove)
{
    for (const auto &mix : representativeMixes(42)) {
        const auto c = compareMultiCore(mix);
        EXPECT_GT(c.codic_speedup, 0.0) << mix.name;
        EXPECT_GT(c.rowclone_speedup, 0.0) << mix.name;
        EXPECT_GT(c.lisa_speedup, 0.0) << mix.name;
        EXPECT_GT(c.codic_energy, 0.0) << mix.name;
    }
}

TEST(MultiCore, SharedChannelSlowsIndividualCores)
{
    // The same trace takes longer per core when three other cores
    // contend for the channel.
    const auto mixes = representativeMixes(5);
    const auto mc =
        runMultiCore(mixes[0], DeallocMode::SoftwareZero);
    const auto sc =
        runSingleCore(mixes[0].traces[0], DeallocMode::SoftwareZero);
    EXPECT_GT(mc.time_ns, sc.time_ns);
}

} // namespace
} // namespace codic
