/**
 * @file
 * Tests of the multi-channel DramSystem layer: channel-aware address
 * mapping (round-trip property over every scheme x channel x rank
 * combination), request routing, per-channel counter roll-up against
 * single-channel totals, channel-level timing parallelism, and the
 * system-facing safe interface. The JEDEC timing checker stays armed
 * on every channel in all of these (any violation panics).
 */

#include <gtest/gtest.h>

#include <limits>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "dram/system.h"
#include "mem/safe_interface.h"
#include "scenario/scheduler_workloads.h"
#include "sim/core.h"
#include "power/energy_model.h"

namespace codic {
namespace {

// --- Address map: channel + rank interleaving schemes. ---

struct MapCase
{
    MapScheme scheme;
    int channels;
    int ranks;
};

class ChannelMapTest : public ::testing::TestWithParam<MapCase>
{
};

TEST_P(ChannelMapTest, DecodeEncodeRoundTripAndInRange)
{
    const auto [scheme, channels, ranks] = GetParam();
    const DramConfig cfg = DramConfig::ddr3_1600(256, channels, ranks);
    AddressMap map(cfg, scheme);
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t addr =
            rng.below(static_cast<uint64_t>(map.capacityBytes()) / 64) *
            64;
        const Address a = map.decode(addr);
        EXPECT_GE(a.channel, 0);
        EXPECT_LT(a.channel, channels);
        EXPECT_GE(a.rank, 0);
        EXPECT_LT(a.rank, ranks);
        EXPECT_EQ(map.encode(a), addr);
    }
    // The map is a bijection onto the capacity: the extreme coordinate
    // encodes to the last burst.
    Address top;
    top.channel = channels - 1;
    top.rank = ranks - 1;
    top.bank = cfg.banks - 1;
    top.row = cfg.rows - 1;
    top.column = cfg.columns - 1;
    EXPECT_EQ(map.encode(top),
              static_cast<uint64_t>(map.capacityBytes()) -
                  static_cast<uint64_t>(cfg.burst_bytes));
}

std::vector<MapCase>
allMapCases()
{
    std::vector<MapCase> cases;
    for (MapScheme s : allMapSchemes())
        for (int channels : {1, 2, 4})
            for (int ranks : {1, 2})
                cases.push_back({s, channels, ranks});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ChannelMapTest,
                         ::testing::ValuesIn(allMapCases()));

TEST(ChannelMap, LineInterleaveAlternatesChannelsPerBurst)
{
    const DramConfig cfg = DramConfig::ddr3_1600(256, 4);
    AddressMap map(cfg, MapScheme::RowBankColumnChannel);
    for (uint64_t line = 0; line < 64; ++line)
        EXPECT_EQ(map.decode(line * 64).channel,
                  static_cast<int>(line % 4));
}

TEST(ChannelMap, RowBlockInterleaveKeepsRowsWhole)
{
    // RowChannelBankColumn: one row-sized phys block = exactly one
    // DRAM row, and consecutive blocks walk banks then channels (the
    // property the secure-dealloc row ops rely on).
    const DramConfig cfg = DramConfig::ddr3_1600(256, 4);
    AddressMap map(cfg, MapScheme::RowChannelBankColumn);
    const uint64_t row_bytes = static_cast<uint64_t>(cfg.row_bytes);
    for (uint64_t block = 0; block < 64; ++block) {
        const Address first = map.decode(block * row_bytes);
        const Address last =
            map.decode((block + 1) * row_bytes - 64);
        EXPECT_EQ(first.channel, last.channel);
        EXPECT_EQ(first.bank, last.bank);
        EXPECT_EQ(first.row, last.row);
        EXPECT_EQ(first.column, 0);
        EXPECT_EQ(last.column, cfg.columns - 1);
    }
    // 8 banks x 4 channels of row blocks before the row advances.
    EXPECT_EQ(map.decode(8 * row_bytes).channel, 1);
    EXPECT_EQ(map.decode(32 * row_bytes).row, 1);
}

TEST(ChannelMap, SchemeNamesAreDistinct)
{
    for (MapScheme a : allMapSchemes())
        for (MapScheme b : allMapSchemes())
            if (a != b)
                EXPECT_STRNE(mapSchemeName(a), mapSchemeName(b));
}

// --- Config validation: channels/ranks are honored or rejected. ---

TEST(DramConfigValidation, RejectsNonPositiveChannelsOrRanks)
{
    DramConfig cfg = DramConfig::ddr3_1600(64);
    cfg.channels = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    EXPECT_THROW(DramSystem{cfg}, FatalError);
    EXPECT_THROW(DramChannel{cfg}, FatalError);

    cfg.channels = 1;
    cfg.ranks = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(DramConfigValidation, PresetSpreadsCapacityOverChannels)
{
    const DramConfig one = DramConfig::ddr3_1600(512);
    const DramConfig four = DramConfig::ddr3_1600(512, 4);
    EXPECT_EQ(four.channels, 4);
    EXPECT_EQ(four.rows * 4, one.rows);
    EXPECT_EQ(four.capacityBytes(), one.capacityBytes());
    EXPECT_EQ(four.totalRows(), one.totalRows());
}

TEST(DramChannelId, CommandsForAnotherChannelPanic)
{
    const DramConfig cfg = DramConfig::ddr3_1600(256, 2);
    DramChannel ch(cfg, 0);
    Command act;
    act.type = CommandType::Act;
    act.addr.channel = 1; // Belongs to channel 1 of the module.
    EXPECT_THROW(ch.issue(act, 0), PanicError);
    EXPECT_THROW(ch.earliest(act), PanicError);
}

// --- DramSystem routing and counter roll-up. ---

TEST(DramSystem, RoutesRequestsToOwningChannel)
{
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem sys(DramConfig::ddr3_1600(256, 4), cc);

    // Four consecutive lines land on four different channels.
    for (uint64_t line = 0; line < 4; ++line)
        sys.read(line * 64, 0);
    for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(sys.channel(c).counts().rd, 1u) << "channel " << c;
        EXPECT_EQ(sys.channel(c).counts().act, 1u) << "channel " << c;
    }
    const CommandCounts total = sys.totalCounts();
    EXPECT_EQ(total.rd, 4u);
    EXPECT_EQ(total.act, 4u);

    // Roll-up equals the sum of the per-channel counters.
    CommandCounts sum;
    for (const CommandCounts &c : sys.perChannelCounts())
        sum += c;
    EXPECT_EQ(sum.total(), total.total());
}

TEST(DramSystem, FourChannelCountsSumToSingleChannelTotals)
{
    // A channel-independent workload: every line of a 4 MB region
    // read exactly once, in address order. Whatever the mapping, each
    // DRAM row the region touches is opened exactly once and read
    // column by column, so ACT/RD totals must match between a
    // 1-channel and a 4-channel module of the same capacity.
    constexpr uint64_t kLines = 65536;
    auto sweep = [](DramSystem &sys) {
        Cycle t = 0;
        for (uint64_t line = 0; line < kLines; ++line)
            t = sys.read(line * 64, t);
    };

    DramSystem one(DramConfig::ddr3_1600(256, 1));
    sweep(one);

    ControllerConfig cc4;
    cc4.map_scheme = MapScheme::RowChannelBankColumn;
    DramSystem four(DramConfig::ddr3_1600(256, 4), cc4);
    sweep(four);

    const CommandCounts t1 = one.totalCounts();
    const CommandCounts t4 = four.totalCounts();
    EXPECT_EQ(t4.rd, t1.rd);
    EXPECT_EQ(t4.rd, kLines);
    EXPECT_EQ(t4.act, t1.act);
    // Every channel took a share and its checker stayed armed.
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(four.channel(c).counts().rd, 0u) << "channel " << c;
    // Precharges differ only by rows left open at the end (<= banks
    // per channel x channels).
    EXPECT_NEAR(static_cast<double>(t4.pre),
                static_cast<double>(t1.pre), 4.0 * 8.0);
}

TEST(DramSystem, RowOpSweepZeroesWholeModuleOnAnyChannelCount)
{
    for (int channels : {1, 4}) {
        ControllerConfig cc;
        if (channels > 1)
            cc.map_scheme = MapScheme::RowChannelBankColumn;
        DramSystem sys(DramConfig::ddr3_1600(64, channels), cc);
        sys.fillAllRows(RowDataState::Data);
        const int64_t rows = sys.config().totalRows();
        const uint64_t row_bytes =
            static_cast<uint64_t>(sys.config().row_bytes);
        Cycle t = 0;
        for (int64_t r = 0; r < rows; ++r)
            t = sys.rowOp(static_cast<uint64_t>(r) * row_bytes, t,
                          RowOpMechanism::CodicDet);
        EXPECT_EQ(sys.totalCounts().codic,
                  static_cast<uint64_t>(rows))
            << channels << " channels";
        EXPECT_EQ(sys.countRowsInState(RowDataState::Zeroes), rows)
            << channels << " channels";
        EXPECT_EQ(sys.countRowsInState(RowDataState::Data), 0)
            << channels << " channels";
    }
}

TEST(DramSystem, ChannelParallelismShortensIndependentReadMakespan)
{
    // Independent line reads arriving back to back: a single channel
    // serializes bursts on its data bus, four channels overlap them.
    constexpr uint64_t kLines = 4096;
    auto makespan = [](DramSystem &sys) {
        Cycle last = 0;
        for (uint64_t line = 0; line < kLines; ++line)
            last = std::max(
                last, sys.read(line * 64, static_cast<Cycle>(line)));
        return last;
    };

    DramSystem one(DramConfig::ddr3_1600(256, 1));
    ControllerConfig cc4;
    cc4.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem four(DramConfig::ddr3_1600(256, 4), cc4);

    const Cycle t1 = makespan(one);
    const Cycle t4 = makespan(four);
    EXPECT_LT(t4 * 2, t1); // At least 2x from 4 channels.
}

TEST(DramSystem, DrainWritesCoversEveryChannel)
{
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem sys(DramConfig::ddr3_1600(256, 2), cc);
    for (uint64_t line = 0; line < 16; ++line)
        sys.write(line * 64, 0);
    const Cycle drained = sys.drainWrites();
    EXPECT_GE(drained, sys.lastIssueCycle());
    EXPECT_EQ(sys.totalCounts().wr, 16u);
    EXPECT_EQ(sys.pendingWriteCount(), 0u);
    EXPECT_GT(sys.channel(0).counts().wr, 0u);
    EXPECT_GT(sys.channel(1).counts().wr, 0u);
}

// --- Scheduler policy: write-drain batching and its invariants. ---

TEST(SchedulerPolicy, ValidateRejectsInconsistentKnobs)
{
    SchedulerPolicy p;
    p.drain_high_pct = 101;
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.drain_low_pct = p.drain_high_pct + 1;
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.max_drain_batch = 0;
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.replay_batch = 0;
    EXPECT_THROW(p.validate(), FatalError);

    DramConfig cfg = DramConfig::ddr3_1600(64);
    cfg.scheduler.max_drain_batch = -3;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SchedulerPolicy, PresetsResolveAndUnknownNameIsFatal)
{
    for (const auto &name : SchedulerPolicy::presetNames())
        EXPECT_NO_THROW(SchedulerPolicy::preset(name).validate())
            << name;
    EXPECT_EQ(SchedulerPolicy::preset("eager").max_drain_batch, 1);
    EXPECT_EQ(SchedulerPolicy::preset("eager").replay_batch, 1);
    // The bare DramConfig default is the eager legacy policy: the
    // paper campaigns (Fig. 8 software-zeroing baselines) depend on
    // it.
    EXPECT_EQ(DramConfig{}.scheduler.drain_high_pct,
              SchedulerPolicy::preset("eager").drain_high_pct);
    EXPECT_EQ(DramConfig{}.scheduler.max_drain_batch, 1);
    EXPECT_EQ(SchedulerPolicy::preset("batched").replay_batch, 8);
    EXPECT_THROW(SchedulerPolicy::preset("no_such_policy"),
                 FatalError);
}

TEST(SchedulerPolicy, DrainedWritesEqualAcceptedWrites)
{
    for (const auto &name : SchedulerPolicy::presetNames()) {
        DramConfig cfg = DramConfig::ddr3_1600(256);
        cfg.scheduler = SchedulerPolicy::preset(name);
        DramSystem sys(cfg);
        runTurnaroundWorkload(sys, 500);
        EXPECT_EQ(sys.totalCounts().wr, 500u) << name;
        EXPECT_EQ(sys.pendingWriteCount(), 0u) << name;
        EXPECT_EQ(sys.controller(0).acceptedWrites(), 500u) << name;
    }
}

TEST(SchedulerPolicy, TurnaroundsMonotoneInDrainBurstSize)
{
    // Larger drain episodes (high - low watermark window) batch more
    // writes per bus-direction switch: the turnaround counters must
    // be non-increasing as the burst size grows.
    struct Point { int high, low; };
    const Point sweep[] = {{0, 0}, {25, 10}, {50, 20}, {90, 10}};
    uint64_t prev = std::numeric_limits<uint64_t>::max();
    for (const Point p : sweep) {
        DramConfig cfg = DramConfig::ddr3_1600(256);
        cfg.scheduler = SchedulerPolicy::preset("batched");
        cfg.scheduler.drain_high_pct = p.high;
        cfg.scheduler.drain_low_pct = p.low;
        DramSystem sys(cfg);
        runTurnaroundWorkload(sys, 1000);
        const CommandCounts counts = sys.totalCounts();
        const uint64_t turns =
            counts.wr_rd_turnarounds + counts.rd_wr_turnarounds;
        EXPECT_LE(turns, prev)
            << "high=" << p.high << " low=" << p.low;
        prev = turns;
    }
    // The eager policy switches direction around every write; the
    // largest burst amortizes it by well over an order of magnitude.
    DramConfig eager_cfg = DramConfig::ddr3_1600(256);
    eager_cfg.scheduler = SchedulerPolicy::preset("eager");
    DramSystem eager_sys(eager_cfg);
    runTurnaroundWorkload(eager_sys, 1000);
    EXPECT_GT(eager_sys.totalCounts().wr_rd_turnarounds, 10 * prev);
}

TEST(SchedulerPolicy, ActivationsMonotoneInRowHitBatchSize)
{
    // Writes alternating between two rows of one bank: a FIFO drain
    // row-conflicts on every write, a row-hit batch drain coalesces
    // same-row writes from anywhere in the queue.
    auto actsFor = [](int batch) {
        DramConfig cfg = DramConfig::ddr3_1600(256);
        cfg.scheduler = SchedulerPolicy::preset("batched");
        cfg.scheduler.max_drain_batch = batch;
        DramSystem sys(cfg);
        runRowHitWorkload(sys, 1000);
        EXPECT_EQ(sys.totalCounts().wr, 1000u);
        return sys.totalCounts().act;
    };
    uint64_t prev = std::numeric_limits<uint64_t>::max();
    for (const int batch : {1, 2, 4, 8, 16, 32}) {
        const uint64_t acts = actsFor(batch);
        EXPECT_LE(acts, prev) << "batch " << batch;
        prev = acts;
    }
    // Batch 32 coalesces ~16x better than FIFO on this pattern.
    EXPECT_LT(actsFor(32) * 10, actsFor(1));
}

TEST(SchedulerPolicy, ReadsObserveBufferedWritesToTheirRow)
{
    // A read to a row with buffered writes must flush them first
    // (write forwarding): the write lands on the channel before the
    // read, and the row state reflects it.
    DramConfig cfg = DramConfig::ddr3_1600(256);
    cfg.scheduler = SchedulerPolicy::preset("batched");
    DramSystem sys(cfg);
    sys.write(0, 0);
    ASSERT_EQ(sys.pendingWriteCount(), 1u); // Buffered, not issued.
    ASSERT_EQ(sys.totalCounts().wr, 0u);
    sys.read(64, 100); // Same row, different column.
    EXPECT_EQ(sys.totalCounts().wr, 1u);
    EXPECT_EQ(sys.pendingWriteCount(), 0u);
    const Address a = sys.map().decode(0);
    EXPECT_EQ(sys.channel(a.channel).rowState(a.rank, a.bank, a.row),
              RowDataState::Data);
}

TEST(SchedulerPolicy, RowOpsDestroyBufferedWritesToTheirRow)
{
    // Writes accepted before a destructive row op must land before
    // the row is zeroized - never resurrect data afterwards.
    DramConfig cfg = DramConfig::ddr3_1600(256);
    cfg.scheduler = SchedulerPolicy::preset("batched");
    DramSystem sys(cfg);
    sys.write(0, 0);
    ASSERT_EQ(sys.pendingWriteCount(), 1u);
    sys.rowOp(0, 100, RowOpMechanism::CodicDet);
    EXPECT_EQ(sys.pendingWriteCount(), 0u);
    const Address a = sys.map().decode(0);
    EXPECT_EQ(sys.channel(a.channel).rowState(a.rank, a.bank, a.row),
              RowDataState::Zeroes);
}

TEST(SchedulerPolicy, WriteStallIsChannelLocal)
{
    // Regression (PR 4 satellite): with one channel's write queue
    // full, acceptance must stall only for writes routed to that
    // channel - another channel with free slots accepts immediately.
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowBankColumnChannel;
    cc.write_queue_entries = 4;
    DramSystem sys(DramConfig::ddr3_1600(256, 2), cc);

    // Row-conflicting writes all routed to channel 0 (even lines
    // under line interleave) until acceptance stalls.
    const uint64_t stride = 2 * 64 *
                            static_cast<uint64_t>(sys.config().columns) *
                            static_cast<uint64_t>(sys.config().banks);
    Cycle accepted = 0;
    for (uint64_t i = 0; i < 64; ++i) {
        const uint64_t addr = i * stride;
        ASSERT_EQ(sys.channelOf(addr), 0);
        accepted = sys.write(addr, 0);
    }
    EXPECT_GT(accepted, 0) << "channel 0 never back-pressured";

    // A write owned by channel 1 is accepted with zero stall.
    ASSERT_EQ(sys.channelOf(64), 1);
    EXPECT_EQ(sys.write(64, 0), 0);
}

// --- Trace-driven core over a multi-channel system. ---

TEST(DramSystemCore, TraceWorkloadRunsOnFourChannels)
{
    auto trace = [] {
        std::vector<TraceOp> ops;
        for (uint64_t a = 0; a < 1u << 20; a += 64)
            ops.push_back({OpType::Load, a, 0});
        return Workload{"scan", ops};
    }();

    auto run = [&trace](DramSystem &sys) {
        CoreConfig cfg;
        cfg.l1_bytes = 4096; // Tiny caches: almost every load misses.
        cfg.l2_bytes = 16384;
        InOrderCore core(sys, cfg);
        core.bind(&trace);
        return core.run();
    };

    DramSystem one(DramConfig::ddr3_1600(256, 1));
    ControllerConfig cc4;
    cc4.map_scheme = MapScheme::RowChannelBankColumn;
    DramSystem four(DramConfig::ddr3_1600(256, 4), cc4);

    const double t1 = run(one);
    const double t4 = run(four);
    EXPECT_GT(t1, 0.0);
    EXPECT_GT(t4, 0.0);
    // Same memory traffic overall (the channel-independent totals of
    // the acceptance criterion)...
    EXPECT_EQ(four.totalCounts().rd, one.totalCounts().rd);
    EXPECT_EQ(four.totalCounts().act, one.totalCounts().act);
    // ...spread over all four channels.
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(four.channel(c).counts().rd, 0u) << "channel " << c;
}

TEST(DramSystemCore, MultiChannelSecureDeallocKeepsCommandTotals)
{
    // A dealloc-heavy trace issues one CODIC row op per row
    // regardless of the channel count.
    std::vector<TraceOp> ops;
    ops.push_back({OpType::DeallocRegion, 0, 1u << 20});
    Workload w{"dealloc", ops};

    auto codicCount = [&w](int channels) {
        ControllerConfig cc;
        if (channels > 1)
            cc.map_scheme = MapScheme::RowChannelBankColumn;
        DramSystem sys(DramConfig::ddr3_1600(256, channels), cc);
        CoreConfig cfg;
        cfg.dealloc = DeallocMode::CodicDet;
        InOrderCore core(sys, cfg);
        core.bind(&w);
        core.run();
        return sys.totalCounts().codic;
    };
    EXPECT_EQ(codicCount(1), codicCount(4));
    EXPECT_EQ(codicCount(1), (1u << 20) / 8192);
}

// --- Safe interface over a multi-channel system. ---

TEST(SafeInterfaceSystem, RoutesPufAndZeroRequestsAcrossChannels)
{
    // Default map: channel is the top bit, so the two halves of the
    // address space live on different channels.
    DramSystem sys(DramConfig::ddr3_1600(256, 2));
    const uint64_t half =
        static_cast<uint64_t>(sys.config().capacityBytes()) / 2;
    const uint64_t row = static_cast<uint64_t>(sys.config().row_bytes);

    SafeCodicInterface iface(sys, 0, 64 * row);
    Cycle done = 0;
    EXPECT_EQ(iface.pufResponse(0, 0, &done), SafeRequestStatus::Ok);
    EXPECT_EQ(sys.channel(0).counts().codic, 1u);
    EXPECT_EQ(sys.channel(1).counts().codic, 0u);

    // Zero one row on each channel.
    iface.declareFreed(100 * row, row);
    iface.declareFreed(half + 100 * row, row);
    EXPECT_EQ(iface.zeroRange(100 * row, row, 0, nullptr),
              SafeRequestStatus::Ok);
    EXPECT_EQ(iface.zeroRange(half + 100 * row, row, 0, nullptr),
              SafeRequestStatus::Ok);
    EXPECT_EQ(sys.channel(0).counts().codic, 2u);
    EXPECT_EQ(sys.channel(1).counts().codic, 1u);
}

// --- Energy roll-up. ---

TEST(SystemEnergy, RollsUpCommandsAndBackgroundPerChannel)
{
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem sys(DramConfig::ddr3_1600(256, 4), cc);
    for (uint64_t line = 0; line < 64; ++line)
        sys.read(line * 64, 0);

    const double elapsed_ns = 1000.0;
    const EnergyParams params;
    double expected = 0.0;
    for (int c = 0; c < 4; ++c)
        expected += campaignEnergyNj(sys.channel(c).counts(),
                                     elapsed_ns, params);
    EXPECT_DOUBLE_EQ(systemEnergyNj(sys, elapsed_ns, params), expected);
    // Four idle channels burn 4x the background power of one.
    DramSystem idle1(DramConfig::ddr3_1600(256, 1));
    DramSystem idle4(DramConfig::ddr3_1600(256, 4));
    EXPECT_DOUBLE_EQ(systemEnergyNj(idle4, elapsed_ns, params),
                     4.0 * systemEnergyNj(idle1, elapsed_ns, params));
}

#ifndef NDEBUG
// --- Debug-mode thread-ownership check (DramChannel contract). ---

TEST(ChannelOwnership, CrossThreadIssueWithoutHandoffPanics)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    Command act;
    act.type = CommandType::Act;
    ch.issue(act, 0); // Binds ownership to this thread.

    bool panicked = false;
    std::thread other([&] {
        Command pre;
        pre.type = CommandType::Pre;
        try {
            ch.issue(pre, 1000);
        } catch (const PanicError &) {
            panicked = true;
        }
    });
    other.join();
    EXPECT_TRUE(panicked);

    // An explicit hand-off re-binds ownership legally.
    ch.debugReleaseOwner();
    std::thread taker([&] {
        Command pre;
        pre.type = CommandType::Pre;
        pre.addr.bank = 1;
        Command act2;
        act2.type = CommandType::Act;
        act2.addr.bank = 1;
        ch.issueAtEarliest(act2, 0);
    });
    taker.join();
}
#endif

} // namespace
} // namespace codic
