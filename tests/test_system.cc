/**
 * @file
 * Tests of the multi-channel DramSystem layer: channel-aware address
 * mapping (round-trip property over every scheme x channel x rank
 * combination), request routing, per-channel counter roll-up against
 * single-channel totals, channel-level timing parallelism, and the
 * system-facing safe interface. The JEDEC timing checker stays armed
 * on every channel in all of these (any violation panics).
 */

#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "dram/system.h"
#include "mem/safe_interface.h"
#include "sim/core.h"
#include "power/energy_model.h"

namespace codic {
namespace {

// --- Address map: channel + rank interleaving schemes. ---

struct MapCase
{
    MapScheme scheme;
    int channels;
    int ranks;
};

class ChannelMapTest : public ::testing::TestWithParam<MapCase>
{
};

TEST_P(ChannelMapTest, DecodeEncodeRoundTripAndInRange)
{
    const auto [scheme, channels, ranks] = GetParam();
    const DramConfig cfg = DramConfig::ddr3_1600(256, channels, ranks);
    AddressMap map(cfg, scheme);
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t addr =
            rng.below(static_cast<uint64_t>(map.capacityBytes()) / 64) *
            64;
        const Address a = map.decode(addr);
        EXPECT_GE(a.channel, 0);
        EXPECT_LT(a.channel, channels);
        EXPECT_GE(a.rank, 0);
        EXPECT_LT(a.rank, ranks);
        EXPECT_EQ(map.encode(a), addr);
    }
    // The map is a bijection onto the capacity: the extreme coordinate
    // encodes to the last burst.
    Address top;
    top.channel = channels - 1;
    top.rank = ranks - 1;
    top.bank = cfg.banks - 1;
    top.row = cfg.rows - 1;
    top.column = cfg.columns - 1;
    EXPECT_EQ(map.encode(top),
              static_cast<uint64_t>(map.capacityBytes()) -
                  static_cast<uint64_t>(cfg.burst_bytes));
}

std::vector<MapCase>
allMapCases()
{
    std::vector<MapCase> cases;
    for (MapScheme s : allMapSchemes())
        for (int channels : {1, 2, 4})
            for (int ranks : {1, 2})
                cases.push_back({s, channels, ranks});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ChannelMapTest,
                         ::testing::ValuesIn(allMapCases()));

TEST(ChannelMap, LineInterleaveAlternatesChannelsPerBurst)
{
    const DramConfig cfg = DramConfig::ddr3_1600(256, 4);
    AddressMap map(cfg, MapScheme::RowBankColumnChannel);
    for (uint64_t line = 0; line < 64; ++line)
        EXPECT_EQ(map.decode(line * 64).channel,
                  static_cast<int>(line % 4));
}

TEST(ChannelMap, RowBlockInterleaveKeepsRowsWhole)
{
    // RowChannelBankColumn: one row-sized phys block = exactly one
    // DRAM row, and consecutive blocks walk banks then channels (the
    // property the secure-dealloc row ops rely on).
    const DramConfig cfg = DramConfig::ddr3_1600(256, 4);
    AddressMap map(cfg, MapScheme::RowChannelBankColumn);
    const uint64_t row_bytes = static_cast<uint64_t>(cfg.row_bytes);
    for (uint64_t block = 0; block < 64; ++block) {
        const Address first = map.decode(block * row_bytes);
        const Address last =
            map.decode((block + 1) * row_bytes - 64);
        EXPECT_EQ(first.channel, last.channel);
        EXPECT_EQ(first.bank, last.bank);
        EXPECT_EQ(first.row, last.row);
        EXPECT_EQ(first.column, 0);
        EXPECT_EQ(last.column, cfg.columns - 1);
    }
    // 8 banks x 4 channels of row blocks before the row advances.
    EXPECT_EQ(map.decode(8 * row_bytes).channel, 1);
    EXPECT_EQ(map.decode(32 * row_bytes).row, 1);
}

TEST(ChannelMap, SchemeNamesAreDistinct)
{
    for (MapScheme a : allMapSchemes())
        for (MapScheme b : allMapSchemes())
            if (a != b)
                EXPECT_STRNE(mapSchemeName(a), mapSchemeName(b));
}

// --- Config validation: channels/ranks are honored or rejected. ---

TEST(DramConfigValidation, RejectsNonPositiveChannelsOrRanks)
{
    DramConfig cfg = DramConfig::ddr3_1600(64);
    cfg.channels = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    EXPECT_THROW(DramSystem{cfg}, FatalError);
    EXPECT_THROW(DramChannel{cfg}, FatalError);

    cfg.channels = 1;
    cfg.ranks = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(DramConfigValidation, PresetSpreadsCapacityOverChannels)
{
    const DramConfig one = DramConfig::ddr3_1600(512);
    const DramConfig four = DramConfig::ddr3_1600(512, 4);
    EXPECT_EQ(four.channels, 4);
    EXPECT_EQ(four.rows * 4, one.rows);
    EXPECT_EQ(four.capacityBytes(), one.capacityBytes());
    EXPECT_EQ(four.totalRows(), one.totalRows());
}

TEST(DramChannelId, CommandsForAnotherChannelPanic)
{
    const DramConfig cfg = DramConfig::ddr3_1600(256, 2);
    DramChannel ch(cfg, 0);
    Command act;
    act.type = CommandType::Act;
    act.addr.channel = 1; // Belongs to channel 1 of the module.
    EXPECT_THROW(ch.issue(act, 0), PanicError);
    EXPECT_THROW(ch.earliest(act), PanicError);
}

// --- DramSystem routing and counter roll-up. ---

TEST(DramSystem, RoutesRequestsToOwningChannel)
{
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem sys(DramConfig::ddr3_1600(256, 4), cc);

    // Four consecutive lines land on four different channels.
    for (uint64_t line = 0; line < 4; ++line)
        sys.read(line * 64, 0);
    for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(sys.channel(c).counts().rd, 1u) << "channel " << c;
        EXPECT_EQ(sys.channel(c).counts().act, 1u) << "channel " << c;
    }
    const CommandCounts total = sys.totalCounts();
    EXPECT_EQ(total.rd, 4u);
    EXPECT_EQ(total.act, 4u);

    // Roll-up equals the sum of the per-channel counters.
    CommandCounts sum;
    for (const CommandCounts &c : sys.perChannelCounts())
        sum += c;
    EXPECT_EQ(sum.total(), total.total());
}

TEST(DramSystem, FourChannelCountsSumToSingleChannelTotals)
{
    // A channel-independent workload: every line of a 4 MB region
    // read exactly once, in address order. Whatever the mapping, each
    // DRAM row the region touches is opened exactly once and read
    // column by column, so ACT/RD totals must match between a
    // 1-channel and a 4-channel module of the same capacity.
    constexpr uint64_t kLines = 65536;
    auto sweep = [](DramSystem &sys) {
        Cycle t = 0;
        for (uint64_t line = 0; line < kLines; ++line)
            t = sys.read(line * 64, t);
    };

    DramSystem one(DramConfig::ddr3_1600(256, 1));
    sweep(one);

    ControllerConfig cc4;
    cc4.map_scheme = MapScheme::RowChannelBankColumn;
    DramSystem four(DramConfig::ddr3_1600(256, 4), cc4);
    sweep(four);

    const CommandCounts t1 = one.totalCounts();
    const CommandCounts t4 = four.totalCounts();
    EXPECT_EQ(t4.rd, t1.rd);
    EXPECT_EQ(t4.rd, kLines);
    EXPECT_EQ(t4.act, t1.act);
    // Every channel took a share and its checker stayed armed.
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(four.channel(c).counts().rd, 0u) << "channel " << c;
    // Precharges differ only by rows left open at the end (<= banks
    // per channel x channels).
    EXPECT_NEAR(static_cast<double>(t4.pre),
                static_cast<double>(t1.pre), 4.0 * 8.0);
}

TEST(DramSystem, RowOpSweepZeroesWholeModuleOnAnyChannelCount)
{
    for (int channels : {1, 4}) {
        ControllerConfig cc;
        if (channels > 1)
            cc.map_scheme = MapScheme::RowChannelBankColumn;
        DramSystem sys(DramConfig::ddr3_1600(64, channels), cc);
        sys.fillAllRows(RowDataState::Data);
        const int64_t rows = sys.config().totalRows();
        const uint64_t row_bytes =
            static_cast<uint64_t>(sys.config().row_bytes);
        Cycle t = 0;
        for (int64_t r = 0; r < rows; ++r)
            t = sys.rowOp(static_cast<uint64_t>(r) * row_bytes, t,
                          RowOpMechanism::CodicDet);
        EXPECT_EQ(sys.totalCounts().codic,
                  static_cast<uint64_t>(rows))
            << channels << " channels";
        EXPECT_EQ(sys.countRowsInState(RowDataState::Zeroes), rows)
            << channels << " channels";
        EXPECT_EQ(sys.countRowsInState(RowDataState::Data), 0)
            << channels << " channels";
    }
}

TEST(DramSystem, ChannelParallelismShortensIndependentReadMakespan)
{
    // Independent line reads arriving back to back: a single channel
    // serializes bursts on its data bus, four channels overlap them.
    constexpr uint64_t kLines = 4096;
    auto makespan = [](DramSystem &sys) {
        Cycle last = 0;
        for (uint64_t line = 0; line < kLines; ++line)
            last = std::max(
                last, sys.read(line * 64, static_cast<Cycle>(line)));
        return last;
    };

    DramSystem one(DramConfig::ddr3_1600(256, 1));
    ControllerConfig cc4;
    cc4.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem four(DramConfig::ddr3_1600(256, 4), cc4);

    const Cycle t1 = makespan(one);
    const Cycle t4 = makespan(four);
    EXPECT_LT(t4 * 2, t1); // At least 2x from 4 channels.
}

TEST(DramSystem, DrainWritesCoversEveryChannel)
{
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem sys(DramConfig::ddr3_1600(256, 2), cc);
    for (uint64_t line = 0; line < 16; ++line)
        sys.write(line * 64, 0);
    const Cycle drained = sys.drainWrites();
    EXPECT_GE(drained, sys.lastIssueCycle());
    EXPECT_EQ(sys.totalCounts().wr, 16u);
    EXPECT_GT(sys.channel(0).counts().wr, 0u);
    EXPECT_GT(sys.channel(1).counts().wr, 0u);
}

// --- Trace-driven core over a multi-channel system. ---

TEST(DramSystemCore, TraceWorkloadRunsOnFourChannels)
{
    auto trace = [] {
        std::vector<TraceOp> ops;
        for (uint64_t a = 0; a < 1u << 20; a += 64)
            ops.push_back({OpType::Load, a, 0});
        return Workload{"scan", ops};
    }();

    auto run = [&trace](DramSystem &sys) {
        CoreConfig cfg;
        cfg.l1_bytes = 4096; // Tiny caches: almost every load misses.
        cfg.l2_bytes = 16384;
        InOrderCore core(sys, cfg);
        core.bind(&trace);
        return core.run();
    };

    DramSystem one(DramConfig::ddr3_1600(256, 1));
    ControllerConfig cc4;
    cc4.map_scheme = MapScheme::RowChannelBankColumn;
    DramSystem four(DramConfig::ddr3_1600(256, 4), cc4);

    const double t1 = run(one);
    const double t4 = run(four);
    EXPECT_GT(t1, 0.0);
    EXPECT_GT(t4, 0.0);
    // Same memory traffic overall (the channel-independent totals of
    // the acceptance criterion)...
    EXPECT_EQ(four.totalCounts().rd, one.totalCounts().rd);
    EXPECT_EQ(four.totalCounts().act, one.totalCounts().act);
    // ...spread over all four channels.
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(four.channel(c).counts().rd, 0u) << "channel " << c;
}

TEST(DramSystemCore, MultiChannelSecureDeallocKeepsCommandTotals)
{
    // A dealloc-heavy trace issues one CODIC row op per row
    // regardless of the channel count.
    std::vector<TraceOp> ops;
    ops.push_back({OpType::DeallocRegion, 0, 1u << 20});
    Workload w{"dealloc", ops};

    auto codicCount = [&w](int channels) {
        ControllerConfig cc;
        if (channels > 1)
            cc.map_scheme = MapScheme::RowChannelBankColumn;
        DramSystem sys(DramConfig::ddr3_1600(256, channels), cc);
        CoreConfig cfg;
        cfg.dealloc = DeallocMode::CodicDet;
        InOrderCore core(sys, cfg);
        core.bind(&w);
        core.run();
        return sys.totalCounts().codic;
    };
    EXPECT_EQ(codicCount(1), codicCount(4));
    EXPECT_EQ(codicCount(1), (1u << 20) / 8192);
}

// --- Safe interface over a multi-channel system. ---

TEST(SafeInterfaceSystem, RoutesPufAndZeroRequestsAcrossChannels)
{
    // Default map: channel is the top bit, so the two halves of the
    // address space live on different channels.
    DramSystem sys(DramConfig::ddr3_1600(256, 2));
    const uint64_t half =
        static_cast<uint64_t>(sys.config().capacityBytes()) / 2;
    const uint64_t row = static_cast<uint64_t>(sys.config().row_bytes);

    SafeCodicInterface iface(sys, 0, 64 * row);
    Cycle done = 0;
    EXPECT_EQ(iface.pufResponse(0, 0, &done), SafeRequestStatus::Ok);
    EXPECT_EQ(sys.channel(0).counts().codic, 1u);
    EXPECT_EQ(sys.channel(1).counts().codic, 0u);

    // Zero one row on each channel.
    iface.declareFreed(100 * row, row);
    iface.declareFreed(half + 100 * row, row);
    EXPECT_EQ(iface.zeroRange(100 * row, row, 0, nullptr),
              SafeRequestStatus::Ok);
    EXPECT_EQ(iface.zeroRange(half + 100 * row, row, 0, nullptr),
              SafeRequestStatus::Ok);
    EXPECT_EQ(sys.channel(0).counts().codic, 2u);
    EXPECT_EQ(sys.channel(1).counts().codic, 1u);
}

// --- Energy roll-up. ---

TEST(SystemEnergy, RollsUpCommandsAndBackgroundPerChannel)
{
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem sys(DramConfig::ddr3_1600(256, 4), cc);
    for (uint64_t line = 0; line < 64; ++line)
        sys.read(line * 64, 0);

    const double elapsed_ns = 1000.0;
    const EnergyParams params;
    double expected = 0.0;
    for (int c = 0; c < 4; ++c)
        expected += campaignEnergyNj(sys.channel(c).counts(),
                                     elapsed_ns, params);
    EXPECT_DOUBLE_EQ(systemEnergyNj(sys, elapsed_ns, params), expected);
    // Four idle channels burn 4x the background power of one.
    DramSystem idle1(DramConfig::ddr3_1600(256, 1));
    DramSystem idle4(DramConfig::ddr3_1600(256, 4));
    EXPECT_DOUBLE_EQ(systemEnergyNj(idle4, elapsed_ns, params),
                     4.0 * systemEnergyNj(idle1, elapsed_ns, params));
}

#ifndef NDEBUG
// --- Debug-mode thread-ownership check (DramChannel contract). ---

TEST(ChannelOwnership, CrossThreadIssueWithoutHandoffPanics)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    Command act;
    act.type = CommandType::Act;
    ch.issue(act, 0); // Binds ownership to this thread.

    bool panicked = false;
    std::thread other([&] {
        Command pre;
        pre.type = CommandType::Pre;
        try {
            ch.issue(pre, 1000);
        } catch (const PanicError &) {
            panicked = true;
        }
    });
    other.join();
    EXPECT_TRUE(panicked);

    // An explicit hand-off re-binds ownership legally.
    ch.debugReleaseOwner();
    std::thread taker([&] {
        Command pre;
        pre.type = CommandType::Pre;
        pre.addr.bank = 1;
        Command act2;
        act2.type = CommandType::Act;
        act2.addr.bank = 1;
        ch.issueAtEarliest(act2, 0);
    });
    taker.join();
}
#endif

} // namespace
} // namespace codic
