/**
 * @file
 * Tests of the production-serving layer: LruIndex edge behavior
 * (the shared recency index behind both decode caches and the
 * deterministic cache plan), the streaming v2 store writer and the
 * mmap-backed read path (store_mmap.h), admission control / load
 * shedding (admission.h), the multi-region layer and shard-placement
 * policies (region.h), and the RunOptions contract for the new
 * --store-mmap/--regions/--shed CLI surface.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/run_options.h"
#include "fleet/admission.h"
#include "fleet/auth_service.h"
#include "fleet/device_fleet.h"
#include "fleet/enrollment_store.h"
#include "fleet/region.h"
#include "fleet/store_mmap.h"

namespace codic {
namespace {

namespace fs = std::filesystem;

/** Small fleet that keeps tests fast. */
FleetConfig
servingFleetConfig(uint64_t devices = 48, int shards = 3)
{
    FleetConfig fc;
    fc.population_seed = 77;
    fc.devices = devices;
    fc.shards = shards;
    fc.dram = DramConfig::ddr3_1600(256, 1);
    fc.dram.scheduler = SchedulerPolicy::preset("batched");
    return fc;
}

std::string
tempPath(const std::string &name)
{
    return (fs::temp_directory_path() / name).string();
}

// --- LruIndex edge cases. ---

TEST(LruIndex, CapacityOneThrashes)
{
    LruIndex idx(1);
    EXPECT_FALSE(idx.touch(7));
    EXPECT_EQ(idx.evictIfOver(), std::nullopt);
    EXPECT_FALSE(idx.touch(8));
    EXPECT_EQ(idx.evictIfOver(), std::optional<uint64_t>(7));
    EXPECT_EQ(idx.evictIfOver(), std::nullopt);
    EXPECT_TRUE(idx.touch(8));
}

TEST(LruIndex, ZeroCapacityClampsToOne)
{
    LruIndex idx(0);
    idx.touch(1);
    idx.touch(2);
    EXPECT_EQ(idx.evictIfOver(), std::optional<uint64_t>(1));
    EXPECT_EQ(idx.evictIfOver(), std::nullopt);
}

TEST(LruIndex, TouchAfterEvictReinsertsAsNew)
{
    LruIndex idx(1);
    idx.touch(5);
    idx.touch(6);
    EXPECT_EQ(idx.evictIfOver(), std::optional<uint64_t>(5));
    // The evicted id must come back as a fresh insert, not a hit.
    EXPECT_FALSE(idx.touch(5));
    EXPECT_EQ(idx.evictIfOver(), std::optional<uint64_t>(6));
}

TEST(LruIndex, EvictIfOverDrainsLeastRecentFirst)
{
    LruIndex idx(2);
    for (uint64_t id : {1, 2, 3, 4})
        idx.touch(id);
    // Deferred draining pops victims oldest-first until at capacity.
    EXPECT_EQ(idx.evictIfOver(), std::optional<uint64_t>(1));
    EXPECT_EQ(idx.evictIfOver(), std::optional<uint64_t>(2));
    EXPECT_EQ(idx.evictIfOver(), std::nullopt);
    EXPECT_TRUE(idx.contains(3));
    EXPECT_TRUE(idx.contains(4));
}

TEST(LruIndex, ContainsIsAPurePeek)
{
    LruIndex idx(2);
    idx.touch(1);
    idx.touch(2);
    // A peek must not refresh recency: 1 stays the LRU victim.
    EXPECT_TRUE(idx.contains(1));
    idx.touch(3);
    EXPECT_EQ(idx.evictIfOver(), std::optional<uint64_t>(1));
}

TEST(LruIndex, EraseDropsOnlyThePresentId)
{
    LruIndex idx(4);
    idx.touch(1);
    EXPECT_TRUE(idx.erase(1));
    EXPECT_FALSE(idx.erase(1));
    EXPECT_FALSE(idx.contains(1));
}

// --- Streaming store writer (v2 format). ---

Response
cellsResponse(std::initializer_list<uint32_t> cells)
{
    Response r;
    r.cells = cells;
    return r;
}

TEST(EnrollmentStoreWriter, MatchesSaveBinaryByteForByte)
{
    EnrollmentStore store(4242);
    store.put(1, {99, 65536}, cellsResponse({7}));
    store.put(5, {123, 65536}, cellsResponse({1, 2, 500, 65535}));
    store.put(300, {4, 32768}, cellsResponse({}));
    std::ostringstream reference;
    store.saveBinary(reference);

    const std::string path = tempPath("codic_test_writer.bin");
    EnrollmentStoreWriter writer(path, 4242);
    writer.append(1, {99, 65536}, cellsResponse({7}));
    writer.append(5, {123, 65536}, cellsResponse({1, 2, 500, 65535}));
    writer.append(300, {4, 32768}, cellsResponse({}));
    writer.finish();

    std::ifstream in(path, std::ios::binary);
    std::stringstream bytes;
    bytes << in.rdbuf();
    EXPECT_EQ(bytes.str(), reference.str());
    fs::remove(path);
}

TEST(EnrollmentStoreWriter, RejectsUnsortedAppends)
{
    const std::string path = tempPath("codic_test_writer_bad.bin");
    EnrollmentStoreWriter writer(path, 1);
    writer.append(5, {1, 64}, cellsResponse({1}));
    EXPECT_THROW(writer.append(3, {1, 64}, cellsResponse({2})),
                 FatalError);
    EXPECT_THROW(writer.append(5, {1, 64}, cellsResponse({2})),
                 FatalError);
    fs::remove(path);
}

TEST(EnrollmentStoreWriter, UnfinishedWriterCleansUpPartialFiles)
{
    const std::string path = tempPath("codic_test_writer_part.bin");
    {
        EnrollmentStoreWriter writer(path, 1);
        writer.append(1, {1, 64}, cellsResponse({1}));
        // Destroyed without finish(): a crash mid-campaign must not
        // leave a half-written store that a later run trusts.
    }
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".idx"));
}

// --- Mmap-backed read path. ---

/** Write a deterministic test store and return its path. */
std::string
writeTestStore(const std::string &name, uint64_t seed = 321,
               uint64_t devices = 50)
{
    const std::string path = tempPath(name);
    EnrollmentStoreWriter writer(path, seed);
    for (uint64_t id = 0; id < devices; ++id) {
        // Odd ids get sparse signatures, evens denser ones.
        Response sig;
        for (uint32_t c = 0; c < 3 + (id % 5) * 4; ++c)
            sig.cells.push_back(
                static_cast<uint32_t>(id * 131 + c * 17));
        writer.append(id * 3, {id % 7, 65536}, sig);
    }
    writer.finish();
    return path;
}

TEST(MmapEnrollmentStore, LookupParityWithHeapStore)
{
    const std::string path =
        writeTestStore("codic_test_mmap_parity.bin");
    EnrollmentStore heap = EnrollmentStore::loadFile(path);
    MmapEnrollmentStore mm(path);

    EXPECT_EQ(mm.populationSeed(), heap.populationSeed());
    EXPECT_EQ(mm.size(), heap.size());
    EXPECT_EQ(mm.baseRecords(), heap.size());
    EXPECT_EQ(mm.deviceIds(), heap.deviceIds());
    for (uint64_t id : heap.deviceIds()) {
        EXPECT_TRUE(mm.contains(id));
        ASSERT_NE(mm.lookup(id), nullptr);
        EXPECT_EQ(*mm.lookup(id), *heap.lookup(id));
    }
    EXPECT_FALSE(mm.contains(1));  // Ids are multiples of 3.
    EXPECT_EQ(mm.lookup(1), nullptr);
    EXPECT_GT(mm.cacheHits(), 0u); // Double lookups above hit.
    fs::remove(path);
}

TEST(MmapEnrollmentStore, OverlayShadowsBaseRecords)
{
    const std::string path =
        writeTestStore("codic_test_mmap_overlay.bin");
    MmapEnrollmentStore mm(path);
    const size_t base = mm.size();

    // Re-enroll an existing device: the overlay supersedes its base
    // record; the mapped file is untouched.
    mm.put(3, {2, 65536}, cellsResponse({42, 43}));
    EXPECT_EQ(*mm.lookup(3), cellsResponse({42, 43}));
    EXPECT_EQ(mm.size(), base);
    EXPECT_EQ(mm.supersededRecords(), 1u);

    // Enroll a brand-new device: size grows.
    mm.put(1, {1, 65536}, cellsResponse({9}));
    EXPECT_TRUE(mm.contains(1));
    EXPECT_EQ(*mm.lookup(1), cellsResponse({9}));
    EXPECT_EQ(mm.size(), base + 1);
    EXPECT_EQ(mm.overlayRecords(), 2u);
    fs::remove(path);
}

TEST(MmapEnrollmentStore, CompactFoldsOverlayIntoAFreshFile)
{
    const std::string path =
        writeTestStore("codic_test_mmap_compact.bin");
    const std::string compacted =
        tempPath("codic_test_mmap_compacted.bin");
    MmapEnrollmentStore mm(path);
    mm.put(3, {2, 65536}, cellsResponse({42, 43}));   // Supersede.
    mm.put(1, {1, 65536}, cellsResponse({9}));        // New device.

    const auto stats = mm.compactTo(compacted);
    EXPECT_EQ(stats.base_records, mm.baseRecords());
    EXPECT_EQ(stats.overlay_records, 2u);
    EXPECT_EQ(stats.superseded, 1u);
    EXPECT_EQ(stats.records_written, mm.size());

    MmapEnrollmentStore fresh(compacted);
    EXPECT_EQ(fresh.size(), mm.size());
    EXPECT_EQ(fresh.supersededRecords(), 0u);
    EXPECT_EQ(fresh.deviceIds(), mm.deviceIds());
    for (uint64_t id : mm.deviceIds())
        EXPECT_EQ(*fresh.lookup(id), *mm.lookup(id));
    fs::remove(path);
    fs::remove(compacted);
}

TEST(MmapEnrollmentStore, RejectsMissingTruncatedAndCorruptFiles)
{
    EXPECT_THROW(
        MmapEnrollmentStore(tempPath("codic_no_such_store.bin")),
        FatalError);

    const std::string path =
        writeTestStore("codic_test_mmap_corrupt.bin");
    const auto full = fs::file_size(path);

    fs::resize_file(path, full - 4); // Truncated index footer.
    EXPECT_THROW(MmapEnrollmentStore{path}, FatalError);

    fs::resize_file(path, 16); // Header alone.
    EXPECT_THROW(MmapEnrollmentStore{path}, FatalError);

    // Bad magic.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.put('X');
    }
    EXPECT_THROW(MmapEnrollmentStore{path}, FatalError);
    fs::remove(path);
}

TEST(MmapEnrollmentStore, SyntheticStoreIsDeterministic)
{
    const std::string a = tempPath("codic_test_synth_a.bin");
    const std::string b = tempPath("codic_test_synth_b.bin");
    writeSyntheticStore(a, 9, 100, 65536, 12);
    writeSyntheticStore(b, 9, 100, 65536, 12);

    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    std::stringstream ba, bb;
    ba << fa.rdbuf();
    bb << fb.rdbuf();
    EXPECT_EQ(ba.str(), bb.str());

    MmapEnrollmentStore mm(a);
    EXPECT_EQ(mm.baseRecords(), 100u);
    EXPECT_EQ(mm.populationSeed(), 9u);
    for (uint64_t id : {0ull, 57ull, 99ull}) {
        ASSERT_NE(mm.lookup(id), nullptr);
        EXPECT_FALSE(mm.lookup(id)->cells.empty());
    }
    fs::remove(a);
    fs::remove(b);
}

// --- Admission controller. ---

AdmissionConfig
admissionConfig(double capacity_rps, double burst = 64.0)
{
    AdmissionConfig cfg;
    cfg.capacity_rps = capacity_rps;
    cfg.burst = burst;
    return cfg;
}

TEST(AdmissionController, BucketShedsBestEffortBeforeUrgent)
{
    // Negligible refill, 4-token burst, half reserved for urgent:
    // best-effort admits while tokens > 2, urgent drains to zero.
    AdmissionConfig cfg = admissionConfig(1.0, 4.0);
    cfg.urgent_reserve = 0.5;
    cfg.max_wait_urgent_ns = 1e12;      // Isolate the bucket.
    cfg.max_wait_best_effort_ns = 1e12;
    cfg.lane_queue_depth = 1 << 20;
    AdmissionController ctrl(cfg, 4, 1000.0);

    int best_effort_admitted = 0, urgent_admitted = 0;
    for (uint64_t i = 0; i < 4; ++i)
        best_effort_admitted +=
            ctrl.offer(AdmissionClass::BestEffort, i, 0.0, 10.0)
                .admitted;
    for (uint64_t i = 0; i < 4; ++i)
        urgent_admitted +=
            ctrl.offer(AdmissionClass::Urgent, 10 + i, 0.0, 10.0)
                .admitted;
    EXPECT_EQ(best_effort_admitted, 2);
    EXPECT_EQ(urgent_admitted, 2); // Drains the reserve to zero.

    const auto d = ctrl.offer(AdmissionClass::Urgent, 99, 0.0, 10.0);
    EXPECT_FALSE(d.admitted);
    EXPECT_TRUE(d.bucket_shed);
}

TEST(AdmissionController, DeadlineDropsProjectedLateArrivals)
{
    AdmissionConfig cfg = admissionConfig(1e12, 1e6);
    cfg.max_wait_urgent_ns = 1000.0;
    cfg.max_wait_best_effort_ns = 1000.0;
    cfg.lane_queue_depth = 1 << 20;
    AdmissionController ctrl(cfg, /*lanes=*/1, 1000.0);

    // Same-lane arrivals at t=0 with 600 ns service: waits project
    // to 0, 600, 1200 - the third breaches the 1000 ns deadline.
    const auto a = ctrl.offer(AdmissionClass::Urgent, 0, 0.0, 600.0);
    EXPECT_TRUE(a.admitted);
    EXPECT_EQ(a.wait_ns, 0.0);
    const auto b = ctrl.offer(AdmissionClass::Urgent, 0, 0.0, 600.0);
    EXPECT_TRUE(b.admitted);
    EXPECT_EQ(b.wait_ns, 600.0);
    const auto c = ctrl.offer(AdmissionClass::Urgent, 0, 0.0, 600.0);
    EXPECT_FALSE(c.admitted);
    EXPECT_TRUE(c.deadline_shed);
}

TEST(AdmissionController, FullLaneQueueSheds)
{
    AdmissionConfig cfg = admissionConfig(1e12, 1e6);
    cfg.max_wait_urgent_ns = 1e12;
    cfg.max_wait_best_effort_ns = 1e12;
    cfg.lane_queue_depth = 2;
    AdmissionController ctrl(cfg, /*lanes=*/1, 1000.0);

    EXPECT_TRUE(
        ctrl.offer(AdmissionClass::Urgent, 0, 0.0, 500.0).admitted);
    EXPECT_TRUE(
        ctrl.offer(AdmissionClass::Urgent, 0, 0.0, 500.0).admitted);
    const auto d = ctrl.offer(AdmissionClass::Urgent, 0, 0.0, 500.0);
    EXPECT_FALSE(d.admitted);
    EXPECT_TRUE(d.queue_shed);

    // Once the first two complete, the lane admits again.
    const auto later =
        ctrl.offer(AdmissionClass::Urgent, 0, 2000.0, 500.0);
    EXPECT_TRUE(later.admitted);
    EXPECT_EQ(later.wait_ns, 0.0);
}

TEST(AdmissionController, AutoDeadlineDerivesFromTheCostModel)
{
    AdmissionConfig cfg = admissionConfig(1e6);
    AdmissionController ctrl(cfg, 4, /*auto_deadline_ns=*/8000.0);
    EXPECT_EQ(ctrl.deadlineNs(AdmissionClass::Urgent), 8000.0);
    EXPECT_EQ(ctrl.deadlineNs(AdmissionClass::BestEffort), 4000.0);
}

TEST(Admission, RequestKindsMapToTheDocumentedClasses)
{
    EXPECT_EQ(admissionClassOf(RequestKind::Authenticate),
              AdmissionClass::Urgent);
    EXPECT_EQ(admissionClassOf(RequestKind::Reenroll),
              AdmissionClass::BestEffort);
    EXPECT_EQ(admissionClassOf(RequestKind::TrngDraw),
              AdmissionClass::BestEffort);
    EXPECT_EQ(admissionClassOf(RequestKind::SecureDealloc),
              AdmissionClass::BestEffort);
}

// --- AuthService under admission control. ---

void
expectReportsEqual(const LoadReport &a, const LoadReport &b)
{
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.shed_urgent, b.shed_urgent);
    EXPECT_EQ(a.shed_best_effort, b.shed_best_effort);
    EXPECT_EQ(a.shed_deadline, b.shed_deadline);
    EXPECT_EQ(a.shed_queue, b.shed_queue);
    EXPECT_EQ(a.shed_bucket, b.shed_bucket);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.unknown_device, b.unknown_device);
    EXPECT_EQ(a.planned_cache_hits, b.planned_cache_hits);
    EXPECT_EQ(a.latency_p50_ns, b.latency_p50_ns);
    EXPECT_EQ(a.latency_p99_ns, b.latency_p99_ns);
    EXPECT_EQ(a.admitted_urgent_p50_ns, b.admitted_urgent_p50_ns);
    EXPECT_EQ(a.admitted_urgent_p99_ns, b.admitted_urgent_p99_ns);
    EXPECT_EQ(a.total_service_ns, b.total_service_ns);
    EXPECT_EQ(a.total_energy_nj, b.total_energy_nj);
}

std::vector<FleetRequest>
overloadStream(uint64_t devices, double offered_rps)
{
    TrafficConfig tc;
    tc.traffic_seed = 29;
    tc.requests = 500;
    tc.zipf = 0.9;
    tc.weight_auth = 0.7;
    tc.weight_trng = 0.2;
    tc.weight_dealloc = 0.1;
    tc.offered_rps = offered_rps;
    return RequestGenerator(tc, devices).generate();
}

TEST(AuthServiceAdmission, OverloadShedsAndProtectsUrgent)
{
    DeviceFleet fleet(servingFleetConfig());
    EnrollmentStore store(fleet.config().population_seed);
    AuthService probe(fleet, store, {});
    probe.enrollAll();
    const double capacity = probe.modeledCapacityRps();
    ASSERT_GT(capacity, 0.0);

    AuthConfig ac;
    ac.admission.capacity_rps = capacity;
    AuthService service(fleet, store, ac);
    const LoadReport r = service.execute(
        overloadStream(fleet.devices(), 3.0 * capacity));

    EXPECT_TRUE(r.admission_on);
    EXPECT_GT(r.shed, 0u);
    EXPECT_EQ(r.admitted + r.shed, r.requests);
    EXPECT_EQ(r.shed, r.shed_urgent + r.shed_best_effort);
    EXPECT_EQ(r.shed,
              r.shed_deadline + r.shed_queue + r.shed_bucket);

    // Urgent protection: the urgent shed fraction never exceeds the
    // best-effort shed fraction.
    const uint64_t urgent = r.by_kind[0];
    const uint64_t best_effort = r.requests - urgent;
    ASSERT_GT(urgent, 0u);
    ASSERT_GT(best_effort, 0u);
    const double urgent_frac = static_cast<double>(r.shed_urgent) /
                               static_cast<double>(urgent);
    const double best_frac =
        static_cast<double>(r.shed_best_effort) /
        static_cast<double>(best_effort);
    EXPECT_LE(urgent_frac, best_frac + 1e-9);

    // The admitted urgent tail stays within the class deadline's
    // reach: wait <= deadline, so p99 <= deadline + max service.
    EXPECT_GT(r.admitted_urgent_p99_ns, 0.0);
}

TEST(AuthServiceAdmission, DisabledAdmissionAdmitsEverything)
{
    DeviceFleet fleet(servingFleetConfig());
    EnrollmentStore store(fleet.config().population_seed);
    AuthService service(fleet, store, {});
    service.enrollAll();
    const LoadReport r =
        service.execute(overloadStream(fleet.devices(), 5e6));
    EXPECT_FALSE(r.admission_on);
    EXPECT_EQ(r.admitted, r.requests);
    EXPECT_EQ(r.shed, 0u);
    EXPECT_EQ(r.shed_rate, 0.0);
    // The urgent percentile mirrors the plain authenticate latency.
    EXPECT_GT(r.admitted_urgent_p99_ns, 0.0);
    EXPECT_LE(r.admitted_urgent_p50_ns, r.admitted_urgent_p99_ns);
}

TEST(AuthServiceAdmission, ReportIndependentOfShardsAndThreads)
{
    const auto runWith = [](int shards, int threads) {
        DeviceFleet fleet(servingFleetConfig(48, shards));
        EnrollmentStore store(fleet.config().population_seed);
        AuthConfig ac;
        ac.threads = threads;
        AuthService probe(fleet, store, ac);
        probe.enrollAll();
        ac.admission.capacity_rps = probe.modeledCapacityRps();
        AuthService service(fleet, store, ac);
        return service.execute(overloadStream(
            fleet.devices(), 3.0 * ac.admission.capacity_rps));
    };
    const LoadReport reference = runWith(1, 1);
    EXPECT_TRUE(reference.admission_on);
    EXPECT_GT(reference.shed, 0u);
    expectReportsEqual(reference, runWith(5, 8));
    expectReportsEqual(reference, runWith(3, 2));
}

// --- Shard-placement policies. ---

TEST(ShardSelector, FactoryCoversNamedPoliciesAndRejectsUnknown)
{
    EXPECT_STREQ(ShardSelector::create("modulo")->name(), "modulo");
    EXPECT_STREQ(ShardSelector::create("hash")->name(), "hash");
    EXPECT_THROW(ShardSelector::create("round-robin"), FatalError);
}

TEST(ShardSelector, HashPolicyStaysInRangeAndMixesSequentialIds)
{
    const auto hash = ShardSelector::create("hash");
    int seen[8] = {};
    for (uint64_t id = 0; id < 1000; ++id) {
        const int shard = hash->shardOf(id, 8);
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, 8);
        ++seen[shard];
    }
    // A mixing hash must spread a sequential range over every shard.
    for (int s = 0; s < 8; ++s)
        EXPECT_GT(seen[s], 0) << "shard " << s << " never hit";
}

TEST(ShardSelector, ExplicitPinsOverrideTheFallback)
{
    ExplicitShardSelector sel({{7, 3}, {9, 7}},
                              ShardSelector::create("modulo"));
    EXPECT_EQ(sel.shardOf(7, 4), 3);
    EXPECT_EQ(sel.shardOf(6, 4), 2);       // Fallback modulo.
    EXPECT_EQ(sel.shardOf(9, 4), 1);       // Pin out of range: falls
                                           // back to 9 % 4.
    EXPECT_EQ(sel.pinnedDevices(), 2u);
}

TEST(ShardSelector, RebalancedSelectorSpreadsAModuloHotspot)
{
    // Devices 0, 4, 8, 12 all land on shard 0 under modulo with 4
    // shards; a measured stream pins them onto distinct shards.
    std::vector<FleetRequest> stream;
    const auto addRequests = [&](uint64_t id, int n) {
        for (int i = 0; i < n; ++i) {
            FleetRequest r;
            r.device_id = id;
            stream.push_back(r);
        }
    };
    addRequests(0, 100);
    addRequests(4, 50);
    addRequests(8, 30);
    addRequests(12, 20);

    const auto sel = rebalancedSelector(
        stream, 4, ShardSelector::create("modulo"));
    std::set<int> shards;
    for (uint64_t id : {0ull, 4ull, 8ull, 12ull})
        shards.insert(sel->shardOf(id, 4));
    EXPECT_EQ(shards.size(), 4u) << "hot devices still colocated";
    // Unmeasured devices fall through to the modulo fallback.
    EXPECT_EQ(sel->shardOf(16, 4), 0);
}

TEST(ShardSelector, PlacementNeverChangesTheStructuredReport)
{
    const auto runWith =
        [](std::shared_ptr<const ShardSelector> sel) {
            FleetConfig fc = servingFleetConfig(48, 4);
            fc.shard_selector = std::move(sel);
            DeviceFleet fleet(fc);
            EnrollmentStore store(fc.population_seed);
            AuthService service(fleet, store, {});
            service.enrollAll();
            return service.execute(
                overloadStream(fleet.devices(), 0.0));
        };
    const LoadReport modulo = runWith(nullptr);
    expectReportsEqual(modulo, runWith(ShardSelector::create("hash")));
    expectReportsEqual(modulo,
                       runWith(rebalancedSelector(
                           overloadStream(48, 0.0), 4,
                           ShardSelector::create("modulo"))));
}

TEST(DeviceFleet, ShardDeviceIdsPartitionUnderAnySelector)
{
    FleetConfig fc = servingFleetConfig(20, 3);
    fc.shard_selector = ShardSelector::create("hash");
    DeviceFleet fleet(fc);
    size_t total = 0;
    for (int s = 0; s < fleet.shards(); ++s) {
        for (uint64_t id : fleet.shardDeviceIds(s))
            EXPECT_EQ(fleet.shardOf(id), s);
        total += fleet.shardDeviceIds(s).size();
    }
    EXPECT_EQ(total, 20u);
}

// --- Multi-region serving. ---

RegionConfig
testRegion(const std::string &name, uint64_t seed,
           uint64_t traffic_seed)
{
    RegionConfig rc;
    rc.name = name;
    rc.fleet = servingFleetConfig(32, 2);
    rc.fleet.population_seed = seed;
    rc.traffic.traffic_seed = traffic_seed;
    rc.traffic.requests = 300;
    rc.traffic.zipf = 0.8;
    rc.traffic.weight_auth = 0.8;
    rc.traffic.weight_trng = 0.2;
    return rc;
}

TEST(RegionSet, SingleRegionMatchesStandaloneService)
{
    const RegionConfig rc = testRegion("solo", 123, 11);
    RegionSet set({rc});
    set.enrollAll(2);
    const auto result = set.serve(2);
    ASSERT_EQ(result.reports.size(), 1u);
    ASSERT_EQ(result.names[0], "solo");

    DeviceFleet fleet(rc.fleet);
    EnrollmentStore store(rc.fleet.population_seed);
    AuthService service(fleet, store, rc.auth);
    service.enrollAll();
    const LoadReport solo = service.execute(
        RequestGenerator(rc.traffic, fleet.devices()).generate());
    expectReportsEqual(result.reports[0], solo);

    EXPECT_EQ(result.global.requests, solo.requests);
    EXPECT_EQ(result.global.admitted, solo.requests);
    EXPECT_EQ(result.global.latency_p50_ns, solo.latency_p50_ns);
}

TEST(RegionSet, ReportsIndependentOfThreadCount)
{
    const auto serveWith = [](int threads) {
        RegionSet set({testRegion("a", 100, 5),
                       testRegion("b", 200, 7)});
        set.enrollAll(threads);
        return set.serve(threads);
    };
    const auto one = serveWith(1);
    const auto eight = serveWith(8);
    ASSERT_EQ(one.reports.size(), 2u);
    for (size_t r = 0; r < one.reports.size(); ++r)
        expectReportsEqual(one.reports[r], eight.reports[r]);
    EXPECT_EQ(one.global.requests, eight.global.requests);
    EXPECT_EQ(one.global.latency_p50_ns,
              eight.global.latency_p50_ns);
    EXPECT_EQ(one.global.latency_p99_ns,
              eight.global.latency_p99_ns);
    EXPECT_EQ(one.global.total_energy_nj,
              eight.global.total_energy_nj);
}

TEST(RegionSet, GlobalRollupSumsTheRegions)
{
    RegionSet set(
        {testRegion("a", 100, 5), testRegion("b", 200, 7)});
    set.enrollAll(2);
    const auto result = set.serve(2);
    uint64_t requests = 0, admitted = 0;
    for (const LoadReport &r : result.reports) {
        requests += r.requests;
        admitted += r.admitted;
    }
    EXPECT_EQ(result.global.requests, requests);
    EXPECT_EQ(result.global.admitted, admitted);
    EXPECT_EQ(result.global.shed, requests - admitted);
}

// --- RunOptions contract for the serving CLI surface. ---

TEST(RunOptions, RejectsOutOfContractServingOptions)
{
    const auto rejects = [](auto mutate) {
        RunOptions o;
        mutate(o);
        EXPECT_THROW(o.validate(), FatalError);
    };
    rejects([](RunOptions &o) { o.regions = -1; });
    rejects([](RunOptions &o) { o.shed = -0.5; });
    rejects([](RunOptions &o) { o.shed = std::nan(""); });
    rejects([](RunOptions &o) {
        o.shed = std::numeric_limits<double>::infinity();
    });
    rejects([](RunOptions &o) { o.store_mmap = true; });
    rejects([](RunOptions &o) {
        o.store_mmap = true;
        o.store_path = "fleet.json"; // No record index to map.
    });
}

TEST(RunOptions, AcceptsTheServingDefaultsAndOverrides)
{
    RunOptions o;
    o.validate(); // Defaults are always in contract.
    o.regions = 4;
    o.shed = 0.0;
    o.store_mmap = true;
    o.store_path = "fleet.bin";
    o.validate();
    EXPECT_EQ(o.regionsOr(3), 4);
    EXPECT_EQ(o.shedOr(125.0), 0.0);
    o.shed = -1.0;
    EXPECT_EQ(o.shedOr(125.0), 125.0);
    o.regions = 0;
    EXPECT_EQ(o.regionsOr(3), 3);
}

} // namespace
} // namespace codic
