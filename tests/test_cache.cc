/**
 * @file
 * Direct unit tests of the set-associative write-back cache model
 * (sim/cache.h). Until the trace subsystem made it a public
 * ingestion dependency (trace/cache_filter.h), the cache was only
 * exercised indirectly through the trace-driven core; these tests
 * pin its replacement, write-allocate, writeback, and flush
 * semantics on their own.
 */

#include <gtest/gtest.h>

#include "sim/cache.h"

namespace codic {
namespace {

constexpr uint64_t kLine = 64;

// One set, four ways: eviction order is fully observable.
Cache
oneSetCache()
{
    return Cache(4 * kLine, 4, static_cast<int>(kLine));
}

TEST(Cache, MissThenHitWithinOneLine)
{
    Cache c(1 << 20, 16);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    // Any byte of the same 64 B line hits.
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103F, false).hit);
    EXPECT_FALSE(c.access(0x1040, false).hit);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, WriteAllocateMakesStoresHitAfterMiss)
{
    Cache c(1 << 20, 16);
    EXPECT_FALSE(c.access(0x2000, true).hit);
    EXPECT_TRUE(c.access(0x2000, false).hit);
}

TEST(Cache, LruEvictsLeastRecentlyUsedWay)
{
    Cache c = oneSetCache();
    // Fill the set: lines 0..3.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_FALSE(c.access(i * kLine, false).hit);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.access(0, false).hit);
    // A fifth line evicts line 1 (clean: no writeback).
    const CacheAccessResult r = c.access(4 * kLine, false);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.writeback);
    EXPECT_TRUE(c.access(0, false).hit) << "recently used survived";
    EXPECT_FALSE(c.access(1 * kLine, false).hit) << "LRU evicted";
}

TEST(Cache, DirtyVictimReportsWritebackWithVictimLineAddress)
{
    Cache c = oneSetCache();
    c.access(0 * kLine, true); // Dirty: the future LRU victim.
    c.access(1 * kLine, false);
    c.access(2 * kLine, false);
    c.access(3 * kLine, false);
    const CacheAccessResult r = c.access(4 * kLine, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_addr, 0u * kLine);
}

TEST(Cache, FlushLineReportsDirtyAndInvalidates)
{
    Cache c(1 << 20, 16);
    c.access(0x3000, true);
    c.access(0x4000, false);
    EXPECT_TRUE(c.flushLine(0x3000)) << "dirty line needs writeback";
    EXPECT_FALSE(c.flushLine(0x4000)) << "clean line does not";
    EXPECT_FALSE(c.flushLine(0x5000)) << "absent line does not";
    // Both flushed lines are gone.
    EXPECT_FALSE(c.access(0x3000, false).hit);
    EXPECT_FALSE(c.access(0x4000, false).hit);
}

TEST(Cache, InvalidateRangeDropsCoveredLinesWithoutWriteback)
{
    Cache c(1 << 20, 16);
    c.access(0x8000, true);  // Dirty, inside the range.
    c.access(0x8040, false); // Clean, inside.
    c.access(0x9000, true);  // Dirty, outside.
    c.invalidateRange(0x8000, 0x1000);
    EXPECT_FALSE(c.access(0x8000, false).hit);
    EXPECT_FALSE(c.access(0x8040, false).hit);
    EXPECT_TRUE(c.access(0x9000, false).hit);
    // The dirty line inside the range was discarded, not written
    // back (hardware deallocation semantics): flushing its address
    // now reports clean.
    EXPECT_FALSE(c.flushLine(0x8000));
}

TEST(Cache, CountersTallyEveryAccess)
{
    Cache c = oneSetCache();
    for (uint64_t i = 0; i < 8; ++i)
        c.access(i * kLine, i % 2 == 0);
    EXPECT_EQ(c.hits() + c.misses(), 8u);
    EXPECT_EQ(c.misses(), 8u) << "8 distinct lines in a 4-way set";
    EXPECT_EQ(c.lineBytes(), static_cast<int>(kLine));
}

} // namespace
} // namespace codic
