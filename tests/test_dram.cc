/**
 * @file
 * Tests of the architectural DRAM model: configuration scaling, the
 * JEDEC timing checker, bank/rank state, FAW enforcement, row
 * data-state tracking, the CODIC command, RowClone / LISA commands,
 * and the refresh engine.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "dram/channel.h"
#include "dram/config.h"
#include "dram/refresh.h"

namespace codic {
namespace {

DramConfig
smallConfig()
{
    return DramConfig::ddr3_1600(64); // 64 MB: 1024 rows/bank.
}

Command
cmd(CommandType t, int bank = 0, int64_t row = 0, int col = 0)
{
    Command c;
    c.type = t;
    c.addr.bank = bank;
    c.addr.row = row;
    c.addr.column = col;
    return c;
}

// --- Configuration. ---

TEST(DramConfig, CapacityMatchesGeometry)
{
    const DramConfig cfg = DramConfig::ddr3_1600(8192);
    EXPECT_EQ(cfg.capacityBytes(), 8192ll << 20);
    EXPECT_EQ(cfg.rows * cfg.banks * cfg.row_bytes, 8192ll << 20);
}

class ConfigSizeTest : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(ConfigSizeTest, RowsScaleLinearlyWithCapacity)
{
    const int64_t mb = GetParam();
    const DramConfig cfg = DramConfig::ddr3_1600(mb);
    EXPECT_EQ(cfg.capacityBytes(), mb << 20);
    EXPECT_EQ(cfg.totalRows(), (mb << 20) / cfg.row_bytes);
}

INSTANTIATE_TEST_SUITE_P(Fig7Sizes, ConfigSizeTest,
                         ::testing::Values(64, 256, 1024, 4096, 16384,
                                           65536));

TEST(DramConfig, CycleConversionRoundsUp)
{
    const DramConfig cfg = DramConfig::ddr3_1600(64);
    EXPECT_EQ(cfg.nsToCycles(1.25), 1);
    EXPECT_EQ(cfg.nsToCycles(1.26), 2);
    EXPECT_EQ(cfg.nsToCycles(35.0), 28);
    EXPECT_DOUBLE_EQ(cfg.cyclesToNs(28), 35.0);
}

TEST(DramConfig, TrfcGrowsWithDensity)
{
    EXPECT_LT(DramConfig::ddr3_1600(1024).timing.trfc,
              DramConfig::ddr3_1600(65536).timing.trfc);
}

TEST(DramConfig, Ddr3_1333SlowerClock)
{
    const DramConfig cfg = DramConfig::ddr3_1333(2048);
    EXPECT_DOUBLE_EQ(cfg.tck_ns, 1.5);
    EXPECT_EQ(cfg.timing.trcd, 9);
}

TEST(DramConfig, EveryNamedPresetValidatesAtAnyGeometry)
{
    for (const auto &name : DramConfig::presetNames()) {
        SCOPED_TRACE(name);
        const DramConfig cfg = DramConfig::preset(name, 2048, 2, 2);
        cfg.validate();
        EXPECT_EQ(cfg.channels, 2);
        EXPECT_EQ(cfg.ranks, 2);
        EXPECT_EQ(cfg.capacityBytes(), 2048ll << 20);
        EXPECT_EQ(static_cast<int64_t>(cfg.columns) * cfg.burst_bytes,
                  cfg.row_bytes);
    }
    EXPECT_THROW(DramConfig::preset("ddr5-6400", 64), FatalError);
}

TEST(DramConfig, Ddr4GradesHaveSixteenBanksAndFasterClocks)
{
    const DramConfig d24 = DramConfig::ddr4_2400(1024);
    EXPECT_EQ(d24.banks, 16);
    EXPECT_DOUBLE_EQ(d24.tck_ns, 0.833);
    EXPECT_EQ(d24.timing.trcd, 17);
    const DramConfig d32 = DramConfig::preset("ddr4-3200", 1024);
    EXPECT_EQ(d32.banks, 16);
    EXPECT_DOUBLE_EQ(d32.tck_ns, 0.625);
    EXPECT_EQ(d32.timing.trcd, 22);
    // The analog timings are fixed in nanoseconds, so their cycle
    // counts grow with the clock rate: tRAS = 32 ns is 39 cycles at
    // DDR4-2400 but 52 at DDR4-3200.
    EXPECT_LT(d24.timing.tras, d32.timing.tras);
    EXPECT_DOUBLE_EQ(d24.cyclesToNs(d24.nsToCycles(32.0)),
                     d24.timing.tras * d24.tck_ns);
    // 16 banks halve the rows-per-bank count at equal capacity.
    EXPECT_EQ(d24.rows * 2, DramConfig::ddr3_1600(1024).rows);
}

TEST(DramConfig, Ddr4ModuleRunsTimedCommands)
{
    // The JEDEC checker must accept a full ACT/RD/WR/PRE/REF round
    // trip under the DDR4 cycle counts (16-bank addressing included).
    const DramConfig cfg = DramConfig::ddr4_3200(64);
    DramChannel ch(cfg);
    Cycle t = ch.issueAtEarliest(cmd(CommandType::Act, 15, 3), 0);
    t = ch.issueAtEarliest(cmd(CommandType::Wr, 15, 3, 1), t);
    t = ch.issueAtEarliest(cmd(CommandType::Rd, 15, 3, 2), t);
    t = ch.issueAtEarliest(cmd(CommandType::Pre, 15, 3), t);
    t = ch.issueAtEarliest(cmd(CommandType::Ref), t);
    EXPECT_GT(t, cfg.timing.trcd + cfg.timing.tras);
    EXPECT_EQ(ch.counts().ref, 1u);
}

// --- Basic command legality and the timing checker. ---

TEST(Channel, ActThenReadRespectsTrcd)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act), 0);
    EXPECT_EQ(ch.earliest(cmd(CommandType::Rd)), t.trcd);
    EXPECT_THROW(ch.issue(cmd(CommandType::Rd), t.trcd - 1), PanicError);
    EXPECT_NO_THROW(ch.issue(cmd(CommandType::Rd), t.trcd));
}

TEST(Channel, ActThenPreRespectsTras)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act), 0);
    EXPECT_EQ(ch.earliest(cmd(CommandType::Pre)), t.tras);
    EXPECT_THROW(ch.issue(cmd(CommandType::Pre), t.tras - 1),
                 PanicError);
}

TEST(Channel, PreThenActRespectsTrp)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act), 0);
    ch.issue(cmd(CommandType::Pre), t.tras);
    EXPECT_EQ(ch.earliest(cmd(CommandType::Act, 0, 1)),
              t.tras + t.trp);
}

TEST(Channel, SameBankActToActRespectsTrc)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act), 0);
    ch.issue(cmd(CommandType::Pre), t.tras);
    // tRC = tRAS + tRP here, so the constraint coincides with
    // PRE + tRP; both must hold.
    EXPECT_GE(ch.earliest(cmd(CommandType::Act, 0, 1)), t.trc);
}

TEST(Channel, DifferentBankActsRespectTrrd)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act, 0), 0);
    EXPECT_EQ(ch.earliest(cmd(CommandType::Act, 1)), t.trrd);
}

TEST(Channel, FawLimitsFourActivates)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    Cycle at = 0;
    for (int b = 0; b < 4; ++b) {
        Cycle issued;
        ch.issueAtEarliest(cmd(CommandType::Act, b), at, &issued);
        at = issued;
    }
    // The fifth activate must wait for the FAW window to roll over.
    EXPECT_GE(ch.earliest(cmd(CommandType::Act, 4)), t.tfaw);
}

TEST(Channel, ReadToClosedRowPanics)
{
    DramChannel ch(smallConfig());
    EXPECT_THROW(ch.earliest(cmd(CommandType::Rd)), PanicError);
}

TEST(Channel, ReadToWrongRowPanics)
{
    DramChannel ch(smallConfig());
    ch.issue(cmd(CommandType::Act, 0, 3), 0);
    EXPECT_THROW(ch.earliest(cmd(CommandType::Rd, 0, 4)), PanicError);
}

TEST(Channel, DoubleActivatePanics)
{
    DramChannel ch(smallConfig());
    ch.issue(cmd(CommandType::Act), 0);
    EXPECT_THROW(ch.earliest(cmd(CommandType::Act, 0, 1)), PanicError);
}

TEST(Channel, WriteRecoveryDelaysPrecharge)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act), 0);
    const Cycle wr_at = t.trcd;
    ch.issue(cmd(CommandType::Wr), wr_at);
    EXPECT_GE(ch.earliest(cmd(CommandType::Pre)),
              wr_at + t.tcwl + t.tbl + t.twr);
}

TEST(Channel, ReadToPreRespectsTrtp)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act), 0);
    const Cycle rd_at = t.trcd;
    ch.issue(cmd(CommandType::Rd), rd_at);
    EXPECT_GE(ch.earliest(cmd(CommandType::Pre)), rd_at + t.trtp);
}

TEST(Channel, ConsecutiveReadsRespectTccd)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act), 0);
    const Cycle rd_at = t.trcd;
    ch.issue(cmd(CommandType::Rd, 0, 0, 0), rd_at);
    EXPECT_EQ(ch.earliest(cmd(CommandType::Rd, 0, 0, 1)),
              rd_at + t.tccd);
}

TEST(Channel, WriteToReadTurnaround)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act), 0);
    const Cycle wr_at = t.trcd;
    ch.issue(cmd(CommandType::Wr), wr_at);
    EXPECT_GE(ch.earliest(cmd(CommandType::Rd)),
              wr_at + t.tcwl + t.tbl + t.twtr);
}

TEST(Channel, RefreshRequiresAllBanksPrecharged)
{
    DramChannel ch(smallConfig());
    ch.issue(cmd(CommandType::Act), 0);
    EXPECT_THROW(ch.earliest(cmd(CommandType::Ref)), PanicError);
}

TEST(Channel, RefreshBlocksSubsequentActivates)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Ref), 0);
    EXPECT_GE(ch.earliest(cmd(CommandType::Act)), t.trfc);
}

TEST(Channel, PreAllClosesEveryBank)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    Cycle at = 0;
    for (int b = 0; b < 3; ++b) {
        Cycle issued;
        ch.issueAtEarliest(cmd(CommandType::Act, b), at, &issued);
        at = issued;
    }
    ch.issueAtEarliest(cmd(CommandType::PreAll), at + t.tras);
    for (int b = 0; b < 3; ++b)
        EXPECT_FALSE(ch.bankActive(0, b));
}

TEST(Channel, AddressRangeChecked)
{
    DramChannel ch(smallConfig());
    Command bad = cmd(CommandType::Act);
    bad.addr.row = ch.config().rows; // One past the end.
    EXPECT_THROW(ch.earliest(bad), PanicError);
    bad = cmd(CommandType::Act);
    bad.addr.bank = ch.config().banks;
    EXPECT_THROW(ch.earliest(bad), PanicError);
}

// --- Row data-state tracking. ---

TEST(Channel, WriteMarksRowAsData)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act, 0, 5), 0);
    ch.issue(cmd(CommandType::Wr, 0, 5), t.trcd);
    EXPECT_EQ(ch.rowState(0, 0, 5), RowDataState::Data);
}

TEST(Channel, ZeroFillWriteMarksRowAsZeroes)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act, 0, 5), 0);
    Command wr = cmd(CommandType::Wr, 0, 5);
    wr.zero_fill = true;
    ch.issue(wr, t.trcd);
    EXPECT_EQ(ch.rowState(0, 0, 5), RowDataState::Zeroes);
}

TEST(Channel, CodicSigThenActivateYieldsSignature)
{
    DramChannel ch(smallConfig());
    const int sig = ch.registerVariant(variants::sig().schedule);
    ch.setRowState(0, 0, 7, RowDataState::Data);

    Command c = cmd(CommandType::Codic, 0, 7);
    c.codic_variant = sig;
    const Cycle done = ch.issue(c, 0);
    EXPECT_EQ(ch.rowState(0, 0, 7), RowDataState::HalfVdd);

    ch.issueAtEarliest(cmd(CommandType::Act, 0, 7), done);
    EXPECT_EQ(ch.rowState(0, 0, 7), RowDataState::SaSignature);
}

TEST(Channel, CodicDetZeroesRow)
{
    DramChannel ch(smallConfig());
    const int det = ch.registerVariant(variants::detZero().schedule);
    ch.setRowState(0, 0, 9, RowDataState::Data);
    Command c = cmd(CommandType::Codic, 0, 9);
    c.codic_variant = det;
    ch.issue(c, 0);
    EXPECT_EQ(ch.rowState(0, 0, 9), RowDataState::Zeroes);
}

TEST(Channel, CodicToActiveBankPanics)
{
    DramChannel ch(smallConfig());
    const int det = ch.registerVariant(variants::detZero().schedule);
    ch.issue(cmd(CommandType::Act), 0);
    Command c = cmd(CommandType::Codic, 0, 1);
    c.codic_variant = det;
    EXPECT_THROW(ch.earliest(c), PanicError);
}

TEST(Channel, CodicWithUnregisteredVariantPanics)
{
    DramChannel ch(smallConfig());
    Command c = cmd(CommandType::Codic);
    c.codic_variant = 42;
    EXPECT_THROW(ch.earliest(c), PanicError);
}

TEST(Channel, CodicOccupiesBankForVariantLatency)
{
    DramChannel ch(smallConfig());
    const int det = ch.registerVariant(variants::detZero().schedule);
    Command c = cmd(CommandType::Codic, 0, 0);
    c.codic_variant = det;
    ch.issue(c, 0);
    // 35 ns at 1.25 ns/cycle = 28 cycles.
    EXPECT_EQ(ch.earliest(cmd(CommandType::Act, 0, 1)), 28);
}

TEST(Channel, ActivationClassCodicCountsTowardFaw)
{
    DramChannel ch(smallConfig());
    const int det = ch.registerVariant(variants::detZero().schedule);
    Cycle at = 0;
    for (int b = 0; b < 4; ++b) {
        Command c = cmd(CommandType::Codic, b, 0);
        c.codic_variant = det;
        Cycle issued;
        ch.issueAtEarliest(c, at, &issued);
        at = issued;
    }
    EXPECT_GE(ch.earliest(cmd(CommandType::Act, 4)),
              ch.config().timing.tfaw);
}

TEST(Channel, PrechargeClassCodicDoesNotCountTowardFaw)
{
    DramChannel ch(smallConfig());
    const int opt = ch.registerVariant(variants::sigOpt().schedule);
    Cycle at = 0;
    for (int b = 0; b < 4; ++b) {
        Command c = cmd(CommandType::Codic, b, 0);
        c.codic_variant = opt;
        Cycle issued;
        ch.issueAtEarliest(c, at, &issued);
        at = issued;
    }
    EXPECT_LT(ch.earliest(cmd(CommandType::Act, 4)),
              ch.config().timing.tfaw);
}

TEST(Channel, RegisterVariantRoundTripsThroughModeRegisters)
{
    DramChannel ch(smallConfig());
    const int id = ch.registerVariant(variants::sigsa().schedule);
    EXPECT_EQ(ch.variantSchedule(id), variants::sigsa().schedule);
}

// --- RowClone / LISA. ---

TEST(Channel, RowCloneCopiesRowState)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.setRowState(0, 0, 0, RowDataState::Zeroes);
    ch.setRowState(0, 0, 5, RowDataState::Data);
    ch.issue(cmd(CommandType::Act, 0, 0), 0);
    ch.issueAtEarliest(cmd(CommandType::RowClone, 0, 5), t.tras);
    EXPECT_EQ(ch.rowState(0, 0, 5), RowDataState::Zeroes);
    EXPECT_EQ(ch.openRow(0, 0), 5);
}

TEST(Channel, RowCloneRequiresOpenSourceRow)
{
    DramChannel ch(smallConfig());
    EXPECT_THROW(ch.earliest(cmd(CommandType::RowClone, 0, 5)),
                 PanicError);
}

TEST(Channel, RowCloneGatedOnSourceRestore)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act, 0, 0), 0);
    EXPECT_GE(ch.earliest(cmd(CommandType::RowClone, 0, 5)), t.tras);
}

TEST(Channel, LisaRbmRequiresOpenRow)
{
    DramChannel ch(smallConfig());
    EXPECT_THROW(ch.earliest(cmd(CommandType::LisaRbm)), PanicError);
}

TEST(Channel, LisaRbmHoldsRankActivations)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act, 0, 0), 0);
    const Cycle rbm_at = t.trcd;
    ch.issueAtEarliest(cmd(CommandType::LisaRbm, 0, 0), rbm_at);
    EXPECT_GE(ch.earliest(cmd(CommandType::Act, 1)),
              rbm_at + ch.config().nsToCycles(t.trbm_hold_ns));
}

// --- Bulk state helpers and counters. ---

TEST(Channel, FillAndCountRows)
{
    DramChannel ch(smallConfig());
    ch.fillAllRows(RowDataState::Data);
    EXPECT_EQ(ch.countRowsInState(RowDataState::Data),
              ch.config().totalRows());
    ch.setRowState(0, 0, 0, RowDataState::Zeroes);
    EXPECT_EQ(ch.countRowsInState(RowDataState::Data),
              ch.config().totalRows() - 1);
}

TEST(Channel, CommandCountersTrackIssues)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Act), 0);
    ch.issue(cmd(CommandType::Rd), t.trcd);
    ch.issue(cmd(CommandType::Wr), t.trcd + t.tccd + 20);
    EXPECT_EQ(ch.counts().act, 1u);
    EXPECT_EQ(ch.counts().rd, 1u);
    EXPECT_EQ(ch.counts().wr, 1u);
    EXPECT_EQ(ch.counts().total(), 3u);
}

TEST(Channel, MrsBlocksRankBriefly)
{
    DramChannel ch(smallConfig());
    const auto &t = ch.config().timing;
    ch.issue(cmd(CommandType::Mrs), 0);
    EXPECT_EQ(ch.earliest(cmd(CommandType::Act)), t.tmrd);
}

// --- Refresh engine. ---

TEST(Refresh, CatchUpIssuesDueRefreshes)
{
    DramChannel ch(smallConfig());
    RefreshEngine ref(ch, 0);
    const Cycle trefi = ch.config().timing.trefi;
    EXPECT_EQ(ref.catchUp(trefi * 3), 3);
    EXPECT_EQ(ch.counts().ref, 3u);
    EXPECT_EQ(ref.nextDue(), trefi * 4);
}

TEST(Refresh, DutyCycleMatchesTimingRatio)
{
    DramChannel ch(smallConfig());
    RefreshEngine ref(ch, 0);
    const auto &t = ch.config().timing;
    EXPECT_DOUBLE_EQ(ref.dutyCycle(),
                     static_cast<double>(t.trfc) /
                         static_cast<double>(t.trefi));
}

} // namespace
} // namespace codic
