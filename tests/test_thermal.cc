/**
 * @file
 * Tests of the closed-loop thermal subsystem: the RC model's idle
 * fixed point (exactly ambient, so the loop reproduces the paper's
 * static 30 C numbers), heating/cooling dynamics, epoch activity
 * accounting (snapshot differencing against the cumulative per-bank
 * counters and the open-row residency clock), the deterministic
 * monotone temperature -> PUF flip response, throttle hysteresis,
 * and the thermal/co-sim option validation.
 */

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/run_options.h"
#include "dram/system.h"
#include "puf/chip_model.h"
#include "puf/sig_puf.h"
#include "thermal/epoch_stats.h"
#include "thermal/thermal_model.h"

namespace codic {
namespace {

DramConfig
cfg()
{
    return DramConfig::ddr3_1600(256);
}

BankEpochActivity
activity(uint64_t act, uint64_t rd, uint64_t wr, uint64_t ref = 0,
         Cycle open = 0)
{
    BankEpochActivity a;
    a.act = act;
    a.rd = rd;
    a.wr = wr;
    a.ref = ref;
    a.open_cycles = open;
    return a;
}

// --- RC model dynamics. ---

TEST(Thermal, IdleBankSitsExactlyAtAmbient)
{
    // The idle fixed point must be exact (not asymptotic): zero
    // activity means P = 0, T_ss = ambient, and a bank already at
    // ambient stays bit-identical there - the invariant that makes
    // the closed loop reproduce the paper's static numbers.
    ThermalConfig tc;
    ThermalModel model(tc, 8);
    const std::vector<BankEpochActivity> idle(
        8, activity(0, 0, 0, 0, 0));
    for (int e = 0; e < 100; ++e) {
        model.stepEpoch(idle, 100e3, 1.25);
        for (size_t b = 0; b < model.bankCount(); ++b)
            ASSERT_EQ(model.bankTemp(b), tc.ambient_c);
    }
}

TEST(Thermal, ActivityHeatsAndIdleCoolsMonotonically)
{
    ThermalConfig tc;
    ThermalModel model(tc, 2);
    std::vector<BankEpochActivity> load = {
        activity(500, 0, 20000), activity(0, 0, 0)};
    double prev = tc.ambient_c;
    for (int e = 0; e < 10; ++e) {
        model.stepEpoch(load, 100e3, 1.25);
        EXPECT_GT(model.bankTemp(0), prev);
        EXPECT_EQ(model.bankTemp(1), tc.ambient_c);
        prev = model.bankTemp(0);
    }
    EXPECT_EQ(model.hottestBank(), 0u);
    EXPECT_EQ(model.maxTemp(), model.bankTemp(0));

    // Cooling relaxes toward ambient without ever crossing it.
    for (int e = 0; e < 60; ++e) {
        model.stepIdle(100e3);
        EXPECT_LT(model.bankTemp(0), prev);
        EXPECT_GT(model.bankTemp(0), tc.ambient_c);
        prev = model.bankTemp(0);
    }
    EXPECT_NEAR(model.bankTemp(0), tc.ambient_c, 0.5);
}

TEST(Thermal, SteadyStateMatchesPowerOverConductance)
{
    // Constant power converges to T_ss = ambient + P / G.
    ThermalConfig tc;
    ThermalModel model(tc, 1);
    const std::vector<BankEpochActivity> load = {
        activity(1000, 0, 10000)};
    const double epoch_ns = 100e3;
    const double energy_nj = model.bankEnergyNj(load[0], 1.25);
    const double power_w = energy_nj * 1e-9 / (epoch_ns * 1e-9);
    const double t_ss =
        tc.ambient_c + power_w / tc.conductance_w_per_k;
    for (int e = 0; e < 200; ++e)
        model.stepEpoch(load, epoch_ns, 1.25);
    EXPECT_NEAR(model.bankTemp(0), t_ss, 1e-6);
}

TEST(Thermal, BankEnergyAddsCommandAndResidencyTerms)
{
    ThermalConfig tc;
    ThermalModel model(tc, 1);
    EnergyParams ep;
    EXPECT_DOUBLE_EQ(model.bankEnergyNj(activity(0, 0, 0), 1.25), 0.0);
    EXPECT_DOUBLE_EQ(model.bankEnergyNj(activity(0, 3, 0), 1.25),
                     3 * ep.rd_burst_nj);
    EXPECT_DOUBLE_EQ(model.bankEnergyNj(activity(0, 0, 5), 1.25),
                     5 * ep.wr_burst_nj);
    EXPECT_DOUBLE_EQ(model.bankEnergyNj(activity(0, 0, 0, 2), 1.25),
                     2 * ep.ref_nj);
    EXPECT_DOUBLE_EQ(model.bankEnergyNj(activity(1, 0, 0), 1.25),
                     actPreEnergyNj(ep));
    // 800 cycles * 1.25 ns * 2 mW = 1000 ns * 2e-3 nJ/ns = 2 nJ.
    EXPECT_DOUBLE_EQ(
        model.bankEnergyNj(activity(0, 0, 0, 0, 800), 1.25),
        tc.open_row_mw * 1000.0 * 1e-3);
}

// --- Epoch activity accounting. ---

TEST(Thermal, EpochStatsDifferencesCumulativeCounters)
{
    DramSystem sys(cfg());
    EpochStats stats(sys);
    ASSERT_EQ(stats.bankCount(), sys.perBankCounts().size());

    // Epoch 1: some reads across two banks.
    for (uint64_t i = 0; i < 10; ++i)
        sys.read(i * 64, i * 4);
    const Cycle t1 = sys.read(1 << 14, 100);
    auto epoch1 = stats.endEpoch(t1);
    uint64_t rd1 = 0, act1 = 0;
    for (const auto &a : epoch1) {
        rd1 += a.rd;
        act1 += a.act;
    }
    EXPECT_EQ(rd1, sys.totalCounts().rd);
    EXPECT_EQ(act1, sys.totalCounts().act);

    // Epoch 2: only the delta shows, not the cumulative totals.
    const Cycle t2 = sys.write(0, t1 + 100);
    sys.drainAll();
    auto epoch2 = stats.endEpoch(t2 + 1000);
    uint64_t rd2 = 0, wr2 = 0;
    for (const auto &a : epoch2) {
        rd2 += a.rd;
        wr2 += a.wr;
    }
    EXPECT_EQ(rd2, 0u);
    EXPECT_EQ(wr2, sys.totalCounts().wr);
}

TEST(Thermal, PerBankCountersSumToScalarCounters)
{
    DramSystem sys(cfg());
    for (uint64_t i = 0; i < 200; ++i)
        sys.read(i * 4096, i * 8);
    for (uint64_t i = 0; i < 50; ++i)
        sys.write(i * 8192, 2000 + i * 8);
    sys.drainAll();

    const CommandCounts totals = sys.totalCounts();
    uint64_t act = 0, rd = 0, wr = 0;
    for (const auto &b : sys.perBankCounts()) {
        act += b.act;
        rd += b.rd;
        wr += b.wr;
    }
    EXPECT_EQ(act, totals.act);
    EXPECT_EQ(rd, totals.rd);
    EXPECT_EQ(wr, totals.wr);
    EXPECT_GT(rd, 0u);
    EXPECT_GT(wr, 0u);
}

TEST(Thermal, OpenResidencyTracksActToPrech)
{
    DramChannel ch(cfg());
    Command act;
    act.type = CommandType::Act;
    Command pre;
    pre.type = CommandType::Pre;

    // ACT at 100: residency accrues while the row stays open.
    ch.issue(act, 100);
    EXPECT_EQ(ch.openResidency(0, 0, 100), 0u);
    EXPECT_EQ(ch.openResidency(0, 0, 350), 250u);
    // PRE at 400 freezes the clock at 300 open cycles.
    ch.issue(pre, 400);
    EXPECT_EQ(ch.openResidency(0, 0, 400), 300u);
    EXPECT_EQ(ch.openResidency(0, 0, 1400), 300u);
    // A second ACT/PRE episode accumulates on top.
    ch.issueAtEarliest(act, 1500);
    ch.issueAtEarliest(pre, 1700);
    EXPECT_EQ(ch.openResidency(0, 0, 3000), 500u);
}

// --- Temperature -> PUF feedback. ---

TEST(Thermal, SigPufResponseDegradesMonotonicallyWithTemperature)
{
    const auto chips = buildPaperPopulation(2021);
    const SimulatedChip &chip = chips.front();
    const CodicSigPuf puf;
    Challenge ch;
    ch.segment_id = 3;
    QueryEnv env;
    env.nonce = 42;

    env.temperature_c = 30.0;
    const Response enrolled = puf.evaluateFiltered(chip, ch, env);
    ASSERT_GT(enrolled.size(), 0u);

    double prev_jaccard = 1.0;
    for (double t : {35.0, 42.0, 50.0, 60.0, 75.0}) {
        env.temperature_c = t;
        const Response r = puf.evaluateFiltered(chip, ch, env);
        const double j = jaccard(enrolled, r);
        EXPECT_LE(j, prev_jaccard) << "at " << t << " C";
        prev_jaccard = j;
    }
    // A 45 C delta must produce a nonzero flip response.
    EXPECT_LT(prev_jaccard, 1.0);
}

// --- Throttle hysteresis. ---

TEST(Thermal, ThrottleEngagesAboveCeilingReleasesBelowFloor)
{
    ThermalThrottle throttle(36.0, 34.0);
    EXPECT_FALSE(throttle.update(35.9)); // Below ceiling: off.
    EXPECT_TRUE(throttle.update(36.1));  // Crossed: on.
    EXPECT_TRUE(throttle.update(35.0));  // In the band: stays on.
    EXPECT_TRUE(throttle.update(34.0));  // At the floor: stays on.
    EXPECT_FALSE(throttle.update(33.9)); // Below floor: off.
    EXPECT_FALSE(throttle.update(35.5)); // In the band: stays off.
    EXPECT_EQ(throttle.engagements(), 1u);
    EXPECT_TRUE(throttle.update(40.0));
    EXPECT_EQ(throttle.engagements(), 2u);
}

TEST(Thermal, ThrottleRejectsInvertedBand)
{
    EXPECT_THROW(ThermalThrottle(34.0, 36.0), PanicError);
}

// --- Option validation. ---

TEST(Thermal, ThermalConfigValidateRejectsOutOfContract)
{
    ThermalConfig tc;
    tc.validate(); // Defaults are valid.

    ThermalConfig bad = tc;
    bad.ambient_c = 130.0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad.ambient_c = std::nan("");
    EXPECT_THROW(bad.validate(), FatalError);

    bad = tc;
    bad.conductance_w_per_k = 0.0;
    EXPECT_THROW(bad.validate(), FatalError);

    bad = tc;
    bad.capacitance_j_per_k = -1.0;
    EXPECT_THROW(bad.validate(), FatalError);

    bad = tc;
    bad.epoch_us = 0.0;
    EXPECT_THROW(bad.validate(), FatalError);

    bad = tc;
    bad.open_row_mw = -0.5;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(Thermal, RunOptionsValidateRejectsBadThermalFlags)
{
    RunOptions good;
    good.validate();

    RunOptions o;
    o.ambient_c = -41.0;
    EXPECT_THROW(o.validate(), FatalError);
    o.ambient_c = 121.0;
    EXPECT_THROW(o.validate(), FatalError);
    o.ambient_c = std::nan("");
    EXPECT_THROW(o.validate(), FatalError);

    o = RunOptions{};
    o.epoch_us = -1.0;
    EXPECT_THROW(o.validate(), FatalError);
    o.epoch_us = std::numeric_limits<double>::infinity();
    EXPECT_THROW(o.validate(), FatalError);

    o = RunOptions{};
    o.cores = -2;
    EXPECT_THROW(o.validate(), FatalError);

    // Sentinels and the paper operating point stay legal.
    o = RunOptions{};
    o.ambient_c = 30.0;
    o.epoch_us = 0.0;
    o.cores = 0;
    o.validate();
    o.epoch_us = 250.0;
    o.cores = 4;
    o.validate();
    EXPECT_DOUBLE_EQ(o.epochUsOr(100.0), 250.0);
    EXPECT_EQ(o.coresOr(2), 4);
    o.epoch_us = 0.0;
    o.cores = 0;
    EXPECT_DOUBLE_EQ(o.epochUsOr(100.0), 100.0);
    EXPECT_EQ(o.coresOr(2), 2);
}

} // namespace
} // namespace codic
