/**
 * @file
 * Trace subsystem tests: binary round-trip fidelity (write -> mmap
 * read -> byte-identical re-write), loud rejection of foreign or
 * damaged files, epoch-index seeks, cache-filter semantics, the
 * DramSystem recorder tap, record -> replay determinism across
 * thread counts, and the flat-RSS streaming guarantee on a
 * 10^7-record trace.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/result_sink.h"
#include "dram/system.h"
#include "scenario/registry.h"
#include "trace/cache_filter.h"
#include "trace/recorder.h"
#include "trace/replay.h"
#include "trace/trace_io.h"

namespace codic {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "codic_trace_test_" + name;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** A mixed-kind record stream with jittered ticks and a RowOp
 *  sprinkle (negative reserved rows exercise the zigzag path). */
std::vector<TraceRecord>
sampleRecords(size_t count, uint64_t seed = 7)
{
    std::vector<TraceRecord> records;
    records.reserve(count);
    uint64_t rng = seed;
    uint64_t tick = 0;
    for (size_t i = 0; i < count; ++i) {
        TraceRecord r;
        tick += splitmix64(rng) % 100;
        r.tick = tick;
        r.addr = (splitmix64(rng) % (1ull << 34)) & ~63ull;
        r.origin = splitmix64(rng) % 5 * (1ull << 30);
        switch (i % 7) {
        case 0: r.kind = TraceOpKind::Load; break;
        case 1: r.kind = TraceOpKind::Store; break;
        case 2: r.kind = TraceOpKind::Flush; break;
        case 3: r.kind = TraceOpKind::Write; break;
        case 4:
            r.kind = TraceOpKind::RowOp;
            r.mech = static_cast<uint8_t>(i % 3);
            r.reserved_row =
                static_cast<int64_t>(i % 5) - 2; // Negatives too.
            break;
        default: r.kind = TraceOpKind::Read; break;
        }
        records.push_back(r);
    }
    return records;
}

std::vector<TraceRecord>
decodeAll(const TraceReader &reader)
{
    std::vector<TraceRecord> out;
    out.reserve(reader.recordCount());
    TraceCursor cursor = reader.cursor();
    TraceRecord r;
    while (cursor.next(r))
        out.push_back(r);
    return out;
}

// --- Round trip -------------------------------------------------------------

TEST(TraceIo, WriteReadRewriteIsByteIdentical)
{
    const std::string path_a = tmpPath("roundtrip_a.trace");
    const std::string path_b = tmpPath("roundtrip_b.trace");
    const std::vector<TraceRecord> records = sampleRecords(10000);
    TraceMeta meta;
    meta.scenario = "unit_roundtrip";
    meta.seed = 42;
    meta.epoch_stride = 512;
    {
        TraceWriter writer(path_a, meta);
        for (const TraceRecord &r : records)
            writer.append(r);
        writer.finish();
    }

    TraceReader reader(path_a);
    EXPECT_EQ(reader.version(), kTraceFormatVersion);
    EXPECT_EQ(reader.recordCount(), records.size());
    EXPECT_EQ(reader.meta().scenario, "unit_roundtrip");
    EXPECT_EQ(reader.meta().seed, 42u);
    EXPECT_EQ(reader.meta().epoch_stride, 512u);
    EXPECT_EQ(reader.epochs().size(), (records.size() + 511) / 512);

    const std::vector<TraceRecord> decoded = decodeAll(reader);
    ASSERT_EQ(decoded.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
        ASSERT_EQ(decoded[i], records[i]) << "record " << i;
    }

    // The format is a pure function of (meta, record sequence):
    // re-writing what was decoded reproduces the file exactly.
    {
        TraceWriter writer(path_b, meta);
        for (const TraceRecord &r : decoded)
            writer.append(r);
        writer.finish();
    }
    EXPECT_EQ(fileBytes(path_a), fileBytes(path_b));
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tmpPath("empty.trace");
    {
        TraceWriter writer(path, TraceMeta{});
        writer.finish();
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 0u);
    EXPECT_TRUE(reader.epochs().empty());
    TraceCursor cursor = reader.cursor();
    TraceRecord r;
    EXPECT_FALSE(cursor.next(r));
    EXPECT_NE(reader.describe().find("records: 0"),
              std::string::npos);
    std::remove(path.c_str());
}

// --- Rejection of foreign / damaged files -----------------------------------

class TraceRejection : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = tmpPath("reject.trace");
        TraceMeta meta;
        meta.scenario = "unit_reject";
        meta.epoch_stride = 64;
        TraceWriter writer(path_, meta);
        for (const TraceRecord &r : sampleRecords(500))
            writer.append(r);
        writer.finish();
        bytes_ = fileBytes(path_);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
    std::string bytes_;
};

TEST_F(TraceRejection, BadMagic)
{
    std::string damaged = bytes_;
    damaged[0] = 'X';
    writeFile(path_, damaged);
    EXPECT_THROW(TraceReader{path_}, FatalError);
}

TEST_F(TraceRejection, VersionMismatch)
{
    std::string damaged = bytes_;
    damaged[8] = 0x7f; // format version -> 127.
    writeFile(path_, damaged);
    try {
        TraceReader reader(path_);
        FAIL() << "version 127 was accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("format version"),
                  std::string::npos);
    }
}

TEST_F(TraceRejection, TruncatedHeader)
{
    writeFile(path_, bytes_.substr(0, 20));
    EXPECT_THROW(TraceReader{path_}, FatalError);
}

TEST_F(TraceRejection, TruncatedBody)
{
    writeFile(path_, bytes_.substr(0, bytes_.size() - 40));
    EXPECT_THROW(TraceReader{path_}, FatalError);
}

TEST_F(TraceRejection, AbortedRecordingWithoutIndex)
{
    std::string damaged = bytes_;
    for (size_t i = 24; i < 32; ++i) // index_offset -> 0.
        damaged[i] = 0;
    writeFile(path_, damaged);
    try {
        TraceReader reader(path_);
        FAIL() << "unfinalized trace was accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("never finalized"),
                  std::string::npos);
    }
}

// --- Seeks ------------------------------------------------------------------

TEST(TraceIo, SeekMatchesSequentialDecode)
{
    const std::string path = tmpPath("seek.trace");
    const std::vector<TraceRecord> records = sampleRecords(3000);
    TraceMeta meta;
    meta.epoch_stride = 128;
    {
        TraceWriter writer(path, meta);
        for (const TraceRecord &r : records)
            writer.append(r);
        writer.finish();
    }
    TraceReader reader(path);
    for (const uint64_t target :
         {uint64_t(0), uint64_t(1), uint64_t(127), uint64_t(128),
          uint64_t(1000), uint64_t(2999)}) {
        TraceCursor cursor = reader.seekToRecord(target);
        EXPECT_EQ(cursor.position(), target);
        TraceRecord r;
        ASSERT_TRUE(cursor.next(r)) << target;
        EXPECT_EQ(r, records[static_cast<size_t>(target)])
            << "seek to " << target;
    }
    // Seeking to the end yields an exhausted cursor.
    TraceCursor end = reader.seekToRecord(records.size());
    TraceRecord r;
    EXPECT_FALSE(end.next(r));
    EXPECT_THROW(reader.seekToRecord(records.size() + 1), FatalError);

    // seekToTick lands on an epoch start at or before the target.
    const uint64_t mid_tick = records[1500].tick;
    TraceCursor by_tick = reader.seekToTick(mid_tick);
    EXPECT_EQ(by_tick.position() % 128, 0u);
    ASSERT_TRUE(by_tick.next(r));
    EXPECT_LE(r.tick, mid_tick);
    std::remove(path.c_str());
}

// --- Cache filter -----------------------------------------------------------

CacheFilterConfig
oneSetFilter()
{
    CacheFilterConfig config;
    config.llc_bytes = 4 * 64; // One 4-way set: evictions visible.
    config.ways = 4;
    config.line_bytes = 64;
    return config;
}

TraceRecord
cpuRecord(TraceOpKind kind, uint64_t addr, uint64_t tick)
{
    TraceRecord r;
    r.kind = kind;
    r.addr = addr;
    r.tick = tick;
    r.origin = 99;
    return r;
}

TEST(CacheFilterTest, HitsAreAbsorbedMissesBecomeReads)
{
    CacheFilter filter(oneSetFilter());
    std::vector<TraceRecord> out;
    filter.process(cpuRecord(TraceOpKind::Load, 0x100, 5), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, TraceOpKind::Read);
    EXPECT_EQ(out[0].addr, 0x100u);
    EXPECT_EQ(out[0].tick, 5u);
    EXPECT_EQ(out[0].origin, 99u);

    filter.process(cpuRecord(TraceOpKind::Load, 0x100, 6), out);
    EXPECT_EQ(out.size(), 1u) << "hit must be absorbed";
    EXPECT_EQ(filter.stats().hits, 1u);
    EXPECT_EQ(filter.stats().misses, 1u);
}

TEST(CacheFilterTest, DirtyEvictionEmitsVictimWriteback)
{
    CacheFilter filter(oneSetFilter());
    std::vector<TraceRecord> out;
    // Dirty line 0, then fill the set and overflow it.
    filter.process(cpuRecord(TraceOpKind::Store, 0 * 64, 0), out);
    for (uint64_t i = 1; i < 4; ++i)
        filter.process(cpuRecord(TraceOpKind::Load, i * 64, i), out);
    out.clear();
    filter.process(cpuRecord(TraceOpKind::Load, 4 * 64, 9), out);
    ASSERT_EQ(out.size(), 2u) << "miss read + victim writeback";
    EXPECT_EQ(out[0].kind, TraceOpKind::Read);
    EXPECT_EQ(out[0].addr, 4u * 64);
    EXPECT_EQ(out[1].kind, TraceOpKind::Write);
    EXPECT_EQ(out[1].addr, 0u) << "the dirty victim's line";
    EXPECT_EQ(out[1].tick, 9u);
    EXPECT_EQ(filter.stats().writebacks, 1u);
}

TEST(CacheFilterTest, FlushWritesBackOnlyDirtyLines)
{
    CacheFilter filter(oneSetFilter());
    std::vector<TraceRecord> out;
    filter.process(cpuRecord(TraceOpKind::Store, 0x40, 0), out);
    filter.process(cpuRecord(TraceOpKind::Load, 0x80, 1), out);
    out.clear();
    filter.process(cpuRecord(TraceOpKind::Flush, 0x40, 2), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, TraceOpKind::Write);
    filter.process(cpuRecord(TraceOpKind::Flush, 0x80, 3), out);
    EXPECT_EQ(out.size(), 1u) << "clean flush emits nothing";
    filter.process(cpuRecord(TraceOpKind::Flush, 0xF000, 4), out);
    EXPECT_EQ(out.size(), 1u) << "absent flush emits nothing";
}

TEST(CacheFilterTest, DramLevelRecordsPassThroughUnchanged)
{
    CacheFilter filter(oneSetFilter());
    TraceRecord rowop;
    rowop.kind = TraceOpKind::RowOp;
    rowop.addr = 0x2000;
    rowop.tick = 77;
    rowop.mech = 1;
    rowop.reserved_row = 3;
    std::vector<TraceRecord> out;
    filter.process(rowop, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], rowop);
    EXPECT_EQ(filter.stats().passthrough, 1u);
    // Idempotence: filtering a filtered trace changes nothing.
    CacheFilter second(oneSetFilter());
    EXPECT_EQ(second.filter(out), out);
}

// --- Recorder tap -----------------------------------------------------------

TEST(TraceRecorderTest, TapPreservesTransactionFields)
{
    const std::string path = tmpPath("recorder.trace");
    TraceMeta meta;
    meta.scenario = "unit_recorder";
    meta.seed = 11;
    TraceRecorder::start(path, meta);
    EXPECT_TRUE(TraceRecorder::active());
    {
        DramSystem sys(DramConfig::preset("ddr3-1600", 64));
        sys.completionOf(sys.submit(
            MemTransaction::makeRead(0x1000, 10, 0xAB)));
        sys.retire(sys.submit(
            MemTransaction::makeWrite(0x2040, 20, 0xCD)));
        sys.completionOf(sys.submit(MemTransaction::makeRowOp(
            0x4000, 30, RowOpMechanism::RowClone, 5, 0xEF)));
        sys.drainAll();
    }
    EXPECT_EQ(TraceRecorder::stop(), 3u);
    EXPECT_FALSE(TraceRecorder::active());

    TraceReader reader(path);
    const std::vector<TraceRecord> records = decodeAll(reader);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].kind, TraceOpKind::Read);
    EXPECT_EQ(records[0].addr, 0x1000u);
    EXPECT_EQ(records[0].tick, 10u);
    EXPECT_EQ(records[0].origin, 0xABu);
    EXPECT_EQ(records[1].kind, TraceOpKind::Write);
    EXPECT_EQ(records[1].addr, 0x2040u);
    EXPECT_EQ(records[2].kind, TraceOpKind::RowOp);
    EXPECT_EQ(records[2].mech,
              static_cast<uint8_t>(RowOpMechanism::RowClone));
    EXPECT_EQ(records[2].reserved_row, 5);
    EXPECT_EQ(records[2].origin, 0xEFu);
    EXPECT_EQ(reader.meta().scenario, "unit_recorder");
    std::remove(path.c_str());
}

// --- Record -> replay determinism -------------------------------------------

std::string
replayJsonFor(const std::string &trace_path, int threads)
{
    RunOptions options;
    options.trace_path = trace_path;
    options.threads = threads;
    std::ostringstream out;
    JsonResultSink sink(out);
    EXPECT_TRUE(runScenario("trace_replay", options, sink));
    sink.finish();
    return out.str();
}

TEST(TraceReplayTest, RecordedScenarioReplaysByteIdenticalAcrossThreads)
{
    const std::string path = tmpPath("replay_determinism.trace");
    {
        TraceMeta meta;
        meta.scenario = "ablation_scheduler";
        meta.seed = 1;
        TraceRecorder::start(path, meta);
        RunOptions options;
        options.scale = 0.01;
        options.threads = 1; // Byte-stable recording order.
        MultiResultSink devnull;
        EXPECT_TRUE(
            runScenario("ablation_scheduler", options, devnull));
        EXPECT_GT(TraceRecorder::stop(), 0u);
    }
    const std::string sequential = replayJsonFor(path, 1);
    const std::string parallel = replayJsonFor(path, 8);
    EXPECT_EQ(sequential, parallel)
        << "replay output depends on the thread count";
    EXPECT_NE(sequential.find("\"rowops\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceReplayTest, RejectsCpuLevelRecords)
{
    DramSystem sys(DramConfig::preset("ddr3-1600", 64));
    TraceReplaySource source(sys);
    TraceRecord raw;
    raw.kind = TraceOpKind::Load;
    try {
        source.step(raw);
        FAIL() << "CPU-level record was replayed";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("cache filter"),
                  std::string::npos);
    }
}

TEST(TraceReplayTest, SpeedRescalesInterArrivals)
{
    DramSystem sys(DramConfig::preset("ddr3-1600", 64));
    ReplayOptions fast;
    fast.speed = 4.0;
    TraceReplaySource source(sys, fast);
    TraceRecord r;
    r.kind = TraceOpKind::Read;
    r.addr = 0;
    r.tick = 1000;
    source.step(r);
    r.addr = 64;
    r.tick = 1800; // +800 ticks -> +200 at speed 4.
    source.step(r);
    const ReplayReport report = source.finish();
    EXPECT_EQ(report.first_arrival, 1000);
    EXPECT_EQ(report.last_arrival, 1200);
    EXPECT_EQ(report.reads, 2u);
}

// --- RunOptions trace-flag contract -----------------------------------------

TEST(RunOptionsTrace, RejectsContradictoryTraceFlags)
{
    const std::string path = tmpPath("options.trace");
    {
        TraceWriter writer(path, TraceMeta{});
        writer.finish();
    }
    RunOptions ok;
    ok.trace_path = path;
    ok.record_trace = path + ".out";
    ok.trace_speed = 2.0;
    EXPECT_NO_THROW(ok.validate());

    RunOptions same = ok;
    same.record_trace = path;
    EXPECT_THROW(same.validate(), FatalError);

    RunOptions missing = ok;
    missing.trace_path = path + ".does_not_exist";
    EXPECT_THROW(missing.validate(), FatalError);

    for (const double bad :
         {0.0, -1.0, std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::quiet_NaN()}) {
        RunOptions speed = ok;
        speed.trace_speed = bad;
        EXPECT_THROW(speed.validate(), FatalError) << bad;
    }
    std::remove(path.c_str());
}

// --- Flat-RSS streaming -----------------------------------------------------

#ifdef __linux__

uint64_t
residentBytes()
{
    std::ifstream statm("/proc/self/statm");
    uint64_t vm_pages = 0;
    uint64_t rss_pages = 0;
    statm >> vm_pages >> rss_pages;
    return rss_pages * 4096;
}

TEST(TraceIo, StreamingTenMillionRecordsKeepsResidentMemoryFlat)
{
    const std::string path = tmpPath("bigstream.trace");
    constexpr uint64_t kRecords = 10'000'000;
    {
        TraceWriter writer(path, TraceMeta{});
        TraceRecord r;
        r.kind = TraceOpKind::Read;
        uint64_t rng = 99;
        for (uint64_t i = 0; i < kRecords; ++i) {
            r.tick = i * 13;
            r.addr = (splitmix64(rng) % (1ull << 32)) & ~63ull;
            writer.append(r);
        }
        writer.finish();
    }

    TraceReader reader(path);
    ASSERT_EQ(reader.recordCount(), kRecords);
    ASSERT_GT(reader.fileBytes(), 40u * 1024 * 1024)
        << "the trace must dwarf the RSS bound for the test to "
           "mean anything";
    TraceCursor cursor = reader.cursor(/*streaming=*/true);
    TraceRecord r;
    // Warm up past the first release granule, then watch RSS.
    for (uint64_t i = 0; i < kRecords / 10; ++i)
        ASSERT_TRUE(cursor.next(r));
    const uint64_t baseline = residentBytes();
    uint64_t peak = baseline;
    uint64_t decoded = kRecords / 10;
    while (cursor.next(r)) {
        ++decoded;
        if (decoded % (kRecords / 10) == 0)
            peak = std::max(peak, residentBytes());
    }
    EXPECT_EQ(decoded, kRecords);
    peak = std::max(peak, residentBytes());
    // The mapped file alone is > 40 MB; a reader that kept every
    // decoded page resident would grow by about the file size.
    // The streaming cursor releases consumed pages, so growth stays
    // bounded by the release granularity plus allocator noise.
    EXPECT_LT(peak - baseline, 16u * 1024 * 1024)
        << "streaming decode must not accumulate resident pages";
    std::remove(path.c_str());
}

#endif // __linux__

} // namespace
} // namespace codic
