/**
 * @file
 * Tests of the Section 5.3 extension applications: the CODIC TRNG
 * (with SP 800-90B health tests), adaptive-latency activation, the
 * Ambit-style PIM unit, and the self-refresh-reuse destruction
 * timing.
 */

#include <gtest/gtest.h>

#include "coldboot/destruction.h"
#include "nist/tests.h"
#include "optim/adaptive_act.h"
#include "pim/bitwise.h"
#include "trng/trng.h"

namespace codic {
namespace {

// --- TRNG. ---

TEST(Trng, EnrollmentFindsMetastableCells)
{
    TrngConfig cfg;
    CodicTrng trng(cfg);
    EXPECT_GT(trng.sources().size(), 0u);
    // Metastability window: all sources close to the trip point.
    const double noise = thermalNoiseRms(cfg.params);
    for (const auto &cell : trng.sources()) {
        EXPECT_LT(std::fabs(cell.offset),
                  cfg.metastable_window * noise);
        EXPECT_GT(cell.p_one, 0.1);
        EXPECT_LT(cell.p_one, 0.9);
    }
}

TEST(Trng, EnrollmentIsDeterministicPerDevice)
{
    TrngConfig cfg;
    CodicTrng a(cfg);
    CodicTrng b(cfg);
    ASSERT_EQ(a.sources().size(), b.sources().size());
    for (size_t i = 0; i < a.sources().size(); ++i)
        EXPECT_EQ(a.sources()[i].index, b.sources()[i].index);
    cfg.run.seed = 2;
    CodicTrng c(cfg);
    EXPECT_NE(a.sources().size(), 0u);
    bool identical = a.sources().size() == c.sources().size();
    if (identical) {
        for (size_t i = 0; i < a.sources().size(); ++i)
            identical =
                identical && a.sources()[i].index == c.sources()[i].index;
    }
    EXPECT_FALSE(identical);
}

TEST(Trng, HarvestedBitsAreBalancedAndPassCoreTests)
{
    TrngConfig cfg;
    CodicTrng trng(cfg);
    Rng noise(99);
    const auto bits = trng.harvest(200000, noise);
    ASSERT_EQ(bits.size(), 200000u);
    EXPECT_TRUE(nistMonobit(bits).pass());
    EXPECT_TRUE(nistRuns(bits).pass());
    EXPECT_TRUE(nistFrequencyWithinBlock(bits).pass());
    EXPECT_TRUE(nistApproximateEntropy(bits).pass());
}

TEST(Trng, SuccessiveHarvestsDiffer)
{
    TrngConfig cfg;
    CodicTrng trng(cfg);
    Rng noise(7);
    const auto a = trng.harvest(1000, noise);
    const auto b = trng.harvest(1000, noise);
    EXPECT_NE(a, b);
}

TEST(Trng, ThroughputAccounting)
{
    TrngConfig cfg;
    CodicTrng trng(cfg);
    EXPECT_GT(trng.rawThroughputBitsPerSec(), 0.0);
    // Whitening costs ~4x.
    EXPECT_LT(trng.whitenedThroughputBitsPerSec(),
              trng.rawThroughputBitsPerSec() / 2.0);
}

TEST(TrngHealth, PassesOnLiveSource)
{
    TrngConfig cfg;
    CodicTrng trng(cfg);
    Rng noise(12);
    TrngHealthTests health;
    trng.harvest(20000, noise, &health);
    EXPECT_FALSE(health.failed());
    EXPECT_GT(health.observed(), 20000u);
}

TEST(TrngHealth, RepetitionCountTripsOnStuckSource)
{
    TrngHealthTests health(41, 1024, 624);
    for (int i = 0; i < 100; ++i)
        health.feed(1);
    EXPECT_TRUE(health.failed());
}

TEST(TrngHealth, AdaptiveProportionTripsOnBiasedSource)
{
    TrngHealthTests health(1000000, 1024, 624);
    Rng rng(5);
    for (int i = 0; i < 4096; ++i)
        health.feed(rng.chance(0.75) ? 1 : 0);
    EXPECT_TRUE(health.failed());
}

// --- Adaptive activation (Section 5.3.2). ---

TEST(AdaptiveAct, WeakerInstancesCrossLater)
{
    const CircuitParams params = CircuitParams::ddr3();
    VariationDraw weak;
    weak.access_rel = -0.50; // Slow access transistor (weak tail).
    VariationDraw strong;
    strong.access_rel = 0.20;
    EXPECT_GT(columnReadyNs(params, weak),
              columnReadyNs(params, strong));
}

TEST(AdaptiveAct, NominalInstanceHasHeadroom)
{
    // The fixed design leaves margin: a nominal instance is readable
    // well before the worst-case tRCD.
    const CircuitParams params = CircuitParams::ddr3();
    EXPECT_LT(columnReadyNs(params, VariationDraw{}) + 1.0,
              RowReadyProfile::kNominalReadyNs);
}

TEST(AdaptiveAct, ProfileIsDeterministicAndBounded)
{
    const CircuitParams params = CircuitParams::ddr3();
    RowReadyProfile a(params, 42);
    RowReadyProfile b(params, 42);
    for (int64_t row = 0; row < 100; ++row) {
        EXPECT_EQ(a.readyNs(0, row), b.readyNs(0, row));
        EXPECT_GT(a.readyNs(0, row), 5.0);
        EXPECT_LE(a.readyNs(0, row),
                  RowReadyProfile::kNominalReadyNs);
    }
}

TEST(AdaptiveAct, SummaryFindsFastRows)
{
    const CircuitParams params = CircuitParams::ddr3();
    RowReadyProfile profile(params, 42);
    const auto s = profile.summarize(8, 65536);
    EXPECT_GT(s.frac_fast, 0.2);
    EXPECT_LE(s.max_ready_ns, RowReadyProfile::kNominalReadyNs);
    EXPECT_LT(s.min_ready_ns, s.max_ready_ns);
}

TEST(AdaptiveAct, AdaptiveActivationReducesReadLatency)
{
    const auto r = evaluateAdaptiveActivation(CircuitParams::ddr3(),
                                              42, 400, 7);
    EXPECT_GT(r.speedup, 0.01);
    EXPECT_LT(r.adaptive_avg_read_ns, r.baseline_avg_read_ns);
}

TEST(AdaptiveAct, CodicActivationOpensRowForReads)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    SignalSchedule fast_act;
    fast_act.set(Signal::Wl, 5, 22);
    fast_act.set(Signal::SenseP, 9, 22);
    fast_act.set(Signal::SenseN, 9, 22);
    const int id = ch.registerVariant(fast_act);
    Command codic;
    codic.type = CommandType::Codic;
    codic.addr.row = 10;
    codic.codic_variant = id;
    const Cycle ready = ch.issue(codic, 0);
    EXPECT_TRUE(ch.bankActive(0, 0));
    EXPECT_EQ(ch.openRow(0, 0), 10);
    // Columns usable at sense start (9 ns) + amplification, earlier
    // than the fixed tRCD.
    EXPECT_LE(ready, ch.config().timing.trcd + 3);
    Command rd;
    rd.type = CommandType::Rd;
    rd.addr.row = 10;
    EXPECT_NO_THROW(ch.issueAtEarliest(rd, ready));
}

// --- PIM (Section 5.3.3). ---

RowPayload
patternRow(uint64_t seed)
{
    Rng rng(seed);
    RowPayload row(AmbitUnit::kWordsPerRow);
    for (auto &w : row)
        w = rng.next64();
    return row;
}

TEST(Pim, CopyMatchesSource)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    AmbitUnit unit(ch, 0);
    const RowPayload src = patternRow(1);
    Cycle t = unit.writeRow(10, src, 0);
    unit.copy(10, 11, t);
    EXPECT_EQ(unit.readRow(11), src);
}

TEST(Pim, AndOrNotComputeExactlyUnderCodic)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    AmbitUnit unit(ch, 0, PimMode::Codic);
    const RowPayload a = patternRow(2);
    const RowPayload b = patternRow(3);
    Cycle t = unit.writeRow(10, a, 0);
    t = unit.writeRow(11, b, t);

    t = unit.bitwiseAnd(10, 11, 12, t);
    t = unit.bitwiseOr(10, 11, 13, t);
    t = unit.bitwiseNot(10, 14, t);

    RowPayload expect_and(AmbitUnit::kWordsPerRow);
    RowPayload expect_or(AmbitUnit::kWordsPerRow);
    RowPayload expect_not(AmbitUnit::kWordsPerRow);
    for (size_t i = 0; i < a.size(); ++i) {
        expect_and[i] = a[i] & b[i];
        expect_or[i] = a[i] | b[i];
        expect_not[i] = ~a[i];
    }
    EXPECT_EQ(unit.readRow(12), expect_and);
    EXPECT_EQ(unit.readRow(13), expect_or);
    EXPECT_EQ(unit.readRow(14), expect_not);
}

TEST(Pim, ComputeDramModeIsUnreliable)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    AmbitUnit unit(ch, 0, PimMode::ComputeDram, 0.4);
    const RowPayload a = patternRow(2);
    const RowPayload b = patternRow(3);
    Cycle t = unit.writeRow(10, a, 0);
    t = unit.writeRow(11, b, t);
    unit.bitwiseAnd(10, 11, 12, t);

    RowPayload expect_and(AmbitUnit::kWordsPerRow);
    for (size_t i = 0; i < a.size(); ++i)
        expect_and[i] = a[i] & b[i];
    const double ber = bitErrorRate(unit.readRow(12), expect_and);
    // ~fraction/2 of the bits corrupted (paper Section 1: only a
    // small fraction of cells compute reliably).
    EXPECT_GT(ber, 0.1);
    EXPECT_LT(ber, 0.3);
}

TEST(Pim, InDramOpsBeatColumnInterfaceBandwidth)
{
    // One AND over an 8 KB row in-DRAM vs reading both operands and
    // writing the result through the column interface.
    DramChannel ch(DramConfig::ddr3_1600(64));
    AmbitUnit unit(ch, 0);
    const RowPayload a = patternRow(4);
    Cycle t = unit.writeRow(10, a, 0);
    t = unit.writeRow(11, a, t);
    const Cycle start = t;
    const Cycle done = unit.bitwiseAnd(10, 11, 12, t);
    const double in_dram_ns = ch.config().cyclesToNs(done - start);
    // Column-interface estimate: 3 x 128 bursts at ~5 ns a burst.
    const double interface_ns = 3.0 * 128.0 * 5.0;
    EXPECT_LT(in_dram_ns, interface_ns);
}

TEST(Pim, BitErrorRateHelper)
{
    RowPayload a(AmbitUnit::kWordsPerRow, 0);
    RowPayload b(AmbitUnit::kWordsPerRow, 0);
    EXPECT_DOUBLE_EQ(bitErrorRate(a, b), 0.0);
    b[0] = 0xff;
    EXPECT_NEAR(bitErrorRate(a, b),
                8.0 / (1024.0 * 64.0), 1e-12);
}

// --- Self-refresh-reuse destruction (Section 5.2.2). ---

TEST(SelfRefreshReuse, TimingBoundsAreOrdered)
{
    const auto t = selfRefreshReuseTiming(DramConfig::ddr3_1600(8192));
    EXPECT_GT(t.distributed_ns, t.burst_ns);
    EXPECT_DOUBLE_EQ(t.distributed_ns, 64e6);
}

TEST(SelfRefreshReuse, SlowerThanDedicatedEngineButZeroCost)
{
    // The cost-optimized implementation trades speed: one refresh
    // window (64 ms) vs the dedicated engine's ~8 ms at 8 GB.
    const auto dedicated = runDestruction(
        DramConfig::ddr3_1600(8192), DestructionMechanism::Codic);
    const auto reuse =
        selfRefreshReuseTiming(DramConfig::ddr3_1600(8192));
    EXPECT_GT(reuse.distributed_ns, dedicated.time_ns);
}

} // namespace
} // namespace codic
