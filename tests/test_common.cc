/**
 * @file
 * Unit tests for the common utilities: RNG, statistics, histograms,
 * text tables, and the logging/assertion helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/result_sink.h"
#include "common/rng.h"
#include "common/run_options.h"
#include "common/stats.h"
#include "common/table.h"

namespace codic {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.5, 2.5);
        EXPECT_GE(u, -3.5);
        EXPECT_LT(u, 2.5);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(9);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

class RngBelowTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngBelowTest, StaysBelowBoundAndCoversRange)
{
    const uint64_t n = GetParam();
    Rng rng(n * 31 + 1);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng.below(n);
        EXPECT_LT(v, n);
        seen.insert(v);
    }
    if (n <= 8) {
        EXPECT_EQ(seen.size(), n); // Small ranges fully covered.
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBelowTest,
                         ::testing::Values(1, 2, 3, 8, 100, 1000,
                                           1ull << 40));

TEST(Rng, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_THROW(rng.below(0), PanicError);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo = saw_lo || v == -2;
        saw_hi = saw_hi || v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.01);
    EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(14);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(15);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        if (rng.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(21);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(SplitMix, KnownSequenceIsStable)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
    SplitMix64 c(43);
    EXPECT_NE(SplitMix64(42).next(), c.next());
}

TEST(RunningStats, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanAndVariance)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined)
{
    Rng rng(3);
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian();
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    RunningStats b;
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 1.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 1.0, 10);
    h.add(0.05);  // bin 0
    h.add(0.95);  // bin 9
    h.add(-5.0);  // clamped to bin 0
    h.add(7.0);   // clamped to bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.5);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.125);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 0.875);
}

TEST(Histogram, AsciiRendersOneCharPerBin)
{
    Histogram h(0.0, 1.0, 16);
    for (int i = 0; i < 100; ++i)
        h.add(0.5);
    EXPECT_EQ(h.ascii().size(), 16u);
    EXPECT_NE(h.ascii()[8], ' ');
}

TEST(Histogram, InvalidConstructionPanics)
{
    EXPECT_THROW(Histogram(1.0, 0.0, 4), PanicError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), PanicError);
}

TEST(Percentile, InterpolatesCorrectly)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"A", "LongHeader"});
    t.addRow({"x", "1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("LongHeader"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, ArityMismatchPanics)
{
    TextTable t({"A", "B"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Format, TimeUnitsScale)
{
    EXPECT_EQ(fmtTimeNs(35.0), "35.0 ns");
    EXPECT_EQ(fmtTimeNs(1500.0), "1.50 us");
    EXPECT_EQ(fmtTimeNs(2.2e9), "2.20 s");
}

TEST(Format, EnergyUnitsScale)
{
    EXPECT_EQ(fmtEnergyNj(17.2), "17.20 nJ");
    EXPECT_EQ(fmtEnergyNj(0.5), "500.0 pJ");
    EXPECT_EQ(fmtEnergyNj(2.0e6), "2.00 mJ");
}

namespace {

/** One CSV data line for a single-cell row with the given value. */
std::string
csvLineFor(const std::string &value)
{
    RunOptions options;
    std::ostringstream out;
    CsvResultSink sink(out);
    sink.beginScenario("s", "d", options);
    sink.row("sec", ResultRow().add("k", value));
    sink.endScenario();
    const std::string text = out.str();
    // Second line (after the header), without the trailing newline.
    const size_t start = text.find('\n') + 1;
    return text.substr(start, text.rfind('\n') - start);
}

} // namespace

TEST(CsvEscaping, PlainCellsPassThroughUnquoted)
{
    EXPECT_EQ(csvLineFor("plain value"), "s,1,sec,0,k,plain value");
}

TEST(CsvEscaping, CommasAreQuoted)
{
    EXPECT_EQ(csvLineFor("a,b"), "s,1,sec,0,k,\"a,b\"");
}

TEST(CsvEscaping, QuotesAreDoubledAndQuoted)
{
    EXPECT_EQ(csvLineFor("say \"hi\""),
              "s,1,sec,0,k,\"say \"\"hi\"\"\"");
}

TEST(CsvEscaping, LineBreaksStayInsideTheCell)
{
    EXPECT_EQ(csvLineFor("two\nlines"), "s,1,sec,0,k,\"two\nlines\"");
    EXPECT_EQ(csvLineFor("cr\rcell"), "s,1,sec,0,k,\"cr\rcell\"");
}

TEST(CsvEscaping, SectionAndKeyCellsAreEscapedToo)
{
    RunOptions options;
    std::ostringstream out;
    CsvResultSink sink(out);
    sink.beginScenario("s", "d", options);
    sink.row("free, text section", ResultRow().add("key,1", 2));
    sink.endScenario();
    EXPECT_NE(out.str().find("\"free, text section\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"key,1\""), std::string::npos);
}

TEST(RunOptionsValidate, AcceptsDefaultsAndSaneValues)
{
    RunOptions options;
    EXPECT_NO_THROW(options.validate());
    options.threads = 8;
    options.repeats = 3;
    options.scale = 0.5;
    options.zipf = 1.2;
    EXPECT_NO_THROW(options.validate());
}

TEST(RunOptionsValidate, RejectsNegativeThreads)
{
    RunOptions options;
    options.threads = -1;
    EXPECT_THROW(options.validate(), FatalError);
}

TEST(RunOptionsValidate, RejectsNonPositiveRepeats)
{
    RunOptions options;
    options.repeats = 0;
    EXPECT_THROW(options.validate(), FatalError);
    options.repeats = -4;
    EXPECT_THROW(options.validate(), FatalError);
}

TEST(RunOptionsValidate, RejectsOutOfRangeScale)
{
    RunOptions options;
    for (double bad : {0.0, -0.5, 1.5}) {
        options.scale = bad;
        EXPECT_THROW(options.validate(), FatalError) << bad;
    }
}

TEST(RunOptionsValidate, RejectsNegativeFleetOptions)
{
    RunOptions options;
    options.devices = -1;
    EXPECT_THROW(options.validate(), FatalError);
    options.devices = 0;
    options.zipf = -0.5; // -1 is "scenario default"; -0.5 is junk.
    EXPECT_THROW(options.validate(), FatalError);
}

TEST(RunOptionsScaled, ScalesAndKeepsAtLeastOneUnit)
{
    RunOptions options;
    options.scale = 0.5;
    EXPECT_EQ(options.scaled(1000), 500u);
    options.scale = 1e-9;
    EXPECT_EQ(options.scaled(1000), 1u);
}

TEST(RunOptionsScaled, PanicsOnOutOfContractScaleInsteadOfClamping)
{
    RunOptions options;
    options.scale = 0.0;
    EXPECT_THROW(options.scaled(100), PanicError);
    options.scale = 2.0;
    EXPECT_THROW(options.scaled(100), PanicError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom"), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(CODIC_ASSERT(1 == 2), PanicError);
    EXPECT_NO_THROW(CODIC_ASSERT(1 == 1));
}

} // namespace
} // namespace codic
