/**
 * @file
 * Cross-module integration tests: full pipelines from the CODIC
 * substrate through the DRAM model to the security applications.
 */

#include <gtest/gtest.h>

#include "circuit/analog.h"
#include "codic/mode_regs.h"
#include "coldboot/destruction.h"
#include "coldboot/power_on.h"
#include "mem/controller.h"
#include "nist/extractor.h"
#include "nist/tests.h"
#include "puf/experiments.h"
#include "puf/sig_puf.h"
#include "puf/stream.h"
#include "secdealloc/evaluate.h"

namespace codic {
namespace {

TEST(Integration, MrsProgramsVariantThatDestroysRowThroughChannel)
{
    // The full hardware path of Section 4.2.2: the controller
    // programs the CODIC mode registers via MRS, issues one CODIC
    // command, and the row's data is gone.
    DramChannel ch(DramConfig::ddr3_1600(64));
    ModeRegisterFile mrf;
    mrf.program(variants::detZero().schedule);
    const int id = ch.registerVariant(mrf.decode());

    Cycle t = 0;
    for (int i = 0; i < ModeRegisterFile::kMrsCommandsPerSchedule; ++i) {
        Command mrs;
        mrs.type = CommandType::Mrs;
        t = ch.issueAtEarliest(mrs, t);
    }
    ch.setRowState(0, 0, 12, RowDataState::Data);
    Command codic;
    codic.type = CommandType::Codic;
    codic.addr.row = 12;
    codic.codic_variant = id;
    ch.issueAtEarliest(codic, t);
    EXPECT_EQ(ch.rowState(0, 0, 12), RowDataState::Zeroes);
}

TEST(Integration, AnalogAndArchitecturalSigPipelinesAgree)
{
    // Circuit level: sig then activate amplifies to a PV-dependent
    // value. Architectural level: the row state machine mirrors it.
    CircuitParams params = CircuitParams::ddr3();
    VariationDraw draw;
    draw.sa_offset = -30e-3; // A flip cell.
    CellCircuit cell(params, draw);
    cell.setCellVoltage(params.vdd);
    cell.run(variants::sig().schedule);
    cell.run(variants::activate().schedule);
    EXPECT_FALSE(cell.senseBit()); // Minority (flip) direction.

    DramChannel ch(DramConfig::ddr3_1600(64));
    const int sig = ch.registerVariant(variants::sig().schedule);
    ch.setRowState(0, 0, 3, RowDataState::Data);
    Command c;
    c.type = CommandType::Codic;
    c.addr.row = 3;
    c.codic_variant = sig;
    const Cycle done = ch.issue(c, 0);
    Command act;
    act.type = CommandType::Act;
    act.addr.row = 3;
    ch.issueAtEarliest(act, done);
    EXPECT_EQ(ch.rowState(0, 0, 3), RowDataState::SaSignature);
}

TEST(Integration, PufEnrollmentAndVerificationAcrossDevices)
{
    // Authentication scenario of Section 5.1: enroll one device's
    // response; the same device verifies, a different one does not.
    const auto chips = buildPaperPopulation();
    CodicSigPuf puf;
    Challenge ch{123, 65536};
    const Response enrolled =
        puf.evaluateFiltered(chips[0], ch, {30.0, false, 1});
    const Response same =
        puf.evaluateFiltered(chips[0], ch, {30.0, false, 99});
    const Response other =
        puf.evaluateFiltered(chips[1], ch, {30.0, false, 1});
    EXPECT_GT(jaccard(enrolled, same), 0.99);
    EXPECT_LT(jaccard(enrolled, other), 0.05);
}

TEST(Integration, PowerOnFsmDrivesDestructionToCompletion)
{
    // The self-destruction story of Section 5.2.2 end to end: power
    // ramp detected, destruction runs row by row, chip opens only
    // after every row is destroyed.
    const DramConfig dram = DramConfig::ddr3_1600(64);
    DramChannel ch(dram);
    ch.fillAllRows(RowDataState::Data);
    PowerOnFsm fsm(dram.totalRows());
    fsm.observeVoltage(0.0);
    fsm.observeVoltage(1.35);
    ASSERT_EQ(fsm.state(), PowerOnState::Destructing);

    const int det = ch.registerVariant(variants::detZero().schedule);
    for (int64_t row = 0; row < dram.rows; ++row) {
        for (int bank = 0; bank < dram.banks; ++bank) {
            EXPECT_FALSE(fsm.acceptsCommands());
            Command c;
            c.type = CommandType::Codic;
            c.addr.bank = bank;
            c.addr.row = row;
            c.codic_variant = det;
            ch.issueAtEarliest(c, 0);
            fsm.destructionProgress(1);
        }
    }
    EXPECT_TRUE(fsm.acceptsCommands());
    EXPECT_EQ(ch.countRowsInState(RowDataState::Data), 0);
}

TEST(Integration, SigResponsesFeedNistPassingStream)
{
    // Section 6.1.3 end to end on a reduced stream: responses ->
    // address bits -> Von Neumann -> core NIST battery.
    const auto chips = buildPaperPopulation();
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    CodicSigPuf puf;
    const auto raw = buildResponseBitStream(puf, all, 600000, 4);
    const auto white = vonNeumannExtract(raw);
    ASSERT_GT(white.size(), 100000u);
    EXPECT_TRUE(nistMonobit(white).pass());
    EXPECT_TRUE(nistRuns(white).pass());
    EXPECT_TRUE(nistFrequencyWithinBlock(white).pass());
    EXPECT_TRUE(nistCumulativeSums(white).pass());
    EXPECT_TRUE(nistApproximateEntropy(white).pass());
}

TEST(Integration, DestructionFasterThanRetentionWindow)
{
    // The mechanism only protects if destruction completes long
    // before charge decays naturally (seconds to minutes): even a
    // 16 GB module destroys in well under a second.
    const auto r = runDestruction(DramConfig::ddr3_1600(16384),
                                  DestructionMechanism::Codic);
    EXPECT_LT(r.time_ns, 1e9);
}

TEST(Integration, EndToEndSecureDeallocImprovesAndDestroysData)
{
    // Deallocated rows are zeroed in DRAM, not just faster.
    DramChannel ch(DramConfig::ddr3_1600(2048));
    MemoryController mc(ch);
    CoreConfig cfg;
    cfg.dealloc = DeallocMode::CodicDet;
    InOrderCore core(mc, cfg);
    std::vector<TraceOp> ops;
    for (uint64_t a = 0; a < 16384; a += 64)
        ops.push_back({OpType::Store, a, 0});
    ops.push_back({OpType::DeallocRegion, 0, 16384});
    Workload w{"demo", ops};
    core.bind(&w);
    core.run();
    const Address a0 = mc.map().decode(0);
    EXPECT_EQ(ch.rowState(a0.rank, a0.bank, a0.row),
              RowDataState::Zeroes);
}

} // namespace
} // namespace codic
