/**
 * @file
 * Tests of the NIST SP 800-22 suite: special functions against known
 * identities, each test against good (PRNG) and pathological streams,
 * the Von Neumann extractor, and the full-suite runner.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nist/extractor.h"
#include "nist/special_functions.h"
#include "nist/tests.h"

namespace codic {
namespace {

BitStream
prngStream(size_t n, uint64_t seed = 42)
{
    Rng rng(seed);
    BitStream bits(n);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    return bits;
}

BitStream
biasedStream(size_t n, double p_one, uint64_t seed = 43)
{
    Rng rng(seed);
    BitStream bits(n);
    for (auto &b : bits)
        b = rng.chance(p_one) ? 1 : 0;
    return bits;
}

BitStream
alternatingStream(size_t n)
{
    BitStream bits(n);
    for (size_t i = 0; i < n; ++i)
        bits[i] = static_cast<uint8_t>(i & 1);
    return bits;
}

BitStream
periodicStream(size_t n, size_t period)
{
    BitStream bits(n);
    for (size_t i = 0; i < n; ++i)
        bits[i] = static_cast<uint8_t>((i % period) == 0);
    return bits;
}

// --- Special functions. ---

TEST(SpecialFunctions, IgamPlusIgamcIsOne)
{
    for (double a : {0.5, 1.0, 2.5, 7.0}) {
        for (double x : {0.1, 1.0, 3.0, 10.0}) {
            EXPECT_NEAR(igam(a, x) + igamc(a, x), 1.0, 1e-10)
                << "a=" << a << " x=" << x;
        }
    }
}

TEST(SpecialFunctions, IgamcHalfMatchesErfc)
{
    // Q(1/2, x) = erfc(sqrt(x)).
    for (double x : {0.25, 1.0, 4.0}) {
        EXPECT_NEAR(igamc(0.5, x), std::erfc(std::sqrt(x)), 1e-10);
    }
}

TEST(SpecialFunctions, IgamcOneIsExponential)
{
    // Q(1, x) = exp(-x).
    for (double x : {0.5, 2.0, 5.0})
        EXPECT_NEAR(igamc(1.0, x), std::exp(-x), 1e-10);
}

TEST(SpecialFunctions, Boundaries)
{
    EXPECT_DOUBLE_EQ(igamc(3.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(igam(3.0, 0.0), 0.0);
    EXPECT_THROW(igamc(-1.0, 1.0), PanicError);
}

TEST(SpecialFunctions, NormalCdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
}

// --- Von Neumann extractor. ---

TEST(Extractor, RemovesBiasFromIndependentBits)
{
    const BitStream biased = biasedStream(400000, 0.8);
    const BitStream white = vonNeumannExtract(biased);
    EXPECT_GT(white.size(), 10000u);
    EXPECT_NEAR(onesFraction(white), 0.5, 0.02);
    EXPECT_NEAR(onesFraction(biased), 0.8, 0.01);
}

TEST(Extractor, DiscardsConcordantPairs)
{
    const BitStream all_ones(100, 1);
    EXPECT_TRUE(vonNeumannExtract(all_ones).empty());
}

TEST(Extractor, MapsDiscordantPairsToFirstBit)
{
    const BitStream in{0, 1, 1, 0, 1, 1, 0, 0};
    const BitStream out = vonNeumannExtract(in);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 1);
}

TEST(Extractor, OutputRateNearQuarterForFairInput)
{
    const BitStream fair = prngStream(100000);
    const BitStream white = vonNeumannExtract(fair);
    EXPECT_NEAR(static_cast<double>(white.size()) / 100000.0, 0.25,
                0.02);
}

// --- Individual tests: PRNG passes, pathologies fail. ---

class NistOnPrng
    : public ::testing::TestWithParam<NistResult (*)(const BitStream &)>
{
};

TEST_P(NistOnPrng, PassesOnPrngStream)
{
    // Fixed seed chosen to pass the whole battery: any single seed
    // has a ~1 % chance per test of a legitimate alpha = 0.01
    // rejection, which would make the suite flaky.
    const BitStream bits = prngStream(1 << 21, 7);
    const NistResult r = GetParam()(bits);
    EXPECT_TRUE(r.pass()) << r.name << " p=" << r.p_value;
}

NistResult freqBlockDefault(const BitStream &b)
{ return nistFrequencyWithinBlock(b); }
NistResult serialDefault(const BitStream &b) { return nistSerial(b); }
NistResult apenDefault(const BitStream &b)
{ return nistApproximateEntropy(b); }
NistResult lcDefault(const BitStream &b)
{ return nistLinearComplexity(b); }

INSTANTIATE_TEST_SUITE_P(
    AllTests, NistOnPrng,
    ::testing::Values(&nistMonobit, &freqBlockDefault, &nistRuns,
                      &nistLongestRunOnesInBlock, &nistBinaryMatrixRank,
                      &nistDft, &nistNonOverlappingTemplate,
                      &nistOverlappingTemplate, &nistMaurersUniversal,
                      &lcDefault, &serialDefault, &apenDefault,
                      &nistCumulativeSums));

TEST(NistMonobit, FailsOnBiasedStream)
{
    EXPECT_FALSE(nistMonobit(biasedStream(100000, 0.55)).pass());
}

TEST(NistMonobit, FailsOnConstantStream)
{
    EXPECT_FALSE(nistMonobit(BitStream(10000, 1)).pass());
}

TEST(NistRuns, FailsOnAlternatingStream)
{
    // 0101... is perfectly balanced but has maximal run count.
    EXPECT_FALSE(nistRuns(alternatingStream(100000)).pass());
}

TEST(NistFrequencyWithinBlock, FailsOnBlockStructuredStream)
{
    // Alternating all-ones / all-zeros blocks of the test's size.
    BitStream bits(128 * 1000);
    for (size_t i = 0; i < bits.size(); ++i)
        bits[i] = static_cast<uint8_t>((i / 128) & 1);
    EXPECT_FALSE(nistFrequencyWithinBlock(bits).pass());
}

TEST(NistLongestRun, FailsOnStreamWithoutLongRuns)
{
    EXPECT_FALSE(
        nistLongestRunOnesInBlock(alternatingStream(200000)).pass());
}

TEST(NistMatrixRank, FailsOnLowRankStream)
{
    // Repeating each 32-bit row pattern makes singular matrices.
    BitStream bits(32 * 32 * 40);
    for (size_t i = 0; i < bits.size(); ++i)
        bits[i] = static_cast<uint8_t>((i % 32) & 1);
    EXPECT_FALSE(nistBinaryMatrixRank(bits).pass());
}

TEST(NistDft, FailsOnPeriodicStream)
{
    EXPECT_FALSE(nistDft(periodicStream(1 << 17, 10)).pass());
}

TEST(NistLinearComplexity, FailsOnShortLfsrLikeStream)
{
    // Period-8 stream: linear complexity far below M/2.
    EXPECT_FALSE(nistLinearComplexity(periodicStream(200000, 8)).pass());
}

TEST(NistSerial, FailsOnPeriodicStream)
{
    EXPECT_FALSE(nistSerial(periodicStream(1 << 19, 6)).pass());
}

TEST(NistApproximateEntropy, FailsOnPeriodicStream)
{
    EXPECT_FALSE(
        nistApproximateEntropy(periodicStream(1 << 19, 6)).pass());
}

TEST(NistCumulativeSums, FailsOnDriftingStream)
{
    EXPECT_FALSE(nistCumulativeSums(biasedStream(100000, 0.53)).pass());
}

TEST(NistExcursions, ApplicabilityRequiresEnoughCycles)
{
    // A tiny stream cannot produce 500 random-walk cycles.
    const NistResult r = nistRandomExcursion(prngStream(1000));
    EXPECT_FALSE(r.applicable);
    EXPECT_TRUE(r.pass()); // Inapplicable tests do not fail.
}

TEST(NistExcursions, RunOnLongPrngStream)
{
    // Use a seed whose walk has enough zero crossings.
    for (uint64_t seed = 1; seed < 20; ++seed) {
        const BitStream bits = prngStream(1 << 22, seed);
        const NistResult r = nistRandomExcursion(bits);
        if (!r.applicable)
            continue;
        EXPECT_TRUE(r.pass()) << "seed=" << seed << " p=" << r.p_value;
        const NistResult rv = nistRandomExcursionVariant(bits);
        EXPECT_TRUE(rv.pass()) << "seed=" << seed;
        return;
    }
    FAIL() << "no seed produced an applicable excursion stream";
}

TEST(NistSuite, RunsAll15Tests)
{
    const auto results = runNistSuite(prngStream(1 << 20));
    EXPECT_EQ(results.size(), 15u);
    std::set<std::string> names;
    for (const auto &r : results)
        names.insert(r.name);
    EXPECT_EQ(names.size(), 15u); // All distinct (Table 10 rows).
}

TEST(NistSuite, AllPassHelper)
{
    std::vector<NistResult> results = {{"a", 0.5, true},
                                       {"b", 0.2, true}};
    EXPECT_TRUE(allPass(results));
    results.push_back({"c", 0.001, true});
    EXPECT_FALSE(allPass(results));
    results.back().applicable = false;
    EXPECT_TRUE(allPass(results));
}

TEST(NistSuite, ShortStreamMarksTestsInapplicableNotFailed)
{
    const auto results = runNistSuite(prngStream(2048));
    for (const auto &r : results)
        EXPECT_TRUE(r.pass()) << r.name;
}

} // namespace
} // namespace codic
