/**
 * @file
 * Tests of the CODIC core: variant classification by relative signal
 * order (Section 4.1.3), the Table 2 latency model, the mode-register
 * interface (Section 4.2.2), and the data-state semantics used by
 * the architectural simulations.
 */

#include <gtest/gtest.h>

#include "codic/functionality.h"
#include "codic/mode_regs.h"
#include "codic/variant.h"
#include "common/logging.h"

namespace codic {
namespace {

// --- Classification. ---

TEST(Classify, NamedVariantsMapToTheirClasses)
{
    EXPECT_EQ(variants::activate().classify(), VariantClass::Activate);
    EXPECT_EQ(variants::precharge().classify(), VariantClass::Precharge);
    EXPECT_EQ(variants::sig().classify(), VariantClass::Sig);
    EXPECT_EQ(variants::sigOpt().classify(), VariantClass::Sig);
    EXPECT_EQ(variants::detZero().classify(), VariantClass::DetZero);
    EXPECT_EQ(variants::detOne().classify(), VariantClass::DetOne);
    EXPECT_EQ(variants::sigsa().classify(), VariantClass::Sigsa);
}

TEST(Classify, EmptyScheduleIsNoop)
{
    EXPECT_EQ(classifySchedule(SignalSchedule{}), VariantClass::Noop);
}

TEST(Classify, SenseLegsWithoutWordlineIsNonDestructiveSignature)
{
    // The Section 4.1.3 variant: signatures without destroying cells.
    SignalSchedule s;
    s.set(Signal::SenseP, 3, 22);
    s.set(Signal::SenseN, 3, 22);
    EXPECT_EQ(classifySchedule(s), VariantClass::SigsaNoWrite);
}

TEST(Classify, TimingShiftedSigIsStillSig)
{
    // Paper Section 4.1.1: wl at 4 ns and EQ at 8 ns performs the
    // same function; functionality follows relative order.
    SignalSchedule s;
    s.set(Signal::Wl, 4, 22);
    s.set(Signal::Eq, 8, 22);
    EXPECT_EQ(classifySchedule(s), VariantClass::Sig);
}

TEST(Classify, EqBeforeWlIsCustom)
{
    SignalSchedule s;
    s.set(Signal::Eq, 3, 22);
    s.set(Signal::Wl, 5, 22);
    EXPECT_EQ(classifySchedule(s), VariantClass::Custom);
}

TEST(Classify, SimultaneousWlAndSenseIsCustom)
{
    SignalSchedule s;
    s.set(Signal::Wl, 5, 22);
    s.set(Signal::SenseP, 5, 22);
    s.set(Signal::SenseN, 5, 22);
    EXPECT_EQ(classifySchedule(s), VariantClass::Custom);
}

TEST(Classify, SenseLegsPlusEqIsCustom)
{
    SignalSchedule s;
    s.set(Signal::Wl, 5, 22);
    s.set(Signal::Eq, 6, 22);
    s.set(Signal::SenseP, 7, 22);
    s.set(Signal::SenseN, 7, 22);
    EXPECT_EQ(classifySchedule(s), VariantClass::Custom);
}

TEST(Classify, SingleSenseLegIsCustom)
{
    SignalSchedule s;
    s.set(Signal::SenseN, 7, 22);
    EXPECT_EQ(classifySchedule(s), VariantClass::Custom);
}

TEST(Classify, StaggeredLegsWithoutWlIsCustom)
{
    SignalSchedule s;
    s.set(Signal::SenseN, 7, 22);
    s.set(Signal::SenseP, 14, 22);
    EXPECT_EQ(classifySchedule(s), VariantClass::Custom);
}

TEST(Classify, AllNamedVariantsHaveNames)
{
    for (const auto &v : variants::all()) {
        EXPECT_FALSE(v.name.empty());
        EXPECT_NE(v.classify(), VariantClass::Noop);
        EXPECT_STRNE(variantClassName(v.classify()), "");
    }
}

// --- Latency model (paper Table 2). ---

TEST(Latency, Table2Values)
{
    EXPECT_DOUBLE_EQ(variantLatencyNs(variants::activate().schedule),
                     35.0);
    EXPECT_DOUBLE_EQ(variantLatencyNs(variants::precharge().schedule),
                     13.0);
    EXPECT_DOUBLE_EQ(variantLatencyNs(variants::sig().schedule), 35.0);
    EXPECT_DOUBLE_EQ(variantLatencyNs(variants::sigOpt().schedule),
                     13.0);
    EXPECT_DOUBLE_EQ(variantLatencyNs(variants::detZero().schedule),
                     35.0);
    EXPECT_DOUBLE_EQ(variantLatencyNs(variants::detOne().schedule),
                     35.0);
}

TEST(Latency, EmptyScheduleIsFree)
{
    EXPECT_DOUBLE_EQ(variantLatencyNs(SignalSchedule{}), 0.0);
}

TEST(Latency, LongCustomScheduleExceedsTras)
{
    // A schedule stretching to the end of the window occupies the
    // bank past tRAS.
    SignalSchedule s;
    s.set(Signal::Wl, 5, 24);
    s.set(Signal::SenseP, 7, 24);
    s.set(Signal::SenseN, 7, 24);
    LatencyModel model;
    model.settle_ns = 12.0;
    EXPECT_DOUBLE_EQ(variantLatencyNs(s, model), 36.0);
}

TEST(Latency, SigOptIsFasterThanSig)
{
    // The Section 4.1.1 optimization: 13 ns vs 35 ns.
    EXPECT_LT(variantLatencyNs(variants::sigOpt().schedule),
              variantLatencyNs(variants::sig().schedule));
}

// --- Mode registers (paper Section 4.2.2). ---

TEST(ModeRegs, PowerOnStateEncodesNothing)
{
    ModeRegisterFile mrf;
    EXPECT_TRUE(mrf.decode().empty());
}

TEST(ModeRegs, ProgramDecodeRoundTrip)
{
    for (const auto &v : variants::all()) {
        ModeRegisterFile mrf;
        mrf.program(v.schedule);
        EXPECT_EQ(mrf.decode(), v.schedule) << v.name;
    }
}

TEST(ModeRegs, EncodePulsePacksTenBits)
{
    const uint16_t raw = ModeRegisterFile::encodePulse(5, 22);
    EXPECT_EQ(raw & 0x1f, 5);
    EXPECT_EQ((raw >> 5) & 0x1f, 22);
    EXPECT_LT(raw, 1u << ModeRegisterFile::kRegisterBits);
}

TEST(ModeRegs, RejectsOverwideValues)
{
    ModeRegisterFile mrf;
    EXPECT_THROW(mrf.writeRegister(Signal::Wl, 1 << 10), FatalError);
}

TEST(ModeRegs, RejectsOutOfWindowTimes)
{
    ModeRegisterFile mrf;
    // start = 25 is outside [0, 25).
    EXPECT_THROW(mrf.writeRegister(Signal::Wl, 25), FatalError);
    // end = 25 likewise.
    EXPECT_THROW(mrf.writeRegister(Signal::Wl, 25u << 5), FatalError);
}

TEST(ModeRegs, DegenerateEncodingMeansDisabled)
{
    ModeRegisterFile mrf;
    mrf.writeRegister(Signal::Eq, ModeRegisterFile::encodePulse(7, 7));
    EXPECT_FALSE(mrf.decode().pulse(Signal::Eq).has_value());
}

class ModeRegSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ModeRegSweep, AllValidPulsesRoundTrip)
{
    const auto [start, end] = GetParam();
    if (end <= start)
        GTEST_SKIP() << "not a valid pulse";
    ModeRegisterFile mrf;
    mrf.writeRegister(Signal::SenseN,
                      ModeRegisterFile::encodePulse(start, end));
    const auto pulse = mrf.decode().pulse(Signal::SenseN);
    ASSERT_TRUE(pulse.has_value());
    EXPECT_EQ(pulse->start_ns, start);
    EXPECT_EQ(pulse->end_ns, end);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModeRegSweep,
    ::testing::Combine(::testing::Values(0, 1, 5, 12, 23),
                       ::testing::Values(1, 6, 13, 24)));

// --- Data-state semantics. ---

TEST(Functionality, DestructiveClasses)
{
    EXPECT_TRUE(destroysRowData(VariantClass::Sig));
    EXPECT_TRUE(destroysRowData(VariantClass::DetZero));
    EXPECT_TRUE(destroysRowData(VariantClass::DetOne));
    EXPECT_TRUE(destroysRowData(VariantClass::Sigsa));
    EXPECT_TRUE(destroysRowData(VariantClass::Custom));
    EXPECT_FALSE(destroysRowData(VariantClass::Noop));
    EXPECT_FALSE(destroysRowData(VariantClass::Precharge));
    EXPECT_FALSE(destroysRowData(VariantClass::Activate));
    EXPECT_FALSE(destroysRowData(VariantClass::SigsaNoWrite));
}

TEST(Functionality, SignatureClasses)
{
    EXPECT_TRUE(yieldsSignature(VariantClass::Sig));
    EXPECT_TRUE(yieldsSignature(VariantClass::Sigsa));
    EXPECT_TRUE(yieldsSignature(VariantClass::SigsaNoWrite));
    EXPECT_FALSE(yieldsSignature(VariantClass::DetZero));
    EXPECT_FALSE(yieldsSignature(VariantClass::Activate));
}

TEST(Functionality, ActivateResolvesHalfVddToSignature)
{
    // Paper Section 4.1.1: the activation after CODIC-sig amplifies
    // the cells to process-variation signatures.
    EXPECT_EQ(afterVariant(VariantClass::Activate, RowDataState::HalfVdd),
              RowDataState::SaSignature);
    EXPECT_EQ(afterVariant(VariantClass::Activate, RowDataState::Data),
              RowDataState::Data);
}

TEST(Functionality, TransitionsPreserveOrDestroyAsDocumented)
{
    for (RowDataState before :
         {RowDataState::Unwritten, RowDataState::Data,
          RowDataState::Zeroes, RowDataState::HalfVdd}) {
        EXPECT_EQ(afterVariant(VariantClass::Precharge, before), before);
        EXPECT_EQ(afterVariant(VariantClass::Noop, before), before);
        EXPECT_EQ(afterVariant(VariantClass::SigsaNoWrite, before),
                  before);
        EXPECT_EQ(afterVariant(VariantClass::Sig, before),
                  RowDataState::HalfVdd);
        EXPECT_EQ(afterVariant(VariantClass::DetZero, before),
                  RowDataState::Zeroes);
        EXPECT_EQ(afterVariant(VariantClass::DetOne, before),
                  RowDataState::Ones);
        EXPECT_EQ(afterVariant(VariantClass::Sigsa, before),
                  RowDataState::SaSignature);
        EXPECT_EQ(afterVariant(VariantClass::Custom, before),
                  RowDataState::Undefined);
    }
}

TEST(Functionality, StateNamesAreDistinct)
{
    EXPECT_STREQ(rowDataStateName(RowDataState::Zeroes), "zeroes");
    EXPECT_STREQ(rowDataStateName(RowDataState::HalfVdd), "half-vdd");
    EXPECT_STREQ(rowDataStateName(RowDataState::SaSignature),
                 "sa-signature");
}

} // namespace
} // namespace codic
