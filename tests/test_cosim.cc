/**
 * @file
 * Tests of the tick-driven co-simulation core (sim/engine.h) and the
 * MemoryService::onComplete callback path: callback-vs-blocking
 * equivalence (byte-identical command streams and completion
 * cycles), per-channel arrival-order callback firing, the
 * ticket-ownership contract (auto-retire, immediate fire on
 * completed tickets, completionOf exclusion), and TickEngine
 * determinism for the multi-producer scenarios.
 */

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "dram/system.h"
#include "mem/controller.h"
#include "sim/engine.h"
#include "sim/workloads.h"

namespace codic {
namespace {

DramConfig
cfg()
{
    return DramConfig::ddr3_1600(256);
}

void
expectSameCounts(const CommandCounts &a, const CommandCounts &b)
{
    EXPECT_EQ(a.act, b.act);
    EXPECT_EQ(a.pre, b.pre);
    EXPECT_EQ(a.rd, b.rd);
    EXPECT_EQ(a.wr, b.wr);
    EXPECT_EQ(a.ref, b.ref);
    EXPECT_EQ(a.total(), b.total());
    ASSERT_EQ(a.per_bank.size(), b.per_bank.size());
    for (size_t i = 0; i < a.per_bank.size(); ++i) {
        EXPECT_EQ(a.per_bank[i].act, b.per_bank[i].act);
        EXPECT_EQ(a.per_bank[i].rd, b.per_bank[i].rd);
        EXPECT_EQ(a.per_bank[i].wr, b.per_bank[i].wr);
        EXPECT_EQ(a.per_bank[i].ref, b.per_bank[i].ref);
    }
}

// --- Callback vs blocking equivalence. ---

TEST(Cosim, CallbackPathMatchesBlockingPathByteForByte)
{
    // Same strided read stream through both consumer styles: the
    // blocking owner resolves each ticket with completionOf; the
    // callback owner registers onComplete and drains. The command
    // stream, the per-bank breakdown, and every completion cycle
    // must be identical.
    const uint64_t kReads = 64;
    const uint64_t kStride = 4096;
    const Cycle kGap = 12;

    DramChannel ch_blocking(cfg());
    MemoryController blocking(ch_blocking);
    std::vector<Cycle> blocking_done;
    for (uint64_t i = 0; i < kReads; ++i) {
        const Ticket t = blocking.submit(MemTransaction::makeRead(
            i * kStride, static_cast<Cycle>(i) * kGap));
        blocking_done.push_back(blocking.completionOf(t));
    }

    DramChannel ch_callback(cfg());
    MemoryController callback(ch_callback);
    std::vector<Cycle> callback_done;
    for (uint64_t i = 0; i < kReads; ++i) {
        const Ticket t = callback.submit(MemTransaction::makeRead(
            i * kStride, static_cast<Cycle>(i) * kGap));
        callback.onComplete(t, [&](Ticket, Cycle done) {
            callback_done.push_back(done);
        });
    }
    callback.drainAll();

    ASSERT_EQ(callback_done.size(), blocking_done.size());
    for (size_t i = 0; i < blocking_done.size(); ++i)
        EXPECT_EQ(callback_done[i], blocking_done[i]) << "read " << i;
    expectSameCounts(ch_callback.counts(), ch_blocking.counts());
}

TEST(Cosim, CallbackReadSourceMatchesBlockingLatencies)
{
    // The TickEngine-driven CallbackReadSource observes the same
    // total latency as a blocking consumer of the same stream.
    const uint64_t kReads = 48;
    const uint64_t kStride = 256;
    const Cycle kGap = 20;

    DramChannel ch_blocking(cfg());
    MemoryController blocking(ch_blocking);
    Cycle blocking_latency = 0;
    for (uint64_t i = 0; i < kReads; ++i) {
        const Cycle arrival = static_cast<Cycle>(i) * kGap;
        const Ticket t = blocking.submit(
            MemTransaction::makeRead(i * kStride, arrival));
        blocking_latency += blocking.completionOf(t) - arrival;
    }

    DramChannel ch_engine(cfg());
    MemoryController mc(ch_engine);
    CallbackReadSource source(mc, 0, kStride, kReads, kGap);
    TickEngine engine(mc);
    engine.add(&source);
    engine.run();

    EXPECT_EQ(source.completed(), kReads);
    EXPECT_EQ(source.totalLatency(), blocking_latency);
    expectSameCounts(ch_engine.counts(), ch_blocking.counts());
}

TEST(Cosim, CallbacksFireInArrivalOrderPerChannel)
{
    // FCFS service (read_window = 1) completes in arrival order, so
    // callbacks must fire in submission order even when later
    // requests were registered first.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::parse("eager:read_window=1");
    DramChannel ch(c);
    MemoryController mc(ch);

    std::vector<Ticket> tickets;
    for (uint64_t i = 0; i < 16; ++i)
        tickets.push_back(mc.submit(MemTransaction::makeRead(
            i * 8192, static_cast<Cycle>(i) * 4)));

    std::vector<Ticket> fired;
    // Register in reverse: firing order must still be arrival order.
    for (size_t i = tickets.size(); i-- > 0;)
        mc.onComplete(tickets[i],
                      [&fired](Ticket t, Cycle) { fired.push_back(t); });
    mc.drainAll();

    ASSERT_EQ(fired.size(), tickets.size());
    for (size_t i = 0; i < tickets.size(); ++i)
        EXPECT_EQ(fired[i], tickets[i]) << "position " << i;
}

TEST(Cosim, OnCompleteFiresImmediatelyForCompletedTicket)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeRead(64, 0));
    mc.drainAll(); // Completes the transaction; ticket still live.

    Cycle done = 0;
    int fires = 0;
    mc.onComplete(t, [&](Ticket fired, Cycle completion) {
        EXPECT_EQ(fired, t);
        done = completion;
        ++fires;
    });
    EXPECT_EQ(fires, 1); // Fired inside onComplete, not queued.
    EXPECT_GT(done, 0u);
    // The callback consumed (auto-retired) the ticket.
    EXPECT_THROW(mc.completionOf(t), PanicError);
}

TEST(Cosim, CallbackOwnedTicketRejectsBlockingResolution)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeRead(64, 0));
    mc.onComplete(t, [](Ticket, Cycle) {});
    // Ownership moved to the callback: the blocking API may not
    // also resolve it.
    EXPECT_THROW(mc.completionOf(t), PanicError);
}

TEST(Cosim, CallbackTicketAutoRetiresThroughDramSystem)
{
    DramSystem sys(DramConfig::ddr3_1600(256, 2));
    std::vector<Ticket> fired;
    std::vector<Ticket> submitted;
    for (uint64_t i = 0; i < 8; ++i) {
        const Ticket t = sys.submit(MemTransaction::makeRead(
            i * 64, static_cast<Cycle>(i)));
        submitted.push_back(t);
        // The system-level ticket (not the channel-local one) must
        // be what the callback observes.
        sys.onComplete(t, [&fired](Ticket done, Cycle) {
            fired.push_back(done);
        });
    }
    sys.drainAll();
    ASSERT_EQ(fired.size(), submitted.size());
    std::sort(fired.begin(), fired.end());
    std::sort(submitted.begin(), submitted.end());
    EXPECT_EQ(fired, submitted);
}

// --- TickEngine semantics. ---

TEST(Cosim, TickEngineInterleavesByLocalClock)
{
    // Two sources with offset start cycles: the engine must always
    // tick the earlier one, so both finish and the engine's clock
    // ends at the later producer's last action.
    DramChannel ch(cfg());
    MemoryController mc(ch);
    CallbackReadSource fast(mc, 0, 64, 10, 5, 0);
    CallbackReadSource slow(mc, 1 << 20, 64, 10, 50, 3);
    TickEngine engine(mc);
    engine.add(&fast);
    engine.add(&slow);
    engine.run();
    EXPECT_EQ(fast.completed(), 10u);
    EXPECT_EQ(slow.completed(), 10u);
    EXPECT_GE(engine.now(), Cycle{3 + 9 * 50});
}

TEST(Cosim, TickEngineFiresEpochHooksInOrder)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    CallbackReadSource source(mc, 0, 64, 40, 25); // Last issue: 975.
    TickEngine engine(mc);
    engine.add(&source);
    std::vector<Cycle> boundaries;
    engine.setEpoch(200, [&](Cycle b) { boundaries.push_back(b); });
    engine.run();
    // Four boundaries inside the run (200..800) plus the closing
    // boundary after the drain.
    ASSERT_GE(boundaries.size(), 5u);
    for (size_t i = 1; i < boundaries.size(); ++i)
        EXPECT_GT(boundaries[i], boundaries[i - 1]);
    EXPECT_EQ(engine.epochsFired(), boundaries.size());
    EXPECT_EQ(source.completed(), 40u);
}

TEST(Cosim, StormSourceStaysOnTargetBank)
{
    // A row-sized storm footprint at base 0 must confine every ACT
    // and WR to channel 0 / rank 0 / bank 0 under RowBankColumn.
    DramConfig c = cfg();
    DramSystem sys(c);
    StormSource storm(
        sys, 0, static_cast<uint64_t>(sys.map().rowBytes()), 200, 4);
    TickEngine engine(sys);
    engine.add(&storm);
    engine.run();
    EXPECT_EQ(storm.completed(), 200u);

    const auto per_bank = sys.perBankCounts();
    ASSERT_FALSE(per_bank.empty());
    EXPECT_EQ(per_bank[0].wr, 200u);
    for (size_t i = 1; i < per_bank.size(); ++i) {
        EXPECT_EQ(per_bank[i].wr, 0u) << "bank " << i;
        EXPECT_EQ(per_bank[i].act, 0u) << "bank " << i;
    }
}

TEST(Cosim, MulticoreRunIsDeterministic)
{
    // The engine is serial with registration-order tie-breaks: two
    // identical multi-core runs must agree on every statistic.
    const auto once = [] {
        DramConfig c = cfg();
        DramSystem sys(c);
        WorkloadParams wa = benchmarkParams("mysql", 7);
        wa.phases = 30;
        WorkloadParams wb = benchmarkParams("stream", 8);
        wb.phases = 30;
        const Workload trace_a = generateWorkload(wa);
        const Workload trace_b = generateWorkload(wb);
        InOrderCore core_a(sys, CoreConfig{}, 0);
        InOrderCore core_b(sys, CoreConfig{}, 64 << 20);
        core_a.bind(&trace_a);
        core_b.bind(&trace_b);
        CoreProducer pa(core_a), pb(core_b);
        TickEngine engine(sys);
        engine.add(&pa);
        engine.add(&pb);
        const Cycle quiescent = engine.run();
        return std::make_tuple(quiescent, core_a.timeNs(),
                               core_b.timeNs(),
                               sys.totalCounts().total());
    };
    EXPECT_EQ(once(), once());
}

TEST(Cosim, SharedRunIsSlowerThanSolo)
{
    // Contention sanity: a core sharing the channel with a second
    // core can never finish earlier than the same trace run solo.
    DramConfig c = cfg();
    WorkloadParams wp = benchmarkParams("memcached", 5);
    wp.phases = 40;
    const Workload trace = generateWorkload(wp);
    WorkloadParams other = benchmarkParams("malloc", 6);
    other.phases = 40;
    const Workload rival = generateWorkload(other);

    DramSystem solo_sys(c);
    InOrderCore solo(solo_sys, CoreConfig{}, 0);
    solo.bind(&trace);
    const double solo_ns = solo.run();

    DramSystem shared_sys(c);
    InOrderCore core_a(shared_sys, CoreConfig{}, 0);
    InOrderCore core_b(shared_sys, CoreConfig{}, 64 << 20);
    core_a.bind(&trace);
    core_b.bind(&rival);
    CoreProducer pa(core_a), pb(core_b);
    TickEngine engine(shared_sys);
    engine.add(&pa);
    engine.add(&pb);
    engine.run();

    EXPECT_GE(core_a.timeNs(), solo_ns);
}

} // namespace
} // namespace codic
