/**
 * @file
 * Tests of the Section 6.1 retention-based emulation methodology:
 * the two-scenario conclusiveness test, consistency with the chip
 * population's declared coverage, the paper's coverage and flip
 * bands, and temperature acceleration.
 */

#include <gtest/gtest.h>

#include "puf/retention.h"

namespace codic {
namespace {

class RetentionFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        chips_ = new std::vector<SimulatedChip>(buildPaperPopulation());
    }

    static void
    TearDownTestSuite()
    {
        delete chips_;
        chips_ = nullptr;
    }

    static std::vector<SimulatedChip> *chips_;
};

std::vector<SimulatedChip> *RetentionFixture::chips_ = nullptr;

TEST_F(RetentionFixture, MeasuredCoverageMatchesDeclaredCoverage)
{
    // The emulated experiment and the statistical chip model must
    // agree: the methodology *measures* what the population declares.
    for (size_t i = 0; i < chips_->size(); i += 11) {
        const auto r = runRetentionExperiment((*chips_)[i]);
        EXPECT_NEAR(r.coverage(), (*chips_)[i].methodologyCoverage(),
                    0.06)
            << "chip " << i;
    }
}

TEST_F(RetentionFixture, CoverageInPaperBand)
{
    double lo = 1.0;
    double hi = 0.0;
    for (size_t i = 0; i < chips_->size(); i += 5) {
        const double c = runRetentionExperiment((*chips_)[i]).coverage();
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    // Paper Section 6.1: 34 % to 99 %.
    EXPECT_GE(lo, 0.30);
    EXPECT_LE(hi, 0.995);
    EXPECT_GT(hi - lo, 0.2); // A genuinely wide band.
}

TEST_F(RetentionFixture, FlipFractionInPaperBand)
{
    for (size_t i = 0; i < chips_->size(); i += 13) {
        const auto r = runRetentionExperiment((*chips_)[i]);
        // Paper: 0.01 % to 0.22 % of cells, with sampling slack.
        EXPECT_LT(r.flipFraction(), 0.004) << "chip " << i;
    }
}

TEST_F(RetentionFixture, InconclusiveCellsAreExcludedNotGuessed)
{
    const auto r = runRetentionExperiment((*chips_)[0]);
    EXPECT_GT(r.sampled, r.conclusive);
    EXPECT_LE(r.flips_observed, r.conclusive);
}

TEST_F(RetentionFixture, HigherTemperatureNeedsShorterWait)
{
    // The paper waits only 4 h for the temperature experiments
    // "since cells discharge faster at high temperatures".
    RetentionExperimentConfig hot;
    hot.wait_hours = 4.0;
    hot.temperature_c = 85.0;
    const auto fast = runRetentionExperiment((*chips_)[0], hot);
    RetentionExperimentConfig cold = hot;
    cold.temperature_c = 30.0;
    const auto slow = runRetentionExperiment((*chips_)[0], cold);
    EXPECT_GT(fast.coverage(), slow.coverage());
}

TEST_F(RetentionFixture, LongerWaitIncreasesCoverage)
{
    RetentionExperimentConfig short_wait;
    short_wait.wait_hours = 6.0;
    RetentionExperimentConfig long_wait;
    long_wait.wait_hours = 96.0;
    const auto a = runRetentionExperiment((*chips_)[3], short_wait);
    const auto b = runRetentionExperiment((*chips_)[3], long_wait);
    EXPECT_GT(b.coverage(), a.coverage());
}

TEST_F(RetentionFixture, ExperimentIsDeterministic)
{
    const auto a = runRetentionExperiment((*chips_)[5]);
    const auto b = runRetentionExperiment((*chips_)[5]);
    EXPECT_EQ(a.conclusive, b.conclusive);
    EXPECT_EQ(a.flips_observed, b.flips_observed);
}

TEST_F(RetentionFixture, MedianRetentionTracksCoverage)
{
    // Chips with higher declared coverage leak faster (smaller
    // median retention).
    const SimulatedChip *high = nullptr;
    const SimulatedChip *low = nullptr;
    for (const auto &chip : *chips_) {
        if (!high ||
            chip.methodologyCoverage() > high->methodologyCoverage())
            high = &chip;
        if (!low ||
            chip.methodologyCoverage() < low->methodologyCoverage())
            low = &chip;
    }
    EXPECT_LT(chipRetentionMedianHours(*high),
              chipRetentionMedianHours(*low));
}

TEST(RetentionResult, AccessorEdgeCases)
{
    RetentionExperimentResult r;
    EXPECT_DOUBLE_EQ(r.coverage(), 0.0);
    EXPECT_DOUBLE_EQ(r.flipFraction(), 0.0);
}

} // namespace
} // namespace codic
