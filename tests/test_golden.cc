/**
 * @file
 * Golden-determinism suite: the four CI-pinned paper scenarios,
 * run through the same JSON sink stack codic_run uses, must produce
 * output byte-identical to bench/GOLDEN_eager_paper.json - the
 * document captured from the pre-redesign blocking MemoryService -
 * at 1 AND at 8 campaign threads. This pins the whole hot path
 * (arena ticket records, SoA bank timing state, pow2 address
 * decode, channel-parallel stepping) to the published numbers: a
 * refactor that moves a single byte of the eager-preset paper
 * campaigns fails here before it reaches CI's out-of-process cmp.
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/result_sink.h"
#include "scenario/registry.h"

namespace codic {
namespace {

// The scenarios and options pinned by the CI golden gate
// (.github/workflows/ci.yml): scale 0.25, default seed.
const char *const kPinnedScenarios[] = {
    "secdealloc_fig8",
    "secdealloc_fig9",
    "coldboot_table6_overhead",
    "coldboot_fig7_destruction",
};

std::string
pinnedDocumentAt(int threads)
{
    RunOptions options;
    options.scale = 0.25;
    options.threads = threads;

    std::ostringstream out;
    JsonResultSink sink(out);
    for (const char *name : kPinnedScenarios)
        EXPECT_TRUE(runScenario(name, options, sink)) << name;
    sink.finish();
    return out.str();
}

std::string
goldenFileContents()
{
    // Tests run from the build tree; CODIC_REPO_DIR points at the
    // source tree (set in CMakeLists.txt).
    const std::string path =
        std::string(CODIC_REPO_DIR) + "/bench/GOLDEN_eager_paper.json";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

TEST(GoldenPaperScenarios, ByteIdenticalAtOneThread)
{
    const std::string golden = goldenFileContents();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(pinnedDocumentAt(1), golden)
        << "eager-preset paper output moved vs the pinned golden";
}

TEST(GoldenPaperScenarios, ByteIdenticalAtEightThreads)
{
    const std::string golden = goldenFileContents();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(pinnedDocumentAt(8), golden)
        << "paper output depends on the thread count";
}

} // namespace
} // namespace codic
