/**
 * @file
 * Multi-rank and cross-speed-grade coverage: rank independence of
 * timing constraints, destruction on dual-rank modules and on the
 * DDR3-1333 grade (the vendor-B parts of Table 12), and PUF
 * evaluation timing across grades.
 */

#include <gtest/gtest.h>

#include "coldboot/destruction.h"
#include "dram/channel.h"
#include "puf/response_time.h"

namespace codic {
namespace {

DramConfig
dualRank(int64_t capacity_mb)
{
    DramConfig cfg = DramConfig::ddr3_1600(capacity_mb);
    // Re-slice the same capacity over two ranks.
    cfg.ranks = 2;
    cfg.rows /= 2;
    return cfg;
}

TEST(MultiRank, RanksHaveIndependentActivationWindows)
{
    DramChannel ch(dualRank(256));
    const auto &t = ch.config().timing;
    Command act;
    act.type = CommandType::Act;
    act.addr.rank = 0;
    ch.issue(act, 0);
    // The other rank's tRRD horizon is untouched.
    Command other = act;
    other.addr.rank = 1;
    EXPECT_EQ(ch.earliest(other), 0);
    // Same rank still honours tRRD.
    Command same = act;
    same.addr.bank = 1;
    EXPECT_EQ(ch.earliest(same), t.trrd);
}

TEST(MultiRank, FawWindowsArePerRank)
{
    DramChannel ch(dualRank(256));
    Cycle at = 0;
    for (int b = 0; b < 4; ++b) {
        Command act;
        act.type = CommandType::Act;
        act.addr.rank = 0;
        act.addr.bank = b;
        Cycle issued;
        ch.issueAtEarliest(act, at, &issued);
        at = issued;
    }
    // Rank 0 is FAW-bound; rank 1 is not.
    Command r0;
    r0.type = CommandType::Act;
    r0.addr.bank = 4;
    Command r1 = r0;
    r1.addr.rank = 1;
    EXPECT_GE(ch.earliest(r0), ch.config().timing.tfaw);
    EXPECT_LT(ch.earliest(r1), ch.config().timing.tfaw);
}

TEST(MultiRank, RefreshBlocksOnlyItsRank)
{
    DramChannel ch(dualRank(256));
    Command ref;
    ref.type = CommandType::Ref;
    ref.addr.rank = 0;
    ch.issue(ref, 0);
    Command act;
    act.type = CommandType::Act;
    act.addr.rank = 1;
    EXPECT_EQ(ch.earliest(act), 0);
}

TEST(MultiRank, DestructionCoversBothRanks)
{
    DestructionConfig cfg;
    cfg.max_simulated_rows = 0;
    const DramConfig dram = dualRank(64);
    const auto r =
        runDestruction(dram, DestructionMechanism::Codic, cfg);
    EXPECT_EQ(r.counts.codic,
              static_cast<uint64_t>(dram.totalRows()));
    EXPECT_EQ(r.rows_destroyed, dram.totalRows());
}

TEST(MultiRank, DualRankDestructionNoSlowerThanSingle)
{
    // Two ranks double the activation resources; destruction is at
    // least as fast per byte (FAW/tRRD are per rank).
    const auto single = runDestruction(DramConfig::ddr3_1600(1024),
                                       DestructionMechanism::Codic);
    const auto dual =
        runDestruction(dualRank(1024), DestructionMechanism::Codic);
    EXPECT_LE(dual.time_ns, single.time_ns * 1.05);
}

TEST(SpeedGrades, Ddr3_1333DestructionSlightlySlower)
{
    const auto fast = runDestruction(DramConfig::ddr3_1600(1024),
                                     DestructionMechanism::Codic);
    const auto slow = runDestruction(DramConfig::ddr3_1333(1024),
                                     DestructionMechanism::Codic);
    // Same tFAW in ns, coarser clock: within ~15 %.
    EXPECT_NEAR(slow.time_ns / fast.time_ns, 1.0, 0.15);
}

TEST(SpeedGrades, PufEvaluationTimeAcrossGrades)
{
    const auto fast = evaluationTime(PufKind::CodicSig, true,
                                     DramConfig::ddr3_1600(2048));
    const auto slow = evaluationTime(PufKind::CodicSig, true,
                                     DramConfig::ddr3_1333(2048));
    EXPECT_GT(slow.native_ns, fast.native_ns);
    // SoftMC scale is interface-bound, identical across grades.
    EXPECT_DOUBLE_EQ(slow.softmc_ms, fast.softmc_ms);
}

TEST(SpeedGrades, CodicVariantsWorkOnBothGrades)
{
    for (const DramConfig &cfg : {DramConfig::ddr3_1600(64),
                                  DramConfig::ddr3_1333(64)}) {
        DramChannel ch(cfg);
        const int det =
            ch.registerVariant(variants::detZero().schedule);
        Command codic;
        codic.type = CommandType::Codic;
        codic.codic_variant = det;
        ch.issue(codic, 0);
        EXPECT_EQ(ch.rowState(0, 0, 0), RowDataState::Zeroes)
            << cfg.name;
    }
}

} // namespace
} // namespace codic
