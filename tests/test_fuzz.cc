/**
 * @file
 * Property/fuzz tests: long random-but-legal command streams through
 * the DRAM channel, random schedule classification totality, random
 * cache traffic against a reference model, and end-to-end
 * determinism checks. These guard the invariants DESIGN.md lists:
 * the JEDEC checker never admits an illegal issue, classification is
 * total, and simulations are reproducible from seeds.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "dram/channel.h"
#include "puf/sig_puf.h"
#include "sim/cache.h"

namespace codic {
namespace {

/**
 * Random legal command-stream generator: picks any command whose
 * preconditions hold and issues it via issueAtEarliest. The checker
 * inside the channel verifies every issue; the test asserts the
 * whole stream completes without a timing panic and that tracked
 * state stays consistent.
 */
class ChannelFuzzTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ChannelFuzzTest, RandomLegalStreamsNeverViolateTiming)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    const int sig = ch.registerVariant(variants::sig().schedule);
    const int det = ch.registerVariant(variants::detZero().schedule);
    Rng rng(GetParam());
    Cycle now = 0;

    for (int step = 0; step < 4000; ++step) {
        const int bank = static_cast<int>(rng.below(8));
        const int64_t row =
            static_cast<int64_t>(rng.below(64));
        Command cmd;
        cmd.addr.bank = bank;
        cmd.addr.row = row;
        cmd.addr.column = static_cast<int>(rng.below(128));

        if (ch.bankActive(0, bank)) {
            // Open bank: column ops on the open row, or precharge.
            switch (rng.below(4)) {
              case 0:
                cmd.type = CommandType::Rd;
                cmd.addr.row = ch.openRow(0, bank);
                break;
              case 1:
                cmd.type = CommandType::Wr;
                cmd.addr.row = ch.openRow(0, bank);
                break;
              case 2:
                cmd.type = CommandType::RowClone;
                break;
              default:
                cmd.type = CommandType::Pre;
                break;
            }
        } else {
            switch (rng.below(4)) {
              case 0:
                cmd.type = CommandType::Act;
                break;
              case 1:
                cmd.type = CommandType::Codic;
                cmd.codic_variant = rng.chance(0.5) ? sig : det;
                break;
              case 2:
                cmd.type = CommandType::Mrs;
                break;
              default: {
                // REF requires every bank precharged.
                bool all_idle = true;
                for (int b = 0; b < 8; ++b)
                    all_idle = all_idle && !ch.bankActive(0, b);
                cmd.type = all_idle ? CommandType::Ref
                                    : CommandType::Act;
                break;
              }
            }
        }
        Cycle issued = 0;
        ASSERT_NO_THROW(
            now = ch.issueAtEarliest(cmd, now, &issued))
            << "step " << step << ": " << cmd.str();
        // Monotone progress: issue times never go backwards.
        ASSERT_GE(issued, 0);
        // Occasionally jump time forward (idle periods).
        if (rng.chance(0.05))
            now += static_cast<Cycle>(rng.below(500));
    }
    EXPECT_GT(ch.counts().total(), 3000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ChannelFuzz, EarliestIsAlwaysLegalToIssue)
{
    // Property: whatever earliest() returns must be accepted by
    // issue() - the two must agree exactly.
    DramChannel ch(DramConfig::ddr3_1600(64));
    Rng rng(77);
    Cycle now = 0;
    for (int step = 0; step < 2000; ++step) {
        const int bank = static_cast<int>(rng.below(8));
        Command cmd;
        cmd.addr.bank = bank;
        cmd.addr.row = static_cast<int64_t>(rng.below(1024));
        if (ch.bankActive(0, bank)) {
            cmd.type = rng.chance(0.5) ? CommandType::Pre
                                       : CommandType::Rd;
            if (cmd.type == CommandType::Rd)
                cmd.addr.row = ch.openRow(0, bank);
        } else {
            cmd.type = CommandType::Act;
        }
        const Cycle earliest = ch.earliest(cmd);
        ASSERT_NO_THROW(now = ch.issue(cmd, std::max(earliest, now)));
    }
}

/** Reference cache: a map-based fully-precise model. */
class ReferenceCache
{
  public:
    ReferenceCache(uint64_t size, int ways, int line)
        : line_(line), ways_(ways),
          sets_(size / static_cast<uint64_t>(line * ways))
    {
    }

    bool
    access(uint64_t addr, bool write, uint64_t *victim, bool *dirty_evict)
    {
        const uint64_t line_addr = addr / static_cast<uint64_t>(line_);
        const uint64_t set = line_addr % sets_;
        auto &entries = sets_map_[set];
        ++tick_;
        auto it = entries.find(line_addr);
        if (it != entries.end()) {
            it->second.lru = tick_;
            it->second.dirty = it->second.dirty || write;
            return true;
        }
        *dirty_evict = false;
        if (entries.size() >= static_cast<size_t>(ways_)) {
            auto victim_it = entries.begin();
            for (auto e = entries.begin(); e != entries.end(); ++e)
                if (e->second.lru < victim_it->second.lru)
                    victim_it = e;
            if (victim_it->second.dirty) {
                *dirty_evict = true;
                *victim =
                    victim_it->first * static_cast<uint64_t>(line_);
            }
            entries.erase(victim_it);
        }
        entries[line_addr] = {tick_, write};
        return false;
    }

  private:
    struct Entry
    {
        uint64_t lru;
        bool dirty;
    };
    int line_;
    int ways_;
    uint64_t sets_;
    uint64_t tick_ = 0;
    std::map<uint64_t, std::map<uint64_t, Entry>> sets_map_;
};

TEST(CacheFuzz, MatchesReferenceModelOnRandomTraffic)
{
    Cache cache(16384, 4, 64);
    ReferenceCache ref(16384, 4, 64);
    Rng rng(31);
    for (int i = 0; i < 50000; ++i) {
        const uint64_t addr = rng.below(1 << 20);
        const bool write = rng.chance(0.3);
        uint64_t ref_victim = 0;
        bool ref_dirty = false;
        const bool ref_hit =
            ref.access(addr, write, &ref_victim, &ref_dirty);
        const auto got = cache.access(addr, write);
        ASSERT_EQ(got.hit, ref_hit) << "access " << i;
        ASSERT_EQ(got.writeback, ref_dirty) << "access " << i;
        if (got.writeback)
            ASSERT_EQ(got.victim_addr, ref_victim) << "access " << i;
    }
}

TEST(ClassifyFuzz, ClassificationIsTotalAndStable)
{
    Rng rng(17);
    for (int i = 0; i < 100000; ++i) {
        SignalSchedule s;
        for (size_t sig = 0; sig < kNumSignals; ++sig) {
            if (!rng.chance(0.75))
                continue;
            const int start = static_cast<int>(rng.below(24));
            const int end =
                start + 1 +
                static_cast<int>(
                    rng.below(static_cast<uint64_t>(24 - start)));
            s.set(static_cast<Signal>(sig), start, end);
        }
        const VariantClass a = classifySchedule(s);
        const VariantClass b = classifySchedule(s);
        ASSERT_EQ(a, b);
        ASSERT_STRNE(variantClassName(a), "");
        // The latency model is total too.
        ASSERT_GE(variantLatencyNs(s), 0.0);
    }
}

TEST(DeterminismFuzz, PufCampaignsAreSeedStable)
{
    const auto chips = buildPaperPopulation(99);
    const auto chips2 = buildPaperPopulation(99);
    CodicSigPuf puf;
    for (int i = 0; i < 50; ++i) {
        Challenge ch{static_cast<uint64_t>(i * 101), 65536};
        QueryEnv env{30.0, false, static_cast<uint64_t>(i)};
        EXPECT_EQ(puf.evaluate(chips[7], ch, env),
                  puf.evaluate(chips2[7], ch, env));
    }
}

} // namespace
} // namespace codic
