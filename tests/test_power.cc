/**
 * @file
 * Tests of the energy model: the Table 2 variant energies, the
 * ~17 nJ activation anchor, campaign-energy additivity, and the
 * background-power term.
 */

#include <gtest/gtest.h>

#include "codic/variant.h"
#include "power/energy_model.h"

namespace codic {
namespace {

TEST(Energy, ActivationPairIsAbout17nJ)
{
    // Paper Section 4.2.1: activation energy ~17 nJ.
    EXPECT_NEAR(actPreEnergyNj(), 17.3, 0.2);
}

TEST(Energy, Table2VariantEnergies)
{
    // Paper Table 2: activate 17.3 nJ, all others 17.2 nJ.
    EXPECT_NEAR(variantEnergyNj(variants::activate().schedule), 17.3,
                0.05);
    EXPECT_NEAR(variantEnergyNj(variants::precharge().schedule), 17.2,
                0.05);
    EXPECT_NEAR(variantEnergyNj(variants::sig().schedule), 17.2, 0.05);
    EXPECT_NEAR(variantEnergyNj(variants::sigOpt().schedule), 17.2,
                0.05);
    EXPECT_NEAR(variantEnergyNj(variants::detZero().schedule), 17.2,
                0.05);
    EXPECT_NEAR(variantEnergyNj(variants::sigsa().schedule), 17.2,
                0.05);
}

TEST(Energy, VariantEnergiesAreNearlyEqual)
{
    // Paper Section 4.3: energy is very similar across variants
    // because routing (~40 %) and the array operation (~40 %)
    // dominate every command.
    double lo = 1e9;
    double hi = 0.0;
    for (const auto &v : variants::all()) {
        const double e = variantEnergyNj(v.schedule);
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    EXPECT_LT((hi - lo) / lo, 0.01);
}

TEST(Energy, RoutingIsAbout40Percent)
{
    const EnergyParams p;
    const double total = variantEnergyNj(variants::sig().schedule, p);
    EXPECT_NEAR(p.route_nj / total, 0.40, 0.02);
    EXPECT_NEAR(p.array_nj / total, 0.40, 0.02);
}

TEST(Energy, DelayElementOverheadIsNegligible)
{
    const EnergyParams p;
    EXPECT_LT(p.codic_delay_nj, 0.0005); // < 500 fJ.
    EXPECT_LT(p.codic_delay_nj /
                  variantEnergyNj(variants::sig().schedule, p),
              1e-4);
}

TEST(Energy, EmptyScheduleCostsNothing)
{
    EXPECT_DOUBLE_EQ(variantEnergyNj(SignalSchedule{}), 0.0);
}

TEST(Energy, CampaignEnergyIsAdditiveInCommands)
{
    CommandCounts a;
    a.act = 10;
    CommandCounts b;
    b.act = 20;
    const double ea = campaignEnergyNj(a, 0.0);
    const double eb = campaignEnergyNj(b, 0.0);
    EXPECT_NEAR(eb, 2.0 * ea, 1e-9);
}

TEST(Energy, BackgroundTermScalesWithTime)
{
    CommandCounts none;
    EnergyParams p;
    p.background_mw = 25.0;
    // 25 mW for 1 ms = 25 uJ = 25000 nJ.
    EXPECT_NEAR(campaignEnergyNj(none, 1e6, p), 25000.0, 1.0);
}

TEST(Energy, CloneCommandsCostLessThanFullActivation)
{
    const EnergyParams p;
    EXPECT_LT(p.rowclone_nj, actPreEnergyNj(p));
    EXPECT_GT(p.rowclone_nj + p.lisa_rbm_nj, actPreEnergyNj(p));
}

TEST(Energy, MixedCampaignSumsAllTerms)
{
    CommandCounts c;
    c.act = 1;
    c.rd = 2;
    c.wr = 3;
    c.ref = 1;
    c.codic = 1;
    EnergyParams p;
    p.background_mw = 0.0;
    const double expected =
        actPreEnergyNj(p) + 2 * p.rd_burst_nj + 3 * p.wr_burst_nj +
        p.ref_nj +
        (p.route_nj + p.array_nj + p.control_nj + p.codic_delay_nj);
    EXPECT_NEAR(campaignEnergyNj(c, 0.0, p), expected, 1e-9);
}

} // namespace
} // namespace codic
