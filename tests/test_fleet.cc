/**
 * @file
 * Tests of the fleet subsystem: device-population determinism and
 * lazy instantiation (DeviceFleet), binary/JSON round-trips with
 * version gating and LRU behavior (EnrollmentStore), traffic
 * synthesis (RequestGenerator), and end-to-end serving determinism
 * at any shard/thread count plus paper-level authentication quality
 * (AuthService) - including the enroll-in-one-run /
 * authenticate-in-another persistence flow.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/logging.h"
#include "common/result_sink.h"
#include "fleet/auth_service.h"
#include "fleet/device_fleet.h"
#include "fleet/enrollment_store.h"
#include "scenario/registry.h"

namespace codic {
namespace {

/** Small fleet that keeps tests fast. */
FleetConfig
testFleetConfig(uint64_t devices = 64, int shards = 3)
{
    FleetConfig fc;
    fc.population_seed = 99;
    fc.devices = devices;
    fc.shards = shards;
    fc.dram = DramConfig::ddr3_1600(256, 1);
    fc.dram.scheduler = SchedulerPolicy::preset("batched");
    return fc;
}

// --- DeviceFleet. ---

TEST(DeviceFleet, DeviceIdentityIndependentOfShardCount)
{
    DeviceFleet one(testFleetConfig(64, 1));
    DeviceFleet five(testFleetConfig(64, 5));
    for (uint64_t id : {0ull, 7ull, 63ull}) {
        EXPECT_EQ(one.deviceSeed(id), five.deviceSeed(id));
        EXPECT_EQ(one.device(id).spec().seed,
                  five.device(id).spec().seed);
        const Challenge a = one.goldenChallenge(id);
        const Challenge b = five.goldenChallenge(id);
        EXPECT_EQ(a.segment_id, b.segment_id);
        EXPECT_EQ(one.enrollSignature(id), five.enrollSignature(id));
    }
}

TEST(DeviceFleet, PopulationsAreLazy)
{
    FleetConfig fc = testFleetConfig(1'000'000'000ull, 8);
    DeviceFleet fleet(fc); // A billion devices cost nothing...
    EXPECT_EQ(fleet.instantiatedDevices(), 0u);
    fleet.device(3);
    fleet.device(999'999'999ull);
    fleet.device(3); // ...until touched (and touches are cached).
    EXPECT_EQ(fleet.instantiatedDevices(), 2u);
}

TEST(DeviceFleet, GoldenChallengeIsStableAndInRange)
{
    DeviceFleet fleet(testFleetConfig());
    const Challenge a = fleet.goldenChallenge(11);
    const Challenge b = fleet.goldenChallenge(11);
    EXPECT_EQ(a.segment_id, b.segment_id);
    EXPECT_LT(a.segment_id, fleet.device(11).segments());
    EXPECT_EQ(a.segment_bits, fleet.config().segment_bits);
}

TEST(DeviceFleet, ShardDeviceIdsPartitionThePopulation)
{
    DeviceFleet fleet(testFleetConfig(10, 3));
    size_t total = 0;
    for (int s = 0; s < fleet.shards(); ++s) {
        for (uint64_t id : fleet.shardDeviceIds(s))
            EXPECT_EQ(fleet.shardOf(id), s);
        total += fleet.shardDeviceIds(s).size();
    }
    EXPECT_EQ(total, 10u);
}

// --- EnrollmentStore. ---

Response
makeResponse(std::initializer_list<uint32_t> cells)
{
    Response r;
    r.cells = cells;
    return r;
}

EnrollmentStore
makeStore()
{
    EnrollmentStore store(4242);
    store.put(5, {123, 65536}, makeResponse({1, 2, 500, 65535}));
    store.put(1, {99, 65536}, makeResponse({7}));
    store.put(300, {4, 32768}, makeResponse({}));
    return store;
}

void
expectStoresEqual(const EnrollmentStore &a, const EnrollmentStore &b)
{
    EXPECT_EQ(a.populationSeed(), b.populationSeed());
    ASSERT_EQ(a.deviceIds(), b.deviceIds());
    for (uint64_t id : a.deviceIds()) {
        const EnrollmentRecord *ra = a.record(id);
        const EnrollmentRecord *rb = b.record(id);
        ASSERT_NE(ra, nullptr);
        ASSERT_NE(rb, nullptr);
        EXPECT_EQ(ra->segment_id, rb->segment_id);
        EXPECT_EQ(ra->segment_bits, rb->segment_bits);
        EXPECT_EQ(EnrollmentStore::decode(*ra),
                  EnrollmentStore::decode(*rb));
    }
}

TEST(EnrollmentStore, LookupDecodesWhatWasPut)
{
    const EnrollmentStore store = makeStore();
    EXPECT_EQ(store.size(), 3u);
    EXPECT_TRUE(store.contains(5));
    EXPECT_FALSE(store.contains(6));
    EXPECT_EQ(store.lookup(6), nullptr);
    ASSERT_NE(store.lookup(5), nullptr);
    EXPECT_EQ(*store.lookup(5), makeResponse({1, 2, 500, 65535}));
    EXPECT_EQ(*store.lookup(300), makeResponse({}));
}

TEST(EnrollmentStore, BinaryRoundTrip)
{
    const EnrollmentStore store = makeStore();
    std::ostringstream out;
    store.saveBinary(out);
    EXPECT_EQ(out.str().size(), store.binarySizeBytes());
    std::istringstream in(out.str());
    expectStoresEqual(store, EnrollmentStore::loadBinary(in));
}

TEST(EnrollmentStore, JsonRoundTrip)
{
    const EnrollmentStore store = makeStore();
    std::ostringstream out;
    store.saveJson(out);
    std::istringstream in(out.str());
    expectStoresEqual(store, EnrollmentStore::loadJson(in));
}

TEST(EnrollmentStore, BinaryRejectsVersionMismatch)
{
    std::ostringstream out;
    makeStore().saveBinary(out);
    std::string bytes = out.str();
    bytes[8] = 99; // First byte of the little-endian version field.
    std::istringstream in(bytes);
    EXPECT_THROW(EnrollmentStore::loadBinary(in), FatalError);
}

TEST(EnrollmentStore, BinaryRejectsBadMagicAndTruncation)
{
    std::ostringstream out;
    makeStore().saveBinary(out);
    std::string bytes = out.str();

    std::string corrupted = bytes;
    corrupted[0] = 'X';
    std::istringstream bad_magic(corrupted);
    EXPECT_THROW(EnrollmentStore::loadBinary(bad_magic), FatalError);

    std::istringstream truncated(bytes.substr(0, bytes.size() - 3));
    EXPECT_THROW(EnrollmentStore::loadBinary(truncated), FatalError);
}

TEST(EnrollmentStore, BinaryRejectsImplausibleRecordSizes)
{
    std::ostringstream out;
    makeStore().saveBinary(out);
    std::string bytes = out.str();
    // First record's cell_count field (the v2 header is 40 bytes; the
    // record starts with u64 id, u64 segment, u32 segment_bits).
    for (size_t i = 60; i < 64; ++i)
        bytes[i] = static_cast<char>(0xFF);
    std::istringstream in(bytes);
    EXPECT_THROW(EnrollmentStore::loadBinary(in), FatalError);
}

TEST(EnrollmentStore, BinaryRejectsTrailingBytes)
{
    std::ostringstream out;
    makeStore().saveBinary(out);
    std::istringstream in(out.str() + "x");
    EXPECT_THROW(EnrollmentStore::loadBinary(in), FatalError);
}

TEST(EnrollmentStore, DecodeRejectsOverlongVarints)
{
    EnrollmentRecord rec;
    rec.device_id = 1;
    rec.cell_count = 1;
    // Ten continuation bytes put the final payload past bit 63.
    rec.blob.assign(9, 0x80);
    rec.blob.push_back(0x02);
    EXPECT_THROW(EnrollmentStore::decode(rec), FatalError);
}

TEST(EnrollmentStore, JsonRejectsVersionMismatch)
{
    std::ostringstream out;
    makeStore().saveJson(out);
    std::string text = out.str();
    const auto pos = text.find("\"version\":2");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 11, "\"version\":9");
    std::istringstream in(text);
    EXPECT_THROW(EnrollmentStore::loadJson(in), FatalError);
}

TEST(EnrollmentStore, JsonRejectsGarbage)
{
    std::istringstream in("{\"format\":\"something-else\"}");
    EXPECT_THROW(EnrollmentStore::loadJson(in), FatalError);
}

TEST(EnrollmentStore, LruCacheCountsHitsAndEvicts)
{
    EnrollmentStore store(1, /*cache_capacity=*/2);
    store.put(1, {1, 64}, makeResponse({1}));
    store.put(2, {2, 64}, makeResponse({2}));
    store.put(3, {3, 64}, makeResponse({3}));

    store.lookup(1); // miss
    store.lookup(1); // hit
    store.lookup(2); // miss
    store.lookup(3); // miss; evicts 1 (capacity 2)
    store.lookup(1); // miss again
    EXPECT_EQ(store.cacheHits(), 1u);
    EXPECT_EQ(store.cacheMisses(), 4u);
}

TEST(EnrollmentStore, ReenrollmentInvalidatesCachedDecode)
{
    EnrollmentStore store(1);
    store.put(9, {1, 64}, makeResponse({10, 20}));
    EXPECT_EQ(*store.lookup(9), makeResponse({10, 20}));
    store.put(9, {1, 64}, makeResponse({30}));
    EXPECT_EQ(*store.lookup(9), makeResponse({30}));
}

// --- RequestGenerator. ---

TEST(RequestGenerator, StreamsAreDeterministic)
{
    TrafficConfig tc;
    tc.traffic_seed = 5;
    tc.requests = 300;
    tc.zipf = 0.9;
    tc.weight_auth = 0.5;
    tc.weight_trng = 0.5;
    const RequestGenerator gen(tc, 40);
    const auto a = gen.generate();
    const auto b = RequestGenerator(tc, 40).generate();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].device_id, b[i].device_id);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].nonce, b[i].nonce);
    }
}

TEST(RequestGenerator, ZipfSkewsTowardLowRanks)
{
    TrafficConfig tc;
    tc.requests = 4000;
    const auto uniform = RequestGenerator(tc, 100).generate();
    tc.zipf = 1.2;
    const auto zipf = RequestGenerator(tc, 100).generate();
    const auto hitsOnDevice0 = [](const auto &stream) {
        size_t n = 0;
        for (const auto &r : stream)
            n += r.device_id == 0;
        return n;
    };
    EXPECT_GT(hitsOnDevice0(zipf), 4 * hitsOnDevice0(uniform));
}

TEST(RequestGenerator, ZipfMatchesTheExactDistribution)
{
    // The rejection-inversion sampler must reproduce the exact
    // finite-N Zipf law: empirical rank frequencies over a small
    // population track k^-s within sampling noise.
    TrafficConfig tc;
    tc.traffic_seed = 3;
    tc.requests = 200000;
    tc.zipf = 1.0;
    const uint64_t n = 8;
    const auto stream = RequestGenerator(tc, n).generate();
    double weight_sum = 0.0;
    for (uint64_t k = 1; k <= n; ++k)
        weight_sum += 1.0 / static_cast<double>(k);
    std::vector<size_t> counts(n, 0);
    for (const auto &r : stream)
        ++counts[static_cast<size_t>(r.device_id)];
    for (uint64_t k = 1; k <= n; ++k) {
        const double expected =
            (1.0 / static_cast<double>(k)) / weight_sum;
        const double observed =
            static_cast<double>(counts[k - 1]) /
            static_cast<double>(tc.requests);
        EXPECT_NEAR(observed, expected, 0.01) << "rank " << k;
    }
}

TEST(RequestGenerator, ZipfScalesToBillionDevicePopulations)
{
    // O(1) sampler state: a Zipfian stream over 10^9 devices must
    // not materialize a per-device table.
    TrafficConfig tc;
    tc.requests = 2000;
    tc.zipf = 0.99;
    const uint64_t n = 1'000'000'000ull;
    const auto stream = RequestGenerator(tc, n).generate();
    size_t hot = 0;
    for (const auto &r : stream) {
        ASSERT_LT(r.device_id, n);
        hot += r.device_id < 1000;
    }
    // Under uniform sampling P(id < 1000) ~ 1e-6; Zipf(0.99) puts a
    // large share of the mass there.
    EXPECT_GT(hot, 100u);
}

TEST(RequestGenerator, OpenLoopArrivalsAreMonotone)
{
    TrafficConfig tc;
    tc.requests = 100;
    tc.offered_rps = 10000.0;
    const auto stream = RequestGenerator(tc, 10).generate();
    double last = 0.0;
    for (const auto &r : stream) {
        EXPECT_GT(r.arrival_us, last);
        last = r.arrival_us;
    }
}

// --- AuthService end to end. ---

std::vector<FleetRequest>
mixedStream(uint64_t devices, uint64_t requests)
{
    TrafficConfig tc;
    tc.traffic_seed = 17;
    tc.requests = requests;
    tc.zipf = 0.8;
    tc.weight_auth = 0.7;
    tc.weight_reenroll = 0.1;
    tc.weight_trng = 0.1;
    tc.weight_dealloc = 0.1;
    return RequestGenerator(tc, devices).generate();
}

void
expectReportsEqual(const LoadReport &a, const LoadReport &b)
{
    EXPECT_EQ(a.requests, b.requests);
    for (int k = 0; k < kRequestKinds; ++k)
        EXPECT_EQ(a.by_kind[k], b.by_kind[k]);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.unknown_device, b.unknown_device);
    EXPECT_EQ(a.reenrolled, b.reenrolled);
    EXPECT_EQ(a.trng_bits_delivered, b.trng_bits_delivered);
    EXPECT_EQ(a.trng_health_failures, b.trng_health_failures);
    EXPECT_EQ(a.dealloc_rows_cleared, b.dealloc_rows_cleared);
    EXPECT_EQ(a.planned_cache_hits, b.planned_cache_hits);
    EXPECT_EQ(a.planned_cache_misses, b.planned_cache_misses);
    EXPECT_EQ(a.latency_p50_ns, b.latency_p50_ns);
    EXPECT_EQ(a.latency_p95_ns, b.latency_p95_ns);
    EXPECT_EQ(a.latency_p99_ns, b.latency_p99_ns);
    EXPECT_EQ(a.latency_max_ns, b.latency_max_ns);
    EXPECT_EQ(a.total_service_ns, b.total_service_ns);
    EXPECT_EQ(a.total_energy_nj, b.total_energy_nj);
}

TEST(AuthService, EnrollmentStoreIndependentOfShardsAndThreads)
{
    std::string reference;
    for (const auto &[shards, threads] :
         {std::pair{1, 1}, {3, 1}, {4, 8}}) {
        DeviceFleet fleet(testFleetConfig(48, shards));
        EnrollmentStore store(fleet.config().population_seed);
        AuthConfig ac;
        ac.threads = threads;
        AuthService service(fleet, store, ac);
        service.enrollAll();
        std::ostringstream out;
        store.saveBinary(out);
        if (reference.empty())
            reference = out.str();
        else
            EXPECT_EQ(out.str(), reference)
                << "store bytes depend on shards=" << shards
                << " threads=" << threads;
    }
}

TEST(AuthService, ReportIndependentOfShardsAndThreads)
{
    const auto runWith = [](int shards, int threads) {
        DeviceFleet fleet(testFleetConfig(48, shards));
        EnrollmentStore store(fleet.config().population_seed);
        AuthConfig ac;
        ac.threads = threads;
        AuthService service(fleet, store, ac);
        service.enrollAll();
        return service.execute(mixedStream(48, 400));
    };
    const LoadReport reference = runWith(1, 1);
    expectReportsEqual(reference, runWith(5, 8));
    expectReportsEqual(reference, runWith(3, 2));
    EXPECT_GT(reference.accepted, 0u);
    EXPECT_GT(reference.latency_p99_ns, reference.latency_p50_ns);
}

TEST(AuthService, TrueAcceptRateMeetsPaperLevel)
{
    DeviceFleet fleet(testFleetConfig(48, 3));
    EnrollmentStore store(fleet.config().population_seed);
    AuthService service(fleet, store, {});
    service.enrollAll();
    TrafficConfig tc;
    tc.requests = 600;
    const LoadReport report =
        service.execute(RequestGenerator(tc, 48).generate());
    const double rate =
        static_cast<double>(report.accepted) /
        static_cast<double>(report.accepted + report.rejected);
    // Paper Section 6.1.1: 99.36% true accepts for exact-match
    // authentication; the Jaccard matcher must do at least as well.
    EXPECT_GE(rate, 0.9936);
    EXPECT_EQ(report.unknown_device, 0u);
}

TEST(AuthService, UnknownDevicesAreReportedNotAccepted)
{
    DeviceFleet fleet(testFleetConfig(10, 2));
    EnrollmentStore store(fleet.config().population_seed);
    AuthService service(fleet, store, {});
    // Nothing enrolled: every authentication is an unknown device.
    TrafficConfig tc;
    tc.requests = 20;
    const LoadReport report =
        service.execute(RequestGenerator(tc, 10).generate());
    EXPECT_EQ(report.unknown_device, 20u);
    EXPECT_EQ(report.accepted, 0u);
}

TEST(AuthService, PersistedStoreAuthenticatesInASecondRun)
{
    const auto path =
        (std::filesystem::temp_directory_path() /
         "codic_test_fleet_store.bin")
            .string();

    // Run 1: enroll and persist.
    {
        DeviceFleet fleet(testFleetConfig(32, 4));
        EnrollmentStore store(fleet.config().population_seed);
        AuthService service(fleet, store, {});
        service.enrollAll();
        store.saveFile(path);
    }

    // Run 2: reload and authenticate against the stored signatures.
    {
        EnrollmentStore store = EnrollmentStore::loadFile(path);
        EXPECT_EQ(store.size(), 32u);
        FleetConfig fc = testFleetConfig(32, 2);
        fc.population_seed = store.populationSeed();
        DeviceFleet fleet(fc);
        AuthService service(fleet, store, {});
        TrafficConfig tc;
        tc.requests = 400;
        const LoadReport report =
            service.execute(RequestGenerator(tc, 32).generate());
        const double rate =
            static_cast<double>(report.accepted) /
            static_cast<double>(report.accepted + report.rejected);
        EXPECT_GE(rate, 0.9936);
        EXPECT_EQ(report.unknown_device, 0u);
    }
    std::filesystem::remove(path);
}

// --- Scenario-level determinism across --shards. ---

std::string
fleetJson(const std::string &name, int shards, int threads)
{
    RunOptions options;
    options.seed = 3;
    options.scale = 0.01;
    options.shards = shards;
    options.threads = threads;
    std::ostringstream out;
    JsonResultSink sink(out);
    EXPECT_TRUE(runScenario(name, options, sink));
    sink.finish();
    return out.str();
}

TEST(FleetScenarios, AuthLoadJsonByteIdenticalAcrossShards)
{
    const std::string reference = fleetJson("fleet_auth_load", 1, 1);
    EXPECT_EQ(reference, fleetJson("fleet_auth_load", 4, 8));
    EXPECT_NE(reference.find("\"true_accept_rate\":1"),
              std::string::npos);
}

TEST(FleetScenarios, MixedJsonByteIdenticalAcrossShards)
{
    EXPECT_EQ(fleetJson("fleet_mixed", 1, 2),
              fleetJson("fleet_mixed", 3, 8));
}

// --- Queueing-aware latency and batched bank-parallel replay. ---

TEST(AuthService, QueueingWaitsOnlyForOpenLoopStreams)
{
    const auto runStream = [](double offered_rps) {
        DeviceFleet fleet(testFleetConfig(32, 2));
        EnrollmentStore store(fleet.config().population_seed);
        AuthService service(fleet, store, {});
        service.enrollAll();
        TrafficConfig tc;
        tc.traffic_seed = 23;
        tc.requests = 400;
        tc.zipf = 1.2; // Hot devices: back-to-back lane arrivals.
        tc.offered_rps = offered_rps;
        return service.execute(
            RequestGenerator(tc, 32).generate());
    };

    const LoadReport closed = runStream(0.0);
    EXPECT_FALSE(closed.open_loop);
    EXPECT_EQ(closed.wait_mean_ns, 0.0);
    EXPECT_EQ(closed.wait_max_ns, 0.0);
    // Closed loop: latency is the modeled service time alone.
    EXPECT_DOUBLE_EQ(closed.latency_mean_ns,
                     closed.total_service_ns /
                         static_cast<double>(closed.requests));

    // Open loop far above the lanes' service capacity: waits must
    // appear, and latency = wait + service dominates service-only.
    const LoadReport open = runStream(5e6);
    EXPECT_TRUE(open.open_loop);
    EXPECT_GT(open.wait_max_ns, 0.0);
    EXPECT_GT(open.wait_mean_ns, 0.0);
    EXPECT_GE(open.latency_p99_ns, closed.latency_p99_ns);
    EXPECT_DOUBLE_EQ(open.latency_mean_ns,
                     open.total_service_ns /
                             static_cast<double>(open.requests) +
                         open.wait_mean_ns);
}

TEST(AuthService, OutOfPopulationDeviceIdsReportUnknownNotPanic)
{
    // Regression: slice assembly must not touch the fleet for a
    // request whose store lookup fails - an authenticate probe with
    // an id outside the population reports unknown_device exactly
    // as in the serial-replay path.
    DeviceFleet fleet(testFleetConfig(16, 2));
    EnrollmentStore store(fleet.config().population_seed);
    AuthService service(fleet, store, {});
    service.enrollAll();
    std::vector<FleetRequest> stream(3);
    stream[0].device_id = 3; // Enrolled.
    stream[1].device_id = 1u << 20; // Far outside the population.
    stream[1].index = 1;
    stream[2].device_id = 5;
    stream[2].index = 2;
    const LoadReport report = service.execute(stream);
    EXPECT_EQ(report.unknown_device, 1u);
    EXPECT_EQ(report.accepted, 2u);
}

TEST(AuthService, BatchedReplayShortensShardMakespan)
{
    const auto makespan = [](int replay_batch) {
        FleetConfig fc = testFleetConfig(48, 2);
        fc.dram.scheduler.replay_batch = replay_batch;
        DeviceFleet fleet(fc);
        EnrollmentStore store(fc.population_seed);
        AuthService service(fleet, store, {});
        service.enrollAll();
        const LoadReport r =
            service.execute(mixedStream(48, 300));
        EXPECT_GT(r.accepted, 0u);
        return r.makespanNs();
    };
    const double serial = makespan(1);
    const double batched = makespan(8);
    EXPECT_GT(serial, 0.0);
    // The bank-parallel interleave must buy >= 15% on this mixed
    // batch (the CI bench gate asserts >= 20% at fleet scale).
    EXPECT_LT(batched, serial * 0.85);
}

} // namespace
} // namespace codic
