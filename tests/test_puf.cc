/**
 * @file
 * Tests of the PUF framework: the 136-chip population (Table 12),
 * deterministic per-device behaviour, the three PUF implementations,
 * Jaccard metrics (Fig. 5), temperature/aging campaigns (Fig. 6),
 * exact-match authentication rates, and the Table 4 response-time
 * model.
 */

#include <gtest/gtest.h>

#include "puf/chip_model.h"
#include "puf/experiments.h"
#include "puf/latency_puf.h"
#include "puf/prelat_puf.h"
#include "puf/response_time.h"
#include "puf/sig_puf.h"

namespace codic {
namespace {

class PopulationFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        chips_ = new std::vector<SimulatedChip>(buildPaperPopulation());
    }

    static void
    TearDownTestSuite()
    {
        delete chips_;
        chips_ = nullptr;
    }

    static std::vector<const SimulatedChip *>
    all()
    {
        std::vector<const SimulatedChip *> out;
        for (const auto &c : *chips_)
            out.push_back(&c);
        return out;
    }

    static std::vector<SimulatedChip> *chips_;
};

std::vector<SimulatedChip> *PopulationFixture::chips_ = nullptr;

// --- Population structure (paper Tables 3 and 12). ---

TEST_F(PopulationFixture, Has136Chips)
{
    EXPECT_EQ(chips_->size(), 136u);
}

TEST_F(PopulationFixture, VendorCountsMatchTable3)
{
    int a = 0;
    int b = 0;
    int c = 0;
    for (const auto &chip : *chips_) {
        switch (chip.spec().vendor) {
          case Vendor::A: ++a; break;
          case Vendor::B: ++b; break;
          case Vendor::C: ++c; break;
        }
    }
    EXPECT_EQ(a, 64);
    EXPECT_EQ(b, 40);
    EXPECT_EQ(c, 32);
}

TEST_F(PopulationFixture, VoltageSplitMatchesFig5)
{
    // 64 DDR3 chips at 1.5 V and 72 DDR3L chips at 1.35 V.
    EXPECT_EQ(filterByVoltage(*chips_, false).size(), 64u);
    EXPECT_EQ(filterByVoltage(*chips_, true).size(), 72u);
}

TEST_F(PopulationFixture, FifteenModules)
{
    std::set<std::string> modules;
    for (const auto &chip : *chips_)
        modules.insert(chip.spec().module);
    EXPECT_EQ(modules.size(), 15u);
}

TEST_F(PopulationFixture, CoverageAndFlipBandsMatchSection61)
{
    const CoverageStats s = coverageStats(*chips_);
    // Paper: 34-99 % coverage, 0.01-0.22 % flip cells.
    EXPECT_GE(s.min_coverage, 0.34);
    EXPECT_LE(s.max_coverage, 0.99);
    EXPECT_GE(s.min_flip_fraction, 0.0001);
    EXPECT_LE(s.max_flip_fraction, 0.0022);
}

TEST_F(PopulationFixture, SegmentsScaleWithCapacity)
{
    for (const auto &chip : *chips_) {
        if (chip.spec().capacity_gbit == 2.0)
            EXPECT_EQ(chip.segments(), (2ull << 30) / 8192 * 8 / 8);
        // 4 Gb chip contributes to 4 Gb x 8 / 8 KB segments.
    }
}

// --- Determinism: a chip is a stable device. ---

TEST_F(PopulationFixture, SigCellsAreDeterministicPerSegment)
{
    const SimulatedChip &chip = (*chips_)[0];
    const auto a = chip.sigCells(17, 65536);
    const auto b = chip.sigCells(17, 65536);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_EQ(a[i].stability, b[i].stability);
    }
}

TEST_F(PopulationFixture, DistinctSegmentsHaveDistinctPopulations)
{
    const SimulatedChip &chip = (*chips_)[0];
    const auto a = chip.sigCells(1, 65536);
    const auto b = chip.sigCells(2, 65536);
    size_t common = 0;
    for (const auto &ca : a)
        for (const auto &cb : b)
            if (ca.index == cb.index)
                ++common;
    EXPECT_LT(common, std::max<size_t>(1, a.size() / 8));
}

TEST_F(PopulationFixture, DistinctChipsHaveDistinctPopulations)
{
    const auto a = (*chips_)[0].sigCells(1, 65536);
    const auto b = (*chips_)[1].sigCells(1, 65536);
    size_t common = 0;
    for (const auto &ca : a)
        for (const auto &cb : b)
            if (ca.index == cb.index)
                ++common;
    EXPECT_LT(common, std::max<size_t>(1, a.size() / 8));
}

TEST_F(PopulationFixture, PrelatColumnsSharedAcrossSegmentsOfAChip)
{
    // The column-structured mechanism: two segments in the same bank
    // share most weak columns (the PreLatPUF uniqueness problem).
    const SimulatedChip &chip = (*chips_)[0];
    const auto a = chip.prelatColumns(8, 65536);  // Bank 0.
    const auto b = chip.prelatColumns(16, 65536); // Bank 0 again.
    size_t common = 0;
    for (const auto &ca : a)
        for (const auto &cb : b)
            if (ca.index == cb.index)
                ++common;
    EXPECT_GT(static_cast<double>(common),
              0.5 * static_cast<double>(std::min(a.size(), b.size())));
}

TEST_F(PopulationFixture, SigPopulationSizeTracksFlipFraction)
{
    const SimulatedChip &chip = (*chips_)[0];
    RunningStats s;
    for (uint64_t seg = 0; seg < 50; ++seg)
        s.add(static_cast<double>(chip.sigCells(seg, 65536).size()));
    const double expected = chip.sigFlipFraction() * 65536.0;
    EXPECT_NEAR(s.mean(), expected, expected * 0.5 + 2.0);
}

// --- Jaccard metric. ---

TEST(Jaccard, EdgeCases)
{
    Response empty;
    Response a{{1, 2, 3}};
    Response b{{3, 4}};
    EXPECT_DOUBLE_EQ(jaccard(empty, empty), 1.0);
    EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
    EXPECT_DOUBLE_EQ(jaccard(a, empty), 0.0);
    EXPECT_DOUBLE_EQ(jaccard(a, b), 0.25); // 1 shared, 4 in union.
}

TEST(Jaccard, DisjointSetsScoreZero)
{
    Response a{{1, 2}};
    Response b{{3, 4}};
    EXPECT_DOUBLE_EQ(jaccard(a, b), 0.0);
}

// --- PUF quality campaigns (paper Fig. 5). ---

TEST_F(PopulationFixture, SigPufIntraNearOneInterNearZero)
{
    CodicSigPuf sig;
    JaccardCampaignConfig cfg;
    cfg.pairs = 400;
    const auto r = runJaccardCampaign(sig, all(), cfg);
    EXPECT_GT(r.intraStats().mean(), 0.98);
    EXPECT_LT(r.interStats().mean(), 0.02);
}

TEST_F(PopulationFixture, LatencyPufInterNearZeroIntraDispersed)
{
    DramLatencyPuf lat;
    JaccardCampaignConfig cfg;
    cfg.pairs = 300;
    const auto r = runJaccardCampaign(lat, all(), cfg);
    EXPECT_LT(r.interStats().mean(), 0.02);
    EXPECT_GT(r.intraStats().mean(), 0.6);
    // Dispersed: visibly less repeatable than CODIC-sig.
    EXPECT_LT(r.intraStats().mean(), 0.97);
}

TEST_F(PopulationFixture, PrelatPufPoorUniqueness)
{
    PrelatPuf pre;
    JaccardCampaignConfig cfg;
    cfg.pairs = 300;
    const auto r = runJaccardCampaign(pre, all(), cfg);
    EXPECT_GT(r.intraStats().mean(), 0.98);
    // The paper's headline observation: Inter-Jaccard dispersed and
    // far from zero.
    EXPECT_GT(r.interStats().mean(), 0.25);
    EXPECT_GT(r.interStats().stddev(), 0.03);
}

TEST_F(PopulationFixture, Ddr3lSigResponsesAtLeastAsStable)
{
    CodicSigPuf sig;
    JaccardCampaignConfig cfg;
    cfg.pairs = 300;
    const auto low =
        runJaccardCampaign(sig, filterByVoltage(*chips_, true), cfg);
    const auto high =
        runJaccardCampaign(sig, filterByVoltage(*chips_, false), cfg);
    EXPECT_GE(low.intraStats().mean() + 0.005,
              high.intraStats().mean());
}

// --- Temperature (paper Fig. 6) and aging. ---

TEST_F(PopulationFixture, SigPufRobustToTemperature)
{
    CodicSigPuf sig;
    RunningStats s;
    for (double v : runTemperatureCampaign(sig, all(), 55.0, 300, {.seed = 5}))
        s.add(v);
    EXPECT_GT(s.mean(), 0.85);
}

TEST_F(PopulationFixture, PrelatPufMostRobustToTemperature)
{
    PrelatPuf pre;
    CodicSigPuf sig;
    RunningStats sp;
    for (double v : runTemperatureCampaign(pre, all(), 55.0, 300, {.seed = 5}))
        sp.add(v);
    RunningStats ss;
    for (double v : runTemperatureCampaign(sig, all(), 55.0, 300, {.seed = 5}))
        ss.add(v);
    EXPECT_GT(sp.mean(), 0.97);
    EXPECT_GE(sp.mean(), ss.mean());
}

TEST_F(PopulationFixture, LatencyPufDegradesMonotonicallyWithDelta)
{
    DramLatencyPuf lat;
    double prev = 1.1;
    for (double delta : {0.0, 15.0, 25.0, 55.0}) {
        RunningStats s;
        for (double v :
             runTemperatureCampaign(lat, all(), delta, 200, {.seed = 5}))
            s.add(v);
        EXPECT_LT(s.mean(), prev);
        prev = s.mean();
    }
    // Strong sensitivity at the extreme delta (paper Fig. 6).
    EXPECT_LT(prev, 0.45);
}

TEST_F(PopulationFixture, SigPufRobustToAging)
{
    CodicSigPuf sig;
    RunningStats s;
    for (double v : runAgingCampaign(sig, all(), 300, {.seed = 5}))
        s.add(v);
    // Paper: most Intra-Jaccard indices are 1 after aging.
    EXPECT_GT(s.mean(), 0.95);
}

// --- Authentication (paper Section 6.1.1). ---

TEST_F(PopulationFixture, NaiveAuthRatesMatchPaper)
{
    CodicSigPuf sig;
    const AuthRates rates = runAuthCampaign(sig, all(), 3000, {.seed = 11});
    // Paper: 0.64 % average false rejection, 0.00 % false acceptance.
    EXPECT_NEAR(rates.false_rejection, 0.0064, 0.006);
    EXPECT_DOUBLE_EQ(rates.false_acceptance, 0.0);
}

// --- Filters. ---

TEST_F(PopulationFixture, SigFilterMakesResponsesRepeatable)
{
    CodicSigPuf sig;
    const SimulatedChip &chip = (*chips_)[3];
    Challenge ch{42, 65536};
    const Response a = sig.evaluateFiltered(chip, ch, {30.0, false, 1});
    const Response b = sig.evaluateFiltered(chip, ch, {30.0, false, 2});
    EXPECT_EQ(a, b);
}

TEST_F(PopulationFixture, LatencyFilterSelectsHighProbabilityCells)
{
    DramLatencyPuf lat;
    const SimulatedChip &chip = (*chips_)[3];
    Challenge ch{42, 65536};
    const Response filtered =
        lat.evaluateFiltered(chip, ch, {30.0, false, 1});
    const Response raw = lat.evaluate(chip, ch, {30.0, false, 1});
    // The filter is selective: it keeps a strict subset scale.
    EXPECT_LT(filtered.size(), raw.size());
    EXPECT_GT(filtered.size(), 0u);
}

TEST(PufPasses, PassCountsMatchMechanisms)
{
    EXPECT_EQ(CodicSigPuf().passesPerEvaluation(false), 1);
    EXPECT_EQ(CodicSigPuf().passesPerEvaluation(true), 5);
    EXPECT_EQ(PrelatPuf().passesPerEvaluation(true), 5);
    EXPECT_EQ(DramLatencyPuf().passesPerEvaluation(true), 100);
}

// --- Response time (paper Table 4). ---

TEST(ResponseTime, Table4SoftMcValues)
{
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    const auto lat = evaluationTime(PufKind::Latency, true, cfg);
    const auto pre_f = evaluationTime(PufKind::Prelat, true, cfg);
    const auto pre_u = evaluationTime(PufKind::Prelat, false, cfg);
    const auto sig_f = evaluationTime(PufKind::CodicSig, true, cfg);
    const auto sig_u = evaluationTime(PufKind::CodicSig, false, cfg);
    EXPECT_NEAR(lat.softmc_ms, 88.2, 0.1);
    EXPECT_NEAR(pre_f.softmc_ms, 7.95, 0.05);
    EXPECT_NEAR(pre_u.softmc_ms, 1.59, 0.02);
    EXPECT_NEAR(sig_f.softmc_ms, 4.41, 0.02);
    EXPECT_NEAR(sig_u.softmc_ms, 0.88, 0.01);
}

TEST(ResponseTime, PaperRatiosHold)
{
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    const auto lat = evaluationTime(PufKind::Latency, true, cfg);
    const auto pre = evaluationTime(PufKind::Prelat, true, cfg);
    const auto sig = evaluationTime(PufKind::CodicSig, true, cfg);
    const auto sig_u = evaluationTime(PufKind::CodicSig, false, cfg);
    // 20x/100x vs the Latency PUF; 1.8x vs PreLatPUF.
    EXPECT_NEAR(lat.softmc_ms / sig.softmc_ms, 20.0, 0.5);
    EXPECT_NEAR(lat.softmc_ms / sig_u.softmc_ms, 100.0, 2.0);
    EXPECT_NEAR(pre.softmc_ms / sig.softmc_ms, 1.8, 0.05);
}

TEST(ResponseTime, NativeTimesOrderTheSameWay)
{
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    const auto lat = evaluationTime(PufKind::Latency, true, cfg);
    const auto pre = evaluationTime(PufKind::Prelat, true, cfg);
    const auto sig = evaluationTime(PufKind::CodicSig, true, cfg);
    EXPECT_GT(lat.native_ns, pre.native_ns);
    EXPECT_GT(pre.native_ns, sig.native_ns);
}

TEST(ResponseTime, SigOptFasterThanSigNatively)
{
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    const auto opt = evaluationTime(PufKind::CodicSigOpt, false, cfg);
    const auto sig = evaluationTime(PufKind::CodicSig, false, cfg);
    EXPECT_LT(opt.native_ns, sig.native_ns);
}

} // namespace
} // namespace codic
