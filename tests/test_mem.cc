/**
 * @file
 * Tests of the memory-controller layer: address mapping, FR-FCFS
 * open-row behaviour, write-queue back-pressure, and the bulk row-op
 * paths used by secure deallocation.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "mem/address_map.h"
#include "mem/controller.h"

namespace codic {
namespace {

DramConfig
cfg()
{
    return DramConfig::ddr3_1600(256);
}

// --- Address map. ---

class MapSchemeTest : public ::testing::TestWithParam<MapScheme>
{
};

TEST_P(MapSchemeTest, DecodeEncodeRoundTrip)
{
    AddressMap map(cfg(), GetParam());
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t addr =
            rng.below(static_cast<uint64_t>(map.capacityBytes()) / 64) *
            64;
        EXPECT_EQ(map.encode(map.decode(addr)), addr);
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, MapSchemeTest,
                         ::testing::Values(MapScheme::RowBankColumn,
                                           MapScheme::BankRowColumn));

TEST(AddressMap, SequentialLinesWalkColumnsFirst)
{
    AddressMap map(cfg());
    const Address a0 = map.decode(0);
    const Address a1 = map.decode(64);
    EXPECT_EQ(a0.column + 1, a1.column);
    EXPECT_EQ(a0.row, a1.row);
    EXPECT_EQ(a0.bank, a1.bank);
}

TEST(AddressMap, RowBankColumnInterleavesBanksAtRowGranularity)
{
    AddressMap map(cfg(), MapScheme::RowBankColumn);
    const Address a = map.decode(0);
    const Address b = map.decode(static_cast<uint64_t>(map.rowBytes()));
    EXPECT_EQ(a.bank + 1, b.bank);
    EXPECT_EQ(a.row, b.row);
}

TEST(AddressMap, OutOfRangePanics)
{
    AddressMap map(cfg());
    EXPECT_THROW(
        map.decode(static_cast<uint64_t>(map.capacityBytes())),
        PanicError);
}

// --- Controller. ---

TEST(Controller, RowHitReadIsFasterThanRowConflict)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    const Cycle first = mc.read(0, 0);
    // Same row: only a CAS.
    const Cycle hit = mc.read(64, first);
    // Different row, same bank: PRE + ACT + CAS.
    const uint64_t conflict_addr =
        static_cast<uint64_t>(ch.config().row_bytes) *
        static_cast<uint64_t>(ch.config().banks) * 3;
    const Cycle conflict_done = mc.read(conflict_addr, hit);
    EXPECT_LT(hit - first, conflict_done - hit);
}

TEST(Controller, WriteAcceptedImmediatelyWhenQueueEmpty)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    EXPECT_EQ(mc.write(0, 100), 100);
}

TEST(Controller, WriteQueueBackpressureStallsAcceptance)
{
    DramChannel ch(cfg());
    ControllerConfig cc;
    cc.write_queue_entries = 4;
    MemoryController mc(ch, cc);
    // Flood the queue with row-conflicting writes so they drain
    // slowly; the fifth write's acceptance must stall.
    const uint64_t stride =
        static_cast<uint64_t>(ch.config().row_bytes) *
        static_cast<uint64_t>(ch.config().banks);
    Cycle accepted = 0;
    for (int i = 0; i < 12; ++i)
        accepted = mc.write(stride * static_cast<uint64_t>(i), 0);
    EXPECT_GT(accepted, 0);
}

TEST(Controller, DrainWritesCoversAllQueued)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    for (int i = 0; i < 8; ++i)
        mc.write(static_cast<uint64_t>(i) * 64, 0);
    const Cycle drained = mc.drainWrites();
    EXPECT_GE(drained, ch.lastIssueCycle());
    EXPECT_EQ(ch.counts().wr, 8u);
}

class RowOpTest : public ::testing::TestWithParam<RowOpMechanism>
{
};

TEST_P(RowOpTest, RowOpDestroysTargetRowData)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    const uint64_t addr = 3 * 8192ull * 8ull; // Row 3 of bank 0.
    const Address target = mc.map().decode(addr);
    ch.setRowState(target.rank, target.bank, target.row,
                   RowDataState::Data);
    // Clone sources: the reserved zero row of the bank.
    ch.setRowState(target.rank, target.bank, 0, RowDataState::Zeroes);

    const Cycle done = mc.rowOp(addr, 0, GetParam(), 0);
    EXPECT_GT(done, 0);
    const RowDataState s =
        ch.rowState(target.rank, target.bank, target.row);
    EXPECT_EQ(s, RowDataState::Zeroes);
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, RowOpTest,
                         ::testing::Values(RowOpMechanism::CodicDet,
                                           RowOpMechanism::RowClone,
                                           RowOpMechanism::LisaClone));

TEST(Controller, CodicRowOpIsSingleCommand)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    mc.rowOp(0, 0, RowOpMechanism::CodicDet);
    EXPECT_EQ(ch.counts().codic, 1u);
    EXPECT_EQ(ch.counts().act, 0u);
}

TEST(Controller, CloneRowOpsUseMoreCommands)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    const uint64_t addr = 8192ull * 8ull; // Row 1 (not the zero row).
    mc.rowOp(addr, 0, RowOpMechanism::RowClone, 0);
    EXPECT_EQ(ch.counts().act, 1u);
    EXPECT_EQ(ch.counts().rowclone, 1u);
    EXPECT_EQ(ch.counts().lisa_rbm, 0u);

    mc.rowOp(addr + 8192ull * 8ull, ch.lastIssueCycle(),
             RowOpMechanism::LisaClone, 0);
    EXPECT_EQ(ch.counts().lisa_rbm, 1u);
}

TEST(Controller, RowOpClosesConflictingOpenRow)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    mc.read(0, 0); // Opens row 0 of bank 0.
    EXPECT_TRUE(ch.bankActive(0, 0));
    const uint64_t addr = 8192ull * 8ull * 5;
    EXPECT_NO_THROW(mc.rowOp(addr, ch.lastIssueCycle() + 100,
                             RowOpMechanism::CodicDet));
}

} // namespace
} // namespace codic
