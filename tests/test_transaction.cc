/**
 * @file
 * Tests of the transaction-based MemoryService API: ticket
 * lifecycle, blocking-shim equivalence (drainAll == the old
 * drainWrites semantics), the bounded read queue with its
 * read-reordering window, refresh-aware scheduling invariants, the
 * per-bank drain watermarks, and the new SchedulerPolicy /
 * DramConfig validation and --sched spec parsing.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "dram/system.h"
#include "mem/controller.h"
#include "scenario/scheduler_workloads.h"

namespace codic {
namespace {

DramConfig
cfg()
{
    return DramConfig::ddr3_1600(256);
}

// --- Ticket lifecycle. ---

TEST(Transaction, BlockingShimEqualsExplicitSubmitResolve)
{
    DramChannel ch_a(cfg()), ch_b(cfg());
    MemoryController shim(ch_a), async(ch_b);

    const Cycle blocking = shim.read(64, 10);
    const Ticket t =
        async.submit(MemTransaction::makeRead(64, 10));
    EXPECT_EQ(async.acceptedAt(t), 10);
    EXPECT_EQ(async.completionOf(t), blocking);
    EXPECT_EQ(ch_a.counts().total(), ch_b.counts().total());
}

TEST(Transaction, TicketsResolveOnceThenPanic)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeRead(0, 0));
    mc.completionOf(t);
    EXPECT_THROW(mc.completionOf(t), PanicError);
    EXPECT_THROW(mc.acceptedAt(t), PanicError);
    EXPECT_THROW(mc.completionOf(Ticket{987654}), PanicError);
}

TEST(Transaction, RetiredWritebackStillDrains)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramChannel ch(c);
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeWrite(0, 5));
    EXPECT_EQ(mc.acceptedAt(t), 5);
    mc.retire(t); // Fire-and-forget: completion never queried.
    EXPECT_EQ(mc.pendingWriteCount(), 1u);
    mc.drainAll();
    EXPECT_EQ(mc.pendingWriteCount(), 0u);
    EXPECT_EQ(ch.counts().wr, 1u);
}

TEST(Transaction, MillionRetiredWritebacksStayBounded)
{
    // Fire-and-forget writeback streams retire() every ticket
    // without resolving it; the record arena must recycle slots
    // instead of growing with the stream. 10^6 writes is ~4 orders
    // of magnitude beyond the queue depth, so any per-transaction
    // leak shows up as an unbounded slot count.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramChannel ch(c);
    MemoryController mc(ch);
    const int64_t row_bytes = c.row_bytes;
    size_t max_tracked = 0;
    for (int64_t i = 0; i < 1000000; ++i) {
        const Ticket t = mc.submit(MemTransaction::makeWrite(
            static_cast<uint64_t>((i % 1024) * row_bytes), i));
        mc.retire(t);
        max_tracked = std::max(max_tracked, mc.trackedTicketCount());
    }
    mc.drainAll();
    EXPECT_EQ(mc.trackedTicketCount(), 0u);
    EXPECT_EQ(mc.pendingWriteCount(), 0u);
    // A retired ticket's record dies at retire(), so at most one
    // record is ever live, and the arena never grows past its first
    // slot - bounded by the queue scale, not the stream length.
    EXPECT_LE(max_tracked, 1u);
    EXPECT_LE(mc.recordSlotCount(), 64u);
    EXPECT_EQ(ch.counts().wr, 1000000u);
}

TEST(Transaction, WriteTicketCompletionForcesItsDrain)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramChannel ch(c);
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeWrite(0, 0));
    ASSERT_EQ(mc.pendingWriteCount(), 1u); // Buffered, not issued.
    const Cycle done = mc.completionOf(t);
    EXPECT_GT(done, 0);
    EXPECT_EQ(mc.pendingWriteCount(), 0u);
    EXPECT_EQ(ch.counts().wr, 1u);
}

TEST(Transaction, EagerWriteTicketResolvesAfterImmediateDrain)
{
    // Regression: under the eager policy a write drains during its
    // own acceptance; the completion must land in the ticket record
    // (created before acceptance), not vanish.
    DramChannel ch(cfg()); // Eager default: drain at acceptance.
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeWrite(0, 7));
    EXPECT_EQ(mc.acceptedAt(t), 7);
    EXPECT_EQ(ch.counts().wr, 1u); // Already issued.
    EXPECT_GT(mc.completionOf(t), 7);
}

TEST(Transaction, PollNeverIssuesFutureRowHits)
{
    // Regression: a row-hit read far in the future must not bypass
    // into a poll - issuing it would drag the channel's monotone
    // bus horizons to its arrival cycle and penalize every
    // already-arrived read behind it.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched"); // window 8.
    DramChannel ch(c);
    MemoryController mc(ch);
    mc.read(0, 0); // Open row 0 of bank 0.
    const uint64_t conflict =
        static_cast<uint64_t>(c.row_bytes) *
        static_cast<uint64_t>(c.banks) * 3; // Row 3, bank 0.
    const Ticket miss =
        mc.submit(MemTransaction::makeRead(conflict, 10));
    // Row hit to the open row, but it has not arrived yet.
    const Ticket future =
        mc.submit(MemTransaction::makeRead(64, 1000000));
    EXPECT_EQ(mc.poll(100), 1u);
    const Cycle miss_done = mc.completionOf(miss);
    EXPECT_LT(miss_done, 1000000);
    EXPECT_GE(mc.completionOf(future), 1000000);
}

TEST(Transaction, WriteResolutionKeepsEarlierReadsPrioritized)
{
    // completionOf on a buffered write must first service reads the
    // schedule orders before it (arrived by its acceptance), so
    // resolving the write out of order cannot steal the data bus
    // from an earlier read.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramChannel ch(c);
    MemoryController mc(ch);
    const Ticket rd = mc.submit(MemTransaction::makeRead(0, 10));
    const Ticket wr =
        mc.submit(MemTransaction::makeWrite(1 << 20, 20));
    const Cycle wr_done = mc.completionOf(wr);
    EXPECT_EQ(ch.counts().rd, 1u); // The read issued first.
    EXPECT_LT(mc.completionOf(rd), wr_done);
}

TEST(Transaction, PollServicesOnlyArrivedRequests)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    const Ticket early =
        mc.submit(MemTransaction::makeRead(0, 0));
    mc.submit(MemTransaction::makeRead(1 << 20, 100000));
    EXPECT_EQ(mc.pendingReadCount(), 2u);
    EXPECT_EQ(mc.poll(500), 1u);
    EXPECT_EQ(mc.pendingReadCount(), 1u);
    EXPECT_EQ(ch.counts().rd, 1u);
    // The serviced ticket resolved without further issue.
    EXPECT_GT(mc.completionOf(early), 0);
}

TEST(Transaction, SystemTicketsRouteAcrossChannels)
{
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem sys(DramConfig::ddr3_1600(256, 2), cc);
    ASSERT_EQ(sys.channelOf(0), 0);
    ASSERT_EQ(sys.channelOf(64), 1);
    const Ticket t0 = sys.submit(MemTransaction::makeRead(0, 0));
    const Ticket t1 = sys.submit(MemTransaction::makeRead(64, 0));
    EXPECT_NE(t0, t1);
    EXPECT_EQ(sys.inFlightCount(), 2u);
    EXPECT_EQ(sys.acceptedAt(t1), 0);
    // Resolve in reverse submission order: each channel only
    // services its own queue.
    EXPECT_GT(sys.completionOf(t1), 0);
    EXPECT_GT(sys.completionOf(t0), 0);
    EXPECT_EQ(sys.channel(0).counts().rd, 1u);
    EXPECT_EQ(sys.channel(1).counts().rd, 1u);
}

// --- drainAll == the old drainWrites semantics on the shim. ---

TEST(Transaction, DrainAllMatchesDrainWritesShim)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramSystem via_drain_all(c), via_shim(c);
    for (int i = 0; i < 24; ++i) {
        const uint64_t addr = static_cast<uint64_t>(i) * 8192 * 8;
        via_drain_all.write(addr, 0);
        via_shim.write(addr, 0);
    }
    const Cycle a = via_drain_all.drainAll();
    const Cycle b = via_shim.drainWrites();
    EXPECT_EQ(a, b);
    EXPECT_EQ(via_drain_all.totalCounts().wr, 24u);
    EXPECT_EQ(via_shim.totalCounts().wr,
              via_drain_all.totalCounts().wr);
    EXPECT_EQ(via_drain_all.pendingWriteCount(), 0u);
}

// --- Read-reordering window. ---

TEST(Transaction, ReadWindowCoalescesRowConflictStream)
{
    auto run = [](int window, std::vector<Cycle> *lat) {
        DramConfig c = cfg();
        c.scheduler = SchedulerPolicy::preset("batched");
        c.scheduler.read_window = window;
        DramSystem sys(c);
        runReadWindowWorkload(sys, 20, 16, lat);
        return sys.totalCounts();
    };
    std::vector<Cycle> lat1, lat8;
    const CommandCounts fifo = run(1, &lat1);
    const CommandCounts windowed = run(8, &lat8);
    EXPECT_EQ(fifo.rd, windowed.rd);
    // Strict arrival order pays a PRE/ACT pair per row-alternating
    // read; the window regroups each wave into two row-hit runs.
    EXPECT_LT(windowed.act * 4, fifo.act);
    double mean1 = 0, mean8 = 0;
    for (Cycle l : lat1)
        mean1 += static_cast<double>(l);
    for (Cycle l : lat8)
        mean8 += static_cast<double>(l);
    EXPECT_LT(mean8, mean1);
}

TEST(Transaction, WindowNeverReordersAcrossRowOpOrSameRow)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched"); // window 8.
    DramSystem sys(c);
    const Address target = sys.map().decode(0);
    sys.channel(0).setRowState(target.rank, target.bank, target.row,
                               RowDataState::Data);
    // Same row: read, destructive row op, read - all queued at once.
    const Ticket r1 = sys.submit(MemTransaction::makeRead(0, 0));
    const Ticket op = sys.submit(MemTransaction::makeRowOp(
        0, 0, RowOpMechanism::CodicDet));
    const Ticket r2 = sys.submit(MemTransaction::makeRead(64, 0));
    const Cycle c1 = sys.completionOf(r1);
    const Cycle cop = sys.completionOf(op);
    const Cycle c2 = sys.completionOf(r2);
    EXPECT_LT(c1, cop);
    EXPECT_LT(cop, c2);
    EXPECT_EQ(sys.channel(0).rowState(target.rank, target.bank,
                                      target.row),
              RowDataState::Zeroes);
}

// --- Refresh-aware scheduling. ---

TEST(Transaction, RefreshCountTracksElapsedWithinPostponement)
{
    for (const int postpone : {0, 4, 8}) {
        DramConfig c = cfg();
        c.scheduler = SchedulerPolicy::preset("batched");
        c.scheduler.auto_refresh = true;
        c.scheduler.refresh_postpone = postpone;
        DramSystem sys(c);
        const Cycle done = runRefreshReadWorkload(
            sys, 4, 1200, 8, 3 * c.timing.trefi);
        sys.poll(done);
        const int64_t intervals = done / c.timing.trefi;
        const int64_t refs =
            static_cast<int64_t>(sys.totalCounts().ref);
        // REF count ~ elapsed/tREFI: every due REF beyond the
        // postponement allowance must have issued, and never more
        // than the due count.
        EXPECT_GE(refs, intervals - postpone - 1) << postpone;
        EXPECT_LE(refs, intervals + 1) << postpone;
    }
}

TEST(Transaction, ReadsNeverStarveAcrossRefreshStorm)
{
    // A saturated read stream spanning many tREFI with the maximum
    // deferral allowance: REFs are forced mid-stream in bursts, yet
    // every read must complete with bounded latency.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    c.scheduler.auto_refresh = true;
    c.scheduler.refresh_postpone = 8;
    DramSystem sys(c);
    std::vector<Cycle> lat;
    runRefreshReadWorkload(sys, 1, 20000, 6, 0, &lat);
    ASSERT_EQ(lat.size(), 20000u);
    EXPECT_GT(sys.totalCounts().ref, 10u);
    const Cycle bound = 16 * c.timing.trfc;
    for (const Cycle l : lat)
        ASSERT_LT(l, bound);
}

TEST(Transaction, PostponementMovesRefreshOutOfBursts)
{
    auto tail = [](int postpone) {
        DramConfig c = cfg();
        c.scheduler = SchedulerPolicy::preset("batched");
        c.scheduler.auto_refresh = true;
        c.scheduler.refresh_postpone = postpone;
        DramSystem sys(c);
        std::vector<Cycle> lat;
        runRefreshReadWorkload(sys, 6, 2000, 8,
                               4 * c.timing.trefi, &lat);
        return *std::max_element(lat.begin(), lat.end());
    };
    // With bursts ~2.5 tREFI long, a sufficient allowance slides
    // every mid-burst REF into the following quiet gap.
    EXPECT_LT(tail(8), tail(0));
}

TEST(Transaction, EagerPresetNeverInjectsRefresh)
{
    DramSystem sys(cfg()); // Eager default: auto_refresh off.
    runRefreshReadWorkload(sys, 2, 2000, 8, 6240);
    sys.drainAll();
    EXPECT_EQ(sys.totalCounts().ref, 0u);
}

// --- Per-bank drain watermarks. ---

TEST(Transaction, BankWatermarkDrainsBankHotStream)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    c.scheduler.drain_high_pct = 100; // Park the global watermark.
    c.scheduler.bank_drain_high = 4;
    c.scheduler.bank_drain_low = 1;
    DramChannel ch(c);
    MemoryController mc(ch);
    // Row-conflicting writes all landing on bank 0.
    const uint64_t stride = 8192ull * 8ull;
    for (int i = 0; i < 3; ++i)
        mc.write(stride * static_cast<uint64_t>(i), 0);
    EXPECT_EQ(mc.pendingWriteCount(), 3u); // Below the watermark.
    mc.write(stride * 3, 0);
    // The 4th write tripped the bank watermark: drained to low = 1.
    EXPECT_EQ(mc.pendingWriteCount(), 1u);
    EXPECT_EQ(ch.counts().wr, 3u);
    mc.drainAll();
    EXPECT_EQ(ch.counts().wr, mc.acceptedWrites());
}

// --- Validation and --sched spec parsing. ---

TEST(Transaction, ValidateRejectsNewInconsistentKnobs)
{
    SchedulerPolicy p;
    p.read_window = 0;
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.bank_drain_high = 2;
    p.bank_drain_low = 3; // Low watermark exceeds high.
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.bank_drain_high = -1;
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.refresh_postpone = 9; // Beyond the JEDEC limit.
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.refresh_postpone = -1;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Transaction, DramConfigRejectsNonPositiveRefreshTimings)
{
    DramConfig c = cfg();
    c.timing.trefi = 0;
    EXPECT_THROW(c.validate(), FatalError);
    c = cfg();
    c.timing.trefi = -8;
    EXPECT_THROW(c.validate(), FatalError);
    c = cfg();
    c.timing.trfc = 0;
    EXPECT_THROW(c.validate(), FatalError);
    c = cfg();
    c.timing.trfc = -1;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(Transaction, SchedSpecParsesPresetAndKnobOverrides)
{
    const SchedulerPolicy p = SchedulerPolicy::parse(
        "batched:read_window=16,refresh=auto,refresh_postpone=4,"
        "bank_drain_high=6,bank_drain_low=2");
    EXPECT_EQ(p.drain_high_pct, 75); // From the preset.
    EXPECT_EQ(p.read_window, 16);
    EXPECT_TRUE(p.auto_refresh);
    EXPECT_EQ(p.refresh_postpone, 4);
    EXPECT_EQ(p.bank_drain_high, 6);
    EXPECT_EQ(p.bank_drain_low, 2);

    EXPECT_FALSE(SchedulerPolicy::parse("batched").auto_refresh);
    EXPECT_FALSE(
        SchedulerPolicy::parse("eager:refresh=off").auto_refresh);

    EXPECT_THROW(SchedulerPolicy::parse("bogus"), FatalError);
    EXPECT_THROW(SchedulerPolicy::parse("batched:no_such_knob=1"),
                 FatalError);
    EXPECT_THROW(SchedulerPolicy::parse("batched:read_window=abc"),
                 FatalError);
    // Overflowing values must fail loudly, not wrap into a
    // different, valid-looking policy.
    EXPECT_THROW(
        SchedulerPolicy::parse("batched:read_window=4294967297"),
        FatalError);
    EXPECT_THROW(SchedulerPolicy::parse("batched:read_window="),
                 FatalError);
    EXPECT_THROW(SchedulerPolicy::parse("batched:refresh=maybe"),
                 FatalError);
    // Overrides that assemble an inconsistent policy are rejected
    // by the embedded validate().
    EXPECT_THROW(SchedulerPolicy::parse(
                     "batched:bank_drain_high=2,bank_drain_low=5"),
                 FatalError);
    // The knob help text names every parseable knob.
    const std::string help = SchedulerPolicy::describeKnobs();
    for (const char *knob :
         {"drain_high_pct", "drain_low_pct", "max_drain_batch",
          "replay_batch", "read_window", "bank_drain_high",
          "bank_drain_low", "refresh", "refresh_postpone",
          "priority", "per-bank", "serving"})
        EXPECT_NE(help.find(knob), std::string::npos) << knob;
}

// --- QoS: priority scheduling, per-origin accounting, REFpb. ---

TEST(Transaction, ServingPresetAndQosSpecParsing)
{
    const SchedulerPolicy s = SchedulerPolicy::preset("serving");
    EXPECT_EQ(s.drain_high_pct, 85);
    EXPECT_EQ(s.drain_low_pct, 35);
    EXPECT_EQ(s.read_window, 16);
    EXPECT_EQ(s.bank_drain_high, 8);
    EXPECT_EQ(s.bank_drain_low, 2);
    EXPECT_TRUE(s.auto_refresh);
    EXPECT_EQ(s.refresh_postpone, 4);
    EXPECT_TRUE(s.priority_sched);
    EXPECT_FALSE(s.per_bank_refresh);

    const SchedulerPolicy pb =
        SchedulerPolicy::parse("serving:refresh=per-bank");
    EXPECT_TRUE(pb.per_bank_refresh);
    EXPECT_TRUE(pb.auto_refresh); // per-bank implies the engine on.
    EXPECT_TRUE(
        SchedulerPolicy::parse("batched:priority=on").priority_sched);
    EXPECT_FALSE(
        SchedulerPolicy::parse("serving:priority=off").priority_sched);
    EXPECT_FALSE(
        SchedulerPolicy::parse("serving:refresh=off").auto_refresh);
    EXPECT_FALSE(SchedulerPolicy::parse("serving:refresh=off")
                     .per_bank_refresh);

    EXPECT_THROW(SchedulerPolicy::parse("serving:priority=maybe"),
                 FatalError);
    EXPECT_THROW(SchedulerPolicy::parse("serving:refresh=bank"),
                 FatalError);
    // per_bank_refresh without the refresh engine is inconsistent.
    SchedulerPolicy p;
    p.per_bank_refresh = true;
    p.auto_refresh = false;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Transaction, DramConfigRejectsBadPerBankRefreshTimings)
{
    DramConfig c = cfg();
    c.timing.trfcpb = 0;
    EXPECT_THROW(c.validate(), FatalError);
    c = cfg();
    c.timing.trfcpb = c.timing.trfc + 1; // REFpb beyond all-bank REF.
    EXPECT_THROW(c.validate(), FatalError);
    // The sized module derives tRFCpb ~ tRFC / 2.
    c = cfg();
    EXPECT_GT(c.timing.trfcpb, 0);
    EXPECT_LE(c.timing.trfcpb, c.timing.trfc);
}

TEST(Transaction, PrioritySchedulingImprovesUrgentTailLatency)
{
    // The same storm, priority-blind vs the serving preset (the
    // blind baseline matches serving's refresh settings so the delta
    // isolates priority scheduling). The urgent read of each wave is
    // submitted last at the same arrival cycle, so only priority
    // selection and drain jumping can move it ahead.
    const auto urgentP99 = [](const char *spec) {
        DramConfig c = cfg();
        c.scheduler = SchedulerPolicy::parse(spec);
        DramSystem sys(c);
        std::vector<Cycle> urgent;
        runPriorityStormWorkload(sys, 40, 48, 12, &urgent, nullptr);
        std::sort(urgent.begin(), urgent.end());
        return urgent[urgent.size() * 99 / 100];
    };
    const Cycle blind =
        urgentP99("batched:refresh=auto,refresh_postpone=4");
    const Cycle serving = urgentP99("serving");
    // The CI bench gate demands >= 20%; the controller-level
    // improvement is far larger - assert a conservative >= 50%.
    EXPECT_LE(serving * 2, blind);
}

TEST(Transaction, AgingPromotionBoundsBestEffortStarvation)
{
    // One best-effort read at the queue head against a stream of
    // urgent reads at the same arrival: priority scheduling bypasses
    // the head exactly kReadStarvationLimit times, then the aging
    // rule force-schedules it.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::parse("serving:read_window=48");
    DramChannel ch(c);
    MemoryController mc(ch);
    const int64_t row_bytes = c.row_bytes;
    const auto addrOf = [&](int64_t row, int64_t bank) {
        return static_cast<uint64_t>((row * c.banks + bank) *
                                     row_bytes);
    };
    const Ticket bg = mc.submit(
        MemTransaction::makeRead(addrOf(0, 0), 0, 0, 0));
    std::vector<Ticket> urgent;
    for (int i = 0; i < 40; ++i)
        urgent.push_back(mc.submit(MemTransaction::makeRead(
            addrOf(1 + i, 1 + i % 7), 0, 1, -1)));
    std::vector<Cycle> urgent_done;
    for (const Ticket t : urgent)
        urgent_done.push_back(mc.completionOf(t));
    const Cycle bg_done = mc.completionOf(bg);
    int bypassed = 0;
    for (const Cycle d : urgent_done)
        bypassed += d < bg_done;
    EXPECT_EQ(bypassed, MemoryController::kReadStarvationLimit);
}

TEST(Transaction, PerOriginCountsSumToChannelTotals)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("serving");
    DramSystem sys(c);
    std::vector<Cycle> urgent;
    runPriorityStormWorkload(sys, 20, 48, 12, &urgent, nullptr);
    const CommandCounts counts = sys.totalCounts();
    const std::vector<OriginCounts> origins = sys.perOriginCounts();
    ASSERT_EQ(origins.size(), 2u); // Background 0, urgent 1.
    EXPECT_EQ(origins[0].origin, 0u);
    EXPECT_EQ(origins[1].origin, 1u);
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t rowops = 0;
    for (const OriginCounts &oc : origins) {
        reads += oc.reads;
        writes += oc.writes;
        rowops += oc.rowops;
    }
    // Every read issues exactly one RD burst and every write one WR
    // burst (all drained by the workload), so the origin roll-ups
    // must sum to the channel command totals.
    EXPECT_EQ(reads, counts.rd);
    EXPECT_EQ(writes, counts.wr);
    EXPECT_EQ(rowops, 0u);
    EXPECT_EQ(reads, 20u * 13u);  // 12 background + 1 urgent / wave.
    EXPECT_EQ(writes, 20u * 48u);
    EXPECT_EQ(origins[1].reads, 20u);
    EXPECT_GT(origins[1].read_latency_cycles, 0u);
    EXPECT_GE(origins[1].max_read_latency,
              origins[1].read_latency_cycles / origins[1].reads);
}

TEST(Transaction, PerBankRefreshTracksTrefipbPerBank)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::parse("batched:refresh=per-bank");
    DramSystem sys(c);
    const Cycle done = runRefreshReadWorkload(sys, 4, 1200, 8,
                                              3 * c.timing.trefi);
    sys.poll(done);
    const CommandCounts counts = sys.totalCounts();
    const Cycle trefipb = c.timing.trefi / c.banks;
    const int64_t due = static_cast<int64_t>(done / trefipb);
    const int64_t refpb = static_cast<int64_t>(counts.refpb);
    // Per-bank mode issues REFpb only, at ~ elapsed / tREFIpb. The
    // lazy catch-up trails the final completion by up to one tREFI,
    // which is `banks` tREFIpb intervals.
    EXPECT_EQ(counts.ref, 0u);
    EXPECT_GE(refpb, due - c.banks - 1);
    EXPECT_LE(refpb, due + 1);
    // Round-robin rotation: every bank refreshed ~ elapsed / tREFI,
    // spread within one command of its siblings, with tRFCpb cycles
    // of lockout accounted per REFpb.
    const std::vector<BankCounts> banks = sys.perBankCounts();
    uint64_t min_refpb = ~0ull;
    uint64_t max_refpb = 0;
    for (const BankCounts &b : banks) {
        min_refpb = std::min(min_refpb, b.refpb);
        max_refpb = std::max(max_refpb, b.refpb);
        EXPECT_EQ(b.refresh_cycles,
                  b.refpb * static_cast<uint64_t>(c.timing.trfcpb));
    }
    EXPECT_LE(max_refpb - min_refpb, 1u);
    const int64_t per_bank_due =
        static_cast<int64_t>(done / c.timing.trefi);
    EXPECT_GE(static_cast<int64_t>(min_refpb), per_bank_due - 2);
    EXPECT_LE(static_cast<int64_t>(max_refpb), per_bank_due + 1);
}

TEST(Transaction, RefreshOverlapOnlyAccruesInPerBankMode)
{
    const auto run = [](const char *spec) {
        DramConfig c = cfg();
        c.scheduler = SchedulerPolicy::parse(spec);
        DramSystem sys(c);
        std::vector<Cycle> urgent;
        runPriorityStormWorkload(sys, 30, 48, 12, &urgent, nullptr);
        return sys.totalCounts();
    };
    // All-bank REF requires the whole rank idle: overlap impossible.
    EXPECT_EQ(run("serving").refresh_overlap_cycles, 0u);
    // REFpb refreshes one bank while siblings stay open.
    EXPECT_GT(run("serving:refresh=per-bank").refresh_overlap_cycles,
              0u);
}

} // namespace
} // namespace codic
