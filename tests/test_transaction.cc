/**
 * @file
 * Tests of the transaction-based MemoryService API: ticket
 * lifecycle, blocking-shim equivalence (drainAll == the old
 * drainWrites semantics), the bounded read queue with its
 * read-reordering window, refresh-aware scheduling invariants, the
 * per-bank drain watermarks, and the new SchedulerPolicy /
 * DramConfig validation and --sched spec parsing.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "dram/system.h"
#include "mem/controller.h"
#include "scenario/scheduler_workloads.h"

namespace codic {
namespace {

DramConfig
cfg()
{
    return DramConfig::ddr3_1600(256);
}

// --- Ticket lifecycle. ---

TEST(Transaction, BlockingShimEqualsExplicitSubmitResolve)
{
    DramChannel ch_a(cfg()), ch_b(cfg());
    MemoryController shim(ch_a), async(ch_b);

    const Cycle blocking = shim.read(64, 10);
    const Ticket t =
        async.submit(MemTransaction::makeRead(64, 10));
    EXPECT_EQ(async.acceptedAt(t), 10);
    EXPECT_EQ(async.completionOf(t), blocking);
    EXPECT_EQ(ch_a.counts().total(), ch_b.counts().total());
}

TEST(Transaction, TicketsResolveOnceThenPanic)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeRead(0, 0));
    mc.completionOf(t);
    EXPECT_THROW(mc.completionOf(t), PanicError);
    EXPECT_THROW(mc.acceptedAt(t), PanicError);
    EXPECT_THROW(mc.completionOf(Ticket{987654}), PanicError);
}

TEST(Transaction, RetiredWritebackStillDrains)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramChannel ch(c);
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeWrite(0, 5));
    EXPECT_EQ(mc.acceptedAt(t), 5);
    mc.retire(t); // Fire-and-forget: completion never queried.
    EXPECT_EQ(mc.pendingWriteCount(), 1u);
    mc.drainAll();
    EXPECT_EQ(mc.pendingWriteCount(), 0u);
    EXPECT_EQ(ch.counts().wr, 1u);
}

TEST(Transaction, MillionRetiredWritebacksStayBounded)
{
    // Fire-and-forget writeback streams retire() every ticket
    // without resolving it; the record arena must recycle slots
    // instead of growing with the stream. 10^6 writes is ~4 orders
    // of magnitude beyond the queue depth, so any per-transaction
    // leak shows up as an unbounded slot count.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramChannel ch(c);
    MemoryController mc(ch);
    const int64_t row_bytes = c.row_bytes;
    size_t max_tracked = 0;
    for (int64_t i = 0; i < 1000000; ++i) {
        const Ticket t = mc.submit(MemTransaction::makeWrite(
            static_cast<uint64_t>((i % 1024) * row_bytes), i));
        mc.retire(t);
        max_tracked = std::max(max_tracked, mc.trackedTicketCount());
    }
    mc.drainAll();
    EXPECT_EQ(mc.trackedTicketCount(), 0u);
    EXPECT_EQ(mc.pendingWriteCount(), 0u);
    // A retired ticket's record dies at retire(), so at most one
    // record is ever live, and the arena never grows past its first
    // slot - bounded by the queue scale, not the stream length.
    EXPECT_LE(max_tracked, 1u);
    EXPECT_LE(mc.recordSlotCount(), 64u);
    EXPECT_EQ(ch.counts().wr, 1000000u);
}

TEST(Transaction, WriteTicketCompletionForcesItsDrain)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramChannel ch(c);
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeWrite(0, 0));
    ASSERT_EQ(mc.pendingWriteCount(), 1u); // Buffered, not issued.
    const Cycle done = mc.completionOf(t);
    EXPECT_GT(done, 0);
    EXPECT_EQ(mc.pendingWriteCount(), 0u);
    EXPECT_EQ(ch.counts().wr, 1u);
}

TEST(Transaction, EagerWriteTicketResolvesAfterImmediateDrain)
{
    // Regression: under the eager policy a write drains during its
    // own acceptance; the completion must land in the ticket record
    // (created before acceptance), not vanish.
    DramChannel ch(cfg()); // Eager default: drain at acceptance.
    MemoryController mc(ch);
    const Ticket t = mc.submit(MemTransaction::makeWrite(0, 7));
    EXPECT_EQ(mc.acceptedAt(t), 7);
    EXPECT_EQ(ch.counts().wr, 1u); // Already issued.
    EXPECT_GT(mc.completionOf(t), 7);
}

TEST(Transaction, PollNeverIssuesFutureRowHits)
{
    // Regression: a row-hit read far in the future must not bypass
    // into a poll - issuing it would drag the channel's monotone
    // bus horizons to its arrival cycle and penalize every
    // already-arrived read behind it.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched"); // window 8.
    DramChannel ch(c);
    MemoryController mc(ch);
    mc.read(0, 0); // Open row 0 of bank 0.
    const uint64_t conflict =
        static_cast<uint64_t>(c.row_bytes) *
        static_cast<uint64_t>(c.banks) * 3; // Row 3, bank 0.
    const Ticket miss =
        mc.submit(MemTransaction::makeRead(conflict, 10));
    // Row hit to the open row, but it has not arrived yet.
    const Ticket future =
        mc.submit(MemTransaction::makeRead(64, 1000000));
    EXPECT_EQ(mc.poll(100), 1u);
    const Cycle miss_done = mc.completionOf(miss);
    EXPECT_LT(miss_done, 1000000);
    EXPECT_GE(mc.completionOf(future), 1000000);
}

TEST(Transaction, WriteResolutionKeepsEarlierReadsPrioritized)
{
    // completionOf on a buffered write must first service reads the
    // schedule orders before it (arrived by its acceptance), so
    // resolving the write out of order cannot steal the data bus
    // from an earlier read.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramChannel ch(c);
    MemoryController mc(ch);
    const Ticket rd = mc.submit(MemTransaction::makeRead(0, 10));
    const Ticket wr =
        mc.submit(MemTransaction::makeWrite(1 << 20, 20));
    const Cycle wr_done = mc.completionOf(wr);
    EXPECT_EQ(ch.counts().rd, 1u); // The read issued first.
    EXPECT_LT(mc.completionOf(rd), wr_done);
}

TEST(Transaction, PollServicesOnlyArrivedRequests)
{
    DramChannel ch(cfg());
    MemoryController mc(ch);
    const Ticket early =
        mc.submit(MemTransaction::makeRead(0, 0));
    mc.submit(MemTransaction::makeRead(1 << 20, 100000));
    EXPECT_EQ(mc.pendingReadCount(), 2u);
    EXPECT_EQ(mc.poll(500), 1u);
    EXPECT_EQ(mc.pendingReadCount(), 1u);
    EXPECT_EQ(ch.counts().rd, 1u);
    // The serviced ticket resolved without further issue.
    EXPECT_GT(mc.completionOf(early), 0);
}

TEST(Transaction, SystemTicketsRouteAcrossChannels)
{
    ControllerConfig cc;
    cc.map_scheme = MapScheme::RowBankColumnChannel;
    DramSystem sys(DramConfig::ddr3_1600(256, 2), cc);
    ASSERT_EQ(sys.channelOf(0), 0);
    ASSERT_EQ(sys.channelOf(64), 1);
    const Ticket t0 = sys.submit(MemTransaction::makeRead(0, 0));
    const Ticket t1 = sys.submit(MemTransaction::makeRead(64, 0));
    EXPECT_NE(t0, t1);
    EXPECT_EQ(sys.inFlightCount(), 2u);
    EXPECT_EQ(sys.acceptedAt(t1), 0);
    // Resolve in reverse submission order: each channel only
    // services its own queue.
    EXPECT_GT(sys.completionOf(t1), 0);
    EXPECT_GT(sys.completionOf(t0), 0);
    EXPECT_EQ(sys.channel(0).counts().rd, 1u);
    EXPECT_EQ(sys.channel(1).counts().rd, 1u);
}

// --- drainAll == the old drainWrites semantics on the shim. ---

TEST(Transaction, DrainAllMatchesDrainWritesShim)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    DramSystem via_drain_all(c), via_shim(c);
    for (int i = 0; i < 24; ++i) {
        const uint64_t addr = static_cast<uint64_t>(i) * 8192 * 8;
        via_drain_all.write(addr, 0);
        via_shim.write(addr, 0);
    }
    const Cycle a = via_drain_all.drainAll();
    const Cycle b = via_shim.drainWrites();
    EXPECT_EQ(a, b);
    EXPECT_EQ(via_drain_all.totalCounts().wr, 24u);
    EXPECT_EQ(via_shim.totalCounts().wr,
              via_drain_all.totalCounts().wr);
    EXPECT_EQ(via_drain_all.pendingWriteCount(), 0u);
}

// --- Read-reordering window. ---

TEST(Transaction, ReadWindowCoalescesRowConflictStream)
{
    auto run = [](int window, std::vector<Cycle> *lat) {
        DramConfig c = cfg();
        c.scheduler = SchedulerPolicy::preset("batched");
        c.scheduler.read_window = window;
        DramSystem sys(c);
        runReadWindowWorkload(sys, 20, 16, lat);
        return sys.totalCounts();
    };
    std::vector<Cycle> lat1, lat8;
    const CommandCounts fifo = run(1, &lat1);
    const CommandCounts windowed = run(8, &lat8);
    EXPECT_EQ(fifo.rd, windowed.rd);
    // Strict arrival order pays a PRE/ACT pair per row-alternating
    // read; the window regroups each wave into two row-hit runs.
    EXPECT_LT(windowed.act * 4, fifo.act);
    double mean1 = 0, mean8 = 0;
    for (Cycle l : lat1)
        mean1 += static_cast<double>(l);
    for (Cycle l : lat8)
        mean8 += static_cast<double>(l);
    EXPECT_LT(mean8, mean1);
}

TEST(Transaction, WindowNeverReordersAcrossRowOpOrSameRow)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched"); // window 8.
    DramSystem sys(c);
    const Address target = sys.map().decode(0);
    sys.channel(0).setRowState(target.rank, target.bank, target.row,
                               RowDataState::Data);
    // Same row: read, destructive row op, read - all queued at once.
    const Ticket r1 = sys.submit(MemTransaction::makeRead(0, 0));
    const Ticket op = sys.submit(MemTransaction::makeRowOp(
        0, 0, RowOpMechanism::CodicDet));
    const Ticket r2 = sys.submit(MemTransaction::makeRead(64, 0));
    const Cycle c1 = sys.completionOf(r1);
    const Cycle cop = sys.completionOf(op);
    const Cycle c2 = sys.completionOf(r2);
    EXPECT_LT(c1, cop);
    EXPECT_LT(cop, c2);
    EXPECT_EQ(sys.channel(0).rowState(target.rank, target.bank,
                                      target.row),
              RowDataState::Zeroes);
}

// --- Refresh-aware scheduling. ---

TEST(Transaction, RefreshCountTracksElapsedWithinPostponement)
{
    for (const int postpone : {0, 4, 8}) {
        DramConfig c = cfg();
        c.scheduler = SchedulerPolicy::preset("batched");
        c.scheduler.auto_refresh = true;
        c.scheduler.refresh_postpone = postpone;
        DramSystem sys(c);
        const Cycle done = runRefreshReadWorkload(
            sys, 4, 1200, 8, 3 * c.timing.trefi);
        sys.poll(done);
        const int64_t intervals = done / c.timing.trefi;
        const int64_t refs =
            static_cast<int64_t>(sys.totalCounts().ref);
        // REF count ~ elapsed/tREFI: every due REF beyond the
        // postponement allowance must have issued, and never more
        // than the due count.
        EXPECT_GE(refs, intervals - postpone - 1) << postpone;
        EXPECT_LE(refs, intervals + 1) << postpone;
    }
}

TEST(Transaction, ReadsNeverStarveAcrossRefreshStorm)
{
    // A saturated read stream spanning many tREFI with the maximum
    // deferral allowance: REFs are forced mid-stream in bursts, yet
    // every read must complete with bounded latency.
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    c.scheduler.auto_refresh = true;
    c.scheduler.refresh_postpone = 8;
    DramSystem sys(c);
    std::vector<Cycle> lat;
    runRefreshReadWorkload(sys, 1, 20000, 6, 0, &lat);
    ASSERT_EQ(lat.size(), 20000u);
    EXPECT_GT(sys.totalCounts().ref, 10u);
    const Cycle bound = 16 * c.timing.trfc;
    for (const Cycle l : lat)
        ASSERT_LT(l, bound);
}

TEST(Transaction, PostponementMovesRefreshOutOfBursts)
{
    auto tail = [](int postpone) {
        DramConfig c = cfg();
        c.scheduler = SchedulerPolicy::preset("batched");
        c.scheduler.auto_refresh = true;
        c.scheduler.refresh_postpone = postpone;
        DramSystem sys(c);
        std::vector<Cycle> lat;
        runRefreshReadWorkload(sys, 6, 2000, 8,
                               4 * c.timing.trefi, &lat);
        return *std::max_element(lat.begin(), lat.end());
    };
    // With bursts ~2.5 tREFI long, a sufficient allowance slides
    // every mid-burst REF into the following quiet gap.
    EXPECT_LT(tail(8), tail(0));
}

TEST(Transaction, EagerPresetNeverInjectsRefresh)
{
    DramSystem sys(cfg()); // Eager default: auto_refresh off.
    runRefreshReadWorkload(sys, 2, 2000, 8, 6240);
    sys.drainAll();
    EXPECT_EQ(sys.totalCounts().ref, 0u);
}

// --- Per-bank drain watermarks. ---

TEST(Transaction, BankWatermarkDrainsBankHotStream)
{
    DramConfig c = cfg();
    c.scheduler = SchedulerPolicy::preset("batched");
    c.scheduler.drain_high_pct = 100; // Park the global watermark.
    c.scheduler.bank_drain_high = 4;
    c.scheduler.bank_drain_low = 1;
    DramChannel ch(c);
    MemoryController mc(ch);
    // Row-conflicting writes all landing on bank 0.
    const uint64_t stride = 8192ull * 8ull;
    for (int i = 0; i < 3; ++i)
        mc.write(stride * static_cast<uint64_t>(i), 0);
    EXPECT_EQ(mc.pendingWriteCount(), 3u); // Below the watermark.
    mc.write(stride * 3, 0);
    // The 4th write tripped the bank watermark: drained to low = 1.
    EXPECT_EQ(mc.pendingWriteCount(), 1u);
    EXPECT_EQ(ch.counts().wr, 3u);
    mc.drainAll();
    EXPECT_EQ(ch.counts().wr, mc.acceptedWrites());
}

// --- Validation and --sched spec parsing. ---

TEST(Transaction, ValidateRejectsNewInconsistentKnobs)
{
    SchedulerPolicy p;
    p.read_window = 0;
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.bank_drain_high = 2;
    p.bank_drain_low = 3; // Low watermark exceeds high.
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.bank_drain_high = -1;
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.refresh_postpone = 9; // Beyond the JEDEC limit.
    EXPECT_THROW(p.validate(), FatalError);
    p = SchedulerPolicy{};
    p.refresh_postpone = -1;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Transaction, DramConfigRejectsNonPositiveRefreshTimings)
{
    DramConfig c = cfg();
    c.timing.trefi = 0;
    EXPECT_THROW(c.validate(), FatalError);
    c = cfg();
    c.timing.trefi = -8;
    EXPECT_THROW(c.validate(), FatalError);
    c = cfg();
    c.timing.trfc = 0;
    EXPECT_THROW(c.validate(), FatalError);
    c = cfg();
    c.timing.trfc = -1;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(Transaction, SchedSpecParsesPresetAndKnobOverrides)
{
    const SchedulerPolicy p = SchedulerPolicy::parse(
        "batched:read_window=16,refresh=auto,refresh_postpone=4,"
        "bank_drain_high=6,bank_drain_low=2");
    EXPECT_EQ(p.drain_high_pct, 75); // From the preset.
    EXPECT_EQ(p.read_window, 16);
    EXPECT_TRUE(p.auto_refresh);
    EXPECT_EQ(p.refresh_postpone, 4);
    EXPECT_EQ(p.bank_drain_high, 6);
    EXPECT_EQ(p.bank_drain_low, 2);

    EXPECT_FALSE(SchedulerPolicy::parse("batched").auto_refresh);
    EXPECT_FALSE(
        SchedulerPolicy::parse("eager:refresh=off").auto_refresh);

    EXPECT_THROW(SchedulerPolicy::parse("bogus"), FatalError);
    EXPECT_THROW(SchedulerPolicy::parse("batched:no_such_knob=1"),
                 FatalError);
    EXPECT_THROW(SchedulerPolicy::parse("batched:read_window=abc"),
                 FatalError);
    // Overflowing values must fail loudly, not wrap into a
    // different, valid-looking policy.
    EXPECT_THROW(
        SchedulerPolicy::parse("batched:read_window=4294967297"),
        FatalError);
    EXPECT_THROW(SchedulerPolicy::parse("batched:read_window="),
                 FatalError);
    EXPECT_THROW(SchedulerPolicy::parse("batched:refresh=maybe"),
                 FatalError);
    // Overrides that assemble an inconsistent policy are rejected
    // by the embedded validate().
    EXPECT_THROW(SchedulerPolicy::parse(
                     "batched:bank_drain_high=2,bank_drain_low=5"),
                 FatalError);
    // The knob help text names every parseable knob.
    const std::string help = SchedulerPolicy::describeKnobs();
    for (const char *knob :
         {"drain_high_pct", "drain_low_pct", "max_drain_batch",
          "replay_batch", "read_window", "bank_drain_high",
          "bank_drain_low", "refresh", "refresh_postpone"})
        EXPECT_NE(help.find(knob), std::string::npos) << knob;
}

} // namespace
} // namespace codic
