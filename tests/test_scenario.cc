/**
 * @file
 * Tests of the unified Scenario API: registry integrity, clean
 * unknown-name failure, structured-sink behavior, and the
 * determinism golden test - every registered scenario's JSON output
 * is byte-identical for a fixed seed at 1 vs 8 campaign threads.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/result_sink.h"
#include "scenario/registry.h"

namespace codic {
namespace {

// --- Registry integrity. ---

TEST(ScenarioRegistry, ListsEveryScenarioExactlyOnce)
{
    const auto names = ScenarioRegistry::instance().names();
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size())
        << "duplicate scenario names registered";
    EXPECT_GE(names.size(), 15u);
}

TEST(ScenarioRegistry, CoversEveryPaperArtifactServedByABench)
{
    // One registered scenario per paper figure/table that had a
    // dedicated bench binary before the Scenario API redesign.
    const char *required[] = {
        "circuit_fig2_waveforms",     "circuit_fig3_codic_waveforms",
        "circuit_table1_variants",    "circuit_table2_latency_energy",
        "circuit_table11_sigsa",      "circuit_ablation_granularity",
        "circuit_ablation_sig_opt",   "puf_fig5_jaccard",
        "puf_fig6_temperature",       "puf_aging",
        "puf_auth",                   "puf_coverage",
        "puf_table4_response_time",   "puf_ablation_filter",
        "puf_retention_methodology",  "coldboot_fig7_destruction",
        "coldboot_table6_overhead",   "secdealloc_fig8",
        "secdealloc_fig9",            "trng_characterization",
        "trng_table10_nist",          "ext_adaptive_act",
        "ext_pim",                    "ablation_bank_parallelism",
        "ablation_engine_parallelism", "ablation_scheduler",
        // Fleet subsystem (not paper artifacts, but part of the
        // stable scenario surface).
        "fleet_enroll",               "fleet_auth_load",
        "fleet_mixed",                "fleet_scaling",
        "fleet_overload",             "fleet_region_serving",
        // Trace subsystem (record/replay surface).
        "trace_replay",               "trace_filter_ablation",
        "trace_vs_synthetic",
        // Co-simulation / thermal subsystem (TickEngine surface).
        "thermal_feedback",           "thermal_throttling",
        "multicore_contention",
    };
    auto &registry = ScenarioRegistry::instance();
    for (const char *name : required) {
        const Scenario *s = registry.find(name);
        ASSERT_NE(s, nullptr) << "missing scenario " << name;
        EXPECT_EQ(s->name(), name);
        EXPECT_FALSE(s->describe().empty());
    }
}

TEST(ScenarioRegistry, UnknownNameFailsCleanly)
{
    EXPECT_EQ(ScenarioRegistry::instance().find("no_such_scenario"),
              nullptr);

    RunOptions options;
    std::ostringstream out;
    JsonResultSink sink(out);
    EXPECT_FALSE(runScenario("no_such_scenario", options, sink));
    sink.finish();
    // The sink must be untouched apart from the empty array.
    EXPECT_EQ(out.str(), "[]\n");
}

// --- Structured sinks. ---

TEST(ResultSinks, JsonTimingValuesFollowEmitTimings)
{
    RunOptions options;
    ResultRow row;
    row.add("value", 3).addTiming("wall_ms", 1.5);

    std::ostringstream silent;
    {
        JsonResultSink sink(silent);
        sink.beginScenario("s", "d", options);
        sink.row("sec", row);
        sink.endScenario();
        sink.finish();
    }
    EXPECT_EQ(silent.str().find("wall_ms"), std::string::npos);

    options.emit_timings = true;
    std::ostringstream timed;
    {
        JsonResultSink sink(timed);
        sink.beginScenario("s", "d", options);
        sink.row("sec", row);
        sink.endScenario();
        sink.finish();
    }
    EXPECT_NE(timed.str().find("wall_ms"), std::string::npos);
}

TEST(ResultSinks, CsvEmitsLongFormatRows)
{
    RunOptions options;
    std::ostringstream out;
    CsvResultSink sink(out);
    sink.beginScenario("scn", "d", options);
    sink.row("sec", ResultRow().add("k", std::string("v, with comma")));
    sink.endScenario();
    EXPECT_NE(out.str().find("scenario,seed,section,row,key,value"),
              std::string::npos);
    EXPECT_NE(out.str().find("scn,1,sec,0,k,\"v, with comma\""),
              std::string::npos);
}

// --- Determinism golden test. ---

std::string
jsonFor(const std::string &name, int threads)
{
    RunOptions options;
    options.seed = 3;
    options.threads = threads;
    // Small campaigns keep the full sweep fast; determinism must
    // hold at any scale.
    options.scale = 0.01;
    options.emit_timings = false;

    std::ostringstream out;
    JsonResultSink sink(out);
    EXPECT_TRUE(runScenario(name, options, sink));
    sink.finish();
    return out.str();
}

TEST(ScenarioDeterminism, JsonByteIdenticalAt1Vs8Threads)
{
    for (const auto &name : ScenarioRegistry::instance().names()) {
        SCOPED_TRACE(name);
        const std::string sequential = jsonFor(name, 1);
        const std::string parallel = jsonFor(name, 8);
        EXPECT_EQ(sequential, parallel)
            << "scenario output depends on the thread count";
        EXPECT_NE(sequential.find("\"rows\":["), std::string::npos);
        // Repeat at the same thread count: seed-determinism.
        EXPECT_EQ(sequential, jsonFor(name, 1));
    }
}

} // namespace
} // namespace codic
