/**
 * @file
 * Tests of the Section 4.4 controlled interface: PUF requests are
 * confined to the reserved range, zeroing requires a prior free and
 * row alignment, raw variants are unreachable, and the audit counter
 * tracks refusals.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "mem/safe_interface.h"

namespace codic {
namespace {

class SafeInterfaceFixture : public ::testing::Test
{
  protected:
    SafeInterfaceFixture()
        : system_(DramConfig::ddr3_1600(256)),
          channel_(system_.channel(0)),
          iface_(system_, kPufBase, kPufBytes)
    {
    }

    static constexpr uint64_t kRow = 8192;
    static constexpr uint64_t kPufBase = 1ull << 20; // 1 MB mark.
    static constexpr uint64_t kPufBytes = 64 * kRow;

    DramSystem system_;
    DramChannel &channel_;
    SafeCodicInterface iface_;
};

TEST_F(SafeInterfaceFixture, PufResponseInsideRangeSucceeds)
{
    Cycle done = 0;
    EXPECT_EQ(iface_.pufResponse(kPufBase, 0, &done),
              SafeRequestStatus::Ok);
    EXPECT_GT(done, 0);
    // The PUF sequence ran: one CODIC + one ACT + a read pass.
    EXPECT_EQ(channel_.counts().codic, 1u);
    EXPECT_EQ(channel_.counts().act, 1u);
    EXPECT_EQ(channel_.counts().rd, 128u);
}

TEST_F(SafeInterfaceFixture, PufResponseLeavesSignatureInRange)
{
    iface_.pufResponse(kPufBase + kRow, 0, nullptr);
    const Address a = system_.map().decode(kPufBase + kRow);
    EXPECT_EQ(channel_.rowState(a.rank, a.bank, a.row),
              RowDataState::SaSignature);
}

TEST_F(SafeInterfaceFixture, PufResponseOutsideRangeRefused)
{
    // An attacker-chosen address holding program data: refused, and
    // the data survives.
    const uint64_t victim = 0;
    const Address a = system_.map().decode(victim);
    channel_.setRowState(a.rank, a.bank, a.row, RowDataState::Data);
    EXPECT_EQ(iface_.pufResponse(victim, 0, nullptr),
              SafeRequestStatus::OutsidePufRange);
    EXPECT_EQ(channel_.rowState(a.rank, a.bank, a.row),
              RowDataState::Data);
    EXPECT_EQ(iface_.refusals(), 1u);
}

TEST_F(SafeInterfaceFixture, PufResponseJustPastRangeRefused)
{
    EXPECT_EQ(iface_.pufResponse(kPufBase + kPufBytes, 0, nullptr),
              SafeRequestStatus::OutsidePufRange);
}

TEST_F(SafeInterfaceFixture, MisalignedPufRequestRefused)
{
    EXPECT_EQ(iface_.pufResponse(kPufBase + 64, 0, nullptr),
              SafeRequestStatus::Misaligned);
}

TEST_F(SafeInterfaceFixture, ZeroRangeRequiresPriorFree)
{
    const uint64_t target = 16 * kRow;
    const Address a = system_.map().decode(target);
    channel_.setRowState(a.rank, a.bank, a.row, RowDataState::Data);
    EXPECT_EQ(iface_.zeroRange(target, kRow, 0, nullptr),
              SafeRequestStatus::RangeNotFreed);
    EXPECT_EQ(channel_.rowState(a.rank, a.bank, a.row),
              RowDataState::Data);

    iface_.declareFreed(target, kRow);
    Cycle done = 0;
    EXPECT_EQ(iface_.zeroRange(target, kRow, 0, &done),
              SafeRequestStatus::Ok);
    EXPECT_EQ(channel_.rowState(a.rank, a.bank, a.row),
              RowDataState::Zeroes);
}

TEST_F(SafeInterfaceFixture, PartialRowZeroingRefused)
{
    // Section 4.4's granularity challenge: a row can hold pages of
    // two owners; partial-row requests must not destroy neighbours.
    iface_.declareFreed(32 * kRow, kRow);
    EXPECT_EQ(iface_.zeroRange(32 * kRow + 4096, 4096, 0, nullptr),
              SafeRequestStatus::Misaligned);
    EXPECT_EQ(iface_.zeroRange(32 * kRow, 4096, 0, nullptr),
              SafeRequestStatus::Misaligned);
}

TEST_F(SafeInterfaceFixture, ZeroRangeCoversMultipleRows)
{
    const uint64_t base = 40 * kRow;
    iface_.declareFreed(base, 4 * kRow);
    EXPECT_EQ(iface_.zeroRange(base, 4 * kRow, 0, nullptr),
              SafeRequestStatus::Ok);
    for (uint64_t off = 0; off < 4 * kRow; off += kRow) {
        const Address a = system_.map().decode(base + off);
        EXPECT_EQ(channel_.rowState(a.rank, a.bank, a.row),
                  RowDataState::Zeroes);
    }
}

TEST_F(SafeInterfaceFixture, FreeDoesNotLeakAcrossRanges)
{
    iface_.declareFreed(48 * kRow, kRow);
    // Adjacent-but-not-covered row stays protected.
    EXPECT_EQ(iface_.zeroRange(49 * kRow, kRow, 0, nullptr),
              SafeRequestStatus::RangeNotFreed);
}

TEST_F(SafeInterfaceFixture, RefusalCounterAudits)
{
    iface_.pufResponse(0, 0, nullptr);
    iface_.zeroRange(0, kRow, 0, nullptr);
    iface_.zeroRange(kRow + 1, kRow, 0, nullptr);
    EXPECT_EQ(iface_.refusals(), 3u);
}

TEST(SafeInterface, MisalignedPufRangeIsFatal)
{
    DramSystem sys(DramConfig::ddr3_1600(64));
    EXPECT_THROW(SafeCodicInterface(sys, 100, 8192), FatalError);
}

TEST(SafeInterface, StatusNamesAreDistinct)
{
    EXPECT_STREQ(safeRequestStatusName(SafeRequestStatus::Ok), "ok");
    EXPECT_STRNE(
        safeRequestStatusName(SafeRequestStatus::OutsidePufRange),
        safeRequestStatusName(SafeRequestStatus::RangeNotFreed));
}

} // namespace
} // namespace codic
