/**
 * @file
 * Tests of the circuit substrate: signal schedules, the analog
 * cell/SA model (waveform behaviour of paper Figs. 2b/3/10), the
 * configurable delay element (Section 4.2.1 costs), and the
 * Monte-Carlo engine (Table 11).
 */

#include <gtest/gtest.h>

#include "circuit/analog.h"
#include "circuit/delay_element.h"
#include "circuit/monte_carlo.h"
#include "circuit/signals.h"
#include "codic/variant.h"
#include "common/logging.h"
#include "common/stats.h"

namespace codic {
namespace {

// --- SignalSchedule. ---

TEST(SignalSchedule, SetAndQueryPulse)
{
    SignalSchedule s;
    s.set(Signal::Wl, 5, 22);
    ASSERT_TRUE(s.pulse(Signal::Wl).has_value());
    EXPECT_EQ(s.pulse(Signal::Wl)->start_ns, 5);
    EXPECT_EQ(s.pulse(Signal::Wl)->end_ns, 22);
    EXPECT_FALSE(s.pulse(Signal::Eq).has_value());
}

TEST(SignalSchedule, ActiveAtRespectsHalfOpenInterval)
{
    SignalSchedule s;
    s.set(Signal::Eq, 7, 11);
    EXPECT_FALSE(s.activeAt(Signal::Eq, 6));
    EXPECT_TRUE(s.activeAt(Signal::Eq, 7));
    EXPECT_TRUE(s.activeAt(Signal::Eq, 10));
    EXPECT_FALSE(s.activeAt(Signal::Eq, 11));
}

TEST(SignalSchedule, RejectsOutOfWindowPulses)
{
    SignalSchedule s;
    EXPECT_THROW(s.set(Signal::Wl, -1, 5), FatalError);
    EXPECT_THROW(s.set(Signal::Wl, 0, 25), FatalError);
    EXPECT_THROW(s.set(Signal::Wl, 10, 10), FatalError);
    EXPECT_THROW(s.set(Signal::Wl, 10, 5), FatalError);
}

TEST(SignalSchedule, LastEdgeAndEmpty)
{
    SignalSchedule s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.lastEdgeNs(), 0);
    s.set(Signal::Wl, 5, 22);
    s.set(Signal::Eq, 5, 11);
    EXPECT_EQ(s.lastEdgeNs(), 22);
    EXPECT_FALSE(s.empty());
    s.clear(Signal::Wl);
    EXPECT_EQ(s.lastEdgeNs(), 11);
}

TEST(SignalSchedule, StringForm)
{
    SignalSchedule s;
    EXPECT_EQ(s.str(), "(none)");
    s.set(Signal::Wl, 5, 22);
    s.set(Signal::Eq, 7, 22);
    EXPECT_EQ(s.str(), "wl[5,22] EQ[7,22]");
}

TEST(SignalSchedule, VariantCountMatchesPaper)
{
    // Paper Section 4.1.3 footnote 2: n = 300 for a 25 ns window.
    EXPECT_EQ(SignalSchedule::pulsesPerSignal(25), 300u);
    const uint64_t n = 300;
    EXPECT_EQ(SignalSchedule::totalVariants(25), n * n * n * n);
}

class WindowCountTest : public ::testing::TestWithParam<int>
{
};

TEST_P(WindowCountTest, PulseCountIsTriangularNumber)
{
    const int w = GetParam();
    const uint64_t expected =
        static_cast<uint64_t>(w) * static_cast<uint64_t>(w - 1) / 2;
    EXPECT_EQ(SignalSchedule::pulsesPerSignal(w), expected);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowCountTest,
                         ::testing::Values(2, 5, 10, 16, 25, 32));

TEST(SignalNames, AllDistinct)
{
    EXPECT_STREQ(signalName(Signal::Wl), "wl");
    EXPECT_STREQ(signalName(Signal::Eq), "EQ");
    EXPECT_STREQ(signalName(Signal::SenseP), "sense_p");
    EXPECT_STREQ(signalName(Signal::SenseN), "sense_n");
}

// --- Analog model. ---

class AnalogFixture : public ::testing::Test
{
  protected:
    CircuitParams params_ = CircuitParams::ddr3();

    VariationDraw
    nominalDraw() const
    {
        return VariationDraw{}; // All deviations zero.
    }
};

TEST_F(AnalogFixture, ActivationRestoresStoredOne)
{
    CellCircuit cell(params_, nominalDraw());
    cell.setCellVoltage(params_.vdd);
    const Transient tr = cell.run(variants::activate().schedule);
    EXPECT_GT(tr.finalBitline(), 0.9 * params_.vdd);
    EXPECT_GT(tr.finalCell(), 0.9 * params_.vdd);
    EXPECT_TRUE(cell.senseBit());
}

TEST_F(AnalogFixture, ActivationRestoresStoredZero)
{
    CellCircuit cell(params_, nominalDraw());
    cell.setCellVoltage(0.0);
    const Transient tr = cell.run(variants::activate().schedule);
    EXPECT_LT(tr.finalBitline(), 0.1 * params_.vdd);
    EXPECT_LT(tr.finalCell(), 0.1 * params_.vdd);
    EXPECT_FALSE(cell.senseBit());
}

TEST_F(AnalogFixture, ChargeSharingDeviatesBitlineTowardCell)
{
    CellCircuit cell(params_, nominalDraw());
    cell.setCellVoltage(params_.vdd);
    SignalSchedule wl_only;
    wl_only.set(Signal::Wl, 5, 22);
    const Transient tr = cell.run(wl_only, 30.0);
    // Bitline rises above Vdd/2 by the charge-sharing epsilon
    // (paper Fig. 1 step 2); no SA means no full amplification.
    EXPECT_GT(tr.finalBitline(), params_.vHalf() + 0.05);
    EXPECT_LT(tr.finalBitline(), params_.vdd * 0.75);
}

TEST_F(AnalogFixture, SigDrivesCellToHalfVddFromOne)
{
    CellCircuit cell(params_, nominalDraw());
    cell.setCellVoltage(params_.vdd);
    const Transient tr = cell.run(variants::sig().schedule);
    EXPECT_NEAR(tr.finalCell(), params_.vHalf(), 0.02);
    EXPECT_NEAR(tr.finalBitline(), params_.vHalf(), 0.02);
}

TEST_F(AnalogFixture, SigDrivesCellToHalfVddFromZero)
{
    CellCircuit cell(params_, nominalDraw());
    cell.setCellVoltage(0.0);
    const Transient tr = cell.run(variants::sig().schedule);
    EXPECT_NEAR(tr.finalCell(), params_.vHalf(), 0.02);
}

TEST_F(AnalogFixture, SigOptAlsoReachesHalfVdd)
{
    // The early-termination optimization preserves functionality
    // (paper Section 4.1.1: the capacitor reaches Vdd/2 almost
    // immediately after EQ asserts).
    CellCircuit cell(params_, nominalDraw());
    cell.setCellVoltage(params_.vdd);
    const Transient tr = cell.run(variants::sigOpt().schedule);
    EXPECT_NEAR(tr.finalCell(), params_.vHalf(), 0.05);
}

TEST_F(AnalogFixture, SigCapacitorReachesHalfVddQuickly)
{
    CellCircuit cell(params_, nominalDraw());
    cell.setCellVoltage(params_.vdd);
    const Transient tr = cell.run(variants::sig().schedule);
    // Within a few ns of EQ asserting at 7 ns (Fig. 3a).
    EXPECT_NEAR(tr.cellAt(13.0), params_.vHalf(), 0.07);
}

class DetPolarityTest
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(DetPolarityTest, DetResultIndependentOfInitialValueAndOffset)
{
    // CODIC-det must be deterministic regardless of the stored value
    // and of process variation (paper Section 4.1.2).
    const auto [init_frac, offset_mv] = GetParam();
    CircuitParams params = CircuitParams::ddr3();
    VariationDraw draw;
    draw.sa_offset = offset_mv * 1e-3;

    CellCircuit zero_cell(params, draw);
    zero_cell.setCellVoltage(init_frac * params.vdd);
    zero_cell.run(variants::detZero().schedule);
    EXPECT_LT(zero_cell.cellVoltage(), 0.15 * params.vdd);
    EXPECT_FALSE(zero_cell.senseBit());

    CellCircuit one_cell(params, draw);
    one_cell.setCellVoltage(init_frac * params.vdd);
    one_cell.run(variants::detOne().schedule);
    EXPECT_GT(one_cell.cellVoltage(), 0.85 * params.vdd);
    EXPECT_TRUE(one_cell.senseBit());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetPolarityTest,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(-25.0, -5.0, 0.0, 5.0, 25.0)));

TEST_F(AnalogFixture, SigsaAmplifiesDesignedBiasToOne)
{
    // With zero process variation, the designed SA bias amplifies a
    // precharged bitline to '1' (paper Appendix C).
    CellCircuit cell(params_, nominalDraw());
    cell.run(variants::sigsa().schedule);
    EXPECT_TRUE(cell.senseBit());
    EXPECT_GT(cell.cellVoltage(), 0.8 * params_.vdd);
}

TEST_F(AnalogFixture, SigsaLargeNegativeOffsetFlipsToZero)
{
    VariationDraw draw;
    draw.sa_offset = -30e-3; // Beyond the 20 mV designed bias.
    CellCircuit cell(params_, draw);
    cell.run(variants::sigsa().schedule);
    EXPECT_FALSE(cell.senseBit());
}

TEST_F(AnalogFixture, SigThenActivateResolvesByOffsetSign)
{
    // The CODIC-sig PUF pipeline: sig drives the cell to Vdd/2, the
    // following activation amplifies by process variation.
    for (double offset : {-30e-3, 30e-3}) {
        VariationDraw draw;
        draw.sa_offset = offset;
        CellCircuit cell(params_, draw);
        cell.setCellVoltage(params_.vdd);
        cell.run(variants::sig().schedule);
        cell.run(variants::activate().schedule);
        EXPECT_EQ(cell.senseBit(), offset > -params_.designed_sa_bias);
    }
}

TEST_F(AnalogFixture, PrechargeReturnsBitlineToHalf)
{
    CellCircuit cell(params_, nominalDraw());
    cell.setBitlineVoltage(params_.vdd);
    cell.run(variants::precharge().schedule, 20.0);
    EXPECT_NEAR(cell.bitlineVoltage(), params_.vHalf(), 0.01);
}

TEST_F(AnalogFixture, VoltagesStayClamped)
{
    CellCircuit cell(params_, nominalDraw());
    cell.setCellVoltage(params_.vdd);
    const Transient tr = cell.run(variants::activate().schedule);
    for (const auto &p : tr.points) {
        EXPECT_GE(p.v_bitline, 0.0);
        EXPECT_LE(p.v_bitline, params_.vdd);
        EXPECT_GE(p.v_cell, 0.0);
        EXPECT_LE(p.v_cell, params_.vdd);
    }
}

TEST_F(AnalogFixture, TransientSamplesCoverDuration)
{
    CellCircuit cell(params_, nominalDraw());
    const Transient tr = cell.run(variants::activate().schedule, 35.0,
                                  nullptr, 0.5);
    ASSERT_FALSE(tr.points.empty());
    EXPECT_NEAR(tr.points.front().t_ns, 0.0, 1e-9);
    EXPECT_GT(tr.points.back().t_ns, 34.0);
}

TEST(VariationDraw, SampledOffsetsScaleWithProcessVariation)
{
    CircuitParams p4 = CircuitParams::ddr3();
    p4.process_variation = 0.04;
    CircuitParams p2 = p4;
    p2.process_variation = 0.02;
    EXPECT_NEAR(saOffsetSigma(p2), saOffsetSigma(p4) / 2.0, 1e-12);

    Rng rng(5);
    RunningStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(VariationDraw::sample(rng, p4).sa_offset);
    EXPECT_NEAR(s.stddev(), saOffsetSigma(p4), 0.1e-3);
    EXPECT_NEAR(s.mean(), 0.0, 0.15e-3);
}

TEST(CircuitParams, DesignedBiasDecaysWithTemperature)
{
    CircuitParams p = CircuitParams::ddr3();
    const double b30 = designedSaBiasAt(p);
    p.temperature_c = 85.0;
    const double b85 = designedSaBiasAt(p);
    EXPECT_LT(b85, b30);
    EXPECT_GT(b85, 0.7 * b30); // Saturating droop, not collapse.
    p.temperature_c = 20.0;
    EXPECT_DOUBLE_EQ(designedSaBiasAt(p), p.designed_sa_bias);
}

TEST(CircuitParams, Ddr3lHasLowerRail)
{
    EXPECT_GT(CircuitParams::ddr3().vdd, CircuitParams::ddr3l().vdd);
}

// --- Delay element (paper Section 4.2.1). ---

TEST(DelayElement, AreaOverheadMatchesPaper)
{
    DelayElement e;
    // 0.28 % per mat per signal; 1.12 % for all four signals.
    EXPECT_NEAR(e.areaOverheadPerMat(), 0.0028, 0.0002);
    EXPECT_NEAR(e.fullCodicAreaOverheadPerMat(), 0.0112, 0.0008);
}

TEST(DelayElement, EnergyBelow500Femtojoule)
{
    DelayElement e;
    EXPECT_LT(4.0 * e.energyPerOperationFj(), 500.0);
}

TEST(DelayElement, DdrxPathPenaltyMatchesPaper)
{
    DelayElement e;
    EXPECT_NEAR(e.ddrxPathPenaltyNs(), 0.028, 1e-9);
}

TEST(DelayElement, DelayIsLinearInSetting)
{
    DelayElement e;
    EXPECT_DOUBLE_EQ(e.delayNs(0), 0.0);
    EXPECT_DOUBLE_EQ(e.delayNs(1), 1.0);
    EXPECT_DOUBLE_EQ(e.delayNs(24), 24.0);
    EXPECT_THROW(e.delayNs(25), FatalError);
}

TEST(DelayElement, CoarserGranularityShrinksArea)
{
    // Paper footnote 3: coarsening the time step reduces area.
    DelayElementParams coarse;
    coarse.taps = 13; // 2 ns steps.
    EXPECT_LT(DelayElement(coarse).areaF2(), DelayElement().areaF2());
}

// --- Monte Carlo (paper Table 11). ---

TEST(MonteCarlo, FastPathMatchesFullTransient)
{
    MonteCarloConfig fast;
    fast.schedule = sigsaSchedule();
    fast.runs = 400;
    fast.run.seed = 77;
    MonteCarloConfig slow = fast;
    slow.fast_path = false;
    const auto rf = runMonteCarlo(fast);
    const auto rs = runMonteCarlo(slow);
    // Same RNG stream, same decision rule: identical counts.
    EXPECT_EQ(rf.ones, rs.ones);
    EXPECT_EQ(rf.zeros, rs.zeros);
}

class Table11PvTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(Table11PvTest, FlipFractionInPaperBand)
{
    const auto [pv, expected_pct] = GetParam();
    MonteCarloConfig mc;
    mc.schedule = sigsaSchedule();
    mc.params.process_variation = pv;
    mc.runs = 100000;
    const double pct = runMonteCarlo(mc).flipFraction() * 100.0;
    if (expected_pct == 0.0)
        EXPECT_LT(pct, 0.005); // Rounds to 0.00 %.
    else
        EXPECT_NEAR(pct, expected_pct, expected_pct * 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table11PvTest,
    ::testing::Values(std::make_pair(0.02, 0.0),
                      std::make_pair(0.03, 0.0),
                      std::make_pair(0.04, 0.02),
                      std::make_pair(0.05, 0.19)));

TEST(MonteCarlo, FlipsRiseWithTemperature)
{
    auto flips_at = [](double temp) {
        MonteCarloConfig mc;
        mc.schedule = sigsaSchedule();
        mc.params.temperature_c = temp;
        mc.runs = 100000;
        return runMonteCarlo(mc).flipFraction() * 100.0;
    };
    const double f30 = flips_at(30.0);
    const double f60 = flips_at(60.0);
    const double f85 = flips_at(85.0);
    EXPECT_NEAR(f30, 0.02, 0.015);
    EXPECT_GT(f60, 3.0 * f30); // Sharp rise then saturation.
    EXPECT_NEAR(f85, f60, 0.08);
}

TEST(MonteCarlo, DeterministicForSameSeed)
{
    MonteCarloConfig mc;
    mc.schedule = sigsaSchedule();
    mc.runs = 5000;
    mc.run.seed = 123;
    const auto a = runMonteCarlo(mc);
    const auto b = runMonteCarlo(mc);
    EXPECT_EQ(a.ones, b.ones);
}

TEST(MonteCarloResult, FractionAccessors)
{
    MonteCarloResult r;
    r.runs = 100;
    r.ones = 98;
    r.zeros = 2;
    EXPECT_DOUBLE_EQ(r.flipFraction(), 0.02);
    EXPECT_DOUBLE_EQ(r.oneFraction(), 0.98);
}

} // namespace
} // namespace codic
