/**
 * @file
 * Tests of the work-stealing campaign engine and of the determinism
 * contract of every campaign converted to it: for a fixed seed the
 * results are bit-identical at 1, 2, and 8 threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "circuit/monte_carlo.h"
#include "common/parallel.h"
#include "puf/chip_model.h"
#include "puf/experiments.h"
#include "puf/sig_puf.h"
#include "secdealloc/evaluate.h"
#include "trng/trng.h"

namespace codic {
namespace {

class EngineThreadsTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineThreadsTest, ForEachRunsEveryIndexExactlyOnce)
{
    CampaignEngine engine(GetParam());
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    engine.forEach(kN, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(EngineThreadsTest, MapKeepsIndexOrder)
{
    CampaignEngine engine(GetParam());
    const auto out = engine.map<size_t>(
        257, [](size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST_P(EngineThreadsTest, EngineIsReusableAcrossCampaigns)
{
    CampaignEngine engine(GetParam());
    for (int round = 0; round < 3; ++round) {
        std::atomic<size_t> sum{0};
        engine.forEach(100, [&](size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST_P(EngineThreadsTest, TaskExceptionPropagatesToCaller)
{
    CampaignEngine engine(GetParam());
    EXPECT_THROW(engine.forEach(64,
                                [](size_t i) {
                                    if (i == 37)
                                        throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
    // The engine survives a failed campaign.
    std::atomic<int> n{0};
    engine.forEach(8, [&](size_t) { ++n; });
    EXPECT_EQ(n.load(), 8);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, EngineThreadsTest,
                         ::testing::Values(1, 2, 8));

TEST(CampaignEngine, ZeroTasksIsANoOp)
{
    CampaignEngine engine(4);
    bool ran = false;
    engine.forEach(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(CampaignEngine, DefaultPicksAtLeastOneThread)
{
    CampaignEngine engine(0);
    EXPECT_GE(engine.threads(), 1);
}

TEST(ForkStreams, DependOnlyOnSeedAndIndex)
{
    auto a = forkStreams(1234, 4);
    auto b = forkStreams(1234, 16);
    // The first streams are identical regardless of campaign size...
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(a[i].next64(), b[i].next64());
    // ...and distinct streams diverge.
    auto c = forkStreams(1234, 2);
    EXPECT_NE(c[0].next64(), c[1].next64());
}

// --- Determinism of the converted campaigns. ---

std::vector<SimulatedChip>
smallPopulation()
{
    std::vector<SimulatedChip> chips;
    for (uint64_t i = 0; i < 4; ++i) {
        ChipSpec spec;
        spec.seed = 100 + i;
        spec.ddr3l = i % 2 == 1;
        chips.emplace_back(spec);
    }
    return chips;
}

TEST(CampaignDeterminism, JaccardCampaignBitIdenticalAcrossThreads)
{
    const auto chips = smallPopulation();
    std::vector<const SimulatedChip *> ptrs;
    for (const auto &c : chips)
        ptrs.push_back(&c);
    const CodicSigPuf sig;

    JaccardCampaignConfig cfg;
    cfg.pairs = 96;
    cfg.run.seed = 42;

    cfg.run.threads = 1;
    const auto sequential = runJaccardCampaign(sig, ptrs, cfg);
    for (int threads : {2, 8}) {
        cfg.run.threads = threads;
        const auto parallel = runJaccardCampaign(sig, ptrs, cfg);
        ASSERT_EQ(parallel.intra.size(), sequential.intra.size());
        for (size_t i = 0; i < sequential.intra.size(); ++i) {
            EXPECT_EQ(parallel.intra[i], sequential.intra[i])
                << "intra pair " << i << " at " << threads
                << " threads";
            EXPECT_EQ(parallel.inter[i], sequential.inter[i])
                << "inter pair " << i << " at " << threads
                << " threads";
        }
    }
}

TEST(CampaignDeterminism, AuthCampaignMatchesAcrossThreads)
{
    const auto chips = smallPopulation();
    std::vector<const SimulatedChip *> ptrs;
    for (const auto &c : chips)
        ptrs.push_back(&c);
    const CodicSigPuf sig;

    RunOptions run;
    run.seed = 5;
    run.threads = 1;
    const AuthRates seq = runAuthCampaign(sig, ptrs, 64, run);
    run.threads = 8;
    const AuthRates par = runAuthCampaign(sig, ptrs, 64, run);
    EXPECT_EQ(seq.false_rejection, par.false_rejection);
    EXPECT_EQ(seq.false_acceptance, par.false_acceptance);
}

TEST(CampaignDeterminism, MonteCarloTalliesBitIdenticalAcrossThreads)
{
    MonteCarloConfig mc;
    mc.schedule = sigsaSchedule();
    mc.runs = 20000;
    mc.block_runs = 1024; // Many blocks so threads actually split work.
    mc.run.seed = 9;

    mc.run.threads = 1;
    const auto seq = runMonteCarlo(mc);
    for (int threads : {2, 8}) {
        mc.run.threads = threads;
        const auto par = runMonteCarlo(mc);
        EXPECT_EQ(par.ones, seq.ones) << threads << " threads";
        EXPECT_EQ(par.zeros, seq.zeros) << threads << " threads";
    }
}

TEST(CampaignDeterminism, MonteCarloBlockingPreservesLegacyStream)
{
    // A single-block sweep must reproduce the historical sequential
    // stream: published Table 11 numbers do not move.
    MonteCarloConfig mc;
    mc.schedule = sigsaSchedule();
    mc.runs = 5000;
    mc.run.seed = 123;
    MonteCarloConfig blocked = mc;
    blocked.block_runs = mc.runs * 2; // Still one block.
    EXPECT_EQ(runMonteCarlo(mc).ones, runMonteCarlo(blocked).ones);
}

TEST(CampaignDeterminism, TrngEnrollmentMatchesAcrossThreads)
{
    TrngConfig base;
    base.segment_bits = 8192;
    base.run.seed = 77;

    base.run.threads = 1;
    const auto seq = enrollDevices(base, 6);
    base.run.threads = 8;
    const auto par = enrollDevices(base, 6);
    ASSERT_EQ(seq.size(), par.size());
    for (size_t d = 0; d < seq.size(); ++d) {
        ASSERT_EQ(seq[d].sources().size(), par[d].sources().size());
        for (size_t s = 0; s < seq[d].sources().size(); ++s) {
            EXPECT_EQ(seq[d].sources()[s].index,
                      par[d].sources()[s].index);
            EXPECT_EQ(seq[d].sources()[s].p_one,
                      par[d].sources()[s].p_one);
        }
    }
}

TEST(CampaignDeterminism, SecureDeallocComparisonMatchesAcrossThreads)
{
    DeallocEvalConfig cfg;
    cfg.dram_capacity_mb = 256;
    cfg.run.threads = 1;
    const auto seq = compareSingleCore("malloc", cfg);
    cfg.run.threads = 4;
    const auto par = compareSingleCore("malloc", cfg);
    EXPECT_EQ(seq.codic_speedup, par.codic_speedup);
    EXPECT_EQ(seq.lisa_speedup, par.lisa_speedup);
    EXPECT_EQ(seq.rowclone_speedup, par.rowclone_speedup);
    EXPECT_EQ(seq.codic_energy, par.codic_energy);
}

TEST(CampaignDeterminism, BatchComparisonMatchesPerBenchmarkCalls)
{
    DeallocEvalConfig cfg;
    cfg.dram_capacity_mb = 256;
    cfg.run.threads = 4;
    const std::vector<std::string> names = {"malloc", "shell"};
    const auto batch = compareSingleCoreAll(names, cfg);
    ASSERT_EQ(batch.size(), 2u);
    for (size_t b = 0; b < names.size(); ++b) {
        const auto one = compareSingleCore(names[b], cfg);
        EXPECT_EQ(batch[b].name, one.name);
        EXPECT_EQ(batch[b].codic_speedup, one.codic_speedup);
        EXPECT_EQ(batch[b].codic_energy, one.codic_energy);
    }
}

} // namespace
} // namespace codic
