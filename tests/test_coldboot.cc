/**
 * @file
 * Tests of the cold-boot module: destruction engines (Fig. 7
 * behaviour), the power-on FSM security analysis (Section 5.2.2),
 * the reference ciphers against published test vectors, and the
 * Table 6 overhead model.
 */

#include <gtest/gtest.h>

#include "coldboot/ciphers.h"
#include "coldboot/destruction.h"
#include "coldboot/overhead_model.h"
#include "coldboot/power_on.h"

namespace codic {
namespace {

// --- Destruction engines. ---

class DestructionMechanismTest
    : public ::testing::TestWithParam<DestructionMechanism>
{
};

TEST_P(DestructionMechanismTest, DestroysEveryRowOfASmallModule)
{
    DestructionConfig cfg;
    cfg.max_simulated_rows = 0; // Full simulation.
    const auto r =
        runDestruction(DramConfig::ddr3_1600(64), GetParam(), cfg);
    EXPECT_FALSE(r.extrapolated);
    EXPECT_GT(r.time_ns, 0.0);
    EXPECT_GT(r.energy_nj, 0.0);
    EXPECT_EQ(r.rows_destroyed, DramConfig::ddr3_1600(64).totalRows());
}

INSTANTIATE_TEST_SUITE_P(All, DestructionMechanismTest,
                         ::testing::Values(DestructionMechanism::Tcg,
                                           DestructionMechanism::LisaClone,
                                           DestructionMechanism::RowClone,
                                           DestructionMechanism::Codic));

TEST(Destruction, NoRowHoldsDataAfterCodic)
{
    // Independent check through the channel: replicate the engine on
    // a tiny module and inspect every row.
    DramChannel ch(DramConfig::ddr3_1600(64));
    ch.fillAllRows(RowDataState::Data);
    const int det = ch.registerVariant(variants::detZero().schedule);
    for (int64_t row = 0; row < ch.config().rows; ++row) {
        for (int bank = 0; bank < ch.config().banks; ++bank) {
            Command c;
            c.type = CommandType::Codic;
            c.addr.bank = bank;
            c.addr.row = row;
            c.codic_variant = det;
            ch.issueAtEarliest(c, 0);
        }
    }
    EXPECT_EQ(ch.countRowsInState(RowDataState::Data), 0);
    EXPECT_EQ(ch.countRowsInState(RowDataState::Zeroes),
              ch.config().totalRows());
}

TEST(Destruction, CodicUsesOneCommandPerRow)
{
    DestructionConfig cfg;
    cfg.max_simulated_rows = 0;
    const DramConfig dram = DramConfig::ddr3_1600(64);
    const auto r =
        runDestruction(dram, DestructionMechanism::Codic, cfg);
    EXPECT_EQ(r.counts.codic,
              static_cast<uint64_t>(dram.totalRows()));
    EXPECT_EQ(r.counts.act, 0u);
}

TEST(Destruction, CloneMechanismsUseActPerRow)
{
    DestructionConfig cfg;
    cfg.max_simulated_rows = 0;
    const DramConfig dram = DramConfig::ddr3_1600(64);
    const auto rc =
        runDestruction(dram, DestructionMechanism::RowClone, cfg);
    // One clone per destroyed row (all rows except the zero source),
    // one source ACT per copy plus the source-row initialization.
    const uint64_t copies =
        static_cast<uint64_t>(dram.totalRows() - dram.banks);
    EXPECT_EQ(rc.counts.rowclone, copies);
    EXPECT_EQ(rc.counts.act,
              copies + static_cast<uint64_t>(dram.banks));
    const auto lisa =
        runDestruction(dram, DestructionMechanism::LisaClone, cfg);
    EXPECT_EQ(lisa.counts.lisa_rbm, copies);
}

TEST(Destruction, PaperRatiosAt8GB)
{
    const DramConfig dram = DramConfig::ddr3_1600(8192);
    const auto codic =
        runDestruction(dram, DestructionMechanism::Codic);
    const auto rc =
        runDestruction(dram, DestructionMechanism::RowClone);
    const auto lisa =
        runDestruction(dram, DestructionMechanism::LisaClone);
    const auto tcg = runDestruction(dram, DestructionMechanism::Tcg);
    // Paper Section 6.2: 552.7x / 2.5x / 2.0x faster than
    // TCG / LISA-clone / RowClone.
    EXPECT_NEAR(rc.time_ns / codic.time_ns, 2.0, 0.3);
    EXPECT_NEAR(lisa.time_ns / codic.time_ns, 2.5, 0.4);
    EXPECT_GT(tcg.time_ns / codic.time_ns, 300.0);
    EXPECT_LT(tcg.time_ns / codic.time_ns, 800.0);
}

TEST(Destruction, PaperEnergyRatiosAt8GB)
{
    const DramConfig dram = DramConfig::ddr3_1600(8192);
    const auto codic =
        runDestruction(dram, DestructionMechanism::Codic);
    const auto rc =
        runDestruction(dram, DestructionMechanism::RowClone);
    const auto lisa =
        runDestruction(dram, DestructionMechanism::LisaClone);
    const auto tcg = runDestruction(dram, DestructionMechanism::Tcg);
    // Paper Section 6.2: 41.7x / 2.5x / 1.7x less energy.
    EXPECT_NEAR(tcg.energy_nj / codic.energy_nj, 41.7, 12.0);
    EXPECT_NEAR(lisa.energy_nj / codic.energy_nj, 2.5, 0.5);
    EXPECT_NEAR(rc.energy_nj / codic.energy_nj, 1.7, 0.35);
}

TEST(Destruction, TimeScalesLinearlyWithCapacity)
{
    const auto small = runDestruction(DramConfig::ddr3_1600(256),
                                      DestructionMechanism::Codic);
    const auto big = runDestruction(DramConfig::ddr3_1600(1024),
                                    DestructionMechanism::Codic);
    EXPECT_NEAR(big.time_ns / small.time_ns, 4.0, 0.2);
}

TEST(Destruction, ExtrapolationMatchesFullSimulation)
{
    const DramConfig dram = DramConfig::ddr3_1600(256);
    DestructionConfig full;
    full.max_simulated_rows = 0;
    DestructionConfig sampled;
    sampled.max_simulated_rows = 4096;
    const auto a =
        runDestruction(dram, DestructionMechanism::Codic, full);
    const auto b =
        runDestruction(dram, DestructionMechanism::Codic, sampled);
    EXPECT_FALSE(a.extrapolated);
    EXPECT_TRUE(b.extrapolated);
    EXPECT_NEAR(b.time_ns / a.time_ns, 1.0, 0.03);
    EXPECT_NEAR(b.energy_nj / a.energy_nj, 1.0, 0.03);
}

TEST(Destruction, CodicAbsoluteTimeNearPaperFor64MB)
{
    // Paper Fig. 7: ~60 us for a 64 MB module.
    const auto r = runDestruction(DramConfig::ddr3_1600(64),
                                  DestructionMechanism::Codic);
    EXPECT_NEAR(r.time_ns / 1e3, 60.0, 15.0);
}

TEST(Destruction, TcgAbsoluteTimeNearPaperFor64MB)
{
    // Paper Fig. 7: ~34 ms for a 64 MB module.
    const auto r = runDestruction(DramConfig::ddr3_1600(64),
                                  DestructionMechanism::Tcg);
    EXPECT_NEAR(r.time_ns / 1e6, 34.0, 8.0);
}

// --- Power-on FSM (Section 5.2.2). ---

TEST(PowerOnFsm, RampFromZeroTriggersDestruction)
{
    PowerOnFsm fsm(100);
    EXPECT_EQ(fsm.state(), PowerOnState::Off);
    fsm.observeVoltage(0.0);
    fsm.observeVoltage(1.5);
    EXPECT_EQ(fsm.state(), PowerOnState::Destructing);
    EXPECT_FALSE(fsm.acceptsCommands());
}

TEST(PowerOnFsm, LowVoltageAttackStillTriggers)
{
    // Operating at a reduced voltage does not evade the detector:
    // any ramp from 0 V triggers (paper Security Analysis).
    PowerOnFsm fsm(10);
    fsm.observeVoltage(0.0);
    fsm.observeVoltage(0.3); // Far below Vdd.
    EXPECT_EQ(fsm.state(), PowerOnState::Destructing);
}

TEST(PowerOnFsm, SubThresholdVoltageDoesNotPower)
{
    // Below the ramp threshold the DRAM is not operational anyway.
    PowerOnFsm fsm(10);
    fsm.observeVoltage(0.0);
    fsm.observeVoltage(0.01);
    EXPECT_EQ(fsm.state(), PowerOnState::Off);
}

TEST(PowerOnFsm, AtomicUntilDestructionCompletes)
{
    PowerOnFsm fsm(100);
    fsm.observeVoltage(0.0);
    fsm.observeVoltage(1.5);
    fsm.destructionProgress(99);
    EXPECT_FALSE(fsm.acceptsCommands());
    EXPECT_EQ(fsm.rowsRemaining(), 1);
    fsm.destructionProgress(1);
    EXPECT_TRUE(fsm.acceptsCommands());
    EXPECT_EQ(fsm.state(), PowerOnState::Ready);
}

TEST(PowerOnFsm, PowerCycleRearmsTheDetector)
{
    PowerOnFsm fsm(1);
    fsm.observeVoltage(0.0);
    fsm.observeVoltage(1.5);
    fsm.destructionProgress(1);
    EXPECT_TRUE(fsm.acceptsCommands());
    // Attacker pulls power and re-applies it: destruction re-arms.
    fsm.observeVoltage(0.0);
    EXPECT_EQ(fsm.state(), PowerOnState::Off);
    fsm.observeVoltage(1.0);
    EXPECT_EQ(fsm.state(), PowerOnState::Destructing);
}

TEST(PowerOnFsm, OverheatingKillsTheWholeChip)
{
    PowerOnFsm fsm(10);
    fsm.observeTemperature(200.0);
    EXPECT_EQ(fsm.state(), PowerOnState::Dead);
    fsm.observeVoltage(0.0);
    fsm.observeVoltage(1.5);
    EXPECT_EQ(fsm.state(), PowerOnState::Dead);
    EXPECT_FALSE(fsm.acceptsCommands());
}

// --- Ciphers (validated against published vectors). ---

TEST(ChaCha, Rfc7539KeystreamVector)
{
    std::array<uint8_t, 32> key;
    for (int i = 0; i < 32; ++i)
        key[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
    const std::array<uint8_t, 12> nonce = {0, 0, 0, 9, 0, 0, 0, 0x4a,
                                           0, 0, 0, 0};
    ChaCha chacha(key, nonce, 20);
    const auto block = chacha.block(1);
    const uint8_t expected[16] = {0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b,
                                  0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f,
                                  0xa3, 0x20, 0x71, 0xc4};
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(block[static_cast<size_t>(i)], expected[i])
            << "byte " << i;
}

TEST(ChaCha, EncryptDecryptRoundTrip)
{
    std::array<uint8_t, 32> key{};
    key[0] = 0xAB;
    const std::array<uint8_t, 12> nonce{};
    ChaCha chacha8(key, nonce, 8);
    std::vector<uint8_t> msg(1000);
    for (size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<uint8_t>(i * 7);
    const auto ct = chacha8.crypt(msg);
    EXPECT_NE(ct, msg);
    EXPECT_EQ(chacha8.crypt(ct), msg);
}

TEST(ChaCha, EightRoundsDiffersFromTwenty)
{
    const std::array<uint8_t, 32> key{};
    const std::array<uint8_t, 12> nonce{};
    EXPECT_NE(ChaCha(key, nonce, 8).block(1),
              ChaCha(key, nonce, 20).block(1));
}

TEST(Aes128, Fips197AppendixBVector)
{
    const std::array<uint8_t, 16> key = {0x2b, 0x7e, 0x15, 0x16, 0x28,
                                         0xae, 0xd2, 0xa6, 0xab, 0xf7,
                                         0x15, 0x88, 0x09, 0xcf, 0x4f,
                                         0x3c};
    const std::array<uint8_t, 16> pt = {0x32, 0x43, 0xf6, 0xa8, 0x88,
                                        0x5a, 0x30, 0x8d, 0x31, 0x31,
                                        0x98, 0xa2, 0xe0, 0x37, 0x07,
                                        0x34};
    const std::array<uint8_t, 16> expected = {
        0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
        0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
    EXPECT_EQ(Aes128(key).encryptBlock(pt), expected);
}

TEST(Aes128, Fips197AppendixCVector)
{
    std::array<uint8_t, 16> key;
    std::array<uint8_t, 16> pt;
    for (int i = 0; i < 16; ++i) {
        key[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
        pt[static_cast<size_t>(i)] =
            static_cast<uint8_t>(i * 16 + i); // 00 11 22 ... ff
    }
    const std::array<uint8_t, 16> expected = {
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
        0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
    EXPECT_EQ(Aes128(key).encryptBlock(pt), expected);
}

TEST(Aes128, CtrModeRoundTrip)
{
    std::array<uint8_t, 16> key{};
    key[3] = 0x42;
    std::array<uint8_t, 16> iv{};
    Aes128 aes(key);
    std::vector<uint8_t> msg(333);
    for (size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<uint8_t>(i);
    const auto ct = aes.ctrCrypt(iv, msg);
    EXPECT_NE(ct, msg);
    EXPECT_EQ(aes.ctrCrypt(iv, ct), msg);
}

// --- Table 6 overhead model. ---

TEST(Overhead, CodicHasZeroRuntimeAndOnlyDramArea)
{
    const auto row = computeOverhead(ColdBootDefense::CodicSelfDestruct);
    EXPECT_DOUBLE_EQ(row.runtime_perf_pct, 0.0);
    EXPECT_DOUBLE_EQ(row.runtime_power_pct, 0.0);
    EXPECT_DOUBLE_EQ(row.cpu_area_pct, 0.0);
    // Paper: ~1.1 % DRAM area (the Section 4.2.1 delay elements).
    EXPECT_NEAR(row.dram_area_pct, 1.1, 0.1);
}

TEST(Overhead, ChaCha8MatchesPaperRow)
{
    const auto row = computeOverhead(ColdBootDefense::ChaCha8);
    EXPECT_NEAR(row.runtime_power_pct, 17.0, 1.0);
    EXPECT_NEAR(row.cpu_area_pct, 0.9, 0.1);
    EXPECT_DOUBLE_EQ(row.dram_area_pct, 0.0);
}

TEST(Overhead, Aes128MatchesPaperRow)
{
    const auto row = computeOverhead(ColdBootDefense::Aes128);
    EXPECT_NEAR(row.runtime_power_pct, 12.0, 1.0);
    EXPECT_NEAR(row.cpu_area_pct, 1.3, 0.1);
    EXPECT_DOUBLE_EQ(row.dram_area_pct, 0.0);
}

TEST(Overhead, AllRuntimePerfOverheadsAreZero)
{
    for (auto d : {ColdBootDefense::CodicSelfDestruct,
                   ColdBootDefense::ChaCha8, ColdBootDefense::Aes128})
        EXPECT_DOUBLE_EQ(computeOverhead(d).runtime_perf_pct, 0.0);
}

} // namespace
} // namespace codic
