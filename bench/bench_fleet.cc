/**
 * @file
 * Fleet subsystem kernels: the fleet_mixed serving scenario through
 * the registry, plus microbenchmarks of the hot paths - enrollment,
 * store lookup (cache hit and decode miss), binary round-trip, and
 * end-to-end authentication throughput.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "fleet/auth_service.h"
#include "fleet/device_fleet.h"
#include "fleet/enrollment_store.h"
#include "scenario_main.h"

namespace {

using namespace codic;

FleetConfig
benchFleetConfig(uint64_t devices, int shards)
{
    FleetConfig fc;
    fc.population_seed = 7;
    fc.devices = devices;
    fc.shards = shards;
    fc.dram = DramConfig::ddr3_1600(256, 1);
    return fc;
}

void
BM_FleetEnroll(benchmark::State &state)
{
    for (auto _ : state) {
        DeviceFleet fleet(benchFleetConfig(64, 4));
        EnrollmentStore store(fleet.config().population_seed);
        AuthConfig ac;
        ac.threads = 1;
        AuthService service(fleet, store, ac);
        service.enrollAll();
        benchmark::DoNotOptimize(store.size());
    }
}
BENCHMARK(BM_FleetEnroll)->Unit(benchmark::kMillisecond);

void
BM_StoreLookupHit(benchmark::State &state)
{
    DeviceFleet fleet(benchFleetConfig(32, 1));
    EnrollmentStore store(fleet.config().population_seed);
    AuthConfig ac;
    ac.threads = 1;
    AuthService service(fleet, store, ac);
    service.enrollAll();
    store.lookup(5); // Warm the cache.
    for (auto _ : state)
        benchmark::DoNotOptimize(store.lookup(5));
}
BENCHMARK(BM_StoreLookupHit);

void
BM_StoreLookupDecodeMiss(benchmark::State &state)
{
    DeviceFleet fleet(benchFleetConfig(32, 1));
    // Capacity-1 cache: alternating lookups always decode.
    EnrollmentStore store(fleet.config().population_seed, 1);
    AuthConfig ac;
    ac.threads = 1;
    AuthService service(fleet, store, ac);
    service.enrollAll();
    uint64_t id = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.lookup(id));
        id = (id + 1) % 2;
    }
}
BENCHMARK(BM_StoreLookupDecodeMiss);

void
BM_StoreBinaryRoundTrip(benchmark::State &state)
{
    DeviceFleet fleet(benchFleetConfig(128, 4));
    EnrollmentStore store(fleet.config().population_seed);
    AuthConfig ac;
    ac.threads = 1;
    AuthService service(fleet, store, ac);
    service.enrollAll();
    for (auto _ : state) {
        std::ostringstream out;
        store.saveBinary(out);
        std::istringstream in(out.str());
        benchmark::DoNotOptimize(EnrollmentStore::loadBinary(in));
    }
}
BENCHMARK(BM_StoreBinaryRoundTrip)->Unit(benchmark::kMillisecond);

void
BM_AuthThroughput(benchmark::State &state)
{
    DeviceFleet fleet(
        benchFleetConfig(64, static_cast<int>(state.range(0))));
    EnrollmentStore store(fleet.config().population_seed);
    AuthService service(fleet, store, {});
    service.enrollAll();
    TrafficConfig tc;
    tc.requests = 512;
    tc.zipf = 0.9;
    const auto stream = RequestGenerator(tc, 64).generate();
    for (auto _ : state)
        benchmark::DoNotOptimize(service.execute(stream));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_AuthThroughput)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ZipfSample(benchmark::State &state)
{
    TrafficConfig tc;
    tc.requests = 10000;
    tc.zipf = 0.99;
    const RequestGenerator gen(tc, 1000000);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.generate());
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ZipfSample)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"fleet_mixed", "fleet_scaling"},
                                    argc, argv);
}
