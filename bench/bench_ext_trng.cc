/**
 * @file
 * Extension (paper Section 5.3.1): a CODIC-based True Random Number
 * Generator. Enrolls the metastable sense-amplifier population,
 * harvests Von Neumann-whitened bits under the SP 800-90B continuous
 * health tests, reports throughput, and runs the NIST battery on the
 * output.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.h"
#include "nist/tests.h"
#include "trng/trng.h"

namespace {

using namespace codic;

void
printExtension()
{
    std::printf("=== Extension: CODIC-based TRNG (Section 5.3.1) "
                "===\n");

    TextTable t({"Window (x noise RMS)", "Sources / 8KB segment",
                 "Raw Mb/s", "Whitened Mb/s"});
    for (double window : {0.5, 1.0, 2.0}) {
        TrngConfig cfg;
        cfg.metastable_window = window;
        CodicTrng trng(cfg);
        t.addRow({fmt(window, 1),
                  std::to_string(trng.sources().size()),
                  fmt(trng.rawThroughputBitsPerSec() / 1e6, 1),
                  fmt(trng.whitenedThroughputBitsPerSec() / 1e6, 1)});
    }
    std::printf("%s", t.render().c_str());

    std::printf("\n--- Quality: NIST battery on 1 Mb of whitened "
                "output ---\n");
    TrngConfig cfg;
    CodicTrng trng(cfg);
    Rng noise(2026);
    TrngHealthTests health;
    const auto bits = trng.harvest(1 << 20, noise, &health);
    std::printf("health tests (SP 800-90B repetition + adaptive "
                "proportion): %s over %llu raw bits\n",
                health.failed() ? "FAILED" : "clean",
                static_cast<unsigned long long>(health.observed()));
    const auto results = runNistSuite(bits);
    int pass = 0;
    int applicable = 0;
    TextTable n({"NIST test", "p-value", "Result"});
    for (const auto &r : results) {
        n.addRow({r.name, r.applicable ? fmt(r.p_value, 4) : "-",
                  r.applicable ? (r.pass() ? "PASS" : "FAIL") : "N/A"});
        if (r.applicable) {
            ++applicable;
            pass += r.pass() ? 1 : 0;
        }
    }
    std::printf("%s%d/%d applicable tests pass\n", n.render().c_str(),
                pass, applicable);
    std::printf(
        "\nContrast with D-RaNGe-class TRNGs (paper Section 5.3.1):\n"
        "those trigger failures by violating DDRx timings without\n"
        "knowing the internal failure mechanism; CODIC pins the\n"
        "mechanism (SA metastability at the trip point) and harvests\n"
        "it directly with one command per sample.\n");
}

void
BM_TrngHarvest(benchmark::State &state)
{
    TrngConfig cfg;
    CodicTrng trng(cfg);
    Rng noise(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(trng.harvest(4096, noise));
}
BENCHMARK(BM_TrngHarvest);

void
BM_TrngEnrollment(benchmark::State &state)
{
    TrngConfig cfg;
    for (auto _ : state) {
        cfg.device_seed++;
        benchmark::DoNotOptimize(CodicTrng(cfg));
    }
}
BENCHMARK(BM_TrngEnrollment)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printExtension();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
