/**
 * @file
 * Extension (Section 5.3.1): the CODIC-based TRNG. Thin wrapper over
 * the `trng_characterization` scenario, plus harvest/enrollment
 * microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "scenario_main.h"
#include "trng/trng.h"

namespace {

using namespace codic;

void
BM_TrngHarvest(benchmark::State &state)
{
    TrngConfig cfg;
    CodicTrng trng(cfg);
    Rng noise(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(trng.harvest(4096, noise));
}
BENCHMARK(BM_TrngHarvest);

void
BM_TrngEnrollment(benchmark::State &state)
{
    TrngConfig cfg;
    for (auto _ : state) {
        cfg.run.seed++;
        benchmark::DoNotOptimize(CodicTrng(cfg));
    }
}
BENCHMARK(BM_TrngEnrollment)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"trng_characterization"}, argc, argv);
}
