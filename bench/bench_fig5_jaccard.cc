/**
 * @file
 * Paper Figure 5 (Jaccard distributions), Section 6.1 coverage, the
 * naive authentication rates, and the campaign-engine scaling check:
 * thin wrapper over the `puf_fig5_jaccard`, `puf_coverage`,
 * `puf_auth`, and `ablation_engine_parallelism` scenarios, plus
 * evaluation/campaign microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "puf/experiments.h"
#include "puf/sig_puf.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_SigPufEvaluation(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    const CodicSigPuf sig;
    Challenge ch{7, 65536};
    uint64_t nonce = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sig.evaluateFiltered(chips[0], ch, {30.0, false, ++nonce}));
    }
}
BENCHMARK(BM_SigPufEvaluation);

void
BM_JaccardCampaign1k(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    const CodicSigPuf sig;
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    for (auto _ : state) {
        JaccardCampaignConfig cfg;
        cfg.pairs = 1000;
        cfg.run.threads = 1;
        benchmark::DoNotOptimize(runJaccardCampaign(sig, all, cfg));
    }
}
BENCHMARK(BM_JaccardCampaign1k)->Unit(benchmark::kMillisecond);

void
BM_JaccardCampaign1kThreaded(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    const CodicSigPuf sig;
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    for (auto _ : state) {
        JaccardCampaignConfig cfg;
        cfg.pairs = 1000;
        cfg.run.threads = static_cast<int>(state.range(0));
        benchmark::DoNotOptimize(runJaccardCampaign(sig, all, cfg));
    }
}
BENCHMARK(BM_JaccardCampaign1kThreaded)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"puf_fig5_jaccard", "puf_coverage", "puf_auth", "ablation_engine_parallelism"}, argc, argv);
}
