/**
 * @file
 * Reproduces paper Figure 5: Intra- and Inter-Jaccard index
 * distributions for the DRAM Latency PUF, PreLatPUF, and CODIC-sig
 * PUF over the 64 DDR3 (1.5 V) and 72 DDR3L (1.35 V) chips, plus the
 * Section 6.1 coverage statistics and the naive exact-match
 * authentication rates.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "common/stats.h"
#include "common/table.h"
#include "puf/experiments.h"
#include "puf/latency_puf.h"
#include "puf/prelat_puf.h"
#include "puf/sig_puf.h"

namespace {

using namespace codic;

std::string
histLine(const std::vector<double> &values)
{
    Histogram h(0.0, 1.0 + 1e-9, 25);
    for (double v : values)
        h.add(v);
    return h.ascii();
}

void
printFigure5()
{
    std::printf("=== Figure 5: Jaccard indices, 10,000 pairs per "
                "distribution, 8 KB segments ===\n");
    const auto chips = buildPaperPopulation();
    const CodicSigPuf sig;
    const DramLatencyPuf lat;
    const PrelatPuf pre;
    const std::vector<std::pair<const DramPuf *, const char *>> pufs = {
        {&lat, "DRAM Latency PUF"},
        {&pre, "PreLatPUF"},
        {&sig, "CODIC-sig PUF"},
    };

    for (bool ddr3l : {false, true}) {
        const auto subset = filterByVoltage(chips, ddr3l);
        std::printf("\n--- %s (%zu chips) ---\n",
                    ddr3l ? "DDR3L 1.35V" : "DDR3 1.50V",
                    subset.size());
        TextTable t({"PUF", "Intra mean", "Intra p5", "Inter mean",
                     "Inter p95", "Intra hist [0..1]",
                     "Inter hist [0..1]"});
        for (const auto &[puf, name] : pufs) {
            JaccardCampaignConfig cfg;
            cfg.pairs = 10000;
            const auto r = runJaccardCampaign(*puf, subset, cfg);
            t.addRow({name, fmt(r.intraStats().mean(), 3),
                      fmt(percentile(r.intra, 5.0), 3),
                      fmt(r.interStats().mean(), 3),
                      fmt(percentile(r.inter, 95.0), 3),
                      histLine(r.intra), histLine(r.inter)});
        }
        std::printf("%s", t.render().c_str());
    }

    std::printf("\n=== Section 6.1: methodology coverage ===\n");
    const CoverageStats cov = coverageStats(chips);
    std::printf("CODIC value coverage across chips: %.0f%% - %.0f%% "
                "(paper: 34%% - 99%%)\n",
                cov.min_coverage * 100.0, cov.max_coverage * 100.0);
    std::printf("flip-cell fraction across chips:   %.3f%% - %.3f%% "
                "(paper: 0.01%% - 0.22%%)\n",
                cov.min_flip_fraction * 100.0,
                cov.max_flip_fraction * 100.0);

    std::printf("\n=== Section 6.1.1: naive exact-match authentication "
                "===\n");
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    const AuthRates rates = runAuthCampaign(sig, all, 10000, 21);
    std::printf("false rejection rate:  %.2f%% (paper: 0.64%%)\n",
                rates.false_rejection * 100.0);
    std::printf("false acceptance rate: %.2f%% (paper: 0.00%%)\n",
                rates.false_acceptance * 100.0);
}

/**
 * Campaign-engine scaling: the Fig. 5 campaign at 1..8 threads, with
 * a bit-identical-result check against the sequential path (the
 * engine's determinism contract).
 */
void
printParallelScaling()
{
    std::printf("\n=== Campaign engine: Fig. 5 campaign scaling ===\n");
    const auto chips = buildPaperPopulation();
    const CodicSigPuf sig;
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);

    JaccardCampaignConfig cfg;
    cfg.pairs = 10000;

    auto timed = [&](int threads, JaccardCampaignResult *out) {
        cfg.threads = threads;
        const auto t0 = std::chrono::steady_clock::now();
        *out = runJaccardCampaign(sig, all, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::milli>(t1 - t0)
            .count();
    };

    JaccardCampaignResult sequential;
    const double ms1 = timed(1, &sequential);
    TextTable t({"threads", "wall (ms)", "speedup", "bit-identical"});
    t.addRow({"1", fmt(ms1, 1), "1.00", "reference"});
    for (int threads : {2, 4, 8}) {
        JaccardCampaignResult parallel;
        const double ms = timed(threads, &parallel);
        const bool identical = parallel.intra == sequential.intra &&
                               parallel.inter == sequential.inter;
        t.addRow({std::to_string(threads), fmt(ms, 1),
                  fmt(ms1 / ms, 2), identical ? "yes" : "NO"});
        if (!identical)
            std::printf("ERROR: parallel campaign diverged from the "
                        "sequential path at %d threads\n",
                        threads);
    }
    std::printf("%s", t.render().c_str());
    std::printf("(speedup tracks the physical cores of this host; "
                "results are\n bit-identical at every thread count "
                "by construction)\n");
}

void
BM_SigPufEvaluation(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    const CodicSigPuf sig;
    Challenge ch{7, 65536};
    uint64_t nonce = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sig.evaluateFiltered(chips[0], ch, {30.0, false, ++nonce}));
    }
}
BENCHMARK(BM_SigPufEvaluation);

void
BM_JaccardCampaign1k(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    const CodicSigPuf sig;
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    for (auto _ : state) {
        JaccardCampaignConfig cfg;
        cfg.pairs = 1000;
        benchmark::DoNotOptimize(runJaccardCampaign(sig, all, cfg));
    }
}
BENCHMARK(BM_JaccardCampaign1k)->Unit(benchmark::kMillisecond);

void
BM_JaccardCampaign1kThreaded(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    const CodicSigPuf sig;
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    for (auto _ : state) {
        JaccardCampaignConfig cfg;
        cfg.pairs = 1000;
        cfg.threads = static_cast<int>(state.range(0));
        benchmark::DoNotOptimize(runJaccardCampaign(sig, all, cfg));
    }
}
BENCHMARK(BM_JaccardCampaign1kThreaded)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure5();
    printParallelScaling();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
