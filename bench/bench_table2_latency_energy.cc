/**
 * @file
 * Reproduces paper Table 2: latency and energy of the five CODIC
 * command variants (CODIC-activate, CODIC-precharge, CODIC-sig,
 * CODIC-sig-opt, CODIC-det).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "codic/variant.h"
#include "common/table.h"
#include "power/energy_model.h"

namespace {

using namespace codic;

struct PaperRow
{
    const char *name;
    CodicVariant variant;
    double paper_latency_ns;
    double paper_energy_nj;
};

std::vector<PaperRow>
paperRows()
{
    return {
        {"CODIC-activate", variants::activate(), 35.0, 17.3},
        {"CODIC-precharge", variants::precharge(), 13.0, 17.2},
        {"CODIC-sig", variants::sig(), 35.0, 17.2},
        {"CODIC-sig-opt", variants::sigOpt(), 13.0, 17.2},
        {"CODIC-det", variants::detZero(), 35.0, 17.2},
    };
}

void
printTable2()
{
    std::printf("=== Table 2: Latency and energy of five CODIC command "
                "variants ===\n");
    TextTable t({"Primitive", "Latency (ns)", "Paper", "Energy (nJ)",
                 "Paper"});
    for (const auto &row : paperRows()) {
        t.addRow({row.name,
                  fmt(variantLatencyNs(row.variant.schedule), 0),
                  fmt(row.paper_latency_ns, 0),
                  fmt(variantEnergyNj(row.variant.schedule), 1),
                  fmt(row.paper_energy_nj, 1)});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "\nObservations (Section 4.3):\n"
        "  - CODIC-sig-opt is %.1fx faster than CODIC-sig\n"
        "  - energies are within %.1f%% of each other (routing ~40%%\n"
        "    and array operation ~40%% dominate every command)\n",
        variantLatencyNs(variants::sig().schedule) /
            variantLatencyNs(variants::sigOpt().schedule),
        (variantEnergyNj(variants::activate().schedule) /
             variantEnergyNj(variants::sig().schedule) -
         1.0) * 100.0);
}

void
BM_VariantLatency(benchmark::State &state)
{
    const auto sched = variants::detZero().schedule;
    for (auto _ : state)
        benchmark::DoNotOptimize(variantLatencyNs(sched));
}
BENCHMARK(BM_VariantLatency);

void
BM_VariantEnergy(benchmark::State &state)
{
    const auto sched = variants::detZero().schedule;
    for (auto _ : state)
        benchmark::DoNotOptimize(variantEnergyNj(sched));
}
BENCHMARK(BM_VariantEnergy);

} // namespace

int
main(int argc, char **argv)
{
    printTable2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
