/**
 * @file
 * Paper Table 2 (latency and energy of the CODIC variants): thin
 * wrapper over the `circuit_table2_latency_energy` scenario, plus
 * model microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "codic/variant.h"
#include "power/energy_model.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_VariantLatency(benchmark::State &state)
{
    const auto sched = variants::detZero().schedule;
    for (auto _ : state)
        benchmark::DoNotOptimize(variantLatencyNs(sched));
}
BENCHMARK(BM_VariantLatency);

void
BM_VariantEnergy(benchmark::State &state)
{
    const auto sched = variants::detZero().schedule;
    for (auto _ : state)
        benchmark::DoNotOptimize(variantEnergyNj(sched));
}
BENCHMARK(BM_VariantEnergy);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"circuit_table2_latency_energy"}, argc, argv);
}
