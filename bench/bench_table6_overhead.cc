/**
 * @file
 * Paper Table 6 (overhead vs memory encryption): thin wrapper over
 * the `coldboot_table6_overhead` scenario, plus cipher-throughput
 * microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "coldboot/ciphers.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_ChaCha8Throughput(benchmark::State &state)
{
    std::array<uint8_t, 32> key{};
    key[0] = 1;
    ChaCha chacha8(key, {}, 8);
    std::vector<uint8_t> buf(65536, 0x5A);
    for (auto _ : state)
        benchmark::DoNotOptimize(chacha8.crypt(buf));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_ChaCha8Throughput);

void
BM_Aes128Throughput(benchmark::State &state)
{
    std::array<uint8_t, 16> key{};
    key[0] = 2;
    Aes128 aes(key);
    std::vector<uint8_t> buf(16384, 0x5A);
    for (auto _ : state)
        benchmark::DoNotOptimize(aes.ctrCrypt({}, buf));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_Aes128Throughput);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"coldboot_table6_overhead"}, argc, argv);
}
