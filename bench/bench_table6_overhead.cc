/**
 * @file
 * Reproduces paper Table 6: runtime performance, runtime power, and
 * area overhead of CODIC self-destruction vs. ChaCha-8 and AES-128
 * memory encryption on an Intel Atom N280-class platform, plus a
 * functional sanity run of both reference ciphers.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "coldboot/ciphers.h"
#include "coldboot/overhead_model.h"
#include "common/table.h"

namespace {

using namespace codic;

void
printTable6()
{
    std::printf("=== Table 6: Overhead of CODIC self-destruction vs "
                "two encryption mechanisms (Atom N280 class) ===\n");
    TextTable t({"Mechanism", "Runtime perf", "Runtime power",
                 "CPU area", "DRAM area"});
    for (auto d : {ColdBootDefense::CodicSelfDestruct,
                   ColdBootDefense::ChaCha8, ColdBootDefense::Aes128}) {
        const auto row = computeOverhead(d);
        t.addRow({coldBootDefenseName(d),
                  "~" + fmt(row.runtime_perf_pct, 0) + " %",
                  "~" + fmt(row.runtime_power_pct, 0) + " %",
                  "~" + fmt(row.cpu_area_pct, 1) + " %",
                  "~" + fmt(row.dram_area_pct, 1) + " %"});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "(paper row order: CODIC ~0/~0/0.0/1.1; ChaCha-8 ~0/~17/0.9/0;"
        " AES-128 ~0/~12/1.3/0)\n"
        "AES-128 perf stays ~0%% assuming <=16 back-to-back row "
        "hits.\n");

    std::printf("\n=== Cipher functional sanity ===\n");
    std::array<uint8_t, 32> ckey{};
    ckey[0] = 1;
    ChaCha chacha8(ckey, {}, 8);
    std::vector<uint8_t> msg(4096, 0xA5);
    const auto ct = chacha8.crypt(msg);
    std::printf("ChaCha-8 round trip: %s\n",
                chacha8.crypt(ct) == msg ? "OK" : "BROKEN");

    std::array<uint8_t, 16> akey{};
    akey[0] = 2;
    Aes128 aes(akey);
    const auto act = aes.ctrCrypt({}, msg);
    std::printf("AES-128 CTR round trip: %s\n",
                aes.ctrCrypt({}, act) == msg ? "OK" : "BROKEN");
}

void
BM_ChaCha8Throughput(benchmark::State &state)
{
    std::array<uint8_t, 32> key{};
    key[0] = 1;
    ChaCha chacha8(key, {}, 8);
    std::vector<uint8_t> buf(65536, 0x5A);
    for (auto _ : state)
        benchmark::DoNotOptimize(chacha8.crypt(buf));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_ChaCha8Throughput);

void
BM_Aes128Throughput(benchmark::State &state)
{
    std::array<uint8_t, 16> key{};
    key[0] = 2;
    Aes128 aes(key);
    std::vector<uint8_t> buf(16384, 0x5A);
    for (auto _ : state)
        benchmark::DoNotOptimize(aes.ctrCrypt({}, buf));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_Aes128Throughput);

} // namespace

int
main(int argc, char **argv)
{
    printTable6();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
