/**
 * @file
 * Ablation: the CODIC-sig-opt early-termination optimization
 * (Section 4.1.1). Sweeps the wl/EQ deassert time and reports the
 * residual capacitor error vs. Vdd/2, the bank-occupancy latency,
 * and the end-to-end PUF evaluation impact, showing why terminating
 * at 11 ns is safe (the capacitor settles almost immediately after
 * EQ asserts).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "circuit/analog.h"
#include "codic/variant.h"
#include "common/table.h"
#include "puf/response_time.h"

namespace {

using namespace codic;

void
printAblation()
{
    std::printf("=== Ablation: CODIC-sig early termination ===\n");
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};

    TextTable t({"wl/EQ deassert (ns)", "Bank occupancy (ns)",
                 "|V_cell - Vdd/2| stored '1' (mV)",
                 "stored '0' (mV)"});
    for (int end : {9, 10, 11, 13, 16, 22}) {
        SignalSchedule s;
        s.set(Signal::Wl, 5, end);
        s.set(Signal::Eq, 7, end);

        double err[2];
        int idx = 0;
        for (double init : {params.vdd, 0.0}) {
            CellCircuit cell(params, nominal);
            cell.setCellVoltage(init);
            cell.run(s, 30.0);
            err[idx++] =
                std::fabs(cell.cellVoltage() - params.vHalf()) * 1e3;
        }
        t.addRow({std::to_string(end), fmt(variantLatencyNs(s), 0),
                  fmt(err[0], 2), fmt(err[1], 2)});
    }
    std::printf("%s", t.render().c_str());

    std::printf("\nEnd-to-end effect on PUF evaluation (native "
                "command-level):\n");
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    const auto sig = evaluationTime(PufKind::CodicSig, true, cfg);
    const auto opt = evaluationTime(PufKind::CodicSigOpt, true, cfg);
    std::printf("  CODIC-sig:     %s per filtered evaluation\n",
                fmtTimeNs(sig.native_ns).c_str());
    std::printf("  CODIC-sig-opt: %s per filtered evaluation "
                "(%.1f%% faster)\n",
                fmtTimeNs(opt.native_ns).c_str(),
                (sig.native_ns / opt.native_ns - 1.0) * 100.0);
    std::printf("\nConclusion: by 11 ns the capacitor error is "
                "sub-millivolt, so the 13 ns\nsig-opt command (vs 35 "
                "ns) loses no reliability (paper Section 4.1.1).\n");
}

void
BM_SigOptTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        benchmark::DoNotOptimize(
            cell.run(variants::sigOpt().schedule, 16.0));
    }
}
BENCHMARK(BM_SigOptTransient);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
