/**
 * @file
 * Ablation: the CODIC-sig-opt early-termination optimization
 * (Section 4.1.1). Thin wrapper over the `circuit_ablation_sig_opt`
 * scenario, plus a transient microbenchmark.
 */

#include <benchmark/benchmark.h>

#include "circuit/analog.h"
#include "codic/variant.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_SigOptTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        benchmark::DoNotOptimize(
            cell.run(variants::sigOpt().schedule, 16.0));
    }
}
BENCHMARK(BM_SigOptTransient);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"circuit_ablation_sig_opt"}, argc, argv);
}
