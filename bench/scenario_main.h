/**
 * @file
 * Shared main() for the bench binaries, which since the Scenario API
 * redesign are thin wrappers over the scenario registry: each binary
 * runs its paper figure/table scenarios through the registry (the
 * same code path as `codic_run --scenario <name>`), then runs its
 * google-benchmark microbenchmarks of the underlying kernels.
 *
 * Environment overrides (all optional):
 *   CODIC_SEED, CODIC_THREADS, CODIC_SCALE - forwarded to RunOptions.
 */

#ifndef CODIC_BENCH_SCENARIO_MAIN_H
#define CODIC_BENCH_SCENARIO_MAIN_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <iostream>

#include "common/result_sink.h"
#include "scenario/registry.h"

namespace codic {

inline int
scenarioBenchMain(std::initializer_list<const char *> scenarios,
                  int argc, char **argv)
{
    RunOptions options;
    options.emit_timings = true;
    if (const char *seed = std::getenv("CODIC_SEED"))
        options.seed = std::strtoull(seed, nullptr, 10);
    if (const char *threads = std::getenv("CODIC_THREADS"))
        options.threads =
            static_cast<int>(std::strtol(threads, nullptr, 10));
    if (const char *scale = std::getenv("CODIC_SCALE")) {
        char *end = nullptr;
        options.scale = std::strtod(scale, &end);
        // Reject out-of-contract values here with a readable message
        // (RunOptions::validate()/scaled() would otherwise throw on
        // the bad value deep inside the first campaign).
        if (end == scale || *end != '\0' || options.scale <= 0.0 ||
            options.scale > 1.0) {
            std::fprintf(stderr,
                         "CODIC_SCALE='%s' is not in (0, 1]\n",
                         scale);
            return 1;
        }
    }

    TextResultSink sink(std::cout);
    for (const char *name : scenarios) {
        if (!runScenario(name, options, sink)) {
            std::fprintf(stderr, "unknown scenario '%s'\n", name);
            return 1;
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

} // namespace codic

#endif // CODIC_BENCH_SCENARIO_MAIN_H
