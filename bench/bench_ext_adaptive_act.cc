/**
 * @file
 * Extension (paper Section 5.3.2): custom DRAM latency optimization.
 * Characterizes per-instance charge-sharing speed with the circuit
 * model (the "Accurate DRAM Characterization" use case), builds a
 * per-row activation-gap profile, and measures the row-miss read
 * latency reduction from activating strong rows with faster
 * activation-class CODIC commands.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.h"
#include "optim/adaptive_act.h"

namespace {

using namespace codic;

void
printExtension()
{
    const CircuitParams params = CircuitParams::ddr3();

    std::printf("=== Extension: per-row reduced activation latency "
                "(Section 5.3.2) ===\n");
    std::printf("\n--- Circuit characterization: column-ready time vs "
                "device strength ---\n");
    TextTable c({"Access-transistor strength", "Column-ready (ns)",
                 "vs worst-case tRCD (13.75 ns)"});
    for (double rel : {-0.60, -0.30, 0.0, 0.25}) {
        VariationDraw draw;
        draw.access_rel = rel;
        const double ready = columnReadyNs(params, draw);
        char label[32];
        std::snprintf(label, sizeof(label), "%+.0f %% conductance",
                      rel * 100.0);
        c.addRow({label, fmt(ready, 1),
                  fmt((1.0 - ready /
                                 RowReadyProfile::kNominalReadyNs) *
                          100.0,
                      0) + " % faster"});
    }
    std::printf("%s", c.render().c_str());

    std::printf("\n--- Device profile (hash-derived rows, "
                "characterized deciles, 1 ns guardband) ---\n");
    RowReadyProfile profile(params, 42);
    const auto s = profile.summarize(8, 65536);
    std::printf("mean ready %.1f ns, range [%.1f, %.1f] ns, %.0f%% of "
                "rows at least 1 ns under tRCD\n",
                s.mean_ready_ns, s.min_ready_ns, s.max_ready_ns,
                s.frac_fast * 100.0);

    std::printf("\n--- System effect: row-miss read latency "
                "(ACT->data), 2000 random activations ---\n");
    const auto r = evaluateAdaptiveActivation(params, 42, 2000, 11);
    TextTable t({"Mode", "Avg ACT->data (ns)"});
    t.addRow({"fixed worst-case timing (tRCD)",
              fmt(r.baseline_avg_read_ns, 1)});
    t.addRow({"per-row CODIC activation",
              fmt(r.adaptive_avg_read_ns, 1)});
    std::printf("%s", t.render().c_str());
    std::printf("row-miss critical-path speedup: %.1f%%\n",
                r.speedup * 100.0);
    std::printf(
        "\nThis is the class of optimization the paper argues fixed\n"
        "internal timings forbid: prior works could only shrink the\n"
        "external tRCD blindly; with CODIC the controller knows the\n"
        "internal wl->sense state and can count data-ready from the\n"
        "characterized crossing time, safely per row.\n");
}

void
BM_Characterization(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    for (auto _ : state) {
        VariationDraw draw;
        benchmark::DoNotOptimize(columnReadyNs(params, draw));
    }
}
BENCHMARK(BM_Characterization)->Unit(benchmark::kMillisecond);

void
BM_AdaptiveEvaluation(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateAdaptiveActivation(params, 42, 200, 11));
    }
}
BENCHMARK(BM_AdaptiveEvaluation)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    printExtension();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
