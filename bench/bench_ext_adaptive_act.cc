/**
 * @file
 * Extension (Section 5.3.2): custom DRAM latency optimization. Thin
 * wrapper over the `ext_adaptive_act` scenario, plus
 * characterization/evaluation microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "optim/adaptive_act.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_Characterization(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    for (auto _ : state) {
        VariationDraw draw;
        benchmark::DoNotOptimize(columnReadyNs(params, draw));
    }
}
BENCHMARK(BM_Characterization)->Unit(benchmark::kMillisecond);

void
BM_AdaptiveEvaluation(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateAdaptiveActivation(params, 42, 200, 11));
    }
}
BENCHMARK(BM_AdaptiveEvaluation)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"ext_adaptive_act"}, argc, argv);
}
