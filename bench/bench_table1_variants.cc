/**
 * @file
 * Paper Table 1 (signal timings, variant space, circuit costs, mode
 * -register encoding): thin wrapper over the `circuit_table1_variants`
 * scenario, plus classification/encoding microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "codic/mode_regs.h"
#include "codic/variant.h"
#include "common/rng.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_ClassifyRandomSchedules(benchmark::State &state)
{
    Rng rng(9);
    std::vector<SignalSchedule> schedules;
    for (int i = 0; i < 1024; ++i) {
        SignalSchedule s;
        for (size_t sig = 0; sig < kNumSignals; ++sig) {
            if (rng.chance(0.7)) {
                const int start = static_cast<int>(rng.below(24));
                const int end =
                    start + 1 +
                    static_cast<int>(rng.below(
                        static_cast<uint64_t>(24 - start)));
                s.set(static_cast<Signal>(sig), start, end);
            }
        }
        schedules.push_back(s);
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            classifySchedule(schedules[i++ & 1023]));
    }
}
BENCHMARK(BM_ClassifyRandomSchedules);

void
BM_ModeRegisterRoundTrip(benchmark::State &state)
{
    const auto sched = variants::detZero().schedule;
    for (auto _ : state) {
        ModeRegisterFile mrf;
        mrf.program(sched);
        benchmark::DoNotOptimize(mrf.decode());
    }
}
BENCHMARK(BM_ModeRegisterRoundTrip);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"circuit_table1_variants"}, argc, argv);
}
