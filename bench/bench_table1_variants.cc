/**
 * @file
 * Reproduces paper Table 1 (signal timings of the named commands),
 * the Section 4.1.3 variant-space count (300^4), and the Section
 * 4.2.1 CODIC circuit costs (delay-element area, energy, and DDRx
 * path penalty).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuit/delay_element.h"
#include "codic/mode_regs.h"
#include "codic/variant.h"
#include "common/rng.h"
#include "common/table.h"

namespace {

using namespace codic;

void
printTable1()
{
    std::printf("=== Table 1: In-DRAM signals of activation, precharge, "
                "and the CODIC variants ===\n");
    TextTable t({"Command", "Class", "Signals [init,end] (ns)"});
    for (const auto &v : variants::all()) {
        t.addRow({v.name, variantClassName(v.classify()),
                  v.schedule.str()});
    }
    std::printf("%s", t.render().c_str());

    std::printf("\n=== Section 4.1.3: variant space ===\n");
    std::printf("valid pulses per signal (w=25, s=1 ns): %llu "
                "(paper: 300)\n",
                static_cast<unsigned long long>(
                    SignalSchedule::pulsesPerSignal()));
    std::printf("total CODIC variants (4 signals):       %llu "
                "(paper: 300^4 = 8.1e9)\n",
                static_cast<unsigned long long>(
                    SignalSchedule::totalVariants()));

    std::printf("\n=== Section 4.2.1: CODIC circuit costs ===\n");
    DelayElement element;
    TextTable c({"Metric", "Model", "Paper"});
    c.addRow({"delay element area / mat (1 signal)",
              fmt(element.areaOverheadPerMat() * 100.0, 3) + " %",
              "0.28 %"});
    c.addRow({"full CODIC area / mat (4 signals)",
              fmt(element.fullCodicAreaOverheadPerMat() * 100.0, 2) +
                  " %",
              "1.12 %"});
    c.addRow({"switching energy (4 elements)",
              fmt(4.0 * element.energyPerOperationFj(), 0) + " fJ",
              "< 500 fJ"});
    c.addRow({"added delay on DDRx ACT path",
              fmt(element.ddrxPathPenaltyNs(), 3) + " ns", "0.028 ns"});
    c.addRow({"buffer stage delay", fmt(element.delayNs(1), 1) + " ns",
              "~1 ns"});
    std::printf("%s", c.render().c_str());

    std::printf("\n=== Section 4.2.2: mode-register encoding ===\n");
    ModeRegisterFile mrf;
    mrf.program(variants::sig().schedule);
    TextTable m({"Signal", "MR value (10-bit)", "Decoded pulse"});
    for (size_t i = 0; i < kNumSignals; ++i) {
        const auto sig = static_cast<Signal>(i);
        const auto pulse = mrf.decode().pulse(sig);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%03x",
                      mrf.readRegister(sig));
        m.addRow({signalName(sig), buf,
                  pulse ? ("[" + std::to_string(pulse->start_ns) + "," +
                           std::to_string(pulse->end_ns) + "]")
                        : "(disabled)"});
    }
    std::printf("%s", m.render().c_str());
}

void
BM_ClassifyRandomSchedules(benchmark::State &state)
{
    Rng rng(9);
    std::vector<SignalSchedule> schedules;
    for (int i = 0; i < 1024; ++i) {
        SignalSchedule s;
        for (size_t sig = 0; sig < kNumSignals; ++sig) {
            if (rng.chance(0.7)) {
                const int start = static_cast<int>(rng.below(24));
                const int end =
                    start + 1 +
                    static_cast<int>(rng.below(
                        static_cast<uint64_t>(24 - start)));
                s.set(static_cast<Signal>(sig), start, end);
            }
        }
        schedules.push_back(s);
    }
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            classifySchedule(schedules[i++ & 1023]));
    }
}
BENCHMARK(BM_ClassifyRandomSchedules);

void
BM_ModeRegisterRoundTrip(benchmark::State &state)
{
    const auto sched = variants::detZero().schedule;
    for (auto _ : state) {
        ModeRegisterFile mrf;
        mrf.program(sched);
        benchmark::DoNotOptimize(mrf.decode());
    }
}
BENCHMARK(BM_ModeRegisterRoundTrip);

} // namespace

int
main(int argc, char **argv)
{
    printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
