/**
 * @file
 * Paper Table 10 (NIST SP 800-22 suite on CODIC-sig response
 * streams): thin wrapper over the `trng_table10_nist` scenario, plus
 * stream-generation and suite microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nist/tests.h"
#include "puf/sig_puf.h"
#include "puf/stream.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_StreamGeneration(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    const CodicSigPuf sig;
    uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buildResponseBitStream(sig, all, 100000, ++seed));
    }
}
BENCHMARK(BM_StreamGeneration)->Unit(benchmark::kMillisecond);

void
BM_FullNistSuite1Mb(benchmark::State &state)
{
    Rng rng(3);
    BitStream bits(1 << 20);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(runNistSuite(bits));
}
BENCHMARK(BM_FullNistSuite1Mb)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"trng_table10_nist"}, argc, argv);
}
