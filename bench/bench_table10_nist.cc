/**
 * @file
 * Reproduces paper Table 10 (Appendix B): the 15 NIST SP 800-22 test
 * results on random streams built from CODIC-sig responses to
 * distinct challenges across all 136 chips, whitened with a Von
 * Neumann extractor (Section 6.1.3).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.h"
#include "nist/extractor.h"
#include "nist/tests.h"
#include "puf/sig_puf.h"
#include "puf/stream.h"

namespace {

using namespace codic;

void
printTable10()
{
    std::printf("=== Table 10: NIST SP 800-22 results on CODIC-sig "
                "response streams ===\n");
    const auto chips = buildPaperPopulation();
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    const CodicSigPuf sig;

    // The paper uses 250 KB (2 Mb) whitened streams; Von Neumann
    // yields ~1/4 of the raw bits, so gather ~8.2 Mb of raw response
    // address bits.
    const auto raw = buildResponseBitStream(sig, all, 8400000, 777);
    const auto white = vonNeumannExtract(raw);
    std::printf("raw response bits:    %zu (ones fraction %.4f)\n",
                raw.size(), onesFraction(raw));
    std::printf("whitened stream bits: %zu (ones fraction %.4f)\n\n",
                white.size(), onesFraction(white));

    const auto results = runNistSuite(white);
    TextTable t({"NIST Test", "p-value", "Result"});
    int passed = 0;
    int applicable = 0;
    for (const auto &r : results) {
        t.addRow({r.name, r.applicable ? fmt(r.p_value, 4) : "-",
                  r.applicable ? (r.pass() ? "PASS" : "FAIL") : "N/A"});
        if (r.applicable) {
            ++applicable;
            if (r.pass())
                ++passed;
        }
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n%d/%d applicable tests passed (paper: all 15 tests "
                "pass)\n",
                passed, applicable);
}

void
BM_StreamGeneration(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    const CodicSigPuf sig;
    uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buildResponseBitStream(sig, all, 100000, ++seed));
    }
}
BENCHMARK(BM_StreamGeneration)->Unit(benchmark::kMillisecond);

void
BM_FullNistSuite1Mb(benchmark::State &state)
{
    Rng rng(3);
    BitStream bits(1 << 20);
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(runNistSuite(bits));
}
BENCHMARK(BM_FullNistSuite1Mb)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    printTable10();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
