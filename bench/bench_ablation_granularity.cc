/**
 * @file
 * Ablation: delay-element time-step granularity (Section 4.2.1,
 * footnote 3). Thin wrapper over the `circuit_ablation_granularity`
 * scenario, plus a delay-element-model microbenchmark.
 */

#include <benchmark/benchmark.h>

#include "circuit/delay_element.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_DelayElementModel(benchmark::State &state)
{
    DelayElementParams p;
    for (auto _ : state) {
        DelayElement e(p);
        benchmark::DoNotOptimize(e.areaOverheadPerMat());
        benchmark::DoNotOptimize(e.energyPerOperationFj());
    }
}
BENCHMARK(BM_DelayElementModel);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"circuit_ablation_granularity"}, argc, argv);
}
