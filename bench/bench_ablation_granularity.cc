/**
 * @file
 * Ablation: delay-element time-step granularity (Section 4.2.1,
 * footnote 3: "we can reduce the area overhead by coarsening the
 * granularity of time control in a CODIC command"). Sweeps the tap
 * count of the configurable delay element and reports silicon cost
 * against the size of the reachable variant space.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuit/delay_element.h"
#include "circuit/signals.h"
#include "common/table.h"

namespace {

using namespace codic;

void
printAblation()
{
    std::printf("=== Ablation: CODIC time-step granularity vs area "
                "===\n");
    TextTable t({"Step (ns)", "Taps", "Area/mat (1 sig)",
                 "Area/mat (4 sig)", "Pulses/signal",
                 "Energy (4 elems, fJ)"});
    struct Step
    {
        double step_ns;
        size_t taps;
    };
    for (const auto &[step_ns, taps] :
         {Step{1.0, 25}, Step{2.0, 13}, Step{4.0, 7}, Step{8.0, 4}}) {
        DelayElementParams p;
        p.taps = taps;
        p.buffer_delay_ns = step_ns;
        DelayElement e(p);
        // Pulses per signal with w/step selectable positions.
        const uint64_t pulses = SignalSchedule::pulsesPerSignal(
            static_cast<int>(taps));
        t.addRow({fmt(step_ns, 0), std::to_string(taps),
                  fmt(e.areaOverheadPerMat() * 100.0, 3) + " %",
                  fmt(e.fullCodicAreaOverheadPerMat() * 100.0, 3) + " %",
                  std::to_string(pulses),
                  fmt(4.0 * e.energyPerOperationFj(), 0)});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "\nTrade-off: halving the resolution roughly halves the area\n"
        "(buffers dominate) but shrinks the variant space "
        "quadratically\nper signal; 1 ns/25 taps (the paper's choice) "
        "keeps the full\n300^4 design space at 1.12%% mat area.\n");

    std::printf("\nFunctional floor: the named variants need to "
                "distinguish signal\norderings two steps apart "
                "(e.g. wl at 5 ns, EQ at 7 ns), so steps\ncoarser "
                "than ~4 ns can no longer express CODIC-sig vs "
                "CODIC-det\ntimings within the 25 ns window.\n");
}

void
BM_DelayElementModel(benchmark::State &state)
{
    DelayElementParams p;
    for (auto _ : state) {
        DelayElement e(p);
        benchmark::DoNotOptimize(e.areaOverheadPerMat());
        benchmark::DoNotOptimize(e.energyPerOperationFj());
    }
}
BENCHMARK(BM_DelayElementModel);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
