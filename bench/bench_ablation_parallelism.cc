/**
 * @file
 * Parallelism ablations: bank-level parallelism in self-destruction
 * (Section 5.2.2) and the CampaignEngine thread-count sweep. Thin
 * wrapper over the `ablation_bank_parallelism` and
 * `ablation_engine_parallelism` scenarios (the latter sweeps thread
 * counts up to --threads / CODIC_THREADS and emits the sweep as JSON
 * rows under codic_run), plus a destruction microbenchmark.
 */

#include <benchmark/benchmark.h>

#include "codic/variant.h"
#include "dram/channel.h"
#include "scenario_main.h"

namespace {

using namespace codic;

/** Destroy `rows` rows per bank using all 8 banks. */
double
perRowTimeNs(int banks, int64_t rows)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    const int det = ch.registerVariant(variants::detZero().schedule);
    Cycle done = 0;
    for (int64_t row = 0; row < rows; ++row) {
        for (int b = 0; b < banks; ++b) {
            Command c;
            c.type = CommandType::Codic;
            c.addr.bank = b;
            c.addr.row = row;
            c.codic_variant = det;
            done = std::max(done, ch.issueAtEarliest(c, 0));
        }
    }
    return ch.config().cyclesToNs(done) /
           static_cast<double>(rows * banks);
}

void
BM_DestructionEightBanks(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(perRowTimeNs(8, 1024));
}
BENCHMARK(BM_DestructionEightBanks)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"ablation_bank_parallelism", "ablation_engine_parallelism"}, argc, argv);
}
