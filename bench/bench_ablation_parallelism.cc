/**
 * @file
 * Ablation: bank-level parallelism in self-destruction (Section
 * 5.2.2). Restricts the CODIC destruction engine to k of the 8 banks
 * and reports per-row throughput, showing the pipeline saturating at
 * the tFAW limit once enough banks participate, and the tFAW/tRRD
 * constraints binding.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "codic/variant.h"
#include "common/table.h"
#include "dram/channel.h"

namespace {

using namespace codic;

/** Destroy `rows` rows per bank using only the first `banks` banks. */
double
perRowTimeNs(int banks, int64_t rows)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    const int det = ch.registerVariant(variants::detZero().schedule);
    Cycle done = 0;
    for (int64_t row = 0; row < rows; ++row) {
        for (int b = 0; b < banks; ++b) {
            Command c;
            c.type = CommandType::Codic;
            c.addr.bank = b;
            c.addr.row = row;
            c.codic_variant = det;
            done = std::max(done, ch.issueAtEarliest(c, 0));
        }
    }
    return ch.config().cyclesToNs(done) /
           static_cast<double>(rows * banks);
}

void
printAblation()
{
    std::printf("=== Ablation: bank-level parallelism in CODIC "
                "self-destruction ===\n");
    const auto &t = DramConfig::ddr3_1600(64).timing;
    const DramConfig cfg = DramConfig::ddr3_1600(64);
    std::printf("constraints: tRC (serial per bank) = %.1f ns, tRRD = "
                "%.1f ns, tFAW/4 = %.1f ns\n\n",
                cfg.cyclesToNs(t.trc), cfg.cyclesToNs(t.trrd),
                cfg.cyclesToNs(t.tfaw) / 4.0);

    TextTable table({"Banks in parallel", "Per-row time (ns)",
                     "Speedup vs 1 bank", "Binding constraint"});
    const double serial = perRowTimeNs(1, 512);
    for (int banks : {1, 2, 4, 8}) {
        const double per_row = perRowTimeNs(banks, 512);
        const char *binding;
        if (banks == 1)
            binding = "tRC (bank cycle)";
        else if (per_row > cfg.cyclesToNs(t.tfaw) / 4.0 + 0.5)
            binding = "tRC / tRRD";
        else
            binding = "tFAW";
        table.addRow({std::to_string(banks), fmt(per_row, 2),
                      fmt(serial / per_row, 2) + "x", binding});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nConclusion: parallelizing across banks (paper Section "
        "5.2.2) buys ~%.1fx;\nbeyond 4-5 banks the four-activate "
        "window (tFAW) caps throughput at one\nrow per %.1f ns.\n",
        serial / perRowTimeNs(8, 512), cfg.cyclesToNs(t.tfaw) / 4.0);
}

void
BM_DestructionEightBanks(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(perRowTimeNs(8, 1024));
}
BENCHMARK(BM_DestructionEightBanks)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
