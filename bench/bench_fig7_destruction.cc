/**
 * @file
 * Reproduces paper Figure 7 (time to destroy all DRAM data for
 * module sizes 64 MB - 64 GB under TCG, LISA-clone, RowClone, and
 * CODIC) and the Section 6.2 energy comparison at 8 GB.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "coldboot/destruction.h"
#include "common/table.h"

namespace {

using namespace codic;

void
printFigure7()
{
    std::printf("=== Figure 7: Time to destroy all DRAM data in a "
                "module ===\n");
    const int64_t sizes_mb[] = {64, 256, 1024, 4096, 16384, 65536};
    const DestructionMechanism mechs[] = {
        DestructionMechanism::Tcg, DestructionMechanism::LisaClone,
        DestructionMechanism::RowClone, DestructionMechanism::Codic};

    TextTable t({"Module", "TCG", "LISA-clone", "RowClone", "CODIC"});
    for (int64_t mb : sizes_mb) {
        std::vector<std::string> row;
        row.push_back(mb >= 1024 ? std::to_string(mb / 1024) + "GB"
                                 : std::to_string(mb) + "MB");
        for (auto mech : mechs) {
            const auto r =
                runDestruction(DramConfig::ddr3_1600(mb), mech);
            row.push_back(fmtTimeNs(r.time_ns));
        }
        t.addRow(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("(paper Fig. 7 anchors: TCG 34 ms @64MB ... 34.8 s "
                "@64GB; CODIC 60 us @64MB ... 63 ms @64GB)\n");

    std::printf("\n=== Section 6.2: 8 GB module comparison ===\n");
    const DramConfig dram = DramConfig::ddr3_1600(8192);
    const auto tcg = runDestruction(dram, DestructionMechanism::Tcg);
    const auto lisa =
        runDestruction(dram, DestructionMechanism::LisaClone);
    const auto rc =
        runDestruction(dram, DestructionMechanism::RowClone);
    const auto codic =
        runDestruction(dram, DestructionMechanism::Codic);

    TextTable c({"Mechanism", "Time", "Energy", "Time vs CODIC",
                 "Energy vs CODIC"});
    const std::pair<const char *, const DestructionResult *> rows[] = {
        {"TCG", &tcg},
        {"LISA-clone", &lisa},
        {"RowClone", &rc},
        {"CODIC", &codic},
    };
    for (const auto &[name, r] : rows) {
        c.addRow({name, fmtTimeNs(r->time_ns),
                  fmtEnergyNj(r->energy_nj),
                  fmt(r->time_ns / codic.time_ns, 1) + "x",
                  fmt(r->energy_nj / codic.energy_nj, 1) + "x"});
    }
    std::printf("%s", c.render().c_str());
    std::printf("(paper: CODIC is 552.7x/2.5x/2.0x faster and "
                "41.7x/2.5x/1.7x lower energy than "
                "TCG/LISA-clone/RowClone)\n");

    std::printf("\n=== Section 5.2.2: cost-optimized implementation "
                "reusing the self-refresh circuitry ===\n");
    const auto reuse = selfRefreshReuseTiming(dram);
    std::printf("destruction time = one full self-refresh pass: "
                "%s distributed (one tREFW window),\n%s in burst "
                "mode (8192 back-to-back tRFC steps) - slower than "
                "the dedicated\nengine's %s, in exchange for near-"
                "zero added logic.\n",
                fmtTimeNs(reuse.distributed_ns).c_str(),
                fmtTimeNs(reuse.burst_ns).c_str(),
                fmtTimeNs(codic.time_ns).c_str());
}

void
BM_CodicDestruction1GB(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(runDestruction(
            DramConfig::ddr3_1600(1024), DestructionMechanism::Codic));
    }
}
BENCHMARK(BM_CodicDestruction1GB)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void
BM_TcgDestruction64MBFull(benchmark::State &state)
{
    DestructionConfig cfg;
    cfg.max_simulated_rows = 0; // Full command-by-command simulation.
    for (auto _ : state) {
        benchmark::DoNotOptimize(runDestruction(
            DramConfig::ddr3_1600(64), DestructionMechanism::Tcg,
            cfg));
    }
}
BENCHMARK(BM_TcgDestruction64MBFull)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    printFigure7();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
