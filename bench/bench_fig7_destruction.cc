/**
 * @file
 * Paper Figure 7 (time to destroy all DRAM data) and the Section 6.2
 * energy comparison: thin wrapper over the `coldboot_fig7_destruction`
 * scenario, plus destruction-engine microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "coldboot/destruction.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_CodicDestruction1GB(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(runDestruction(
            DramConfig::ddr3_1600(1024), DestructionMechanism::Codic));
    }
}
BENCHMARK(BM_CodicDestruction1GB)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void
BM_TcgDestruction64MBFull(benchmark::State &state)
{
    DestructionConfig cfg;
    cfg.max_simulated_rows = 0; // Full command-by-command simulation.
    for (auto _ : state) {
        benchmark::DoNotOptimize(runDestruction(
            DramConfig::ddr3_1600(64), DestructionMechanism::Tcg,
            cfg));
    }
}
BENCHMARK(BM_TcgDestruction64MBFull)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"coldboot_fig7_destruction"}, argc, argv);
}
