/**
 * @file
 * Paper Figure 9 (4-core secure-deallocation mixes): thin wrapper
 * over the `secdealloc_fig9` scenario, plus a multicore-simulation
 * microbenchmark.
 */

#include <benchmark/benchmark.h>

#include "scenario_main.h"
#include "secdealloc/evaluate.h"

namespace {

using namespace codic;

void
BM_MultiCoreMix(benchmark::State &state)
{
    const auto mixes = representativeMixes(77);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runMultiCore(mixes[0], DeallocMode::CodicDet));
    }
}
BENCHMARK(BM_MultiCoreMix)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"secdealloc_fig9"}, argc, argv);
}
