/**
 * @file
 * Reproduces paper Figure 9 (Appendix A): 4-core speedup and energy
 * savings of the hardware secure-deallocation mechanisms over
 * software zeroing, for the five representative mixes of Table 9 and
 * the average over 50 random mixes.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "common/stats.h"
#include "common/table.h"
#include "secdealloc/evaluate.h"

namespace {

using namespace codic;

void
printFigure9()
{
    std::printf("=== Figure 9: 4-core secure-deallocation speedup and "
                "energy savings vs software zeroing ===\n");
    TextTable t({"Mix", "LISA sp", "RowClone sp", "CODIC sp",
                 "LISA en", "RowClone en", "CODIC en"});

    // The mix x mechanism grids run through the campaign engine;
    // results are identical to the sequential sweep.
    DeallocEvalConfig cfg;
    cfg.threads =
        static_cast<int>(std::thread::hardware_concurrency());
    for (const auto &c :
         compareMultiCoreAll(representativeMixes(77), cfg)) {
        t.addRow({c.name, fmt(c.lisa_speedup * 100.0, 1) + " %",
                  fmt(c.rowclone_speedup * 100.0, 1) + " %",
                  fmt(c.codic_speedup * 100.0, 1) + " %",
                  fmt(c.lisa_energy * 100.0, 1) + " %",
                  fmt(c.rowclone_energy * 100.0, 1) + " %",
                  fmt(c.codic_energy * 100.0, 1) + " %"});
    }

    // AVG50: the paper averages 50 random mixes of two intensive and
    // two background benchmarks.
    RunningStats sp_lisa;
    RunningStats sp_rc;
    RunningStats sp_codic;
    RunningStats en_lisa;
    RunningStats en_rc;
    RunningStats en_codic;
    for (const auto &c : compareMultiCoreAll(randomMixes(50, 123), cfg)) {
        sp_lisa.add(c.lisa_speedup);
        sp_rc.add(c.rowclone_speedup);
        sp_codic.add(c.codic_speedup);
        en_lisa.add(c.lisa_energy);
        en_rc.add(c.rowclone_energy);
        en_codic.add(c.codic_energy);
    }
    t.addRow({"AVG50", fmt(sp_lisa.mean() * 100.0, 1) + " %",
              fmt(sp_rc.mean() * 100.0, 1) + " %",
              fmt(sp_codic.mean() * 100.0, 1) + " %",
              fmt(en_lisa.mean() * 100.0, 1) + " %",
              fmt(en_rc.mean() * 100.0, 1) + " %",
              fmt(en_codic.mean() * 100.0, 1) + " %"});
    std::printf("%s", t.render().c_str());
    std::printf("\nPaper observations reproduced: hardware approaches "
                "beat software for every mix,\nand CODIC performs at "
                "least as well as LISA-clone and RowClone.\n");
}

void
BM_MultiCoreMix(benchmark::State &state)
{
    const auto mixes = representativeMixes(77);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runMultiCore(mixes[0], DeallocMode::CodicDet));
    }
}
BENCHMARK(BM_MultiCoreMix)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    printFigure9();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
