/**
 * @file
 * Reproduces paper Figure 2b: the internal-signal waveforms of the
 * regular precharge and activate commands, and their effect on the
 * bitline and cell-capacitor voltages.
 *
 * Prints the voltage series sampled from the analog model, then runs
 * a google-benchmark measurement of the transient-simulation kernel.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuit/analog.h"
#include "codic/variant.h"
#include "common/table.h"

namespace {

using namespace codic;

void
printWaveform(const char *title, const Transient &tr, double vdd)
{
    std::printf("\n%s (Vdd = %.2f V)\n", title, vdd);
    TextTable t({"t (ns)", "wl", "EQ", "sense_p", "sense_n",
                 "V_bitline (V)", "V_cell (V)"});
    for (const auto &p : tr.points) {
        // Print every 2 ns to keep the series readable.
        const double frac = p.t_ns / 2.0;
        if (std::abs(frac - std::round(frac)) > 1e-6)
            continue;
        t.addRow({fmt(p.t_ns, 0), fmt(p.wl, 1), fmt(p.eq, 1),
                  fmt(p.sense_p, 1), fmt(p.sense_n, 1),
                  fmt(p.v_bitline, 3), fmt(p.v_cell, 3)});
    }
    std::printf("%s", t.render().c_str());
}

void
printFigure2b()
{
    std::printf("=== Figure 2b: DRAM internal signal timing in regular "
                "precharge and activate commands ===\n");
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};

    // Precharge: bitline parked at Vdd after a previous access.
    CellCircuit pre_cell(params, nominal);
    pre_cell.setCellVoltage(params.vdd);
    pre_cell.setBitlineVoltage(params.vdd);
    const Transient pre =
        pre_cell.run(variants::precharge().schedule, 20.0);
    printWaveform("Precharge (EQ[5,11])", pre, params.vdd);

    // Activate: stored one, charge sharing then sensing/restore.
    CellCircuit act_cell(params, nominal);
    act_cell.setCellVoltage(params.vdd);
    const Transient act =
        act_cell.run(variants::activate().schedule, 30.0);
    printWaveform("Activate (wl[5,22] sense_p/n[7,22]), stored '1'",
                  act, params.vdd);

    CellCircuit act0_cell(params, nominal);
    act0_cell.setCellVoltage(0.0);
    const Transient act0 =
        act0_cell.run(variants::activate().schedule, 30.0);
    printWaveform("Activate, stored '0'", act0, params.vdd);

    std::printf("\nShape checks vs. paper Fig. 1/2b:\n");
    std::printf("  charge-sharing deviation at 6.5 ns: %+.0f mV\n",
                (act.bitlineAt(6.5) - params.vHalf()) * 1e3);
    std::printf("  restored cell voltage: %.3f V (Vdd = %.2f V)\n",
                act.finalCell(), params.vdd);
    std::printf("  precharged bitline: %.3f V (Vdd/2 = %.3f V)\n",
                pre.finalBitline(), params.vHalf());
}

void
BM_ActivateTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        benchmark::DoNotOptimize(
            cell.run(variants::activate().schedule));
    }
}
BENCHMARK(BM_ActivateTransient);

void
BM_PrechargeTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setBitlineVoltage(params.vdd);
        benchmark::DoNotOptimize(
            cell.run(variants::precharge().schedule, 20.0));
    }
}
BENCHMARK(BM_PrechargeTransient);

} // namespace

int
main(int argc, char **argv)
{
    printFigure2b();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
