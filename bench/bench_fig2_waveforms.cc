/**
 * @file
 * Paper Figure 2b (internal-signal waveforms of regular precharge
 * and activate): thin wrapper over the `circuit_fig2_waveforms`
 * scenario, plus google-benchmark measurements of the
 * transient-simulation kernel.
 */

#include <benchmark/benchmark.h>

#include "circuit/analog.h"
#include "codic/variant.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_ActivateTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        benchmark::DoNotOptimize(
            cell.run(variants::activate().schedule));
    }
}
BENCHMARK(BM_ActivateTransient);

void
BM_PrechargeTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setBitlineVoltage(params.vdd);
        benchmark::DoNotOptimize(
            cell.run(variants::precharge().schedule, 20.0));
    }
}
BENCHMARK(BM_PrechargeTransient);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"circuit_fig2_waveforms"}, argc, argv);
}
