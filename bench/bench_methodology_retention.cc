/**
 * @file
 * Paper Section 6.1 measurement methodology (48 h refresh-disable
 * emulation, two-scenario test): thin wrapper over the
 * `puf_retention_methodology` scenario, plus an experiment
 * microbenchmark.
 */

#include <benchmark/benchmark.h>

#include "puf/retention.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_RetentionExperiment(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    for (auto _ : state)
        benchmark::DoNotOptimize(runRetentionExperiment(chips[0]));
}
BENCHMARK(BM_RetentionExperiment)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"puf_retention_methodology"}, argc, argv);
}
