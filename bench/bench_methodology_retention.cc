/**
 * @file
 * Reproduces the paper's Section 6.1 measurement *methodology*
 * itself: the 48-hour refresh-disable emulation of CODIC-sig on
 * "real" chips, with the two-scenario conclusiveness test, the
 * 34-99 % coverage band, the 0.01-0.22 % flip-cell band, and the
 * shortened 4-hour wait used for the temperature experiments.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "puf/retention.h"

namespace {

using namespace codic;

void
printMethodology()
{
    std::printf("=== Section 6.1 methodology: 48 h refresh-disable "
                "emulation, two-scenario test ===\n");
    const auto chips = buildPaperPopulation();

    RunningStats coverage;
    RunningStats flips;
    TextTable t({"Module", "Chip", "Median retention",
                 "Coverage", "Flip cells"});
    for (size_t i = 0; i < chips.size(); i += 17) {
        const auto r = runRetentionExperiment(chips[i]);
        t.addRow({chips[i].spec().module,
                  std::to_string(i),
                  fmt(chipRetentionMedianHours(chips[i]), 1) + " h",
                  fmt(r.coverage() * 100.0, 0) + " %",
                  fmt(r.flipFraction() * 100.0, 3) + " %"});
    }
    for (const auto &chip : chips) {
        const auto r = runRetentionExperiment(chip);
        coverage.add(r.coverage());
        flips.add(r.flipFraction());
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nacross all 136 chips:\n");
    std::printf("  coverage:      %.0f%% - %.0f%%  (paper: 34%% - "
                "99%%)\n",
                coverage.min() * 100.0, coverage.max() * 100.0);
    std::printf("  flip fraction: %.3f%% - %.3f%%  (paper: 0.01%% - "
                "0.22%%)\n",
                flips.min() * 100.0, flips.max() * 100.0);

    std::printf("\n--- Temperature experiments use a 4 h wait "
                "(Section 6.1.1) ---\n");
    TextTable h({"Condition", "Coverage (chip 0)"});
    RetentionExperimentConfig cfg48;
    h.addRow({"48 h at 30 C",
              fmt(runRetentionExperiment(chips[0], cfg48).coverage() *
                      100.0, 0) + " %"});
    RetentionExperimentConfig cfg4;
    cfg4.wait_hours = 4.0;
    cfg4.temperature_c = 85.0;
    h.addRow({"4 h at 85 C",
              fmt(runRetentionExperiment(chips[0], cfg4).coverage() *
                      100.0, 0) + " %"});
    std::printf("%s", h.render().c_str());
    std::printf("(cells discharge faster at high temperature, so a "
                "short wait suffices - the\npaper's justification for "
                "the 4 h window)\n");
}

void
BM_RetentionExperiment(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    for (auto _ : state)
        benchmark::DoNotOptimize(runRetentionExperiment(chips[0]));
}
BENCHMARK(BM_RetentionExperiment)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printMethodology();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
