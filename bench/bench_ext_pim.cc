/**
 * @file
 * Extension (Sections 1 and 5.3.3): CODIC-enabled processing in
 * memory. Thin wrapper over the `ext_pim` scenario, plus an in-DRAM
 * AND microbenchmark.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "pim/bitwise.h"
#include "scenario_main.h"

namespace {

using namespace codic;

RowPayload
randomRow(uint64_t seed)
{
    Rng rng(seed);
    RowPayload row(AmbitUnit::kWordsPerRow);
    for (auto &w : row)
        w = rng.next64();
    return row;
}

void
BM_InDramAnd(benchmark::State &state)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    AmbitUnit unit(ch, 0);
    const RowPayload a = randomRow(1);
    Cycle t = unit.writeRow(10, a, 0);
    t = unit.writeRow(11, a, t);
    for (auto _ : state) {
        t = unit.bitwiseAnd(10, 11, 12, t);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_InDramAnd);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"ext_pim"}, argc, argv);
}
