/**
 * @file
 * Extension (paper Sections 1 and 5.3.3): CODIC-enabled processing
 * in memory. Reproduces the reliability argument of the paper's
 * introduction - ComputeDRAM-style timing violations corrupt a large
 * fraction of bits, while CODIC's explicit internal timings compute
 * exactly - and measures the bulk-bitwise throughput advantage over
 * the column interface.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "pim/bitwise.h"

namespace {

using namespace codic;

RowPayload
randomRow(uint64_t seed)
{
    Rng rng(seed);
    RowPayload row(AmbitUnit::kWordsPerRow);
    for (auto &w : row)
        w = rng.next64();
    return row;
}

void
printExtension()
{
    std::printf("=== Extension: in-DRAM bulk bitwise operations "
                "(Section 5.3.3) ===\n");

    std::printf("\n--- Reliability: CODIC timing control vs "
                "ComputeDRAM timing violations ---\n");
    TextTable rel({"Trigger mechanism", "Unreliable cells",
                   "AND bit-error rate"});
    const RowPayload a = randomRow(1);
    const RowPayload b = randomRow(2);
    RowPayload expect_and(AmbitUnit::kWordsPerRow);
    for (size_t i = 0; i < a.size(); ++i)
        expect_and[i] = a[i] & b[i];

    struct Case
    {
        const char *name;
        PimMode mode;
        double fraction;
    };
    for (const auto &[name, mode, fraction] :
         {Case{"CODIC (explicit internal timings)", PimMode::Codic, 0.0},
          Case{"ComputeDRAM, good chip", PimMode::ComputeDram, 0.15},
          Case{"ComputeDRAM, typical chip", PimMode::ComputeDram, 0.4},
          Case{"ComputeDRAM, bad chip", PimMode::ComputeDram, 0.8}}) {
        DramChannel ch(DramConfig::ddr3_1600(64));
        AmbitUnit unit(ch, 0, mode, fraction);
        Cycle t = unit.writeRow(10, a, 0);
        t = unit.writeRow(11, b, t);
        unit.bitwiseAnd(10, 11, 12, t);
        rel.addRow({name, fmt(fraction * 100.0, 0) + " %",
                    fmt(bitErrorRate(unit.readRow(12), expect_and) *
                            100.0,
                        1) + " %"});
    }
    std::printf("%s", rel.render().c_str());
    std::printf("(paper Section 1: with ComputeDRAM \"only a small "
                "fraction of the cells can\nreliably perform the "
                "intended computations\"; CODIC makes the mechanism "
                "exact)\n");

    std::printf("\n--- Throughput: one 8 KB AND, in-DRAM vs column "
                "interface ---\n");
    DramChannel ch(DramConfig::ddr3_1600(64));
    AmbitUnit unit(ch, 0);
    Cycle t = unit.writeRow(10, a, 0);
    t = unit.writeRow(11, b, t);
    const Cycle start = t;
    const Cycle done = unit.bitwiseAnd(10, 11, 12, start);
    const double in_dram_ns = ch.config().cyclesToNs(done - start);
    // Column interface: read a, read b, write result = 3 row passes.
    const double burst_ns = 5.0;
    const double interface_ns = 3.0 * 128.0 * burst_ns;
    TextTable th({"Path", "8 KB AND latency", "Effective GB/s"});
    th.addRow({"in-DRAM (4 AAPs + triple activate)",
               fmtTimeNs(in_dram_ns),
               fmt(8192.0 / in_dram_ns, 1)});
    th.addRow({"column interface (RD a, RD b, WR out)",
               fmtTimeNs(interface_ns),
               fmt(8192.0 / interface_ns, 1)});
    std::printf("%s", th.render().c_str());
    std::printf("in-DRAM advantage: %.1fx, and it scales with bank "
                "parallelism while the\ncolumn interface is fixed by "
                "bus bandwidth.\n",
                interface_ns / in_dram_ns);
}

void
BM_InDramAnd(benchmark::State &state)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    AmbitUnit unit(ch, 0);
    const RowPayload a = randomRow(1);
    Cycle t = unit.writeRow(10, a, 0);
    t = unit.writeRow(11, a, t);
    for (auto _ : state) {
        t = unit.bitwiseAnd(10, 11, 12, t);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_InDramAnd);

} // namespace

int
main(int argc, char **argv)
{
    printExtension();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
