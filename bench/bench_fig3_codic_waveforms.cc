/**
 * @file
 * Paper Figure 3 / Figure 10 (CODIC-sig, CODIC-det, and CODIC-sigsa
 * transients): thin wrapper over the `circuit_fig3_codic_waveforms`
 * scenario, plus transient-kernel microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "circuit/analog.h"
#include "codic/variant.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_SigTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        benchmark::DoNotOptimize(cell.run(variants::sig().schedule));
    }
}
BENCHMARK(BM_SigTransient);

void
BM_DetTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        benchmark::DoNotOptimize(
            cell.run(variants::detZero().schedule));
    }
}
BENCHMARK(BM_DetTransient);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"circuit_fig3_codic_waveforms"}, argc, argv);
}
