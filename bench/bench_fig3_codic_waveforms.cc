/**
 * @file
 * Reproduces paper Figure 3 (CODIC-sig and CODIC-det transients) and
 * Figure 10 (CODIC-sigsa, Appendix C): the in-DRAM value-generation
 * mechanisms at circuit level.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuit/analog.h"
#include "codic/variant.h"
#include "common/table.h"

namespace {

using namespace codic;

void
printSeries(const char *title, const Transient &tr)
{
    std::printf("\n%s\n", title);
    TextTable t({"t (ns)", "V_bitline (V)", "V_cell (V)"});
    for (double at : {0.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0,
                      20.0, 24.0, 28.0}) {
        t.addRow({fmt(at, 0), fmt(tr.bitlineAt(at), 3),
                  fmt(tr.cellAt(at), 3)});
    }
    std::printf("%s", t.render().c_str());
}

void
printFigure3()
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};

    std::printf("=== Figure 3a: CODIC-sig (wl[5,22] EQ[7,22]) ===\n");
    for (double init : {1.0, 0.0}) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(init * params.vdd);
        const Transient tr = cell.run(variants::sig().schedule, 30.0);
        char title[96];
        std::snprintf(title, sizeof(title),
                      "stored '%.0f' -> capacitor driven to Vdd/2",
                      init);
        printSeries(title, tr);
        std::printf("  final capacitor: %.3f V (Vdd/2 = %.3f V)\n",
                    tr.finalCell(), params.vHalf());
    }

    std::printf("\n=== Figure 3b: CODIC-det generating zero "
                "(wl[5,22] sense_n[7,22] sense_p[14,22]) ===\n");
    {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd); // Stored one is destroyed.
        const Transient tr =
            cell.run(variants::detZero().schedule, 30.0);
        printSeries("stored '1' -> deterministic '0'", tr);
    }
    std::printf("\n--- CODIC-det generating one (sense_p first) ---\n");
    {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(0.0);
        const Transient tr =
            cell.run(variants::detOne().schedule, 30.0);
        printSeries("stored '0' -> deterministic '1'", tr);
    }

    std::printf("\n=== Figure 10 (App. C): CODIC-sigsa "
                "(sense_p/n[3,22] wl[5,22]) ===\n");
    {
        CellCircuit cell(params, nominal);
        const Transient tr = cell.run(variants::sigsa().schedule, 30.0);
        printSeries("precharged bitline amplified by SA mismatch "
                    "(designed bias -> '1')",
                    tr);
    }
    {
        VariationDraw flipped;
        flipped.sa_offset = -30e-3;
        CellCircuit cell(params, flipped);
        const Transient tr = cell.run(variants::sigsa().schedule, 30.0);
        printSeries("instance with -30 mV offset -> '0'", tr);
    }

    std::printf("\n=== CODIC-sig-opt (early termination, "
                "Section 4.1.1) ===\n");
    {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        const Transient tr =
            cell.run(variants::sigOpt().schedule, 16.0);
        printSeries("wl[5,11] EQ[7,11]: same effect in 13 ns", tr);
        std::printf("  final capacitor: %.3f V\n", tr.finalCell());
    }
}

void
BM_SigTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        benchmark::DoNotOptimize(cell.run(variants::sig().schedule));
    }
}
BENCHMARK(BM_SigTransient);

void
BM_DetTransient(benchmark::State &state)
{
    const CircuitParams params = CircuitParams::ddr3();
    const VariationDraw nominal{};
    for (auto _ : state) {
        CellCircuit cell(params, nominal);
        cell.setCellVoltage(params.vdd);
        benchmark::DoNotOptimize(
            cell.run(variants::detZero().schedule));
    }
}
BENCHMARK(BM_DetTransient);

} // namespace

int
main(int argc, char **argv)
{
    printFigure3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
