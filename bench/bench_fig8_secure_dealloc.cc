/**
 * @file
 * Reproduces paper Figure 8 (Appendix A): single-core speedup and
 * DRAM energy savings of the LISA-clone, RowClone, and CODIC secure
 * deallocation mechanisms over the software-zeroing baseline, for
 * the six memory-allocation-intensive benchmarks of Table 8.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "common/table.h"
#include "secdealloc/evaluate.h"

namespace {

using namespace codic;

void
printFigure8()
{
    std::printf("=== Figure 8: Single-core secure-deallocation speedup "
                "and energy savings vs software zeroing ===\n");
    TextTable t({"Benchmark", "LISA sp", "RowClone sp", "CODIC sp",
                 "LISA en", "RowClone en", "CODIC en"});
    double max_sp = 0.0;
    double max_en = 0.0;
    // The whole benchmark x mechanism grid runs through the campaign
    // engine; results are identical to the sequential sweep.
    DeallocEvalConfig cfg;
    cfg.threads =
        static_cast<int>(std::thread::hardware_concurrency());
    const auto names = allocationIntensiveBenchmarks();
    const auto comparisons = compareSingleCoreAll(names, 11, cfg);
    for (const auto &c : comparisons) {
        t.addRow({c.name, fmt(c.lisa_speedup * 100.0, 1) + " %",
                  fmt(c.rowclone_speedup * 100.0, 1) + " %",
                  fmt(c.codic_speedup * 100.0, 1) + " %",
                  fmt(c.lisa_energy * 100.0, 1) + " %",
                  fmt(c.rowclone_energy * 100.0, 1) + " %",
                  fmt(c.codic_energy * 100.0, 1) + " %"});
        max_sp = std::max(max_sp, c.codic_speedup);
        max_en = std::max(max_en, c.codic_energy);
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "\nmax CODIC speedup: %.0f%%  (paper: up to 21%%)\n"
        "max CODIC energy savings: %.0f%%  (paper: up to 34%%)\n"
        "CODIC performs at least as well as LISA-clone and RowClone\n"
        "for all workloads (paper observation 2).\n",
        max_sp * 100.0, max_en * 100.0);
}

void
BM_SingleCoreSoftwareBaseline(benchmark::State &state)
{
    const Workload w = generateWorkload(benchmarkParams("shell", 11));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runSingleCore(w, DeallocMode::SoftwareZero));
    }
}
BENCHMARK(BM_SingleCoreSoftwareBaseline)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void
BM_SingleCoreCodicDealloc(benchmark::State &state)
{
    const Workload w = generateWorkload(benchmarkParams("shell", 11));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runSingleCore(w, DeallocMode::CodicDet));
    }
}
BENCHMARK(BM_SingleCoreCodicDealloc)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    printFigure8();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
