/**
 * @file
 * Paper Figure 8 (single-core secure-deallocation speedup/energy):
 * thin wrapper over the `secdealloc_fig8` scenario, plus
 * single-simulation microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "scenario_main.h"
#include "secdealloc/evaluate.h"

namespace {

using namespace codic;

void
BM_SingleCoreSoftwareBaseline(benchmark::State &state)
{
    const Workload w = generateWorkload(benchmarkParams("shell", 11));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runSingleCore(w, DeallocMode::SoftwareZero));
    }
}
BENCHMARK(BM_SingleCoreSoftwareBaseline)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void
BM_SingleCoreCodicDealloc(benchmark::State &state)
{
    const Workload w = generateWorkload(benchmarkParams("shell", 11));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runSingleCore(w, DeallocMode::CodicDet));
    }
}
BENCHMARK(BM_SingleCoreCodicDealloc)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"secdealloc_fig8"}, argc, argv);
}
