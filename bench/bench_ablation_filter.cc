/**
 * @file
 * Ablation: PUF filtering depth (Section 6.1.1). Sweeps the
 * CODIC-sig majority-filter depth and the DRAM Latency PUF read
 * count, reporting the exact-match false-rejection rate against the
 * evaluation-time cost - quantifying the paper's claim that a
 * lightweight Latency-PUF filter "could be as fast as the CODIC PUF
 * [but] the PUF quality would decrease significantly".
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.h"
#include "puf/experiments.h"
#include "puf/latency_puf.h"
#include "puf/sig_puf.h"

namespace {

using namespace codic;

double
exactMatchFrr(const DramPuf &puf,
              const std::vector<const SimulatedChip *> &chips,
              size_t trials, uint64_t seed)
{
    Rng rng(seed);
    size_t mismatches = 0;
    for (size_t i = 0; i < trials; ++i) {
        const SimulatedChip *chip =
            chips[static_cast<size_t>(rng.below(chips.size()))];
        Challenge ch{rng.below(chip->segments()), 65536};
        const Response a =
            puf.evaluateFiltered(*chip, ch, {30.0, false, rng.next64()});
        const Response b =
            puf.evaluateFiltered(*chip, ch, {30.0, false, rng.next64()});
        if (!(a == b))
            ++mismatches;
    }
    return static_cast<double>(mismatches) /
           static_cast<double>(trials);
}

void
printAblation()
{
    const auto chips = buildPaperPopulation();
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    const double pass_ms = 0.882; // SoftMC pass cost (Table 4).

    std::printf("=== Ablation: CODIC-sig filter depth ===\n");
    TextTable t({"Filter challenges", "Exact-match FRR",
                 "Eval time (SoftMC)"});
    for (int depth : {1, 3, 5, 7, 9}) {
        SigPufParams params;
        params.filter_challenges = depth;
        CodicSigPuf puf(params);
        const double frr =
            depth == 1
                ? exactMatchFrr(
                      // Depth 1 == unfiltered single evaluation.
                      puf, all, 4000, 17)
                : exactMatchFrr(puf, all, 4000, 17);
        t.addRow({std::to_string(depth), fmt(frr * 100.0, 2) + " %",
                  fmt(pass_ms * depth, 2) + " ms"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("(the paper's conservative depth of 5 eliminates "
                "response noise at 4.41 ms)\n");

    std::printf("\n=== Ablation: DRAM Latency PUF read count ===\n");
    TextTable l({"Reads", "Filter threshold", "Exact-match FRR",
                 "Eval time (SoftMC)"});
    for (int reads : {5, 10, 25, 50, 100}) {
        LatencyPufParams params;
        params.reads = reads;
        params.filter_threshold = reads * 9 / 10;
        DramLatencyPuf puf(params);
        const double frr = exactMatchFrr(puf, all, 1500, 19);
        l.addRow({std::to_string(reads),
                  std::to_string(params.filter_threshold),
                  fmt(frr * 100.0, 1) + " %",
                  fmt(pass_ms * reads, 1) + " ms"});
    }
    std::printf("%s", l.render().c_str());
    std::printf("(a 5-10 read Latency PUF approaches CODIC-sig's "
                "latency but its responses are\nfar less repeatable - "
                "the quality/latency trade-off of Section 6.1.1)\n");
}

void
BM_FilteredEvaluationDepth5(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    const CodicSigPuf puf;
    Challenge ch{3, 65536};
    uint64_t n = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            puf.evaluateFiltered(chips[0], ch, {30.0, false, ++n}));
}
BENCHMARK(BM_FilteredEvaluationDepth5);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
