/**
 * @file
 * Ablation: PUF filtering depth (Section 6.1.1). Thin wrapper over
 * the `puf_ablation_filter` scenario, plus a filtered-evaluation
 * microbenchmark.
 */

#include <benchmark/benchmark.h>

#include "puf/sig_puf.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_FilteredEvaluationDepth5(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    const CodicSigPuf puf;
    Challenge ch{3, 65536};
    uint64_t n = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            puf.evaluateFiltered(chips[0], ch, {30.0, false, ++n}));
}
BENCHMARK(BM_FilteredEvaluationDepth5);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"puf_ablation_filter"}, argc, argv);
}
