/**
 * @file
 * Paper Table 11 (CODIC-sigsa Monte-Carlo bit flips): thin wrapper
 * over the `circuit_table11_sigsa` scenario, plus Monte-Carlo-kernel
 * microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "circuit/monte_carlo.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_MonteCarloFastPath100k(benchmark::State &state)
{
    for (auto _ : state) {
        MonteCarloConfig mc;
        mc.schedule = sigsaSchedule();
        mc.runs = 100000;
        benchmark::DoNotOptimize(runMonteCarlo(mc));
    }
}
BENCHMARK(BM_MonteCarloFastPath100k)->Unit(benchmark::kMillisecond);

void
BM_MonteCarloFullTransient(benchmark::State &state)
{
    for (auto _ : state) {
        MonteCarloConfig mc;
        mc.schedule = sigsaSchedule();
        mc.runs = 100;
        mc.fast_path = false;
        benchmark::DoNotOptimize(runMonteCarlo(mc));
    }
}
BENCHMARK(BM_MonteCarloFullTransient)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"circuit_table11_sigsa"}, argc, argv);
}
