/**
 * @file
 * Reproduces paper Table 11 (Appendix C): Monte-Carlo analysis of
 * CODIC-sigsa bit flips as a function of process variation (2-5 %)
 * and temperature (30-85 C at 4 % PV), 100,000 samples per point.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuit/monte_carlo.h"
#include "common/table.h"

namespace {

using namespace codic;

void
printTable11()
{
    std::printf("=== Table 11: CODIC-sigsa bit flips vs process "
                "variation and temperature (100k runs/point) ===\n");

    TextTable pv_table({"Process variation", "Bit flips", "Paper"});
    const std::pair<double, const char *> pv_rows[] = {
        {0.02, "0.00 %"},
        {0.03, "0.00 %"},
        {0.04, "0.02 %"},
        {0.05, "0.19 %"},
    };
    for (const auto &[pv, paper] : pv_rows) {
        MonteCarloConfig mc;
        mc.schedule = sigsaSchedule();
        mc.params.process_variation = pv;
        mc.seed = 100 + static_cast<uint64_t>(pv * 1000);
        const auto r = runMonteCarlo(mc);
        pv_table.addRow({fmt(pv * 100.0, 0) + " %",
                         fmt(r.flipFraction() * 100.0, 2) + " %",
                         paper});
    }
    std::printf("%s", pv_table.render().c_str());

    std::printf("\n");
    TextTable t_table(
        {"Temperature (4% PV)", "Bit flips", "Paper"});
    const std::pair<double, const char *> t_rows[] = {
        {30.0, "0.02 %"},
        {60.0, "0.19 %"},
        {70.0, "0.21 %"},
        {85.0, "0.15 %"},
    };
    for (const auto &[temp, paper] : t_rows) {
        MonteCarloConfig mc;
        mc.schedule = sigsaSchedule();
        mc.params.temperature_c = temp;
        mc.seed = 200 + static_cast<uint64_t>(temp);
        const auto r = runMonteCarlo(mc);
        t_table.addRow({fmt(temp, 0) + " C",
                        fmt(r.flipFraction() * 100.0, 2) + " %",
                        paper});
    }
    std::printf("%s", t_table.render().c_str());
    std::printf(
        "\nNotes:\n"
        "  - flips appear once process variation exceeds the designed\n"
        "    SA bias (~4%%) and grow quickly beyond it;\n"
        "  - temperature raises flips sharply then saturates. The\n"
        "    paper's slight non-monotonicity at 85 C (0.15%% after\n"
        "    0.21%%) is within the sampling noise of 100k runs; our\n"
        "    model saturates monotonically (see EXPERIMENTS.md).\n");
}

void
BM_MonteCarloFastPath100k(benchmark::State &state)
{
    for (auto _ : state) {
        MonteCarloConfig mc;
        mc.schedule = sigsaSchedule();
        mc.runs = 100000;
        benchmark::DoNotOptimize(runMonteCarlo(mc));
    }
}
BENCHMARK(BM_MonteCarloFastPath100k)->Unit(benchmark::kMillisecond);

void
BM_MonteCarloFullTransient(benchmark::State &state)
{
    for (auto _ : state) {
        MonteCarloConfig mc;
        mc.schedule = sigsaSchedule();
        mc.runs = 100;
        mc.fast_path = false;
        benchmark::DoNotOptimize(runMonteCarlo(mc));
    }
}
BENCHMARK(BM_MonteCarloFullTransient)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

int
main(int argc, char **argv)
{
    printTable11();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
