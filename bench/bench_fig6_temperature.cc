/**
 * @file
 * Paper Figure 6 (Intra-Jaccard vs temperature) and the accelerated
 * -aging result: thin wrapper over the `puf_fig6_temperature` and
 * `puf_aging` scenarios, plus a campaign microbenchmark.
 */

#include <benchmark/benchmark.h>

#include "puf/experiments.h"
#include "puf/sig_puf.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_TemperatureCampaign(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    const CodicSigPuf sig;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runTemperatureCampaign(
            sig, all, 55.0, 200, {.seed = 5, .threads = 1}));
    }
}
BENCHMARK(BM_TemperatureCampaign)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"puf_fig6_temperature", "puf_aging"}, argc, argv);
}
