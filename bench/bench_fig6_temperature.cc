/**
 * @file
 * Reproduces paper Figure 6 (Intra-Jaccard vs. temperature delta for
 * the three PUFs) and the Section 6.1.1 accelerated-aging result.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "puf/experiments.h"
#include "puf/latency_puf.h"
#include "puf/prelat_puf.h"
#include "puf/sig_puf.h"

namespace {

using namespace codic;

void
printFigure6()
{
    std::printf("=== Figure 6: Intra-Jaccard vs. temperature delta "
                "from 30 C ===\n");
    const auto chips = buildPaperPopulation();
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);

    const CodicSigPuf sig;
    const DramLatencyPuf lat;
    const PrelatPuf pre;
    const std::vector<std::pair<const DramPuf *, const char *>> pufs = {
        {&lat, "DRAM Latency PUF"},
        {&pre, "PreLatPUF"},
        {&sig, "CODIC-sig PUF"},
    };

    TextTable t({"PUF", "dT=0", "dT=15", "dT=25", "dT=55"});
    for (const auto &[puf, name] : pufs) {
        std::vector<std::string> row{name};
        for (double delta : {0.0, 15.0, 25.0, 55.0}) {
            RunningStats s;
            for (double v :
                 runTemperatureCampaign(*puf, all, delta, 2000, 5))
                s.add(v);
            row.push_back(fmt(s.mean(), 3));
        }
        t.addRow(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "\nPaper observations reproduced:\n"
        "  - CODIC-sig stays high even at dT = 55 C (robust)\n"
        "  - PreLatPUF is the most robust (at the cost of poor\n"
        "    uniqueness, see Figure 5)\n"
        "  - the DRAM Latency PUF degrades strongly with dT\n");

    std::printf("\n=== Section 6.1.1: accelerated aging "
                "(125 C stress) ===\n");
    TextTable a({"PUF", "Intra-Jaccard after aging"});
    for (const auto &[puf, name] : pufs) {
        RunningStats s;
        for (double v : runAgingCampaign(*puf, all, 2000, 9))
            s.add(v);
        a.addRow({name, fmt(s.mean(), 3)});
    }
    std::printf("%s", a.render().c_str());
    std::printf("(paper: CODIC-sig PUF is very robust to aging; most "
                "indices are 1)\n");
}

void
BM_TemperatureCampaign(benchmark::State &state)
{
    const auto chips = buildPaperPopulation();
    std::vector<const SimulatedChip *> all;
    for (const auto &c : chips)
        all.push_back(&c);
    const CodicSigPuf sig;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runTemperatureCampaign(sig, all, 55.0, 200, 5));
    }
}
BENCHMARK(BM_TemperatureCampaign)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure6();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
