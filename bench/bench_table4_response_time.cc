/**
 * @file
 * Reproduces paper Table 4: evaluation time of the DRAM Latency PUF,
 * PreLatPUF, and CODIC-sig PUF over 8 KB segments, with and without
 * each PUF's production filter, at the paper's SoftMC measurement
 * scale plus the native command-level latency of this repository's
 * cycle-accurate DRAM model.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.h"
#include "puf/response_time.h"

namespace {

using namespace codic;

void
printTable4()
{
    std::printf("=== Table 4: PUF evaluation time, 8 KB segments ===\n");
    const DramConfig cfg = DramConfig::ddr3_1600(2048);

    struct Row
    {
        const char *name;
        PufKind kind;
        bool has_unfiltered;
        const char *paper;
    };
    const Row rows[] = {
        {"DRAM Latency PUF", PufKind::Latency, false, "88.2 ms"},
        {"PreLatPUF", PufKind::Prelat, true, "7.95 (1.59) ms"},
        {"CODIC-sig PUF", PufKind::CodicSig, true, "4.41 (0.88) ms"},
        {"CODIC-sig-opt PUF", PufKind::CodicSigOpt, true, "(n/a)"},
    };

    TextTable t({"PUF", "SoftMC w/ filter", "SoftMC w/o filter",
                 "Paper", "Native w/ filter", "Native w/o filter"});
    for (const auto &row : rows) {
        const EvalTime filt = evaluationTime(row.kind, true, cfg);
        const EvalTime raw = evaluationTime(row.kind, false, cfg);
        t.addRow({row.name, fmt(filt.softmc_ms, 2) + " ms",
                  row.has_unfiltered ? fmt(raw.softmc_ms, 2) + " ms"
                                     : "(filter integral)",
                  row.paper, fmtTimeNs(filt.native_ns),
                  fmtTimeNs(raw.native_ns)});
    }
    std::printf("%s", t.render().c_str());

    const double lat =
        evaluationTime(PufKind::Latency, true, cfg).softmc_ms;
    const double pre =
        evaluationTime(PufKind::Prelat, true, cfg).softmc_ms;
    const double sig =
        evaluationTime(PufKind::CodicSig, true, cfg).softmc_ms;
    const double sig_raw =
        evaluationTime(PufKind::CodicSig, false, cfg).softmc_ms;
    std::printf("\nRatios (paper Section 6.1.2):\n"
                "  CODIC-sig vs Latency PUF: %.0fx (filtered), %.0fx "
                "(unfiltered)  [paper: 20x / 100x]\n"
                "  CODIC-sig vs PreLatPUF:   %.1fx  [paper: 1.8x]\n",
                lat / sig, lat / sig_raw, pre / sig);
}

void
BM_NativeSigEvaluationTime(benchmark::State &state)
{
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluationTime(PufKind::CodicSig, true, cfg));
    }
}
BENCHMARK(BM_NativeSigEvaluationTime);

void
BM_NativeLatencyPufEvaluationTime(benchmark::State &state)
{
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluationTime(PufKind::Latency, true, cfg));
    }
}
BENCHMARK(BM_NativeLatencyPufEvaluationTime)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printTable4();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
