/**
 * @file
 * Paper Table 4 (PUF evaluation times): thin wrapper over the
 * `puf_table4_response_time` scenario, plus evaluation-time-model
 * microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include "puf/response_time.h"
#include "scenario_main.h"

namespace {

using namespace codic;

void
BM_NativeSigEvaluationTime(benchmark::State &state)
{
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluationTime(PufKind::CodicSig, true, cfg));
    }
}
BENCHMARK(BM_NativeSigEvaluationTime);

void
BM_NativeLatencyPufEvaluationTime(benchmark::State &state)
{
    const DramConfig cfg = DramConfig::ddr3_1600(2048);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluationTime(PufKind::Latency, true, cfg));
    }
}
BENCHMARK(BM_NativeLatencyPufEvaluationTime)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    return codic::scenarioBenchMain({"puf_table4_response_time"}, argc, argv);
}
