/**
 * @file
 * Secure-deallocation evaluation harness (paper Appendix A):
 * compares software zeroing against the LISA-clone, RowClone, and
 * CODIC-det hardware deallocation paths on single-core benchmarks
 * (Fig. 8) and 4-core workload mixes (Fig. 9), reporting speedup and
 * DRAM energy savings relative to the software baseline.
 */

#ifndef CODIC_SECDEALLOC_EVALUATE_H
#define CODIC_SECDEALLOC_EVALUATE_H

#include <string>
#include <vector>

#include "common/run_options.h"
#include "power/energy_model.h"
#include "sim/core.h"
#include "sim/workloads.h"

namespace codic {

/** Result of one benchmark run under one deallocation mechanism. */
struct DeallocRunResult
{
    double time_ns = 0.0;
    double energy_nj = 0.0;
    CoreStats core_stats;     //!< Core 0 stats (single core: the run).
    CommandCounts commands;   //!< Aggregated across channels.
};

/** Simulation configuration for the secure-dealloc evaluation. */
struct DeallocEvalConfig
{
    /**
     * Shared options. `run.seed` seeds the workload generators of
     * the compare* sweeps; `run.threads` drives the campaign engine
     * (each mechanism/benchmark run is an independent simulation;
     * results are identical at any thread count).
     */
    RunOptions run = {.seed = 11};

    int64_t dram_capacity_mb = 2048;
    int dram_channels = 1;    //!< Channels of the simulated module.
    EnergyParams energy;
    CoreConfig core;
};

/** Run one single-core benchmark under a mechanism. */
DeallocRunResult runSingleCore(const Workload &workload,
                               DeallocMode mode,
                               const DeallocEvalConfig &config = {});

/** Run one 4-core mix under a mechanism (shared channel). */
DeallocRunResult runMultiCore(const WorkloadMix &mix, DeallocMode mode,
                              const DeallocEvalConfig &config = {});

/** Speedup of `fast` over `slow` runtimes, as a fraction (0.1=10%). */
double speedupOver(const DeallocRunResult &baseline,
                   const DeallocRunResult &candidate);

/** Energy savings of `candidate` vs `baseline`, as a fraction. */
double energySavings(const DeallocRunResult &baseline,
                     const DeallocRunResult &candidate);

/** One benchmark's Fig. 8 row: savings per hardware mechanism. */
struct BenchmarkComparison
{
    std::string name;
    double lisa_speedup = 0.0;
    double rowclone_speedup = 0.0;
    double codic_speedup = 0.0;
    double lisa_energy = 0.0;
    double rowclone_energy = 0.0;
    double codic_energy = 0.0;
};

/**
 * Evaluate one single-core benchmark against all mechanisms
 * (workload generated from config.run.seed).
 */
BenchmarkComparison compareSingleCore(const std::string &benchmark,
                                      const DeallocEvalConfig &config = {});

/** Evaluate one mix against all mechanisms. */
BenchmarkComparison compareMultiCore(const WorkloadMix &mix,
                                     const DeallocEvalConfig &config = {});

/**
 * Evaluate many single-core benchmarks (Fig. 8 sweep). The
 * benchmark x mechanism grid is flattened into one campaign, so with
 * more than one engine thread independent simulations run
 * concurrently; results are identical to the sequential sweep.
 */
std::vector<BenchmarkComparison>
compareSingleCoreAll(const std::vector<std::string> &benchmarks,
                     const DeallocEvalConfig &config = {});

/** Evaluate many mixes (Fig. 9 sweep); same campaign structure. */
std::vector<BenchmarkComparison>
compareMultiCoreAll(const std::vector<WorkloadMix> &mixes,
                    const DeallocEvalConfig &config = {});

} // namespace codic

#endif // CODIC_SECDEALLOC_EVALUATE_H
