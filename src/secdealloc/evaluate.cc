#include "secdealloc/evaluate.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "dram/refresh.h"

namespace codic {

namespace {

DramConfig
dramFor(const DeallocEvalConfig &config)
{
    return DramConfig::ddr3_1600(config.dram_capacity_mb);
}

} // namespace

DeallocRunResult
runSingleCore(const Workload &workload, DeallocMode mode,
              const DeallocEvalConfig &config)
{
    DramChannel channel(dramFor(config));
    MemoryController controller(channel);
    CoreConfig core_cfg = config.core;
    core_cfg.dealloc = mode;
    InOrderCore core(controller, core_cfg);
    core.bind(&workload);
    double end_ns = core.run();
    const Cycle drained = controller.drainWrites();
    end_ns = std::max(end_ns,
                      static_cast<double>(drained) *
                          channel.config().tck_ns);

    DeallocRunResult result;
    result.time_ns = end_ns;
    result.core_stats = core.stats();
    result.commands = channel.counts();
    result.energy_nj =
        campaignEnergyNj(result.commands, end_ns, config.energy);
    return result;
}

DeallocRunResult
runMultiCore(const WorkloadMix &mix, DeallocMode mode,
             const DeallocEvalConfig &config)
{
    CODIC_ASSERT(!mix.traces.empty());
    DramChannel channel(dramFor(config));
    MemoryController controller(channel);

    CoreConfig core_cfg = config.core;
    core_cfg.dealloc = mode;

    // Each core gets a private physical region.
    const uint64_t region =
        static_cast<uint64_t>(channel.config().capacityBytes()) /
        mix.traces.size();
    std::vector<std::unique_ptr<InOrderCore>> cores;
    for (size_t i = 0; i < mix.traces.size(); ++i) {
        cores.push_back(std::make_unique<InOrderCore>(
            controller, core_cfg, region * i));
        cores[i]->bind(&mix.traces[i]);
    }

    // Discrete-event interleaving: always step the core with the
    // smallest local time so shared-channel commands issue in
    // near-global-time order.
    while (true) {
        InOrderCore *next = nullptr;
        for (auto &core : cores)
            if (!core->done() &&
                (!next || core->timeNs() < next->timeNs()))
                next = core.get();
        if (!next)
            break;
        next->step();
    }

    double end_ns = 0.0;
    for (auto &core : cores)
        end_ns = std::max(end_ns, core->timeNs());
    const Cycle drained = controller.drainWrites();
    end_ns = std::max(end_ns,
                      static_cast<double>(drained) *
                          channel.config().tck_ns);

    DeallocRunResult result;
    result.time_ns = end_ns;
    result.core_stats = cores[0]->stats();
    result.commands = channel.counts();
    result.energy_nj =
        campaignEnergyNj(result.commands, end_ns, config.energy);
    return result;
}

double
speedupOver(const DeallocRunResult &baseline,
            const DeallocRunResult &candidate)
{
    CODIC_ASSERT(candidate.time_ns > 0.0);
    return baseline.time_ns / candidate.time_ns - 1.0;
}

double
energySavings(const DeallocRunResult &baseline,
              const DeallocRunResult &candidate)
{
    CODIC_ASSERT(baseline.energy_nj > 0.0);
    return 1.0 - candidate.energy_nj / baseline.energy_nj;
}

BenchmarkComparison
compareSingleCore(const std::string &benchmark, uint64_t seed,
                  const DeallocEvalConfig &config)
{
    const Workload w = generateWorkload(benchmarkParams(benchmark, seed));
    const auto base = runSingleCore(w, DeallocMode::SoftwareZero, config);
    const auto lisa = runSingleCore(w, DeallocMode::LisaClone, config);
    const auto rc = runSingleCore(w, DeallocMode::RowClone, config);
    const auto codic = runSingleCore(w, DeallocMode::CodicDet, config);

    BenchmarkComparison c;
    c.name = benchmark;
    c.lisa_speedup = speedupOver(base, lisa);
    c.rowclone_speedup = speedupOver(base, rc);
    c.codic_speedup = speedupOver(base, codic);
    c.lisa_energy = energySavings(base, lisa);
    c.rowclone_energy = energySavings(base, rc);
    c.codic_energy = energySavings(base, codic);
    return c;
}

BenchmarkComparison
compareMultiCore(const WorkloadMix &mix, const DeallocEvalConfig &config)
{
    const auto base = runMultiCore(mix, DeallocMode::SoftwareZero, config);
    const auto lisa = runMultiCore(mix, DeallocMode::LisaClone, config);
    const auto rc = runMultiCore(mix, DeallocMode::RowClone, config);
    const auto codic = runMultiCore(mix, DeallocMode::CodicDet, config);

    BenchmarkComparison c;
    c.name = mix.name;
    c.lisa_speedup = speedupOver(base, lisa);
    c.rowclone_speedup = speedupOver(base, rc);
    c.codic_speedup = speedupOver(base, codic);
    c.lisa_energy = energySavings(base, lisa);
    c.rowclone_energy = energySavings(base, rc);
    c.codic_energy = energySavings(base, codic);
    return c;
}

} // namespace codic
