#include "secdealloc/evaluate.h"

#include <algorithm>
#include <array>
#include <memory>

#include "common/logging.h"
#include "common/parallel.h"
#include "dram/refresh.h"
#include "dram/system.h"

namespace codic {

namespace {

DramConfig
dramFor(const DeallocEvalConfig &config)
{
    return DramConfig::ddr3_1600(config.dram_capacity_mb,
                                 config.dram_channels);
}

ControllerConfig
controllerFor(const DeallocEvalConfig &config)
{
    ControllerConfig cc;
    // Multi-channel modules interleave row blocks across channels:
    // consecutive rows round-robin banks then channels, so dealloc
    // row ops spread over every channel while one phys row block
    // still maps to exactly one DRAM row (whole-row zeroing stays
    // exact).
    if (config.dram_channels > 1)
        cc.map_scheme = MapScheme::RowChannelBankColumn;
    return cc;
}

/** The four mechanisms of every Fig. 8 / Fig. 9 comparison. */
constexpr std::array<DeallocMode, 4> kModes = {
    DeallocMode::SoftwareZero,
    DeallocMode::LisaClone,
    DeallocMode::RowClone,
    DeallocMode::CodicDet,
};

BenchmarkComparison
fromRuns(const std::string &name,
         const std::array<DeallocRunResult, 4> &runs)
{
    const DeallocRunResult &base = runs[0];
    BenchmarkComparison c;
    c.name = name;
    c.lisa_speedup = speedupOver(base, runs[1]);
    c.rowclone_speedup = speedupOver(base, runs[2]);
    c.codic_speedup = speedupOver(base, runs[3]);
    c.lisa_energy = energySavings(base, runs[1]);
    c.rowclone_energy = energySavings(base, runs[2]);
    c.codic_energy = energySavings(base, runs[3]);
    return c;
}

} // namespace

DeallocRunResult
runSingleCore(const Workload &workload, DeallocMode mode,
              const DeallocEvalConfig &config)
{
    DramSystem system(dramFor(config), controllerFor(config));
    CoreConfig core_cfg = config.core;
    core_cfg.dealloc = mode;
    InOrderCore core(system, core_cfg);
    core.bind(&workload);
    double end_ns = core.run();
    const Cycle drained = system.drainAll();
    end_ns = std::max(end_ns,
                      static_cast<double>(drained) *
                          system.config().tck_ns);

    DeallocRunResult result;
    result.time_ns = end_ns;
    result.core_stats = core.stats();
    result.commands = system.totalCounts();
    result.energy_nj = systemEnergyNj(system, end_ns, config.energy);
    return result;
}

DeallocRunResult
runMultiCore(const WorkloadMix &mix, DeallocMode mode,
             const DeallocEvalConfig &config)
{
    CODIC_ASSERT(!mix.traces.empty());
    DramSystem system(dramFor(config), controllerFor(config));

    CoreConfig core_cfg = config.core;
    core_cfg.dealloc = mode;

    // Each core gets a private physical region.
    const uint64_t region =
        static_cast<uint64_t>(system.config().capacityBytes()) /
        mix.traces.size();
    std::vector<std::unique_ptr<InOrderCore>> cores;
    for (size_t i = 0; i < mix.traces.size(); ++i) {
        cores.push_back(std::make_unique<InOrderCore>(
            system, core_cfg, region * i));
        cores[i]->bind(&mix.traces[i]);
    }

    // Discrete-event interleaving: always step the core with the
    // smallest local time so shared-system commands issue in
    // near-global-time order.
    while (true) {
        InOrderCore *next = nullptr;
        for (auto &core : cores)
            if (!core->done() &&
                (!next || core->timeNs() < next->timeNs()))
                next = core.get();
        if (!next)
            break;
        next->step();
    }

    double end_ns = 0.0;
    for (auto &core : cores)
        end_ns = std::max(end_ns, core->timeNs());
    const Cycle drained = system.drainAll();
    end_ns = std::max(end_ns,
                      static_cast<double>(drained) *
                          system.config().tck_ns);

    DeallocRunResult result;
    result.time_ns = end_ns;
    result.core_stats = cores[0]->stats();
    result.commands = system.totalCounts();
    result.energy_nj = systemEnergyNj(system, end_ns, config.energy);
    return result;
}

double
speedupOver(const DeallocRunResult &baseline,
            const DeallocRunResult &candidate)
{
    CODIC_ASSERT(candidate.time_ns > 0.0);
    return baseline.time_ns / candidate.time_ns - 1.0;
}

double
energySavings(const DeallocRunResult &baseline,
              const DeallocRunResult &candidate)
{
    CODIC_ASSERT(baseline.energy_nj > 0.0);
    return 1.0 - candidate.energy_nj / baseline.energy_nj;
}

BenchmarkComparison
compareSingleCore(const std::string &benchmark,
                  const DeallocEvalConfig &config)
{
    const Workload w =
        generateWorkload(benchmarkParams(benchmark, config.run.seed));
    std::array<DeallocRunResult, 4> runs;
    CampaignEngine engine(config.run.threads);
    engine.forEach(kModes.size(), [&](size_t m) {
        runs[m] = runSingleCore(w, kModes[m], config);
    });
    return fromRuns(benchmark, runs);
}

BenchmarkComparison
compareMultiCore(const WorkloadMix &mix, const DeallocEvalConfig &config)
{
    std::array<DeallocRunResult, 4> runs;
    CampaignEngine engine(config.run.threads);
    engine.forEach(kModes.size(), [&](size_t m) {
        runs[m] = runMultiCore(mix, kModes[m], config);
    });
    return fromRuns(mix.name, runs);
}

std::vector<BenchmarkComparison>
compareSingleCoreAll(const std::vector<std::string> &benchmarks,
                     const DeallocEvalConfig &config)
{
    // Flatten benchmark x mechanism so the engine balances the whole
    // grid instead of four runs at a time.
    std::vector<Workload> workloads;
    workloads.reserve(benchmarks.size());
    for (const auto &name : benchmarks)
        workloads.push_back(
            generateWorkload(benchmarkParams(name, config.run.seed)));

    std::vector<std::array<DeallocRunResult, 4>> runs(benchmarks.size());
    CampaignEngine engine(config.run.threads);
    engine.forEach(benchmarks.size() * kModes.size(), [&](size_t t) {
        const size_t b = t / kModes.size();
        const size_t m = t % kModes.size();
        runs[b][m] = runSingleCore(workloads[b], kModes[m], config);
    });

    std::vector<BenchmarkComparison> out;
    out.reserve(benchmarks.size());
    for (size_t b = 0; b < benchmarks.size(); ++b)
        out.push_back(fromRuns(benchmarks[b], runs[b]));
    return out;
}

std::vector<BenchmarkComparison>
compareMultiCoreAll(const std::vector<WorkloadMix> &mixes,
                    const DeallocEvalConfig &config)
{
    std::vector<std::array<DeallocRunResult, 4>> runs(mixes.size());
    CampaignEngine engine(config.run.threads);
    engine.forEach(mixes.size() * kModes.size(), [&](size_t t) {
        const size_t x = t / kModes.size();
        const size_t m = t % kModes.size();
        runs[x][m] = runMultiCore(mixes[x], kModes[m], config);
    });

    std::vector<BenchmarkComparison> out;
    out.reserve(mixes.size());
    for (size_t x = 0; x < mixes.size(); ++x)
        out.push_back(fromRuns(mixes[x].name, runs[x]));
    return out;
}

} // namespace codic
