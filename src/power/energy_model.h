/**
 * @file
 * Command-level DRAM energy model in the style of DRAMPower (the tool
 * the paper uses, Section 4.3 / 6.2): each command carries a fixed
 * energy derived from IDD-style current measurements, plus a
 * background power term integrated over campaign time.
 *
 * Calibration anchors from the paper:
 *  - an activation (ACT + restore + PRE) costs ~17 nJ (Section 4.2.1);
 *  - address routing is ~40 % of command energy and the SA/precharge
 *    array operation another ~40 % (Section 4.3, citing DRAMPower);
 *  - all CODIC variants land at 17.2-17.3 nJ (Table 2);
 *  - the CODIC delay elements add < 500 fJ (Section 4.2.1).
 */

#ifndef CODIC_POWER_ENERGY_MODEL_H
#define CODIC_POWER_ENERGY_MODEL_H

#include "circuit/signals.h"
#include "dram/channel.h"

namespace codic {

/** Energy constants (nJ unless noted) for a DDR3-1600 x8 module. */
struct EnergyParams
{
    /** Address decode/routing component of any row command (~40 %). */
    double route_nj = 6.9;

    /** SA or precharge-unit array switching component (~40 %). */
    double array_nj = 6.9;

    /** Control/peripheral component (~20 %). */
    double control_nj = 3.4;

    /**
     * Extra restore energy of a full activation (charge-shared cell
     * pulled to full rail); the 0.1 nJ delta between CODIC-activate
     * and the other variants in Table 2.
     */
    double restore_extra_nj = 0.1;

    /** CODIC configurable-delay-element overhead (all four signals). */
    double codic_delay_nj = 0.000444;

    /** Column read burst (64 B over the module bus). */
    double rd_burst_nj = 5.2;

    /** Column write burst (64 B over the module bus). */
    double wr_burst_nj = 4.3;

    /** RowClone second activation (restore-only, no fresh decode). */
    double rowclone_nj = 12.0;

    /** LISA row-buffer movement hop (full bitline swing, two rows). */
    double lisa_rbm_nj = 13.5;

    /** One auto-refresh command (multi-row internal activation). */
    double ref_nj = 130.0;

    /** Mode-register set. */
    double mrs_nj = 0.5;

    /** Background (standby) power of the module, in mW. */
    double background_mw = 25.0;
};

/**
 * Energy of executing one CODIC variant (Table 2): componentized as
 * routing + array operation + control (+ restore delta for
 * activation-class schedules) + the delay-element overhead.
 */
double variantEnergyNj(const SignalSchedule &sched,
                       const EnergyParams &params = {});

/**
 * Total energy (nJ) of a command campaign: per-command energies from
 * the issue counters plus background power over the elapsed time.
 */
double campaignEnergyNj(const CommandCounts &counts, double elapsed_ns,
                        const EnergyParams &params = {});

class DramSystem;

/**
 * Multi-channel roll-up: per-command energies from every channel's
 * counters plus one background-power term per channel (each channel's
 * devices draw standby current for the whole campaign).
 */
double systemEnergyNj(const DramSystem &system, double elapsed_ns,
                      const EnergyParams &params = {});

/** Energy of a full ACT + PRE pair (the paper's ~17 nJ activation). */
double actPreEnergyNj(const EnergyParams &params = {});

} // namespace codic

#endif // CODIC_POWER_ENERGY_MODEL_H
