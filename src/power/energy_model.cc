#include "power/energy_model.h"

#include "codic/variant.h"
#include "dram/system.h"

namespace codic {

double
actPreEnergyNj(const EnergyParams &params)
{
    return params.route_nj + params.array_nj + params.control_nj +
           params.restore_extra_nj;
}

double
variantEnergyNj(const SignalSchedule &sched, const EnergyParams &params)
{
    if (sched.empty())
        return 0.0;
    double e = params.route_nj + params.control_nj +
               params.codic_delay_nj;
    // Any schedule that drives the array (wordline, equalizer, or SA
    // legs) pays the array switching component. The paper observes
    // this makes all variants nearly equal in energy (Section 4.3).
    e += params.array_nj;
    if (classifySchedule(sched) == VariantClass::Activate)
        e += params.restore_extra_nj;
    return e;
}

double
campaignEnergyNj(const CommandCounts &counts, double elapsed_ns,
                 const EnergyParams &params)
{
    double e = 0.0;
    // ACT carries the full activation cost (restore included); PRE is
    // folded into the activation pair as DRAMPower does.
    e += static_cast<double>(counts.act) * actPreEnergyNj(params);
    e += static_cast<double>(counts.rd) * params.rd_burst_nj;
    e += static_cast<double>(counts.wr) * params.wr_burst_nj;
    e += static_cast<double>(counts.ref) * params.ref_nj;
    e += static_cast<double>(counts.mrs) * params.mrs_nj;
    e += static_cast<double>(counts.rowclone) * params.rowclone_nj;
    e += static_cast<double>(counts.lisa_rbm) * params.lisa_rbm_nj;
    // CODIC commands: modeled at the named-variant energy (17.2 nJ);
    // callers with exotic schedules can account separately.
    e += static_cast<double>(counts.codic) *
         (params.route_nj + params.array_nj + params.control_nj +
          params.codic_delay_nj);
    // Background power over the campaign.
    e += params.background_mw * 1e-3 * elapsed_ns; // mW * ns = pJ*1e3
    return e;
}

double
systemEnergyNj(const DramSystem &system, double elapsed_ns,
               const EnergyParams &params)
{
    double e = 0.0;
    for (int c = 0; c < system.channelCount(); ++c)
        e += campaignEnergyNj(system.channel(c).counts(), elapsed_ns,
                              params);
    return e;
}

} // namespace codic
