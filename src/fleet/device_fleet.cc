#include "fleet/device_fleet.h"

#include <algorithm>

#include "common/logging.h"
#include "fleet/region.h"

namespace codic {

namespace {

// Domain tags for per-device derived streams (distinct from the
// SimulatedChip-internal domains, which hash the chip seed).
constexpr uint64_t kDomainIdentity = 0xF1EE7001;
constexpr uint64_t kDomainChallenge = 0xF1EE7002;
constexpr uint64_t kDomainEnrollNonce = 0xF1EE7003;

} // namespace

DeviceFleet::DeviceFleet(const FleetConfig &config)
    : config_(config), puf_(config.sig_params)
{
    CODIC_ASSERT(config_.devices > 0);
    CODIC_ASSERT(config_.shards >= 1);
    CODIC_ASSERT(config_.segment_bits > 0);
    CODIC_ASSERT(config_.trng_segment_bits > 0);
    config_.dram.validate();
    shards_.resize(static_cast<size_t>(config_.shards));
}

int
DeviceFleet::shardOf(uint64_t device_id) const
{
    if (config_.shard_selector) {
        const int shard = config_.shard_selector->shardOf(
            device_id, config_.shards);
        CODIC_ASSERT(shard >= 0 && shard < config_.shards,
                     "shard selector out of range");
        return shard;
    }
    return static_cast<int>(device_id %
                            static_cast<uint64_t>(config_.shards));
}

uint64_t
DeviceFleet::deviceSeed(uint64_t device_id) const
{
    // A fresh root per call keeps the derivation a pure function of
    // (population_seed, device_id) - no sequential fork chain that
    // would tie a device's identity to who was instantiated before it.
    Rng root(config_.population_seed ^ kDomainIdentity);
    return root.fork(device_id).next64();
}

const SimulatedChip &
DeviceFleet::device(uint64_t device_id)
{
    CODIC_ASSERT(device_id < config_.devices);
    Shard &shard = shards_[static_cast<size_t>(shardOf(device_id))];
    auto it = shard.chips.find(device_id);
    if (it != shard.chips.end())
        return it->second;

    // Derive the chip's spec from the device seed alone: vendor and
    // voltage class mix like the paper's Table 12 population.
    const uint64_t seed = deviceSeed(device_id);
    Rng rng(seed);
    ChipSpec spec;
    spec.vendor = static_cast<Vendor>(rng.below(3));
    spec.ddr3l = rng.chance(0.25);
    spec.capacity_gbit = 4.0;
    spec.freq_mts = spec.vendor == Vendor::B ? 1333 : 1600;
    spec.module = "fleet";
    spec.seed = seed;
    return shard.chips.emplace(device_id, SimulatedChip(spec))
        .first->second;
}

Challenge
DeviceFleet::goldenChallenge(uint64_t device_id)
{
    const SimulatedChip &chip = device(device_id);
    Rng rng(deviceSeed(device_id) ^ kDomainChallenge);
    return Challenge{rng.below(chip.segments()), config_.segment_bits};
}

Response
DeviceFleet::enrollSignature(uint64_t device_id)
{
    return enrollSignature(device_id, goldenChallenge(device_id));
}

Response
DeviceFleet::enrollSignature(uint64_t device_id,
                             const Challenge &challenge)
{
    const SimulatedChip &chip = device(device_id);
    Rng rng(deviceSeed(device_id) ^ kDomainEnrollNonce);
    return puf_.evaluateFiltered(chip, challenge,
                                 {30.0, false, rng.next64()});
}

Response
DeviceFleet::challengeResponse(uint64_t device_id, uint64_t nonce)
{
    return challengeResponse(device_id, goldenChallenge(device_id),
                             nonce);
}

Response
DeviceFleet::challengeResponse(uint64_t device_id,
                               const Challenge &challenge,
                               uint64_t nonce)
{
    const SimulatedChip &chip = device(device_id);
    return puf_.evaluateFiltered(chip, challenge,
                                 {30.0, false, nonce});
}

CodicTrng &
DeviceFleet::trng(uint64_t device_id)
{
    CODIC_ASSERT(device_id < config_.devices);
    Shard &shard = shards_[static_cast<size_t>(shardOf(device_id))];
    auto it = shard.trngs.find(device_id);
    if (it != shard.trngs.end())
        return *it->second;

    TrngConfig cfg;
    cfg.run.seed = deviceSeed(device_id);
    cfg.segment_bits = config_.trng_segment_bits;
    cfg.harvest_latency_ns = config_.trng_harvest_latency_ns;
    return *shard.trngs
                .emplace(device_id, std::make_unique<CodicTrng>(cfg))
                .first->second;
}

size_t
DeviceFleet::instantiatedDevices() const
{
    size_t n = 0;
    for (const Shard &s : shards_)
        n += s.chips.size();
    return n;
}

std::vector<uint64_t>
DeviceFleet::shardDeviceIds(int shard) const
{
    CODIC_ASSERT(shard >= 0 && shard < config_.shards);
    std::vector<uint64_t> ids;
    if (config_.shard_selector) {
        // Arbitrary placement: filter the population. O(devices)
        // per shard, only paid when a non-default policy is set.
        for (uint64_t id = 0; id < config_.devices; ++id)
            if (shardOf(id) == shard)
                ids.push_back(id);
        return ids;
    }
    for (uint64_t id = static_cast<uint64_t>(shard);
         id < config_.devices;
         id += static_cast<uint64_t>(config_.shards))
        ids.push_back(id);
    return ids;
}

} // namespace codic
