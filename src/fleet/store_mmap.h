/**
 * @file
 * Mmap-backed serving path for the enrollment store.
 *
 * A production fleet store holds 10^7+ golden signatures; decoding
 * it into heap (EnrollmentStore::loadBinary) costs gigabytes and
 * minutes before the first request is served. MmapEnrollmentStore
 * instead maps the v2 binary format read-only (the same open/
 * validate idiom as the trace reader, src/trace/trace_io.*) and
 * serves lookups directly from the file: a binary search over the
 * sorted on-disk record index touches O(log n) pages, the record's
 * blob is decoded on demand through the same bounded LruIndex cache
 * the in-memory store uses, and per-request memory stays flat no
 * matter how many devices the file holds - only the touched working
 * set is ever resident.
 *
 * Writes (re-enrollments) go to an in-memory overlay that shadows
 * the mapped base file; an overlay entry supersedes ("tombstones")
 * its base record. compactTo() streams base and overlay into a
 * fresh file in one sorted merge, dropping the superseded record
 * bytes - the maintenance pass a long-serving store runs to shed
 * re-enrollment garbage.
 *
 * EnrollmentStoreWriter is the streaming producer of the same
 * format: records are appended in ascending device-id order and the
 * index footer is assembled on disk, so a 10^7-record store is
 * written with flat memory too (enrollment campaigns and compaction
 * both use it).
 */

#ifndef CODIC_FLEET_STORE_MMAP_H
#define CODIC_FLEET_STORE_MMAP_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/enrollment_store.h"

namespace codic {

/**
 * Streaming writer of the v2 binary store format. Append records in
 * strictly ascending device-id order, then finish(); the index
 * footer is staged in a side file and spliced on, so writer memory
 * stays flat at any record count. @throws FatalError on unsorted
 * appends or I/O failure.
 */
class EnrollmentStoreWriter
{
  public:
    EnrollmentStoreWriter(const std::string &path,
                          uint64_t population_seed);

    /** Unfinished writers clean up their partial files. */
    ~EnrollmentStoreWriter();

    EnrollmentStoreWriter(const EnrollmentStoreWriter &) = delete;
    EnrollmentStoreWriter &
    operator=(const EnrollmentStoreWriter &) = delete;

    /** Append one encoded record (ids strictly ascending). */
    void append(const EnrollmentRecord &record);

    /** Encode and append one signature (ids strictly ascending). */
    void append(uint64_t device_id, const Challenge &challenge,
                const Response &signature);

    /** Records appended so far. */
    uint64_t records() const { return count_; }

    /** Splice the index, patch the header, close. Call once. */
    void finish();

  private:
    std::string path_;
    std::string index_path_;
    std::ofstream out_;
    std::ofstream index_out_;
    uint64_t count_ = 0;
    uint64_t offset_ = 0;   //!< Next record's file offset.
    uint64_t last_id_ = 0;  //!< Highest id appended (count_ > 0).
    bool finished_ = false;
};

/**
 * Read-mostly enrollment backend over an mmap'd v2 store file plus
 * an in-memory write overlay. Thread-safe like EnrollmentStore; the
 * mapped file is never modified. @throws FatalError when the file
 * is missing, v1 (re-save to add the index), truncated, or corrupt.
 */
class MmapEnrollmentStore : public EnrollmentBackend
{
  public:
    explicit MmapEnrollmentStore(const std::string &path,
                                 size_t cache_capacity = 4096);
    ~MmapEnrollmentStore() override;

    MmapEnrollmentStore(const MmapEnrollmentStore &) = delete;
    MmapEnrollmentStore &
    operator=(const MmapEnrollmentStore &) = delete;

    // --- EnrollmentBackend ---

    uint64_t populationSeed() const override
    {
        return population_seed_;
    }

    /** Base records plus overlay entries for new devices. */
    size_t size() const override;

    /** Re-enrollments land in the overlay; the file is untouched. */
    void put(uint64_t device_id, const Challenge &challenge,
             const Response &signature) override;

    bool contains(uint64_t device_id) const override;

    std::shared_ptr<const Response>
    lookup(uint64_t device_id) const override;

    size_t cacheCapacity() const override { return cache_capacity_; }
    uint64_t cacheHits() const override { return hits_; }
    uint64_t cacheMisses() const override { return misses_; }

    // --- Serving telemetry ---

    const std::string &path() const { return path_; }

    /** Records in the mapped base file. */
    uint64_t baseRecords() const { return count_; }

    /** Overlay entries (new devices + re-enrollments). */
    size_t overlayRecords() const;

    /** Overlay entries shadowing a base record (tombstoned bytes). */
    uint64_t supersededRecords() const;

    /** Mapped file size in bytes. */
    uint64_t mappedBytes() const { return size_; }

    /**
     * Merged device ids, ascending. O(n) and materializes the full
     * id list - diagnostics and tests only, never the serving path.
     */
    std::vector<uint64_t> deviceIds() const;

    // --- Compaction ---

    struct CompactStats
    {
        uint64_t base_records = 0;    //!< Records in the old file.
        uint64_t overlay_records = 0; //!< Overlay entries merged in.
        uint64_t superseded = 0;      //!< Base records dropped.
        uint64_t records_written = 0; //!< Records in the new file.
    };

    /**
     * Stream base + overlay into a fresh v2 file at `path` (sorted
     * merge; overlay supersedes base). Flat memory at any store
     * size. The open store is unchanged - reopen the new file to
     * serve from it.
     */
    CompactStats compactTo(const std::string &path) const;

  private:
    /** Parse the base record at a validated index slot. */
    EnrollmentRecord baseRecord(uint64_t slot) const;

    /** Index slot of a device id, or count_ when absent. */
    uint64_t findSlot(uint64_t device_id) const;

    std::string path_;
    int fd_ = -1;
    const uint8_t *data_ = nullptr;
    uint64_t size_ = 0;
    uint64_t population_seed_ = 0;
    uint64_t count_ = 0;        //!< Base records.
    uint64_t index_offset_ = 0; //!< Index footer position.

    size_t cache_capacity_;

    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, EnrollmentRecord> overlay_;
    uint64_t overlay_new_ = 0; //!< Overlay ids absent from the base.
    mutable LruIndex index_;
    mutable std::unordered_map<uint64_t,
                               std::shared_ptr<const Response>>
        cache_;
    mutable uint64_t hits_ = 0;
    mutable uint64_t misses_ = 0;
};

/**
 * Stream a deterministic stand-in population of `devices` synthetic
 * enrollment records to `path` (sorted, v2, flat memory). Scale
 * studies use it to exercise the 10^7-device serving path: building
 * that store from real PUF enrollments takes hours of simulated
 * silicon, and the store/serving data path under test never depends
 * on signature content. Each record is a pure function of
 * (population_seed, device_id).
 */
uint64_t writeSyntheticStore(const std::string &path,
                             uint64_t population_seed,
                             uint64_t devices, int segment_bits,
                             int cells_per_record);

} // namespace codic

#endif // CODIC_FLEET_STORE_MMAP_H
