#include "fleet/admission.h"

#include <algorithm>

#include "common/logging.h"

namespace codic {

const char *
admissionClassName(AdmissionClass cls)
{
    switch (cls) {
      case AdmissionClass::Urgent: return "urgent";
      case AdmissionClass::BestEffort: return "best_effort";
    }
    panic("unknown admission class");
}

AdmissionController::AdmissionController(const AdmissionConfig &config,
                                         int lanes,
                                         double auto_deadline_ns)
    : config_(config)
{
    CODIC_ASSERT(config.enabled());
    CODIC_ASSERT(lanes >= 1);
    CODIC_ASSERT(auto_deadline_ns > 0.0);
    CODIC_ASSERT(config.burst >= 1.0);
    CODIC_ASSERT(config.urgent_reserve >= 0.0 &&
                 config.urgent_reserve < 1.0);
    CODIC_ASSERT(config.lane_queue_depth >= 1);
    deadline_ns_[static_cast<int>(AdmissionClass::Urgent)] =
        config.max_wait_urgent_ns > 0.0 ? config.max_wait_urgent_ns
                                        : auto_deadline_ns;
    deadline_ns_[static_cast<int>(AdmissionClass::BestEffort)] =
        config.max_wait_best_effort_ns > 0.0
            ? config.max_wait_best_effort_ns
            : 0.5 * deadline_ns_[static_cast<int>(
                        AdmissionClass::Urgent)];
    reserve_tokens_ = config.urgent_reserve * config.burst;
    tokens_ = config.burst; // A fresh service starts with full burst.
    lane_free_ns_.assign(static_cast<size_t>(lanes), 0.0);
    lane_done_ns_.resize(static_cast<size_t>(lanes));
}

AdmissionController::Decision
AdmissionController::offer(AdmissionClass cls, uint64_t device_id,
                           double arrival_ns, double est_service_ns)
{
    Decision d;

    // Refill at the capacity rate over the inter-arrival gap.
    if (arrival_ns > last_arrival_ns_) {
        tokens_ = std::min(config_.burst,
                           tokens_ + (arrival_ns - last_arrival_ns_) *
                                         config_.capacity_rps * 1e-9);
        last_arrival_ns_ = arrival_ns;
    }

    const size_t lane = static_cast<size_t>(
        device_id % lane_free_ns_.size());
    const double begin =
        std::max(arrival_ns, lane_free_ns_[lane]);
    const double wait = begin - arrival_ns;

    // Deadline-based drop: the client would time out before service
    // begins, so don't spend capacity on it.
    if (wait > deadline_ns_[static_cast<int>(cls)]) {
        d.admitted = false;
        d.deadline_shed = true;
        return d;
    }

    // Bounded wait queue: drop when the lane already holds its full
    // depth of queued/in-service requests at this arrival.
    auto &done = lane_done_ns_[lane];
    while (!done.empty() && done.front() <= arrival_ns)
        done.pop_front();
    if (done.size() >=
        static_cast<size_t>(config_.lane_queue_depth)) {
        d.admitted = false;
        d.queue_shed = true;
        return d;
    }

    // Token bucket with the urgent reserve: tokens are only spent on
    // requests that will actually be served.
    const double threshold =
        cls == AdmissionClass::Urgent ? 0.0 : reserve_tokens_;
    if (tokens_ < threshold + 1.0) {
        d.admitted = false;
        d.bucket_shed = true;
        return d;
    }
    tokens_ -= 1.0;

    d.wait_ns = wait;
    lane_free_ns_[lane] = begin + est_service_ns;
    done.push_back(begin + est_service_ns);
    return d;
}

} // namespace codic
