/**
 * @file
 * Request-level serving frontend over a DeviceFleet: a
 * RequestGenerator synthesizes open- or closed-loop streams of mixed
 * fleet requests (authenticate / re-enroll / TRNG draw / secure
 * deallocation) over a configurable device-popularity distribution,
 * and an AuthService executes them batched per shard on the
 * CampaignEngine.
 *
 * Reporting model: every request's modeled service latency and
 * energy are pure functions of (population seed, traffic seed,
 * request index) - service costs come from a cost model measured
 * once on the cycle-accurate DramSystem/energy accounting, and the
 * enrollment-store cache behavior is planned with a sequential LRU
 * simulation over the stream. Open-loop streams additionally get a
 * queueing-aware latency: each device maps to one of
 * AuthConfig::service_lanes logical serving lanes (a fixed modeled
 * deployment, deliberately NOT the execution shard count), a lane
 * serves its requests in arrival order, and a request's reported
 * latency is its queueing wait (lane busy past the arrival stamp)
 * plus its modeled service time. Closed-loop streams have
 * service-driven arrivals, so their wait is zero by construction.
 * The structured report (accept rates, p50/p95/p99 latency, waits,
 * energy) is therefore byte-identical at any shard or thread count.
 *
 * Per-shard replay statistics legitimately depend on the shard
 * count and feed the fleet_scaling study and wall-clock telemetry
 * only: each shard re-issues its batch's DRAM command footprints on
 * its own DramSystem, batching SchedulerPolicy::replay_batch
 * independent devices into one bank-parallel replay slice (every
 * request of a slice starts at the slice's start cycle, so row ops
 * and bursts of different devices overlap across banks and channels
 * under the full JEDEC checker; the next slice starts at the
 * slice's last completion).
 */

#ifndef CODIC_FLEET_AUTH_SERVICE_H
#define CODIC_FLEET_AUTH_SERVICE_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "dram/channel.h"
#include "fleet/admission.h"
#include "fleet/device_fleet.h"
#include "fleet/enrollment_store.h"
#include "power/energy_model.h"

namespace codic {

/** Fleet request types (the CODIC functionalities under load). */
enum class RequestKind : uint8_t
{
    Authenticate,  //!< PUF challenge-response against the store.
    Reenroll,      //!< Refresh the golden signature.
    TrngDraw,      //!< Draw whitened random bits.
    SecureDealloc, //!< CODIC-det bulk row zeroization.
};

constexpr int kRequestKinds = 4;

/** Display name of a RequestKind. */
const char *requestKindName(RequestKind kind);

/**
 * Admission priority of a request kind: authentication is urgent
 * (a device is waiting to be trusted), everything else is
 * best-effort maintenance the controller sheds first.
 */
AdmissionClass admissionClassOf(RequestKind kind);

/** One synthesized fleet request. */
struct FleetRequest
{
    uint64_t index = 0;     //!< Position in the stream.
    RequestKind kind = RequestKind::Authenticate;
    uint64_t device_id = 0;
    uint64_t nonce = 0;     //!< Per-request query entropy.
    uint32_t payload = 0;   //!< TRNG bits or dealloc rows requested.
    double arrival_us = 0;  //!< Open-loop arrival time (0 if closed).
};

/** Traffic synthesis parameters. */
struct TrafficConfig
{
    uint64_t traffic_seed = 1;
    uint64_t requests = 10000;

    /**
     * Device-popularity Zipf exponent: 0 = uniform; larger values
     * concentrate traffic on low-ranked devices (rank r drawn with
     * weight 1/(r+1)^zipf).
     */
    double zipf = 0.0;

    /** Request mix weights (normalized internally). */
    double weight_auth = 1.0;
    double weight_reenroll = 0.0;
    double weight_trng = 0.0;
    double weight_dealloc = 0.0;

    /**
     * Open-loop offered rate (requests/s) for Poisson arrival
     * stamping; <= 0 selects a closed-loop stream (arrivals are
     * service-driven, arrival_us stays 0).
     */
    double offered_rps = 0.0;

    /** Whitened bits per TRNG draw. */
    int trng_bits = 256;

    /** Rows zeroized per secure-deallocation request. */
    int dealloc_rows = 64;
};

/**
 * Exact finite-N Zipf(s) rank sampler by rejection inversion
 * (Hormann & Derflinger 1996, the sampler behind Apache Commons
 * RNG): O(1) memory and expected O(1) rejection rounds per draw, so
 * Zipfian traffic over a 10^9-device population stays as lazy as
 * the population itself.
 */
class ZipfRankSampler
{
  public:
    /** @param exponent Zipf exponent > 0. @param n Ranks (>= 1). */
    ZipfRankSampler(double exponent, uint64_t n);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    uint64_t sample(Rng &rng) const;

  private:
    double hIntegral(double x) const;
    double h(double x) const;
    double hIntegralInverse(double x) const;

    double exponent_;
    uint64_t n_;
    double h_x1_;  //!< hIntegral(1.5) - 1.
    double h_n_;   //!< hIntegral(n + 0.5).
    double s_;     //!< Acceptance shortcut threshold.
};

/**
 * Deterministic stream synthesizer. When built over an explicit
 * device-id list (e.g. the enrolled ids of a loaded store), requests
 * target only those devices; the popularity rank of a device is its
 * position in the list.
 */
class RequestGenerator
{
  public:
    /** Target the full population [0, devices). */
    RequestGenerator(const TrafficConfig &config, uint64_t devices);

    /** Target an explicit (rank-ordered) device-id list. */
    RequestGenerator(const TrafficConfig &config,
                     std::vector<uint64_t> device_ids);

    /** Synthesize the whole stream (index order = arrival order). */
    std::vector<FleetRequest> generate() const;

  private:
    uint64_t sampleDevice(Rng &rng) const;

    TrafficConfig config_;
    uint64_t devices_ = 0;             //!< Used when ids_ is empty.
    std::vector<uint64_t> ids_;        //!< Explicit targets (ranked).
    std::unique_ptr<ZipfRankSampler> zipf_; //!< Set when zipf > 0.
};

/** Service-cost model measured once per DRAM configuration. */
struct FleetCostModel
{
    double sig_eval_ns = 0;    //!< Filtered CODIC-sig evaluation.
    double rowop_ns = 0;       //!< One CODIC-det row op (steady state).
    double auth_energy_nj = 0; //!< Full evaluation footprint energy.
    double dealloc_row_energy_nj = 0; //!< Per zeroized row.
    double trng_cmd_energy_nj = 0;    //!< One harvest command.
    int eval_passes = 5;       //!< Filter depth of the footprint.
    int bursts_per_pass = 128; //!< Read bursts per segment pass.
};

/**
 * Measure the cost model on a scratch DramSystem of the given
 * configuration (cycle-accurate timings, DRAMPower-style energies).
 */
FleetCostModel buildFleetCostModel(const DramConfig &config,
                                   int filter_challenges,
                                   const EnergyParams &energy = {});

/** AuthService tuning. */
struct AuthConfig
{
    /** CampaignEngine workers (0 = auto, 1 = inline). */
    int threads = 0;

    /** Jaccard acceptance threshold for authentication. */
    double accept_threshold = 0.9;

    /** Modeled store service costs (ns). */
    double store_hit_ns = 120.0;    //!< Cached decode.
    double store_miss_ns = 1800.0;  //!< Record fetch + decode.
    double store_write_ns = 2500.0; //!< Record write-back.

    /**
     * Logical serving lanes of the queueing model (device id mod
     * lanes). A modeled deployment constant - never derived from the
     * execution shard or thread count, so the queueing-aware latency
     * stays byte-identical at any --shards/--threads.
     */
    int service_lanes = 8;

    /**
     * Admission control / load shedding (admission.h). Disabled by
     * default; only open-loop streams can shed (a closed-loop
     * stream's arrivals are service-driven and can never outrun the
     * service).
     */
    AdmissionConfig admission;

    EnergyParams energy;
};

/** Aggregate outcome of one executed stream. */
struct LoadReport
{
    uint64_t requests = 0;
    uint64_t by_kind[kRequestKinds] = {};

    // Authentication outcomes.
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t unknown_device = 0;

    uint64_t reenrolled = 0;
    uint64_t trng_bits_delivered = 0;
    uint64_t trng_health_failures = 0;
    uint64_t dealloc_rows_cleared = 0;

    // Planned (deterministic) store-cache behavior.
    uint64_t planned_cache_hits = 0;
    uint64_t planned_cache_misses = 0;

    /**
     * Modeled request latency over the stream (ns): queueing wait
     * plus service time for open-loop streams, service time alone
     * for closed-loop streams (arrivals are service-driven, so no
     * request ever waits).
     */
    double latency_mean_ns = 0;
    double latency_p50_ns = 0;
    double latency_p95_ns = 0;
    double latency_p99_ns = 0;
    double latency_max_ns = 0;

    // Queueing-wait component alone (0 for closed-loop streams).
    double wait_mean_ns = 0;
    double wait_p95_ns = 0;
    double wait_max_ns = 0;

    /** True if the stream carried open-loop arrival stamps. */
    bool open_loop = false;

    /**
     * Admission control / load shedding. When admission is active
     * (an open-loop stream and AdmissionConfig::capacity_rps set),
     * the latency/wait statistics above cover ADMITTED requests
     * only - shed requests never execute, never replay, and are
     * accounted here instead. When admission is off, admitted ==
     * requests and every shed counter is zero.
     */
    bool admission_on = false;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t shed_urgent = 0;      //!< Shed authenticate requests.
    uint64_t shed_best_effort = 0; //!< Shed maintenance requests.
    uint64_t shed_deadline = 0; //!< Wait projected past deadline.
    uint64_t shed_queue = 0;    //!< Lane queue full at arrival.
    uint64_t shed_bucket = 0;   //!< Token bucket empty/reserved.
    double shed_rate = 0;       //!< shed / requests.

    /**
     * Latency of admitted urgent (authenticate) requests: the tail
     * the admission deadline bounds under overload. Equal to the
     * plain authenticate latency when admission is off.
     */
    double admitted_urgent_p50_ns = 0;
    double admitted_urgent_p99_ns = 0;

    double total_service_ns = 0; //!< Service time only, summed.
    double total_energy_nj = 0;

    /**
     * Replay-measured authenticate latency: slice start to footprint
     * completion on the shard's DramSystem, over authenticate
     * requests that replayed a footprint (known devices). Unlike the
     * modeled latency above this sees the scheduler - it is what the
     * serving preset's priority tag and the QoS ablation's >= 20%
     * p99 gate measure. Depends on the shard count like
     * shard_busy_ns: report it only where the shard count is pinned
     * (ablation_qos runs 1 shard) or is the study input.
     */
    uint64_t auth_replayed = 0;
    double auth_replay_mean_ns = 0;
    double auth_replay_p50_ns = 0;
    double auth_replay_p99_ns = 0;
    double auth_replay_max_ns = 0;

    /**
     * Per-shard replay: busy time (ns) of each shard's DramSystem
     * after re-issuing its batch footprints. Depends on the shard
     * count by construction - report it only where the shard count
     * is the study input (fleet_scaling) or as wall telemetry.
     */
    std::vector<double> shard_busy_ns;

    /** Modeled makespan: slowest shard's replay busy time. */
    double makespanNs() const;

    /** Wall-clock execution time (scheduling-dependent; timing). */
    double wall_seconds = 0;
};

/** Per-request execution result, written into its stream slot. */
struct RequestResult
{
    double service_ns = 0;
    double energy_nj = 0;
    /** Replay latency: slice start to footprint completion (ns). */
    double replay_ns = 0;
    bool accepted = false;
    bool rejected = false;
    bool unknown = false;
    bool reenrolled = false;
    bool trng_failure = false;
    uint32_t trng_bits = 0;
    uint32_t dealloc_rows = 0;
};

/** The request-level frontend: executes streams against a fleet. */
class AuthService
{
  public:
    /**
     * Serve `store` (in-memory EnrollmentStore or mmap-backed
     * MmapEnrollmentStore; both outlive the service).
     */
    AuthService(DeviceFleet &fleet, EnrollmentBackend &store,
                const AuthConfig &config = {});

    /**
     * Enroll every device of the fleet into the store (batched per
     * shard on the engine). Store content is independent of the
     * shard/thread count.
     */
    void enrollAll();

    /**
     * One prepared stream's execution state: the sequential plans
     * (cache hits, admission decisions, per-shard batches) plus the
     * per-request results the shard workers fill in. The region
     * layer (region.h) holds one per region so a shared engine can
     * interleave shard tasks of several services; plain callers use
     * execute() and never see it.
     */
    struct Execution
    {
        std::vector<FleetRequest> stream;
        // Sequential plans (pure functions of stream + config).
        std::vector<bool> hit;       //!< Planned LRU decode hits.
        std::vector<bool> admitted;  //!< Admission decisions.
        std::vector<double> wait_ns; //!< Queueing waits (admitted).
        bool open_loop = false;
        bool admission_on = false;
        uint64_t shed_urgent = 0;
        uint64_t shed_best_effort = 0;
        uint64_t shed_deadline = 0;
        uint64_t shed_queue = 0;
        uint64_t shed_bucket = 0;
        // Execution workspace.
        std::vector<std::vector<size_t>> batches; //!< Per shard.
        std::vector<RequestResult> results;
        std::vector<double> shard_busy_ns;
        std::chrono::steady_clock::time_point wall_start;
    };

    /**
     * Plan one stream: cache-hit plan, admission decisions, waits,
     * per-shard batches of the admitted requests.
     */
    Execution prepare(std::vector<FleetRequest> stream);

    /**
     * Replay one shard's batch (safe to run concurrently for
     * distinct shards, as engine tasks).
     */
    void runShard(Execution &exec, size_t shard);

    /**
     * Aggregate an executed stream into a report; also backfills
     * exec.wait_ns for the legacy (admission-off) queueing model,
     * so admittedLatencies() works on the finalized state.
     */
    LoadReport finalize(Execution &exec) const;

    /**
     * Append the modeled latency (wait + service) of every admitted
     * request, in stream order - what the region layer merges into
     * fleet-global percentiles. Call after finalize().
     */
    void appendAdmittedLatencies(const Execution &exec,
                                 std::vector<double> &out) const;

    /** Execute one synthesized stream batched per shard. */
    LoadReport execute(const std::vector<FleetRequest> &stream);

    const FleetCostModel &costModel() const { return cost_model_; }

    /**
     * Derived admission capacity (requests/s): service_lanes over
     * the modeled authenticate service time. What scenarios sweep
     * offered load against when no explicit capacity is configured.
     */
    double modeledCapacityRps() const;

  private:
    /**
     * The admission controller's service-time estimate. Exact for
     * authenticate / re-enroll / dealloc (their modeled service is
     * a pure function of the plan); TRNG draws use a reference
     * device's whitened throughput (the per-device rate is only
     * known after materializing the device, which shed requests
     * never do).
     */
    double estimateServiceNs(const FleetRequest &req, bool known,
                             bool hit);
    double trngEstNsPerBit();

    DeviceFleet &fleet_;
    EnrollmentBackend &store_;
    AuthConfig config_;
    FleetCostModel cost_model_;
    double trng_est_ns_per_bit_ = -1.0; //!< Lazy (reference device).
};

} // namespace codic

#endif // CODIC_FLEET_AUTH_SERVICE_H
