/**
 * @file
 * Admission control and load shedding for the serving frontend.
 *
 * An open-loop arrival process does not slow down when the service
 * saturates: without admission control the wait queues grow without
 * bound and every request's latency diverges. The controller here
 * sheds load at arrival time instead, with the shape every
 * production serving stack converges on:
 *
 *  - a token bucket refilled at the configured service capacity
 *    (requests/s) with a bounded burst, so sustained offered load
 *    past capacity is shed at the excess rate;
 *  - two priority classes with a reserve: urgent requests (fleet
 *    authentication) may drain the bucket to empty, while
 *    best-effort requests (re-enrollment, TRNG draws, bulk
 *    deallocation) need the bucket above an urgent-only reserve -
 *    so an urgent request is never shed while best-effort traffic
 *    is still being admitted;
 *  - a bounded per-lane wait queue with deadline-based drop: a
 *    request whose projected queueing wait exceeds its class
 *    deadline (the client would have timed out) or whose lane
 *    queue is full is dropped at arrival, which is what keeps the
 *    admitted tail latency bounded under any overload.
 *
 * The controller is a sequential model over the arrival-ordered
 * stream (like AuthService's LRU cache plan and lane queueing
 * model): decisions are a pure function of the stream and the
 * config, never of execution scheduling, so reports stay
 * byte-identical at any thread or shard count.
 */

#ifndef CODIC_FLEET_ADMISSION_H
#define CODIC_FLEET_ADMISSION_H

#include <cstdint>
#include <deque>
#include <vector>

namespace codic {

/** Priority classes of the admission controller. */
enum class AdmissionClass : uint8_t
{
    Urgent = 0,     //!< Authentication: never shed first.
    BestEffort = 1, //!< Re-enroll / TRNG / dealloc: shed first.
};

constexpr int kAdmissionClasses = 2;

/** Display name of an AdmissionClass. */
const char *admissionClassName(AdmissionClass cls);

/** Admission-control tuning (AuthConfig::admission). */
struct AdmissionConfig
{
    /**
     * Modeled service capacity in requests/s: the token-bucket
     * refill rate. <= 0 disables admission control entirely (the
     * serving path is byte-identical to a build without it).
     */
    double capacity_rps = 0.0;

    /** Token-bucket depth: the burst admitted above the rate. */
    double burst = 64.0;

    /**
     * Fraction of the bucket reserved for urgent requests: a
     * best-effort request needs the bucket above reserve * burst
     * tokens, an urgent one only above zero.
     */
    double urgent_reserve = 0.25;

    /**
     * Queueing-wait deadlines (ns) per class; a request projected
     * to wait longer is dropped at arrival. 0 = derive from the
     * cost model (urgent: one full authenticate service time;
     * best-effort: half that).
     */
    double max_wait_urgent_ns = 0.0;
    double max_wait_best_effort_ns = 0.0;

    /** Maximum requests queued or in service per lane. */
    int lane_queue_depth = 64;

    bool enabled() const { return capacity_rps > 0.0; }
};

/**
 * The sequential admission model. Offer requests in arrival order;
 * each decision updates the token bucket and the per-lane queue
 * model, so a decision depends only on the decisions before it.
 */
class AdmissionController
{
  public:
    /** Outcome of one offered request. */
    struct Decision
    {
        bool admitted = true;
        bool deadline_shed = false; //!< Wait past class deadline.
        bool queue_shed = false;    //!< Lane queue full.
        bool bucket_shed = false;   //!< Token bucket empty/reserved.
        double wait_ns = 0.0;       //!< Queueing wait when admitted.
    };

    /**
     * @param lanes Serving lanes (AuthConfig::service_lanes).
     * @param auto_deadline_ns Urgent deadline when the config says
     *        derive (one authenticate service time, cost-model
     *        measured).
     */
    AdmissionController(const AdmissionConfig &config, int lanes,
                        double auto_deadline_ns);

    /**
     * Offer one request (arrival order; stamps non-decreasing).
     * @param est_service_ns The controller's service-time estimate,
     *        used to advance the lane model when admitted.
     */
    Decision offer(AdmissionClass cls, uint64_t device_id,
                   double arrival_ns, double est_service_ns);

    /** Effective per-class deadline (after auto-derivation). */
    double deadlineNs(AdmissionClass cls) const
    {
        return deadline_ns_[static_cast<int>(cls)];
    }

  private:
    AdmissionConfig config_;
    double deadline_ns_[kAdmissionClasses];
    double reserve_tokens_;
    double tokens_;
    double last_arrival_ns_ = 0.0;
    std::vector<double> lane_free_ns_;
    /** Completion stamps of queued/in-service requests per lane. */
    std::vector<std::deque<double>> lane_done_ns_;
};

} // namespace codic

#endif // CODIC_FLEET_ADMISSION_H
