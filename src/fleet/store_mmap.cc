#include "fleet/store_mmap.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#define CODIC_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace codic {

namespace {

// v2 binary layout constants (see enrollment_store.cc for the full
// layout comment): 40-byte header, 28-byte fixed record prefix,
// 16-byte index entries.
constexpr char kMagic[8] = {'C', 'O', 'D', 'I', 'C', 'E', 'N', 'R'};
constexpr uint64_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;
constexpr uint64_t kRecordFixedBytes = 8 + 8 + 4 + 4 + 4;
constexpr uint64_t kIndexEntryBytes = 16;

template <typename T>
void
putLe(std::ostream &out, T v)
{
    uint8_t bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i)
        bytes[i] = static_cast<uint8_t>(v >> (8 * i));
    out.write(reinterpret_cast<const char *>(bytes), sizeof(T));
}

template <typename T>
T
loadLe(const uint8_t *p)
{
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(p[i]) << (8 * i);
    return v;
}

uint64_t
recordBytes(const EnrollmentRecord &rec)
{
    return kRecordFixedBytes + rec.blob.size();
}

void
writeRecord(std::ostream &out, const EnrollmentRecord &rec)
{
    putLe<uint64_t>(out, rec.device_id);
    putLe<uint64_t>(out, rec.segment_id);
    putLe<uint32_t>(out, rec.segment_bits);
    putLe<uint32_t>(out, rec.cell_count);
    putLe<uint32_t>(out, static_cast<uint32_t>(rec.blob.size()));
    out.write(reinterpret_cast<const char *>(rec.blob.data()),
              static_cast<std::streamsize>(rec.blob.size()));
}

} // namespace

// --- EnrollmentStoreWriter ---------------------------------------------------

EnrollmentStoreWriter::EnrollmentStoreWriter(const std::string &path,
                                             uint64_t population_seed)
    : path_(path), index_path_(path + ".idx"),
      out_(path, std::ios::binary),
      index_out_(index_path_, std::ios::binary)
{
    if (!out_)
        fatal("enrollment store writer: cannot open '", path_,
              "' for writing");
    if (!index_out_)
        fatal("enrollment store writer: cannot open '", index_path_,
              "' for writing");
    out_.write(kMagic, sizeof(kMagic));
    putLe<uint32_t>(out_, EnrollmentStore::kFormatVersion);
    putLe<uint32_t>(out_, 0);
    putLe<uint64_t>(out_, population_seed);
    // Record count and index offset are patched by finish().
    putLe<uint64_t>(out_, 0);
    putLe<uint64_t>(out_, 0);
    offset_ = kHeaderBytes;
}

EnrollmentStoreWriter::~EnrollmentStoreWriter()
{
    if (finished_)
        return;
    // An unfinished file has no index and a zero record count: it
    // would never load. Remove the partial outputs.
    out_.close();
    index_out_.close();
    std::remove(path_.c_str());
    std::remove(index_path_.c_str());
}

void
EnrollmentStoreWriter::append(const EnrollmentRecord &record)
{
    CODIC_ASSERT(!finished_);
    if (count_ > 0 && record.device_id <= last_id_)
        fatal("enrollment store writer: device ", record.device_id,
              " appended after ", last_id_,
              " (records must be sorted by device id)");
    writeRecord(out_, record);
    putLe<uint64_t>(index_out_, record.device_id);
    putLe<uint64_t>(index_out_, offset_);
    offset_ += recordBytes(record);
    last_id_ = record.device_id;
    ++count_;
}

void
EnrollmentStoreWriter::append(uint64_t device_id,
                              const Challenge &challenge,
                              const Response &signature)
{
    append(EnrollmentStore::encode(device_id, challenge, signature));
}

void
EnrollmentStoreWriter::finish()
{
    CODIC_ASSERT(!finished_);
    index_out_.flush();
    index_out_.close();
    if (!index_out_)
        fatal("enrollment store writer: write to '", index_path_,
              "' failed");

    // Splice the staged index onto the record stream in bounded
    // chunks, then patch the header fields left blank.
    {
        std::ifstream index_in(index_path_, std::ios::binary);
        if (!index_in)
            fatal("enrollment store writer: cannot reopen '",
                  index_path_, "'");
        std::vector<char> chunk(1u << 20);
        while (index_in) {
            index_in.read(chunk.data(),
                          static_cast<std::streamsize>(chunk.size()));
            out_.write(chunk.data(), index_in.gcount());
        }
    }
    out_.seekp(24);
    putLe<uint64_t>(out_, count_);
    putLe<uint64_t>(out_, offset_);
    out_.flush();
    if (!out_)
        fatal("enrollment store writer: write to '", path_,
              "' failed");
    out_.close();
    std::remove(index_path_.c_str());
    finished_ = true;
}

// --- MmapEnrollmentStore -----------------------------------------------------

MmapEnrollmentStore::MmapEnrollmentStore(const std::string &path,
                                         size_t cache_capacity)
    : path_(path),
      cache_capacity_(std::max<size_t>(1, cache_capacity)),
      index_(cache_capacity_)
{
#ifdef CODIC_STORE_HAVE_MMAP
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        fatal("mmap enrollment store: cannot open '", path, "'");
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        ::close(fd_);
        fatal("mmap enrollment store: cannot stat '", path, "'");
    }
    size_ = static_cast<uint64_t>(st.st_size);
    if (size_ > 0) {
        void *map = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED,
                           fd_, 0);
        if (map == MAP_FAILED) {
            ::close(fd_);
            fatal("mmap enrollment store: mmap of '", path,
                  "' failed");
        }
        data_ = static_cast<const uint8_t *>(map);
        // Serving access is index binary search plus point record
        // reads: tell the pager not to waste readahead.
        ::madvise(const_cast<uint8_t *>(data_), size_, MADV_RANDOM);
    }
#else
    fatal("mmap enrollment store: mmap is not available on this "
          "platform");
#endif

    if (size_ < kHeaderBytes)
        fatal("mmap enrollment store: '", path, "' is truncated (",
              size_, " bytes, smaller than the ", kHeaderBytes,
              "-byte header)");
    if (std::memcmp(data_, kMagic, sizeof(kMagic)) != 0)
        fatal("mmap enrollment store: '", path,
              "' is not a CODIC enrollment store (bad magic)");
    const uint32_t version = loadLe<uint32_t>(data_ + 8);
    if (version != EnrollmentStore::kFormatVersion)
        fatal("mmap enrollment store: '", path, "' has format v",
              version, " but the serving path needs the indexed v",
              EnrollmentStore::kFormatVersion,
              " format; re-save the store with this build");
    population_seed_ = loadLe<uint64_t>(data_ + 16);
    count_ = loadLe<uint64_t>(data_ + 24);
    index_offset_ = loadLe<uint64_t>(data_ + 32);
    if (index_offset_ < kHeaderBytes || index_offset_ > size_ ||
        count_ > (size_ - index_offset_) / kIndexEntryBytes ||
        index_offset_ + count_ * kIndexEntryBytes != size_)
        fatal("mmap enrollment store: '", path,
              "' has a corrupt index (", count_,
              " records, index at ", index_offset_, ", file is ",
              size_, " bytes)");
    if (count_ * kRecordFixedBytes > index_offset_ - kHeaderBytes)
        fatal("mmap enrollment store: '", path, "' declares ", count_,
              " records but only ", index_offset_ - kHeaderBytes,
              " record bytes");
}

MmapEnrollmentStore::~MmapEnrollmentStore()
{
#ifdef CODIC_STORE_HAVE_MMAP
    if (data_)
        ::munmap(const_cast<uint8_t *>(data_), size_);
    if (fd_ >= 0)
        ::close(fd_);
#endif
}

uint64_t
MmapEnrollmentStore::findSlot(uint64_t device_id) const
{
    const uint8_t *index = data_ + index_offset_;
    uint64_t lo = 0;
    uint64_t hi = count_;
    while (lo < hi) {
        const uint64_t mid = lo + (hi - lo) / 2;
        const uint64_t id =
            loadLe<uint64_t>(index + mid * kIndexEntryBytes);
        if (id < device_id)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < count_ &&
        loadLe<uint64_t>(index + lo * kIndexEntryBytes) == device_id)
        return lo;
    return count_;
}

EnrollmentRecord
MmapEnrollmentStore::baseRecord(uint64_t slot) const
{
    const uint8_t *index = data_ + index_offset_;
    const uint64_t offset =
        loadLe<uint64_t>(index + slot * kIndexEntryBytes + 8);
    if (offset < kHeaderBytes ||
        offset + kRecordFixedBytes > index_offset_)
        fatal("mmap enrollment store: '", path_, "' index slot ",
              slot, " has out-of-range record offset ", offset);
    const uint8_t *p = data_ + offset;
    EnrollmentRecord rec;
    rec.device_id = loadLe<uint64_t>(p);
    rec.segment_id = loadLe<uint64_t>(p + 8);
    rec.segment_bits = loadLe<uint32_t>(p + 16);
    rec.cell_count = loadLe<uint32_t>(p + 20);
    const uint32_t blob_len = loadLe<uint32_t>(p + 24);
    if (rec.cell_count > blob_len ||
        offset + kRecordFixedBytes + blob_len > index_offset_)
        fatal("mmap enrollment store: '", path_,
              "' has a corrupt record at offset ", offset,
              " (cell count ", rec.cell_count, ", blob length ",
              blob_len, ")");
    rec.blob.assign(p + kRecordFixedBytes,
                    p + kRecordFixedBytes + blob_len);
    return rec;
}

size_t
MmapEnrollmentStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<size_t>(count_ + overlay_new_);
}

size_t
MmapEnrollmentStore::overlayRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return overlay_.size();
}

uint64_t
MmapEnrollmentStore::supersededRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<uint64_t>(overlay_.size()) - overlay_new_;
}

void
MmapEnrollmentStore::put(uint64_t device_id,
                         const Challenge &challenge,
                         const Response &signature)
{
    EnrollmentRecord rec =
        EnrollmentStore::encode(device_id, challenge, signature);
    std::lock_guard<std::mutex> lock(mutex_);
    if (overlay_.count(device_id) == 0 &&
        findSlot(device_id) == count_)
        ++overlay_new_;
    overlay_[device_id] = std::move(rec);
    // A re-enrollment invalidates any cached decode of the old
    // signature.
    if (index_.erase(device_id))
        cache_.erase(device_id);
}

bool
MmapEnrollmentStore::contains(uint64_t device_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return overlay_.count(device_id) != 0 ||
           findSlot(device_id) != count_;
}

std::shared_ptr<const Response>
MmapEnrollmentStore::lookup(uint64_t device_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto hit = cache_.find(device_id);
    if (hit != cache_.end()) {
        ++hits_;
        index_.touch(device_id);
        return hit->second;
    }
    std::shared_ptr<const Response> decoded;
    auto ov = overlay_.find(device_id);
    if (ov != overlay_.end()) {
        decoded = std::make_shared<const Response>(
            EnrollmentStore::decode(ov->second));
    } else {
        const uint64_t slot = findSlot(device_id);
        if (slot == count_)
            return nullptr;
        decoded = std::make_shared<const Response>(
            EnrollmentStore::decode(baseRecord(slot)));
    }
    ++misses_;
    index_.touch(device_id);
    cache_[device_id] = decoded;
    while (const auto victim = index_.evictIfOver())
        cache_.erase(*victim);
    return decoded;
}

std::vector<uint64_t>
MmapEnrollmentStore::deviceIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<uint64_t> ids;
    ids.reserve(static_cast<size_t>(count_) + overlay_.size());
    const uint8_t *index = data_ + index_offset_;
    for (uint64_t slot = 0; slot < count_; ++slot)
        ids.push_back(
            loadLe<uint64_t>(index + slot * kIndexEntryBytes));
    for (const auto &[id, rec] : overlay_)
        if (findSlot(id) == count_)
            ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

MmapEnrollmentStore::CompactStats
MmapEnrollmentStore::compactTo(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<uint64_t> overlay_ids;
    overlay_ids.reserve(overlay_.size());
    for (const auto &[id, rec] : overlay_)
        overlay_ids.push_back(id);
    std::sort(overlay_ids.begin(), overlay_ids.end());

    CompactStats stats;
    stats.base_records = count_;
    stats.overlay_records = overlay_.size();

    // Sorted two-pointer merge, overlay superseding base; streamed
    // through the writer so compaction memory stays flat at any
    // store size.
    EnrollmentStoreWriter writer(path, population_seed_);
    const uint8_t *index = data_ + index_offset_;
    size_t ov = 0;
    for (uint64_t slot = 0; slot < count_; ++slot) {
        const uint64_t base_id =
            loadLe<uint64_t>(index + slot * kIndexEntryBytes);
        while (ov < overlay_ids.size() &&
               overlay_ids[ov] < base_id) {
            writer.append(overlay_.at(overlay_ids[ov]));
            ++ov;
        }
        if (ov < overlay_ids.size() && overlay_ids[ov] == base_id) {
            // Tombstoned base record: the overlay re-enrollment
            // supersedes it, so its bytes are the garbage this pass
            // sheds.
            writer.append(overlay_.at(overlay_ids[ov]));
            ++ov;
            ++stats.superseded;
            continue;
        }
        writer.append(baseRecord(slot));
    }
    for (; ov < overlay_ids.size(); ++ov)
        writer.append(overlay_.at(overlay_ids[ov]));
    stats.records_written = writer.records();
    writer.finish();
    return stats;
}

// --- Synthetic population ----------------------------------------------------

uint64_t
writeSyntheticStore(const std::string &path, uint64_t population_seed,
                    uint64_t devices, int segment_bits,
                    int cells_per_record)
{
    CODIC_ASSERT(devices > 0);
    CODIC_ASSERT(segment_bits > 0);
    CODIC_ASSERT(cells_per_record > 0);
    EnrollmentStoreWriter writer(path, population_seed);
    std::vector<uint32_t> cells;
    for (uint64_t id = 0; id < devices; ++id) {
        // A fresh root per device keeps every record a pure function
        // of (population_seed, device_id), like DeviceFleet's own
        // seed derivation.
        Rng root(population_seed ^ 0x53594E54ull); // "SYNT"
        Rng rng = root.fork(id);
        cells.clear();
        for (int c = 0; c < cells_per_record; ++c)
            cells.push_back(static_cast<uint32_t>(
                rng.below(static_cast<uint64_t>(segment_bits))));
        std::sort(cells.begin(), cells.end());
        cells.erase(std::unique(cells.begin(), cells.end()),
                    cells.end());
        Response sig;
        sig.cells = cells;
        const Challenge ch{rng.next64() % (1u << 20),
                           segment_bits};
        writer.append(id, ch, sig);
    }
    const uint64_t written = writer.records();
    writer.finish();
    return written;
}

} // namespace codic
