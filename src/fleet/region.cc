#include "fleet/region.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stats.h"

namespace codic {

// --- ShardSelector -----------------------------------------------------------

int
ModuloShardSelector::shardOf(uint64_t device_id, int shards) const
{
    return static_cast<int>(device_id %
                            static_cast<uint64_t>(shards));
}

int
HashShardSelector::shardOf(uint64_t device_id, int shards) const
{
    // splitmix64 finalizer: sequential id ranges land on different
    // shards instead of striding through them in lockstep.
    uint64_t x = device_id + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<int>(x % static_cast<uint64_t>(shards));
}

std::shared_ptr<const ShardSelector>
ShardSelector::create(const std::string &policy)
{
    if (policy == "modulo")
        return std::make_shared<ModuloShardSelector>();
    if (policy == "hash")
        return std::make_shared<HashShardSelector>();
    throw FatalError("unknown shard-selector policy '" + policy +
                     "' (expected modulo or hash)");
}

ExplicitShardSelector::ExplicitShardSelector(
    std::unordered_map<uint64_t, int> pinned,
    std::shared_ptr<const ShardSelector> fallback)
    : pinned_(std::move(pinned)), fallback_(std::move(fallback))
{
    CODIC_ASSERT(fallback_ != nullptr);
}

int
ExplicitShardSelector::shardOf(uint64_t device_id, int shards) const
{
    auto it = pinned_.find(device_id);
    if (it != pinned_.end() && it->second < shards)
        return it->second;
    return fallback_->shardOf(device_id, shards);
}

std::shared_ptr<const ShardSelector>
rebalancedSelector(const std::vector<FleetRequest> &stream,
                   int shards,
                   std::shared_ptr<const ShardSelector> fallback)
{
    CODIC_ASSERT(shards >= 1);
    if (!fallback)
        fallback = std::make_shared<ModuloShardSelector>();

    std::unordered_map<uint64_t, uint64_t> load;
    for (const FleetRequest &req : stream)
        ++load[req.device_id];

    // Hottest first, ties on ascending id: the LPT order, and a
    // total order so the packing never depends on hash iteration.
    std::vector<std::pair<uint64_t, uint64_t>> devices(load.begin(),
                                                       load.end());
    std::sort(devices.begin(), devices.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });

    std::vector<uint64_t> shard_load(static_cast<size_t>(shards), 0);
    std::unordered_map<uint64_t, int> pinned;
    pinned.reserve(devices.size());
    for (const auto &[id, weight] : devices) {
        size_t best = 0;
        for (size_t s = 1; s < shard_load.size(); ++s)
            if (shard_load[s] < shard_load[best])
                best = s;
        shard_load[best] += weight;
        pinned[id] = static_cast<int>(best);
    }
    return std::make_shared<ExplicitShardSelector>(
        std::move(pinned), std::move(fallback));
}

// --- RegionSet ---------------------------------------------------------------

RegionSet::RegionSet(std::vector<RegionConfig> regions)
{
    CODIC_ASSERT(!regions.empty(), "a RegionSet needs >= 1 region");
    regions_.reserve(regions.size());
    for (RegionConfig &rc : regions) {
        Region region;
        region.config = std::move(rc);
        region.fleet =
            std::make_unique<DeviceFleet>(region.config.fleet);
        region.store = std::make_unique<EnrollmentStore>(
            region.config.fleet.population_seed);
        region.service = std::make_unique<AuthService>(
            *region.fleet, *region.store, region.config.auth);
        regions_.push_back(std::move(region));
    }
}

const RegionConfig &
RegionSet::config(size_t i) const
{
    CODIC_ASSERT(i < regions_.size());
    return regions_[i].config;
}

DeviceFleet &
RegionSet::fleet(size_t i)
{
    CODIC_ASSERT(i < regions_.size());
    return *regions_[i].fleet;
}

EnrollmentStore &
RegionSet::store(size_t i)
{
    CODIC_ASSERT(i < regions_.size());
    return *regions_[i].store;
}

AuthService &
RegionSet::service(size_t i)
{
    CODIC_ASSERT(i < regions_.size());
    return *regions_[i].service;
}

namespace {

/** Flattened (region, shard) task list of one engine pass. */
std::vector<std::pair<size_t, size_t>>
flattenTasks(const std::vector<int> &shards_per_region)
{
    std::vector<std::pair<size_t, size_t>> tasks;
    for (size_t r = 0; r < shards_per_region.size(); ++r)
        for (int s = 0; s < shards_per_region[r]; ++s)
            tasks.emplace_back(r, static_cast<size_t>(s));
    return tasks;
}

} // namespace

void
RegionSet::enrollAll(int threads)
{
    std::vector<int> shards;
    shards.reserve(regions_.size());
    for (const Region &region : regions_)
        shards.push_back(region.fleet->shards());
    const auto tasks = flattenTasks(shards);

    CampaignEngine engine(threads);
    engine.forEach(tasks.size(), [&](size_t t) {
        Region &region = regions_[tasks[t].first];
        for (uint64_t id : region.fleet->shardDeviceIds(
                 static_cast<int>(tasks[t].second))) {
            const Challenge ch = region.fleet->goldenChallenge(id);
            region.store->put(
                id, ch, region.fleet->enrollSignature(id, ch));
        }
    });
}

RegionSet::Result
RegionSet::serve(int threads)
{
    const auto wall_start = std::chrono::steady_clock::now();

    // Plan sequentially per region, in region order: streams,
    // cache plans and admission decisions are pure functions of
    // each region's own config.
    std::vector<AuthService::Execution> execs;
    std::vector<int> shards;
    execs.reserve(regions_.size());
    shards.reserve(regions_.size());
    for (Region &region : regions_) {
        RequestGenerator gen(region.config.traffic,
                             region.fleet->devices());
        execs.push_back(region.service->prepare(gen.generate()));
        shards.push_back(region.fleet->shards());
    }

    // One engine pass over every region's shard batches: a worker
    // picks up whichever (region, shard) task is next, so a small
    // region never idles the pool while a big one drains.
    const auto tasks = flattenTasks(shards);
    CampaignEngine engine(threads);
    engine.forEach(tasks.size(), [&](size_t t) {
        regions_[tasks[t].first].service->runShard(
            execs[tasks[t].first], tasks[t].second);
    });

    Result result;
    std::vector<double> global_latencies;
    for (size_t r = 0; r < regions_.size(); ++r) {
        result.names.push_back(regions_[r].config.name);
        // finalize() first: it backfills the legacy (admission-off)
        // queueing waits the latency merge below reads.
        result.reports.push_back(
            regions_[r].service->finalize(execs[r]));
        regions_[r].service->appendAdmittedLatencies(
            execs[r], global_latencies);
    }

    GlobalReport &g = result.global;
    for (const LoadReport &report : result.reports) {
        g.requests += report.requests;
        g.admitted += report.admitted;
        g.shed += report.shed;
        g.shed_urgent += report.shed_urgent;
        g.total_energy_nj += report.total_energy_nj;
    }
    g.shed_rate = g.requests > 0
                      ? static_cast<double>(g.shed) /
                            static_cast<double>(g.requests)
                      : 0.0;
    if (!global_latencies.empty()) {
        g.latency_p50_ns = percentile(global_latencies, 50.0);
        g.latency_p95_ns = percentile(global_latencies, 95.0);
        g.latency_p99_ns = percentile(global_latencies, 99.0);
    }
    g.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() -
                         wall_start)
                         .count();
    return result;
}

} // namespace codic
