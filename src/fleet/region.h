/**
 * @file
 * Multi-region serving layer: several fleets - each with its own
 * population seed, traffic mix, Zipf skew and arrival process -
 * share one process and one CampaignEngine.
 *
 * Two pieces:
 *
 *  - ShardSelector: the pluggable device -> shard placement policy
 *    of a fleet (the BankSelector idiom from the DRAM address map,
 *    lifted to serving). The default modulo policy preserves the
 *    historical `id % shards` mapping bit for bit; the hash policy
 *    spreads sequential id ranges; an explicit policy pins chosen
 *    devices to chosen shards and is what rebalancedSelector()
 *    builds from a measured stream, packing Zipf-hot devices across
 *    shards (greedy longest-processing-time) so one shard no longer
 *    serializes the head of the popularity distribution.
 *
 *  - RegionSet: owns one (DeviceFleet, EnrollmentStore, AuthService)
 *    triple per region and serves all regions' streams in one
 *    engine pass over the flattened (region, shard) task list, so a
 *    worker drains shard batches of whichever region still has
 *    work. Reports stay per-region (each region's LoadReport is
 *    byte-identical to serving that region alone) plus a global
 *    roll-up of fleet-wide percentiles and shed rates merged from
 *    the per-region executions.
 *
 * Determinism: placement policies are pure functions of (device id,
 * shard count), region planning is sequential per region in region
 * order, and the global roll-up merges per-region latency vectors in
 * region order - so every reported number is byte-identical at any
 * thread count.
 */

#ifndef CODIC_FLEET_REGION_H
#define CODIC_FLEET_REGION_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/auth_service.h"
#include "fleet/device_fleet.h"
#include "fleet/enrollment_store.h"

namespace codic {

/**
 * Device -> shard placement policy (FleetConfig::shard_selector).
 * Implementations are pure functions of (device_id, shards): no
 * state, safe to share across threads and regions.
 */
class ShardSelector
{
  public:
    virtual ~ShardSelector() = default;

    /** Shard serving the device; must return a value in [0, shards). */
    virtual int shardOf(uint64_t device_id, int shards) const = 0;

    /** Policy name (reports / CLI). */
    virtual const char *name() const = 0;

    /**
     * Factory over the named policies: "modulo" (id % shards, the
     * default placement) or "hash" (mixed id % shards, spreading
     * sequential id ranges). @throws FatalError on an unknown name.
     */
    static std::shared_ptr<const ShardSelector>
    create(const std::string &policy);
};

/** The historical placement: id % shards. */
class ModuloShardSelector : public ShardSelector
{
  public:
    int shardOf(uint64_t device_id, int shards) const override;
    const char *name() const override { return "modulo"; }
};

/** Mixed placement: splitmix64(id) % shards. */
class HashShardSelector : public ShardSelector
{
  public:
    int shardOf(uint64_t device_id, int shards) const override;
    const char *name() const override { return "hash"; }
};

/**
 * Explicit placement: pinned devices go to their pinned shard,
 * everything else falls through to the fallback policy. What
 * rebalancedSelector() builds.
 */
class ExplicitShardSelector : public ShardSelector
{
  public:
    /** @param fallback Policy for unpinned devices (never null). */
    ExplicitShardSelector(
        std::unordered_map<uint64_t, int> pinned,
        std::shared_ptr<const ShardSelector> fallback);

    int shardOf(uint64_t device_id, int shards) const override;
    const char *name() const override { return "explicit"; }

    size_t pinnedDevices() const { return pinned_.size(); }

  private:
    std::unordered_map<uint64_t, int> pinned_;
    std::shared_ptr<const ShardSelector> fallback_;
};

/**
 * Build an explicit placement from a measured stream: devices are
 * weighted by their request count and greedily packed onto the
 * least-loaded shard, hottest first (LPT bin packing - within 4/3 of
 * the optimal makespan), so a Zipf-skewed stream's head no longer
 * piles onto whatever shard the fallback policy put it on. Devices
 * absent from the stream fall through to `fallback`. Deterministic:
 * ties break on ascending device id.
 */
std::shared_ptr<const ShardSelector>
rebalancedSelector(const std::vector<FleetRequest> &stream,
                   int shards,
                   std::shared_ptr<const ShardSelector> fallback);

/** One region: an independent fleet with its own traffic. */
struct RegionConfig
{
    std::string name = "region";
    FleetConfig fleet;
    TrafficConfig traffic;
    AuthConfig auth;
};

/** Global roll-up across the regions of one serve() pass. */
struct GlobalReport
{
    uint64_t requests = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t shed_urgent = 0;
    double shed_rate = 0;

    /** Fleet-global modeled latency over all admitted requests. */
    double latency_p50_ns = 0;
    double latency_p95_ns = 0;
    double latency_p99_ns = 0;

    double total_energy_nj = 0;
    double wall_seconds = 0;
};

/**
 * Several regions served by one process: one engine drains the
 * flattened (region, shard) task list, so worker threads are shared
 * across regions instead of each region bringing its own pool.
 */
class RegionSet
{
  public:
    /** Builds each region's fleet/store/service (stores start empty). */
    explicit RegionSet(std::vector<RegionConfig> regions);

    size_t regions() const { return regions_.size(); }
    const RegionConfig &config(size_t i) const;
    DeviceFleet &fleet(size_t i);
    EnrollmentStore &store(size_t i);
    AuthService &service(size_t i);

    /**
     * Enroll every region's fleet, batched per (region, shard) on
     * one engine. Store contents are independent of threading.
     */
    void enrollAll(int threads);

    /** One serve() pass: per-region reports plus the global roll-up. */
    struct Result
    {
        std::vector<std::string> names;
        std::vector<LoadReport> reports;
        GlobalReport global;
    };

    /**
     * Synthesize each region's stream (from its TrafficConfig, over
     * its enrolled population), plan sequentially per region, and
     * execute all regions' shard batches in one engine pass. Each
     * region's LoadReport is byte-identical to serving that region
     * alone with the same config.
     */
    Result serve(int threads);

  private:
    struct Region
    {
        RegionConfig config;
        std::unique_ptr<DeviceFleet> fleet;
        std::unique_ptr<EnrollmentStore> store;
        std::unique_ptr<AuthService> service;
    };

    std::vector<Region> regions_;
};

} // namespace codic

#endif // CODIC_FLEET_REGION_H
