#include "fleet/auth_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "dram/system.h"
#include "puf/response_time.h"

namespace codic {

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Authenticate: return "authenticate";
      case RequestKind::Reenroll: return "reenroll";
      case RequestKind::TrngDraw: return "trng_draw";
      case RequestKind::SecureDealloc: return "secure_dealloc";
    }
    panic("unknown request kind");
}

AdmissionClass
admissionClassOf(RequestKind kind)
{
    return kind == RequestKind::Authenticate
               ? AdmissionClass::Urgent
               : AdmissionClass::BestEffort;
}

// --- ZipfRankSampler ---------------------------------------------------------

namespace {

/** log1p(x)/x with a series fallback near zero. */
double
zipfHelper1(double x)
{
    return std::fabs(x) > 1e-8 ? std::log1p(x) / x
                               : 1.0 - x * (0.5 - x / 3.0);
}

/** expm1(x)/x with a series fallback near zero. */
double
zipfHelper2(double x)
{
    return std::fabs(x) > 1e-8
               ? std::expm1(x) / x
               : 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x));
}

} // namespace

ZipfRankSampler::ZipfRankSampler(double exponent, uint64_t n)
    : exponent_(exponent), n_(n)
{
    CODIC_ASSERT(exponent > 0.0 && std::isfinite(exponent));
    CODIC_ASSERT(n >= 1);
    h_x1_ = hIntegral(1.5) - 1.0;
    h_n_ = hIntegral(static_cast<double>(n) + 0.5);
    s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfRankSampler::hIntegral(double x) const
{
    // Integral of k^-exponent: (x^(1-e) - 1)/(1-e), log-form stable.
    const double log_x = std::log(x);
    return zipfHelper2((1.0 - exponent_) * log_x) * log_x;
}

double
ZipfRankSampler::h(double x) const
{
    return std::exp(-exponent_ * std::log(x));
}

double
ZipfRankSampler::hIntegralInverse(double x) const
{
    double t = x * (1.0 - exponent_);
    if (t < -1.0)
        t = -1.0; // Guard the log-series domain (rounding).
    return std::exp(zipfHelper1(t) * x);
}

uint64_t
ZipfRankSampler::sample(Rng &rng) const
{
    while (true) {
        const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
        const double x = hIntegralInverse(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        k = std::clamp<uint64_t>(k, 1, n_);
        const double kd = static_cast<double>(k);
        // Accept k when x lands in its high-probability core, or by
        // the exact rejection test against the envelope.
        if (kd - x <= s_ || u >= hIntegral(kd + 0.5) - h(kd))
            return k - 1;
    }
}

// --- RequestGenerator --------------------------------------------------------

RequestGenerator::RequestGenerator(const TrafficConfig &config,
                                   uint64_t devices)
    : config_(config), devices_(devices)
{
    CODIC_ASSERT(devices_ > 0);
    CODIC_ASSERT(config_.zipf >= 0.0);
    if (config_.zipf > 0.0)
        zipf_ = std::make_unique<ZipfRankSampler>(config_.zipf,
                                                  devices_);
}

RequestGenerator::RequestGenerator(const TrafficConfig &config,
                                   std::vector<uint64_t> device_ids)
    : RequestGenerator(config,
                       static_cast<uint64_t>(device_ids.size()))
{
    ids_ = std::move(device_ids);
}

uint64_t
RequestGenerator::sampleDevice(Rng &rng) const
{
    const uint64_t rank =
        zipf_ ? zipf_->sample(rng) : rng.below(devices_);
    return ids_.empty() ? rank : ids_[static_cast<size_t>(rank)];
}

std::vector<FleetRequest>
RequestGenerator::generate() const
{
    const double weights[kRequestKinds] = {
        std::max(0.0, config_.weight_auth),
        std::max(0.0, config_.weight_reenroll),
        std::max(0.0, config_.weight_trng),
        std::max(0.0, config_.weight_dealloc),
    };
    double total_weight = 0.0;
    for (double w : weights)
        total_weight += w;
    CODIC_ASSERT(total_weight > 0.0, "empty request mix");

    Rng rng(config_.traffic_seed ^ 0xF1EE77AFull);
    std::vector<FleetRequest> stream;
    stream.reserve(config_.requests);
    double arrival_us = 0.0;
    for (uint64_t i = 0; i < config_.requests; ++i) {
        FleetRequest req;
        req.index = i;
        req.device_id = sampleDevice(rng);
        const double pick = rng.uniform() * total_weight;
        double acc = 0.0;
        req.kind = RequestKind::SecureDealloc;
        for (int k = 0; k < kRequestKinds; ++k) {
            acc += weights[k];
            if (pick < acc) {
                req.kind = static_cast<RequestKind>(k);
                break;
            }
        }
        req.nonce = rng.next64();
        if (req.kind == RequestKind::TrngDraw)
            req.payload = static_cast<uint32_t>(
                std::max(1, config_.trng_bits));
        else if (req.kind == RequestKind::SecureDealloc)
            req.payload = static_cast<uint32_t>(
                std::max(1, config_.dealloc_rows));
        if (config_.offered_rps > 0.0) {
            // Open loop: Poisson arrivals at the offered rate.
            const double mean_gap_us = 1e6 / config_.offered_rps;
            double u = rng.uniform();
            while (u <= 1e-300)
                u = rng.uniform();
            arrival_us += -mean_gap_us * std::log(u);
            req.arrival_us = arrival_us;
        }
        stream.push_back(req);
    }
    return stream;
}

// --- Cost model --------------------------------------------------------------

namespace {

/**
 * Replay one filtered PUF evaluation's DRAM footprint: per pass one
 * CODIC-det row command plus a read sweep over the segment's bursts.
 */
Cycle
replayEvalFootprint(DramSystem &sys, Cycle now, uint64_t base_addr,
                    int passes, int bursts)
{
    const int64_t burst_bytes = sys.config().burst_bytes;
    for (int p = 0; p < passes; ++p) {
        now = sys.rowOp(base_addr, now, RowOpMechanism::CodicDet);
        for (int b = 0; b < bursts; ++b)
            now = sys.read(base_addr +
                               static_cast<uint64_t>(b) *
                                   static_cast<uint64_t>(burst_bytes),
                           now);
    }
    return now;
}

/** Replay a bulk zeroization: one CODIC-det row op per row. */
Cycle
replayDeallocFootprint(DramSystem &sys, Cycle now, uint64_t base_addr,
                       int rows)
{
    const int64_t row_bytes = sys.config().row_bytes;
    const uint64_t capacity =
        static_cast<uint64_t>(sys.config().capacityBytes());
    for (int r = 0; r < rows; ++r) {
        const uint64_t addr =
            (base_addr + static_cast<uint64_t>(r) *
                             static_cast<uint64_t>(row_bytes)) %
            capacity;
        now = sys.rowOp(addr, now, RowOpMechanism::CodicDet);
    }
    return now;
}

/** Replay TRNG harvest commands (sigsa-class row commands). */
Cycle
replayTrngFootprint(DramSystem &sys, Cycle now, uint64_t base_addr,
                    int commands)
{
    for (int c = 0; c < commands; ++c)
        now = sys.rowOp(base_addr, now, RowOpMechanism::CodicDet);
    return now;
}

/** Device's canonical physical row address inside a shard module. */
uint64_t
deviceRowAddr(const DramConfig &cfg, uint64_t segment_id)
{
    const uint64_t rows = static_cast<uint64_t>(cfg.totalRows());
    return (segment_id % rows) * static_cast<uint64_t>(cfg.row_bytes);
}

/**
 * Resumable replay of one request's DRAM command footprint over the
 * transaction API.
 *
 * A cursor carries the request's local replay clock and keeps ONE
 * request-level transaction in flight (one read burst, one CODIC row
 * op), each stamped with the cursor's local clock and chained on its
 * own completion exactly like the serial replay. The controller
 * services its queue in arrival order (ties: submission order), so a
 * slice of cursors submitting against one DramSystem issues commands
 * in near-global-time order without any scheduler loop here: one
 * device's read chain (a burst every completion latency) leaves the
 * data bus mostly idle, and the arrival-ordered queue fills those
 * gaps with bursts and row commands of the slice's other devices -
 * the bank-level parallelism a 64-entry FR-FCFS front-end extracts
 * from independent requests, and exactly what the serial
 * single-request replay leaves on the floor.
 */
struct ReplayCursor
{
    enum class Kind : uint8_t { None, Eval, Dealloc, Trng };

    Kind kind = Kind::None;
    uint64_t base = 0;     //!< Device's base physical address.
    uint64_t origin = 0;   //!< Device id (transaction origin tag).
    /**
     * Priority stamped on every footprint transaction. Authenticate
     * evaluations are tagged urgent (-1) unconditionally - the tag
     * is inert unless the scheduler runs with priority_sched (the
     * serving preset), so priority-blind presets keep their replay
     * byte-identical.
     */
    int priority = 0;
    size_t slot = 0;       //!< Stream index (replay latency slot).
    int bursts = 0;        //!< Eval: read bursts per pass.
    int passes_left = 0;   //!< Eval: passes still to run.
    int reads_left = 0;    //!< Eval: bursts left in current pass.
    int read_idx = 0;      //!< Eval: next burst within the pass.
    int rows_left = 0;     //!< Dealloc rows / Trng commands left.
    int row_idx = 0;       //!< Dealloc: next row offset.
    Cycle now = 0;         //!< Local replay clock.
    Ticket in_flight = kInvalidTicket; //!< Pending transaction.

    bool done() const
    {
        switch (kind) {
          case Kind::None: return true;
          case Kind::Eval: return passes_left == 0 && reads_left == 0;
          case Kind::Dealloc:
          case Kind::Trng: return rows_left == 0;
        }
        return true;
    }

    /** Submit the next footprint command, stamped with `now`. */
    void submitNext(DramSystem &sys)
    {
        CODIC_ASSERT(!done() && in_flight == kInvalidTicket);
        switch (kind) {
          case Kind::Eval: {
            if (reads_left == 0) {
                // Pass boundary: the CODIC row command that launches
                // the next filtered evaluation pass.
                in_flight = sys.submit(MemTransaction::makeRowOp(
                    base, now, RowOpMechanism::CodicDet, 0, origin,
                    priority));
                --passes_left;
                reads_left = bursts;
                read_idx = 0;
                return;
            }
            const int64_t burst_bytes = sys.config().burst_bytes;
            in_flight = sys.submit(MemTransaction::makeRead(
                base + static_cast<uint64_t>(read_idx) *
                           static_cast<uint64_t>(burst_bytes),
                now, origin, priority));
            ++read_idx;
            --reads_left;
            return;
          }
          case Kind::Dealloc: {
            const int64_t row_bytes = sys.config().row_bytes;
            const uint64_t capacity =
                static_cast<uint64_t>(sys.config().capacityBytes());
            const uint64_t addr =
                (base + static_cast<uint64_t>(row_idx) *
                            static_cast<uint64_t>(row_bytes)) %
                capacity;
            in_flight = sys.submit(MemTransaction::makeRowOp(
                addr, now, RowOpMechanism::CodicDet, 0, origin));
            ++row_idx;
            --rows_left;
            return;
          }
          case Kind::Trng:
            in_flight = sys.submit(MemTransaction::makeRowOp(
                base, now, RowOpMechanism::CodicDet, 0, origin));
            --rows_left;
            return;
          case Kind::None:
            return;
        }
    }

    /** Resolve the in-flight transaction into the local clock. */
    void harvest(DramSystem &sys)
    {
        CODIC_ASSERT(in_flight != kInvalidTicket);
        now = sys.completionOf(in_flight);
        in_flight = kInvalidTicket;
    }
};

} // namespace

FleetCostModel
buildFleetCostModel(const DramConfig &config, int filter_challenges,
                    const EnergyParams &energy)
{
    FleetCostModel m;
    m.eval_passes = std::max(1, filter_challenges);
    m.bursts_per_pass = static_cast<int>(
        std::min<int64_t>(config.row_bytes / config.burst_bytes,
                          config.columns));

    ResponseTimeParams rt;
    rt.filter_challenges = m.eval_passes;
    m.sig_eval_ns =
        evaluationTime(PufKind::CodicSig, true, config, rt).native_ns;

    // Steady-state per-row CODIC-det cost and energy, measured on a
    // scratch system (the same accounting the secure-deallocation
    // evaluation uses).
    {
        DramSystem sys(config);
        const int rows = 16;
        const Cycle done =
            replayDeallocFootprint(sys, 0, 0, rows);
        m.rowop_ns = config.cyclesToNs(done) / rows;
        m.dealloc_row_energy_nj =
            campaignEnergyNj(sys.totalCounts(),
                             config.cyclesToNs(done), energy) /
            rows;
    }

    // Full filtered-evaluation footprint energy.
    {
        DramSystem sys(config);
        replayEvalFootprint(sys, 0, 0, m.eval_passes,
                            m.bursts_per_pass);
        m.auth_energy_nj = campaignEnergyNj(sys.totalCounts(),
                                            m.sig_eval_ns, energy);
    }

    // One harvest command (sigsa-class row command).
    {
        DramSystem sys(config);
        replayTrngFootprint(sys, 0, 0, 1);
        m.trng_cmd_energy_nj = campaignEnergyNj(sys.totalCounts(),
                                                m.rowop_ns, energy);
    }
    return m;
}

// --- AuthService -------------------------------------------------------------

double
LoadReport::makespanNs() const
{
    double worst = 0.0;
    for (double b : shard_busy_ns)
        worst = std::max(worst, b);
    return worst;
}

AuthService::AuthService(DeviceFleet &fleet, EnrollmentBackend &store,
                         const AuthConfig &config)
    : fleet_(fleet), store_(store), config_(config),
      cost_model_(buildFleetCostModel(
          fleet.config().dram,
          fleet.config().sig_params.filter_challenges, config.energy))
{
}

void
AuthService::enrollAll()
{
    CampaignEngine engine(config_.threads);
    engine.forEach(
        static_cast<size_t>(fleet_.shards()), [&](size_t shard) {
            for (uint64_t id :
                 fleet_.shardDeviceIds(static_cast<int>(shard))) {
                const Challenge ch = fleet_.goldenChallenge(id);
                store_.put(id, ch, fleet_.enrollSignature(id, ch));
            }
        });
}

double
AuthService::modeledCapacityRps() const
{
    const double auth_ns =
        cost_model_.sig_eval_ns + config_.store_miss_ns;
    return static_cast<double>(std::max(1, config_.service_lanes)) *
           1e9 / auth_ns;
}

double
AuthService::trngEstNsPerBit()
{
    if (trng_est_ns_per_bit_ < 0.0) {
        // A reference TRNG of this population (fixed domain tag, not
        // any real device): its whitened throughput stands in for
        // the per-device rate the controller cannot know without
        // materializing the device - which a shed request never
        // does. <= 0 when even the reference scan found no sources.
        TrngConfig cfg;
        cfg.run.seed =
            fleet_.config().population_seed ^ 0x7E57AE5Eull;
        cfg.segment_bits = fleet_.config().trng_segment_bits;
        cfg.harvest_latency_ns =
            fleet_.config().trng_harvest_latency_ns;
        const CodicTrng ref(cfg);
        trng_est_ns_per_bit_ =
            ref.sources().empty()
                ? 0.0
                : 1e9 / ref.whitenedThroughputBitsPerSec();
    }
    return trng_est_ns_per_bit_;
}

double
AuthService::estimateServiceNs(const FleetRequest &req, bool known,
                               bool hit)
{
    switch (req.kind) {
      case RequestKind::Authenticate:
        if (!known)
            return config_.store_miss_ns;
        return (hit ? config_.store_hit_ns : config_.store_miss_ns) +
               cost_model_.sig_eval_ns;
      case RequestKind::Reenroll:
        return cost_model_.sig_eval_ns + config_.store_write_ns;
      case RequestKind::TrngDraw: {
        const double per_bit = trngEstNsPerBit();
        // Sourceless populations fail the draw after one scan pass.
        return per_bit > 0.0
                   ? static_cast<double>(req.payload) * per_bit
                   : cost_model_.sig_eval_ns;
      }
      case RequestKind::SecureDealloc:
        return static_cast<double>(req.payload) *
               cost_model_.rowop_ns;
    }
    panic("unknown request kind");
}

AuthService::Execution
AuthService::prepare(std::vector<FleetRequest> stream)
{
    Execution exec;
    exec.wall_start = std::chrono::steady_clock::now();
    exec.stream = std::move(stream);
    const size_t n = exec.stream.size();
    exec.hit.assign(n, false);
    exec.admitted.assign(n, true);
    exec.wait_ns.assign(n, 0.0);

    for (const FleetRequest &req : exec.stream)
        exec.open_loop = exec.open_loop || req.arrival_us > 0.0;
    exec.admission_on =
        exec.open_loop && config_.admission.enabled();

    /*
     * Unified sequential plan over the stream: the LRU cache plan
     * and the admission decisions advance together, so the cache
     * plan never sees a shed request (it is never served) and the
     * controller's store-latency estimate agrees exactly with the
     * hit the serving path will charge (LruIndex::contains peeks
     * what touch() would return). The plan runs the same LruIndex
     * that backs the store's real decode cache, at the store's real
     * capacity, and mirrors its semantics: failed lookups of
     * unknown devices are never cached (and take no capacity), and
     * a re-enrollment both makes the device known and invalidates
     * any cached decode. Purely order-based, so the modeled store
     * latency is independent of shard/thread scheduling; with
     * admission off the hit plan is exactly the plain LRU pass.
     */
    std::unique_ptr<AdmissionController> ctrl;
    if (exec.admission_on)
        ctrl = std::make_unique<AdmissionController>(
            config_.admission, std::max(1, config_.service_lanes),
            cost_model_.sig_eval_ns + config_.store_miss_ns);

    LruIndex plan(store_.cacheCapacity());
    std::unordered_set<uint64_t> enrolled_in_stream;
    for (size_t i = 0; i < n; ++i) {
        const FleetRequest &req = exec.stream[i];
        const bool known =
            req.kind == RequestKind::Authenticate &&
            (store_.contains(req.device_id) ||
             enrolled_in_stream.count(req.device_id) != 0);
        if (ctrl) {
            const bool hit_if_served =
                known && plan.contains(req.device_id);
            const AdmissionController::Decision d = ctrl->offer(
                admissionClassOf(req.kind), req.device_id,
                req.arrival_us * 1e3,
                estimateServiceNs(req, known, hit_if_served));
            if (!d.admitted) {
                exec.admitted[i] = false;
                const bool urgent = admissionClassOf(req.kind) ==
                                    AdmissionClass::Urgent;
                exec.shed_urgent += urgent;
                exec.shed_best_effort += !urgent;
                exec.shed_deadline += d.deadline_shed;
                exec.shed_queue += d.queue_shed;
                exec.shed_bucket += d.bucket_shed;
                continue; // Never served: no cache/lane effects.
            }
            exec.wait_ns[i] = d.wait_ns;
        }
        if (req.kind == RequestKind::Authenticate) {
            if (known) {
                exec.hit[i] = plan.touch(req.device_id);
                while (plan.evictIfOver()) {
                }
            }
        } else if (req.kind == RequestKind::Reenroll) {
            enrolled_in_stream.insert(req.device_id);
            plan.erase(req.device_id);
        }
    }

    // Batch the admitted requests per shard, preserving stream order
    // inside each batch.
    exec.batches.assign(static_cast<size_t>(fleet_.shards()), {});
    for (size_t i = 0; i < n; ++i)
        if (exec.admitted[i])
            exec.batches[static_cast<size_t>(fleet_.shardOf(
                             exec.stream[i].device_id))]
                .push_back(i);
    exec.results.assign(n, RequestResult{});
    exec.shard_busy_ns.assign(static_cast<size_t>(fleet_.shards()),
                              0.0);
    return exec;
}

void
AuthService::runShard(Execution &exec, size_t shard)
{
    const std::vector<FleetRequest> &stream = exec.stream;
    const std::vector<bool> &planned_hit = exec.hit;
    std::vector<RequestResult> &results = exec.results;
    const FleetConfig &fc = fleet_.config();
    {
        // Fresh replay system per batch: created on the executing
        // worker (single-thread ownership) with pristine timing
        // state, so the replay depends only on the batch content.
        DramSystem sys(fc.dram);

        // One request's outcome evaluation; returns the replay
        // cursor for its DRAM footprint (starting at `start`).
        const auto evalOne = [&](size_t i, Cycle start) {
            const FleetRequest &req = stream[i];
            RequestResult &res = results[i];
            ReplayCursor cur;
            cur.now = start;
            cur.origin = req.device_id;
            cur.slot = i;
            switch (req.kind) {
              case RequestKind::Authenticate: {
                cur.priority = -1; // Urgent class (serving preset).
                const auto golden = store_.lookup(req.device_id);
                if (!golden) {
                    res.unknown = true;
                    res.service_ns = config_.store_miss_ns;
                    return cur;
                }
                const Challenge ch =
                    fleet_.goldenChallenge(req.device_id);
                const Response fresh = fleet_.challengeResponse(
                    req.device_id, ch, req.nonce);
                if (jaccard(*golden, fresh) >=
                    config_.accept_threshold)
                    res.accepted = true;
                else
                    res.rejected = true;
                res.service_ns =
                    (planned_hit[i] ? config_.store_hit_ns
                                    : config_.store_miss_ns) +
                    cost_model_.sig_eval_ns;
                res.energy_nj = cost_model_.auth_energy_nj;
                cur.kind = ReplayCursor::Kind::Eval;
                cur.base = deviceRowAddr(fc.dram, ch.segment_id);
                cur.bursts = cost_model_.bursts_per_pass;
                cur.passes_left = cost_model_.eval_passes;
                return cur;
              }
              case RequestKind::Reenroll: {
                const Challenge ch =
                    fleet_.goldenChallenge(req.device_id);
                const Response sig = fleet_.challengeResponse(
                    req.device_id, ch, req.nonce);
                store_.put(req.device_id, ch, sig);
                res.reenrolled = true;
                res.service_ns = cost_model_.sig_eval_ns +
                                 config_.store_write_ns;
                res.energy_nj = cost_model_.auth_energy_nj;
                cur.kind = ReplayCursor::Kind::Eval;
                cur.base = deviceRowAddr(fc.dram, ch.segment_id);
                cur.bursts = cost_model_.bursts_per_pass;
                cur.passes_left = cost_model_.eval_passes;
                return cur;
              }
              case RequestKind::TrngDraw: {
                CodicTrng &trng = fleet_.trng(req.device_id);
                if (trng.sources().empty()) {
                    // No metastable sources at this scan width: the
                    // draw fails after one enrollment-scan pass.
                    res.trng_failure = true;
                    res.service_ns = cost_model_.sig_eval_ns;
                    return cur;
                }
                Rng noise(req.nonce ^ 0x7A6B5C4Dull);
                TrngHealthTests health;
                const auto bits =
                    trng.harvest(req.payload, noise, &health);
                res.trng_bits = static_cast<uint32_t>(bits.size());
                res.trng_failure = health.failed();
                res.service_ns = static_cast<double>(req.payload) /
                                 trng.whitenedThroughputBitsPerSec() *
                                 1e9;
                // One harvest command yields (Von Neumann) ~ the
                // per-command whitened yield; the command count is
                // the modeled service time over the command latency.
                const int commands = std::clamp(
                    static_cast<int>(std::ceil(
                        res.service_ns /
                        fc.trng_harvest_latency_ns)),
                    1, 512);
                res.energy_nj =
                    commands * cost_model_.trng_cmd_energy_nj;
                cur.kind = ReplayCursor::Kind::Trng;
                cur.base = deviceRowAddr(fc.dram, req.device_id);
                cur.rows_left = commands;
                return cur;
              }
              case RequestKind::SecureDealloc: {
                const int rows = static_cast<int>(req.payload);
                res.dealloc_rows = req.payload;
                res.service_ns = rows * cost_model_.rowop_ns;
                res.energy_nj =
                    rows * cost_model_.dealloc_row_energy_nj;
                cur.kind = ReplayCursor::Kind::Dealloc;
                cur.base = deviceRowAddr(fc.dram, req.device_id);
                cur.rows_left = rows;
                return cur;
              }
            }
            panic("unknown request kind");
        };

        // The slice-independence key of an evaluated request: its
        // device plus the DRAM bank its footprint starts on, read
        // off the cursor evalOne already built (the challenge is
        // derived once per request, and a no-footprint cursor -
        // unknown device, sourceless TRNG - claims no bank at all).
        struct SliceKey
        {
            uint64_t device = 0;
            uint64_t bank = 0;
            bool has_bank = false;
        };
        const auto keyOf = [&](const FleetRequest &req,
                               const ReplayCursor &cur) {
            SliceKey key;
            key.device = req.device_id;
            key.has_bank = cur.kind != ReplayCursor::Kind::None;
            if (key.has_bank) {
                const Address a = sys.map().decode(cur.base);
                key.bank =
                    (static_cast<uint64_t>(a.channel) << 32) |
                    (static_cast<uint64_t>(a.rank) << 16) |
                    static_cast<uint64_t>(a.bank);
            }
            return key;
        };

        // Bank-parallel batched replay: up to replay_batch requests
        // of DISTINCT devices with DISTINCT footprint base banks
        // form one slice (a physical device serves one request at a
        // time, and two read sweeps on one bank would thrash
        // PRE/ACT between their rows where a real FR-FCFS front-end
        // streams row hits - a repeated device or bank defers the
        // request to the next slice). Multi-bank footprints (secure
        // dealloc walks successive banks) are keyed by their base
        // bank only: where their row walk crosses a slice peer's
        // bank, the replay pays the genuine bounded row-conflict
        // cost of that crossing, not the sustained same-bank read
        // thrash the key exists to prevent. Every cursor starts at
        // the slice's start cycle and keeps one transaction in
        // flight, stamped with its local clock; the controller's
        // arrival-ordered read queue (ties: submission order) issues
        // commands of independent devices in near-global-time order,
        // overlapping across banks and channels while the JEDEC
        // checker serializes genuinely shared resources. The next
        // slice starts at the slowest cursor's completion.
        const auto &batch = exec.batches[shard];
        const size_t slice = static_cast<size_t>(
            std::max(1, fc.dram.scheduler.replay_batch));
        Cycle slice_start = 0;
        // Slice membership sets: a slice holds at most replay_batch
        // (<= 16) entries, so flat vectors with a linear scan beat
        // hash sets and stay allocation-free across slices after the
        // first reserve.
        std::vector<ReplayCursor> cursors;
        std::vector<uint64_t> slice_devices;
        std::vector<uint64_t> slice_banks;
        cursors.reserve(slice);
        slice_devices.reserve(slice);
        slice_banks.reserve(slice);
        const auto contains = [](const std::vector<uint64_t> &v,
                                 uint64_t x) {
            return std::find(v.begin(), v.end(), x) != v.end();
        };
        // The request that closed the previous slice (already
        // evaluated; its replay is deferred to the next slice).
        ReplayCursor carry_cur;
        SliceKey carry_key;
        bool have_carry = false;
        const auto admit = [&](const ReplayCursor &cur,
                               const SliceKey &key) {
            cursors.push_back(cur);
            slice_devices.push_back(key.device);
            if (key.has_bank)
                slice_banks.push_back(key.bank);
        };
        size_t k = 0;
        while (k < batch.size() || have_carry) {
            cursors.clear();
            slice_devices.clear();
            slice_banks.clear();
            if (have_carry) {
                carry_cur.now = slice_start;
                admit(carry_cur, carry_key);
                have_carry = false;
            }
            while (k < batch.size() && cursors.size() < slice) {
                const FleetRequest &req = stream[batch[k]];
                const ReplayCursor cur =
                    evalOne(batch[k], slice_start);
                const SliceKey key = keyOf(req, cur);
                ++k;
                if (!cursors.empty() &&
                    (contains(slice_devices, key.device) ||
                     (key.has_bank &&
                      contains(slice_banks, key.bank)))) {
                    carry_cur = cur;
                    carry_key = key;
                    have_carry = true;
                    break;
                }
                admit(cur, key);
            }
            // Multi-ticket poll loop: every active cursor keeps one
            // transaction in flight, and tickets resolve in ascending
            // arrival order (a cursor's clock IS its in-flight
            // arrival). Resolving the earliest ticket first matters:
            // channel horizons only move forward, so issuing a
            // late-arrival command ahead of an earlier one would
            // penalize the earlier one with the later command's bus
            // state. With this order the transaction queue issues the
            // slice's commands in exactly the near-global-time
            // interleave the old discrete-event loop produced.
            for (auto &c : cursors)
                if (!c.done())
                    c.submitNext(sys);
            while (true) {
                ReplayCursor *next = nullptr;
                for (auto &c : cursors)
                    if (c.in_flight != kInvalidTicket &&
                        (!next || c.now < next->now))
                        next = &c;
                if (!next)
                    break;
                next->harvest(sys);
                if (!next->done())
                    next->submitNext(sys);
            }
            Cycle slice_end = slice_start;
            for (const auto &c : cursors) {
                // Replay latency of the request: every cursor of the
                // slice started at slice_start (re-stamped for the
                // carried cursor), so its clock delta is how long its
                // footprint took on the shared channel - the number
                // the QoS ablation's auth percentiles are built from.
                if (c.kind != ReplayCursor::Kind::None)
                    results[c.slot].replay_ns =
                        fc.dram.cyclesToNs(c.now - slice_start);
                slice_end = std::max(slice_end, c.now);
            }
            slice_start = slice_end;
        }
        exec.shard_busy_ns[shard] =
            fc.dram.cyclesToNs(sys.lastIssueCycle());
    }
}

LoadReport
AuthService::finalize(Execution &exec) const
{
    const std::vector<FleetRequest> &stream = exec.stream;
    const std::vector<RequestResult> &results = exec.results;

    // Queueing model over the arrival stamps: device -> logical lane
    // (a fixed modeled deployment, never the execution shard count),
    // each lane serves its requests in arrival (= stream) order, and
    // a request waits while its lane is busy past its arrival. Pure
    // sequential plan over the stream: deterministic at any
    // shard/thread count. Closed-loop streams carry no arrival
    // stamps - their arrivals are service-driven, so no wait. With
    // admission on the waits were already planned (the controller's
    // lane model IS the queueing model, advanced by its service
    // estimates); with it off, backfill them here from the executed
    // service times - the legacy model, bit for bit.
    if (exec.open_loop && !exec.admission_on) {
        const size_t lanes = static_cast<size_t>(
            std::max(1, config_.service_lanes));
        std::vector<double> lane_free_ns(lanes, 0.0);
        for (size_t i = 0; i < stream.size(); ++i) {
            const size_t lane = stream[i].device_id % lanes;
            const double arrival_ns = stream[i].arrival_us * 1e3;
            const double begin =
                std::max(arrival_ns, lane_free_ns[lane]);
            exec.wait_ns[i] = begin - arrival_ns;
            lane_free_ns[lane] = begin + results[i].service_ns;
        }
    }

    // Sequential aggregation in stream order: deterministic. Shed
    // requests count into the arrival mix (by_kind) and the shed
    // telemetry only - they never executed, so every latency, wait,
    // outcome and energy figure covers admitted requests alone.
    LoadReport report;
    report.requests = stream.size();
    report.open_loop = exec.open_loop;
    report.admission_on = exec.admission_on;
    report.shed_urgent = exec.shed_urgent;
    report.shed_best_effort = exec.shed_best_effort;
    report.shed_deadline = exec.shed_deadline;
    report.shed_queue = exec.shed_queue;
    report.shed_bucket = exec.shed_bucket;
    std::vector<double> latencies;
    latencies.reserve(stream.size());
    std::vector<double> waits;
    waits.reserve(stream.size());
    std::vector<double> auth_replays;
    std::vector<double> urgent_latencies;
    double wait_sum = 0.0;
    for (size_t i = 0; i < stream.size(); ++i) {
        ++report.by_kind[static_cast<int>(stream[i].kind)];
        if (!exec.admitted[i])
            continue;
        ++report.admitted;
        const RequestResult &res = results[i];
        if (stream[i].kind == RequestKind::Authenticate &&
            !res.unknown)
            auth_replays.push_back(res.replay_ns);
        report.accepted += res.accepted;
        report.rejected += res.rejected;
        report.unknown_device += res.unknown;
        report.reenrolled += res.reenrolled;
        report.trng_bits_delivered += res.trng_bits;
        report.trng_health_failures += res.trng_failure;
        report.dealloc_rows_cleared += res.dealloc_rows;
        if (stream[i].kind == RequestKind::Authenticate &&
            !res.unknown) {
            report.planned_cache_hits += exec.hit[i];
            report.planned_cache_misses += !exec.hit[i];
        }
        report.total_service_ns += res.service_ns;
        report.total_energy_nj += res.energy_nj;
        wait_sum += exec.wait_ns[i];
        waits.push_back(exec.wait_ns[i]);
        latencies.push_back(exec.wait_ns[i] + res.service_ns);
        if (stream[i].kind == RequestKind::Authenticate)
            urgent_latencies.push_back(exec.wait_ns[i] +
                                       res.service_ns);
    }
    report.shed = report.requests - report.admitted;
    report.shed_rate =
        report.requests > 0
            ? static_cast<double>(report.shed) /
                  static_cast<double>(report.requests)
            : 0.0;
    if (!latencies.empty()) {
        const double n = static_cast<double>(latencies.size());
        report.latency_mean_ns =
            (report.total_service_ns + wait_sum) / n;
        report.latency_p50_ns = percentile(latencies, 50.0);
        report.latency_p95_ns = percentile(latencies, 95.0);
        report.latency_p99_ns = percentile(latencies, 99.0);
        report.latency_max_ns =
            *std::max_element(latencies.begin(), latencies.end());
        report.wait_mean_ns = wait_sum / n;
        report.wait_p95_ns = percentile(waits, 95.0);
        report.wait_max_ns =
            *std::max_element(waits.begin(), waits.end());
    }
    if (!urgent_latencies.empty()) {
        report.admitted_urgent_p50_ns =
            percentile(urgent_latencies, 50.0);
        report.admitted_urgent_p99_ns =
            percentile(urgent_latencies, 99.0);
    }
    if (!auth_replays.empty()) {
        report.auth_replayed = auth_replays.size();
        double sum = 0.0;
        for (double r : auth_replays)
            sum += r;
        report.auth_replay_mean_ns =
            sum / static_cast<double>(auth_replays.size());
        report.auth_replay_p50_ns = percentile(auth_replays, 50.0);
        report.auth_replay_p99_ns = percentile(auth_replays, 99.0);
        report.auth_replay_max_ns = *std::max_element(
            auth_replays.begin(), auth_replays.end());
    }
    report.shard_busy_ns = std::move(exec.shard_busy_ns);
    report.wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - exec.wall_start)
            .count();
    return report;
}

void
AuthService::appendAdmittedLatencies(const Execution &exec,
                                     std::vector<double> &out) const
{
    for (size_t i = 0; i < exec.stream.size(); ++i)
        if (exec.admitted[i])
            out.push_back(exec.wait_ns[i] +
                          exec.results[i].service_ns);
}

LoadReport
AuthService::execute(const std::vector<FleetRequest> &stream)
{
    Execution exec = prepare(stream);
    CampaignEngine engine(config_.threads);
    engine.forEach(exec.batches.size(),
                   [&](size_t shard) { runShard(exec, shard); });
    return finalize(exec);
}

} // namespace codic
