#include "fleet/enrollment_store.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace codic {

namespace {

constexpr char kMagic[8] = {'C', 'O', 'D', 'I', 'C', 'E', 'N', 'R'};

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

uint64_t
getVarint(const std::vector<uint8_t> &in, size_t &pos)
{
    uint64_t v = 0;
    int shift = 0;
    while (true) {
        if (pos >= in.size())
            fatal("enrollment store: corrupt varint in record blob");
        const uint8_t byte = in[pos++];
        // The 10th byte holds only bit 63: anything wider (or an
        // 11th byte) would silently drop bits, so reject it.
        if (shift > 63 || (shift == 63 && (byte & 0x7f) > 1))
            fatal("enrollment store: overlong varint in record "
                  "blob");
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

template <typename T>
void
putLe(std::ostream &out, T v)
{
    uint8_t bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i)
        bytes[i] = static_cast<uint8_t>(v >> (8 * i));
    out.write(reinterpret_cast<const char *>(bytes), sizeof(T));
}

template <typename T>
T
getLe(std::istream &in)
{
    uint8_t bytes[sizeof(T)];
    in.read(reinterpret_cast<char *>(bytes), sizeof(T));
    if (!in)
        fatal("enrollment store: truncated binary stream");
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(bytes[i]) << (8 * i);
    return v;
}

std::vector<uint8_t>
encodeCells(const std::vector<uint32_t> &cells)
{
    std::vector<uint8_t> blob;
    blob.reserve(cells.size() * 2);
    uint32_t prev = 0;
    for (uint32_t c : cells) {
        // Responses are sorted and deduplicated, so deltas fit in
        // one or two varint bytes for typical signature densities.
        putVarint(blob, c - prev);
        prev = c;
    }
    return blob;
}

/** Sorted record views for deterministic serialization. */
std::vector<const EnrollmentRecord *>
sortedRecords(const std::unordered_map<uint64_t, EnrollmentRecord> &map)
{
    std::vector<const EnrollmentRecord *> out;
    out.reserve(map.size());
    for (const auto &[id, rec] : map)
        out.push_back(&rec);
    std::sort(out.begin(), out.end(),
              [](const EnrollmentRecord *a, const EnrollmentRecord *b) {
                  return a->device_id < b->device_id;
              });
    return out;
}

} // namespace

EnrollmentStore::EnrollmentStore(uint64_t population_seed,
                                 size_t cache_capacity)
    : population_seed_(population_seed),
      cache_capacity_(std::max<size_t>(1, cache_capacity)),
      index_(cache_capacity_)
{
}

EnrollmentStore::EnrollmentStore(EnrollmentStore &&other) noexcept
    : population_seed_(other.population_seed_),
      cache_capacity_(other.cache_capacity_),
      records_(std::move(other.records_)),
      index_(other.cache_capacity_)
{
}

EnrollmentStore &
EnrollmentStore::operator=(EnrollmentStore &&other) noexcept
{
    population_seed_ = other.population_seed_;
    cache_capacity_ = other.cache_capacity_;
    records_ = std::move(other.records_);
    index_ = LruIndex(cache_capacity_);
    cache_.clear();
    hits_ = 0;
    misses_ = 0;
    return *this;
}

EnrollmentRecord
EnrollmentStore::encode(uint64_t device_id, const Challenge &challenge,
                        const Response &signature)
{
    EnrollmentRecord rec;
    rec.device_id = device_id;
    rec.segment_id = challenge.segment_id;
    rec.segment_bits = static_cast<uint32_t>(challenge.segment_bits);
    rec.cell_count = static_cast<uint32_t>(signature.cells.size());
    rec.blob = encodeCells(signature.cells);
    return rec;
}

void
EnrollmentStore::put(uint64_t device_id, const Challenge &challenge,
                     const Response &signature)
{
    EnrollmentRecord rec = encode(device_id, challenge, signature);

    std::lock_guard<std::mutex> lock(mutex_);
    records_[device_id] = std::move(rec);
    // A re-enrollment invalidates any cached decode of the old
    // signature.
    if (index_.erase(device_id))
        cache_.erase(device_id);
}

bool
EnrollmentStore::contains(uint64_t device_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.count(device_id) != 0;
}

size_t
EnrollmentStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

const EnrollmentRecord *
EnrollmentStore::record(uint64_t device_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(device_id);
    // unordered_map guarantees element-address stability, so the
    // pointer outlives the lock; see the header's aliasing caveat.
    return it == records_.end() ? nullptr : &it->second;
}

Response
EnrollmentStore::decode(const EnrollmentRecord &record)
{
    // Every cell costs at least one varint byte, so a count above
    // the blob size is corruption - reject before allocating.
    if (record.cell_count > record.blob.size())
        fatal("enrollment store: corrupt record for device ",
              record.device_id, " (cell count ", record.cell_count,
              " exceeds blob size ", record.blob.size(), ")");
    Response r;
    r.cells.reserve(record.cell_count);
    size_t pos = 0;
    uint32_t value = 0;
    for (uint32_t i = 0; i < record.cell_count; ++i) {
        value += static_cast<uint32_t>(getVarint(record.blob, pos));
        r.cells.push_back(value);
    }
    if (pos != record.blob.size())
        fatal("enrollment store: trailing bytes in record blob for "
              "device ", record.device_id);
    return r;
}

std::shared_ptr<const Response>
EnrollmentStore::lookup(uint64_t device_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto hit = cache_.find(device_id);
    if (hit != cache_.end()) {
        ++hits_;
        index_.touch(device_id);
        return hit->second;
    }
    auto it = records_.find(device_id);
    if (it == records_.end())
        return nullptr;
    ++misses_;
    auto decoded = std::make_shared<const Response>(decode(it->second));
    index_.touch(device_id);
    cache_[device_id] = decoded;
    while (const auto victim = index_.evictIfOver())
        cache_.erase(*victim);
    return decoded;
}

std::vector<uint64_t>
EnrollmentStore::deviceIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<uint64_t> ids;
    ids.reserve(records_.size());
    for (const auto &[id, rec] : records_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

// --- Binary format -----------------------------------------------------------
//
// Layout (little-endian):
//   char[8]  magic "CODICENR"
//   u32      format version
//   u32      reserved flags (0)
//   u64      population seed
//   u64      record count
//   u64      index offset             (v2+; v1 headers stop above)
//   records, sorted by device id:
//     u64 device_id, u64 segment_id, u32 segment_bits,
//     u32 cell_count, u32 blob_len, u8[blob_len] blob
//   index (v2+), at the index offset, sorted by device id:
//     record count x (u64 device_id, u64 record offset)
//
// The index makes the file directly servable: the mmap read path
// (store_mmap.cc) binary-searches it in place, so a lookup touches
// O(log n) index pages plus the record's own bytes and never decodes
// the store into heap.

void
EnrollmentStore::saveBinary(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto sorted = sortedRecords(records_);
    const uint64_t header_bytes = sizeof(kMagic) + 4 + 4 + 8 + 8 + 8;
    uint64_t index_offset = header_bytes;
    for (const EnrollmentRecord *rec : sorted)
        index_offset += 8 + 8 + 4 + 4 + 4 + rec->blob.size();

    out.write(kMagic, sizeof(kMagic));
    putLe<uint32_t>(out, kFormatVersion);
    putLe<uint32_t>(out, 0);
    putLe<uint64_t>(out, population_seed_);
    putLe<uint64_t>(out, records_.size());
    putLe<uint64_t>(out, index_offset);
    uint64_t offset = header_bytes;
    std::vector<uint64_t> offsets;
    offsets.reserve(sorted.size());
    for (const EnrollmentRecord *rec : sorted) {
        offsets.push_back(offset);
        putLe<uint64_t>(out, rec->device_id);
        putLe<uint64_t>(out, rec->segment_id);
        putLe<uint32_t>(out, rec->segment_bits);
        putLe<uint32_t>(out, rec->cell_count);
        putLe<uint32_t>(out, static_cast<uint32_t>(rec->blob.size()));
        out.write(reinterpret_cast<const char *>(rec->blob.data()),
                  static_cast<std::streamsize>(rec->blob.size()));
        offset += 8 + 8 + 4 + 4 + 4 + rec->blob.size();
    }
    for (size_t i = 0; i < sorted.size(); ++i) {
        putLe<uint64_t>(out, sorted[i]->device_id);
        putLe<uint64_t>(out, offsets[i]);
    }
    if (!out)
        fatal("enrollment store: write failed");
}

size_t
EnrollmentStore::binarySizeBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t bytes = sizeof(kMagic) + 4 + 4 + 8 + 8 + 8;
    for (const auto &[id, rec] : records_)
        bytes += 8 + 8 + 4 + 4 + 4 + rec.blob.size() + 16;
    return bytes;
}

EnrollmentStore
EnrollmentStore::loadBinary(std::istream &in, size_t cache_capacity)
{
    char magic[sizeof(kMagic)];
    in.read(magic, sizeof(magic));
    if (!in || !std::equal(magic, magic + sizeof(magic), kMagic))
        fatal("enrollment store: bad magic (not a CODIC enrollment "
              "store)");
    const uint32_t version = getLe<uint32_t>(in);
    if (version < 1 || version > kFormatVersion)
        fatal("enrollment store: format version mismatch (file v",
              version, ", supported v1..v", kFormatVersion, ")");
    getLe<uint32_t>(in); // reserved flags
    const uint64_t seed = getLe<uint64_t>(in);
    const uint64_t count = getLe<uint64_t>(in);
    const uint64_t index_offset =
        version >= 2 ? getLe<uint64_t>(in) : 0;
    const uint64_t header_bytes =
        sizeof(kMagic) + 4 + 4 + 8 + 8 + (version >= 2 ? 8 : 0);

    // Seek-to-end size check before touching any record: a short
    // file fails here with the byte counts, not mid-record with a
    // generic stream error. Unseekable streams skip the pre-check
    // and keep the per-record guards below.
    uint64_t file_bytes = 0;
    bool seekable = false;
    {
        const std::istream::pos_type here = in.tellg();
        if (here != std::istream::pos_type(-1)) {
            in.seekg(0, std::ios::end);
            const std::istream::pos_type end = in.tellg();
            if (end != std::istream::pos_type(-1)) {
                seekable = true;
                file_bytes = static_cast<uint64_t>(end);
            }
            in.seekg(here);
        }
    }
    // Record bytes end where the index starts (v2) or at EOF (v1).
    constexpr uint64_t kRecordFixedBytes = 8 + 8 + 4 + 4 + 4;
    if (seekable) {
        const uint64_t min_bytes =
            header_bytes + count * kRecordFixedBytes +
            (version >= 2 ? count * 16 : 0);
        if (file_bytes < min_bytes)
            fatal("enrollment store: truncated file (", file_bytes,
                  " bytes, but ", count, " records need at least ",
                  min_bytes, ")");
        if (version >= 2 &&
            (index_offset < header_bytes + count * kRecordFixedBytes ||
             index_offset + count * 16 != file_bytes))
            fatal("enrollment store: corrupt index offset ",
                  index_offset, " (file is ", file_bytes,
                  " bytes, ", count, " records)");
    }

    EnrollmentStore store(seed, cache_capacity);
    uint64_t offset = header_bytes;
    const uint64_t records_end =
        version >= 2 ? index_offset
                     : (seekable ? file_bytes : UINT64_MAX);
    for (uint64_t i = 0; i < count; ++i) {
        EnrollmentRecord rec;
        rec.device_id = getLe<uint64_t>(in);
        rec.segment_id = getLe<uint64_t>(in);
        rec.segment_bits = getLe<uint32_t>(in);
        rec.cell_count = getLe<uint32_t>(in);
        const uint32_t blob_len = getLe<uint32_t>(in);
        // Sanity-check untrusted sizes before allocating: each cell
        // costs at least one blob byte, and a signature blob is
        // bounded by ~5 bytes per cell of an 8 KB segment (a few
        // hundred KB) - 16 MB is far beyond any legal record.
        if (rec.cell_count > blob_len || blob_len > (16u << 20))
            fatal("enrollment store: corrupt record ", i,
                  " (cell count ", rec.cell_count, ", blob length ",
                  blob_len, ")");
        offset += kRecordFixedBytes;
        if (offset + blob_len > records_end)
            fatal("enrollment store: truncated record ", i,
                  " (record bytes end at ", records_end,
                  ", record needs ", offset + blob_len, ")");
        rec.blob.resize(blob_len);
        in.read(reinterpret_cast<char *>(rec.blob.data()), blob_len);
        if (!in)
            fatal("enrollment store: truncated record ", i);
        offset += blob_len;
        store.records_[rec.device_id] = std::move(rec);
    }
    if (version >= 2) {
        if (offset != index_offset)
            fatal("enrollment store: index offset ", index_offset,
                  " does not follow the records (which end at ",
                  offset, ")");
        // Validate the index against the records just read: sorted,
        // in-range offsets, every id enrolled.
        uint64_t prev_id = 0;
        for (uint64_t i = 0; i < count; ++i) {
            const uint64_t id = getLe<uint64_t>(in);
            const uint64_t rec_offset = getLe<uint64_t>(in);
            if (i > 0 && id <= prev_id)
                fatal("enrollment store: index entry ", i,
                      " is not sorted by device id");
            prev_id = id;
            if (store.records_.count(id) == 0)
                fatal("enrollment store: index entry ", i,
                      " names unknown device ", id);
            if (rec_offset < header_bytes ||
                rec_offset >= index_offset)
                fatal("enrollment store: index entry ", i,
                      " has out-of-range record offset ", rec_offset);
        }
    }
    // The format is end-exact: bytes after the declared record
    // count mean corruption (or concatenated files), not padding.
    if (in.peek() != std::char_traits<char>::eof())
        fatal("enrollment store: trailing bytes after ", count,
              " records");
    return store;
}

// --- JSON format -------------------------------------------------------------

void
EnrollmentStore::saveJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\"format\":\"codic-enrollment\",\"version\":"
        << kFormatVersion
        << ",\"population_seed\":" << population_seed_
        << ",\"records\":[";
    bool first = true;
    for (const EnrollmentRecord *rec : sortedRecords(records_)) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << " {\"device\":" << rec->device_id
            << ",\"segment\":" << rec->segment_id
            << ",\"segment_bits\":" << rec->segment_bits
            << ",\"cells\":[";
        const Response r = decode(*rec);
        for (size_t i = 0; i < r.cells.size(); ++i)
            out << (i ? "," : "") << r.cells[i];
        out << "]}";
    }
    out << "]}\n";
    if (!out)
        fatal("enrollment store: write failed");
}

namespace {

/**
 * Minimal parser for the store's own JSON output (and
 * whitespace-insensitive variants of it). Not a general JSON parser;
 * anything outside the expected shape fails loudly.
 */
class JsonCursor
{
  public:
    explicit JsonCursor(std::string text) : text_(std::move(text)) {}

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            fatal("enrollment store: JSON parse error, expected '", c,
                  "' at offset ", pos_);
    }

    std::string
    string()
    {
        expect('"');
        std::string s;
        while (pos_ < text_.size() && text_[pos_] != '"')
            s.push_back(text_[pos_++]);
        expect('"');
        return s;
    }

    uint64_t
    number()
    {
        skipSpace();
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == start)
            fatal("enrollment store: JSON parse error, expected a "
                  "number at offset ", pos_);
        try {
            return std::stoull(text_.substr(start, pos_ - start));
        } catch (const std::out_of_range &) {
            fatal("enrollment store: JSON number out of range at "
                  "offset ", start);
        }
    }

  private:
    std::string text_;
    size_t pos_ = 0;
};

} // namespace

EnrollmentStore
EnrollmentStore::loadJson(std::istream &in, size_t cache_capacity)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonCursor cur(buf.str());

    uint64_t version = 0;
    uint64_t seed = 0;
    bool format_seen = false;
    std::vector<EnrollmentRecord> records;

    cur.expect('{');
    do {
        const std::string key = cur.string();
        cur.expect(':');
        if (key == "format") {
            if (cur.string() != "codic-enrollment")
                fatal("enrollment store: JSON format field mismatch");
            format_seen = true;
        } else if (key == "version") {
            version = cur.number();
        } else if (key == "population_seed") {
            seed = cur.number();
        } else if (key == "records") {
            cur.expect('[');
            if (!cur.consume(']')) {
                do {
                    EnrollmentRecord rec;
                    std::vector<uint32_t> cells;
                    cur.expect('{');
                    do {
                        const std::string field = cur.string();
                        cur.expect(':');
                        if (field == "device") {
                            rec.device_id = cur.number();
                        } else if (field == "segment") {
                            rec.segment_id = cur.number();
                        } else if (field == "segment_bits") {
                            rec.segment_bits =
                                static_cast<uint32_t>(cur.number());
                        } else if (field == "cells") {
                            cur.expect('[');
                            if (!cur.consume(']')) {
                                do {
                                    cells.push_back(static_cast<uint32_t>(
                                        cur.number()));
                                } while (cur.consume(','));
                                cur.expect(']');
                            }
                        } else {
                            fatal("enrollment store: unknown JSON "
                                  "record field '", field, "'");
                        }
                    } while (cur.consume(','));
                    cur.expect('}');
                    rec.cell_count =
                        static_cast<uint32_t>(cells.size());
                    rec.blob = encodeCells(cells);
                    records.push_back(std::move(rec));
                } while (cur.consume(','));
                cur.expect(']');
            }
        } else {
            fatal("enrollment store: unknown JSON field '", key, "'");
        }
    } while (cur.consume(','));
    cur.expect('}');

    if (!format_seen)
        fatal("enrollment store: JSON missing format field");
    // The JSON layout is unchanged since v1; the version bump to v2
    // only added the binary record index.
    if (version < 1 || version > kFormatVersion)
        fatal("enrollment store: format version mismatch (file v",
              version, ", supported v1..v", kFormatVersion, ")");

    EnrollmentStore store(seed, cache_capacity);
    for (auto &rec : records) {
        const uint64_t id = rec.device_id;
        store.records_[id] = std::move(rec);
    }
    return store;
}

// --- Path helpers ------------------------------------------------------------

namespace {

bool
isJsonPath(const std::string &path)
{
    return path.size() >= 5 &&
           path.compare(path.size() - 5, 5, ".json") == 0;
}

} // namespace

void
EnrollmentStore::saveFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("enrollment store: cannot open '", path,
              "' for writing");
    if (isJsonPath(path))
        saveJson(out);
    else
        saveBinary(out);
}

EnrollmentStore
EnrollmentStore::loadFile(const std::string &path, size_t cache_capacity)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("enrollment store: cannot open '", path,
              "' for reading");
    return isJsonPath(path) ? loadJson(in, cache_capacity)
                            : loadBinary(in, cache_capacity);
}

} // namespace codic
