/**
 * @file
 * Golden-signature database for fleet authentication.
 *
 * The store maps device ids to enrolled PUF signatures. Records are
 * held compactly (varint delta-encoded cell positions) and decoded
 * on demand through a bounded LRU cache, so a million-device store
 * costs a few bytes per signature cell and a lookup of a hot device
 * never re-decodes.
 *
 * Two serializations share one versioned header model:
 *  - binary (magic "CODICENR" + format version): the compact wire
 *    format, written with records sorted by device id so a store
 *    built by a parallel enrollment campaign serializes
 *    byte-identically at any shard/thread count. Format v2 appends
 *    a sorted (device id, record offset) index after the records,
 *    which the mmap read path (store_mmap.h) binary-searches to
 *    serve lookups without decoding the store into heap;
 *  - JSON: interoperable mirror of the same fields (no index - the
 *    JSON mirror exists for interop, not for serving).
 * Loading either format rejects a bad magic, an unsupported format
 * version, or a truncated file with a clear FatalError instead of
 * misparsing - enrollment written by one run can be trusted by a
 * later run.
 */

#ifndef CODIC_FLEET_ENROLLMENT_STORE_H
#define CODIC_FLEET_ENROLLMENT_STORE_H

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "puf/puf.h"

namespace codic {

/**
 * Recency index of a bounded LRU set (list + map bookkeeping). One
 * implementation backs both the store's decode cache and
 * AuthService's deterministic cache plan, so the planned store
 * latencies can never drift from the eviction policy actually
 * served. Not thread-safe; callers synchronize.
 */
class LruIndex
{
  public:
    explicit LruIndex(size_t capacity)
        : capacity_(std::max<size_t>(1, capacity))
    {
    }

    /**
     * Record an access: true when the id was already indexed (moved
     * to the front); otherwise inserts it at the front. Callers
     * drain evictIfOver() after inserting.
     */
    bool
    touch(uint64_t id)
    {
        auto it = pos_.find(id);
        if (it != pos_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            return true;
        }
        lru_.push_front(id);
        pos_[id] = lru_.begin();
        return false;
    }

    /** Evict and return the least-recent id while over capacity. */
    std::optional<uint64_t>
    evictIfOver()
    {
        if (pos_.size() <= capacity_)
            return std::nullopt;
        const uint64_t victim = lru_.back();
        pos_.erase(victim);
        lru_.pop_back();
        return victim;
    }

    /** Is the id indexed? Pure peek: recency is not updated. */
    bool
    contains(uint64_t id) const
    {
        return pos_.count(id) != 0;
    }

    /** Drop an id (invalidation); true when it was present. */
    bool
    erase(uint64_t id)
    {
        auto it = pos_.find(id);
        if (it == pos_.end())
            return false;
        lru_.erase(it->second);
        pos_.erase(it);
        return true;
    }

  private:
    size_t capacity_;
    std::list<uint64_t> lru_;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> pos_;
};

/** One enrolled device's golden signature (encoded at rest). */
struct EnrollmentRecord
{
    uint64_t device_id = 0;
    uint64_t segment_id = 0;   //!< Golden challenge segment.
    uint32_t segment_bits = 0; //!< Golden challenge width.
    uint32_t cell_count = 0;   //!< Cells in the signature.
    std::vector<uint8_t> blob; //!< Varint delta-encoded positions.
};

/**
 * What AuthService needs from a golden-signature database. Two
 * implementations: the in-memory EnrollmentStore below, and the
 * mmap-backed MmapEnrollmentStore (store_mmap.h) that serves a
 * 10^7-device store file with flat per-request memory. Every method
 * is thread-safe and deterministic: outcomes depend only on store
 * content and call order per device, never on scheduling.
 */
class EnrollmentBackend
{
  public:
    virtual ~EnrollmentBackend() = default;

    /** Population the signatures were enrolled from. */
    virtual uint64_t populationSeed() const = 0;

    /** Enrolled devices. */
    virtual size_t size() const = 0;

    /** Insert or replace a device's golden signature. */
    virtual void put(uint64_t device_id, const Challenge &challenge,
                     const Response &signature) = 0;

    /** Is the device enrolled? */
    virtual bool contains(uint64_t device_id) const = 0;

    /**
     * Decoded golden signature through the LRU decode cache, or
     * nullptr when the device is unknown. The shared_ptr stays
     * valid after eviction.
     */
    virtual std::shared_ptr<const Response>
    lookup(uint64_t device_id) const = 0;

    /** Decode-cache capacity (what AuthService's LRU plan models). */
    virtual size_t cacheCapacity() const = 0;

    /** Decode-cache telemetry (scheduling-dependent; timings only). */
    virtual uint64_t cacheHits() const = 0;
    virtual uint64_t cacheMisses() const = 0;
};

/** Golden-signature database with an LRU decode cache. */
class EnrollmentStore : public EnrollmentBackend
{
  public:
    /**
     * Current on-disk format version (binary and JSON). v2 added
     * the sorted record index after the binary records; v1 files
     * (no index) still load.
     */
    static constexpr uint32_t kFormatVersion = 2;

    /** @param cache_capacity Decoded signatures kept hot (>= 1). */
    explicit EnrollmentStore(uint64_t population_seed = 0,
                             size_t cache_capacity = 4096);

    /**
     * Moves transfer the records and leave the decode cache cold
     * (the mutex is not movable). Never move a store that another
     * thread is using.
     */
    EnrollmentStore(EnrollmentStore &&other) noexcept;
    EnrollmentStore &operator=(EnrollmentStore &&other) noexcept;
    EnrollmentStore(const EnrollmentStore &) = delete;
    EnrollmentStore &operator=(const EnrollmentStore &) = delete;

    /** Population the signatures were enrolled from. */
    uint64_t populationSeed() const override
    {
        return population_seed_;
    }

    /** Enrolled devices. Thread-safe. */
    size_t size() const override;

    /**
     * Insert or replace a device's golden signature. Thread-safe;
     * the final store content depends only on the per-device last
     * write, never on cross-device interleaving.
     */
    void put(uint64_t device_id, const Challenge &challenge,
             const Response &signature) override;

    /** O(1): is the device enrolled? Thread-safe. */
    bool contains(uint64_t device_id) const override;

    /**
     * Encoded record, or nullptr when the device is unknown.
     * Records are never erased, so the pointer stays valid; do not
     * read it concurrently with a put() for the same device (the
     * record content is overwritten in place).
     */
    const EnrollmentRecord *record(uint64_t device_id) const;

    /**
     * Decoded golden signature through the LRU cache, or nullptr
     * when the device is unknown. Thread-safe; the shared_ptr stays
     * valid after eviction.
     */
    std::shared_ptr<const Response>
    lookup(uint64_t device_id) const override;

    /** Enrolled device ids, ascending (deterministic iteration). */
    std::vector<uint64_t> deviceIds() const;

    /** Decode-cache capacity (what AuthService's LRU plan models). */
    size_t cacheCapacity() const override { return cache_capacity_; }

    /** Decode-cache telemetry (scheduling-dependent; timings only). */
    uint64_t cacheHits() const override { return hits_; }
    uint64_t cacheMisses() const override { return misses_; }

    // --- Serialization ---

    /** Write the binary format (records sorted by device id). */
    void saveBinary(std::ostream &out) const;

    /** Write the JSON mirror (same order as saveBinary). */
    void saveJson(std::ostream &out) const;

    /** Binary size without writing (campaign reporting). */
    size_t binarySizeBytes() const;

    /**
     * Read either format back. The decode-cache capacity is a
     * runtime tuning knob, not part of the stored data - pass the
     * capacity the serving process wants (files carry records
     * only). @throws FatalError on a bad magic, a format-version
     * mismatch, or a truncated/corrupt stream.
     */
    static EnrollmentStore loadBinary(std::istream &in,
                                      size_t cache_capacity = 4096);
    static EnrollmentStore loadJson(std::istream &in,
                                    size_t cache_capacity = 4096);

    /**
     * Path helpers: a ".json" suffix selects the JSON format,
     * anything else the binary format. @throws FatalError when the
     * file cannot be opened or fails to parse.
     */
    void saveFile(const std::string &path) const;
    static EnrollmentStore loadFile(const std::string &path,
                                    size_t cache_capacity = 4096);

    /** Decode one record's blob into a Response (cache bypass). */
    static Response decode(const EnrollmentRecord &record);

    /** Encode one signature into a record (varint delta cells). */
    static EnrollmentRecord encode(uint64_t device_id,
                                   const Challenge &challenge,
                                   const Response &signature);

  private:
    uint64_t population_seed_;
    size_t cache_capacity_;
    std::unordered_map<uint64_t, EnrollmentRecord> records_;

    // LRU decode cache: recency/eviction via the shared LruIndex.
    mutable std::mutex mutex_;
    mutable LruIndex index_;
    mutable std::unordered_map<uint64_t,
                               std::shared_ptr<const Response>>
        cache_;
    mutable uint64_t hits_ = 0;
    mutable uint64_t misses_ = 0;
};

} // namespace codic

#endif // CODIC_FLEET_ENROLLMENT_STORE_H
