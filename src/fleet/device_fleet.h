/**
 * @file
 * Sharded simulated-device populations for fleet-scale serving
 * experiments (the ROADMAP's "multi-system fleets" item).
 *
 * A DeviceFleet models a population of enrolled DRAM devices - each
 * one a SimulatedChip whose process variation derives from
 * Rng::fork() of the population seed and the device id alone - split
 * into `shards` serving shards. Each shard owns the devices whose id
 * maps to it (`id % shards`) and, while a batch executes, one
 * DramSystem that replays the batch's DRAM command footprints for
 * timing/energy accounting.
 *
 * Determinism contract: every per-device property (chip variation,
 * golden challenge, TRNG source population) is a pure function of
 * (population_seed, device_id). Sharding and threading only choose
 * which worker materializes a device, never what it looks like, so a
 * fleet campaign is bit-identical at any shard or thread count.
 *
 * Devices are instantiated lazily on first touch: constructing a
 * fleet of 10^9 devices costs nothing until traffic reaches them.
 */

#ifndef CODIC_FLEET_DEVICE_FLEET_H
#define CODIC_FLEET_DEVICE_FLEET_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "dram/config.h"
#include "puf/chip_model.h"
#include "puf/sig_puf.h"
#include "trng/trng.h"

namespace codic {

class ShardSelector; // region.h

/** Fleet population parameters. */
struct FleetConfig
{
    /** Population identity; device i derives from (seed, i). */
    uint64_t population_seed = 2026;

    /** Number of devices in the population. */
    uint64_t devices = 10000;

    /**
     * Serving shards. Purely an execution parameter (like
     * RunOptions::threads): results are identical at any value.
     */
    int shards = 4;

    /**
     * Device -> shard placement policy (region.h). Null keeps the
     * historical modulo placement (id % shards) bit for bit;
     * ShardSelector::create("hash") spreads sequential id ranges,
     * and rebalancedSelector() packs a measured stream's hot
     * devices across shards. Placement changes which worker replays
     * a device - the structured report stays byte-identical; only
     * per-shard replay telemetry (shard_busy_ns, makespan)
     * legitimately moves.
     */
    std::shared_ptr<const ShardSelector> shard_selector;

    /**
     * DRAM module each shard's replay system simulates. The serving
     * stack defaults to the batched scheduler preset (the bare
     * DramConfig default stays eager so the paper campaigns keep
     * reproducing the published numbers).
     */
    DramConfig dram = [] {
        DramConfig d = DramConfig::ddr3_1600(1024, 1);
        d.scheduler = SchedulerPolicy::preset("batched");
        return d;
    }();

    /** PUF challenge segment size (paper: 8 KB = 65536 bits). */
    int segment_bits = 65536;

    /**
     * TRNG enrollment scan width per device (default: the paper's
     * full 8 KB segment; the ~8-sources-per-segment density means a
     * narrower scan would leave most devices without any metastable
     * source). Enrollment is lazy, so only devices that actually
     * receive TRNG traffic pay the scan.
     */
    int trng_segment_bits = 65536;

    /** TRNG harvest-command latency (sigsa-class command), ns. */
    double trng_harvest_latency_ns = 35.0;

    /** CODIC-sig PUF model parameters shared by the population. */
    SigPufParams sig_params = {};
};

/**
 * A sharded population of simulated devices.
 *
 * Thread-safety: concurrent access is safe as long as no two threads
 * touch devices of the same shard at the same time - the execution
 * model of AuthService, which runs one engine task per shard. All
 * accessors are deterministic in (population_seed, device_id).
 */
class DeviceFleet
{
  public:
    explicit DeviceFleet(const FleetConfig &config);

    const FleetConfig &config() const { return config_; }
    uint64_t devices() const { return config_.devices; }
    int shards() const { return config_.shards; }

    /**
     * Shard serving a device: the configured ShardSelector policy,
     * or the historical id % shards when none is set. Stable per
     * fleet (a pure function of the id and the config).
     */
    int shardOf(uint64_t device_id) const;

    /** Device-identity seed: pure function of (population, id). */
    uint64_t deviceSeed(uint64_t device_id) const;

    /** The device's chip, instantiated on first touch. */
    const SimulatedChip &device(uint64_t device_id);

    /**
     * The PUF challenge this device enrolls and authenticates
     * against (a device-specific segment of its chip).
     */
    Challenge goldenChallenge(uint64_t device_id);

    /** Population-shared CODIC-sig PUF. */
    const CodicSigPuf &puf() const { return puf_; }

    /**
     * Filtered golden-signature evaluation with the device's
     * enrollment nonce (what EnrollmentStore records). The second
     * form reuses an already-derived challenge (the O(devices)
     * enrollment path derives it once per device for both the
     * evaluation and the store record).
     */
    Response enrollSignature(uint64_t device_id);
    Response enrollSignature(uint64_t device_id,
                             const Challenge &challenge);

    /**
     * Filtered challenge response under a fresh per-request nonce
     * (what AuthService compares against the golden signature).
     */
    Response challengeResponse(uint64_t device_id, uint64_t nonce);

    /**
     * Same, against an already-derived challenge - the serving hot
     * path computes goldenChallenge() once per request and reuses
     * it for both the evaluation and the replay row address.
     */
    Response challengeResponse(uint64_t device_id,
                               const Challenge &challenge,
                               uint64_t nonce);

    /** The device's TRNG, lazily enrolled on first draw. */
    CodicTrng &trng(uint64_t device_id);

    /** Devices materialized so far (lazy-instantiation telemetry). */
    size_t instantiatedDevices() const;

    /** Device ids of one shard, ascending (enrollment order). */
    std::vector<uint64_t> shardDeviceIds(int shard) const;

  private:
    struct Shard
    {
        std::unordered_map<uint64_t, SimulatedChip> chips;
        std::unordered_map<uint64_t, std::unique_ptr<CodicTrng>> trngs;
    };

    FleetConfig config_;
    CodicSigPuf puf_;
    std::vector<Shard> shards_;
};

} // namespace codic

#endif // CODIC_FLEET_DEVICE_FLEET_H
