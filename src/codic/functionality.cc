#include "codic/functionality.h"

#include "common/logging.h"

namespace codic {

const char *
rowDataStateName(RowDataState s)
{
    switch (s) {
      case RowDataState::Unwritten: return "unwritten";
      case RowDataState::Data: return "data";
      case RowDataState::Zeroes: return "zeroes";
      case RowDataState::Ones: return "ones";
      case RowDataState::HalfVdd: return "half-vdd";
      case RowDataState::SaSignature: return "sa-signature";
      case RowDataState::Undefined: return "undefined";
    }
    panic("unknown row data state");
}

RowDataState
afterVariant(VariantClass c, RowDataState before)
{
    switch (c) {
      case VariantClass::Noop:
      case VariantClass::Precharge:
      case VariantClass::SigsaNoWrite:
        // Bitline-only operations never disturb cell contents.
        return before;
      case VariantClass::Activate:
        // Activation restores data; a HalfVdd row amplifies to
        // process-variation signatures instead.
        return before == RowDataState::HalfVdd ? RowDataState::SaSignature
                                               : before;
      case VariantClass::Sig:
        return RowDataState::HalfVdd;
      case VariantClass::DetZero:
        return RowDataState::Zeroes;
      case VariantClass::DetOne:
        return RowDataState::Ones;
      case VariantClass::Sigsa:
        return RowDataState::SaSignature;
      case VariantClass::Custom:
        return RowDataState::Undefined;
    }
    panic("unknown variant class");
}

bool
destroysRowData(VariantClass c)
{
    switch (c) {
      case VariantClass::Sig:
      case VariantClass::DetZero:
      case VariantClass::DetOne:
      case VariantClass::Sigsa:
      case VariantClass::Custom:
        return true;
      case VariantClass::Noop:
      case VariantClass::Precharge:
      case VariantClass::Activate:
      case VariantClass::SigsaNoWrite:
        return false;
    }
    panic("unknown variant class");
}

bool
yieldsSignature(VariantClass c)
{
    return c == VariantClass::Sig || c == VariantClass::Sigsa ||
           c == VariantClass::SigsaNoWrite;
}

} // namespace codic
