#include "codic/variant.h"

#include <algorithm>

#include "common/logging.h"

namespace codic {

const char *
variantClassName(VariantClass c)
{
    switch (c) {
      case VariantClass::Noop: return "noop";
      case VariantClass::Precharge: return "precharge";
      case VariantClass::Activate: return "activate";
      case VariantClass::Sig: return "sig";
      case VariantClass::DetZero: return "det-zero";
      case VariantClass::DetOne: return "det-one";
      case VariantClass::Sigsa: return "sigsa";
      case VariantClass::SigsaNoWrite: return "sigsa-nowrite";
      case VariantClass::Custom: return "custom";
    }
    panic("unknown variant class");
}

VariantClass
CodicVariant::classify() const
{
    return classifySchedule(schedule);
}

VariantClass
classifySchedule(const SignalSchedule &sched)
{
    const auto wl = sched.pulse(Signal::Wl);
    const auto eq = sched.pulse(Signal::Eq);
    const auto sp = sched.pulse(Signal::SenseP);
    const auto sn = sched.pulse(Signal::SenseN);

    if (!wl && !eq && !sp && !sn)
        return VariantClass::Noop;

    // EQ-only: a precharge.
    if (eq && !wl && !sp && !sn)
        return VariantClass::Precharge;

    // wl + EQ, no sensing, EQ strictly after the wordline opens:
    // charge sharing followed by equalization drives the cell to
    // Vdd/2 (CODIC-sig; the pulse lengths distinguish sig from
    // sig-opt but not the functionality).
    if (wl && eq && !sp && !sn && eq->start_ns > wl->start_ns)
        return VariantClass::Sig;

    // Both SA legs present: activation, det, or sigsa families.
    if (sp && sn) {
        const bool simultaneous = sp->start_ns == sn->start_ns;
        if (!wl) {
            // Sensing a floating precharged bitline without charge
            // sharing: signature that does not destroy cell contents.
            if (simultaneous && !eq)
                return VariantClass::SigsaNoWrite;
            return VariantClass::Custom;
        }
        if (eq)
            return VariantClass::Custom;
        if (simultaneous) {
            // SA before the wordline: pure SA-mismatch signature
            // written back through the late wordline (CODIC-sigsa).
            // SA after the wordline: regular activation.
            if (sp->start_ns < wl->start_ns)
                return VariantClass::Sigsa;
            if (sp->start_ns > wl->start_ns)
                return VariantClass::Activate;
            return VariantClass::Custom;
        }
        // Staggered SA legs with the wordline open: deterministic
        // value generation; the first leg decides the direction.
        if (sn->start_ns < sp->start_ns)
            return VariantClass::DetZero;
        return VariantClass::DetOne;
    }

    return VariantClass::Custom;
}

double
variantLatencyNs(const SignalSchedule &sched, const LatencyModel &model)
{
    if (sched.empty())
        return 0.0;
    const double busy = static_cast<double>(sched.lastEdgeNs()) +
                        model.settle_ns;
    if (busy <= model.trp_ns)
        return model.trp_ns;
    return std::max(busy, model.tras_ns);
}

namespace variants {

CodicVariant
activate()
{
    CodicVariant v{"CODIC-activate", {}};
    v.schedule.set(Signal::Wl, 5, 22);
    v.schedule.set(Signal::SenseP, 7, 22);
    v.schedule.set(Signal::SenseN, 7, 22);
    return v;
}

CodicVariant
precharge()
{
    CodicVariant v{"CODIC-precharge", {}};
    v.schedule.set(Signal::Eq, 5, 11);
    return v;
}

CodicVariant
sig()
{
    CodicVariant v{"CODIC-sig", {}};
    v.schedule.set(Signal::Wl, 5, 22);
    v.schedule.set(Signal::Eq, 7, 22);
    return v;
}

CodicVariant
sigOpt()
{
    // Early termination exploits the observation that the capacitor
    // reaches Vdd/2 almost immediately after EQ asserts (Fig. 3a).
    CodicVariant v{"CODIC-sig-opt", {}};
    v.schedule.set(Signal::Wl, 5, 11);
    v.schedule.set(Signal::Eq, 7, 11);
    return v;
}

CodicVariant
detZero()
{
    CodicVariant v{"CODIC-det (0)", {}};
    v.schedule.set(Signal::Wl, 5, 22);
    v.schedule.set(Signal::SenseN, 7, 22);
    v.schedule.set(Signal::SenseP, 14, 22);
    return v;
}

CodicVariant
detOne()
{
    CodicVariant v{"CODIC-det (1)", {}};
    v.schedule.set(Signal::Wl, 5, 22);
    v.schedule.set(Signal::SenseP, 7, 22);
    v.schedule.set(Signal::SenseN, 14, 22);
    return v;
}

CodicVariant
sigsa()
{
    CodicVariant v{"CODIC-sigsa", {}};
    v.schedule.set(Signal::SenseP, 3, 22);
    v.schedule.set(Signal::SenseN, 3, 22);
    v.schedule.set(Signal::Wl, 5, 22);
    return v;
}

std::vector<CodicVariant>
all()
{
    return {activate(), precharge(), sig(), sigOpt(),
            detZero(),  detOne(),    sigsa()};
}

} // namespace variants

} // namespace codic
