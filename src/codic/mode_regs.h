/**
 * @file
 * The CODIC mode-register interface (paper Section 4.2.2).
 *
 * CODIC adds four dedicated 10-bit mode registers to the DRAM, one per
 * internal signal; each register packs the signal's assert time (low 5
 * bits) and deassert time (high 5 bits) in nanoseconds within the
 * CODIC window. The memory controller programs them with the standard
 * MRS command, then a single CODIC command executes whatever schedule
 * the registers currently encode.
 */

#ifndef CODIC_CODIC_MODE_REGS_H
#define CODIC_CODIC_MODE_REGS_H

#include <array>
#include <cstdint>

#include "circuit/signals.h"

namespace codic {

/**
 * The four CODIC mode registers and the MRS programming interface.
 *
 * Encoding per register (10 bits):
 *   bits [4:0]  assert time in ns (0..24)
 *   bits [9:5]  deassert time in ns (0..24)
 * A register with deassert <= assert encodes "signal never asserted",
 * which is also the power-on reset state (all zeros).
 */
class ModeRegisterFile
{
  public:
    /** Width of each CODIC mode register in bits. */
    static constexpr int kRegisterBits = 10;

    /** Power-on state: all registers zero (no signal asserted). */
    ModeRegisterFile() = default;

    /**
     * MRS write to one CODIC mode register.
     * @param s Signal whose register is addressed.
     * @param value 10-bit raw value.
     * @throws FatalError if the value does not fit in 10 bits or
     *         encodes a time outside the CODIC window.
     */
    void writeRegister(Signal s, uint16_t value);

    /** Raw 10-bit contents of one register. */
    uint16_t readRegister(Signal s) const;

    /** Program all four registers from a schedule. */
    void program(const SignalSchedule &sched);

    /** Decode the registers into the schedule they encode. */
    SignalSchedule decode() const;

    /** Pack (start, end) into the 10-bit register format. */
    static uint16_t encodePulse(int start_ns, int end_ns);

    /** Number of MRS commands needed to program a full schedule. */
    static constexpr int kMrsCommandsPerSchedule =
        static_cast<int>(kNumSignals);

  private:
    std::array<uint16_t, kNumSignals> regs_ = {};
};

} // namespace codic

#endif // CODIC_CODIC_MODE_REGS_H
