/**
 * @file
 * CODIC variant definitions: named signal schedules (paper Table 1),
 * functional classification of arbitrary schedules by relative signal
 * ordering (paper Section 4.1.3), and the bank-occupancy latency model
 * used by Table 2.
 */

#ifndef CODIC_CODIC_VARIANT_H
#define CODIC_CODIC_VARIANT_H

#include <string>
#include <vector>

#include "circuit/signals.h"

namespace codic {

/**
 * Functional class of a CODIC schedule, determined by the relative
 * order in which the four internal signals assert (paper Section
 * 4.1.3: "the functionality of a particular CODIC command is
 * determined by the relative order in which the internal circuits are
 * triggered and deactivated").
 */
enum class VariantClass
{
    Noop,        //!< No signal asserted; DRAM state untouched.
    Precharge,   //!< EQ only: bitline to Vdd/2, cells untouched.
    Activate,    //!< wl, then both SA legs together: normal activation.
    Sig,         //!< wl then EQ: drives cells to Vdd/2 (signature prep).
    DetZero,     //!< sense_n before sense_p with wl: writes zeros.
    DetOne,      //!< sense_p before sense_n with wl: writes ones.
    Sigsa,       //!< Both SA legs before/without charge sharing, wl
                 //!< raised afterwards: writes SA-mismatch signatures.
    SigsaNoWrite,//!< SA legs only, no wl: signature on the bitline
                 //!< without destroying cell contents (§4.1.3).
    Custom,      //!< Any other combination; effect on cells undefined
                 //!< (treated as destructive by safety analyses).
};

/** Human-readable class name. */
const char *variantClassName(VariantClass c);

/** A named CODIC variant: a schedule plus identification. */
struct CodicVariant
{
    std::string name;        //!< e.g. "CODIC-sig".
    SignalSchedule schedule; //!< The four-signal timing assignment.

    /** Classify this variant's schedule. */
    VariantClass classify() const;
};

/**
 * Classify an arbitrary signal schedule by relative signal order.
 * Total function: every schedule maps to exactly one class.
 */
VariantClass classifySchedule(const SignalSchedule &sched);

/** Timing constants used by the bank-occupancy latency model (ns). */
struct LatencyModel
{
    double trp_ns = 13.0;    //!< Precharge-class bank occupancy.
    double tras_ns = 35.0;   //!< Activation-class bank occupancy.
    double settle_ns = 2.0;  //!< Signal settle margin after last edge.
};

/**
 * Bank-occupancy latency of a CODIC schedule (paper Table 2).
 *
 * A bank operation is either precharge-class (fits within tRP) or
 * activation-class (bounded below by tRAS): a schedule whose last
 * signal edge plus settle margin fits inside tRP occupies the bank
 * for tRP (13 ns: CODIC-precharge, CODIC-sig-opt); anything longer is
 * activation-class and occupies max(last edge + settle, tRAS)
 * (35 ns: CODIC-activate, CODIC-sig, CODIC-det).
 */
double variantLatencyNs(const SignalSchedule &sched,
                        const LatencyModel &model = {});

/** Builders for the paper's named variants (Tables 1-2, App. C). */
namespace variants {

/** Regular activation re-expressed as a CODIC schedule (Table 1). */
CodicVariant activate();

/** Regular precharge re-expressed as a CODIC schedule (Table 1). */
CodicVariant precharge();

/** CODIC-sig: process-variation signature preparation (Table 1). */
CodicVariant sig();

/** CODIC-sig-opt: early-terminated CODIC-sig (Section 4.1.1). */
CodicVariant sigOpt();

/** CODIC-det writing zeros (Table 1 / Fig. 3b). */
CodicVariant detZero();

/** CODIC-det writing ones (Section 4.1.2). */
CodicVariant detOne();

/** CODIC-sigsa: SA-mismatch signatures (Appendix C / Fig. 10). */
CodicVariant sigsa();

/** All named variants, for sweep-style tests and benches. */
std::vector<CodicVariant> all();

} // namespace variants

} // namespace codic

#endif // CODIC_CODIC_VARIANT_H
