#include "codic/mode_regs.h"

#include "common/logging.h"

namespace codic {

void
ModeRegisterFile::writeRegister(Signal s, uint16_t value)
{
    if (value >= (1u << kRegisterBits))
        fatal("MRS value ", value, " exceeds ", kRegisterBits, " bits");
    const int start = value & 0x1f;
    const int end = (value >> 5) & 0x1f;
    if (start >= SignalSchedule::kWindowNs ||
        end >= SignalSchedule::kWindowNs) {
        fatal("MRS value encodes time outside the CODIC window: start=",
              start, " end=", end);
    }
    regs_[static_cast<size_t>(s)] = value;
}

uint16_t
ModeRegisterFile::readRegister(Signal s) const
{
    return regs_[static_cast<size_t>(s)];
}

uint16_t
ModeRegisterFile::encodePulse(int start_ns, int end_ns)
{
    CODIC_ASSERT(start_ns >= 0 && start_ns < SignalSchedule::kWindowNs);
    CODIC_ASSERT(end_ns >= 0 && end_ns < SignalSchedule::kWindowNs);
    return static_cast<uint16_t>((end_ns << 5) | start_ns);
}

void
ModeRegisterFile::program(const SignalSchedule &sched)
{
    for (size_t i = 0; i < kNumSignals; ++i) {
        const auto sig = static_cast<Signal>(i);
        const auto pulse = sched.pulse(sig);
        if (pulse)
            writeRegister(sig, encodePulse(pulse->start_ns, pulse->end_ns));
        else
            writeRegister(sig, 0);
    }
}

SignalSchedule
ModeRegisterFile::decode() const
{
    SignalSchedule sched;
    for (size_t i = 0; i < kNumSignals; ++i) {
        const uint16_t value = regs_[i];
        const int start = value & 0x1f;
        const int end = (value >> 5) & 0x1f;
        if (end > start)
            sched.set(static_cast<Signal>(i), start, end);
    }
    return sched;
}

} // namespace codic
