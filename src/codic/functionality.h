/**
 * @file
 * Architectural (data-level) semantics of CODIC variants: how issuing
 * a variant against a DRAM row transforms the row's contents. This is
 * the abstraction the cold-boot self-destruction engine and the PUF
 * response path operate on; the underlying analog behaviour is
 * validated separately by the circuit model.
 */

#ifndef CODIC_CODIC_FUNCTIONALITY_H
#define CODIC_CODIC_FUNCTIONALITY_H

#include "codic/variant.h"

namespace codic {

/** Row-granularity summary of what a DRAM row currently stores. */
enum class RowDataState
{
    Unwritten,   //!< Never written since power-on (residual charge).
    Data,        //!< Holds program data.
    Zeroes,      //!< All cells driven to 0 (CODIC-det zero).
    Ones,        //!< All cells driven to 1 (CODIC-det one).
    HalfVdd,     //!< Cells at the precharge voltage (after CODIC-sig);
                 //!< the next activation resolves them to signatures.
    SaSignature, //!< Cells hold process-variation signatures.
    Undefined,   //!< A custom variant with unspecified data effect ran.
};

/** Human-readable state name. */
const char *rowDataStateName(RowDataState s);

/**
 * Data-state transition when a variant of class `c` executes against
 * a row currently in state `before`.
 *
 * Notes:
 *  - Activate on a HalfVdd row resolves the cells to signatures (this
 *    is exactly how the CODIC-sig PUF produces its response, paper
 *    Section 4.1.1: "Only after the next activation command the DRAM
 *    cell will be amplified to zero or one depending on process
 *    variation").
 *  - Precharge and plain activate leave data intact.
 */
RowDataState afterVariant(VariantClass c, RowDataState before);

/**
 * True if executing this class destroys whatever data the row held
 * (the property the self-destruction mechanism needs; conservative:
 * Custom counts as destructive because its effect is undefined).
 */
bool destroysRowData(VariantClass c);

/**
 * True if the class leaves the row holding (or prepared to hold)
 * process-variation-dependent signature values.
 */
bool yieldsSignature(VariantClass c);

} // namespace codic

#endif // CODIC_CODIC_FUNCTIONALITY_H
