#include "coldboot/overhead_model.h"

#include "circuit/delay_element.h"
#include "common/logging.h"

namespace codic {

const char *
coldBootDefenseName(ColdBootDefense d)
{
    switch (d) {
      case ColdBootDefense::CodicSelfDestruct:
        return "CODIC Self-Destruction";
      case ColdBootDefense::ChaCha8: return "ChaCha-8";
      case ColdBootDefense::Aes128: return "AES-128";
    }
    panic("unknown cold boot defense");
}

OverheadRow
computeOverhead(ColdBootDefense defense, const PlatformParams &platform)
{
    OverheadRow row{0.0, 0.0, 0.0, 0.0};
    switch (defense) {
      case ColdBootDefense::CodicSelfDestruct: {
        // Destruction runs once at power-on: zero runtime cost. DRAM
        // area is the four configurable delay elements per mat.
        DelayElement element;
        row.dram_area_pct =
            element.fullCodicAreaOverheadPerMat() * 100.0;
        return row;
      }
      case ColdBootDefense::ChaCha8: {
        const double power_w = platform.chacha8_pj_per_byte * 1e-12 *
                               platform.peak_mem_bw_gbs * 1e9;
        row.runtime_power_pct = power_w / platform.cpu_power_w * 100.0;
        row.cpu_area_pct =
            platform.chacha8_area_mm2 / platform.cpu_area_mm2 * 100.0;
        return row;
      }
      case ColdBootDefense::Aes128: {
        const double power_w = platform.aes128_pj_per_byte * 1e-12 *
                               platform.peak_mem_bw_gbs * 1e9;
        row.runtime_power_pct = power_w / platform.cpu_power_w * 100.0;
        row.cpu_area_pct =
            platform.aes128_area_mm2 / platform.cpu_area_mm2 * 100.0;
        // Perf overhead stays ~0 only while <= aes_row_hit_window
        // back-to-back row hits keep the pipeline ahead of the
        // decryptor (paper footnote 1 of Table 6).
        CODIC_ASSERT(platform.aes_row_hit_window >= 1);
        return row;
      }
    }
    panic("unknown cold boot defense");
}

} // namespace codic
