/**
 * @file
 * Cold-boot-attack prevention mechanisms (paper Section 5.2 / 6.2):
 * full-memory data destruction engines compared in Figure 7.
 *
 *  - TCG: the firmware baseline of the TCG Platform Reset Attack
 *    Mitigation spec [157]: the CPU overwrites every cache line with
 *    zeros and flushes it (CLFLUSH), serializing on each line's
 *    writeback. Runs with refresh enabled (the system is live).
 *  - RowClone: a reserved all-zeros row per bank is copied over every
 *    other row with back-to-back activation (FPM copy) [133].
 *  - LISA-clone: RowClone plus a row-buffer-movement hop per copy,
 *    modeling the inter-subarray transport of LISA [27].
 *  - CODIC: one CODIC-det command per row; no source row needed.
 *
 * All engines issue real command streams through the JEDEC-checked
 * channel, parallelized across banks and constrained by tRRD/tFAW.
 * Self-destruction variants run at power-on before refresh is
 * required (JEDEC mandates refresh only after initialization), which
 * is why they are legally refresh-free.
 */

#ifndef CODIC_COLDBOOT_DESTRUCTION_H
#define CODIC_COLDBOOT_DESTRUCTION_H

#include <cstdint>
#include <string>

#include "dram/channel.h"
#include "power/energy_model.h"

namespace codic {

/** Which destruction mechanism to run. */
enum class DestructionMechanism { Tcg, LisaClone, RowClone, Codic };

/** Display name. */
const char *destructionMechanismName(DestructionMechanism m);

/** Outcome of a destruction campaign. */
struct DestructionResult
{
    double time_ns = 0.0;     //!< Wall time to destroy the module.
    double energy_nj = 0.0;   //!< Total energy (commands+background).
    CommandCounts counts;     //!< Commands issued (scaled if sampled).
    int64_t rows_destroyed = 0;
    bool extrapolated = false;//!< Large module simulated by sampling.
};

/** Campaign configuration. */
struct DestructionConfig
{
    /**
     * Rows to simulate explicitly before extrapolating linearly.
     * Destruction traffic is perfectly homogeneous, so per-row cost
     * converges after a few tFAW windows; 64 Ki rows is ample. Set to
     * 0 to force full simulation regardless of module size.
     */
    int64_t max_simulated_rows = 65536;

    EnergyParams energy;
};

/**
 * Destroy the full contents of a module with the given mechanism and
 * verify (for non-extrapolated runs) that no row still holds data.
 */
DestructionResult runDestruction(const DramConfig &dram,
                                 DestructionMechanism mechanism,
                                 const DestructionConfig &config = {});

/**
 * Timing of the cost-optimized self-destruction implementation that
 * reuses the self-refresh circuitry (paper Section 5.2.2, second
 * implementation): "the destruction time is the same as the time
 * that the self-refresh mechanism takes to refresh the entire
 * memory".
 */
struct SelfRefreshReuseTiming
{
    /**
     * Distributed mode: one full refresh window (tREFW, 64 ms) - the
     * unmodified self-refresh cadence.
     */
    double distributed_ns;

    /**
     * Burst mode: 8192 back-to-back REF-equivalent operations of
     * tRFC each - the fastest the shared internal refresh FSM could
     * legally step through the array.
     */
    double burst_ns;
};

/** Compute both bounds for a module. */
SelfRefreshReuseTiming selfRefreshReuseTiming(const DramConfig &dram);

} // namespace codic

#endif // CODIC_COLDBOOT_DESTRUCTION_H
