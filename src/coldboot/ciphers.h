/**
 * @file
 * Reference implementations of the two ciphers the paper compares its
 * self-destruction mechanism against (Table 6): ChaCha (Bernstein
 * [18]; the paper uses the 8-round variant) and AES-128 [38].
 *
 * These are functional reference ciphers - validated against the
 * RFC 7539 and FIPS-197 test vectors by the test suite - used to
 * ground the Table 6 overhead model in real per-byte work, not
 * production crypto (no constant-time hardening).
 */

#ifndef CODIC_COLDBOOT_CIPHERS_H
#define CODIC_COLDBOOT_CIPHERS_H

#include <array>
#include <cstdint>
#include <vector>

namespace codic {

/** ChaCha stream cipher with a configurable round count. */
class ChaCha
{
  public:
    /**
     * @param key 32-byte key.
     * @param nonce 12-byte nonce (RFC 7539 layout).
     * @param rounds Total rounds (20 for ChaCha20, 8 for ChaCha8).
     */
    ChaCha(const std::array<uint8_t, 32> &key,
           const std::array<uint8_t, 12> &nonce, int rounds = 8);

    /** Generate the 64-byte keystream block for a block counter. */
    std::array<uint8_t, 64> block(uint32_t counter) const;

    /** XOR-encrypt/decrypt a buffer starting at block counter 1. */
    std::vector<uint8_t> crypt(const std::vector<uint8_t> &data) const;

  private:
    std::array<uint32_t, 16> state_;
    int rounds_;
};

/** AES-128 block cipher (encryption direction). */
class Aes128
{
  public:
    explicit Aes128(const std::array<uint8_t, 16> &key);

    /** Encrypt one 16-byte block. */
    std::array<uint8_t, 16>
    encryptBlock(const std::array<uint8_t, 16> &plain) const;

    /** Encrypt a buffer in CTR mode (nonce || counter in the IV). */
    std::vector<uint8_t> ctrCrypt(const std::array<uint8_t, 16> &iv,
                                  const std::vector<uint8_t> &data) const;

  private:
    std::array<std::array<uint8_t, 16>, 11> round_keys_;
};

} // namespace codic

#endif // CODIC_COLDBOOT_CIPHERS_H
