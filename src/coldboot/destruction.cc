#include "coldboot/destruction.h"

#include <algorithm>
#include <cmath>

#include "codic/variant.h"
#include "common/logging.h"
#include "dram/refresh.h"

namespace codic {

const char *
destructionMechanismName(DestructionMechanism m)
{
    switch (m) {
      case DestructionMechanism::Tcg: return "TCG";
      case DestructionMechanism::LisaClone: return "LISA-clone";
      case DestructionMechanism::RowClone: return "RowClone";
      case DestructionMechanism::Codic: return "CODIC";
    }
    panic("unknown destruction mechanism");
}

namespace {

/** Scale command counts by an extrapolation factor. */
CommandCounts
scaleCounts(const CommandCounts &c, double f)
{
    auto s = [f](uint64_t v) {
        return static_cast<uint64_t>(
            std::llround(static_cast<double>(v) * f));
    };
    CommandCounts out;
    out.act = s(c.act);
    out.pre = s(c.pre);
    out.rd = s(c.rd);
    out.wr = s(c.wr);
    out.ref = s(c.ref);
    out.mrs = s(c.mrs);
    out.codic = s(c.codic);
    out.rowclone = s(c.rowclone);
    out.lisa_rbm = s(c.lisa_rbm);
    return out;
}

/**
 * Self-destruction engine: per-row in-DRAM commands, round-robin
 * across all (rank, bank) pairs so tRRD/tFAW bank-level parallelism
 * is fully exploited (paper Section 5.2.2: "parallelizes commands
 * across banks ... while meeting the JEDEC timing specifications").
 */
Cycle
runSelfDestruct(DramChannel &channel, DestructionMechanism mech,
                int64_t rows_per_bank)
{
    const DramConfig &cfg = channel.config();
    int variant = -1;
    if (mech == DestructionMechanism::Codic) {
        variant = channel.registerVariant(variants::detZero().schedule);
        // Program the four CODIC mode registers via MRS.
        for (int i = 0; i < ModeRegisterFile::kMrsCommandsPerSchedule;
             ++i) {
            Command mrs;
            mrs.type = CommandType::Mrs;
            channel.issueAtEarliest(mrs, 0);
        }
    }

    Cycle done = 0;

    // Clone mechanisms need an all-zeros source row per bank; write
    // it through the interface once (row 0 of every bank).
    if (mech != DestructionMechanism::Codic) {
        for (int rank = 0; rank < cfg.ranks; ++rank) {
            for (int bank = 0; bank < cfg.banks; ++bank) {
                Address a{0, rank, bank, 0, 0};
                Command act{CommandType::Act, a, 0};
                const Cycle t = channel.issueAtEarliest(act, 0);
                Cycle last = t;
                for (int c = 0;
                     c < static_cast<int>(cfg.row_bytes /
                                          cfg.burst_bytes) &&
                     c < cfg.columns;
                     ++c) {
                    Command wr{CommandType::Wr, a, 0};
                    wr.addr.column = c;
                    wr.zero_fill = true;
                    last = channel.issueAtEarliest(wr, t);
                }
                Command pre{CommandType::Pre, a, 0};
                done = std::max(done, channel.issueAtEarliest(pre, last));
            }
        }
    }

    const int64_t first_row =
        mech == DestructionMechanism::Codic ? 0 : 1;
    const int pairs = cfg.ranks * cfg.banks;
    for (int64_t row = first_row; row < rows_per_bank; ++row) {
        if (mech == DestructionMechanism::Codic) {
            for (int p = 0; p < pairs; ++p) {
                Address a{0, p / cfg.banks, p % cfg.banks, row, 0};
                Command codic{CommandType::Codic, a, variant};
                done = std::max(done, channel.issueAtEarliest(codic, 0));
            }
            continue;
        }
        // Clone mechanisms: phase-ordered issue so the per-bank
        // ACT -> (hop) -> clone -> PRE dependency chains overlap
        // across banks instead of serializing on the command bus
        // (the clone of bank 0 must not delay the ACT of bank 1).
        for (int p = 0; p < pairs; ++p) {
            Address src{0, p / cfg.banks, p % cfg.banks, 0, 0};
            Command act{CommandType::Act, src, 0};
            channel.issueAtEarliest(act, 0);
        }
        std::vector<Cycle> ready(static_cast<size_t>(pairs), 0);
        if (mech == DestructionMechanism::LisaClone) {
            for (int p = 0; p < pairs; ++p) {
                Address src{0, p / cfg.banks, p % cfg.banks, 0, 0};
                Command rbm{CommandType::LisaRbm, src, 0};
                ready[static_cast<size_t>(p)] =
                    channel.issueAtEarliest(rbm, 0);
            }
        }
        for (int p = 0; p < pairs; ++p) {
            Address a{0, p / cfg.banks, p % cfg.banks, row, 0};
            Command clone{CommandType::RowClone, a, 0};
            channel.issueAtEarliest(clone,
                                    ready[static_cast<size_t>(p)]);
        }
        for (int p = 0; p < pairs; ++p) {
            Address a{0, p / cfg.banks, p % cfg.banks, row, 0};
            Command pre{CommandType::Pre, a, 0};
            done = std::max(done, channel.issueAtEarliest(pre, 0));
        }
    }
    return done;
}

/**
 * TCG firmware overwrite: the CPU writes each 64 B line and flushes
 * it, serializing on the line's DRAM writeback (CLFLUSH ordering).
 * Refresh stays enabled: the machine is operating normally.
 */
Cycle
runTcg(DramChannel &channel, int64_t rows_per_bank)
{
    const DramConfig &cfg = channel.config();
    const int lines_per_row =
        static_cast<int>(cfg.row_bytes / cfg.burst_bytes);
    std::vector<RefreshEngine> refresh;
    refresh.reserve(static_cast<size_t>(cfg.ranks));
    for (int rank = 0; rank < cfg.ranks; ++rank)
        refresh.emplace_back(channel, rank);

    Cycle now = 0;
    for (int64_t row = 0; row < rows_per_bank; ++row) {
        for (int rank = 0; rank < cfg.ranks; ++rank) {
            for (int bank = 0; bank < cfg.banks; ++bank) {
                Address a{0, rank, bank, row, 0};
                Command act{CommandType::Act, a, 0};
                Cycle t = channel.issueAtEarliest(act, now);
                for (int c = 0; c < lines_per_row && c < cfg.columns;
                     ++c) {
                    Command wr{CommandType::Wr, a, 0};
                    wr.addr.column = c;
                    wr.zero_fill = true;
                    // CLFLUSH semantics: the next line's store waits
                    // for this line's writeback to complete.
                    t = channel.issueAtEarliest(wr, t);
                }
                Command pre{CommandType::Pre, a, 0};
                now = channel.issueAtEarliest(pre, t);
                // Refresh interleaves with the overwrite loop.
                refresh[static_cast<size_t>(rank)].catchUp(now);
            }
        }
    }
    return now;
}

} // namespace

SelfRefreshReuseTiming
selfRefreshReuseTiming(const DramConfig &dram)
{
    SelfRefreshReuseTiming t;
    // JEDEC: 8192 REF commands cover the array once per 64 ms window.
    t.distributed_ns = 64e6;
    t.burst_ns = 8192.0 * dram.cyclesToNs(dram.timing.trfc);
    return t;
}

DestructionResult
runDestruction(const DramConfig &dram, DestructionMechanism mechanism,
               const DestructionConfig &config)
{
    // Channels are fully independent and destruction traffic is
    // identical on each, so one channel is simulated explicitly and
    // the command/energy totals scale by the channel count while the
    // wall time does not (channels destroy concurrently).
    DramChannel channel(dram);
    channel.fillAllRows(RowDataState::Data);

    const int64_t total_rows = dram.totalRows();
    const int64_t rows_per_bank = dram.rows;
    int64_t sim_rows_per_bank = rows_per_bank;
    if (config.max_simulated_rows > 0) {
        const int64_t cap = std::max<int64_t>(
            1, config.max_simulated_rows / (dram.ranks * dram.banks));
        sim_rows_per_bank = std::min(rows_per_bank, cap);
    }
    const double factor = static_cast<double>(rows_per_bank) /
                          static_cast<double>(sim_rows_per_bank);

    Cycle end;
    if (mechanism == DestructionMechanism::Tcg)
        end = runTcg(channel, sim_rows_per_bank);
    else
        end = runSelfDestruct(channel, mechanism, sim_rows_per_bank);

    // Verify the simulated prefix actually lost its data.
    for (int rank = 0; rank < dram.ranks; ++rank) {
        for (int bank = 0; bank < dram.banks; ++bank) {
            for (int64_t row = 0; row < sim_rows_per_bank;
                 row += std::max<int64_t>(1, sim_rows_per_bank / 64)) {
                const RowDataState s = channel.rowState(rank, bank, row);
                if (s == RowDataState::Data) {
                    panic("destruction left data in rank ", rank,
                          " bank ", bank, " row ", row);
                }
            }
        }
    }

    DestructionResult result;
    result.extrapolated = factor > 1.0 || dram.channels > 1;
    result.rows_destroyed = total_rows;
    const double sim_ns = dram.cyclesToNs(end);
    result.time_ns = sim_ns * factor;
    result.counts =
        scaleCounts(channel.counts(), factor * dram.channels);
    // Commands were already scaled across channels; the background
    // term accrues once per channel on top.
    result.energy_nj =
        campaignEnergyNj(result.counts, result.time_ns, config.energy) +
        (dram.channels - 1) * config.energy.background_mw * 1e-3 *
            result.time_ns;
    return result;
}

} // namespace codic
