/**
 * @file
 * Power-on detection and self-destruction sequencing FSM (paper
 * Section 5.2.2, "Security Analysis").
 *
 * The FSM is part of the DRAM chip's internal controller. It arms
 * when supply voltage is at 0 V, triggers on any upward ramp from
 * 0 V (it does NOT wait for Vdd - operating the chip at a reduced
 * voltage does not evade it), refuses all external commands while
 * destruction is in progress (atomicity), and only then opens the
 * chip for normal operation. Overheating the FSM is modeled as
 * disabling the whole internal controller, which leaves the chip
 * unusable rather than unprotected.
 */

#ifndef CODIC_COLDBOOT_POWER_ON_H
#define CODIC_COLDBOOT_POWER_ON_H

#include <cstdint>

namespace codic {

/** States of the power-on / self-destruct FSM. */
enum class PowerOnState
{
    Off,         //!< No supply voltage; armed for ramp detection.
    Destructing, //!< Ramp detected; CODIC destruction in progress.
    Ready,       //!< Destruction complete; chip accepts commands.
    Dead,        //!< Internal controller disabled (e.g. overheated).
};

/** The power-on detection + self-destruction controller. */
class PowerOnFsm
{
  public:
    /**
     * @param destruct_rows Number of rows the destruction sequence
     *        must complete before the chip opens up.
     */
    explicit PowerOnFsm(int64_t destruct_rows);

    /** Current state. */
    PowerOnState state() const { return state_; }

    /**
     * Feed one supply-voltage sample (volts). Any ramp up from 0 V
     * triggers destruction, regardless of the level reached.
     */
    void observeVoltage(double volts);

    /**
     * Feed one die-temperature sample. Beyond the survival limit the
     * internal controller (and with it the whole chip) dies.
     */
    void observeTemperature(double celsius);

    /**
     * Progress the destruction sequence by `rows` destroyed rows.
     * Transitions to Ready when all rows are done.
     */
    void destructionProgress(int64_t rows);

    /**
     * Would the chip accept an external DRAM command right now?
     * False during destruction (atomicity) and when Off/Dead.
     */
    bool acceptsCommands() const { return state_ == PowerOnState::Ready; }

    /** Rows still to destroy before the chip opens. */
    int64_t rowsRemaining() const { return remaining_; }

    /**
     * Minimum voltage treated as "powered" by the ramp detector; any
     * sample above this after a 0 V sample triggers. Chosen far below
     * any voltage at which DRAM is operational, so a low-voltage
     * attack (Section 5.2.2) cannot sneak under it and still read
     * data.
     */
    static constexpr double kRampThresholdVolts = 0.05;

    /** Internal-controller survival temperature limit (C). */
    static constexpr double kControllerMaxTempC = 150.0;

  private:
    PowerOnState state_ = PowerOnState::Off;
    int64_t remaining_;
    bool saw_zero_ = true; //!< Supply observed at 0 V since last on.
};

} // namespace codic

#endif // CODIC_COLDBOOT_POWER_ON_H
