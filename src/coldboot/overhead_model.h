/**
 * @file
 * Analytical runtime/power/area overhead model behind paper Table 6:
 * CODIC self-destruction vs. memory encryption with ChaCha-8 or
 * AES-128 on a low-cost processor (Intel Atom N280 class).
 *
 * The paper's comparison is analytical; this model reproduces it from
 * first principles:
 *  - runtime performance overhead: encryption latency is hidden in
 *    the common case [170] and CODIC does nothing at runtime, so all
 *    three are ~0 % (AES under the <=16 back-to-back row-hit
 *    assumption of the paper's footnote);
 *  - runtime power overhead: cipher energy-per-byte times peak memory
 *    bandwidth, relative to the processor's power budget;
 *  - area: cipher accelerators add processor area; CODIC adds DRAM
 *    area (the configurable delay elements of Section 4.2.1, taken
 *    directly from the circuit model).
 */

#ifndef CODIC_COLDBOOT_OVERHEAD_MODEL_H
#define CODIC_COLDBOOT_OVERHEAD_MODEL_H

#include <string>

namespace codic {

/** Protection mechanisms compared in Table 6. */
enum class ColdBootDefense { CodicSelfDestruct, ChaCha8, Aes128 };

/** Display name. */
const char *coldBootDefenseName(ColdBootDefense d);

/** Platform constants (Intel Atom N280 class, paper Table 6). */
struct PlatformParams
{
    double cpu_power_w = 2.5;      //!< Processor power budget (TDP).
    double cpu_area_mm2 = 24.4;    //!< Processor die area.
    double peak_mem_bw_gbs = 5.3;  //!< Peak memory bandwidth (GB/s).

    double chacha8_pj_per_byte = 80.0;  //!< Accelerated ChaCha-8.
    double aes128_pj_per_byte = 56.5;   //!< Accelerated AES-128.
    double chacha8_area_mm2 = 0.22;     //!< ChaCha-8 engine area.
    double aes128_area_mm2 = 0.317;     //!< AES-128 engine area.

    /** Max back-to-back row hits assumed for AES latency hiding. */
    int aes_row_hit_window = 16;
};

/** One row of Table 6. */
struct OverheadRow
{
    double runtime_perf_pct;   //!< Runtime performance overhead.
    double runtime_power_pct;  //!< Runtime power overhead (peak BW).
    double cpu_area_pct;       //!< Processor area overhead.
    double dram_area_pct;      //!< DRAM area overhead.
};

/**
 * Compute one mechanism's overhead row. CODIC's DRAM area is taken
 * from the configurable-delay-element circuit model (Section 4.2.1);
 * cipher power comes from energy-per-byte at peak bandwidth.
 */
OverheadRow computeOverhead(ColdBootDefense defense,
                            const PlatformParams &platform = {});

} // namespace codic

#endif // CODIC_COLDBOOT_OVERHEAD_MODEL_H
