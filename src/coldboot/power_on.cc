#include "coldboot/power_on.h"

#include "common/logging.h"

namespace codic {

PowerOnFsm::PowerOnFsm(int64_t destruct_rows) : remaining_(destruct_rows)
{
    CODIC_ASSERT(destruct_rows > 0);
}

void
PowerOnFsm::observeVoltage(double volts)
{
    if (state_ == PowerOnState::Dead)
        return;
    if (volts <= kRampThresholdVolts) {
        // Power removed: re-arm. Whatever charge remains in the
        // array will be destroyed on the next ramp.
        saw_zero_ = true;
        if (state_ != PowerOnState::Off)
            state_ = PowerOnState::Off;
        return;
    }
    if (state_ == PowerOnState::Off && saw_zero_) {
        // Ramp up from 0 V detected - at ANY level above threshold,
        // not only at nominal Vdd (defeats low-voltage attacks).
        saw_zero_ = false;
        state_ = PowerOnState::Destructing;
    }
}

void
PowerOnFsm::observeTemperature(double celsius)
{
    if (celsius > kControllerMaxTempC) {
        // The FSM shares the internal controller with the command
        // timing logic: overheating it kills the whole chip, so the
        // attacker gains nothing (Section 5.2.2).
        state_ = PowerOnState::Dead;
    }
}

void
PowerOnFsm::destructionProgress(int64_t rows)
{
    if (state_ != PowerOnState::Destructing)
        return;
    remaining_ -= rows;
    if (remaining_ <= 0) {
        remaining_ = 0;
        state_ = PowerOnState::Ready;
    }
}

} // namespace codic
