#include "coldboot/ciphers.h"

#include <cstring>

#include "common/logging.h"

namespace codic {

namespace {

uint32_t
rotl32(uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

void
quarterRound(uint32_t &a, uint32_t &b, uint32_t &c, uint32_t &d)
{
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

uint32_t
load32le(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

// --- AES-128 internals. ---

/** GF(2^8) multiply (AES polynomial x^8+x^4+x^3+x+1). */
uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        const bool hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

/** The AES S-box, generated (GF(2^8) inverse + affine transform). */
const std::array<uint8_t, 256> &
sbox()
{
    static const std::array<uint8_t, 256> table = [] {
        std::array<uint8_t, 256> t{};
        // Build inverses by brute force (256^2 once at startup).
        std::array<uint8_t, 256> inv{};
        for (int a = 1; a < 256; ++a) {
            for (int b = 1; b < 256; ++b) {
                if (gmul(static_cast<uint8_t>(a),
                         static_cast<uint8_t>(b)) == 1) {
                    inv[static_cast<size_t>(a)] =
                        static_cast<uint8_t>(b);
                    break;
                }
            }
        }
        for (int x = 0; x < 256; ++x) {
            uint8_t b = inv[static_cast<size_t>(x)];
            uint8_t s = 0x63;
            for (int i = 0; i < 8; ++i) {
                const uint8_t bit =
                    static_cast<uint8_t>(((b >> i) ^ (b >> ((i + 4) % 8)) ^
                                          (b >> ((i + 5) % 8)) ^
                                          (b >> ((i + 6) % 8)) ^
                                          (b >> ((i + 7) % 8))) &
                                         1);
                s = static_cast<uint8_t>(s ^ (bit << i));
            }
            // s built incrementally: the 0x63 constant is already in.
            t[static_cast<size_t>(x)] = s;
        }
        return t;
    }();
    return table;
}

} // namespace

ChaCha::ChaCha(const std::array<uint8_t, 32> &key,
               const std::array<uint8_t, 12> &nonce, int rounds)
    : rounds_(rounds)
{
    CODIC_ASSERT(rounds > 0 && rounds % 2 == 0);
    state_[0] = 0x61707865;
    state_[1] = 0x3320646e;
    state_[2] = 0x79622d32;
    state_[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i)
        state_[static_cast<size_t>(4 + i)] =
            load32le(key.data() + 4 * i);
    state_[12] = 0; // Block counter, set per block.
    for (int i = 0; i < 3; ++i)
        state_[static_cast<size_t>(13 + i)] =
            load32le(nonce.data() + 4 * i);
}

std::array<uint8_t, 64>
ChaCha::block(uint32_t counter) const
{
    std::array<uint32_t, 16> x = state_;
    x[12] = counter;
    std::array<uint32_t, 16> w = x;
    for (int r = 0; r < rounds_ / 2; ++r) {
        quarterRound(w[0], w[4], w[8], w[12]);
        quarterRound(w[1], w[5], w[9], w[13]);
        quarterRound(w[2], w[6], w[10], w[14]);
        quarterRound(w[3], w[7], w[11], w[15]);
        quarterRound(w[0], w[5], w[10], w[15]);
        quarterRound(w[1], w[6], w[11], w[12]);
        quarterRound(w[2], w[7], w[8], w[13]);
        quarterRound(w[3], w[4], w[9], w[14]);
    }
    std::array<uint8_t, 64> out;
    for (int i = 0; i < 16; ++i) {
        const uint32_t v = w[static_cast<size_t>(i)] +
                           x[static_cast<size_t>(i)];
        out[static_cast<size_t>(4 * i + 0)] =
            static_cast<uint8_t>(v & 0xff);
        out[static_cast<size_t>(4 * i + 1)] =
            static_cast<uint8_t>((v >> 8) & 0xff);
        out[static_cast<size_t>(4 * i + 2)] =
            static_cast<uint8_t>((v >> 16) & 0xff);
        out[static_cast<size_t>(4 * i + 3)] =
            static_cast<uint8_t>((v >> 24) & 0xff);
    }
    return out;
}

std::vector<uint8_t>
ChaCha::crypt(const std::vector<uint8_t> &data) const
{
    std::vector<uint8_t> out(data.size());
    uint32_t counter = 1;
    for (size_t off = 0; off < data.size(); off += 64, ++counter) {
        const auto ks = block(counter);
        const size_t n = std::min<size_t>(64, data.size() - off);
        for (size_t i = 0; i < n; ++i)
            out[off + i] = data[off + i] ^ ks[i];
    }
    return out;
}

Aes128::Aes128(const std::array<uint8_t, 16> &key)
{
    const auto &s = sbox();
    round_keys_[0] = key;
    uint8_t rcon = 1;
    for (int r = 1; r <= 10; ++r) {
        auto &prev = round_keys_[static_cast<size_t>(r - 1)];
        auto &out = round_keys_[static_cast<size_t>(r)];
        // First word: RotWord + SubWord + Rcon.
        uint8_t t[4] = {s[prev[13]], s[prev[14]], s[prev[15]],
                        s[prev[12]]};
        t[0] = static_cast<uint8_t>(t[0] ^ rcon);
        rcon = gmul(rcon, 2);
        for (int i = 0; i < 4; ++i)
            out[static_cast<size_t>(i)] =
                static_cast<uint8_t>(prev[static_cast<size_t>(i)] ^ t[i]);
        for (int i = 4; i < 16; ++i)
            out[static_cast<size_t>(i)] = static_cast<uint8_t>(
                prev[static_cast<size_t>(i)] ^
                out[static_cast<size_t>(i - 4)]);
    }
}

std::array<uint8_t, 16>
Aes128::encryptBlock(const std::array<uint8_t, 16> &plain) const
{
    const auto &s = sbox();
    std::array<uint8_t, 16> st = plain;
    auto add_key = [&](int r) {
        for (int i = 0; i < 16; ++i)
            st[static_cast<size_t>(i)] = static_cast<uint8_t>(
                st[static_cast<size_t>(i)] ^
                round_keys_[static_cast<size_t>(r)]
                           [static_cast<size_t>(i)]);
    };
    auto sub_shift = [&] {
        std::array<uint8_t, 16> t;
        // Combined SubBytes + ShiftRows (column-major state layout).
        static const int map[16] = {0, 5, 10, 15, 4, 9, 14, 3,
                                    8, 13, 2, 7, 12, 1, 6, 11};
        for (int i = 0; i < 16; ++i)
            t[static_cast<size_t>(i)] =
                s[st[static_cast<size_t>(map[i])]];
        st = t;
    };
    auto mix_columns = [&] {
        for (int c = 0; c < 4; ++c) {
            uint8_t *col = st.data() + 4 * c;
            const uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                          a3 = col[3];
            col[0] = static_cast<uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^
                                          a2 ^ a3);
            col[1] = static_cast<uint8_t>(a0 ^ gmul(a1, 2) ^
                                          gmul(a2, 3) ^ a3);
            col[2] = static_cast<uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^
                                          gmul(a3, 3));
            col[3] = static_cast<uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^
                                          gmul(a3, 2));
        }
    };
    add_key(0);
    for (int r = 1; r <= 9; ++r) {
        sub_shift();
        mix_columns();
        add_key(r);
    }
    sub_shift();
    add_key(10);
    return st;
}

std::vector<uint8_t>
Aes128::ctrCrypt(const std::array<uint8_t, 16> &iv,
                 const std::vector<uint8_t> &data) const
{
    std::vector<uint8_t> out(data.size());
    std::array<uint8_t, 16> ctr = iv;
    for (size_t off = 0; off < data.size(); off += 16) {
        const auto ks = encryptBlock(ctr);
        const size_t n = std::min<size_t>(16, data.size() - off);
        for (size_t i = 0; i < n; ++i)
            out[off + i] = data[off + i] ^ ks[i];
        // Big-endian counter increment in the last 4 bytes.
        for (int i = 15; i >= 12; --i)
            if (++ctr[static_cast<size_t>(i)] != 0)
                break;
    }
    return out;
}

} // namespace codic
