#include "circuit/params.h"

#include <cmath>

namespace codic {

CircuitParams
CircuitParams::ddr3()
{
    CircuitParams p;
    p.vdd = 1.5;
    return p;
}

CircuitParams
CircuitParams::ddr3l()
{
    CircuitParams p;
    p.vdd = 1.35;
    // DDR3L's lower rail reduces absolute offsets slightly; the
    // proportionally smaller offsets relative to designed bias are why
    // the paper observes better PUF quality on DDR3L (Section 6.1.1).
    p.sa_offset_sigma_at_4pct = 5.1e-3;
    return p;
}

double
saOffsetSigma(const CircuitParams &params)
{
    return params.sa_offset_sigma_at_4pct * (params.process_variation / 0.04);
}

double
designedSaBiasAt(const CircuitParams &params)
{
    // Exponential-saturation droop: bias falls from its 30 C value to
    // ~80 % of it with a 12 C time constant. Calibrated against the
    // temperature row of Table 11 (flips rise from 0.02 % at 30 C to
    // ~0.2 % at 60-85 C for 4 % PV).
    const double b0 = params.designed_sa_bias;
    const double b_inf = 0.805 * b0;
    const double dt = params.temperature_c - 30.0;
    if (dt <= 0.0)
        return b0;
    return b_inf + (b0 - b_inf) * std::exp(-dt / 12.0);
}

double
thermalNoiseRms(const CircuitParams &params)
{
    // kT/C scaling normalized to 30 C (303 K).
    const double t_kelvin = params.temperature_c + 273.15;
    return params.thermal_noise_rms * std::sqrt(t_kelvin / 303.15);
}

} // namespace codic
