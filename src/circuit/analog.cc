#include "circuit/analog.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace codic {

namespace {

/**
 * Trapezoidal drive level of a pulse at time t (seconds), with the
 * configured slew applied to both edges. Returns 0 for unscheduled
 * signals.
 */
double
driveLevel(const std::optional<SignalPulse> &pulse, double t, double slew)
{
    if (!pulse)
        return 0.0;
    const double start = pulse->start_ns * 1e-9;
    const double end = pulse->end_ns * 1e-9;
    if (t < start || t > end + slew)
        return 0.0;
    if (t < start + slew)
        return (t - start) / slew;
    if (t <= end)
        return 1.0;
    return 1.0 - (t - end) / slew;
}

} // namespace

double
Transient::finalBitline() const
{
    CODIC_ASSERT(!points.empty());
    return points.back().v_bitline;
}

double
Transient::finalCell() const
{
    CODIC_ASSERT(!points.empty());
    return points.back().v_cell;
}

double
Transient::bitlineAt(double t_ns) const
{
    CODIC_ASSERT(!points.empty());
    const TracePoint *best = &points.front();
    for (const auto &p : points)
        if (std::abs(p.t_ns - t_ns) < std::abs(best->t_ns - t_ns))
            best = &p;
    return best->v_bitline;
}

double
Transient::cellAt(double t_ns) const
{
    CODIC_ASSERT(!points.empty());
    const TracePoint *best = &points.front();
    for (const auto &p : points)
        if (std::abs(p.t_ns - t_ns) < std::abs(best->t_ns - t_ns))
            best = &p;
    return best->v_cell;
}

CellCircuit::CellCircuit(const CircuitParams &params,
                         const VariationDraw &draw)
    : params_(params), draw_(draw),
      v_cell_(params.vHalf()), v_bitline_(params.vHalf())
{
}

double
CellCircuit::effectiveOffset() const
{
    // The SA trips around Vdd/2 minus the designed bias (which skews
    // toward amplifying ones) minus the per-instance offset.
    return -(designedSaBiasAt(params_) + draw_.sa_offset);
}

Transient
CellCircuit::run(const SignalSchedule &sched, double duration_ns,
                 Rng *noise, double sample_every_ns)
{
    const double vdd = params_.vdd;
    const double vhalf = params_.vHalf();
    const double dt = params_.dt;
    const double slew = params_.slew;

    // One thermal-noise draw per sensing event: the noise bandwidth of
    // the SA input is far below 1/dt, so per-step white noise would
    // overstate averaging. Drawn once here, applied to the trip point.
    const double noise_v =
        noise ? noise->gaussian(0.0, thermalNoiseRms(params_)) : 0.0;
    const double v_trip = vhalf + effectiveOffset() + noise_v;

    const double cell_cap = params_.cell_cap * (1.0 + draw_.cell_cap_rel);
    const double bl_cap =
        params_.bitline_cap * (1.0 + draw_.bitline_cap_rel);
    // Series capacitance sets the charge-sharing conductance so that
    // share_tau is the nominal cell/bitline equalization constant.
    const double c_series = cell_cap * bl_cap / (cell_cap + bl_cap);
    const double g_share =
        c_series / params_.share_tau * (1.0 + draw_.access_rel);

    const auto wl_pulse = sched.pulse(Signal::Wl);
    const auto eq_pulse = sched.pulse(Signal::Eq);
    const auto sp_pulse = sched.pulse(Signal::SenseP);
    const auto sn_pulse = sched.pulse(Signal::SenseN);

    Transient tr;
    const size_t steps =
        static_cast<size_t>(std::ceil(duration_ns * 1e-9 / dt));
    double next_sample = 0.0;

    for (size_t i = 0; i <= steps; ++i) {
        const double t = static_cast<double>(i) * dt;
        const double t_ns = t * 1e9;

        const double wl = driveLevel(wl_pulse, t, slew);
        const double eq = driveLevel(eq_pulse, t, slew);
        const double sp = driveLevel(sp_pulse, t, slew);
        const double sn = driveLevel(sn_pulse, t, slew);

        if (t_ns >= next_sample - 1e-9) {
            tr.points.push_back(
                {t_ns, v_bitline_, v_cell_, wl, eq, sp, sn});
            next_sample += sample_every_ns;
        }

        // --- Charge sharing through the access transistor. ---
        if (wl > 0.0) {
            const double i_share = g_share * wl * (v_cell_ - v_bitline_);
            v_cell_ -= i_share * dt / cell_cap;
            v_bitline_ += i_share * dt / bl_cap;
        }

        // --- Precharge unit: drives the bitline toward Vdd/2. ---
        if (eq > 0.0) {
            v_bitline_ +=
                (vhalf - v_bitline_) * eq * dt / params_.precharge_tau;
        }

        // --- Sense amplifier. ---
        const double both = std::min(sp, sn);
        if (both > 0.0) {
            // Regenerative latch: exponential growth of the deviation
            // from the trip point, with a quadratic saturation factor
            // that stalls the growth at the rails.
            const double dev = v_bitline_ - v_trip;
            const double sat =
                std::max(0.0, v_bitline_ * (vdd - v_bitline_)) /
                (vhalf * vhalf);
            v_bitline_ +=
                dev * both * sat * dt / params_.regen_tau;
        }
        // Single-leg drift (only one SA half enabled): the enabled
        // pair drags the precharged bitline toward its rail. This is
        // the deterministic deviation CODIC-det relies on.
        const double excess_n = std::max(0.0, sn - sp);
        const double excess_p = std::max(0.0, sp - sn);
        if (excess_n > 0.0)
            v_bitline_ -= params_.single_leg_slew * excess_n * dt;
        if (excess_p > 0.0)
            v_bitline_ += params_.single_leg_slew * excess_p * dt;

        v_bitline_ = std::clamp(v_bitline_, 0.0, vdd);
        v_cell_ = std::clamp(v_cell_, 0.0, vdd);
    }

    return tr;
}

bool
CellCircuit::senseBit() const
{
    return v_bitline_ > params_.vHalf();
}

} // namespace codic
