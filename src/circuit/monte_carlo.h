/**
 * @file
 * Monte-Carlo sweeps over the analog circuit model.
 *
 * Reproduces the methodology of paper Appendix C: sample many
 * process-variation instances of the cell/SA circuit, run a CODIC
 * variant on each, and report statistics such as the fraction of
 * instances whose sense amplifier flips to the non-designed value
 * (Table 11).
 */

#ifndef CODIC_CIRCUIT_MONTE_CARLO_H
#define CODIC_CIRCUIT_MONTE_CARLO_H

#include <cstddef>
#include <cstdint>

#include "circuit/analog.h"
#include "circuit/params.h"
#include "circuit/signals.h"
#include "common/run_options.h"

namespace codic {

/** Aggregate outcome of a Monte-Carlo circuit sweep. */
struct MonteCarloResult
{
    size_t runs = 0;           //!< Number of sampled instances.
    size_t ones = 0;           //!< Instances amplifying to '1'.
    size_t zeros = 0;          //!< Instances amplifying to '0'.

    /** Fraction of instances that produced the minority value. */
    double flipFraction() const;

    /** Fraction of instances amplifying to '1'. */
    double oneFraction() const;
};

/** Configuration of a Monte-Carlo sweep. */
struct MonteCarloConfig
{
    /**
     * Shared seed/threads. Runs are partitioned into fixed-size
     * blocks; block 0 draws from Rng(run.seed) (the historical
     * sequential stream, so single-block sweeps reproduce published
     * numbers exactly) and block b > 0 from Rng(run.seed).fork(b).
     * Block layout depends only on `runs` and `block_runs`, so the
     * tallies are bit-identical at any thread count.
     */
    RunOptions run;

    CircuitParams params;      //!< Circuit/environment parameters.
    SignalSchedule schedule;   //!< CODIC variant under test.
    size_t runs = 100000;      //!< Paper uses 100,000 per point.
    double initial_cell_v = -1.0; //!< <0: precharge level (Vdd/2).
    bool thermal_noise = true; //!< Apply per-run thermal noise.

    /**
     * If true (default), skip the full transient integration and use
     * the closed-form sensing decision (offset + noise vs. designed
     * bias). The closed form is validated against the full transient
     * by the test suite; it makes 100k-run sweeps instantaneous.
     */
    bool fast_path = true;

    /**
     * Runs per RNG block (fixed; independent of thread count). The
     * default covers the paper's 100,000-run sweeps in one block;
     * lower it to spread a single sweep across threads.
     */
    size_t block_runs = 131072;
};

/**
 * Run a Monte-Carlo sweep of the given CODIC variant.
 *
 * Each instance draws fresh process variation, initializes the cell,
 * runs the schedule, and digitizes the final bitline voltage.
 */
MonteCarloResult runMonteCarlo(const MonteCarloConfig &config);

/**
 * Build the CODIC-sigsa schedule of Appendix C / Fig. 10: both SA
 * legs at 3 ns (amplifying pure SA mismatch on the precharged
 * bitline), wordline at 5 ns to write the amplified value back.
 */
SignalSchedule sigsaSchedule();

} // namespace codic

#endif // CODIC_CIRCUIT_MONTE_CARLO_H
