/**
 * @file
 * Electrical parameters for the circuit-level DRAM model.
 *
 * The defaults approximate a 22 nm-class DDR3 design (the paper models
 * the delay elements with 22 nm PTM transistors). The model is not a
 * SPICE replacement: it integrates the same state variables
 * (bitline/cell voltages under the wl/EQ/sense_p/sense_n stimuli) with
 * first-order RC and regenerative-latch dynamics, which is sufficient
 * to reproduce the waveform shapes of Figs. 2b/3/10 and the
 * Monte-Carlo statistics of Table 11.
 */

#ifndef CODIC_CIRCUIT_PARAMS_H
#define CODIC_CIRCUIT_PARAMS_H

namespace codic {

/** Electrical and environmental parameters of the cell/SA circuit. */
struct CircuitParams
{
    /** Supply voltage (V). DDR3 nominal is 1.5 V; DDR3L is 1.35 V. */
    double vdd = 1.5;

    /** Cell storage capacitance (F); ~24 fF is typical for DDR3. */
    double cell_cap = 24e-15;

    /** Bitline capacitance (F); ~85 fF for a 512-cell local bitline. */
    double bitline_cap = 85e-15;

    /**
     * Charge-sharing time constant through a fully-on access
     * transistor (s). Governs how fast the cell and bitline equalize
     * once the wordline is up.
     */
    double share_tau = 1.0e-9;

    /** Precharge-unit time constant driving the bitline to Vdd/2 (s). */
    double precharge_tau = 1.2e-9;

    /**
     * Sense-amplifier regeneration time constant (s): the latch gain
     * is 1/regen_tau, so a small differential doubles roughly every
     * regen_tau * ln 2.
     */
    double regen_tau = 1.1e-9;

    /**
     * Single-leg drift rate when only one SA half is enabled (V/s).
     * With only sense_n active the bitline drifts toward 0 at roughly
     * this rate (CODIC-det relies on this; paper Fig. 3b).
     */
    double single_leg_slew = 1.1e8;

    /** Signal rise/fall time applied to all four control signals (s). */
    double slew = 0.3e-9;

    /** Die temperature (degrees C). */
    double temperature_c = 30.0;

    /**
     * Process-variation magnitude as a fraction of nominal device
     * parameters (paper Table 11 sweeps 2-5 %).
     */
    double process_variation = 0.04;

    /**
     * Designed sense-amplifier asymmetry (V). Positive values bias an
     * offset-free SA toward amplifying a precharged bitline to '1',
     * matching the paper's observation in Appendix C that the nominal
     * SA model always generates ones absent process variation.
     */
    double designed_sa_bias = 20e-3;

    /**
     * Input-referred SA offset standard deviation at 4 % process
     * variation (V). Together with designed_sa_bias this calibrates
     * the Table 11 flip rates: at 4 % PV the bias sits ~3.5 sigma
     * away, giving ~0.02 % flips.
     */
    double sa_offset_sigma_at_4pct = 5.65e-3;

    /** Thermal-noise RMS on the sensed voltage at 30 C (V). */
    double thermal_noise_rms = 0.35e-3;

    /**
     * Threshold-voltage temperature coefficient (V per degree C);
     * negative: thresholds drop as temperature rises, which increases
     * SA imbalance sensitivity.
     */
    double vt_temp_coeff = -1.2e-3;

    /** Simulation time step (s). */
    double dt = 0.01e-9;

    /** Half-Vdd convenience accessor. */
    double vHalf() const { return vdd / 2.0; }

    /** Preset for a DDR3 (1.5 V) device. */
    static CircuitParams ddr3();

    /** Preset for a DDR3L (1.35 V) device. */
    static CircuitParams ddr3l();
};

/**
 * Input-referred SA offset sigma (V) at the configured process
 * variation, scaling linearly from the 4 % calibration point.
 */
double saOffsetSigma(const CircuitParams &params);

/**
 * Designed SA bias (V) at the configured temperature. Decays with an
 * exponential saturation above 30 C (threshold-voltage droop), which
 * calibrates the temperature sweep of paper Table 11.
 */
double designedSaBiasAt(const CircuitParams &params);

/** Thermal-noise RMS (V) at the configured temperature. */
double thermalNoiseRms(const CircuitParams &params);

} // namespace codic

#endif // CODIC_CIRCUIT_PARAMS_H
