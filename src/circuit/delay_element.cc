#include "circuit/delay_element.h"

#include "common/logging.h"

namespace codic {

DelayElement::DelayElement(const DelayElementParams &params)
    : params_(params)
{
    CODIC_ASSERT(params_.taps >= 2);
}

double
DelayElement::delayNs(size_t setting) const
{
    if (setting >= params_.taps)
        fatal("delay setting ", setting, " out of range [0,",
              params_.taps, ")");
    return static_cast<double>(setting) * params_.buffer_delay_ns;
}

double
DelayElement::ddrxPathPenaltyNs() const
{
    return params_.select_mux_delay_ns;
}

double
DelayElement::areaF2() const
{
    // taps-1 buffers in the chain (tap 0 bypasses all of them) plus
    // one transmission-gate leg per tap in the 25-to-1 mux.
    const double buffers =
        static_cast<double>(params_.taps - 1) * params_.buffer_area_f2;
    const double mux =
        static_cast<double>(params_.taps) * params_.mux_leg_area_f2;
    return buffers + mux;
}

double
DelayElement::matAreaF2() const
{
    return static_cast<double>(params_.mat_rows) *
           static_cast<double>(params_.mat_cols) * params_.cell_area_f2;
}

double
DelayElement::areaOverheadPerMat() const
{
    return areaF2() / matAreaF2();
}

double
DelayElement::fullCodicAreaOverheadPerMat() const
{
    return 4.0 * areaOverheadPerMat();
}

double
DelayElement::energyPerOperationFj() const
{
    // Worst case: the edge traverses the full buffer chain and the
    // mux network switches once.
    return static_cast<double>(params_.taps - 1) * params_.buffer_energy_fj +
           params_.mux_energy_fj;
}

} // namespace codic
