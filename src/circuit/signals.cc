#include "circuit/signals.h"

#include <sstream>

#include "common/logging.h"

namespace codic {

const char *
signalName(Signal s)
{
    switch (s) {
      case Signal::Wl: return "wl";
      case Signal::Eq: return "EQ";
      case Signal::SenseP: return "sense_p";
      case Signal::SenseN: return "sense_n";
    }
    panic("unknown signal enumerator");
}

void
SignalSchedule::set(Signal s, int start_ns, int end_ns)
{
    if (start_ns < 0 || end_ns >= kWindowNs)
        fatal("signal pulse [", start_ns, ",", end_ns,
              ") outside CODIC window [0,", kWindowNs, ")");
    if (end_ns <= start_ns)
        fatal("signal pulse must deassert after it asserts: [",
              start_ns, ",", end_ns, "]");
    pulses_[static_cast<size_t>(s)] = SignalPulse{start_ns, end_ns};
}

void
SignalSchedule::clear(Signal s)
{
    pulses_[static_cast<size_t>(s)].reset();
}

std::optional<SignalPulse>
SignalSchedule::pulse(Signal s) const
{
    return pulses_[static_cast<size_t>(s)];
}

bool
SignalSchedule::activeAt(Signal s, int t_ns) const
{
    const auto &p = pulses_[static_cast<size_t>(s)];
    return p && t_ns >= p->start_ns && t_ns < p->end_ns;
}

int
SignalSchedule::lastEdgeNs() const
{
    int last = 0;
    for (const auto &p : pulses_)
        if (p)
            last = std::max(last, p->end_ns);
    return last;
}

bool
SignalSchedule::empty() const
{
    for (const auto &p : pulses_)
        if (p)
            return false;
    return true;
}

std::string
SignalSchedule::str() const
{
    std::ostringstream os;
    bool first = true;
    for (size_t i = 0; i < kNumSignals; ++i) {
        const auto &p = pulses_[i];
        if (!p)
            continue;
        if (!first)
            os << ' ';
        first = false;
        os << signalName(static_cast<Signal>(i)) << '[' << p->start_ns
           << ',' << p->end_ns << ']';
    }
    if (first)
        os << "(none)";
    return os.str();
}

uint64_t
SignalSchedule::pulsesPerSignal(int window_ns)
{
    CODIC_ASSERT(window_ns > 1);
    // Pulses that assert at time i can deassert at i+1 .. window-1,
    // giving (window-1-i) choices; summing over i = 0..window-2 yields
    // sum_{k=1}^{window-1} k.
    const uint64_t w = static_cast<uint64_t>(window_ns);
    return (w - 1) * w / 2; // sum_{i=1}^{w-1} i = 300 for w = 25

}

uint64_t
SignalSchedule::totalVariants(int window_ns)
{
    const uint64_t n = pulsesPerSignal(window_ns);
    return n * n * n * n;
}

} // namespace codic
