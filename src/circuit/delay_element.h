/**
 * @file
 * Model of the configurable CODIC delay element (paper Section 4.2.1,
 * Figure 4): a chain of buffers tapped by a 25-to-1 multiplexer, plus
 * the 2-to-1 mux that selects between the fixed DDRx delay path and
 * the CODIC path.
 *
 * The model accounts for propagation delay, silicon area (in units of
 * F^2 and as a fraction of a DRAM mat), and switching energy, and
 * reproduces the paper's published costs: ~1 ns per buffer stage,
 * 0.28 % mat area per signal (1.12 % for all four), < 500 fJ per
 * operation, and 0.028 ns of added delay on the DDRx activate path.
 */

#ifndef CODIC_CIRCUIT_DELAY_ELEMENT_H
#define CODIC_CIRCUIT_DELAY_ELEMENT_H

#include <cstddef>

namespace codic {

/** Geometry and technology constants for the delay-element model. */
struct DelayElementParams
{
    /** Number of selectable taps (paper: 25, one per ns step). */
    size_t taps = 25;

    /** Nominal per-buffer-stage propagation delay (ns). */
    double buffer_delay_ns = 1.0;

    /** Added delay of the 2-to-1 path-select mux (ns). */
    double select_mux_delay_ns = 0.028;

    /**
     * Layout area of one buffer (two inverters) in F^2. Buffers in
     * the delay chain are sized up to drive the heavily loaded
     * internal control lines.
     */
    double buffer_area_f2 = 133.0;

    /** Layout area of one 25-to-1 mux leg (transmission gate), F^2. */
    double mux_leg_area_f2 = 48.4;

    /** DRAM cell area in F^2 (6F^2 design, paper refs [120, 129]). */
    double cell_area_f2 = 6.0;

    /** Mat dimensions: rows x columns of cells (paper: 512 x 512). */
    size_t mat_rows = 512;
    size_t mat_cols = 512;

    /** Switching energy per buffer stage transition (fJ). */
    double buffer_energy_fj = 4.0;

    /** Switching energy of the mux network per operation (fJ). */
    double mux_energy_fj = 15.0;
};

/**
 * Cost/latency model of one configurable delay element.
 *
 * One element generates one of the four internal control signals; a
 * CODIC-capable mat instantiates four of them.
 */
class DelayElement
{
  public:
    explicit DelayElement(const DelayElementParams &params = {});

    /**
     * Propagation delay (ns) when the mux selects tap `setting`
     * (0-based: setting k routes through k buffer stages).
     * @throws FatalError if the setting exceeds the tap count.
     */
    double delayNs(size_t setting) const;

    /** Delay added to the unmodified DDRx path by the select mux. */
    double ddrxPathPenaltyNs() const;

    /** Total layout area of the element (buffers + mux) in F^2. */
    double areaF2() const;

    /** Area of one DRAM mat in F^2. */
    double matAreaF2() const;

    /** Area overhead of this element as a fraction of one mat. */
    double areaOverheadPerMat() const;

    /** Area overhead of a full 4-signal CODIC installation per mat. */
    double fullCodicAreaOverheadPerMat() const;

    /** Worst-case switching energy of one delayed edge (fJ). */
    double energyPerOperationFj() const;

    /** Number of selectable settings. */
    size_t taps() const { return params_.taps; }

  private:
    DelayElementParams params_;
};

} // namespace codic

#endif // CODIC_CIRCUIT_DELAY_ELEMENT_H
