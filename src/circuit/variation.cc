#include "circuit/variation.h"

#include <cmath>

namespace codic {

VariationDraw
VariationDraw::sample(Rng &rng, const CircuitParams &params)
{
    VariationDraw d;
    const double pv = params.process_variation;
    d.sa_offset = rng.gaussian(0.0, saOffsetSigma(params));
    d.cell_cap_rel = rng.gaussian(0.0, pv / 3.0);
    d.access_rel = rng.gaussian(0.0, pv / 3.0);
    d.bitline_cap_rel = rng.gaussian(0.0, pv / 3.0);
    // Retention varies over orders of magnitude across cells (paper
    // references [97, 98]); a lognormal with sigma ~0.9 reproduces the
    // wide retention-time tail that the 48 h methodology depends on.
    d.retention_rel = std::exp(rng.gaussian(0.0, 0.9));
    return d;
}

} // namespace codic
