/**
 * @file
 * Per-instance process-variation draws for the circuit model.
 *
 * Each physical sense amplifier / cell / bitline instance owns one
 * VariationDraw; drawing it from a seeded Rng makes a simulated chip a
 * stable "device" whose PUF responses are repeatable across queries,
 * exactly as process variation behaves in silicon.
 */

#ifndef CODIC_CIRCUIT_VARIATION_H
#define CODIC_CIRCUIT_VARIATION_H

#include "circuit/params.h"
#include "common/rng.h"

namespace codic {

/** Sampled deviations of one cell + SA instance from nominal. */
struct VariationDraw
{
    /**
     * Input-referred SA offset (V). The dominant PUF entropy source:
     * its sign decides which way a precharged bitline amplifies.
     */
    double sa_offset = 0.0;

    /** Relative cell-capacitance deviation (fraction, ~N(0, pv/3)). */
    double cell_cap_rel = 0.0;

    /** Relative access-transistor strength deviation (fraction). */
    double access_rel = 0.0;

    /** Relative bitline-capacitance deviation (fraction). */
    double bitline_cap_rel = 0.0;

    /**
     * Cell retention time constant multiplier (lognormal-ish spread);
     * used by the chip-population model for the 48 h discharge
     * methodology of Section 6.1.
     */
    double retention_rel = 1.0;

    /**
     * Sample a draw.
     *
     * The SA offset sigma scales linearly with the process-variation
     * fraction, normalized so params.sa_offset_sigma_at_4pct is the
     * sigma at 4 % PV (the calibration point of Table 11).
     */
    static VariationDraw sample(Rng &rng, const CircuitParams &params);
};

} // namespace codic

#endif // CODIC_CIRCUIT_VARIATION_H
