#include "circuit/monte_carlo.h"

#include <algorithm>

#include "common/logging.h"

namespace codic {

double
MonteCarloResult::flipFraction() const
{
    if (runs == 0)
        return 0.0;
    return static_cast<double>(std::min(ones, zeros)) /
           static_cast<double>(runs);
}

double
MonteCarloResult::oneFraction() const
{
    if (runs == 0)
        return 0.0;
    return static_cast<double>(ones) / static_cast<double>(runs);
}

SignalSchedule
sigsaSchedule()
{
    SignalSchedule s;
    s.set(Signal::SenseP, 3, 22);
    s.set(Signal::SenseN, 3, 22);
    s.set(Signal::Wl, 5, 22);
    return s;
}

MonteCarloResult
runMonteCarlo(const MonteCarloConfig &config)
{
    CODIC_ASSERT(config.runs > 0);
    Rng rng(config.seed);
    MonteCarloResult result;
    result.runs = config.runs;

    const double init_cell = config.initial_cell_v >= 0.0
                                 ? config.initial_cell_v
                                 : config.params.vHalf();

    for (size_t i = 0; i < config.runs; ++i) {
        const VariationDraw draw = VariationDraw::sample(rng, config.params);
        bool bit;
        if (config.fast_path) {
            // Closed form of the sensing decision for a precharged
            // bitline: the latch amplifies the sign of
            // (Vdd/2 - v_trip) = designed bias + offset + noise.
            // Validated against the full transient in the tests.
            const double noise_v =
                config.thermal_noise
                    ? rng.gaussian(0.0, thermalNoiseRms(config.params))
                    : 0.0;
            bit = designedSaBiasAt(config.params) + draw.sa_offset +
                      noise_v > 0.0;
        } else {
            CellCircuit circuit(config.params, draw);
            circuit.setCellVoltage(init_cell);
            Rng noise = rng.fork(i);
            circuit.run(config.schedule, 30.0,
                        config.thermal_noise ? &noise : nullptr);
            bit = circuit.senseBit();
        }
        if (bit)
            ++result.ones;
        else
            ++result.zeros;
    }
    return result;
}

} // namespace codic
