#include "circuit/monte_carlo.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"

namespace codic {

double
MonteCarloResult::flipFraction() const
{
    if (runs == 0)
        return 0.0;
    return static_cast<double>(std::min(ones, zeros)) /
           static_cast<double>(runs);
}

double
MonteCarloResult::oneFraction() const
{
    if (runs == 0)
        return 0.0;
    return static_cast<double>(ones) / static_cast<double>(runs);
}

SignalSchedule
sigsaSchedule()
{
    SignalSchedule s;
    s.set(Signal::SenseP, 3, 22);
    s.set(Signal::SenseN, 3, 22);
    s.set(Signal::Wl, 5, 22);
    return s;
}

MonteCarloResult
runMonteCarlo(const MonteCarloConfig &config)
{
    CODIC_ASSERT(config.runs > 0);
    CODIC_ASSERT(config.block_runs > 0);
    MonteCarloResult result;
    result.runs = config.runs;

    const double init_cell = config.initial_cell_v >= 0.0
                                 ? config.initial_cell_v
                                 : config.params.vHalf();

    // The sweep is partitioned into fixed-size RNG blocks whose
    // streams depend only on (seed, block index) - never on which
    // thread runs them - and the per-block tallies are summed in
    // block order, so the result is identical for any `threads`
    // (including the inline sequential path at threads == 1). Block 0
    // continues the historical sequential stream for backward
    // compatibility of single-block sweeps.
    const size_t blocks =
        (config.runs + config.block_runs - 1) / config.block_runs;
    std::vector<Rng> streams;
    streams.reserve(blocks);
    Rng root(config.run.seed);
    for (size_t b = 0; b < blocks; ++b)
        streams.push_back(b == 0 ? Rng(config.run.seed) : root.fork(b));
    std::vector<MonteCarloResult> partial(blocks);

    CampaignEngine engine(config.run.threads);
    engine.forEach(blocks, [&](size_t b) {
        Rng rng = streams[b];
        const size_t begin = b * config.block_runs;
        const size_t end =
            std::min(config.runs, begin + config.block_runs);
        MonteCarloResult &tally = partial[b];
        for (size_t i = begin; i < end; ++i) {
            const VariationDraw draw =
                VariationDraw::sample(rng, config.params);
            bool bit;
            if (config.fast_path) {
                // Closed form of the sensing decision for a precharged
                // bitline: the latch amplifies the sign of
                // (Vdd/2 - v_trip) = designed bias + offset + noise.
                // Validated against the full transient in the tests.
                const double noise_v =
                    config.thermal_noise
                        ? rng.gaussian(0.0,
                                       thermalNoiseRms(config.params))
                        : 0.0;
                bit = designedSaBiasAt(config.params) + draw.sa_offset +
                          noise_v > 0.0;
            } else {
                CellCircuit circuit(config.params, draw);
                circuit.setCellVoltage(init_cell);
                Rng noise = rng.fork(i);
                circuit.run(config.schedule, 30.0,
                            config.thermal_noise ? &noise : nullptr);
                bit = circuit.senseBit();
            }
            if (bit)
                ++tally.ones;
            else
                ++tally.zeros;
        }
    });

    for (const auto &tally : partial) {
        result.ones += tally.ones;
        result.zeros += tally.zeros;
    }
    return result;
}

} // namespace codic
