/**
 * @file
 * The four fundamental DRAM internal control signals that CODIC
 * exposes (paper Section 2, Figure 2a) and the schedule type that
 * assigns each one an assert/deassert time inside the CODIC window.
 */

#ifndef CODIC_CIRCUIT_SIGNALS_H
#define CODIC_CIRCUIT_SIGNALS_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace codic {

/**
 * Internal DRAM circuit control signals (paper Fig. 2a):
 *  - Wl: wordline; connects the cell capacitor to the bitline.
 *  - Eq: precharge-unit equalizer; drives the bitline to Vdd/2.
 *  - SenseP: PMOS half of the sense-amplifier latch (pulls to Vdd).
 *  - SenseN: NMOS half of the sense-amplifier latch (pulls to 0).
 */
enum class Signal : uint8_t { Wl = 0, Eq = 1, SenseP = 2, SenseN = 3 };

/** Number of CODIC-controllable internal signals. */
inline constexpr size_t kNumSignals = 4;

/** Human-readable name of a signal ("wl", "EQ", "sense_p", "sense_n"). */
const char *signalName(Signal s);

/**
 * Assert/deassert times of one signal, in integer nanoseconds inside
 * the CODIC window. Asserting means driving the signal to its active
 * level (high for wl/EQ/sense_n, low for sense_p in the real circuit;
 * the model treats "asserted" uniformly as logic-active).
 */
struct SignalPulse
{
    /** Time at which the signal becomes active (ns). */
    int start_ns = 0;
    /** Time at which the signal is deactivated (ns); must exceed start. */
    int end_ns = 0;

    bool operator==(const SignalPulse &) const = default;
};

/**
 * A complete CODIC signal schedule: for each of the four signals,
 * either an (assert, deassert) pulse or "never asserted".
 *
 * The CODIC substrate constrains all times to the window
 * [0, kWindowNs) at kStepNs granularity (paper Section 4.1).
 */
class SignalSchedule
{
  public:
    /** CODIC time window (paper: 25 ns). */
    static constexpr int kWindowNs = 25;
    /** CODIC time step (paper: 1 ns). */
    static constexpr int kStepNs = 1;

    SignalSchedule() = default;

    /**
     * Assign a pulse to a signal.
     * @throws FatalError if the pulse violates window/step/order rules.
     */
    void set(Signal s, int start_ns, int end_ns);

    /** Remove a signal from the schedule (never asserted). */
    void clear(Signal s);

    /** Pulse of a signal, if scheduled. */
    std::optional<SignalPulse> pulse(Signal s) const;

    /** True if the signal is asserted at integer time t_ns. */
    bool activeAt(Signal s, int t_ns) const;

    /** Latest deassert time over all scheduled signals (0 if none). */
    int lastEdgeNs() const;

    /** True if no signal is ever asserted. */
    bool empty() const;

    /** Short textual form, e.g. "wl[5,22] EQ[7,22]". */
    std::string str() const;

    bool operator==(const SignalSchedule &) const = default;

    /**
     * Number of valid (start, end) pulses for a single signal within
     * the window: sum_{i=1}^{w-1} i = 300 for w = 25 (paper §4.1.3).
     */
    static uint64_t pulsesPerSignal(int window_ns = kWindowNs);

    /**
     * Total number of CODIC variants when every signal carries a pulse:
     * pulsesPerSignal^4 = 300^4 (paper §4.1.3).
     */
    static uint64_t totalVariants(int window_ns = kWindowNs);

  private:
    std::array<std::optional<SignalPulse>, kNumSignals> pulses_;
};

} // namespace codic

#endif // CODIC_CIRCUIT_SIGNALS_H
