/**
 * @file
 * Time-stepped analog model of one DRAM cell, its bitline, the
 * precharge unit, and the cross-coupled sense amplifier, driven by a
 * CODIC SignalSchedule.
 *
 * This is the "SPICE substitute" of the reproduction: it integrates
 * the bitline and cell-capacitor voltages under the four internal
 * control signals and reproduces the waveform behaviour of paper
 * Figures 2b (ACT/PRE), 3a (CODIC-sig), 3b (CODIC-det) and 10
 * (CODIC-sigsa), plus the process-variation-dependent amplification
 * direction that underlies the CODIC-sig PUF.
 */

#ifndef CODIC_CIRCUIT_ANALOG_H
#define CODIC_CIRCUIT_ANALOG_H

#include <vector>

#include "circuit/params.h"
#include "circuit/signals.h"
#include "circuit/variation.h"
#include "common/rng.h"

namespace codic {

/** One sampled point of a simulated transient. */
struct TracePoint
{
    double t_ns;        //!< Simulation time (ns).
    double v_bitline;   //!< Bitline voltage (V).
    double v_cell;      //!< Cell-capacitor voltage (V).
    double wl;          //!< Wordline drive level in [0, 1].
    double eq;          //!< Equalizer drive level in [0, 1].
    double sense_p;     //!< PMOS SA enable level in [0, 1].
    double sense_n;     //!< NMOS SA enable level in [0, 1].
};

/** A full transient: sampled points plus end-state summary. */
struct Transient
{
    std::vector<TracePoint> points;

    /** Final bitline voltage (V). */
    double finalBitline() const;

    /** Final cell voltage (V). */
    double finalCell() const;

    /** Bitline voltage at a given time (nearest sample). */
    double bitlineAt(double t_ns) const;

    /** Cell voltage at a given time (nearest sample). */
    double cellAt(double t_ns) const;
};

/**
 * Analog simulator for one cell/bitline/SA column.
 *
 * The model is single-ended with an implicit reference held at the
 * precharge voltage: the SA's regenerative term amplifies the bitline
 * away from (Vdd/2 + offset), where offset combines the designed SA
 * bias, the per-instance process-variation draw, and thermal noise.
 * Single-leg operation (only sense_n or only sense_p enabled) drifts
 * the bitline toward the corresponding rail, which is the mechanism
 * CODIC-det exploits (paper Section 4.1.2).
 */
class CellCircuit
{
  public:
    /**
     * @param params Electrical/environmental parameters.
     * @param draw Per-instance process-variation draw.
     */
    CellCircuit(const CircuitParams &params, const VariationDraw &draw);

    /**
     * Set the stored cell voltage before a transient (V), e.g. Vdd for
     * a stored one, 0 for a stored zero, Vdd/2 for a leaked cell.
     */
    void setCellVoltage(double v) { v_cell_ = v; }

    /** Set the bitline voltage (defaults to the precharge level). */
    void setBitlineVoltage(double v) { v_bitline_ = v; }

    /** Current cell voltage (V). */
    double cellVoltage() const { return v_cell_; }

    /** Current bitline voltage (V). */
    double bitlineVoltage() const { return v_bitline_; }

    /**
     * Run a transient under a signal schedule.
     *
     * @param sched Signal schedule to apply.
     * @param duration_ns Total simulated time; defaults to the CODIC
     *        window plus settle margin.
     * @param noise Optional RNG for thermal noise on the sensed
     *        voltage; nullptr disables noise (deterministic runs).
     * @param sample_every_ns Trace sampling period.
     * @return The sampled transient. The circuit retains its end
     *         state, so consecutive commands (e.g. CODIC-sig followed
     *         by ACT) compose naturally.
     */
    Transient run(const SignalSchedule &sched, double duration_ns = 35.0,
                  Rng *noise = nullptr, double sample_every_ns = 0.25);

    /**
     * Digitize the bitline: true if above Vdd/2 (a logical one).
     * Only meaningful after amplification has settled.
     */
    bool senseBit() const;

    /** Effective SA trip offset (V) including designed bias and PV. */
    double effectiveOffset() const;

  private:
    CircuitParams params_;
    VariationDraw draw_;
    double v_cell_;
    double v_bitline_;
};

} // namespace codic

#endif // CODIC_CIRCUIT_ANALOG_H
