#include "dram/command.h"

#include <sstream>

#include "common/logging.h"

namespace codic {

const char *
commandName(CommandType t)
{
    switch (t) {
      case CommandType::Act: return "ACT";
      case CommandType::Pre: return "PRE";
      case CommandType::PreAll: return "PREA";
      case CommandType::Rd: return "RD";
      case CommandType::Wr: return "WR";
      case CommandType::Ref: return "REF";
      case CommandType::RefPb: return "REFPB";
      case CommandType::Mrs: return "MRS";
      case CommandType::Codic: return "CODIC";
      case CommandType::RowClone: return "ROWCLONE";
      case CommandType::LisaRbm: return "LISA-RBM";
    }
    panic("unknown command type");
}

std::string
Command::str() const
{
    std::ostringstream os;
    os << commandName(type) << " ch" << addr.channel << " rk" << addr.rank
       << " bk" << addr.bank << " row" << addr.row << " col"
       << addr.column;
    return os.str();
}

} // namespace codic
