#include "dram/refresh.h"

namespace codic {

RefreshEngine::RefreshEngine(DramChannel &channel, int rank)
    : channel_(channel), rank_(rank),
      next_due_(channel.config().timing.trefi)
{
}

int
RefreshEngine::catchUp(Cycle now)
{
    int issued = 0;
    const Cycle trefi = channel_.config().timing.trefi;
    while (next_due_ <= now) {
        Command ref;
        ref.type = CommandType::Ref;
        ref.addr.rank = rank_;
        channel_.issueAtEarliest(ref, next_due_);
        next_due_ += trefi;
        ++issued;
    }
    return issued;
}

double
RefreshEngine::dutyCycle() const
{
    const auto &t = channel_.config().timing;
    return static_cast<double>(t.trfc) / static_cast<double>(t.trefi);
}

} // namespace codic
