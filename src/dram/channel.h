/**
 * @file
 * Cycle-accurate DRAM channel model with full JEDEC timing
 * enforcement, row data-state tracking, and the CODIC command
 * integrated into the command set.
 *
 * The model follows the Ramulator approach: instead of ticking every
 * cycle, each bank/rank keeps "earliest allowed issue time" horizons
 * per command class, and issuing a command pushes the horizons of the
 * commands it constrains. Any attempt to issue a command before its
 * horizon violates the JEDEC checker and panics, so every experiment
 * in the repository runs under continuous timing verification.
 */

#ifndef CODIC_DRAM_CHANNEL_H
#define CODIC_DRAM_CHANNEL_H

#include <cstdint>
#include <thread>
#include <vector>

#include "codic/functionality.h"
#include "codic/mode_regs.h"
#include "codic/variant.h"
#include "dram/command.h"
#include "dram/config.h"

namespace codic {

/**
 * Per-bank slice of the issue counters (thermal epoch accounting and
 * the REFpb ablation): the commands whose energy is bank-local.
 */
struct BankCounts
{
    uint64_t act = 0;
    uint64_t rd = 0;
    uint64_t wr = 0;
    uint64_t ref = 0; //!< Rank REFs attributed to each bank refreshed.
    uint64_t refpb = 0; //!< Per-bank REFpb commands issued to the bank.

    /**
     * Cycles the bank spent locked out under refresh (tRFC per rank
     * REF attributed to it, tRFCpb per REFpb) - the ramulator-style
     * per-node refresh-cycle stat the REFpb ablation reads.
     */
    uint64_t refresh_cycles = 0;

    BankCounts &operator+=(const BankCounts &other)
    {
        act += other.act;
        rd += other.rd;
        wr += other.wr;
        ref += other.ref;
        refpb += other.refpb;
        refresh_cycles += other.refresh_cycles;
        return *this;
    }
};

/** Issue counters for energy accounting and test assertions. */
struct CommandCounts
{
    uint64_t act = 0;
    uint64_t pre = 0;
    uint64_t rd = 0;
    uint64_t wr = 0;
    uint64_t ref = 0;
    uint64_t refpb = 0; //!< Per-bank refresh commands (REFpb mode).
    uint64_t mrs = 0;
    uint64_t codic = 0;
    uint64_t rowclone = 0;
    uint64_t lisa_rbm = 0;

    /**
     * Data-bus direction switches (not commands, so excluded from
     * total()): a RD issued while the bus last carried a write burst
     * counts one wr->rd turnaround and vice versa. Write-drain
     * batching exists to amortize exactly these switches, so the
     * scheduler ablations and tests assert on them.
     */
    uint64_t rd_wr_turnarounds = 0; //!< Bus switched read -> write.
    uint64_t wr_rd_turnarounds = 0; //!< Bus switched write -> read.

    /**
     * Cycles a refresh overlapped with other banks of the same rank
     * staying active (ramulator's refresh/active-overlap stat, not a
     * command so excluded from total()): each REFpb contributes
     * tRFCpb per sibling bank that stayed open through it. An
     * all-bank REF can never overlap (it requires the whole rank
     * idle), so this counter is exactly the bank-parallelism REFpb
     * reclaims.
     */
    uint64_t refresh_overlap_cycles = 0;

    /**
     * Per-bank ACT/RD/WR/REF breakdown, indexed by
     * rank * banks + bank (a DramChannel sizes it at construction).
     * Cumulative like every other counter; epoch deltas come from
     * snapshot differencing (thermal/epoch_stats.h), so existing
     * consumers of the scalar counters see no reset ever.
     */
    std::vector<BankCounts> per_bank;

    /** Commands issued (turnaround counters excluded). */
    uint64_t total() const;

    /** Roll a channel's counters into an aggregate (DramSystem). */
    CommandCounts &operator+=(const CommandCounts &other);
};

/** Aggregate of two counter sets. */
CommandCounts operator+(CommandCounts a, const CommandCounts &b);

/**
 * One DRAM channel: ranks x banks with per-row data-state tracking.
 *
 * Ownership rule: a channel has no internal synchronization and is
 * confined to a single thread. Channels belonging to a multi-channel
 * module are owned by a DramSystem (which also confines itself to one
 * simulation thread); the parallel campaign engine gives each worker
 * its own chips/channels and never shares one across tasks. Debug
 * builds enforce this: the first issue() binds the channel to the
 * calling thread, and any later issue() from a different thread
 * panics (see debugReleaseOwner() for the rare legal hand-off).
 */
class DramChannel
{
  public:
    /**
     * Sense-amplification time after sense_p/sense_n assert before a
     * column access may use the row buffer (used by activation-class
     * CODIC commands, whose column-ready time is programmable).
     */
    static constexpr double kSenseAmplifyNs = 7.0;

    /**
     * @param config Module configuration (validated; see
     *        DramConfig::validate()).
     * @param channel_id Which of config.channels this object models;
     *        commands whose address names another channel panic.
     */
    explicit DramChannel(const DramConfig &config, int channel_id = 0);

    /** Immutable configuration. */
    const DramConfig &config() const { return config_; }

    /** Index of this channel within its module. */
    int channelId() const { return channel_id_; }

    /**
     * Release the debug-mode thread-ownership binding so the channel
     * may legally move to another thread (e.g. a campaign result
     * collected by the coordinating thread). The next issue() rebinds.
     */
    void debugReleaseOwner() { owner_bound_ = false; }

    /**
     * Register a CODIC variant (models programming the four CODIC
     * mode registers via MRS; the returned id is passed in
     * Command::codic_variant). Timing cost of the MRS commands is
     * applied when the caller issues explicit Mrs commands.
     * @return Variant id.
     */
    int registerVariant(const SignalSchedule &sched);

    /** Schedule of a registered variant. */
    const SignalSchedule &variantSchedule(int id) const;

    /**
     * Earliest cycle at which the command may legally issue,
     * considering all bank, rank, and data-bus constraints.
     */
    Cycle earliest(const Command &cmd) const;

    /**
     * Issue a command at cycle `t`.
     * @throws PanicError if `t` violates any JEDEC constraint (the
     *         continuous timing checker).
     * @return Completion cycle: when the command's effect is done
     *         (data burst end for RD/WR, bank ready for ACT/PRE/CODIC).
     */
    Cycle issue(const Command &cmd, Cycle t);

    /** Issue at the earliest legal cycle >= `not_before`. */
    Cycle issueAtEarliest(const Command &cmd, Cycle not_before,
                          Cycle *issued_at = nullptr);

    /** Data state of one row. */
    RowDataState rowState(int rank, int bank, int64_t row) const;

    /** Force a row's data state (test/workload setup). */
    void setRowState(int rank, int bank, int64_t row, RowDataState s);

    /** Set every row in the module to a given state. */
    void fillAllRows(RowDataState s);

    /** Count rows currently in a given state (whole module). */
    int64_t countRowsInState(RowDataState s) const;

    /** True if the bank has an open (activated) row. */
    bool bankActive(int rank, int bank) const
    {
        return bank_active_[bankIdx(rank, bank)] != 0;
    }

    /** Open row of a bank; undefined if not active. */
    int64_t openRow(int rank, int bank) const
    {
        return bank_open_row_[bankIdx(rank, bank)];
    }

    /** Issue counters. */
    const CommandCounts &counts() const { return counts_; }

    /**
     * Cumulative cycles the bank has held a row open up to `now`
     * (row-open residency: the static open-page power term of the
     * thermal model). Monotone in `now`; epoch deltas come from
     * snapshot differencing like the per-bank counters.
     */
    Cycle openResidency(int rank, int bank, Cycle now) const
    {
        const size_t bi = bankIdx(rank, bank);
        Cycle r = bank_open_cycles_[bi];
        if (bank_active_[bi] && now > bank_open_since_[bi])
            r += now - bank_open_since_[bi];
        return r;
    }

    /** Largest issue time seen so far (campaign end time). */
    Cycle lastIssueCycle() const { return last_issue_; }

  private:
    /** Index into the per-bank SoA arrays. */
    size_t bankIdx(int rank, int bank) const
    {
        return static_cast<size_t>(rank * config_.banks + bank);
    }

    /** Index into the flat per-row data-state array. */
    size_t rowIdx(size_t bank_index, int64_t row) const
    {
        return bank_index * static_cast<size_t>(config_.rows) +
               static_cast<size_t>(row);
    }

    /** FAW-aware earliest ACT-class issue time for a rank. */
    Cycle earliestActClass(int rank) const;

    /** Record an ACT-class issue for tRRD/tFAW accounting. */
    void noteActClass(int rank, Cycle t);

    void checkAddress(const Address &addr) const;

    /**
     * Apply an already-legal command at cycle `t`: update horizons,
     * counters, and row states. Both issue() (after its JEDEC check)
     * and issueAtEarliest() (whose `t` is legal by construction)
     * funnel here, so a scheduled issue prices earliest() once, not
     * twice.
     */
    Cycle apply(const Command &cmd, Cycle t);

    DramConfig config_;
    int channel_id_;

    // Per-bank timing state as SoA arrays indexed by bankIdx(): the
    // FR-FCFS window scan, refresh readiness check, and PreAll sweep
    // are linear passes over contiguous memory (the ramulator /
    // dramsim3 idiom) instead of strided walks over fat structs.
    std::vector<uint8_t> bank_active_;
    std::vector<int64_t> bank_open_row_;
    std::vector<Cycle> bank_next_act_;
    std::vector<Cycle> bank_next_pre_;
    std::vector<Cycle> bank_next_rdwr_;
    std::vector<Cycle> bank_next_rowclone_; //!< 2nd ACT of copy pair.
    /** Accumulated closed-episode row-open cycles per bank. */
    std::vector<Cycle> bank_open_cycles_;
    /** Open timestamp of the current episode (valid while active). */
    std::vector<Cycle> bank_open_since_;
    /** RowDataState per row, flat: [bankIdx * rows + row]. */
    std::vector<uint8_t> row_state_;

    // Per-rank horizons.
    std::vector<Cycle> rank_next_act_; //!< tRRD horizon.
    std::vector<Cycle> rank_next_any_; //!< REF/MRS blocking horizon.
    /**
     * Issue times of the last 4 ACT-class commands per rank, as a
     * fixed 4-slot circular buffer: [rank * 4 + i], with
     * faw_head_[rank] the oldest entry once faw_count_[rank] == 4.
     */
    std::vector<Cycle> faw_times_;
    std::vector<uint8_t> faw_count_;
    std::vector<uint8_t> faw_head_;

    std::vector<SignalSchedule> variants_;
    CommandCounts counts_;
    Cycle last_issue_ = 0;

    // Debug-mode single-thread ownership check (see class comment).
    bool owner_bound_ = false;
    std::thread::id owner_;

    // Channel-wide data-bus horizons.
    Cycle next_rd_start_ = 0;
    Cycle next_wr_start_ = 0;

    /** Last data-burst direction, for turnaround accounting. */
    enum class BusDir : uint8_t { None, Read, Write };
    BusDir last_bus_dir_ = BusDir::None;
};

} // namespace codic

#endif // CODIC_DRAM_CHANNEL_H
