#include "dram/channel.h"

#include <algorithm>

#include "common/logging.h"

namespace codic {

uint64_t
CommandCounts::total() const
{
    return act + pre + rd + wr + ref + mrs + codic + rowclone + lisa_rbm;
}

CommandCounts &
CommandCounts::operator+=(const CommandCounts &other)
{
    act += other.act;
    pre += other.pre;
    rd += other.rd;
    wr += other.wr;
    ref += other.ref;
    mrs += other.mrs;
    codic += other.codic;
    rowclone += other.rowclone;
    lisa_rbm += other.lisa_rbm;
    rd_wr_turnarounds += other.rd_wr_turnarounds;
    wr_rd_turnarounds += other.wr_rd_turnarounds;
    return *this;
}

CommandCounts
operator+(CommandCounts a, const CommandCounts &b)
{
    a += b;
    return a;
}

DramChannel::DramChannel(const DramConfig &config, int channel_id)
    : config_(config), channel_id_(channel_id)
{
    config_.validate();
    if (channel_id_ < 0 || channel_id_ >= config_.channels)
        fatal("channel id ", channel_id_, " outside the module's ",
              config_.channels, " channels");
    ranks_.resize(static_cast<size_t>(config_.ranks));
    banks_.resize(static_cast<size_t>(config_.ranks * config_.banks));
    for (auto &b : banks_) {
        b.row_state.assign(static_cast<size_t>(config_.rows),
                           static_cast<uint8_t>(RowDataState::Unwritten));
    }
}

int
DramChannel::registerVariant(const SignalSchedule &sched)
{
    // Model the hardware path: program the mode registers, then keep
    // the decoded schedule. Round-tripping through the register file
    // ensures only encodable schedules are accepted.
    ModeRegisterFile mrf;
    mrf.program(sched);
    variants_.push_back(mrf.decode());
    CODIC_ASSERT(variants_.back() == sched);
    return static_cast<int>(variants_.size()) - 1;
}

const SignalSchedule &
DramChannel::variantSchedule(int id) const
{
    CODIC_ASSERT(id >= 0 && static_cast<size_t>(id) < variants_.size());
    return variants_[static_cast<size_t>(id)];
}

DramChannel::BankState &
DramChannel::bank(int rank, int bank_idx)
{
    return banks_[static_cast<size_t>(rank * config_.banks + bank_idx)];
}

const DramChannel::BankState &
DramChannel::bank(int rank, int bank_idx) const
{
    return banks_[static_cast<size_t>(rank * config_.banks + bank_idx)];
}

Cycle
DramChannel::earliestActClass(const RankState &rank) const
{
    Cycle t = rank.next_act;
    if (rank.faw.size() >= 4)
        t = std::max(t, rank.faw.front() + config_.timing.tfaw);
    return t;
}

void
DramChannel::noteActClass(RankState &rank, Cycle t)
{
    rank.next_act = t + config_.timing.trrd;
    rank.faw.push_back(t);
    while (rank.faw.size() > 4)
        rank.faw.pop_front();
}

void
DramChannel::checkAddress(const Address &addr) const
{
    if (addr.channel != channel_id_) {
        panic("command for channel ", addr.channel,
              " issued on channel ", channel_id_,
              " (route through DramSystem)");
    }
    if (addr.rank < 0 || addr.rank >= config_.ranks ||
        addr.bank < 0 || addr.bank >= config_.banks ||
        addr.row < 0 || addr.row >= config_.rows ||
        addr.column < 0 || addr.column >= config_.columns) {
        panic("address out of range: rank=", addr.rank, " bank=",
              addr.bank, " row=", addr.row, " col=", addr.column);
    }
}

Cycle
DramChannel::earliest(const Command &cmd) const
{
    checkAddress(cmd.addr);
    const auto &t = config_.timing;
    const RankState &rank = ranks_[static_cast<size_t>(cmd.addr.rank)];
    const BankState &b = bank(cmd.addr.rank, cmd.addr.bank);

    switch (cmd.type) {
      case CommandType::Act: {
        if (b.active)
            panic("ACT to already-active bank ", cmd.addr.bank);
        return std::max({b.next_act, earliestActClass(rank),
                         rank.next_any});
      }
      case CommandType::Pre:
        return std::max(b.next_pre, rank.next_any);
      case CommandType::PreAll: {
        Cycle when = rank.next_any;
        for (int i = 0; i < config_.banks; ++i)
            when = std::max(when, bank(cmd.addr.rank, i).next_pre);
        return when;
      }
      case CommandType::Rd: {
        if (!b.active || b.open_row != cmd.addr.row)
            panic("RD to closed or mismatched row (open=", b.open_row,
                  " want=", cmd.addr.row, ")");
        return std::max({b.next_rdwr, next_rd_start_, rank.next_any});
      }
      case CommandType::Wr: {
        if (!b.active || b.open_row != cmd.addr.row)
            panic("WR to closed or mismatched row (open=", b.open_row,
                  " want=", cmd.addr.row, ")");
        return std::max({b.next_rdwr, next_wr_start_, rank.next_any});
      }
      case CommandType::Ref: {
        Cycle when = rank.next_any;
        for (int i = 0; i < config_.banks; ++i) {
            const BankState &bb = bank(cmd.addr.rank, i);
            if (bb.active)
                panic("REF with bank ", i, " still active");
            when = std::max(when, bb.next_act);
        }
        return when;
      }
      case CommandType::Mrs:
        return rank.next_any;
      case CommandType::Codic: {
        if (b.active)
            panic("CODIC to active bank ", cmd.addr.bank,
                  " (CODIC operates on precharged bitlines)");
        if (cmd.codic_variant < 0 ||
            static_cast<size_t>(cmd.codic_variant) >= variants_.size())
            panic("CODIC with unregistered variant ", cmd.codic_variant);
        const auto cls =
            classifySchedule(variants_[
                static_cast<size_t>(cmd.codic_variant)]);
        Cycle when = std::max(b.next_act, rank.next_any);
        // Activation-class variants draw activation current and count
        // against tRRD/tFAW; precharge-class variants do not.
        const double lat_ns = variantLatencyNs(
            variants_[static_cast<size_t>(cmd.codic_variant)]);
        (void)cls;
        if (config_.nsToCycles(lat_ns) > t.trp)
            when = std::max(when, earliestActClass(rank));
        return when;
      }
      case CommandType::RowClone: {
        if (!b.active)
            panic("ROWCLONE with no activated source row");
        return std::max({b.next_rowclone, earliestActClass(rank),
                         rank.next_any});
      }
      case CommandType::LisaRbm: {
        if (!b.active)
            panic("LISA-RBM with no activated row");
        return std::max(b.next_rdwr, rank.next_any);
      }
    }
    panic("unknown command type");
}

Cycle
DramChannel::issue(const Command &cmd, Cycle t)
{
#ifndef NDEBUG
    // Ownership rule (class comment): a channel is confined to the
    // thread that first issues on it until debugReleaseOwner().
    if (!owner_bound_) {
        owner_bound_ = true;
        owner_ = std::this_thread::get_id();
    } else if (owner_ != std::this_thread::get_id()) {
        panic("DramChannel used from two threads without a hand-off; "
              "channels are owned by one DramSystem/campaign task");
    }
#endif
    const Cycle legal = earliest(cmd);
    if (t < legal) {
        panic("JEDEC timing violation: ", cmd.str(), " issued at cycle ",
              t, " but earliest legal cycle is ", legal);
    }
    last_issue_ = std::max(last_issue_, t);

    const auto &tt = config_.timing;
    RankState &rank = ranks_[static_cast<size_t>(cmd.addr.rank)];
    BankState &b = bank(cmd.addr.rank, cmd.addr.bank);

    switch (cmd.type) {
      case CommandType::Act: {
        ++counts_.act;
        b.active = true;
        b.open_row = cmd.addr.row;
        b.next_rdwr = std::max(b.next_rdwr, t + tt.trcd);
        b.next_pre = std::max(b.next_pre, t + tt.tras);
        b.next_act = std::max(b.next_act, t + tt.trc);
        // The second activation of a RowClone FPM pair may only issue
        // once the source row is fully restored (tRAS), otherwise the
        // copy is unreliable.
        b.next_rowclone = t + tt.tras;
        noteActClass(rank, t);
        // Activating a half-Vdd row resolves it to signatures; the
        // data-state machine handles all cases.
        auto &rs = b.row_state[static_cast<size_t>(cmd.addr.row)];
        rs = static_cast<uint8_t>(
            afterVariant(VariantClass::Activate,
                         static_cast<RowDataState>(rs)));
        return t + tt.trcd;
      }
      case CommandType::Pre: {
        ++counts_.pre;
        b.active = false;
        b.open_row = -1;
        b.next_act = std::max(b.next_act, t + tt.trp);
        return t + tt.trp;
      }
      case CommandType::PreAll: {
        ++counts_.pre;
        for (int i = 0; i < config_.banks; ++i) {
            BankState &bb = bank(cmd.addr.rank, i);
            bb.active = false;
            bb.open_row = -1;
            bb.next_act = std::max(bb.next_act, t + tt.trp);
        }
        return t + tt.trp;
      }
      case CommandType::Rd: {
        ++counts_.rd;
        if (last_bus_dir_ == BusDir::Write)
            ++counts_.wr_rd_turnarounds;
        last_bus_dir_ = BusDir::Read;
        next_rd_start_ = std::max(next_rd_start_, t + tt.tccd);
        // RD-to-WR bus turnaround: write burst must not collide with
        // the read burst on the shared bus.
        next_wr_start_ =
            std::max(next_wr_start_, t + tt.tcl + tt.tbl + 2 - tt.tcwl);
        b.next_pre = std::max(b.next_pre, t + tt.trtp);
        return t + tt.tcl + tt.tbl;
      }
      case CommandType::Wr: {
        ++counts_.wr;
        if (last_bus_dir_ == BusDir::Read)
            ++counts_.rd_wr_turnarounds;
        last_bus_dir_ = BusDir::Write;
        next_wr_start_ = std::max(next_wr_start_, t + tt.tccd);
        next_rd_start_ =
            std::max(next_rd_start_, t + tt.tcwl + tt.tbl + tt.twtr);
        b.next_pre =
            std::max(b.next_pre, t + tt.tcwl + tt.tbl + tt.twr);
        b.row_state[static_cast<size_t>(cmd.addr.row)] =
            static_cast<uint8_t>(cmd.zero_fill ? RowDataState::Zeroes
                                               : RowDataState::Data);
        return t + tt.tcwl + tt.tbl + tt.twr;
      }
      case CommandType::Ref: {
        ++counts_.ref;
        rank.next_any = std::max(rank.next_any, t + tt.trfc);
        for (int i = 0; i < config_.banks; ++i) {
            BankState &bb = bank(cmd.addr.rank, i);
            bb.next_act = std::max(bb.next_act, t + tt.trfc);
        }
        return t + tt.trfc;
      }
      case CommandType::Mrs: {
        ++counts_.mrs;
        rank.next_any = std::max(rank.next_any, t + tt.tmrd);
        return t + tt.tmrd;
      }
      case CommandType::Codic: {
        ++counts_.codic;
        const SignalSchedule &sched =
            variants_[static_cast<size_t>(cmd.codic_variant)];
        const VariantClass cls = classifySchedule(sched);
        const Cycle lat = config_.nsToCycles(variantLatencyNs(sched));
        if (lat > tt.trp)
            noteActClass(rank, t);
        auto &rs = b.row_state[static_cast<size_t>(cmd.addr.row)];
        rs = static_cast<uint8_t>(
            afterVariant(cls, static_cast<RowDataState>(rs)));
        if (cls == VariantClass::Activate) {
            // An activation-class CODIC command is a real activation
            // with programmable internal timing (the Section 5.3.2
            // use case): the row opens, and columns become usable
            // once the SA has sensed and amplified - i.e. the
            // variant's own sense_p start plus amplification time,
            // instead of the fixed worst-case tRCD.
            b.active = true;
            b.open_row = cmd.addr.row;
            const auto sp = sched.pulse(Signal::SenseP);
            double ready_ns =
                static_cast<double>(sp ? sp->start_ns : 7) +
                kSenseAmplifyNs;
            if (cmd.codic_ready_ns > 0.0) {
                // Characterized override (Section 5.3.2); never
                // earlier than sense start plus a minimal latch time.
                ready_ns = std::max(
                    cmd.codic_ready_ns,
                    static_cast<double>(sp ? sp->start_ns : 7) + 3.0);
            }
            b.next_rdwr = std::max(b.next_rdwr,
                                   t + config_.nsToCycles(ready_ns));
            b.next_pre = std::max(b.next_pre, t + tt.tras);
            b.next_act = std::max(b.next_act, t + tt.trc);
            b.next_rowclone = t + tt.tras;
            return t + config_.nsToCycles(ready_ns);
        }
        b.next_act = std::max(b.next_act, t + lat);
        b.next_pre = std::max(b.next_pre, t + lat);
        return t + lat;
      }
      case CommandType::RowClone: {
        ++counts_.rowclone;
        // Second activation of an FPM copy pair: the open source
        // row's content lands in the destination row.
        const auto src_state = static_cast<RowDataState>(
            b.row_state[static_cast<size_t>(b.open_row)]);
        b.row_state[static_cast<size_t>(cmd.addr.row)] =
            static_cast<uint8_t>(src_state);
        b.open_row = cmd.addr.row;
        b.next_pre = std::max(b.next_pre, t + tt.tras);
        b.next_act = std::max(b.next_act, t + tt.trc);
        noteActClass(rank, t);
        return t + tt.tras;
      }
      case CommandType::LisaRbm: {
        ++counts_.lisa_rbm;
        // Row-buffer movement hop: short extra bank occupancy, and it
        // consumes an inter-activation (tRRD) slot on the rank since
        // the hop drives the intermediate subarray's row buffer. It
        // does not enter the tFAW window (it draws far less current
        // than a full activation).
        const Cycle trbm = config_.nsToCycles(tt.trbm_ns);
        b.next_pre = std::max(b.next_pre, t + trbm);
        b.next_rdwr = std::max(b.next_rdwr, t + trbm);
        b.next_rowclone = std::max(b.next_rowclone, t + trbm);
        rank.next_act =
            std::max(rank.next_act, t + config_.nsToCycles(tt.trbm_hold_ns));
        return t + trbm;
      }
    }
    panic("unknown command type");
}

Cycle
DramChannel::issueAtEarliest(const Command &cmd, Cycle not_before,
                             Cycle *issued_at)
{
    const Cycle t = std::max(earliest(cmd), not_before);
    if (issued_at)
        *issued_at = t;
    return issue(cmd, t);
}

RowDataState
DramChannel::rowState(int rank, int bank_idx, int64_t row) const
{
    const BankState &b = bank(rank, bank_idx);
    CODIC_ASSERT(row >= 0 && row < config_.rows);
    return static_cast<RowDataState>(
        b.row_state[static_cast<size_t>(row)]);
}

void
DramChannel::setRowState(int rank, int bank_idx, int64_t row,
                         RowDataState s)
{
    BankState &b = bank(rank, bank_idx);
    CODIC_ASSERT(row >= 0 && row < config_.rows);
    b.row_state[static_cast<size_t>(row)] = static_cast<uint8_t>(s);
}

void
DramChannel::fillAllRows(RowDataState s)
{
    for (auto &b : banks_)
        std::fill(b.row_state.begin(), b.row_state.end(),
                  static_cast<uint8_t>(s));
}

int64_t
DramChannel::countRowsInState(RowDataState s) const
{
    int64_t n = 0;
    for (const auto &b : banks_)
        for (uint8_t rs : b.row_state)
            if (rs == static_cast<uint8_t>(s))
                ++n;
    return n;
}

bool
DramChannel::bankActive(int rank, int bank_idx) const
{
    return bank(rank, bank_idx).active;
}

int64_t
DramChannel::openRow(int rank, int bank_idx) const
{
    return bank(rank, bank_idx).open_row;
}

} // namespace codic
