#include "dram/channel.h"

#include <algorithm>

#include "common/logging.h"

namespace codic {

uint64_t
CommandCounts::total() const
{
    return act + pre + rd + wr + ref + refpb + mrs + codic +
           rowclone + lisa_rbm;
}

CommandCounts &
CommandCounts::operator+=(const CommandCounts &other)
{
    act += other.act;
    pre += other.pre;
    rd += other.rd;
    wr += other.wr;
    ref += other.ref;
    refpb += other.refpb;
    mrs += other.mrs;
    codic += other.codic;
    rowclone += other.rowclone;
    lisa_rbm += other.lisa_rbm;
    rd_wr_turnarounds += other.rd_wr_turnarounds;
    wr_rd_turnarounds += other.wr_rd_turnarounds;
    refresh_overlap_cycles += other.refresh_overlap_cycles;
    // Channels may have distinct geometries in test sweeps: merge
    // index-wise up to the larger bank set.
    if (per_bank.size() < other.per_bank.size())
        per_bank.resize(other.per_bank.size());
    for (size_t i = 0; i < other.per_bank.size(); ++i)
        per_bank[i] += other.per_bank[i];
    return *this;
}

CommandCounts
operator+(CommandCounts a, const CommandCounts &b)
{
    a += b;
    return a;
}

DramChannel::DramChannel(const DramConfig &config, int channel_id)
    : config_(config), channel_id_(channel_id)
{
    config_.validate();
    if (channel_id_ < 0 || channel_id_ >= config_.channels)
        fatal("channel id ", channel_id_, " outside the module's ",
              config_.channels, " channels");
    const size_t ranks = static_cast<size_t>(config_.ranks);
    const size_t banks =
        static_cast<size_t>(config_.ranks * config_.banks);
    bank_active_.assign(banks, 0);
    bank_open_row_.assign(banks, -1);
    bank_next_act_.assign(banks, 0);
    bank_next_pre_.assign(banks, 0);
    bank_next_rdwr_.assign(banks, 0);
    bank_next_rowclone_.assign(banks, 0);
    bank_open_cycles_.assign(banks, 0);
    bank_open_since_.assign(banks, 0);
    counts_.per_bank.assign(banks, BankCounts{});
    row_state_.assign(banks * static_cast<size_t>(config_.rows),
                      static_cast<uint8_t>(RowDataState::Unwritten));
    rank_next_act_.assign(ranks, 0);
    rank_next_any_.assign(ranks, 0);
    faw_times_.assign(ranks * 4, 0);
    faw_count_.assign(ranks, 0);
    faw_head_.assign(ranks, 0);
}

int
DramChannel::registerVariant(const SignalSchedule &sched)
{
    // Model the hardware path: program the mode registers, then keep
    // the decoded schedule. Round-tripping through the register file
    // ensures only encodable schedules are accepted.
    ModeRegisterFile mrf;
    mrf.program(sched);
    variants_.push_back(mrf.decode());
    CODIC_ASSERT(variants_.back() == sched);
    return static_cast<int>(variants_.size()) - 1;
}

const SignalSchedule &
DramChannel::variantSchedule(int id) const
{
    CODIC_ASSERT(id >= 0 && static_cast<size_t>(id) < variants_.size());
    return variants_[static_cast<size_t>(id)];
}

Cycle
DramChannel::earliestActClass(int rank) const
{
    const size_t r = static_cast<size_t>(rank);
    Cycle t = rank_next_act_[r];
    if (faw_count_[r] >= 4)
        t = std::max(t, faw_times_[r * 4 + faw_head_[r]] +
                            config_.timing.tfaw);
    return t;
}

void
DramChannel::noteActClass(int rank, Cycle t)
{
    const size_t r = static_cast<size_t>(rank);
    rank_next_act_[r] = t + config_.timing.trrd;
    if (faw_count_[r] < 4) {
        faw_times_[r * 4 + ((faw_head_[r] + faw_count_[r]) & 3)] = t;
        ++faw_count_[r];
    } else {
        // Full window: the new issue replaces the oldest entry and
        // the head advances (exactly a push_back + pop_front of a
        // 4-deep queue, without the deque).
        faw_times_[r * 4 + faw_head_[r]] = t;
        faw_head_[r] = static_cast<uint8_t>((faw_head_[r] + 1) & 3);
    }
}

void
DramChannel::checkAddress(const Address &addr) const
{
    if (addr.channel != channel_id_) {
        panic("command for channel ", addr.channel,
              " issued on channel ", channel_id_,
              " (route through DramSystem)");
    }
    if (addr.rank < 0 || addr.rank >= config_.ranks ||
        addr.bank < 0 || addr.bank >= config_.banks ||
        addr.row < 0 || addr.row >= config_.rows ||
        addr.column < 0 || addr.column >= config_.columns) {
        panic("address out of range: rank=", addr.rank, " bank=",
              addr.bank, " row=", addr.row, " col=", addr.column);
    }
}

Cycle
DramChannel::earliest(const Command &cmd) const
{
    checkAddress(cmd.addr);
    const auto &t = config_.timing;
    const size_t r = static_cast<size_t>(cmd.addr.rank);
    const size_t bi = bankIdx(cmd.addr.rank, cmd.addr.bank);

    switch (cmd.type) {
      case CommandType::Act: {
        if (bank_active_[bi])
            panic("ACT to already-active bank ", cmd.addr.bank);
        return std::max({bank_next_act_[bi],
                         earliestActClass(cmd.addr.rank),
                         rank_next_any_[r]});
      }
      case CommandType::Pre:
        return std::max(bank_next_pre_[bi], rank_next_any_[r]);
      case CommandType::PreAll: {
        Cycle when = rank_next_any_[r];
        const size_t base = bankIdx(cmd.addr.rank, 0);
        for (int i = 0; i < config_.banks; ++i)
            when = std::max(when,
                            bank_next_pre_[base +
                                           static_cast<size_t>(i)]);
        return when;
      }
      case CommandType::Rd: {
        if (!bank_active_[bi] || bank_open_row_[bi] != cmd.addr.row)
            panic("RD to closed or mismatched row (open=",
                  bank_open_row_[bi], " want=", cmd.addr.row, ")");
        return std::max({bank_next_rdwr_[bi], next_rd_start_,
                         rank_next_any_[r]});
      }
      case CommandType::Wr: {
        if (!bank_active_[bi] || bank_open_row_[bi] != cmd.addr.row)
            panic("WR to closed or mismatched row (open=",
                  bank_open_row_[bi], " want=", cmd.addr.row, ")");
        return std::max({bank_next_rdwr_[bi], next_wr_start_,
                         rank_next_any_[r]});
      }
      case CommandType::Ref: {
        // Linear pass over the rank's contiguous bank slices.
        Cycle when = rank_next_any_[r];
        const size_t base = bankIdx(cmd.addr.rank, 0);
        for (int i = 0; i < config_.banks; ++i) {
            const size_t b = base + static_cast<size_t>(i);
            if (bank_active_[b])
                panic("REF with bank ", i, " still active");
            when = std::max(when, bank_next_act_[b]);
        }
        return when;
      }
      case CommandType::RefPb: {
        // REFpb occupies only the target bank: it must be precharged
        // (the controller precharges it first, like the rank REF
        // path), but sibling banks may keep rows open and keep
        // serving column traffic - that is the whole point of the
        // per-bank mode.
        if (bank_active_[bi])
            panic("REFPB with bank ", cmd.addr.bank, " still active");
        return std::max(bank_next_act_[bi], rank_next_any_[r]);
      }
      case CommandType::Mrs:
        return rank_next_any_[r];
      case CommandType::Codic: {
        if (bank_active_[bi])
            panic("CODIC to active bank ", cmd.addr.bank,
                  " (CODIC operates on precharged bitlines)");
        if (cmd.codic_variant < 0 ||
            static_cast<size_t>(cmd.codic_variant) >= variants_.size())
            panic("CODIC with unregistered variant ", cmd.codic_variant);
        const auto cls =
            classifySchedule(variants_[
                static_cast<size_t>(cmd.codic_variant)]);
        Cycle when = std::max(bank_next_act_[bi], rank_next_any_[r]);
        // Activation-class variants draw activation current and count
        // against tRRD/tFAW; precharge-class variants do not.
        const double lat_ns = variantLatencyNs(
            variants_[static_cast<size_t>(cmd.codic_variant)]);
        (void)cls;
        if (config_.nsToCycles(lat_ns) > t.trp)
            when = std::max(when, earliestActClass(cmd.addr.rank));
        return when;
      }
      case CommandType::RowClone: {
        if (!bank_active_[bi])
            panic("ROWCLONE with no activated source row");
        return std::max({bank_next_rowclone_[bi],
                         earliestActClass(cmd.addr.rank),
                         rank_next_any_[r]});
      }
      case CommandType::LisaRbm: {
        if (!bank_active_[bi])
            panic("LISA-RBM with no activated row");
        return std::max(bank_next_rdwr_[bi], rank_next_any_[r]);
      }
    }
    panic("unknown command type");
}

Cycle
DramChannel::issue(const Command &cmd, Cycle t)
{
    const Cycle legal = earliest(cmd);
    if (t < legal) {
        panic("JEDEC timing violation: ", cmd.str(), " issued at cycle ",
              t, " but earliest legal cycle is ", legal);
    }
    return apply(cmd, t);
}

Cycle
DramChannel::issueAtEarliest(const Command &cmd, Cycle not_before,
                             Cycle *issued_at)
{
    // `t` is legal by construction (>= earliest), so the JEDEC check
    // of issue() would price earliest() a second time for nothing.
    const Cycle t = std::max(earliest(cmd), not_before);
    if (issued_at)
        *issued_at = t;
    return apply(cmd, t);
}

Cycle
DramChannel::apply(const Command &cmd, Cycle t)
{
#ifndef NDEBUG
    // Ownership rule (class comment): a channel is confined to the
    // thread that first issues on it until debugReleaseOwner().
    if (!owner_bound_) {
        owner_bound_ = true;
        owner_ = std::this_thread::get_id();
    } else if (owner_ != std::this_thread::get_id()) {
        panic("DramChannel used from two threads without a hand-off; "
              "channels are owned by one DramSystem/campaign task");
    }
#endif
    last_issue_ = std::max(last_issue_, t);

    const auto &tt = config_.timing;
    const size_t r = static_cast<size_t>(cmd.addr.rank);
    const size_t bi = bankIdx(cmd.addr.rank, cmd.addr.bank);

    switch (cmd.type) {
      case CommandType::Act: {
        ++counts_.act;
        ++counts_.per_bank[bi].act;
        if (!bank_active_[bi])
            bank_open_since_[bi] = t;
        bank_active_[bi] = 1;
        bank_open_row_[bi] = cmd.addr.row;
        bank_next_rdwr_[bi] = std::max(bank_next_rdwr_[bi],
                                       t + tt.trcd);
        bank_next_pre_[bi] = std::max(bank_next_pre_[bi],
                                      t + tt.tras);
        bank_next_act_[bi] = std::max(bank_next_act_[bi], t + tt.trc);
        // The second activation of a RowClone FPM pair may only issue
        // once the source row is fully restored (tRAS), otherwise the
        // copy is unreliable.
        bank_next_rowclone_[bi] = t + tt.tras;
        noteActClass(cmd.addr.rank, t);
        // Activating a half-Vdd row resolves it to signatures; the
        // data-state machine handles all cases.
        uint8_t &rs = row_state_[rowIdx(bi, cmd.addr.row)];
        rs = static_cast<uint8_t>(
            afterVariant(VariantClass::Activate,
                         static_cast<RowDataState>(rs)));
        return t + tt.trcd;
      }
      case CommandType::Pre: {
        ++counts_.pre;
        if (bank_active_[bi] && t > bank_open_since_[bi])
            bank_open_cycles_[bi] += t - bank_open_since_[bi];
        bank_active_[bi] = 0;
        bank_open_row_[bi] = -1;
        bank_next_act_[bi] = std::max(bank_next_act_[bi], t + tt.trp);
        return t + tt.trp;
      }
      case CommandType::PreAll: {
        ++counts_.pre;
        const size_t base = bankIdx(cmd.addr.rank, 0);
        for (int i = 0; i < config_.banks; ++i) {
            const size_t b = base + static_cast<size_t>(i);
            if (bank_active_[b] && t > bank_open_since_[b])
                bank_open_cycles_[b] += t - bank_open_since_[b];
            bank_active_[b] = 0;
            bank_open_row_[b] = -1;
            bank_next_act_[b] = std::max(bank_next_act_[b],
                                         t + tt.trp);
        }
        return t + tt.trp;
      }
      case CommandType::Rd: {
        ++counts_.rd;
        ++counts_.per_bank[bi].rd;
        if (last_bus_dir_ == BusDir::Write)
            ++counts_.wr_rd_turnarounds;
        last_bus_dir_ = BusDir::Read;
        next_rd_start_ = std::max(next_rd_start_, t + tt.tccd);
        // RD-to-WR bus turnaround: write burst must not collide with
        // the read burst on the shared bus.
        next_wr_start_ =
            std::max(next_wr_start_, t + tt.tcl + tt.tbl + 2 - tt.tcwl);
        bank_next_pre_[bi] = std::max(bank_next_pre_[bi],
                                      t + tt.trtp);
        return t + tt.tcl + tt.tbl;
      }
      case CommandType::Wr: {
        ++counts_.wr;
        ++counts_.per_bank[bi].wr;
        if (last_bus_dir_ == BusDir::Read)
            ++counts_.rd_wr_turnarounds;
        last_bus_dir_ = BusDir::Write;
        next_wr_start_ = std::max(next_wr_start_, t + tt.tccd);
        next_rd_start_ =
            std::max(next_rd_start_, t + tt.tcwl + tt.tbl + tt.twtr);
        bank_next_pre_[bi] =
            std::max(bank_next_pre_[bi],
                     t + tt.tcwl + tt.tbl + tt.twr);
        row_state_[rowIdx(bi, cmd.addr.row)] =
            static_cast<uint8_t>(cmd.zero_fill ? RowDataState::Zeroes
                                               : RowDataState::Data);
        return t + tt.tcwl + tt.tbl + tt.twr;
      }
      case CommandType::Ref: {
        ++counts_.ref;
        rank_next_any_[r] = std::max(rank_next_any_[r], t + tt.trfc);
        const size_t base = bankIdx(cmd.addr.rank, 0);
        for (int i = 0; i < config_.banks; ++i) {
            const size_t b = base + static_cast<size_t>(i);
            // A rank REF internally refreshes every bank: attribute
            // one per-bank REF to each (the energy splits ref_nj
            // evenly in the thermal model).
            ++counts_.per_bank[b].ref;
            counts_.per_bank[b].refresh_cycles +=
                static_cast<uint64_t>(tt.trfc);
            bank_next_act_[b] = std::max(bank_next_act_[b],
                                         t + tt.trfc);
        }
        return t + tt.trfc;
      }
      case CommandType::RefPb: {
        ++counts_.refpb;
        ++counts_.per_bank[bi].refpb;
        counts_.per_bank[bi].refresh_cycles +=
            static_cast<uint64_t>(tt.trfcpb);
        // Overlap stat: every sibling bank that keeps a row open
        // through this refresh is bank-parallelism an all-bank REF
        // would have forfeited.
        const size_t base = bankIdx(cmd.addr.rank, 0);
        for (int i = 0; i < config_.banks; ++i) {
            const size_t b = base + static_cast<size_t>(i);
            if (b != bi && bank_active_[b])
                counts_.refresh_overlap_cycles +=
                    static_cast<uint64_t>(tt.trfcpb);
        }
        bank_next_act_[bi] = std::max(bank_next_act_[bi],
                                      t + tt.trfcpb);
        return t + tt.trfcpb;
      }
      case CommandType::Mrs: {
        ++counts_.mrs;
        rank_next_any_[r] = std::max(rank_next_any_[r], t + tt.tmrd);
        return t + tt.tmrd;
      }
      case CommandType::Codic: {
        ++counts_.codic;
        const SignalSchedule &sched =
            variants_[static_cast<size_t>(cmd.codic_variant)];
        const VariantClass cls = classifySchedule(sched);
        const Cycle lat = config_.nsToCycles(variantLatencyNs(sched));
        if (lat > tt.trp)
            noteActClass(cmd.addr.rank, t);
        uint8_t &rs = row_state_[rowIdx(bi, cmd.addr.row)];
        rs = static_cast<uint8_t>(
            afterVariant(cls, static_cast<RowDataState>(rs)));
        if (cls == VariantClass::Activate) {
            // An activation-class CODIC command is a real activation
            // with programmable internal timing (the Section 5.3.2
            // use case): the row opens, and columns become usable
            // once the SA has sensed and amplified - i.e. the
            // variant's own sense_p start plus amplification time,
            // instead of the fixed worst-case tRCD.
            if (!bank_active_[bi])
                bank_open_since_[bi] = t;
            bank_active_[bi] = 1;
            bank_open_row_[bi] = cmd.addr.row;
            const auto sp = sched.pulse(Signal::SenseP);
            double ready_ns =
                static_cast<double>(sp ? sp->start_ns : 7) +
                kSenseAmplifyNs;
            if (cmd.codic_ready_ns > 0.0) {
                // Characterized override (Section 5.3.2); never
                // earlier than sense start plus a minimal latch time.
                ready_ns = std::max(
                    cmd.codic_ready_ns,
                    static_cast<double>(sp ? sp->start_ns : 7) + 3.0);
            }
            bank_next_rdwr_[bi] =
                std::max(bank_next_rdwr_[bi],
                         t + config_.nsToCycles(ready_ns));
            bank_next_pre_[bi] = std::max(bank_next_pre_[bi],
                                          t + tt.tras);
            bank_next_act_[bi] = std::max(bank_next_act_[bi],
                                          t + tt.trc);
            bank_next_rowclone_[bi] = t + tt.tras;
            return t + config_.nsToCycles(ready_ns);
        }
        bank_next_act_[bi] = std::max(bank_next_act_[bi], t + lat);
        bank_next_pre_[bi] = std::max(bank_next_pre_[bi], t + lat);
        return t + lat;
      }
      case CommandType::RowClone: {
        ++counts_.rowclone;
        // Second activation of an FPM copy pair: the open source
        // row's content lands in the destination row.
        const auto src_state = static_cast<RowDataState>(
            row_state_[rowIdx(bi, bank_open_row_[bi])]);
        row_state_[rowIdx(bi, cmd.addr.row)] =
            static_cast<uint8_t>(src_state);
        bank_open_row_[bi] = cmd.addr.row;
        bank_next_pre_[bi] = std::max(bank_next_pre_[bi],
                                      t + tt.tras);
        bank_next_act_[bi] = std::max(bank_next_act_[bi], t + tt.trc);
        noteActClass(cmd.addr.rank, t);
        return t + tt.tras;
      }
      case CommandType::LisaRbm: {
        ++counts_.lisa_rbm;
        // Row-buffer movement hop: short extra bank occupancy, and it
        // consumes an inter-activation (tRRD) slot on the rank since
        // the hop drives the intermediate subarray's row buffer. It
        // does not enter the tFAW window (it draws far less current
        // than a full activation).
        const Cycle trbm = config_.nsToCycles(tt.trbm_ns);
        bank_next_pre_[bi] = std::max(bank_next_pre_[bi], t + trbm);
        bank_next_rdwr_[bi] = std::max(bank_next_rdwr_[bi], t + trbm);
        bank_next_rowclone_[bi] =
            std::max(bank_next_rowclone_[bi], t + trbm);
        rank_next_act_[r] =
            std::max(rank_next_act_[r],
                     t + config_.nsToCycles(tt.trbm_hold_ns));
        return t + trbm;
      }
    }
    panic("unknown command type");
}

RowDataState
DramChannel::rowState(int rank, int bank_idx, int64_t row) const
{
    CODIC_ASSERT(row >= 0 && row < config_.rows);
    return static_cast<RowDataState>(
        row_state_[rowIdx(bankIdx(rank, bank_idx), row)]);
}

void
DramChannel::setRowState(int rank, int bank_idx, int64_t row,
                         RowDataState s)
{
    CODIC_ASSERT(row >= 0 && row < config_.rows);
    row_state_[rowIdx(bankIdx(rank, bank_idx), row)] =
        static_cast<uint8_t>(s);
}

void
DramChannel::fillAllRows(RowDataState s)
{
    std::fill(row_state_.begin(), row_state_.end(),
              static_cast<uint8_t>(s));
}

int64_t
DramChannel::countRowsInState(RowDataState s) const
{
    int64_t n = 0;
    for (uint8_t rs : row_state_)
        if (rs == static_cast<uint8_t>(s))
            ++n;
    return n;
}

} // namespace codic
