/**
 * @file
 * Auto-refresh bookkeeping: tracks when REF commands are due and can
 * replay the required refreshes over a simulated interval. Campaigns
 * that model normal operation (e.g. the TCG firmware overwrite, which
 * runs with refresh enabled) account for the stolen cycles; the
 * self-destruction campaigns run at power-on before refresh starts,
 * which is why they are legally refresh-free (JEDEC requires refresh
 * only after initialization completes).
 */

#ifndef CODIC_DRAM_REFRESH_H
#define CODIC_DRAM_REFRESH_H

#include "dram/channel.h"

namespace codic {

/** Periodic refresh generator for one rank. */
class RefreshEngine
{
  public:
    /**
     * @param channel Channel to refresh.
     * @param rank Rank index to issue REF to.
     */
    RefreshEngine(DramChannel &channel, int rank);

    /** Next cycle at which a REF is due. */
    Cycle nextDue() const { return next_due_; }

    /**
     * Issue all REF commands due at or before `now`. All banks in the
     * rank must be precharged by the caller. Returns the number of
     * REFs issued.
     */
    int catchUp(Cycle now);

    /** Fraction of time consumed by refresh (tRFC / tREFI). */
    double dutyCycle() const;

  private:
    DramChannel &channel_;
    int rank_;
    Cycle next_due_;
};

} // namespace codic

#endif // CODIC_DRAM_REFRESH_H
