/**
 * @file
 * Multi-channel DRAM system: owns `config.channels` independent
 * DramChannels plus one FR-FCFS MemoryController per channel, and
 * routes every request to the owning channel through a module-wide
 * address map (channel-aware MapSchemes interleave consecutive lines
 * or row blocks across channels).
 *
 * This is the substrate the scale work builds on: channels have fully
 * independent timing state (their own banks, ranks, data buses and
 * write queues), so a channel-interleaved workload overlaps DRAM
 * access latencies across channels exactly as real hardware does,
 * while the JEDEC timing checker stays enabled on every channel.
 *
 * The system itself follows the same ownership rule as a single
 * channel: no internal synchronization, one DramSystem per simulation
 * thread (the parallel campaign engine gives each task its own).
 */

#ifndef CODIC_DRAM_SYSTEM_H
#define CODIC_DRAM_SYSTEM_H

#include <memory>
#include <vector>

#include "dram/channel.h"
#include "dram/config.h"
#include "mem/controller.h"
#include "mem/service.h"

namespace codic {

class CampaignEngine;

/** N-channel DRAM module with per-channel controllers. */
class DramSystem : public MemoryService
{
  public:
    /**
     * @param config Module configuration; config.channels channels
     *        are instantiated (validated, >= 1).
     * @param controller_config Applied to every per-channel
     *        controller (map scheme, queue depths).
     */
    explicit DramSystem(const DramConfig &config,
                        const ControllerConfig &controller_config = {});

    /** Module configuration. */
    const DramConfig &config() const { return config_; }
    const DramConfig &dramConfig() const override { return config_; }

    /** Number of channels. */
    int channelCount() const
    {
        return static_cast<int>(channels_.size());
    }

    /** One channel (timing state, counters, row data states). */
    DramChannel &channel(int i);
    const DramChannel &channel(int i) const;

    /** The channel-local controller handed out by the system. */
    MemoryController &controller(int i);

    /** Channel owning a physical address under the current map. */
    int channelOf(uint64_t phys_addr) const
    {
        return map_.channelOf(phys_addr);
    }

    // MemoryService: route each transaction to the owning channel's
    // controller. System tickets encode (channel, local ticket)
    // arithmetically, so routing a resolution back is stateless.
    Ticket submit(const MemTransaction &txn) override;
    Cycle acceptedAt(Ticket ticket) const override;
    Cycle completionOf(Ticket ticket) override;
    void retire(Ticket ticket) override;
    void onComplete(Ticket ticket, CompletionCallback fn) override;

    /** Advance every channel's scheduler to `now`. */
    size_t poll(Cycle now) override;

    /**
     * Drain every channel - queued reads/row ops and buffered
     * writes; max quiescence cycle across channels.
     */
    Cycle drainAll() override;

    /**
     * drainAll() with the independent channels stepped as campaign
     * tasks: each channel's controller drains on its own engine
     * worker (channels share no timing state, so this is the
     * no-communication parallelism the channel ownership model was
     * built for). Results reduce in channel-index order, so the
     * returned cycle - and every byte of downstream output - is
     * identical at any thread count; a 1-thread engine or a 1-channel
     * module falls back to the serial path outright.
     */
    Cycle drainAllOn(CampaignEngine &engine);

    /** poll() with channels stepped as campaign tasks (see above). */
    size_t pollOn(CampaignEngine &engine, Cycle now);

    /** Queued transactions summed over every channel. */
    size_t inFlightCount() const override;

    /** Buffered (unissued) writes summed over every channel queue. */
    size_t pendingWriteCount() const;

    /** Module-wide address map (identical in every controller). */
    const AddressMap &map() const override { return map_; }

    /**
     * Register a CODIC variant on every channel (each channel has its
     * own mode registers; the id is identical across channels).
     */
    int registerVariantAll(const SignalSchedule &sched);

    /** Per-channel issue counters, indexed by channel. */
    std::vector<CommandCounts> perChannelCounts() const;

    /**
     * Per-bank ACT/RD/WR/REF counters concatenated across channels,
     * indexed by (channel * ranks + rank) * banks + bank. Cumulative;
     * epoch deltas come from snapshot differencing (EpochStats).
     */
    std::vector<BankCounts> perBankCounts() const;

    /** Aggregate counters across all channels. */
    CommandCounts totalCounts() const;

    /**
     * Per-origin roll-ups merged across every channel's controller,
     * sorted by origin tag (deterministic at any channel count and
     * submission interleaving). See OriginCounts.
     */
    std::vector<OriginCounts> perOriginCounts() const;

    /** Largest issue cycle across all channels (campaign end time). */
    Cycle lastIssueCycle() const;

    /** Set every row of every channel to a given state. */
    void fillAllRows(RowDataState s);

    /** Count rows in a state across the whole module. */
    int64_t countRowsInState(RowDataState s) const;

  private:
    /** Pack a channel-local ticket into a system ticket. */
    Ticket packTicket(int channel, Ticket local) const;

    /** Channel / local-ticket components of a system ticket. */
    int ticketChannel(Ticket ticket) const;
    Ticket ticketLocal(Ticket ticket) const;

    DramConfig config_;
    AddressMap map_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    std::vector<std::unique_ptr<MemoryController>> controllers_;
};

} // namespace codic

#endif // CODIC_DRAM_SYSTEM_H
