/**
 * @file
 * DRAM device/module configuration: geometry and JEDEC DDR3 timing
 * parameters. Presets cover the DDR3-1600 and DDR3-1333 speed grades
 * used in the paper's evaluation (Tables 3/5/12) and the module-size
 * sweep of Figure 7 (64 MB to 64 GB).
 */

#ifndef CODIC_DRAM_CONFIG_H
#define CODIC_DRAM_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace codic {

/** Clock-cycle count type (units of tCK). */
using Cycle = int64_t;

/**
 * Memory-scheduler policy knobs (paper Table 5: 64/64-entry FR-FCFS
 * controller). The write queue decouples write acceptance from write
 * issue: accepted writes buffer until a drain episode flushes them in
 * row-hit batches, so reads keep priority on the data bus and the
 * rd<->wr bus turnaround penalty is paid once per drained burst
 * instead of once per write.
 *
 * The same policy carries the fleet's replay batching knob: how many
 * independent devices of a shard replay their DRAM footprints
 * bank-parallel from a common start cycle (see AuthService).
 *
 * The zero-value default is the "eager" legacy policy (every write
 * issues at acceptance, serial replay): the paper's published
 * numbers - most visibly the Fig. 8 secure-deallocation speedups
 * over software zeroing - were measured against that behaviour, so
 * the bare DramConfig keeps reproducing them bit-for-bit. The
 * serving stack (FleetConfig, the fleet scenarios) defaults to the
 * "batched" preset instead, and --sched flips either way.
 */
struct SchedulerPolicy
{
    /**
     * Pending-write occupancy (percent of the write queue) that
     * triggers a drain episode. 0 drains after every accepted write
     * (the legacy eager behaviour).
     */
    int drain_high_pct = 0;

    /** A drain episode stops once occupancy falls to this percent. */
    int drain_low_pct = 0;

    /**
     * Most writes coalesced into one row-hit batch: a drain picks the
     * oldest pending write and services up to this many pending
     * writes to the same row back-to-back (FR-FCFS row-hit-first over
     * the write queue).
     */
    int max_drain_batch = 1;

    /**
     * Fleet replay: requests of a shard batched into one bank-parallel
     * DramSystem replay slice (1 = serial single-request replay).
     */
    int replay_batch = 1;

    /**
     * Read-reordering window: how many read-queue heads the FR-FCFS
     * front-end considers for row-hit-first bypass. 1 = strict
     * arrival order (the legacy behaviour); larger windows let a
     * row-hit read bypass older row-miss reads (never across a row
     * op, never past an older same-row request, and a head bypassed
     * too many times is force-scheduled so reads cannot starve).
     */
    int read_window = 1;

    /**
     * Per-bank write-drain high watermark: pending writes buffered
     * for a single bank that trigger a bank-local drain episode
     * (0 = disabled). Catches a bank-hot write stream long before
     * the whole-queue percentage watermark would.
     */
    int bank_drain_high = 0;

    /** A bank-local drain stops at this per-bank occupancy. */
    int bank_drain_low = 0;

    /**
     * Auto-inject REF every tREFI (per rank). Off by default and off
     * in every named preset: the paper's self-destruction campaigns
     * legally run refresh-free at power-on, and the published
     * numbers pin that behaviour. The serving-stack studies and the
     * ablation_refresh scenario switch it on via
     * "--sched <preset>:refresh=auto".
     */
    bool auto_refresh = false;

    /**
     * With auto_refresh on: how many due REFs may be postponed while
     * read/write work is pending (JEDEC DDR3 allows up to 8).
     * 0 drains refresh eagerly (a REF issues the moment it is due).
     */
    int refresh_postpone = 8;

    /**
     * With auto_refresh on: refresh one bank at a time (REFpb, the
     * LPDDR/DDR4 fine-granularity mode) instead of the whole rank.
     * REFpb commands issue every tREFIpb = tREFI / banks, rotating
     * round-robin over the banks, and occupy only the target bank
     * for tRFCpb - the other banks keep serving reads and writes, so
     * refresh stops landing in the latency tail. Selected via the
     * "refresh=per-bank" knob value (which also turns auto_refresh
     * on); requires auto_refresh.
     */
    bool per_bank_refresh = false;

    /**
     * Priority-aware scheduling ("priority=on"): within the FR-FCFS
     * read-reordering window, an arrived request of a more urgent
     * class (lower MemTransaction::priority value) is scheduled
     * before less urgent ones, and urgent reads (priority < 0) jump
     * between write-drain batches instead of waiting for the episode
     * to finish. Starvation stays bounded: bypassing the queue head
     * - for row hits or for priority - counts against the same
     * 16-bypass aging rule, after which the head is force-scheduled
     * regardless of class. Off by default and in every pre-existing
     * preset, so priority tags stay inert unless asked for.
     */
    bool priority_sched = false;

    /** Reject inconsistent knob values with a FatalError. */
    void validate() const;

    /**
     * Named preset: "eager" (the legacy zero-value default above),
     * "batched" (75/25 watermarks, 16-deep row-hit batches, 8-deep
     * replay slices, 8-wide read window - the serving-stack
     * default), "aggressive" (90/10, 32, 16, 16-wide window,
     * 8/2 per-bank watermarks), or "serving" (the QoS preset:
     * batched watermarks tuned to 85/35, 16-wide window, per-bank
     * watermarks, refresh=auto with postpone 4, priority scheduling
     * on). Unknown names are fatal.
     */
    static SchedulerPolicy preset(const std::string &name);

    /**
     * Resolve a full --sched spec: a preset name optionally followed
     * by ":knob=value,knob=value" overrides, e.g.
     * "batched:read_window=16,refresh=auto,refresh_postpone=4".
     * Knob keys are the field names above (plus
     * "refresh=off|auto|per-bank" and "priority=off|on").
     * Unknown presets, knobs, or malformed values are fatal;
     * the assembled policy is validate()d before returning.
     */
    static SchedulerPolicy parse(const std::string &spec);

    /** Names accepted by preset(), in documentation order. */
    static std::vector<std::string> presetNames();

    /**
     * Human-readable help for `codic_run --sched help`: the preset
     * table and every knob accepted by parse().
     */
    static std::string describeKnobs();
};

/** JEDEC DDR3 timing parameters, all in clock cycles. */
struct TimingParams
{
    Cycle trcd = 11;  //!< ACT to internal RD/WR.
    Cycle trp = 11;   //!< PRE to ACT.
    Cycle tcl = 11;   //!< RD to first data (CAS latency).
    Cycle tcwl = 8;   //!< WR to first data (CAS write latency).
    Cycle tras = 28;  //!< ACT to PRE (35 ns at DDR3-1600).
    Cycle trc = 39;   //!< ACT to ACT, same bank (tRAS + tRP).
    Cycle tbl = 4;    //!< Burst duration (BL8, DDR).
    Cycle tccd = 4;   //!< Column-to-column delay.
    Cycle trrd = 5;   //!< ACT to ACT, different banks (6 ns).
    Cycle tfaw = 24;  //!< Four-activate window (30 ns, 1 KB page x8).
    Cycle twtr = 6;   //!< WR data end to RD.
    Cycle twr = 12;   //!< Write recovery (15 ns).
    Cycle trtp = 6;   //!< RD to PRE (7.5 ns).
    Cycle trefi = 6240; //!< Average refresh interval (7.8 us).
    Cycle trfc = 208; //!< Refresh cycle time (260 ns for 4 Gb).
    /**
     * Per-bank refresh cycle time (REFpb, used when
     * SchedulerPolicy::per_bank_refresh is on). JEDEC's
     * fine-granularity / per-bank grades pin tRFCpb at roughly half
     * the all-bank tRFC of the same density class; the per-bank
     * average interval tREFIpb is derived as tREFI / banks.
     */
    Cycle trfcpb = 104;
    Cycle tmrd = 4;   //!< MRS to any command.
    Cycle txp = 5;    //!< Power-down / self-refresh exit to command.

    /** LISA row-buffer-movement hop latency (ns; LISA [27]). */
    double trbm_ns = 8.0;
    /**
     * Rank-level inter-activation hold a LISA hop imposes (ns): the
     * hop drives the intermediate subarray's row buffer, occupying
     * the shared activation resources longer than tRRD alone.
     */
    double trbm_hold_ns = 26.0;
};

/** DRAM module geometry and clocking. */
struct DramConfig
{
    std::string name = "DDR3-1600";

    /** Clock period (ns); DDR3-1600 command clock is 800 MHz. */
    double tck_ns = 1.25;

    int channels = 1;     //!< Independent channels (DramSystem owns one
                          //!< DramChannel + controller per channel).
    int ranks = 1;        //!< Ranks per channel.
    int banks = 8;        //!< Banks per rank (DDR3: 8).
    int64_t rows = 65536; //!< Rows per bank.
    int columns = 128;    //!< Column bursts per row (row_bytes/burst).

    /** Row (page) size across the rank, in bytes (x8 module: 8 KB). */
    int64_t row_bytes = 8192;

    /** Bytes transferred per RD/WR burst (64-bit bus x BL8). */
    int64_t burst_bytes = 64;

    TimingParams timing;

    /** Memory-scheduler policy (write drain + fleet replay batching). */
    SchedulerPolicy scheduler;

    /** Total module capacity in bytes. */
    int64_t capacityBytes() const;

    /** Total rows in the module (across ranks and banks). */
    int64_t totalRows() const;

    /** Convert nanoseconds to (ceil) clock cycles. */
    Cycle nsToCycles(double ns) const;

    /** Convert clock cycles to nanoseconds. */
    double cyclesToNs(Cycle cycles) const;

    /**
     * Check geometry consistency (all counts >= 1, row/burst sizes
     * consistent). @throws FatalError on a bad configuration, so a
     * channels/ranks value nothing could honor is rejected loudly
     * instead of silently ignored.
     */
    void validate() const;

    /**
     * DDR3-1600 11-11-11 x8 module with the given total capacity (the
     * configuration of paper Table 5). Capacity scales the
     * rows-per-bank count and the tRFC density class; the capacity is
     * spread evenly over `channels` x `ranks`.
     * @param capacity_mb Total capacity in MB (power of two).
     * @param channels Independent channels sharing the capacity.
     * @param ranks Ranks per channel.
     */
    static DramConfig ddr3_1600(int64_t capacity_mb, int channels = 1,
                                int ranks = 1);

    /** DDR3-1333 grade (used by vendor-B modules in Table 12). */
    static DramConfig ddr3_1333(int64_t capacity_mb, int channels = 1,
                                int ranks = 1);

    /**
     * DDR4-2400 17-17-17 x8 module (16 banks per rank, 0.833 ns
     * clock). The CODIC mechanisms are speed-grade-agnostic - the
     * paper's custom row commands ride the standard command bus - so
     * DDR4 grades let the scenarios project the published DDR3
     * results onto current-generation parts.
     */
    static DramConfig ddr4_2400(int64_t capacity_mb, int channels = 1,
                                int ranks = 1);

    /** DDR4-3200 22-22-22 x8 grade (0.625 ns clock). */
    static DramConfig ddr4_3200(int64_t capacity_mb, int channels = 1,
                                int ranks = 1);

    /**
     * Named speed-grade preset for `codic_run --preset`:
     * "ddr3-1600" (the paper baseline), "ddr3-1333", "ddr4-2400" or
     * "ddr4-3200", sized like the per-grade factories above. Unknown
     * names are fatal and list the accepted grades.
     */
    static DramConfig preset(const std::string &name,
                             int64_t capacity_mb, int channels = 1,
                             int ranks = 1);

    /** Names accepted by preset(), in documentation order. */
    static std::vector<std::string> presetNames();
};

} // namespace codic

#endif // CODIC_DRAM_CONFIG_H
