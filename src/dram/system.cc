#include "dram/system.h"

#include <algorithm>

#include "common/logging.h"

namespace codic {

DramSystem::DramSystem(const DramConfig &config,
                       const ControllerConfig &controller_config)
    : config_(config), map_(config, controller_config.map_scheme)
{
    config_.validate();
    channels_.reserve(static_cast<size_t>(config_.channels));
    controllers_.reserve(static_cast<size_t>(config_.channels));
    for (int c = 0; c < config_.channels; ++c) {
        channels_.push_back(
            std::make_unique<DramChannel>(config_, c));
        controllers_.push_back(std::make_unique<MemoryController>(
            *channels_.back(), controller_config));
    }
}

DramChannel &
DramSystem::channel(int i)
{
    CODIC_ASSERT(i >= 0 && i < channelCount());
    return *channels_[static_cast<size_t>(i)];
}

const DramChannel &
DramSystem::channel(int i) const
{
    CODIC_ASSERT(i >= 0 && i < channelCount());
    return *channels_[static_cast<size_t>(i)];
}

MemoryController &
DramSystem::controller(int i)
{
    CODIC_ASSERT(i >= 0 && i < channelCount());
    return *controllers_[static_cast<size_t>(i)];
}

Cycle
DramSystem::read(uint64_t phys_addr, Cycle now)
{
    return controller(channelOf(phys_addr)).read(phys_addr, now);
}

Cycle
DramSystem::write(uint64_t phys_addr, Cycle now)
{
    return controller(channelOf(phys_addr)).write(phys_addr, now);
}

Cycle
DramSystem::rowOp(uint64_t row_addr, Cycle now, RowOpMechanism mech,
                  int64_t reserved_row)
{
    return controller(channelOf(row_addr))
        .rowOp(row_addr, now, mech, reserved_row);
}

Cycle
DramSystem::drainWrites()
{
    Cycle last = 0;
    for (auto &mc : controllers_)
        last = std::max(last, mc->drainWrites());
    return last;
}

size_t
DramSystem::pendingWriteCount() const
{
    size_t n = 0;
    for (const auto &mc : controllers_)
        n += mc->pendingWriteCount();
    return n;
}

int
DramSystem::registerVariantAll(const SignalSchedule &sched)
{
    int id = -1;
    for (auto &ch : channels_) {
        const int got = ch->registerVariant(sched);
        if (id < 0)
            id = got;
        else
            CODIC_ASSERT(got == id);
    }
    return id;
}

std::vector<CommandCounts>
DramSystem::perChannelCounts() const
{
    std::vector<CommandCounts> out;
    out.reserve(channels_.size());
    for (const auto &ch : channels_)
        out.push_back(ch->counts());
    return out;
}

CommandCounts
DramSystem::totalCounts() const
{
    CommandCounts total;
    for (const auto &ch : channels_)
        total += ch->counts();
    return total;
}

Cycle
DramSystem::lastIssueCycle() const
{
    Cycle last = 0;
    for (const auto &ch : channels_)
        last = std::max(last, ch->lastIssueCycle());
    return last;
}

void
DramSystem::fillAllRows(RowDataState s)
{
    for (auto &ch : channels_)
        ch->fillAllRows(s);
}

int64_t
DramSystem::countRowsInState(RowDataState s) const
{
    int64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->countRowsInState(s);
    return n;
}

} // namespace codic
