#include "dram/system.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "trace/recorder.h"

namespace codic {

DramSystem::DramSystem(const DramConfig &config,
                       const ControllerConfig &controller_config)
    : config_(config), map_(config, controller_config.map_scheme)
{
    config_.validate();
    channels_.reserve(static_cast<size_t>(config_.channels));
    controllers_.reserve(static_cast<size_t>(config_.channels));
    for (int c = 0; c < config_.channels; ++c) {
        channels_.push_back(
            std::make_unique<DramChannel>(config_, c));
        controllers_.push_back(std::make_unique<MemoryController>(
            *channels_.back(), controller_config));
    }
}

DramChannel &
DramSystem::channel(int i)
{
    CODIC_ASSERT(i >= 0 && i < channelCount());
    return *channels_[static_cast<size_t>(i)];
}

const DramChannel &
DramSystem::channel(int i) const
{
    CODIC_ASSERT(i >= 0 && i < channelCount());
    return *channels_[static_cast<size_t>(i)];
}

MemoryController &
DramSystem::controller(int i)
{
    CODIC_ASSERT(i >= 0 && i < channelCount());
    return *controllers_[static_cast<size_t>(i)];
}

// System tickets pack (channel, channel-local ticket) as
// (local - 1) * channels + channel + 1: a bijection, so no routing
// table is needed and kInvalidTicket (0) is never produced.

Ticket
DramSystem::packTicket(int channel, Ticket local) const
{
    return (local - 1) *
               static_cast<Ticket>(channelCount()) +
           static_cast<Ticket>(channel) + 1;
}

int
DramSystem::ticketChannel(Ticket ticket) const
{
    CODIC_ASSERT(ticket != kInvalidTicket);
    return static_cast<int>((ticket - 1) %
                            static_cast<Ticket>(channelCount()));
}

Ticket
DramSystem::ticketLocal(Ticket ticket) const
{
    return (ticket - 1) / static_cast<Ticket>(channelCount()) + 1;
}

Ticket
DramSystem::submit(const MemTransaction &txn)
{
    if (TraceRecorder::active())
        TraceRecorder::tap(txn);
    // Decode once: the coordinates route the transaction AND ride
    // into the owning controller's queue entry.
    const Address addr = map_.decode(txn.addr);
    const Ticket local = controller(addr.channel).submit(txn, addr);
    return packTicket(addr.channel, local);
}

Cycle
DramSystem::acceptedAt(Ticket ticket) const
{
    return controllers_[static_cast<size_t>(ticketChannel(ticket))]
        ->acceptedAt(ticketLocal(ticket));
}

Cycle
DramSystem::completionOf(Ticket ticket)
{
    return controller(ticketChannel(ticket))
        .completionOf(ticketLocal(ticket));
}

void
DramSystem::retire(Ticket ticket)
{
    controller(ticketChannel(ticket)).retire(ticketLocal(ticket));
}

void
DramSystem::onComplete(Ticket ticket, CompletionCallback fn)
{
    // The consumer registered against the system ticket, so the
    // channel-local firing re-translates before invoking.
    controller(ticketChannel(ticket))
        .onComplete(ticketLocal(ticket),
                    [fn = std::move(fn), ticket](Ticket, Cycle done) {
                        fn(ticket, done);
                    });
}

size_t
DramSystem::poll(Cycle now)
{
    size_t serviced = 0;
    for (auto &mc : controllers_)
        serviced += mc->poll(now);
    return serviced;
}

Cycle
DramSystem::drainAll()
{
    Cycle last = 0;
    for (auto &mc : controllers_)
        last = std::max(last, mc->drainAll());
    return last;
}

Cycle
DramSystem::drainAllOn(CampaignEngine &engine)
{
    if (engine.threads() <= 1 || channelCount() <= 1)
        return drainAll();
    // Legal thread hand-off (DramChannel class comment): release the
    // coordinating thread's ownership so each engine worker may bind
    // its channel, and release again afterwards so later serial
    // stepping on this thread rebinds cleanly.
    for (auto &ch : channels_)
        ch->debugReleaseOwner();
    std::vector<Cycle> per_channel(channels_.size(), 0);
    engine.forEach(channels_.size(), [&](size_t i) {
        per_channel[i] = controllers_[i]->drainAll();
        channels_[i]->debugReleaseOwner();
    });
    // Reduce in channel-index order: byte-identical at any thread
    // count.
    Cycle last = 0;
    for (Cycle c : per_channel)
        last = std::max(last, c);
    return last;
}

size_t
DramSystem::pollOn(CampaignEngine &engine, Cycle now)
{
    if (engine.threads() <= 1 || channelCount() <= 1)
        return poll(now);
    for (auto &ch : channels_)
        ch->debugReleaseOwner();
    std::vector<size_t> per_channel(channels_.size(), 0);
    engine.forEach(channels_.size(), [&](size_t i) {
        per_channel[i] = controllers_[i]->poll(now);
        channels_[i]->debugReleaseOwner();
    });
    size_t serviced = 0;
    for (size_t n : per_channel)
        serviced += n;
    return serviced;
}

size_t
DramSystem::inFlightCount() const
{
    size_t n = 0;
    for (const auto &mc : controllers_)
        n += mc->inFlightCount();
    return n;
}

size_t
DramSystem::pendingWriteCount() const
{
    size_t n = 0;
    for (const auto &mc : controllers_)
        n += mc->pendingWriteCount();
    return n;
}

int
DramSystem::registerVariantAll(const SignalSchedule &sched)
{
    int id = -1;
    for (auto &ch : channels_) {
        const int got = ch->registerVariant(sched);
        if (id < 0)
            id = got;
        else
            CODIC_ASSERT(got == id);
    }
    return id;
}

std::vector<CommandCounts>
DramSystem::perChannelCounts() const
{
    std::vector<CommandCounts> out;
    out.reserve(channels_.size());
    for (const auto &ch : channels_)
        out.push_back(ch->counts());
    return out;
}

std::vector<BankCounts>
DramSystem::perBankCounts() const
{
    std::vector<BankCounts> out;
    out.reserve(channels_.size() *
                static_cast<size_t>(config_.ranks * config_.banks));
    for (const auto &ch : channels_)
        for (const BankCounts &b : ch->counts().per_bank)
            out.push_back(b);
    return out;
}

CommandCounts
DramSystem::totalCounts() const
{
    CommandCounts total;
    for (const auto &ch : channels_)
        total += ch->counts();
    return total;
}

std::vector<OriginCounts>
DramSystem::perOriginCounts() const
{
    // Merge the per-channel sorted vectors by origin tag. Iterating
    // channels in index order and inserting sorted keeps the result
    // independent of how submissions interleaved across channels.
    std::vector<OriginCounts> out;
    for (const auto &ctl : controllers_) {
        for (const OriginCounts &oc : ctl->originCounts()) {
            auto it = std::lower_bound(
                out.begin(), out.end(), oc.origin,
                [](const OriginCounts &c, uint64_t o) {
                    return c.origin < o;
                });
            if (it == out.end() || it->origin != oc.origin) {
                OriginCounts fresh;
                fresh.origin = oc.origin;
                it = out.insert(it, fresh);
            }
            *it += oc;
        }
    }
    return out;
}

Cycle
DramSystem::lastIssueCycle() const
{
    Cycle last = 0;
    for (const auto &ch : channels_)
        last = std::max(last, ch->lastIssueCycle());
    return last;
}

void
DramSystem::fillAllRows(RowDataState s)
{
    for (auto &ch : channels_)
        ch->fillAllRows(s);
}

int64_t
DramSystem::countRowsInState(RowDataState s) const
{
    int64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->countRowsInState(s);
    return n;
}

} // namespace codic
