/**
 * @file
 * DRAM command set, including the CODIC command added to the DDRx
 * interface (paper Section 4.2.2) and the LISA row-buffer-movement
 * command used by the LISA-clone baseline.
 */

#ifndef CODIC_DRAM_COMMAND_H
#define CODIC_DRAM_COMMAND_H

#include <cstdint>
#include <string>

namespace codic {

/** DRAM bus commands understood by the channel model. */
enum class CommandType : uint8_t
{
    Act,      //!< Activate a row.
    Pre,      //!< Precharge one bank.
    PreAll,   //!< Precharge all banks in a rank.
    Rd,       //!< Column read burst.
    Wr,       //!< Column write burst.
    Ref,      //!< Auto-refresh (all banks of a rank).
    RefPb,    //!< Per-bank refresh (REFpb): one bank for tRFCpb.
    Mrs,      //!< Mode-register set (programs CODIC registers too).
    Codic,    //!< The new CODIC command (same format as ACT).
    RowClone, //!< In-DRAM row copy via back-to-back activation
              //!< (RowClone FPM; second activation of a copy pair).
    LisaRbm,  //!< LISA row-buffer movement hop between subarrays.
};

/** Human-readable command mnemonic. */
const char *commandName(CommandType t);

/** Bank/row/column coordinates of a command. */
struct Address
{
    int channel = 0;
    int rank = 0;
    int bank = 0;
    int64_t row = 0;
    int column = 0;

    bool operator==(const Address &) const = default;
};

/** One DRAM bus command instance. */
struct Command
{
    CommandType type = CommandType::Act;
    Address addr;

    /**
     * For Codic commands: index into the channel's registered variant
     * table (the decoded mode-register schedule).
     */
    int codic_variant = 0;

    /**
     * For Wr commands: the burst carries all-zero data (used by
     * zero-fill loops so data-state tracking can distinguish an
     * overwrite-with-zeros from a write of program data).
     */
    bool zero_fill = false;

    /**
     * For activation-class Codic commands: a characterized
     * column-ready time (ns from command issue) that overrides the
     * default sense-start + amplification estimate. This is the
     * Section 5.3.2 mechanism: because CODIC pins the internal
     * timing, the controller can count data-ready from a per-row
     * characterized value instead of the worst-case tRCD. 0 keeps
     * the default.
     */
    double codic_ready_ns = 0.0;

    std::string str() const;
};

} // namespace codic

#endif // CODIC_DRAM_COMMAND_H
