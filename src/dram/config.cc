#include "dram/config.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/logging.h"

namespace codic {

void
SchedulerPolicy::validate() const
{
    if (drain_high_pct < 0 || drain_high_pct > 100)
        fatal("SchedulerPolicy: drain_high_pct must be in [0, 100], "
              "got ", drain_high_pct);
    if (drain_low_pct < 0 || drain_low_pct > drain_high_pct)
        fatal("SchedulerPolicy: drain_low_pct must be in [0, "
              "drain_high_pct], got ", drain_low_pct, " (high ",
              drain_high_pct, ")");
    if (max_drain_batch < 1)
        fatal("SchedulerPolicy: max_drain_batch must be >= 1, got ",
              max_drain_batch);
    if (replay_batch < 1)
        fatal("SchedulerPolicy: replay_batch must be >= 1, got ",
              replay_batch);
    if (read_window < 1)
        fatal("SchedulerPolicy: read_window must be >= 1 (1 = strict "
              "arrival order), got ", read_window);
    if (bank_drain_high < 0 || bank_drain_low < 0)
        fatal("SchedulerPolicy: per-bank drain watermarks must be "
              ">= 0 (0 disables), got high ", bank_drain_high,
              " low ", bank_drain_low);
    if (bank_drain_low > bank_drain_high)
        fatal("SchedulerPolicy: bank_drain_low (", bank_drain_low,
              ") exceeds bank_drain_high (", bank_drain_high,
              "); a drain episode could never stop - set low <= "
              "high");
    if (refresh_postpone < 0 || refresh_postpone > 8)
        fatal("SchedulerPolicy: refresh_postpone must be in [0, 8] "
              "(JEDEC DDR3 allows at most 8 deferred REFs), got ",
              refresh_postpone);
    if (per_bank_refresh && !auto_refresh)
        fatal("SchedulerPolicy: per_bank_refresh requires "
              "auto_refresh; select it via refresh=per-bank (which "
              "turns both on) instead of combining refresh=off with "
              "per-bank mode");
}

SchedulerPolicy
SchedulerPolicy::preset(const std::string &name)
{
    if (name == "eager")
        return SchedulerPolicy{};
    if (name == "batched") {
        SchedulerPolicy p{75, 25, 16, 8};
        p.read_window = 8;
        return p;
    }
    if (name == "aggressive") {
        SchedulerPolicy p{90, 10, 32, 16};
        p.read_window = 16;
        p.bank_drain_high = 8;
        p.bank_drain_low = 2;
        return p;
    }
    if (name == "serving") {
        // QoS preset for mixed fleet traffic: batched-style drains
        // with higher watermarks (writes buffer longer, so urgent
        // reads see a clear bus), a wide read window for priority
        // selection to work in, refresh on with mild postponement,
        // and priority-aware scheduling enabled.
        SchedulerPolicy p{85, 35, 16, 8};
        p.read_window = 16;
        p.bank_drain_high = 8;
        p.bank_drain_low = 2;
        p.auto_refresh = true;
        p.refresh_postpone = 4;
        p.priority_sched = true;
        return p;
    }
    std::string known;
    for (const auto &n : presetNames())
        known += " " + n;
    fatal("unknown scheduler preset '", name, "'; known presets:",
          known, " (run codic_run --sched help for the knob list)");
}

SchedulerPolicy
SchedulerPolicy::parse(const std::string &spec)
{
    const size_t colon = spec.find(':');
    SchedulerPolicy policy = preset(spec.substr(0, colon));
    if (colon == std::string::npos) {
        policy.validate();
        return policy;
    }
    std::string rest = spec.substr(colon + 1);
    size_t pos = 0;
    while (pos <= rest.size()) {
        const size_t comma = rest.find(',', pos);
        const std::string item =
            rest.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        pos = comma == std::string::npos ? rest.size() + 1
                                         : comma + 1;
        const size_t eq = item.find('=');
        if (item.empty() || eq == std::string::npos ||
            eq + 1 >= item.size())
            fatal("SchedulerPolicy: malformed knob override '", item,
                  "' in --sched spec '", spec,
                  "'; expected knob=value");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "refresh") {
            if (value == "auto") {
                policy.auto_refresh = true;
                policy.per_bank_refresh = false;
            } else if (value == "per-bank") {
                policy.auto_refresh = true;
                policy.per_bank_refresh = true;
            } else if (value == "off") {
                policy.auto_refresh = false;
                policy.per_bank_refresh = false;
            } else {
                fatal("SchedulerPolicy: refresh must be 'off', "
                      "'auto', or 'per-bank', got '", value, "'");
            }
            continue;
        }
        if (key == "priority") {
            if (value == "on")
                policy.priority_sched = true;
            else if (value == "off")
                policy.priority_sched = false;
            else
                fatal("SchedulerPolicy: priority must be 'off' or "
                      "'on', got '", value, "'");
            continue;
        }
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' ||
            errno == ERANGE || v < std::numeric_limits<int>::min() ||
            v > std::numeric_limits<int>::max())
            fatal("SchedulerPolicy: knob '", key,
                  "' needs an integer value (in int range), got '",
                  value, "'");
        const int iv = static_cast<int>(v);
        if (key == "drain_high_pct")
            policy.drain_high_pct = iv;
        else if (key == "drain_low_pct")
            policy.drain_low_pct = iv;
        else if (key == "max_drain_batch")
            policy.max_drain_batch = iv;
        else if (key == "replay_batch")
            policy.replay_batch = iv;
        else if (key == "read_window")
            policy.read_window = iv;
        else if (key == "bank_drain_high")
            policy.bank_drain_high = iv;
        else if (key == "bank_drain_low")
            policy.bank_drain_low = iv;
        else if (key == "refresh_postpone")
            policy.refresh_postpone = iv;
        else
            fatal("SchedulerPolicy: unknown knob '", key,
                  "' in --sched spec '", spec,
                  "' (run codic_run --sched help for the knob "
                  "list)");
    }
    policy.validate();
    return policy;
}

std::vector<std::string>
SchedulerPolicy::presetNames()
{
    return {"eager", "batched", "aggressive", "serving"};
}

std::string
SchedulerPolicy::describeKnobs()
{
    return
        "scheduler presets (--sched NAME[:knob=value,...]):\n"
        "  eager       legacy policy pinning the paper numbers: every\n"
        "              write issues at acceptance, strict arrival-order\n"
        "              reads, serial fleet replay, refresh off\n"
        "  batched     serving-stack default: 75/25 drain watermarks,\n"
        "              16-deep row-hit drain batches, 8-deep replay\n"
        "              slices, 8-wide read-reordering window\n"
        "  aggressive  90/10 watermarks, 32-deep row-hit batches,\n"
        "              16-deep replay slices, 16-wide read window,\n"
        "              8/2 per-bank drain watermarks\n"
        "  serving     QoS preset for mixed fleet traffic: 85/35\n"
        "              watermarks, 16-wide read window, 8/2 per-bank\n"
        "              watermarks, refresh=auto with postpone 4, and\n"
        "              priority=on (urgent reads preempt background\n"
        "              traffic within the 16-bypass starvation bound)\n"
        "\n"
        "knob overrides (appended as :knob=value,knob=value):\n"
        "  drain_high_pct=N    write-queue % occupancy starting a drain\n"
        "                      episode (0 = drain at every write)\n"
        "  drain_low_pct=N     % occupancy where a drain episode stops\n"
        "  max_drain_batch=N   same-row writes coalesced per drain batch\n"
        "  replay_batch=N      fleet shard requests replayed bank-parallel\n"
        "  read_window=N       read-queue heads considered for row-hit\n"
        "                      bypass (1 = strict arrival order)\n"
        "  bank_drain_high=N   per-bank pending writes triggering a\n"
        "                      bank-local drain (0 = disabled)\n"
        "  bank_drain_low=N    per-bank occupancy where that drain stops\n"
        "  refresh=off|auto|per-bank\n"
        "                      controller-injected refresh: 'auto' = one\n"
        "                      all-bank REF per rank every tREFI;\n"
        "                      'per-bank' = REFpb every tREFIpb\n"
        "                      (tREFI/banks), round-robin over the banks,\n"
        "                      occupying only the target bank for tRFCpb\n"
        "  refresh_postpone=N  due REFs deferrable while work is pending\n"
        "                      (JEDEC DDR3: at most 8)\n"
        "  priority=off|on     priority-aware scheduling: arrived requests\n"
        "                      of a more urgent class (lower\n"
        "                      MemTransaction::priority) are scheduled\n"
        "                      first within the read window, and urgent\n"
        "                      reads (priority < 0) jump between\n"
        "                      write-drain batches; head bypasses still\n"
        "                      age out after 16, bounding starvation\n"
        "\n"
        "example: --sched batched:refresh=auto,refresh_postpone=4\n";
}

int64_t
DramConfig::capacityBytes() const
{
    return static_cast<int64_t>(channels) * ranks * banks * rows *
           row_bytes;
}

int64_t
DramConfig::totalRows() const
{
    return static_cast<int64_t>(channels) * ranks * banks * rows;
}

Cycle
DramConfig::nsToCycles(double ns) const
{
    return static_cast<Cycle>(std::ceil(ns / tck_ns - 1e-9));
}

double
DramConfig::cyclesToNs(Cycle cycles) const
{
    return static_cast<double>(cycles) * tck_ns;
}

void
DramConfig::validate() const
{
    if (channels < 1)
        fatal("DramConfig '", name, "': channels must be >= 1, got ",
              channels);
    if (ranks < 1)
        fatal("DramConfig '", name, "': ranks must be >= 1, got ",
              ranks);
    if (banks < 1 || rows < 1 || columns < 1)
        fatal("DramConfig '", name, "': empty geometry (banks=", banks,
              " rows=", rows, " columns=", columns, ")");
    if (static_cast<int64_t>(columns) * burst_bytes != row_bytes)
        fatal("DramConfig '", name, "': columns * burst_bytes (",
              static_cast<int64_t>(columns) * burst_bytes,
              ") != row_bytes (", row_bytes, ")");
    if (tck_ns <= 0.0)
        fatal("DramConfig '", name, "': non-positive clock period");
    if (timing.trefi <= 0)
        fatal("DramConfig '", name, "': tREFI must be > 0 cycles, got ",
              timing.trefi, "; refresh-aware scheduling derives the "
              "REF cadence from it (DDR3-1600 default: 6240 = 7.8 us)");
    if (timing.trfc <= 0)
        fatal("DramConfig '", name, "': tRFC must be > 0 cycles, got ",
              timing.trfc, "; a REF must occupy the rank for a "
              "positive refresh cycle time (4 Gb DDR3 default: 208 = "
              "260 ns)");
    if (timing.trfcpb <= 0 || timing.trfcpb > timing.trfc)
        fatal("DramConfig '", name, "': tRFCpb must be in (0, tRFC], "
              "got ", timing.trfcpb, " (tRFC ", timing.trfc,
              "); a per-bank refresh is strictly cheaper than the "
              "all-bank REF of the same density class");
    if (scheduler.per_bank_refresh && timing.trefi / banks <= 0)
        fatal("DramConfig '", name, "': per-bank refresh needs "
              "tREFIpb = tREFI / banks >= 1 cycle, got tREFI ",
              timing.trefi, " over ", banks, " banks");
    scheduler.validate();
}

namespace {

/** tRFC by device density (JEDEC DDR3): ns. */
double
trfcNsForChipGb(double chip_gb)
{
    if (chip_gb <= 1.0)
        return 110.0;
    if (chip_gb <= 2.0)
        return 160.0;
    if (chip_gb <= 4.0)
        return 260.0;
    return 350.0;
}

void
sizeModule(DramConfig &cfg, int64_t capacity_mb, int channels,
           int ranks)
{
    CODIC_ASSERT(capacity_mb > 0);
    if (channels < 1 || ranks < 1)
        fatal("module geometry needs channels >= 1 and ranks >= 1");
    cfg.channels = channels;
    cfg.ranks = ranks;
    const int64_t capacity = capacity_mb * 1024 * 1024;
    const int64_t per_bank =
        capacity / (static_cast<int64_t>(channels) * ranks * cfg.banks);
    cfg.rows = per_bank / cfg.row_bytes;
    if (cfg.rows <= 0)
        fatal("module capacity ", capacity_mb,
              " MB too small for geometry");
    // A x8 module spreads a rank over 8 chips; chip density is
    // capacity / (channels * ranks * 8 chips).
    const double chip_gb = static_cast<double>(capacity) /
                           (static_cast<int64_t>(channels) * ranks * 8) /
                           (1 << 30) * 8.0;
    cfg.timing.trfc = cfg.nsToCycles(trfcNsForChipGb(chip_gb));
    // JEDEC per-bank grades pin tRFCpb at roughly half the all-bank
    // tRFC of the same density class.
    cfg.timing.trfcpb =
        cfg.nsToCycles(trfcNsForChipGb(chip_gb) * 0.5);
    cfg.validate();
}

} // namespace

DramConfig
DramConfig::ddr3_1600(int64_t capacity_mb, int channels, int ranks)
{
    DramConfig cfg;
    cfg.name = "DDR3-1600 11-11-11 x8 " + std::to_string(capacity_mb) +
               "MB";
    cfg.tck_ns = 1.25;
    sizeModule(cfg, capacity_mb, channels, ranks);
    return cfg;
}

DramConfig
DramConfig::ddr3_1333(int64_t capacity_mb, int channels, int ranks)
{
    DramConfig cfg;
    cfg.name = "DDR3-1333 9-9-9 x8 " + std::to_string(capacity_mb) + "MB";
    cfg.tck_ns = 1.5;
    TimingParams &t = cfg.timing;
    t.trcd = t.trp = t.tcl = 9;
    t.tcwl = 7;
    t.tras = cfg.nsToCycles(36.0);
    t.trc = t.tras + t.trp;
    t.trrd = cfg.nsToCycles(6.0);
    t.tfaw = cfg.nsToCycles(30.0);
    t.twr = cfg.nsToCycles(15.0);
    t.trtp = cfg.nsToCycles(7.5);
    t.trefi = cfg.nsToCycles(7800.0);
    sizeModule(cfg, capacity_mb, channels, ranks);
    return cfg;
}

namespace {

/**
 * Fields common to the DDR4 grades: 16 banks per rank, and the
 * analog timings that JEDEC specifies in nanoseconds (so their cycle
 * counts derive from the grade's clock, exactly like ddr3_1333).
 * tRRD/tWTR/tCCD use the same-bank-group (_L) values - the channel
 * model does not track bank groups, and the _L values are the
 * conservative legal bound for any bank pair.
 */
void
applyDdr4CommonTimings(DramConfig &cfg)
{
    cfg.banks = 16;
    TimingParams &t = cfg.timing;
    t.tras = cfg.nsToCycles(32.0);
    t.trc = t.tras + t.trp;
    t.trrd = cfg.nsToCycles(4.9);
    t.tfaw = cfg.nsToCycles(21.0);
    t.twtr = cfg.nsToCycles(7.5);
    t.twr = cfg.nsToCycles(15.0);
    t.trtp = cfg.nsToCycles(7.5);
    t.trefi = cfg.nsToCycles(7800.0);
}

} // namespace

DramConfig
DramConfig::ddr4_2400(int64_t capacity_mb, int channels, int ranks)
{
    DramConfig cfg;
    cfg.name = "DDR4-2400 17-17-17 x8 " + std::to_string(capacity_mb) +
               "MB";
    cfg.tck_ns = 0.833;
    TimingParams &t = cfg.timing;
    t.trcd = t.trp = t.tcl = 17;
    t.tcwl = 12;
    t.tccd = 6;
    applyDdr4CommonTimings(cfg);
    sizeModule(cfg, capacity_mb, channels, ranks);
    return cfg;
}

DramConfig
DramConfig::ddr4_3200(int64_t capacity_mb, int channels, int ranks)
{
    DramConfig cfg;
    cfg.name = "DDR4-3200 22-22-22 x8 " + std::to_string(capacity_mb) +
               "MB";
    cfg.tck_ns = 0.625;
    TimingParams &t = cfg.timing;
    t.trcd = t.trp = t.tcl = 22;
    t.tcwl = 16;
    t.tccd = 8;
    applyDdr4CommonTimings(cfg);
    sizeModule(cfg, capacity_mb, channels, ranks);
    return cfg;
}

DramConfig
DramConfig::preset(const std::string &name, int64_t capacity_mb,
                   int channels, int ranks)
{
    if (name == "ddr3-1600")
        return ddr3_1600(capacity_mb, channels, ranks);
    if (name == "ddr3-1333")
        return ddr3_1333(capacity_mb, channels, ranks);
    if (name == "ddr4-2400")
        return ddr4_2400(capacity_mb, channels, ranks);
    if (name == "ddr4-3200")
        return ddr4_3200(capacity_mb, channels, ranks);
    std::string known;
    for (const auto &n : presetNames())
        known += " " + n;
    fatal("unknown DRAM preset '", name, "'; known presets:", known);
}

std::vector<std::string>
DramConfig::presetNames()
{
    return {"ddr3-1600", "ddr3-1333", "ddr4-2400", "ddr4-3200"};
}

} // namespace codic
