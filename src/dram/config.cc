#include "dram/config.h"

#include <cmath>

#include "common/logging.h"

namespace codic {

void
SchedulerPolicy::validate() const
{
    if (drain_high_pct < 0 || drain_high_pct > 100)
        fatal("SchedulerPolicy: drain_high_pct must be in [0, 100], "
              "got ", drain_high_pct);
    if (drain_low_pct < 0 || drain_low_pct > drain_high_pct)
        fatal("SchedulerPolicy: drain_low_pct must be in [0, "
              "drain_high_pct], got ", drain_low_pct, " (high ",
              drain_high_pct, ")");
    if (max_drain_batch < 1)
        fatal("SchedulerPolicy: max_drain_batch must be >= 1, got ",
              max_drain_batch);
    if (replay_batch < 1)
        fatal("SchedulerPolicy: replay_batch must be >= 1, got ",
              replay_batch);
}

SchedulerPolicy
SchedulerPolicy::preset(const std::string &name)
{
    if (name == "eager")
        return SchedulerPolicy{};
    if (name == "batched")
        return SchedulerPolicy{75, 25, 16, 8};
    if (name == "aggressive")
        return SchedulerPolicy{90, 10, 32, 16};
    std::string known;
    for (const auto &n : presetNames())
        known += " " + n;
    fatal("unknown scheduler preset '", name, "'; known presets:",
          known);
}

std::vector<std::string>
SchedulerPolicy::presetNames()
{
    return {"eager", "batched", "aggressive"};
}

int64_t
DramConfig::capacityBytes() const
{
    return static_cast<int64_t>(channels) * ranks * banks * rows *
           row_bytes;
}

int64_t
DramConfig::totalRows() const
{
    return static_cast<int64_t>(channels) * ranks * banks * rows;
}

Cycle
DramConfig::nsToCycles(double ns) const
{
    return static_cast<Cycle>(std::ceil(ns / tck_ns - 1e-9));
}

double
DramConfig::cyclesToNs(Cycle cycles) const
{
    return static_cast<double>(cycles) * tck_ns;
}

void
DramConfig::validate() const
{
    if (channels < 1)
        fatal("DramConfig '", name, "': channels must be >= 1, got ",
              channels);
    if (ranks < 1)
        fatal("DramConfig '", name, "': ranks must be >= 1, got ",
              ranks);
    if (banks < 1 || rows < 1 || columns < 1)
        fatal("DramConfig '", name, "': empty geometry (banks=", banks,
              " rows=", rows, " columns=", columns, ")");
    if (static_cast<int64_t>(columns) * burst_bytes != row_bytes)
        fatal("DramConfig '", name, "': columns * burst_bytes (",
              static_cast<int64_t>(columns) * burst_bytes,
              ") != row_bytes (", row_bytes, ")");
    if (tck_ns <= 0.0)
        fatal("DramConfig '", name, "': non-positive clock period");
    scheduler.validate();
}

namespace {

/** tRFC by device density (JEDEC DDR3): ns. */
double
trfcNsForChipGb(double chip_gb)
{
    if (chip_gb <= 1.0)
        return 110.0;
    if (chip_gb <= 2.0)
        return 160.0;
    if (chip_gb <= 4.0)
        return 260.0;
    return 350.0;
}

void
sizeModule(DramConfig &cfg, int64_t capacity_mb, int channels,
           int ranks)
{
    CODIC_ASSERT(capacity_mb > 0);
    if (channels < 1 || ranks < 1)
        fatal("module geometry needs channels >= 1 and ranks >= 1");
    cfg.channels = channels;
    cfg.ranks = ranks;
    const int64_t capacity = capacity_mb * 1024 * 1024;
    const int64_t per_bank =
        capacity / (static_cast<int64_t>(channels) * ranks * cfg.banks);
    cfg.rows = per_bank / cfg.row_bytes;
    if (cfg.rows <= 0)
        fatal("module capacity ", capacity_mb,
              " MB too small for geometry");
    // A x8 module spreads a rank over 8 chips; chip density is
    // capacity / (channels * ranks * 8 chips).
    const double chip_gb = static_cast<double>(capacity) /
                           (static_cast<int64_t>(channels) * ranks * 8) /
                           (1 << 30) * 8.0;
    cfg.timing.trfc = cfg.nsToCycles(trfcNsForChipGb(chip_gb));
    cfg.validate();
}

} // namespace

DramConfig
DramConfig::ddr3_1600(int64_t capacity_mb, int channels, int ranks)
{
    DramConfig cfg;
    cfg.name = "DDR3-1600 11-11-11 x8 " + std::to_string(capacity_mb) +
               "MB";
    cfg.tck_ns = 1.25;
    sizeModule(cfg, capacity_mb, channels, ranks);
    return cfg;
}

DramConfig
DramConfig::ddr3_1333(int64_t capacity_mb, int channels, int ranks)
{
    DramConfig cfg;
    cfg.name = "DDR3-1333 9-9-9 x8 " + std::to_string(capacity_mb) + "MB";
    cfg.tck_ns = 1.5;
    TimingParams &t = cfg.timing;
    t.trcd = t.trp = t.tcl = 9;
    t.tcwl = 7;
    t.tras = cfg.nsToCycles(36.0);
    t.trc = t.tras + t.trp;
    t.trrd = cfg.nsToCycles(6.0);
    t.tfaw = cfg.nsToCycles(30.0);
    t.twr = cfg.nsToCycles(15.0);
    t.trtp = cfg.nsToCycles(7.5);
    t.trefi = cfg.nsToCycles(7800.0);
    sizeModule(cfg, capacity_mb, channels, ranks);
    return cfg;
}

} // namespace codic
