/**
 * @file
 * Memory transactions: the request currency of the redesigned
 * MemoryService API. A caller builds a MemTransaction (read, write,
 * or bulk row operation, stamped with its arrival cycle, a priority,
 * and an origin tag), submits it, and receives a Ticket. The
 * controller owns bounded read and write queues behind submit() and
 * resolves tickets on demand - see mem/service.h for the service
 * contract and the blocking shim kept for the paper campaigns.
 */

#ifndef CODIC_MEM_TRANSACTION_H
#define CODIC_MEM_TRANSACTION_H

#include <cstdint>

#include "dram/config.h"

namespace codic {

/** Row-op mechanisms usable for bulk in-DRAM operations. */
enum class RowOpMechanism
{
    CodicDet,  //!< One CODIC-det command per row.
    RowClone,  //!< ACT(source) + RowClone(dst) + PRE.
    LisaClone, //!< ACT(source) + LISA hop + RowClone(dst) + PRE.
};

/** Transaction kinds a MemoryService accepts. */
enum class TxnKind : uint8_t
{
    Read,  //!< One burst read; completion = data burst end.
    Write, //!< One burst write; buffered, drains per SchedulerPolicy.
    RowOp, //!< Bulk row operation (secure deallocation, TRNG, PUF).
};

/**
 * Handle for a submitted transaction. Tickets are dense positive
 * integers, unique per service instance; kInvalidTicket (0) never
 * names a transaction.
 */
using Ticket = uint64_t;

constexpr Ticket kInvalidTicket = 0;

/** One memory request, as submitted to a MemoryService. */
struct MemTransaction
{
    TxnKind kind = TxnKind::Read;

    /** Physical byte address (any address in the row for RowOp). */
    uint64_t addr = 0;

    /** Cycle the request arrives at the controller. */
    Cycle arrival = 0;

    /**
     * Scheduling priority (lower = more urgent; 0 = the default
     * best-effort class, negative values are the urgent classes).
     * Inert unless SchedulerPolicy::priority_sched is on; then the
     * FR-FCFS front-end schedules arrived requests of the most
     * urgent class present in its read window first, and urgent
     * reads (priority < 0) jump between write-drain batches. The
     * 16-bypass aging rule bounds how long any class can be held
     * back (see MemoryController).
     */
    int priority = 0;

    /**
     * Origin tag: who issued the request (core region base, fleet
     * device id, ...). Never interpreted by the scheduler; part of
     * the submission contract for future per-origin policies.
     */
    uint64_t origin = 0;

    /** RowOp only: the in-DRAM mechanism to use. */
    RowOpMechanism mech = RowOpMechanism::CodicDet;

    /** RowOp only: reserved zero-source row for clone mechanisms. */
    int64_t reserved_row = 0;

    static MemTransaction makeRead(uint64_t addr, Cycle arrival,
                                   uint64_t origin = 0,
                                   int priority = 0)
    {
        MemTransaction t;
        t.kind = TxnKind::Read;
        t.addr = addr;
        t.arrival = arrival;
        t.origin = origin;
        t.priority = priority;
        return t;
    }

    static MemTransaction makeWrite(uint64_t addr, Cycle arrival,
                                    uint64_t origin = 0)
    {
        MemTransaction t;
        t.kind = TxnKind::Write;
        t.addr = addr;
        t.arrival = arrival;
        t.origin = origin;
        return t;
    }

    static MemTransaction makeRowOp(uint64_t addr, Cycle arrival,
                                    RowOpMechanism mech,
                                    int64_t reserved_row = 0,
                                    uint64_t origin = 0,
                                    int priority = 0)
    {
        MemTransaction t;
        t.kind = TxnKind::RowOp;
        t.addr = addr;
        t.arrival = arrival;
        t.mech = mech;
        t.reserved_row = reserved_row;
        t.origin = origin;
        t.priority = priority;
        return t;
    }
};

} // namespace codic

#endif // CODIC_MEM_TRANSACTION_H
