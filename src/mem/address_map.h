/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * A scheme is a permutation of the five coordinate fields (channel,
 * rank, row, bank, column) from most- to least-significant position
 * above the burst offset; decode/encode walk the permutation, so
 * every scheme is round-trip invertible by construction.
 *
 * The default mapping is row:bank:column (RoBaCo): consecutive cache
 * lines walk through a row, then banks interleave at row granularity.
 * This keeps row-sequential streams (the zeroing loops of the TCG and
 * secure-deallocation evaluations) as row hits while spreading
 * independent rows across banks for parallelism. Channel-aware
 * schemes additionally interleave across channels at burst or
 * row-block granularity so sequential streams exercise every channel
 * of a DramSystem.
 */

#ifndef CODIC_MEM_ADDRESS_MAP_H
#define CODIC_MEM_ADDRESS_MAP_H

#include <array>
#include <cstdint>
#include <vector>

#include "dram/command.h"
#include "dram/config.h"

namespace codic {

/**
 * Interleaving granularity options. Names list fields from most- to
 * least-significant; channel and rank sit above the named fields
 * when a name omits them (the legacy single-channel layouts).
 */
enum class MapScheme
{
    RowBankColumn,        //!< ch:rank:row:bank:col (bank interleave per row).
    BankRowColumn,        //!< ch:rank:bank:row:col (contiguous per bank).
    RowBankColumnChannel, //!< rank:row:bank:col:ch (line interleave across channels).
    RowChannelBankColumn, //!< rank:row:ch:bank:col (bank-block interleave across channels).
    RowBankRankColumn,    //!< ch:row:bank:rank:col (line interleave across ranks).
};

/** Display name of a scheme. */
const char *mapSchemeName(MapScheme s);

/** All supported schemes (test sweeps, CLI listings). */
const std::vector<MapScheme> &allMapSchemes();

/** Maps physical byte addresses to DRAM coordinates and back. */
class AddressMap
{
  public:
    AddressMap(const DramConfig &config,
               MapScheme scheme = MapScheme::RowBankColumn);

    /** Decompose a physical byte address. */
    Address decode(uint64_t phys_addr) const;

    /** Recompose a physical byte address (inverse of decode). */
    uint64_t encode(const Address &addr) const;

    /** Channel owning a physical byte address. */
    int channelOf(uint64_t phys_addr) const;

    /** The scheme in use. */
    MapScheme scheme() const { return scheme_; }

    /** Bytes covered by one row across the rank. */
    int64_t rowBytes() const { return config_.row_bytes; }

    /** Bytes per column burst. */
    int64_t burstBytes() const { return config_.burst_bytes; }

    /** Total mapped capacity in bytes. */
    int64_t capacityBytes() const { return config_.capacityBytes(); }

  private:
    /** Coordinate fields, in decode (LSB-first) order per scheme. */
    enum class Field : uint8_t { Channel, Rank, Bank, Row, Column };

    uint64_t fieldSize(Field f) const;
    static std::array<Field, 5> fieldOrder(MapScheme s);

    DramConfig config_;
    MapScheme scheme_;
    std::array<Field, 5> order_; //!< LSB-first field order.

    /** Field sizes in order_ order, cached off the config. */
    std::array<uint64_t, 5> sizes_{};

    /**
     * Power-of-two fast path: every real module geometry (and the
     * burst size) is a power of two, so decode's per-field div/mod
     * chain collapses to shifts and masks. Falls back to the generic
     * chain for exotic test geometries.
     */
    bool pow2_ = false;
    int burst_shift_ = 0;
    std::array<int, 5> shift_{};
    std::array<uint64_t, 5> mask_{};
};

} // namespace codic

#endif // CODIC_MEM_ADDRESS_MAP_H
