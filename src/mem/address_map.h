/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * The default mapping is row:bank:column (RoBaCo): consecutive cache
 * lines walk through a row, then banks interleave at row granularity.
 * This keeps row-sequential streams (the zeroing loops of the TCG and
 * secure-deallocation evaluations) as row hits while spreading
 * independent rows across banks for parallelism.
 */

#ifndef CODIC_MEM_ADDRESS_MAP_H
#define CODIC_MEM_ADDRESS_MAP_H

#include <cstdint>

#include "dram/command.h"
#include "dram/config.h"

namespace codic {

/** Interleaving granularity options. */
enum class MapScheme
{
    RowBankColumn,  //!< row : bank : column (bank interleave per row).
    BankRowColumn,  //!< bank : row : column (contiguous per bank).
};

/** Maps physical byte addresses to DRAM coordinates and back. */
class AddressMap
{
  public:
    AddressMap(const DramConfig &config,
               MapScheme scheme = MapScheme::RowBankColumn);

    /** Decompose a physical byte address. */
    Address decode(uint64_t phys_addr) const;

    /** Recompose a physical byte address (inverse of decode). */
    uint64_t encode(const Address &addr) const;

    /** Bytes covered by one row across the rank. */
    int64_t rowBytes() const { return config_.row_bytes; }

    /** Bytes per column burst. */
    int64_t burstBytes() const { return config_.burst_bytes; }

    /** Total mapped capacity in bytes. */
    int64_t capacityBytes() const { return config_.capacityBytes(); }

  private:
    DramConfig config_;
    MapScheme scheme_;
};

} // namespace codic

#endif // CODIC_MEM_ADDRESS_MAP_H
