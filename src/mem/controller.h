/**
 * @file
 * FR-FCFS memory controller (paper Table 5: 64/64-entry read/write
 * queues, FR-FCFS scheduling [119, 176]) over the cycle-accurate
 * DRAM channel.
 *
 * Reads are serviced with row-hit-first priority and block the
 * requester until the data burst completes; writes are accepted into
 * a bounded write queue and drained in row-hit batches. When the
 * write queue is full, acceptance stalls until a slot frees, which is
 * exactly the back-pressure that bounds software-zeroing throughput
 * in the TCG and secure-deallocation evaluations.
 */

#ifndef CODIC_MEM_CONTROLLER_H
#define CODIC_MEM_CONTROLLER_H

#include <cstdint>
#include <deque>

#include "mem/address_map.h"
#include "dram/channel.h"

namespace codic {

/** Controller configuration (paper Table 5 defaults). */
struct ControllerConfig
{
    int read_queue_entries = 64;
    int write_queue_entries = 64;
    MapScheme map_scheme = MapScheme::RowBankColumn;
};

/** Row-op mechanisms usable for bulk in-DRAM operations. */
enum class RowOpMechanism
{
    CodicDet,  //!< One CODIC-det command per row.
    RowClone,  //!< ACT(source) + RowClone(dst) + PRE.
    LisaClone, //!< ACT(source) + LISA hop + RowClone(dst) + PRE.
};

/**
 * Memory controller front-end.
 *
 * The controller is simulated lazily: each request is pushed through
 * the channel when presented, with all JEDEC constraints enforced by
 * DramChannel. FR-FCFS behaviour emerges from the open-row policy:
 * the controller leaves rows open and only precharges on a conflict.
 */
class MemoryController
{
  public:
    MemoryController(DramChannel &channel,
                     const ControllerConfig &config = {});

    /**
     * Service a read.
     * @param phys_addr Physical byte address.
     * @param now Cycle the request arrives.
     * @return Cycle the data burst completes (requester unblocks).
     */
    Cycle read(uint64_t phys_addr, Cycle now);

    /**
     * Accept a write into the write queue (fire-and-forget for the
     * requester).
     * @return Cycle the write is accepted (== now unless the queue is
     *         full, in which case acceptance stalls).
     */
    Cycle write(uint64_t phys_addr, Cycle now);

    /**
     * Cycle at which all currently queued writes will have drained.
     */
    Cycle drainWrites();

    /**
     * Execute a bulk row operation (deterministic overwrite of one
     * row) with the selected mechanism. Used by secure deallocation.
     * @param row_addr Any physical address within the target row.
     * @param now Earliest issue cycle.
     * @param mech In-DRAM mechanism to use.
     * @param reserved_row Row index (same bank) holding the zero
     *        source for clone-based mechanisms.
     * @return Completion cycle.
     */
    Cycle rowOp(uint64_t row_addr, Cycle now, RowOpMechanism mech,
                int64_t reserved_row = 0);

    /** The address map in use. */
    const AddressMap &map() const { return map_; }

    /** Underlying channel (stats, config). */
    DramChannel &channel() { return channel_; }

  private:
    /** Ensure `addr`'s row is open; returns cycle row is usable. */
    Cycle openRowFor(const Address &addr, Cycle now);

    DramChannel &channel_;
    ControllerConfig config_;
    AddressMap map_;
    int codic_det_variant_;
    /** Completion cycles of in-flight queued writes (FIFO). */
    std::deque<Cycle> write_completions_;
};

} // namespace codic

#endif // CODIC_MEM_CONTROLLER_H
