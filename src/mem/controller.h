/**
 * @file
 * FR-FCFS memory controller (paper Table 5: 64/64-entry read/write
 * queues, FR-FCFS scheduling [119, 176]) over the cycle-accurate
 * DRAM channel.
 *
 * Reads are serviced with row-hit-first priority and block the
 * requester until the data burst completes. Writes are accepted into
 * a bounded per-channel write queue and buffered: a drain episode
 * starts when pending occupancy crosses the policy's high watermark
 * and flushes row-hit batches (oldest pending write first, coalescing
 * up to SchedulerPolicy::max_drain_batch same-row writes back-to-back)
 * until occupancy falls to the low watermark. Buffering keeps reads
 * ahead of writes on the data bus and pays the rd<->wr turnaround
 * once per drained burst instead of once per write.
 *
 * A queue slot is held from acceptance until the write's data burst
 * completes. When every slot is taken, acceptance stalls until the
 * oldest in-flight write completes - the back-pressure that bounds
 * software-zeroing throughput in the TCG and secure-deallocation
 * evaluations. The stall check is strictly channel-local: in a
 * multi-channel module each channel's controller stalls only on its
 * own queue, so a full queue on one channel never throttles writes
 * routed to another.
 */

#ifndef CODIC_MEM_CONTROLLER_H
#define CODIC_MEM_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/address_map.h"
#include "mem/service.h"
#include "dram/channel.h"

namespace codic {

/** Controller configuration (paper Table 5 defaults). */
struct ControllerConfig
{
    int read_queue_entries = 64;
    int write_queue_entries = 64;
    MapScheme map_scheme = MapScheme::RowBankColumn;
};

/**
 * Memory controller front-end for one channel.
 *
 * The controller is simulated lazily: each request is pushed through
 * the channel when presented, with all JEDEC constraints enforced by
 * DramChannel. FR-FCFS behaviour emerges from the open-row policy:
 * the controller leaves rows open and only precharges on a conflict.
 *
 * A controller is a channel-local view: it decodes full physical
 * addresses with the module-wide map, but only accepts requests that
 * land on its own channel. In a multi-channel module the DramSystem
 * owns one controller per channel and routes requests; a standalone
 * controller over a single-channel config behaves as before.
 */
class MemoryController : public MemoryService
{
  public:
    MemoryController(DramChannel &channel,
                     const ControllerConfig &config = {});

    Cycle read(uint64_t phys_addr, Cycle now) override;

    Cycle write(uint64_t phys_addr, Cycle now) override;

    Cycle drainWrites() override;

    Cycle rowOp(uint64_t row_addr, Cycle now, RowOpMechanism mech,
                int64_t reserved_row = 0) override;

    /** The address map in use. */
    const AddressMap &map() const override { return map_; }

    /** Configuration of the module this controller serves. */
    const DramConfig &dramConfig() const override
    {
        return channel_.config();
    }

    /** Underlying channel (stats, config). */
    DramChannel &channel() { return channel_; }

    /** Scheduler policy in effect (from the module configuration). */
    const SchedulerPolicy &schedulerPolicy() const { return sched_; }

    /** Writes accepted so far (for drain-invariant assertions). */
    uint64_t acceptedWrites() const { return accepted_writes_; }

    /** Writes buffered in the queue but not yet issued. */
    size_t pendingWriteCount() const
    {
        return pending_writes_.size();
    }

  private:
    /** Ensure `addr`'s row is open; returns cycle row is usable. */
    Cycle openRowFor(const Address &addr, Cycle now);

    /**
     * Remove up to `limit` pending writes matching `row`'s
     * rank/bank/row, preserving acceptance order.
     */
    std::vector<Address> takeRowMatches(const Address &row,
                                        size_t limit);

    /**
     * Issue one same-row write batch back-to-back at row-ready,
     * recording completions. Returns the batch's completion cycle.
     */
    Cycle issueRowBatch(const std::vector<Address> &batch,
                        Cycle not_before);

    /**
     * Issue one row-hit batch of pending writes: the oldest pending
     * write plus up to max_drain_batch-1 younger same-row writes,
     * back-to-back. Returns the batch's completion cycle.
     */
    Cycle drainOneBatch(Cycle not_before);

    /** Drain row-hit batches until at most `target` writes pend. */
    Cycle drainPendingTo(size_t target, Cycle not_before);

    /**
     * Issue every pending write to `addr`'s row (the write-forwarding
     * surrogate: a read or destructive row op must observe writes
     * accepted before it).
     */
    void flushRow(const Address &addr, Cycle not_before);

    DramChannel &channel_;
    ControllerConfig config_;
    AddressMap map_;
    int codic_det_variant_;
    SchedulerPolicy sched_;
    /** Accepted but not yet issued writes (FIFO acceptance order). */
    std::deque<Address> pending_writes_;
    /** Completion cycles of issued in-flight writes (nondecreasing). */
    std::deque<Cycle> write_completions_;
    uint64_t accepted_writes_ = 0;
};

} // namespace codic

#endif // CODIC_MEM_CONTROLLER_H
