/**
 * @file
 * FR-FCFS memory controller (paper Table 5: 64/64-entry read/write
 * queues, FR-FCFS scheduling [119, 176]) over the cycle-accurate
 * DRAM channel.
 *
 * Reads are serviced with row-hit-first priority and block the
 * requester until the data burst completes; writes are accepted into
 * a bounded write queue and drained in row-hit batches. When the
 * write queue is full, acceptance stalls until a slot frees, which is
 * exactly the back-pressure that bounds software-zeroing throughput
 * in the TCG and secure-deallocation evaluations.
 */

#ifndef CODIC_MEM_CONTROLLER_H
#define CODIC_MEM_CONTROLLER_H

#include <cstdint>
#include <deque>

#include "mem/address_map.h"
#include "mem/service.h"
#include "dram/channel.h"

namespace codic {

/** Controller configuration (paper Table 5 defaults). */
struct ControllerConfig
{
    int read_queue_entries = 64;
    int write_queue_entries = 64;
    MapScheme map_scheme = MapScheme::RowBankColumn;
};

/**
 * Memory controller front-end for one channel.
 *
 * The controller is simulated lazily: each request is pushed through
 * the channel when presented, with all JEDEC constraints enforced by
 * DramChannel. FR-FCFS behaviour emerges from the open-row policy:
 * the controller leaves rows open and only precharges on a conflict.
 *
 * A controller is a channel-local view: it decodes full physical
 * addresses with the module-wide map, but only accepts requests that
 * land on its own channel. In a multi-channel module the DramSystem
 * owns one controller per channel and routes requests; a standalone
 * controller over a single-channel config behaves as before.
 */
class MemoryController : public MemoryService
{
  public:
    MemoryController(DramChannel &channel,
                     const ControllerConfig &config = {});

    Cycle read(uint64_t phys_addr, Cycle now) override;

    Cycle write(uint64_t phys_addr, Cycle now) override;

    Cycle drainWrites() override;

    Cycle rowOp(uint64_t row_addr, Cycle now, RowOpMechanism mech,
                int64_t reserved_row = 0) override;

    /** The address map in use. */
    const AddressMap &map() const override { return map_; }

    /** Configuration of the module this controller serves. */
    const DramConfig &dramConfig() const override
    {
        return channel_.config();
    }

    /** Underlying channel (stats, config). */
    DramChannel &channel() { return channel_; }

  private:
    /** Ensure `addr`'s row is open; returns cycle row is usable. */
    Cycle openRowFor(const Address &addr, Cycle now);

    DramChannel &channel_;
    ControllerConfig config_;
    AddressMap map_;
    int codic_det_variant_;
    /** Completion cycles of in-flight queued writes (FIFO). */
    std::deque<Cycle> write_completions_;
};

} // namespace codic

#endif // CODIC_MEM_CONTROLLER_H
