/**
 * @file
 * FR-FCFS memory controller (paper Table 5: 64/64-entry read/write
 * queues, FR-FCFS scheduling [119, 176]) over the cycle-accurate
 * DRAM channel, exposed through the transaction-based MemoryService
 * API (mem/service.h).
 *
 * Reads and row ops are submitted into a bounded read queue kept in
 * arrival order and issued on demand: resolving a ticket services
 * everything the schedule orders before it. Within the policy's
 * read-reordering window a row-hit read may bypass older row-miss
 * reads (never across a row op, never past an older same-row
 * request, and a head bypassed kReadStarvationLimit times is
 * force-scheduled), which is the row-hit-first half of FR-FCFS over
 * the read queue.
 *
 * Writes are accepted into a bounded per-channel write queue and
 * buffered: a drain episode starts when pending occupancy crosses
 * the policy's high watermark (whole-queue percentage, or the
 * per-bank count watermark) and flushes row-hit batches (oldest
 * pending write first, coalescing up to
 * SchedulerPolicy::max_drain_batch same-row writes back-to-back)
 * until occupancy falls to the low watermark. Buffering keeps reads
 * ahead of writes on the data bus and pays the rd<->wr turnaround
 * once per drained burst instead of once per write.
 *
 * A write-queue slot is held from acceptance until the write's data
 * burst completes. When every slot is taken, acceptance stalls until
 * the oldest in-flight write completes - the back-pressure that
 * bounds software-zeroing throughput in the TCG and
 * secure-deallocation evaluations. The stall check is strictly
 * channel-local: in a multi-channel module each channel's controller
 * stalls only on its own queue.
 *
 * With SchedulerPolicy::auto_refresh on, the controller injects REF
 * per rank every tREFI, postponing up to refresh_postpone due REFs
 * (JEDEC DDR3: at most 8) while read/write work is pending. With
 * refresh=per-bank the cadence becomes one REFpb every
 * tREFIpb = tREFI / banks, rotating round-robin over the banks, so
 * each bank is still refreshed every tREFI but only the target bank
 * is locked out (for the shorter tRFCpb) per refresh. The paper
 * campaigns keep refresh off (they legally run at power-on before
 * refresh starts), so the eager preset reproduces the published
 * numbers byte-for-byte.
 *
 * With SchedulerPolicy::priority_sched on, the read window becomes
 * priority-aware: among arrived requests in the window the most
 * urgent class (lowest MemTransaction::priority) is scheduled first
 * (row hits preferred within the class), and urgent reads
 * (priority < 0) jump in between write-drain batches. Both bypass
 * forms count against the same kReadStarvationLimit aging rule, so a
 * best-effort head is force-scheduled after at most 16 bypasses -
 * the explicit starvation bound of the QoS mode.
 */

#ifndef CODIC_MEM_CONTROLLER_H
#define CODIC_MEM_CONTROLLER_H

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/pool.h"
#include "mem/address_map.h"
#include "mem/service.h"
#include "dram/channel.h"

namespace codic {

/** Controller configuration (paper Table 5 defaults). */
struct ControllerConfig
{
    int read_queue_entries = 64;
    int write_queue_entries = 64;
    MapScheme map_scheme = MapScheme::RowBankColumn;
};

/**
 * Per-origin command and latency roll-up (QoS accounting). DRAM bus
 * commands carry no origin, so the controller - which still holds
 * the submitting MemTransaction - maintains these next to the
 * channel's CommandCounts; DramSystem::perOriginCounts() merges them
 * across channels so every scenario can break out e.g. auth-critical
 * traffic from background streams through its ResultSink rows.
 */
struct OriginCounts
{
    uint64_t origin = 0; //!< MemTransaction::origin tag.

    uint64_t reads = 0;  //!< Reads serviced for this origin.
    uint64_t writes = 0; //!< Writes accepted for this origin.
    uint64_t rowops = 0; //!< Row ops serviced for this origin.

    /** Sum over serviced reads of (completion - arrival) cycles. */
    uint64_t read_latency_cycles = 0;

    /** Sum over serviced row ops of (completion - arrival) cycles. */
    uint64_t rowop_latency_cycles = 0;

    /** Largest single read latency seen (cycles). */
    Cycle max_read_latency = 0;

    /** Merge another origin's roll-up (same origin tag expected). */
    OriginCounts &operator+=(const OriginCounts &other)
    {
        reads += other.reads;
        writes += other.writes;
        rowops += other.rowops;
        read_latency_cycles += other.read_latency_cycles;
        rowop_latency_cycles += other.rowop_latency_cycles;
        max_read_latency =
            std::max(max_read_latency, other.max_read_latency);
        return *this;
    }
};

/**
 * Memory controller front-end for one channel.
 *
 * The controller is simulated lazily: requests queue at submit() and
 * push through the channel when a ticket is resolved (or poll /
 * drainAll advances the scheduler), with all JEDEC constraints
 * enforced by DramChannel. FR-FCFS behaviour emerges from the
 * open-row policy plus the read-reordering window: the controller
 * leaves rows open, only precharges on a conflict, and prefers
 * row-hit reads within the window.
 *
 * A controller is a channel-local view: it decodes full physical
 * addresses with the module-wide map, but only accepts requests that
 * land on its own channel. In a multi-channel module the DramSystem
 * owns one controller per channel and routes transactions; a
 * standalone controller over a single-channel config behaves as
 * before.
 */
class MemoryController : public MemoryService
{
  public:
    /**
     * Times a read-queue head may be bypassed by younger row-hit
     * reads before it is force-scheduled (the starvation bound real
     * FR-FCFS front-ends carry; reads stay live across REF storms
     * and row-hit bursts alike).
     */
    static constexpr int kReadStarvationLimit = 16;

    MemoryController(DramChannel &channel,
                     const ControllerConfig &config = {});

    // MemoryService transaction API.
    Ticket submit(const MemTransaction &txn) override;

    /**
     * submit() with `txn.addr` already decoded under the module map.
     * DramSystem routes by decoding once and hands the coordinates
     * down, so a transaction is decoded exactly once per submission.
     */
    Ticket submit(const MemTransaction &txn, const Address &addr);
    Cycle acceptedAt(Ticket ticket) const override;
    Cycle completionOf(Ticket ticket) override;
    void retire(Ticket ticket) override;
    void onComplete(Ticket ticket, CompletionCallback fn) override;
    size_t poll(Cycle now) override;
    Cycle drainAll() override;
    size_t inFlightCount() const override
    {
        return read_q_.size() + pending_writes_.size();
    }

    /** The address map in use. */
    const AddressMap &map() const override { return map_; }

    /** Configuration of the module this controller serves. */
    const DramConfig &dramConfig() const override
    {
        return channel_.config();
    }

    /** Underlying channel (stats, config). */
    DramChannel &channel() { return channel_; }

    /** Scheduler policy in effect (from the module configuration). */
    const SchedulerPolicy &schedulerPolicy() const { return sched_; }

    /** Writes accepted so far (for drain-invariant assertions). */
    uint64_t acceptedWrites() const { return accepted_writes_; }

    /** Writes buffered in the queue but not yet issued. */
    size_t pendingWriteCount() const
    {
        return pending_writes_.size();
    }

    /** Reads/row ops queued but not yet issued. */
    size_t pendingReadCount() const { return read_q_.size(); }

    /**
     * Refresh commands injected so far (auto_refresh accounting):
     * rank REFs in all-bank mode, REFpb commands in per-bank mode.
     */
    uint64_t refreshesIssued() const;

    /**
     * Per-origin roll-ups, sorted by origin tag (deterministic
     * iteration regardless of submission interleaving). Reads and
     * row ops are accounted when serviced, writes when accepted.
     */
    const std::vector<OriginCounts> &originCounts() const
    {
        return origin_counts_;
    }

    /**
     * Tickets with live bookkeeping (submitted, neither resolved nor
     * retired). A fire-and-forget stream that retires its tickets
     * keeps this bounded by the in-flight count, not campaign length.
     */
    size_t trackedTicketCount() const { return records_.liveCount(); }

    /**
     * Record slots ever allocated (the arena's high-water mark): the
     * boundedness the retire() contract promises is that this stops
     * growing once the in-flight window reaches steady state.
     */
    size_t recordSlotCount() const { return records_.slotCount(); }

  private:
    /** A write accepted into the queue, awaiting its drain. */
    struct PendingWrite
    {
        Address addr;
        Ticket ticket;
        /** Acceptance cycle: the write cannot issue before it. */
        Cycle accepted = 0;
    };

    /** A read/row-op queued for issue, kept in arrival order. */
    struct QueuedRequest
    {
        MemTransaction txn;
        Ticket ticket;
        /** Decoded once at submit; the window scan compares it. */
        Address addr;
    };

    /** Resolution state of one ticket (released when resolved). */
    struct TxnRecord
    {
        TxnKind kind = TxnKind::Read;
        Cycle accepted = 0;
        Cycle completion = 0;
        bool completed = false;
    };

    /** Ensure `addr`'s row is open; returns cycle row is usable. */
    Cycle openRowFor(const Address &addr, Cycle now);

    /** Index into per-bank bookkeeping arrays. */
    size_t bankIndex(const Address &addr) const
    {
        return static_cast<size_t>(addr.rank) *
                   static_cast<size_t>(channel_.config().banks) +
               static_cast<size_t>(addr.bank);
    }

    /**
     * Move up to `limit` pending writes matching `row`'s
     * rank/bank/row into `out`, preserving acceptance order, with a
     * single compaction pass over the queue.
     */
    void takeRowMatchesInto(const Address &row, size_t limit,
                            std::vector<PendingWrite> &out);

    /**
     * Issue one same-row write batch back-to-back at row-ready,
     * recording completions. Returns the batch's completion cycle.
     */
    Cycle issueRowBatch(const std::vector<PendingWrite> &batch,
                        Cycle not_before);

    /**
     * Issue one row-hit batch of pending writes: the write at
     * queue index `head_idx` plus up to max_drain_batch-1 same-row
     * writes, back-to-back. Returns the batch's completion cycle.
     */
    Cycle drainBatchAt(size_t head_idx, Cycle not_before);

    /** drainBatchAt(0): the oldest pending write's batch. */
    Cycle drainOneBatch(Cycle not_before);

    /** Drain row-hit batches until at most `target` writes pend. */
    Cycle drainPendingTo(size_t target, Cycle not_before);

    /** Drain one bank's pending writes down to `target`. */
    Cycle drainBankTo(int rank, int bank, size_t target,
                      Cycle not_before);

    /**
     * Issue every pending write to `addr`'s row (the write-forwarding
     * surrogate: a read or destructive row op must observe writes
     * accepted before it).
     */
    void flushRow(const Address &addr, Cycle not_before);

    /** Accept one write (old blocking-write body); acceptance cycle. */
    Cycle acceptWrite(const Address &addr, Cycle now, Ticket ticket);

    /**
     * Index into read_q_ of the next request to issue: the head, or
     * a row-hit read within the policy window whose arrival is
     * within `arrival_bound` (see class comment).
     */
    size_t pickRequestIndex(Cycle arrival_bound) const;

    /**
     * Issue the picked queued request, bounding row-hit bypass to
     * requests arrived by `arrival_bound`; record its completion.
     */
    Cycle serviceOneRequest(Cycle arrival_bound);

    /**
     * serviceOneRequest() at the default scheduling horizon:
     * everything arrived by the time the channel could service the
     * queue head (max of head arrival and last issue cycle).
     */
    Cycle serviceNextRequest();

    /**
     * Issue the read/row-op command sequence of one transaction.
     * `addr` is the transaction's address, decoded once at submit and
     * carried in the queue entry (row ops rebase it to column 0).
     */
    Cycle issueRead(const MemTransaction &txn, const Address &addr);
    Cycle issueRowOp(const MemTransaction &txn, Address addr);

    /**
     * Issue REFs to `rank` until its debt at cycle `t` is within the
     * postponement allowance (no-op unless auto_refresh). Dispatches
     * to the per-bank cadence when refresh=per-bank.
     */
    void catchUpRefresh(int rank, Cycle t);

    /** The REFpb cadence: one bank every tREFIpb, round-robin. */
    void catchUpRefreshPerBank(int rank, Cycle t);

    /**
     * True if an urgent read (priority < 0) has arrived by `bound`
     * within the read window (up to the row-op barrier).
     */
    bool hasArrivedUrgentRead(Cycle bound) const;

    /**
     * Service arrived urgent reads ahead of further write draining
     * (no-op unless priority_sched). Called between drain batches so
     * an authenticate-class read never waits out a whole drain
     * episode behind background writes.
     */
    void serviceUrgentReads(Cycle not_before);

    /** Roll-up slot for `origin`, inserted sorted on first use. */
    OriginCounts &originSlot(uint64_t origin);

    /** Record a ticket's completion if it is still tracked. */
    void markCompleted(Ticket ticket, Cycle completion);

    /** Fire and release a registered callback (see onComplete()). */
    void fireCallback(Ticket ticket, Cycle completion);

    DramChannel &channel_;
    ControllerConfig config_;
    AddressMap map_;
    int codic_det_variant_;
    SchedulerPolicy sched_;
    /**
     * Accepted but not yet issued writes (FIFO acceptance order).
     * Bounded by write_queue_entries, reserved up front: insert/erase
     * are short memmoves over contiguous storage, never allocations.
     */
    std::vector<PendingWrite> pending_writes_;
    /** Completion cycles of issued in-flight writes (nondecreasing). */
    RingBuffer<Cycle> write_completions_;
    /**
     * Queued reads/row ops, sorted by arrival with submission order
     * breaking ties. Bounded by read_queue_entries and reserved up
     * front, like pending_writes_.
     */
    std::vector<QueuedRequest> read_q_;
    /**
     * Resolution state per live ticket: a ticket IS the arena handle
     * (generation-tagged slot), so submit/resolve/retire recycle
     * slots through the free list instead of churning map nodes.
     */
    SlotArena<TxnRecord> records_;
    /** Refresh commands injected per rank (REF or REFpb cadence). */
    std::vector<int64_t> refs_issued_;
    /**
     * Per-origin roll-ups, kept sorted by origin tag. Origins are
     * few (a handful of traffic classes), so the per-transaction
     * lower_bound is a short probe over a hot vector.
     */
    std::vector<OriginCounts> origin_counts_;
    /** Pending (unissued) writes per bank, indexed by bankIndex(). */
    std::vector<uint32_t> bank_pending_;
    /**
     * Scratch batch for drain/flush assembly. Safe to share: batch
     * assembly and issueRowBatch() never re-enter a drain or flush.
     */
    std::vector<PendingWrite> batch_scratch_;
    /**
     * Completion callbacks by ticket (co-sim consumers only). A side
     * map rather than a TxnRecord field so the blocking hot path
     * pays exactly one empty() branch per completion when no
     * callback was ever registered.
     */
    std::unordered_map<Ticket, CompletionCallback> callbacks_;
    uint64_t accepted_writes_ = 0;
    /** Consecutive window bypasses of the current queue head. */
    int head_bypasses_ = 0;
#ifndef NDEBUG
    /** Re-entrancy guard: true while a callback is running. */
    bool in_callback_ = false;
#endif
};

} // namespace codic

#endif // CODIC_MEM_CONTROLLER_H
