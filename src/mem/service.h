/**
 * @file
 * The transaction-based memory-service interface consumed by the
 * trace-driven cores, the secure-deallocation paths, and the fleet's
 * replay engine. Two implementations exist: MemoryController (one
 * channel's FR-FCFS front-end) and DramSystem (N channels; routes
 * each transaction to the owning channel's controller). Consumer
 * code is written against this interface so a workload runs
 * unchanged on 1 or many channels.
 *
 * The API is asynchronous: callers submit() a MemTransaction and
 * receive a Ticket; the controller owns bounded read *and* write
 * queues (paper Table 5: 64/64 entries), schedules FR-FCFS with a
 * configurable read-reordering window, and - when
 * SchedulerPolicy::auto_refresh is on - injects REF every tREFI,
 * postponing up to the JEDEC 8-deferred limit. Ticket resolution is
 * demand-driven (the simulation is event-based, not cycle-ticked):
 *
 *  - completionOf(ticket) forces the transaction (and everything the
 *    schedule orders before it) to issue and returns its completion
 *    cycle, retiring the ticket. Each ticket resolves exactly once.
 *  - acceptedAt(ticket) is the cycle the transaction entered its
 *    queue (== arrival unless a full write queue stalled acceptance:
 *    the back-pressure that bounds software-zeroing throughput).
 *  - retire(ticket) discards a ticket whose completion the caller
 *    will never ask for (fire-and-forget writebacks), keeping
 *    per-ticket bookkeeping bounded by the number of outstanding
 *    queries, not by campaign length.
 *  - poll(now) advances the scheduler to `now`: services every
 *    queued request that has arrived and catches up refresh debt.
 *  - drainAll() services everything still queued (reads, row ops,
 *    buffered writes) and returns the cycle the service is
 *    quiescent. On the blocking shim this is exactly the old
 *    drainWrites() semantics.
 *
 * The blocking helpers at the bottom are the compatibility shim the
 * paper campaigns keep using: each one is submit + resolve in a
 * single call, so every caller - shimmed or not - runs through the
 * same transaction scheduler, and the eager preset reproduces the
 * published numbers byte-for-byte.
 */

#ifndef CODIC_MEM_SERVICE_H
#define CODIC_MEM_SERVICE_H

#include <cstddef>
#include <cstdint>
#include <functional>

#include "dram/config.h"
#include "mem/transaction.h"

namespace codic {

class AddressMap;

/**
 * Completion notification for the co-simulation path: invoked with
 * the ticket and its completion cycle when the transaction's command
 * sequence finishes (see MemoryService::onComplete).
 */
using CompletionCallback = std::function<void(Ticket, Cycle)>;

/** Transaction-level service over one channel or a whole system. */
class MemoryService
{
  public:
    virtual ~MemoryService() = default;

    /**
     * Submit a transaction. Reads and row ops enter the bounded read
     * queue (a full queue services older requests until a slot
     * frees); writes enter the bounded write queue, stalling
     * acceptance when every slot is occupied by an in-flight write.
     * @return Ticket resolving the transaction (never
     *         kInvalidTicket).
     */
    virtual Ticket submit(const MemTransaction &txn) = 0;

    /** Cycle the transaction was accepted into its queue. */
    virtual Cycle acceptedAt(Ticket ticket) const = 0;

    /**
     * Completion cycle of the transaction, forcing it (and everything
     * scheduled before it) to issue if still queued. Retires the
     * ticket: each ticket may be resolved exactly once.
     */
    virtual Cycle completionOf(Ticket ticket) = 0;

    /** Drop a ticket whose completion will never be queried. */
    virtual void retire(Ticket ticket) = 0;

    /**
     * Register a completion callback on a live ticket (the
     * co-simulation path: a TickEngine producer submits without
     * blocking and learns the completion when the scheduler services
     * the transaction under poll()/drainAll()/another consumer's
     * resolution). Registering transfers ticket ownership to the
     * service: the ticket auto-retires when the callback fires, so
     * the caller must not also call completionOf()/retire() on it.
     * A ticket whose transaction already completed fires immediately
     * (before this call returns). Callbacks observe a consistent
     * scheduler: they must not re-enter the service (no submit /
     * completionOf / poll from inside a callback) - record the event
     * and act on the next producer tick, as dramsim3 frontends do.
     */
    virtual void onComplete(Ticket ticket, CompletionCallback fn) = 0;

    /**
     * Advance the scheduler to `now`: issue every queued read/row-op
     * whose arrival is <= now and catch up refresh debt beyond the
     * postponement allowance. @return Requests serviced by the call.
     */
    virtual size_t poll(Cycle now) = 0;

    /**
     * Service everything still queued - reads, row ops, and buffered
     * writes - and return the cycle the service is quiescent (last
     * issue or write-burst completion). Legally postponed refreshes
     * (debt within SchedulerPolicy::refresh_postpone) stay postponed.
     */
    virtual Cycle drainAll() = 0;

    /** Queued (not yet issued) transactions, all kinds. */
    virtual size_t inFlightCount() const = 0;

    /** The address map in use. */
    virtual const AddressMap &map() const = 0;

    /** The DRAM configuration behind this service. */
    virtual const DramConfig &dramConfig() const = 0;

    // --- Blocking shim (paper campaigns; submit + resolve) ---

    /**
     * Service a read to completion: the caller blocks until the data
     * burst completes. Equivalent to submit + completionOf.
     */
    Cycle read(uint64_t phys_addr, Cycle now, uint64_t origin = 0)
    {
        return completionOf(
            submit(MemTransaction::makeRead(phys_addr, now, origin)));
    }

    /**
     * Accept a write into the owning channel's write queue and
     * return the acceptance cycle (== now unless the queue is full).
     * Fire-and-forget: the write's own completion is not tracked.
     */
    Cycle write(uint64_t phys_addr, Cycle now, uint64_t origin = 0)
    {
        const Ticket t =
            submit(MemTransaction::makeWrite(phys_addr, now, origin));
        const Cycle accepted = acceptedAt(t);
        retire(t);
        return accepted;
    }

    /**
     * Execute a bulk row operation (deterministic overwrite of one
     * row) to completion with the selected mechanism.
     */
    Cycle rowOp(uint64_t row_addr, Cycle now, RowOpMechanism mech,
                int64_t reserved_row = 0)
    {
        return completionOf(submit(MemTransaction::makeRowOp(
            row_addr, now, mech, reserved_row)));
    }

    /** Legacy name for drainAll() (identical semantics). */
    Cycle drainWrites() { return drainAll(); }
};

} // namespace codic

#endif // CODIC_MEM_SERVICE_H
