/**
 * @file
 * The memory-service interface consumed by the trace-driven cores and
 * the secure-deallocation paths. Two implementations exist:
 * MemoryController (one channel's FR-FCFS front-end) and DramSystem
 * (N channels; routes each request to the owning channel's
 * controller). Core code is written against this interface so a
 * workload runs unchanged on 1 or many channels.
 */

#ifndef CODIC_MEM_SERVICE_H
#define CODIC_MEM_SERVICE_H

#include <cstdint>

#include "dram/config.h"

namespace codic {

class AddressMap;

/** Row-op mechanisms usable for bulk in-DRAM operations. */
enum class RowOpMechanism
{
    CodicDet,  //!< One CODIC-det command per row.
    RowClone,  //!< ACT(source) + RowClone(dst) + PRE.
    LisaClone, //!< ACT(source) + LISA hop + RowClone(dst) + PRE.
};

/** Request-level service over one channel or a whole DRAM system. */
class MemoryService
{
  public:
    virtual ~MemoryService() = default;

    /**
     * Service a read.
     * @param phys_addr Physical byte address.
     * @param now Cycle the request arrives.
     * @return Cycle the data burst completes (requester unblocks).
     */
    virtual Cycle read(uint64_t phys_addr, Cycle now) = 0;

    /**
     * Accept a write into the owning channel's write queue.
     * @return Cycle the write is accepted (== now unless that queue
     *         is full, in which case acceptance stalls).
     */
    virtual Cycle write(uint64_t phys_addr, Cycle now) = 0;

    /** Cycle at which all currently queued writes have drained. */
    virtual Cycle drainWrites() = 0;

    /**
     * Execute a bulk row operation (deterministic overwrite of one
     * row) with the selected mechanism. Used by secure deallocation.
     * @param row_addr Any physical address within the target row.
     * @param now Earliest issue cycle.
     * @param mech In-DRAM mechanism to use.
     * @param reserved_row Row index (same bank) holding the zero
     *        source for clone-based mechanisms.
     * @return Completion cycle.
     */
    virtual Cycle rowOp(uint64_t row_addr, Cycle now,
                        RowOpMechanism mech, int64_t reserved_row = 0) = 0;

    /** The address map in use. */
    virtual const AddressMap &map() const = 0;

    /** The DRAM configuration behind this service. */
    virtual const DramConfig &dramConfig() const = 0;
};

} // namespace codic

#endif // CODIC_MEM_SERVICE_H
