/**
 * @file
 * The controlled CODIC interface of paper Section 4.4 ("Limitations
 * and Challenges"): exposing raw internal-signal control to users is
 * a security risk (arbitrary CODIC commands destroy data and could
 * aggravate disturbance effects), so the memory controller instead
 * exposes *applications* - a PUF-response command and a zero-range
 * command - and keeps the raw substrate to itself:
 *
 *  - a system-defined address range is reserved as safe for PUF
 *    generation; PUF requests outside it are refused;
 *  - bulk zeroing is only allowed on ranges the OS has declared
 *    deallocated (no zeroing of live data);
 *  - raw CODIC variants are not reachable through this interface at
 *    all, so "user-generated CODIC applications" are impossible by
 *    construction while vendor-defined ones remain available.
 */

#ifndef CODIC_MEM_SAFE_INTERFACE_H
#define CODIC_MEM_SAFE_INTERFACE_H

#include <cstdint>
#include <vector>

#include "dram/system.h"
#include "puf/puf.h"

namespace codic {

/** Outcome of a request through the controlled interface. */
enum class SafeRequestStatus
{
    Ok,
    OutsidePufRange,   //!< PUF challenge not in the reserved range.
    RangeNotFreed,     //!< Zero-range target still owned by software.
    Misaligned,        //!< Range does not cover whole rows.
};

/** Display name. */
const char *safeRequestStatusName(SafeRequestStatus s);

/**
 * Controller-level facade over the CODIC substrate. All checks are
 * enforced here, in the memory controller, exactly as Section 4.4
 * proposes ("the controller would internally use CODIC to control
 * the DRAM timings and generate the PUF response").
 */
class SafeCodicInterface
{
  public:
    /**
     * @param system DRAM system owning the channels; PUF and zeroing
     *        requests are routed to the owning channel's controller
     *        (the channel-local view the system hands out).
     * @param puf_base First byte of the reserved PUF range.
     * @param puf_bytes Size of the reserved PUF range.
     */
    SafeCodicInterface(DramSystem &system, uint64_t puf_base,
                       uint64_t puf_bytes);

    /**
     * Generate a PUF response from a segment inside the reserved
     * range (a software API call / new instruction in a real system).
     * @param phys_addr Segment base (row-aligned, inside the range).
     * @param now Request cycle.
     * @param[out] done Completion cycle of the in-DRAM sequence.
     */
    SafeRequestStatus pufResponse(uint64_t phys_addr, Cycle now,
                                  Cycle *done);

    /**
     * Mark a range as freed by the OS (the precondition for zeroing;
     * in a real system this is a privileged operation).
     */
    void declareFreed(uint64_t phys_addr, uint64_t bytes);

    /**
     * Zero a previously-freed row-aligned range with CODIC-det.
     * Rejects live or misaligned ranges.
     */
    SafeRequestStatus zeroRange(uint64_t phys_addr, uint64_t bytes,
                                Cycle now, Cycle *done);

    /** Number of refused requests (audit counter). */
    uint64_t refusals() const { return refusals_; }

  private:
    bool insidePufRange(uint64_t addr, uint64_t bytes) const;
    bool isFreed(uint64_t addr, uint64_t bytes) const;

    DramSystem &system_;
    uint64_t puf_base_;
    uint64_t puf_bytes_;
    int sig_variant_;
    /** Freed intervals [base, base+bytes), kept disjoint. */
    std::vector<std::pair<uint64_t, uint64_t>> freed_;
    uint64_t refusals_ = 0;
};

} // namespace codic

#endif // CODIC_MEM_SAFE_INTERFACE_H
