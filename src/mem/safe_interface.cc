#include "mem/safe_interface.h"

#include <algorithm>
#include <vector>

#include "codic/variant.h"
#include "common/logging.h"

namespace codic {

const char *
safeRequestStatusName(SafeRequestStatus s)
{
    switch (s) {
      case SafeRequestStatus::Ok: return "ok";
      case SafeRequestStatus::OutsidePufRange:
        return "outside-puf-range";
      case SafeRequestStatus::RangeNotFreed: return "range-not-freed";
      case SafeRequestStatus::Misaligned: return "misaligned";
    }
    panic("unknown safe-request status");
}

SafeCodicInterface::SafeCodicInterface(DramSystem &system,
                                       uint64_t puf_base,
                                       uint64_t puf_bytes)
    : system_(system), puf_base_(puf_base), puf_bytes_(puf_bytes),
      sig_variant_(
          system.registerVariantAll(variants::sig().schedule))
{
    const uint64_t row =
        static_cast<uint64_t>(system.map().rowBytes());
    if (puf_base_ % row != 0 || puf_bytes_ % row != 0)
        fatal("PUF range must be row-aligned");
}

bool
SafeCodicInterface::insidePufRange(uint64_t addr, uint64_t bytes) const
{
    return addr >= puf_base_ && addr + bytes <= puf_base_ + puf_bytes_;
}

bool
SafeCodicInterface::isFreed(uint64_t addr, uint64_t bytes) const
{
    for (const auto &[base, len] : freed_)
        if (addr >= base && addr + bytes <= base + len)
            return true;
    return false;
}

SafeRequestStatus
SafeCodicInterface::pufResponse(uint64_t phys_addr, Cycle now,
                                Cycle *done)
{
    const uint64_t row =
        static_cast<uint64_t>(system_.map().rowBytes());
    if (phys_addr % row != 0) {
        ++refusals_;
        return SafeRequestStatus::Misaligned;
    }
    if (!insidePufRange(phys_addr, row)) {
        // The whole point of the controlled interface: a PUF request
        // against arbitrary memory would destroy program data.
        ++refusals_;
        return SafeRequestStatus::OutsidePufRange;
    }
    Address addr = system_.map().decode(phys_addr);
    addr.column = 0;
    // Channel-local view: the sequence runs on the owning channel.
    DramChannel &ch = system_.channel(addr.channel);
    if (ch.bankActive(addr.rank, addr.bank)) {
        Command pre{CommandType::Pre, addr, 0};
        ch.issueAtEarliest(pre, now);
    }
    // CODIC-sig prepares the cells; the follow-up activation
    // amplifies them into the response (Section 4.1.1), which RD
    // bursts would then stream out.
    Command codic{CommandType::Codic, addr, sig_variant_};
    const Cycle prepared = ch.issueAtEarliest(codic, now);
    Command act{CommandType::Act, addr, 0};
    const Cycle ready = ch.issueAtEarliest(act, prepared);
    Command rd{CommandType::Rd, addr, 0};
    Cycle last = ready;
    for (int col = 0; col < ch.config().columns; ++col) {
        rd.addr.column = col;
        last = ch.issueAtEarliest(rd, ready);
    }
    Command pre{CommandType::Pre, addr, 0};
    const Cycle finished = ch.issueAtEarliest(pre, last);
    if (done)
        *done = finished;
    return SafeRequestStatus::Ok;
}

void
SafeCodicInterface::declareFreed(uint64_t phys_addr, uint64_t bytes)
{
    freed_.emplace_back(phys_addr, bytes);
}

SafeRequestStatus
SafeCodicInterface::zeroRange(uint64_t phys_addr, uint64_t bytes,
                              Cycle now, Cycle *done)
{
    const uint64_t row =
        static_cast<uint64_t>(system_.map().rowBytes());
    if (phys_addr % row != 0 || bytes % row != 0 || bytes == 0) {
        // CODIC works at row granularity (Section 4.4's challenge:
        // a row may hold multiple pages) - the interface refuses
        // partial rows instead of destroying a co-located page.
        ++refusals_;
        return SafeRequestStatus::Misaligned;
    }
    if (!isFreed(phys_addr, bytes)) {
        ++refusals_;
        return SafeRequestStatus::RangeNotFreed;
    }
    // Submit the whole range as transactions (one per row, all
    // stamped with the request's arrival), then resolve: per channel
    // the rows issue in submission order, exactly as the sequential
    // blocking loop did, but the call sites stay one queue-building
    // pass plus one harvest pass.
    std::vector<Ticket> tickets;
    tickets.reserve(static_cast<size_t>(bytes / row));
    for (uint64_t a = phys_addr; a < phys_addr + bytes; a += row)
        tickets.push_back(system_.submit(MemTransaction::makeRowOp(
            a, now, RowOpMechanism::CodicDet)));
    Cycle last = now;
    for (const Ticket t : tickets)
        last = std::max(last, system_.completionOf(t));
    if (done)
        *done = last;
    return SafeRequestStatus::Ok;
}

} // namespace codic
