#include "mem/controller.h"

#include <algorithm>

#include "common/logging.h"

namespace codic {

MemoryController::MemoryController(DramChannel &channel,
                                   const ControllerConfig &config)
    : channel_(channel), config_(config),
      map_(channel.config(), config.map_scheme),
      codic_det_variant_(
          channel.registerVariant(variants::detZero().schedule))
{
    CODIC_ASSERT(config_.write_queue_entries > 0);
}

Cycle
MemoryController::openRowFor(const Address &addr, Cycle now)
{
    if (channel_.bankActive(addr.rank, addr.bank)) {
        if (channel_.openRow(addr.rank, addr.bank) == addr.row)
            return now; // Row hit.
        // Row conflict: close the open row first.
        Command pre{CommandType::Pre, addr, 0};
        channel_.issueAtEarliest(pre, now);
    }
    Command act{CommandType::Act, addr, 0};
    Cycle issued = 0;
    const Cycle ready = channel_.issueAtEarliest(act, now, &issued);
    return ready;
}

Cycle
MemoryController::read(uint64_t phys_addr, Cycle now)
{
    const Address addr = map_.decode(phys_addr);
    const Cycle row_ready = openRowFor(addr, now);
    Command rd{CommandType::Rd, addr, 0};
    return channel_.issueAtEarliest(rd, row_ready);
}

Cycle
MemoryController::write(uint64_t phys_addr, Cycle now)
{
    // Back-pressure: if the queue is full, acceptance waits for the
    // oldest in-flight write to complete.
    Cycle accept = now;
    while (static_cast<int>(write_completions_.size()) >=
           config_.write_queue_entries) {
        accept = std::max(accept, write_completions_.front());
        write_completions_.pop_front();
    }
    // Retire completed writes opportunistically.
    while (!write_completions_.empty() &&
           write_completions_.front() <= accept)
        write_completions_.pop_front();

    const Address addr = map_.decode(phys_addr);
    const Cycle row_ready = openRowFor(addr, accept);
    Command wr{CommandType::Wr, addr, 0};
    const Cycle done = channel_.issueAtEarliest(wr, row_ready);
    write_completions_.push_back(done);
    return accept;
}

Cycle
MemoryController::drainWrites()
{
    Cycle last = channel_.lastIssueCycle();
    while (!write_completions_.empty()) {
        last = std::max(last, write_completions_.front());
        write_completions_.pop_front();
    }
    return last;
}

Cycle
MemoryController::rowOp(uint64_t row_addr, Cycle now, RowOpMechanism mech,
                        int64_t reserved_row)
{
    Address addr = map_.decode(row_addr);
    addr.column = 0;

    // The target bank must be precharged for all three mechanisms.
    if (channel_.bankActive(addr.rank, addr.bank)) {
        Command pre{CommandType::Pre, addr, 0};
        channel_.issueAtEarliest(pre, now);
    }

    switch (mech) {
      case RowOpMechanism::CodicDet: {
        Command codic{CommandType::Codic, addr, codic_det_variant_};
        return channel_.issueAtEarliest(codic, now);
      }
      case RowOpMechanism::RowClone:
      case RowOpMechanism::LisaClone: {
        Address src = addr;
        src.row = reserved_row;
        Command act{CommandType::Act, src, 0};
        channel_.issueAtEarliest(act, now);
        if (mech == RowOpMechanism::LisaClone) {
            Command rbm{CommandType::LisaRbm, src, 0};
            channel_.issueAtEarliest(rbm, now);
        }
        Command clone{CommandType::RowClone, addr, 0};
        channel_.issueAtEarliest(clone, now);
        Command pre{CommandType::Pre, addr, 0};
        return channel_.issueAtEarliest(pre, now);
    }
    }
    panic("unknown row-op mechanism");
}

} // namespace codic
