#include "mem/controller.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace codic {

MemoryController::MemoryController(DramChannel &channel,
                                   const ControllerConfig &config)
    : channel_(channel), config_(config),
      map_(channel.config(), config.map_scheme),
      codic_det_variant_(
          channel.registerVariant(variants::detZero().schedule)),
      sched_(channel.config().scheduler),
      refs_issued_(static_cast<size_t>(channel.config().ranks), 0),
      bank_pending_(static_cast<size_t>(channel.config().ranks *
                                        channel.config().banks),
                    0)
{
    CODIC_ASSERT(config_.read_queue_entries > 0);
    CODIC_ASSERT(config_.write_queue_entries > 0);
    sched_.validate();
    // Queue occupancy is bounded (submit back-pressures before
    // inserting into a full queue), so one up-front reservation keeps
    // every later queue operation allocation-free.
    pending_writes_.reserve(
        static_cast<size_t>(config_.write_queue_entries));
    read_q_.reserve(static_cast<size_t>(config_.read_queue_entries));
    batch_scratch_.reserve(
        static_cast<size_t>(config_.write_queue_entries));
}

Cycle
MemoryController::openRowFor(const Address &addr, Cycle now)
{
    if (channel_.bankActive(addr.rank, addr.bank)) {
        if (channel_.openRow(addr.rank, addr.bank) == addr.row)
            return now; // Row hit.
        // Row conflict: close the open row first.
        Command pre{CommandType::Pre, addr, 0};
        channel_.issueAtEarliest(pre, now);
    }
    Command act{CommandType::Act, addr, 0};
    Cycle issued = 0;
    const Cycle ready = channel_.issueAtEarliest(act, now, &issued);
    return ready;
}

void
MemoryController::takeRowMatchesInto(const Address &row, size_t limit,
                                     std::vector<PendingWrite> &out)
{
    if (limit == 0 || bank_pending_[bankIndex(row)] == 0)
        return;
    // Single compaction pass: matches move to `out` (in acceptance
    // order), non-matches slide forward in place.
    size_t kept = 0;
    size_t taken = 0;
    for (size_t i = 0; i < pending_writes_.size(); ++i) {
        PendingWrite &w = pending_writes_[i];
        if (taken < limit && w.addr.rank == row.rank &&
            w.addr.bank == row.bank && w.addr.row == row.row) {
            out.push_back(w);
            ++taken;
        } else {
            if (kept != i)
                pending_writes_[kept] = w;
            ++kept;
        }
    }
    pending_writes_.resize(kept);
    bank_pending_[bankIndex(row)] -= static_cast<uint32_t>(taken);
}

void
MemoryController::markCompleted(Ticket ticket, Cycle completion)
{
    TxnRecord *rec = records_.find(ticket);
    if (rec == nullptr)
        return; // Retired fire-and-forget; nothing to record.
    rec->completed = true;
    rec->completion = completion;
    if (!callbacks_.empty())
        fireCallback(ticket, completion);
}

void
MemoryController::fireCallback(Ticket ticket, Cycle completion)
{
    auto it = callbacks_.find(ticket);
    if (it == callbacks_.end())
        return;
    // Move the callback out before invoking so the map mutation is
    // done before user code runs; releasing this ticket's record
    // never moves other live slots (SlotArena contract), so any
    // servicing loop holding a different record stays valid.
    CompletionCallback fn = std::move(it->second);
    callbacks_.erase(it);
    records_.release(ticket);
#ifndef NDEBUG
    in_callback_ = true;
#endif
    fn(ticket, completion);
#ifndef NDEBUG
    in_callback_ = false;
#endif
}

void
MemoryController::onComplete(Ticket ticket, CompletionCallback fn)
{
    CODIC_ASSERT(fn != nullptr, "onComplete: null callback");
    TxnRecord *rec = records_.find(ticket);
    CODIC_ASSERT(rec != nullptr,
                 "onComplete: unknown or already-resolved ticket");
    if (rec->completed) {
        // Already serviced (e.g. an eager write drained during its
        // own acceptance): fire immediately, same ownership rules.
        const Cycle done = rec->completion;
        records_.release(ticket);
#ifndef NDEBUG
        in_callback_ = true;
#endif
        fn(ticket, done);
#ifndef NDEBUG
        in_callback_ = false;
#endif
        return;
    }
    callbacks_.emplace(ticket, std::move(fn));
}

Cycle
MemoryController::issueRowBatch(const std::vector<PendingWrite> &batch,
                                Cycle not_before)
{
    CODIC_ASSERT(!batch.empty());
    Cycle done = 0;
    const Cycle row_ready = openRowFor(batch.front().addr, not_before);
    for (const PendingWrite &w : batch) {
        Command wr{CommandType::Wr, w.addr, 0};
        // A drain forced by an earlier-arrival request (write
        // forwarding) must not issue a write before that write was
        // even accepted.
        done = channel_.issueAtEarliest(
            wr, std::max(row_ready, w.accepted));
        write_completions_.push_back(done);
        markCompleted(w.ticket, done);
    }
    return done;
}

Cycle
MemoryController::drainBatchAt(size_t head_idx, Cycle not_before)
{
    CODIC_ASSERT(head_idx < pending_writes_.size());
    // FR-FCFS over the write queue: the batch head plus younger
    // same-row writes coalesced into one row-hit batch, preserving
    // their relative order.
    const PendingWrite head = pending_writes_[head_idx];
    pending_writes_.erase(pending_writes_.begin() +
                          static_cast<std::ptrdiff_t>(head_idx));
    --bank_pending_[bankIndex(head.addr)];
    batch_scratch_.clear();
    batch_scratch_.push_back(head);
    takeRowMatchesInto(head.addr,
                       static_cast<size_t>(sched_.max_drain_batch) - 1,
                       batch_scratch_);
    return issueRowBatch(batch_scratch_, not_before);
}

Cycle
MemoryController::drainOneBatch(Cycle not_before)
{
    CODIC_ASSERT(!pending_writes_.empty());
    return drainBatchAt(0, not_before);
}

Cycle
MemoryController::drainPendingTo(size_t target, Cycle not_before)
{
    Cycle done = 0;
    while (pending_writes_.size() > target) {
        // Urgent reads jump in between batches (their forwarding
        // flush may itself shrink the pending queue, hence the
        // re-check before the next batch).
        serviceUrgentReads(not_before);
        if (pending_writes_.size() <= target)
            break;
        done = std::max(done, drainOneBatch(not_before));
    }
    return done;
}

Cycle
MemoryController::drainBankTo(int rank, int bank, size_t target,
                              Cycle not_before)
{
    Cycle done = 0;
    const size_t bi = static_cast<size_t>(rank) *
                          static_cast<size_t>(channel_.config().banks) +
                      static_cast<size_t>(bank);
    while (bank_pending_[bi] > target) {
        serviceUrgentReads(not_before);
        if (bank_pending_[bi] <= target)
            break;
        // Oldest pending write of the bank anchors the next batch.
        size_t oldest = pending_writes_.size();
        for (size_t i = 0; i < pending_writes_.size(); ++i) {
            const Address &a = pending_writes_[i].addr;
            if (a.rank == rank && a.bank == bank) {
                oldest = i;
                break;
            }
        }
        CODIC_ASSERT(oldest < pending_writes_.size());
        done = std::max(done, drainBatchAt(oldest, not_before));
    }
    return done;
}

void
MemoryController::flushRow(const Address &addr, Cycle not_before)
{
    // Cheap early-out on the read path: most reads hit banks with no
    // buffered writes at all.
    if (pending_writes_.empty() || bank_pending_[bankIndex(addr)] == 0)
        return;
    // All of the row's pending writes, issued exactly like a drain
    // batch - forwarding-forced and watermark-scheduled drains of
    // the same writes model identical cycles.
    batch_scratch_.clear();
    takeRowMatchesInto(addr, pending_writes_.size(), batch_scratch_);
    if (!batch_scratch_.empty())
        issueRowBatch(batch_scratch_, not_before);
}

void
MemoryController::catchUpRefresh(int rank, Cycle t)
{
    if (!sched_.auto_refresh)
        return;
    if (sched_.per_bank_refresh) {
        catchUpRefreshPerBank(rank, t);
        return;
    }
    const Cycle trefi = channel_.config().timing.trefi;
    const Cycle trfc = channel_.config().timing.trfc;
    auto &issued = refs_issued_[static_cast<size_t>(rank)];
    // REF k is due at cycle k * tREFI. The refresh engine is always
    // on: a REF that can both come due and *complete* (tRFC) in the
    // idle stretch before the work at cycle t issues on time and
    // costs the workload nothing - this is also how deferred debt
    // repays itself in the next quiet gap. A REF that would overlap
    // pending work is deferrable, and only debt beyond the
    // postponement allowance must stall work at cycle t.
    while (t / trefi - issued > 0) {
        const Cycle due = (issued + 1) * trefi;
        const bool fits_idle =
            std::max(due, channel_.lastIssueCycle()) + trfc <= t;
        if (!fits_idle &&
            t / trefi - issued <=
                static_cast<int64_t>(sched_.refresh_postpone))
            break; // Busy: defer within the JEDEC allowance.
        // All banks of the rank must be precharged for REF.
        for (int b = 0; b < channel_.config().banks; ++b) {
            if (!channel_.bankActive(rank, b))
                continue;
            Address a;
            a.channel = channel_.channelId();
            a.rank = rank;
            a.bank = b;
            Command pre{CommandType::Pre, a, 0};
            channel_.issueAtEarliest(pre, due);
        }
        Command ref;
        ref.type = CommandType::Ref;
        ref.addr.channel = channel_.channelId();
        ref.addr.rank = rank;
        channel_.issueAtEarliest(ref, due);
        ++issued;
    }
}

void
MemoryController::catchUpRefreshPerBank(int rank, Cycle t)
{
    const int banks = channel_.config().banks;
    const Cycle trefipb = std::max<Cycle>(
        1, channel_.config().timing.trefi / static_cast<Cycle>(banks));
    const Cycle trfcpb = channel_.config().timing.trfcpb;
    auto &issued = refs_issued_[static_cast<size_t>(rank)];
    // REFpb k is due at cycle k * tREFIpb and targets bank k % banks:
    // the round-robin rotation still refreshes every bank once per
    // tREFI (same retention guarantee as all-bank REF), but each
    // command locks out only its target bank, and for the shorter
    // tRFCpb. The fits-idle and postponement logic mirrors the
    // all-bank engine above (JEDEC LPDDR allows postponing up to 8
    // REFpb commands).
    while (t / trefipb - issued > 0) {
        const Cycle due = (issued + 1) * trefipb;
        const bool fits_idle =
            std::max(due, channel_.lastIssueCycle()) + trfcpb <= t;
        if (!fits_idle &&
            t / trefipb - issued <=
                static_cast<int64_t>(sched_.refresh_postpone))
            break; // Busy: defer within the allowance.
        const int bank = static_cast<int>(
            static_cast<uint64_t>(issued) %
            static_cast<uint64_t>(banks));
        Address a;
        a.channel = channel_.channelId();
        a.rank = rank;
        a.bank = bank;
        // Only the target bank needs precharging - the sibling banks
        // keep their rows open, which is exactly the parallelism
        // REFpb reclaims (counted by refresh_overlap_cycles).
        if (channel_.bankActive(rank, bank)) {
            Command pre{CommandType::Pre, a, 0};
            channel_.issueAtEarliest(pre, due);
        }
        Command ref{CommandType::RefPb, a, 0};
        channel_.issueAtEarliest(ref, due);
        ++issued;
    }
}

uint64_t
MemoryController::refreshesIssued() const
{
    uint64_t total = 0;
    for (int64_t n : refs_issued_)
        total += static_cast<uint64_t>(n);
    return total;
}

Cycle
MemoryController::issueRead(const MemTransaction &txn,
                            const Address &addr)
{
    catchUpRefresh(addr.rank, txn.arrival);
    // Write-forwarding surrogate: the read must observe writes to its
    // row accepted before it, so those drain first. Pending writes to
    // other rows stay buffered - reads keep priority over them.
    flushRow(addr, txn.arrival);
    const Cycle row_ready = openRowFor(addr, txn.arrival);
    Command rd{CommandType::Rd, addr, 0};
    return channel_.issueAtEarliest(rd, row_ready);
}

Cycle
MemoryController::issueRowOp(const MemTransaction &txn, Address addr)
{
    addr.column = 0;
    catchUpRefresh(addr.rank, txn.arrival);

    // Writes accepted before a destructive row op must land before
    // the row is overwritten (they are destroyed, not resurrected by
    // a later drain).
    flushRow(addr, txn.arrival);

    // The target bank must be precharged for all three mechanisms.
    if (channel_.bankActive(addr.rank, addr.bank)) {
        Command pre{CommandType::Pre, addr, 0};
        channel_.issueAtEarliest(pre, txn.arrival);
    }

    switch (txn.mech) {
      case RowOpMechanism::CodicDet: {
        Command codic{CommandType::Codic, addr, codic_det_variant_};
        return channel_.issueAtEarliest(codic, txn.arrival);
      }
      case RowOpMechanism::RowClone:
      case RowOpMechanism::LisaClone: {
        Address src = addr;
        src.row = txn.reserved_row;
        Command act{CommandType::Act, src, 0};
        channel_.issueAtEarliest(act, txn.arrival);
        if (txn.mech == RowOpMechanism::LisaClone) {
            Command rbm{CommandType::LisaRbm, src, 0};
            channel_.issueAtEarliest(rbm, txn.arrival);
        }
        Command clone{CommandType::RowClone, addr, 0};
        channel_.issueAtEarliest(clone, txn.arrival);
        Command pre{CommandType::Pre, addr, 0};
        return channel_.issueAtEarliest(pre, txn.arrival);
    }
    }
    panic("unknown row-op mechanism");
}

size_t
MemoryController::pickRequestIndex(Cycle arrival_bound) const
{
    const size_t window = std::min(
        read_q_.size(),
        static_cast<size_t>(std::max(1, sched_.read_window)));
    if (window <= 1 || head_bypasses_ >= kReadStarvationLimit)
        return 0;

    // Priority scheduling: the most urgent class (lowest priority
    // value) among arrived requests in the window is served first;
    // row hits are preferred within the class only. With
    // priority_sched off every request is in the head's class and
    // this reduces to plain FR-FCFS row-hit-first.
    int best_priority = read_q_.front().txn.priority;
    if (sched_.priority_sched) {
        for (size_t i = 0; i < window; ++i) {
            const QueuedRequest &e = read_q_[i];
            if (e.txn.kind == TxnKind::RowOp)
                break;
            if (e.txn.arrival > arrival_bound)
                continue;
            best_priority = std::min(best_priority, e.txn.priority);
        }
    }

    size_t oldest_in_class = 0;
    bool have_class_pick = false;
    for (size_t i = 0; i < window; ++i) {
        const QueuedRequest &e = read_q_[i];
        // A row op is a destructive barrier: nothing bypasses it and
        // it never bypasses older requests itself.
        if (e.txn.kind == TxnKind::RowOp)
            break;
        // A request that has not arrived by the scheduling horizon
        // is invisible to the front-end - letting it bypass would
        // push the channel's monotone bus horizons into its future
        // arrival cycle and penalize every already-arrived read.
        if (e.txn.arrival > arrival_bound)
            continue;
        if (sched_.priority_sched && e.txn.priority != best_priority)
            continue;
        const Address &a = e.addr;
        // Never bypass an older request to the same row (it would
        // reorder same-address reads around each other and around
        // the forwarding flush the older one triggers).
        bool older_same_row = false;
        for (size_t j = 0; j < i; ++j) {
            const Address &b = read_q_[j].addr;
            if (b.rank == a.rank && b.bank == a.bank &&
                b.row == a.row) {
                older_same_row = true;
                break;
            }
        }
        if (older_same_row)
            continue;
        if (!have_class_pick) {
            oldest_in_class = i;
            have_class_pick = true;
        }
        if (channel_.bankActive(a.rank, a.bank) &&
            channel_.openRow(a.rank, a.bank) == a.row)
            return i; // Row hit within the most urgent class.
    }
    // No row hit: a priority front-end still pulls the oldest
    // request of the most urgent class ahead of a less urgent head;
    // FR-FCFS without priorities falls back to the head.
    if (sched_.priority_sched && have_class_pick)
        return oldest_in_class;
    return 0;
}

Cycle
MemoryController::serviceNextRequest()
{
    CODIC_ASSERT(!read_q_.empty());
    // Default scheduling horizon: everything that has arrived by the
    // time the channel could service the queue head counts as
    // pending for row-hit bypass.
    return serviceOneRequest(std::max(read_q_.front().txn.arrival,
                                      channel_.lastIssueCycle()));
}

Cycle
MemoryController::serviceOneRequest(Cycle arrival_bound)
{
    CODIC_ASSERT(!read_q_.empty());
    const size_t pick = pickRequestIndex(arrival_bound);
    head_bypasses_ = pick == 0 ? 0 : head_bypasses_ + 1;
    const QueuedRequest req = read_q_[pick];
    read_q_.erase(read_q_.begin() +
                  static_cast<std::ptrdiff_t>(pick));
    const Cycle done = req.txn.kind == TxnKind::Read
                           ? issueRead(req.txn, req.addr)
                           : issueRowOp(req.txn, req.addr);
    OriginCounts &oc = originSlot(req.txn.origin);
    if (req.txn.kind == TxnKind::Read) {
        ++oc.reads;
        const Cycle latency = done - req.txn.arrival;
        oc.read_latency_cycles += static_cast<uint64_t>(latency);
        oc.max_read_latency = std::max(oc.max_read_latency, latency);
    } else {
        ++oc.rowops;
        oc.rowop_latency_cycles +=
            static_cast<uint64_t>(done - req.txn.arrival);
    }
    markCompleted(req.ticket, done);
    return done;
}

OriginCounts &
MemoryController::originSlot(uint64_t origin)
{
    auto it = std::lower_bound(
        origin_counts_.begin(), origin_counts_.end(), origin,
        [](const OriginCounts &c, uint64_t o) { return c.origin < o; });
    if (it == origin_counts_.end() || it->origin != origin) {
        OriginCounts fresh;
        fresh.origin = origin;
        it = origin_counts_.insert(it, fresh);
    }
    return *it;
}

bool
MemoryController::hasArrivedUrgentRead(Cycle bound) const
{
    const size_t window = std::min(
        read_q_.size(),
        static_cast<size_t>(std::max(1, sched_.read_window)));
    for (size_t i = 0; i < window; ++i) {
        const QueuedRequest &e = read_q_[i];
        if (e.txn.kind == TxnKind::RowOp)
            break; // Barrier: nothing jumps a row op.
        if (e.txn.arrival <= bound && e.txn.priority < 0)
            return true;
    }
    return false;
}

void
MemoryController::serviceUrgentReads(Cycle not_before)
{
    if (!sched_.priority_sched)
        return;
    // Each iteration erases one queue entry (serviceOneRequest may
    // force the aged head instead of the urgent read itself - the
    // starvation bound applies to drain jumping too), so this loop
    // terminates.
    while (!read_q_.empty()) {
        const Cycle bound =
            std::max(not_before, channel_.lastIssueCycle());
        if (!hasArrivedUrgentRead(bound))
            return;
        serviceOneRequest(bound);
    }
}

Cycle
MemoryController::acceptWrite(const Address &addr, Cycle now,
                              Ticket ticket)
{
    Cycle accept = now;
    // Retire issued writes whose burst has completed by now.
    while (!write_completions_.empty() &&
           write_completions_.front() <= accept)
        write_completions_.pop_front();

    // Back-pressure through this channel's queue only: a slot is
    // held from acceptance until the write's data burst completes.
    while (pending_writes_.size() + write_completions_.size() >=
           static_cast<size_t>(config_.write_queue_entries)) {
        if (write_completions_.empty()) {
            // Every slot holds an unissued write: force a drain batch
            // so a completion exists to wait for.
            drainOneBatch(accept);
        }
        accept = std::max(accept, write_completions_.front());
        write_completions_.pop_front();
    }

    catchUpRefresh(addr.rank, accept);
    pending_writes_.push_back({addr, ticket, accept});
    ++bank_pending_[bankIndex(addr)];
    ++accepted_writes_;

    // Scheduled drain episode: at the high watermark, flush row-hit
    // batches until occupancy falls to the low watermark.
    const size_t entries =
        static_cast<size_t>(config_.write_queue_entries);
    const size_t high = std::max<size_t>(
        1, entries * static_cast<size_t>(sched_.drain_high_pct) / 100);
    if (pending_writes_.size() >= high) {
        const size_t low =
            entries * static_cast<size_t>(sched_.drain_low_pct) / 100;
        drainPendingTo(low, accept);
    }

    // Per-bank watermark: a bank-hot write stream drains bank-locally
    // long before the whole-queue percentage watermark trips. The
    // per-bank occupancy counters make the check O(1).
    if (sched_.bank_drain_high > 0 &&
        bank_pending_[bankIndex(addr)] >=
            static_cast<uint32_t>(sched_.bank_drain_high))
        drainBankTo(addr.rank, addr.bank,
                    static_cast<size_t>(sched_.bank_drain_low),
                    accept);
    return accept;
}

Ticket
MemoryController::submit(const MemTransaction &txn)
{
    return submit(txn, map_.decode(txn.addr));
}

Ticket
MemoryController::submit(const MemTransaction &txn,
                         const Address &addr)
{
#ifndef NDEBUG
    // A completion callback must not re-enter the service: allocate
    // below may grow the record arena and invalidate the record
    // pointer a servicing loop is holding (see onComplete contract).
    CODIC_ASSERT(!in_callback_,
                 "submit() called from inside a completion callback");
#endif
    TxnRecord rec;
    rec.kind = txn.kind;
    rec.accepted = txn.arrival;
    // The record must exist before acceptance: a write can drain
    // during its own acceptWrite (the eager policy issues at
    // acceptance; a watermark drain can row-hit-coalesce it), and
    // that drain records the completion through this entry.
    const Ticket ticket = records_.allocate(rec);
    switch (txn.kind) {
      case TxnKind::Read:
      case TxnKind::RowOp: {
        // Bounded read queue (Table 5: 64 entries): a full queue
        // services older requests until a slot frees.
        while (read_q_.size() >=
               static_cast<size_t>(config_.read_queue_entries))
            serviceNextRequest();
        // Keep the queue sorted by arrival with submission order
        // breaking ties, so multi-ticket consumers see the same
        // near-global-time issue order at any harvest order. Arrivals
        // are usually nondecreasing, so scanning from the back finds
        // the insertion point in O(1) for the common case.
        size_t pos = read_q_.size();
        while (pos > 0 && txn.arrival < read_q_[pos - 1].txn.arrival)
            --pos;
        read_q_.insert(read_q_.begin() +
                           static_cast<std::ptrdiff_t>(pos),
                       QueuedRequest{txn, ticket, addr});
        break;
      }
      case TxnKind::Write: {
        const Cycle accepted = acceptWrite(addr, txn.arrival, ticket);
        // acceptWrite never allocates a record, so the slot cannot
        // have moved; re-find rather than caching across the call
        // anyway (the arena may compact in the future).
        records_.find(ticket)->accepted = accepted;
        ++originSlot(txn.origin).writes;
        break;
      }
    }
    return ticket;
}

Cycle
MemoryController::acceptedAt(Ticket ticket) const
{
    const TxnRecord *rec = records_.find(ticket);
    CODIC_ASSERT(rec != nullptr,
                 "acceptedAt: unknown or retired ticket");
    return rec->accepted;
}

Cycle
MemoryController::completionOf(Ticket ticket)
{
    TxnRecord *rec = records_.find(ticket);
    CODIC_ASSERT(rec != nullptr,
                 "completionOf: unknown or already-resolved ticket");
    // A callback-owned ticket auto-retires when its callback fires;
    // blocking on it too would read a released record.
    CODIC_ASSERT(callbacks_.empty() ||
                     callbacks_.find(ticket) == callbacks_.end(),
                 "completionOf on a ticket owned by onComplete()");
    // Servicing below resolves other tickets but never allocates a
    // record, so `rec` stays valid across the loop.
    while (!rec->completed) {
        if (rec->kind == TxnKind::Write) {
            // Reads/row ops the schedule orders before the write
            // (arrived by its acceptance) keep their data-bus
            // priority over the forced drain.
            while (!read_q_.empty() &&
                   read_q_.front().txn.arrival <= rec->accepted)
                serviceOneRequest(rec->accepted);
            // The write is still buffered: drain batches (oldest
            // first) until its batch issues.
            drainOneBatch(channel_.lastIssueCycle());
        } else {
            serviceNextRequest();
        }
    }
    const Cycle done = rec->completion;
    records_.release(ticket);
    return done;
}

void
MemoryController::retire(Ticket ticket)
{
    records_.release(ticket);
}

size_t
MemoryController::poll(Cycle now)
{
    for (int r = 0; r < channel_.config().ranks; ++r)
        catchUpRefresh(r, now);
    size_t serviced = 0;
    while (!read_q_.empty() && read_q_.front().txn.arrival <= now) {
        // Bound the bypass window to `now`: poll must never issue a
        // request from the future.
        serviceOneRequest(now);
        ++serviced;
    }
    return serviced;
}

Cycle
MemoryController::drainAll()
{
    while (!read_q_.empty())
        serviceNextRequest();
    const Cycle start = channel_.lastIssueCycle();
    Cycle last = start;
    last = std::max(last, drainPendingTo(0, start));
    while (!write_completions_.empty()) {
        last = std::max(last, write_completions_.front());
        write_completions_.pop_front();
    }
    return last;
}

} // namespace codic
