#include "mem/controller.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace codic {

MemoryController::MemoryController(DramChannel &channel,
                                   const ControllerConfig &config)
    : channel_(channel), config_(config),
      map_(channel.config(), config.map_scheme),
      codic_det_variant_(
          channel.registerVariant(variants::detZero().schedule)),
      sched_(channel.config().scheduler)
{
    CODIC_ASSERT(config_.write_queue_entries > 0);
    sched_.validate();
}

Cycle
MemoryController::openRowFor(const Address &addr, Cycle now)
{
    if (channel_.bankActive(addr.rank, addr.bank)) {
        if (channel_.openRow(addr.rank, addr.bank) == addr.row)
            return now; // Row hit.
        // Row conflict: close the open row first.
        Command pre{CommandType::Pre, addr, 0};
        channel_.issueAtEarliest(pre, now);
    }
    Command act{CommandType::Act, addr, 0};
    Cycle issued = 0;
    const Cycle ready = channel_.issueAtEarliest(act, now, &issued);
    return ready;
}

std::vector<Address>
MemoryController::takeRowMatches(const Address &row, size_t limit)
{
    std::vector<Address> taken;
    for (auto it = pending_writes_.begin();
         it != pending_writes_.end() && taken.size() < limit;) {
        if (it->rank == row.rank && it->bank == row.bank &&
            it->row == row.row) {
            taken.push_back(*it);
            it = pending_writes_.erase(it);
        } else {
            ++it;
        }
    }
    return taken;
}

Cycle
MemoryController::issueRowBatch(const std::vector<Address> &batch,
                                Cycle not_before)
{
    CODIC_ASSERT(!batch.empty());
    Cycle done = 0;
    const Cycle row_ready = openRowFor(batch.front(), not_before);
    for (const Address &addr : batch) {
        Command wr{CommandType::Wr, addr, 0};
        done = channel_.issueAtEarliest(wr, row_ready);
        write_completions_.push_back(done);
    }
    return done;
}

Cycle
MemoryController::drainOneBatch(Cycle not_before)
{
    CODIC_ASSERT(!pending_writes_.empty());
    // FR-FCFS over the write queue: the oldest pending write plus
    // younger same-row writes coalesced into one row-hit batch,
    // preserving their relative order.
    const Address head = pending_writes_.front();
    pending_writes_.pop_front();
    std::vector<Address> batch{head};
    std::vector<Address> hits = takeRowMatches(
        head, static_cast<size_t>(sched_.max_drain_batch) - 1);
    batch.insert(batch.end(), hits.begin(), hits.end());
    return issueRowBatch(batch, not_before);
}

Cycle
MemoryController::drainPendingTo(size_t target, Cycle not_before)
{
    Cycle done = 0;
    while (pending_writes_.size() > target)
        done = std::max(done, drainOneBatch(not_before));
    return done;
}

void
MemoryController::flushRow(const Address &addr, Cycle not_before)
{
    // All of the row's pending writes, issued exactly like a drain
    // batch - forwarding-forced and watermark-scheduled drains of
    // the same writes model identical cycles.
    const std::vector<Address> batch =
        takeRowMatches(addr, pending_writes_.size());
    if (!batch.empty())
        issueRowBatch(batch, not_before);
}

Cycle
MemoryController::read(uint64_t phys_addr, Cycle now)
{
    const Address addr = map_.decode(phys_addr);
    // Write-forwarding surrogate: the read must observe writes to its
    // row accepted before it, so those drain first. Pending writes to
    // other rows stay buffered - reads keep priority over them.
    flushRow(addr, now);
    const Cycle row_ready = openRowFor(addr, now);
    Command rd{CommandType::Rd, addr, 0};
    return channel_.issueAtEarliest(rd, row_ready);
}

Cycle
MemoryController::write(uint64_t phys_addr, Cycle now)
{
    Cycle accept = now;
    // Retire issued writes whose burst has completed by now.
    while (!write_completions_.empty() &&
           write_completions_.front() <= accept)
        write_completions_.pop_front();

    // Back-pressure through this channel's queue only: a slot is
    // held from acceptance until the write's data burst completes.
    while (pending_writes_.size() + write_completions_.size() >=
           static_cast<size_t>(config_.write_queue_entries)) {
        if (write_completions_.empty()) {
            // Every slot holds an unissued write: force a drain batch
            // so a completion exists to wait for.
            drainOneBatch(accept);
        }
        accept = std::max(accept, write_completions_.front());
        write_completions_.pop_front();
    }

    pending_writes_.push_back(map_.decode(phys_addr));
    ++accepted_writes_;

    // Scheduled drain episode: at the high watermark, flush row-hit
    // batches until occupancy falls to the low watermark.
    const size_t entries =
        static_cast<size_t>(config_.write_queue_entries);
    const size_t high = std::max<size_t>(
        1, entries * static_cast<size_t>(sched_.drain_high_pct) / 100);
    if (pending_writes_.size() >= high) {
        const size_t low =
            entries * static_cast<size_t>(sched_.drain_low_pct) / 100;
        drainPendingTo(low, accept);
    }
    return accept;
}

Cycle
MemoryController::drainWrites()
{
    const Cycle start = channel_.lastIssueCycle();
    Cycle last = start;
    last = std::max(last, drainPendingTo(0, start));
    while (!write_completions_.empty()) {
        last = std::max(last, write_completions_.front());
        write_completions_.pop_front();
    }
    return last;
}

Cycle
MemoryController::rowOp(uint64_t row_addr, Cycle now, RowOpMechanism mech,
                        int64_t reserved_row)
{
    Address addr = map_.decode(row_addr);
    addr.column = 0;

    // Writes accepted before a destructive row op must land before
    // the row is overwritten (they are destroyed, not resurrected by
    // a later drain).
    flushRow(addr, now);

    // The target bank must be precharged for all three mechanisms.
    if (channel_.bankActive(addr.rank, addr.bank)) {
        Command pre{CommandType::Pre, addr, 0};
        channel_.issueAtEarliest(pre, now);
    }

    switch (mech) {
      case RowOpMechanism::CodicDet: {
        Command codic{CommandType::Codic, addr, codic_det_variant_};
        return channel_.issueAtEarliest(codic, now);
      }
      case RowOpMechanism::RowClone:
      case RowOpMechanism::LisaClone: {
        Address src = addr;
        src.row = reserved_row;
        Command act{CommandType::Act, src, 0};
        channel_.issueAtEarliest(act, now);
        if (mech == RowOpMechanism::LisaClone) {
            Command rbm{CommandType::LisaRbm, src, 0};
            channel_.issueAtEarliest(rbm, now);
        }
        Command clone{CommandType::RowClone, addr, 0};
        channel_.issueAtEarliest(clone, now);
        Command pre{CommandType::Pre, addr, 0};
        return channel_.issueAtEarliest(pre, now);
    }
    }
    panic("unknown row-op mechanism");
}

} // namespace codic
