#include "mem/address_map.h"

#include "common/logging.h"

namespace codic {

const char *
mapSchemeName(MapScheme s)
{
    switch (s) {
      case MapScheme::RowBankColumn: return "row:bank:col";
      case MapScheme::BankRowColumn: return "bank:row:col";
      case MapScheme::RowBankColumnChannel: return "row:bank:col:ch";
      case MapScheme::RowChannelBankColumn: return "row:ch:bank:col";
      case MapScheme::RowBankRankColumn: return "row:bank:rank:col";
    }
    panic("unknown map scheme");
}

const std::vector<MapScheme> &
allMapSchemes()
{
    static const std::vector<MapScheme> schemes = {
        MapScheme::RowBankColumn,
        MapScheme::BankRowColumn,
        MapScheme::RowBankColumnChannel,
        MapScheme::RowChannelBankColumn,
        MapScheme::RowBankRankColumn,
    };
    return schemes;
}

std::array<AddressMap::Field, 5>
AddressMap::fieldOrder(MapScheme s)
{
    using F = Field;
    // LSB-first: the first entry varies fastest above the burst
    // offset. Each order is a permutation of all five fields, so
    // decode/encode are inverses for any geometry.
    switch (s) {
      case MapScheme::RowBankColumn:
        return {F::Column, F::Bank, F::Row, F::Rank, F::Channel};
      case MapScheme::BankRowColumn:
        return {F::Column, F::Row, F::Bank, F::Rank, F::Channel};
      case MapScheme::RowBankColumnChannel:
        return {F::Channel, F::Column, F::Bank, F::Row, F::Rank};
      case MapScheme::RowChannelBankColumn:
        return {F::Column, F::Bank, F::Channel, F::Row, F::Rank};
      case MapScheme::RowBankRankColumn:
        return {F::Column, F::Rank, F::Bank, F::Row, F::Channel};
    }
    panic("unknown map scheme");
}

namespace {

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

int
log2Of(uint64_t v)
{
    int n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

AddressMap::AddressMap(const DramConfig &config, MapScheme scheme)
    : config_(config), scheme_(scheme), order_(fieldOrder(scheme))
{
    // A geometry nothing can map (channels = 0, inconsistent row
    // size, ...) is a user configuration error, not a simulator bug.
    config_.validate();

    pow2_ = isPow2(static_cast<uint64_t>(config_.burst_bytes));
    burst_shift_ =
        log2Of(static_cast<uint64_t>(config_.burst_bytes));
    for (size_t i = 0; i < order_.size(); ++i) {
        sizes_[i] = fieldSize(order_[i]);
        pow2_ = pow2_ && isPow2(sizes_[i]);
        shift_[i] = log2Of(sizes_[i]);
        mask_[i] = sizes_[i] - 1;
    }
}

uint64_t
AddressMap::fieldSize(Field f) const
{
    switch (f) {
      case Field::Channel:
        return static_cast<uint64_t>(config_.channels);
      case Field::Rank: return static_cast<uint64_t>(config_.ranks);
      case Field::Bank: return static_cast<uint64_t>(config_.banks);
      case Field::Row: return static_cast<uint64_t>(config_.rows);
      case Field::Column:
        return static_cast<uint64_t>(config_.columns);
    }
    panic("unknown address field");
}

Address
AddressMap::decode(uint64_t phys_addr) const
{
    CODIC_ASSERT(phys_addr <
                 static_cast<uint64_t>(config_.capacityBytes()));
    uint64_t x = pow2_
                     ? phys_addr >> burst_shift_
                     : phys_addr /
                           static_cast<uint64_t>(config_.burst_bytes);
    Address a;
    for (size_t i = 0; i < order_.size(); ++i) {
        uint64_t v;
        if (pow2_) {
            v = x & mask_[i];
            x >>= shift_[i];
        } else {
            v = x % sizes_[i];
            x /= sizes_[i];
        }
        switch (order_[i]) {
          case Field::Channel: a.channel = static_cast<int>(v); break;
          case Field::Rank: a.rank = static_cast<int>(v); break;
          case Field::Bank: a.bank = static_cast<int>(v); break;
          case Field::Row: a.row = static_cast<int64_t>(v); break;
          case Field::Column: a.column = static_cast<int>(v); break;
        }
    }
    return a;
}

uint64_t
AddressMap::encode(const Address &a) const
{
    uint64_t x = 0;
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
        uint64_t v = 0;
        switch (*it) {
          case Field::Channel: v = static_cast<uint64_t>(a.channel); break;
          case Field::Rank: v = static_cast<uint64_t>(a.rank); break;
          case Field::Bank: v = static_cast<uint64_t>(a.bank); break;
          case Field::Row: v = static_cast<uint64_t>(a.row); break;
          case Field::Column: v = static_cast<uint64_t>(a.column); break;
        }
        CODIC_ASSERT(v < fieldSize(*it));
        x = x * fieldSize(*it) + v;
    }
    return x * static_cast<uint64_t>(config_.burst_bytes);
}

int
AddressMap::channelOf(uint64_t phys_addr) const
{
    return decode(phys_addr).channel;
}

} // namespace codic
