#include "mem/address_map.h"

#include "common/logging.h"

namespace codic {

AddressMap::AddressMap(const DramConfig &config, MapScheme scheme)
    : config_(config), scheme_(scheme)
{
}

Address
AddressMap::decode(uint64_t phys_addr) const
{
    CODIC_ASSERT(phys_addr <
                 static_cast<uint64_t>(config_.capacityBytes()));
    const uint64_t burst = static_cast<uint64_t>(config_.burst_bytes);
    const uint64_t cols = static_cast<uint64_t>(config_.columns);
    const uint64_t banks = static_cast<uint64_t>(config_.banks);
    const uint64_t rows = static_cast<uint64_t>(config_.rows);

    uint64_t x = phys_addr / burst;
    Address a;
    a.column = static_cast<int>(x % cols);
    x /= cols;
    switch (scheme_) {
      case MapScheme::RowBankColumn:
        a.bank = static_cast<int>(x % banks);
        x /= banks;
        a.row = static_cast<int64_t>(x % rows);
        x /= rows;
        break;
      case MapScheme::BankRowColumn:
        a.row = static_cast<int64_t>(x % rows);
        x /= rows;
        a.bank = static_cast<int>(x % banks);
        x /= banks;
        break;
    }
    a.rank = static_cast<int>(x % static_cast<uint64_t>(config_.ranks));
    x /= static_cast<uint64_t>(config_.ranks);
    a.channel = static_cast<int>(x);
    return a;
}

uint64_t
AddressMap::encode(const Address &a) const
{
    const uint64_t burst = static_cast<uint64_t>(config_.burst_bytes);
    const uint64_t cols = static_cast<uint64_t>(config_.columns);
    const uint64_t banks = static_cast<uint64_t>(config_.banks);
    const uint64_t rows = static_cast<uint64_t>(config_.rows);

    uint64_t x = static_cast<uint64_t>(a.channel);
    x = x * static_cast<uint64_t>(config_.ranks) +
        static_cast<uint64_t>(a.rank);
    switch (scheme_) {
      case MapScheme::RowBankColumn:
        x = x * rows + static_cast<uint64_t>(a.row);
        x = x * banks + static_cast<uint64_t>(a.bank);
        break;
      case MapScheme::BankRowColumn:
        x = x * banks + static_cast<uint64_t>(a.bank);
        x = x * rows + static_cast<uint64_t>(a.row);
        break;
    }
    x = x * cols + static_cast<uint64_t>(a.column);
    return x * burst;
}

} // namespace codic
