/**
 * @file
 * Registration entry points of the builtin scenario groups, one per
 * application domain. Called once by ScenarioRegistry::instance();
 * explicit calls (rather than static-initializer registrars) keep
 * registration immune to static-library dead-stripping.
 */

#ifndef CODIC_SCENARIO_BUILTIN_H
#define CODIC_SCENARIO_BUILTIN_H

namespace codic {

class ScenarioRegistry;

void registerPufScenarios(ScenarioRegistry &registry);
void registerCircuitScenarios(ScenarioRegistry &registry);
void registerColdbootScenarios(ScenarioRegistry &registry);
void registerSecdeallocScenarios(ScenarioRegistry &registry);
void registerTrngScenarios(ScenarioRegistry &registry);
void registerExtScenarios(ScenarioRegistry &registry);
void registerFleetScenarios(ScenarioRegistry &registry);
void registerSchedulerScenarios(ScenarioRegistry &registry);
void registerRefreshScenarios(ScenarioRegistry &registry);
void registerTraceScenarios(ScenarioRegistry &registry);
void registerThermalScenarios(ScenarioRegistry &registry);

} // namespace codic

#endif // CODIC_SCENARIO_BUILTIN_H
