/**
 * @file
 * Trace record/replay scenarios (repository extension): the consumer
 * side of the src/trace subsystem.
 *
 *  - trace_replay: replay a recorded DRAM-level trace (--trace FILE,
 *    rescaled by --trace-speed) against the scheduler under study;
 *    with no file, a built-in cache-filtered mysql trace stands in,
 *    so the scenario is runnable - and deterministic - out of the
 *    box.
 *  - trace_filter_ablation: sweep the modeled LLC size over one raw
 *    CPU-level trace and measure how much DRAM traffic the cache
 *    filter absorbs, and what the surviving stream costs to replay.
 *  - trace_vs_synthetic: the same record count replayed as (a) the
 *    cache-filtered trace, with its bursty phase structure, and (b)
 *    a rate-matched uniform synthetic stream, across the scheduler
 *    presets - quantifying what trace-driven evaluation sees that
 *    synthetic streams miss.
 *
 * Determinism: with no --trace file every structured row is a pure
 * function of (seed, scale); replay itself is single-threaded and
 * demand-driven, so --threads never changes output. With a --trace
 * file the output is a pure function of (file, trace_speed, sched) -
 * the CI smoke records once at --threads 1 and asserts the replay
 * JSON is byte-identical at --threads 1 and 8.
 */

#include "scenario/builtin.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "dram/system.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"
#include "sim/workloads.h"
#include "trace/cache_filter.h"
#include "trace/replay.h"
#include "trace/trace_io.h"

namespace codic {

namespace {

/** The built-in trace source: one cache-filtered mysql run. */
struct BuiltinTrace
{
    std::vector<TraceRecord> raw;  //!< CPU-level load/store/flush.
    std::vector<TraceRecord> dram; //!< Post-LLC miss stream.
    CacheFilterStats stats;
};

std::vector<TraceRecord>
rawMysqlTrace(RunContext &ctx)
{
    WorkloadParams params = benchmarkParams(
        "mysql", paperSeed(ctx.options(), 1907));
    params.phases = ctx.scaled(params.phases);
    // Compress the working set to LLC scale: with mysql's real 96 MB
    // footprint every reference is a compulsory miss and the filter
    // has nothing to show; at 2 MB the reuse the cache model exists
    // to capture actually happens.
    params.footprint_bytes = 2ull << 20;
    return rawTraceFromWorkload(generateWorkload(params));
}

BuiltinTrace
builtinTrace(RunContext &ctx)
{
    BuiltinTrace t;
    t.raw = rawMysqlTrace(ctx);
    CacheFilter filter{CacheFilterConfig{}};
    t.dram = filter.filter(t.raw);
    t.stats = filter.stats();
    return t;
}

/** One replay of a DRAM-level record stream on a fresh system. */
struct ReplayOutcome
{
    ReplayReport report;
    CommandCounts counts;
};

ReplayOutcome
replayOn(const DramConfig &cfg,
         const std::vector<TraceRecord> &records, double speed)
{
    DramSystem sys(cfg);
    ReplayOptions ro;
    ro.speed = speed;
    TraceReplaySource source(sys, ro);
    source.play(records);
    ReplayOutcome out;
    out.report = source.finish();
    out.counts = sys.totalCounts();
    return out;
}

std::vector<double>
latenciesUs(const DramConfig &cfg, const std::vector<Cycle> &cycles)
{
    std::vector<double> us;
    us.reserve(cycles.size());
    for (const Cycle c : cycles)
        us.push_back(cfg.cyclesToNs(c) / 1e3);
    return us;
}

/** splitmix64: the portable address scrambler used for synthesis. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void
runTraceReplay(RunContext &ctx)
{
    const RunOptions &opt = ctx.options();

    // A trace records whatever module it was captured on (a fleet
    // campaign spans a far larger address space than one device), so
    // size the replay module from the trace header's max address:
    // next power of two of MB covering it, 256 MB floor. An explicit
    // --capacity-mb still wins.
    std::unique_ptr<TraceReader> reader;
    int64_t default_capacity_mb = 256;
    if (!opt.trace_path.empty()) {
        reader = std::make_unique<TraceReader>(opt.trace_path);
        const uint64_t needed_mb =
            std::bit_ceil(reader->maxAddr() / (1ull << 20) + 1);
        default_capacity_mb = std::max<int64_t>(
            default_capacity_mb, static_cast<int64_t>(needed_mb));
    }
    DramConfig cfg = moduleFor(opt,
                               opt.capacityMbOr(default_capacity_mb),
                               opt.channelsOr(1));
    cfg.scheduler = schedulerFor(opt, "batched");
    DramSystem sys(cfg);
    ReplayOptions ro;
    ro.speed = opt.trace_speed;
    TraceReplaySource source(sys, ro);

    if (reader) {
        ctx.note("replaying " + opt.trace_path + ": " +
                 std::to_string(reader->recordCount()) +
                 " records recorded by scenario '" +
                 reader->meta().scenario + "' (seed " +
                 std::to_string(reader->meta().seed) + ", format v" +
                 std::to_string(reader->version()) + ")");
        TraceCursor cursor = reader->cursor();
        source.play(cursor);
    } else {
        const BuiltinTrace t = builtinTrace(ctx);
        ctx.note("no --trace file given; replaying the built-in "
                 "cache-filtered mysql trace (" +
                 std::to_string(t.raw.size()) +
                 " raw records -> " + std::to_string(t.dram.size()) +
                 " post-LLC records)");
        source.play(t.dram);
    }

    const ReplayReport rep = source.finish();
    const CommandCounts counts = sys.totalCounts();
    const std::vector<double> lat =
        latenciesUs(cfg, rep.read_latencies);
    ctx.row("trace replay",
            ResultRow()
                .add("records", rep.records)
                .add("reads", rep.reads)
                .add("writes", rep.writes)
                .add("rowops", rep.rowops)
                .add("trace_speed", opt.trace_speed)
                .add("makespan_ms",
                     cfg.cyclesToNs(rep.makespan) / 1e6)
                .add("read_p50_us",
                     lat.empty() ? 0.0 : percentile(lat, 50))
                .add("read_p95_us",
                     lat.empty() ? 0.0 : percentile(lat, 95))
                .add("read_p99_us",
                     lat.empty() ? 0.0 : percentile(lat, 99))
                .add("activations", counts.act)
                .add("bus_turnarounds", counts.rd_wr_turnarounds +
                                            counts.wr_rd_turnarounds));
    ctx.note("Replay preserves the trace's inter-arrival timing "
             "(divided by trace_speed), so the scheduler sees the "
             "recorded burst structure, not a smoothed average "
             "rate. Record a trace from any scenario with "
             "--record-trace FILE and feed it back with --trace "
             "FILE.");
}

void
runTraceFilterAblation(RunContext &ctx)
{
    const RunOptions &opt = ctx.options();
    const std::vector<TraceRecord> raw = rawMysqlTrace(ctx);

    DramConfig cfg =
        moduleFor(opt, opt.capacityMbOr(256), opt.channelsOr(1));
    cfg.scheduler = SchedulerPolicy::preset("batched");

    for (const int llc_kb : {64, 128, 256, 512, 1024, 2048}) {
        CacheFilterConfig fc;
        fc.llc_bytes = static_cast<uint64_t>(llc_kb) * 1024ull;
        CacheFilter filter(fc);
        const std::vector<TraceRecord> dram = filter.filter(raw);
        const CacheFilterStats &stats = filter.stats();
        const ReplayOutcome out = replayOn(cfg, dram, 1.0);
        ctx.row(
            "LLC size vs post-filter DRAM traffic",
            ResultRow()
                .add("llc_kb", llc_kb)
                .add("raw_records", stats.records_in)
                .add("hits", stats.hits)
                .add("misses", stats.misses)
                .add("writebacks", stats.writebacks)
                .add("hit_rate", stats.hitRate())
                .add("dram_records", stats.records_out)
                .add("traffic_reduction_x",
                     stats.records_out
                         ? static_cast<double>(stats.records_in) /
                               static_cast<double>(stats.records_out)
                         : 0.0)
                .add("replay_makespan_ms",
                     cfg.cyclesToNs(out.report.makespan) / 1e6));
    }
    ctx.note("The cache filter keeps only the references that miss "
             "the modeled LLC (plus the dirty writebacks those "
             "misses evict), so the committed trace shrinks with "
             "LLC size while staying exact at the DRAM interface - "
             "the Pin/Bochs -> DRAM-trace pipeline of the paper's "
             "Appendix A methodology.");
}

void
runTraceVsSynthetic(RunContext &ctx)
{
    const RunOptions &opt = ctx.options();
    const BuiltinTrace t = builtinTrace(ctx);

    // Rate-matched synthetic double: same record count, same
    // read/write split, uniform 64 B-aligned addresses over the
    // workload footprint, constant inter-arrival equal to the
    // trace's mean - everything the trace has except its burst
    // structure and locality.
    uint64_t reads = 0;
    for (const TraceRecord &r : t.dram)
        reads += r.kind == TraceOpKind::Read;
    const uint64_t span =
        t.dram.empty() ? 0
                       : t.dram.back().tick - t.dram.front().tick;
    const uint64_t gap =
        t.dram.size() > 1
            ? std::max<uint64_t>(1, span / (t.dram.size() - 1))
            : 1;
    const uint64_t footprint = 2ull << 20; // rawMysqlTrace's.
    uint64_t rng = paperSeed(opt, 0xC0D1C);
    std::vector<TraceRecord> synthetic;
    synthetic.reserve(t.dram.size());
    for (size_t i = 0; i < t.dram.size(); ++i) {
        TraceRecord r;
        r.kind = i < reads ? TraceOpKind::Read : TraceOpKind::Write;
        r.addr = (splitmix64(rng) % footprint) & ~63ull;
        r.tick = static_cast<uint64_t>(i) * gap;
        synthetic.push_back(r);
    }
    // Interleave kinds deterministically so reads and writes mix at
    // the trace's ratio instead of forming two monolithic runs.
    for (size_t i = 0; i < synthetic.size(); ++i) {
        const uint64_t pick = splitmix64(rng) % synthetic.size();
        std::swap(synthetic[i].kind, synthetic[pick].kind);
    }

    for (const char *preset : {"eager", "batched", "aggressive"}) {
        DramConfig cfg =
            moduleFor(opt, opt.capacityMbOr(256), opt.channelsOr(1));
        cfg.scheduler = SchedulerPolicy::preset(preset);
        struct Source
        {
            const char *name;
            const std::vector<TraceRecord> *records;
        };
        for (const Source src : {Source{"recorded_trace", &t.dram},
                                 Source{"synthetic_uniform",
                                        &synthetic}}) {
            const ReplayOutcome out =
                replayOn(cfg, *src.records, opt.trace_speed);
            const std::vector<double> lat =
                latenciesUs(cfg, out.report.read_latencies);
            double mean = 0.0;
            for (const double v : lat)
                mean += v;
            if (!lat.empty())
                mean /= static_cast<double>(lat.size());
            ctx.row("trace vs synthetic across scheduler presets",
                    ResultRow()
                        .add("sched", preset)
                        .add("source", src.name)
                        .add("records", out.report.records)
                        .add("makespan_ms",
                             cfg.cyclesToNs(out.report.makespan) /
                                 1e6)
                        .add("activations", out.counts.act)
                        .add("bus_turnarounds",
                             out.counts.rd_wr_turnarounds +
                                 out.counts.wr_rd_turnarounds)
                        .add("read_mean_us", mean)
                        .add("read_p95_us",
                             lat.empty() ? 0.0
                                         : percentile(lat, 95)));
        }
    }
    ctx.note("The synthetic double matches the trace's record "
             "count, read/write ratio, and mean arrival rate but "
             "not its phase bursts or reuse locality - the gap "
             "between the two rows of each preset is what "
             "trace-driven evaluation captures and rate-matched "
             "synthetic streams miss.");
}

} // namespace

void
registerTraceScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "trace_replay",
        "Replay a recorded DRAM-level trace (--trace FILE, "
        "--trace-speed F) against the scheduler under study; "
        "built-in cache-filtered mysql trace when no file is given",
        runTraceReplay));
    registry.add(makeScenario(
        "trace_filter_ablation",
        "Sweep the modeled LLC size over one raw CPU-level trace: "
        "cache-filter hit/miss/writeback stats and the replay cost "
        "of the surviving DRAM stream",
        runTraceFilterAblation));
    registry.add(makeScenario(
        "trace_vs_synthetic",
        "Replay the cache-filtered trace vs a rate-matched uniform "
        "synthetic stream across scheduler presets",
        runTraceVsSynthetic));
}

} // namespace codic
