/**
 * @file
 * Fleet scenarios: population-scale serving studies over the
 * src/fleet subsystem (the ROADMAP's "multi-system fleets" item).
 *
 *  - fleet_enroll: enroll a device population into an
 *    EnrollmentStore (optionally persisted with --store).
 *  - fleet_auth_load: pure authentication traffic against an
 *    enrolled (or --store-loaded) population, with impostor probes.
 *  - fleet_mixed: mixed authenticate / re-enroll / TRNG /
 *    secure-dealloc traffic under a Zipfian popularity law.
 *  - fleet_scaling: shard-count sweep of the modeled makespan (like
 *    ablation_engine_parallelism, the sweep variable is the study
 *    input; --shards above 8 extends the sweep). With --store-mmap
 *    the sweep serves a binary --store file through the mmap read
 *    path (synthesizing a deterministic population when the file
 *    does not exist yet), so a 10^7-device store runs with flat
 *    per-request memory.
 *  - fleet_overload: open-loop arrival sweep past the modeled
 *    serving capacity with admission control on - shed rate rises
 *    with offered load while the admitted urgent p99 stays bounded
 *    by the deadline (both CI-gated).
 *  - fleet_region_serving: several regions (own population, mix,
 *    skew, arrival rate, shard-placement policy) served by one
 *    process on one engine, with per-region and fleet-global
 *    percentiles.
 *
 * Determinism: structured rows are pure functions of (seed, scale,
 * devices, requests, zipf) - never of --threads or --shards (the
 * fleet_scaling sweep reports per swept shard count, not per the
 * execution shard count).
 */

#include "scenario/builtin.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/stats.h"
#include "dram/system.h"
#include "fleet/auth_service.h"
#include "fleet/device_fleet.h"
#include "fleet/enrollment_store.h"
#include "fleet/region.h"
#include "fleet/store_mmap.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"
#include "scenario/scheduler_workloads.h"

namespace codic {

namespace {

/** Shared fleet construction from the run options. */
FleetConfig
fleetConfigFor(const RunContext &ctx, int64_t default_devices)
{
    const RunOptions &options = ctx.options();
    FleetConfig fc;
    fc.population_seed = paperSeed(options, 2026);
    fc.devices =
        static_cast<uint64_t>(options.devicesOr(default_devices));
    fc.shards = options.shardsOr(4);
    fc.dram = moduleFor(options, options.capacityMbOr(1024),
                        options.channelsOr(1));
    // Serving default: the batched scheduler (--sched overrides).
    fc.dram.scheduler = schedulerFor(options, "batched");
    return fc;
}

AuthConfig
authConfigFor(const RunContext &ctx)
{
    AuthConfig ac;
    ac.threads = ctx.options().threads;
    return ac;
}

/** Signature-size statistics over a store (ascending device ids). */
RunningStats
signatureCellStats(const EnrollmentStore &store)
{
    RunningStats cells;
    for (uint64_t id : store.deviceIds())
        cells.add(static_cast<double>(store.record(id)->cell_count));
    return cells;
}

void
emitLatencyRow(RunContext &ctx, const std::string &section,
               const LoadReport &report)
{
    // Latency columns are queueing-aware (wait + service) for
    // open-loop streams; closed-loop streams have zero waits, so
    // their latency is the modeled service time alone.
    ctx.row(section,
            ResultRow()
                .add("requests", report.requests)
                .add("open_loop", report.open_loop)
                .add("mean_us", report.latency_mean_ns / 1e3)
                .add("p50_us", report.latency_p50_ns / 1e3)
                .add("p95_us", report.latency_p95_ns / 1e3)
                .add("p99_us", report.latency_p99_ns / 1e3)
                .add("max_us", report.latency_max_ns / 1e3)
                .add("wait_mean_us", report.wait_mean_ns / 1e3)
                .add("wait_p95_us", report.wait_p95_ns / 1e3)
                .add("wait_max_us", report.wait_max_ns / 1e3)
                .add("total_service_ms",
                     report.total_service_ns / 1e6)
                .add("energy_mj", report.total_energy_nj / 1e6)
                .addTiming("wall_s", report.wall_seconds)
                .addTiming("wall_krps",
                           report.wall_seconds > 0.0
                               ? static_cast<double>(report.requests) /
                                     report.wall_seconds / 1e3
                               : 0.0));
}

void
runFleetEnroll(RunContext &ctx)
{
    const FleetConfig fc =
        fleetConfigFor(ctx, static_cast<int64_t>(ctx.scaled(2000)));
    DeviceFleet fleet(fc);
    EnrollmentStore store(fc.population_seed);
    const AuthConfig ac = authConfigFor(ctx);
    AuthService service(fleet, store, ac);

    const auto wall_start = std::chrono::steady_clock::now();
    service.enrollAll();
    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    const RunningStats cells = signatureCellStats(store);
    const FleetCostModel &cm = service.costModel();
    const double per_device_ns = cm.sig_eval_ns + ac.store_write_ns;
    ctx.row("enrolled population",
            ResultRow()
                .add("devices", static_cast<uint64_t>(fc.devices))
                .add("signature_cells_mean", cells.mean())
                .add("signature_cells_min", cells.min())
                .add("signature_cells_max", cells.max())
                .add("store_bytes",
                     static_cast<uint64_t>(store.binarySizeBytes()))
                .add("modeled_enroll_us_per_device",
                     per_device_ns / 1e3)
                .add("modeled_enroll_total_ms",
                     per_device_ns * static_cast<double>(fc.devices) /
                         1e6)
                .addTiming("wall_s", wall_s)
                .addTiming("wall_devices_per_s",
                           wall_s > 0.0
                               ? static_cast<double>(fc.devices) /
                                     wall_s
                               : 0.0));

    if (!ctx.options().store_path.empty()) {
        store.saveFile(ctx.options().store_path);
        // The path is environment detail; keep it out of the
        // structured output so runs differing only in --store stay
        // byte-identical.
        inform("fleet_enroll: wrote enrollment store (",
               store.size(), " devices) to '",
               ctx.options().store_path, "'");
    }
    ctx.note("Every device's golden CODIC-sig signature is a pure "
             "function of (population seed, device id): the store "
             "serializes byte-identically at any shard or thread "
             "count.");
}

/**
 * The enrolled population for a traffic scenario: loaded from
 * --store when given, else enrolled in memory first.
 */
struct TrafficSetup
{
    FleetConfig fleet_config;
    EnrollmentStore store{0};
    std::vector<uint64_t> targets;
};

TrafficSetup
setupEnrolledFleet(RunContext &ctx, int64_t default_devices)
{
    // The heap-decoded setup path below rebuilds the population from
    // the store's device-id list; the mmap read path is wired into
    // fleet_scaling (the population-scale study) only.
    if (ctx.options().store_mmap)
        fatal("fleet: --store-mmap is supported by fleet_scaling "
              "(the population-scale study); this scenario decodes "
              "the store into heap");
    TrafficSetup setup;
    setup.fleet_config = fleetConfigFor(ctx, default_devices);
    if (!ctx.options().store_path.empty()) {
        setup.store =
            EnrollmentStore::loadFile(ctx.options().store_path);
        if (setup.store.size() == 0)
            fatal("fleet: enrollment store '",
                  ctx.options().store_path, "' is empty");
        setup.targets = setup.store.deviceIds();
        // The store is authoritative: rebuild the exact population
        // it was enrolled from. Tell the user when that overrides
        // an explicit flag rather than ignoring it silently.
        if (ctx.options().devices > 0 &&
            static_cast<uint64_t>(ctx.options().devices) !=
                setup.store.size())
            warn("fleet: --devices ", ctx.options().devices,
                 " ignored; the --store file pins the population (",
                 setup.store.size(), " enrolled devices)");
        setup.fleet_config.population_seed =
            setup.store.populationSeed();
        setup.fleet_config.devices = setup.targets.back() + 1;
    } else {
        setup.store =
            EnrollmentStore(setup.fleet_config.population_seed);
    }
    return setup;
}

/** Enroll in memory when no --store file provided the population. */
void
finishSetup(TrafficSetup &setup, AuthService &service)
{
    if (setup.targets.empty()) {
        service.enrollAll();
        setup.targets = setup.store.deviceIds();
    }
}

void
runFleetAuthLoad(RunContext &ctx)
{
    TrafficSetup setup = setupEnrolledFleet(
        ctx, static_cast<int64_t>(ctx.scaled(2000)));
    DeviceFleet fleet(setup.fleet_config);
    const AuthConfig ac = authConfigFor(ctx);
    AuthService service(fleet, setup.store, ac);
    finishSetup(setup, service);

    TrafficConfig tc;
    tc.traffic_seed = paperSeed(ctx.options(), 31);
    tc.requests = static_cast<uint64_t>(
        ctx.options().requestsOr(
            static_cast<int64_t>(ctx.scaled(20000))));
    tc.zipf = ctx.options().zipfOr(0.0);
    const RequestGenerator gen(tc, setup.targets);
    const LoadReport report = service.execute(gen.generate());

    const uint64_t auth_known =
        report.accepted + report.rejected;
    ctx.row("authentication outcomes",
            ResultRow()
                .add("devices",
                     static_cast<uint64_t>(setup.targets.size()))
                .add("requests", report.requests)
                .add("zipf", tc.zipf)
                .add("accepted", report.accepted)
                .add("rejected", report.rejected)
                .add("unknown_device", report.unknown_device)
                .add("true_accept_rate",
                     auth_known
                         ? static_cast<double>(report.accepted) /
                               static_cast<double>(auth_known)
                         : 0.0)
                .add("planned_cache_hit_rate",
                     auth_known
                         ? static_cast<double>(
                               report.planned_cache_hits) /
                               static_cast<double>(auth_known)
                         : 0.0));
    emitLatencyRow(ctx, "modeled service latency", report);

    // Impostor probes: a fresh response of device A scored against
    // the golden signature of device B must (essentially) never
    // clear the acceptance threshold.
    {
        Rng rng(paperSeed(ctx.options(), 37));
        const size_t n = setup.targets.size();
        // Impostor pairs need two distinct devices; with a
        // single-device population the probe would score a device
        // against itself and count genuine accepts as false ones.
        const size_t trials =
            n < 2 ? 0 : std::min<size_t>(ctx.scaled(500), tc.requests);
        uint64_t false_accepts = 0;
        for (size_t t = 0; t < trials; ++t) {
            const uint64_t a = setup.targets[rng.below(n)];
            uint64_t b = setup.targets[rng.below(n)];
            while (b == a)
                b = setup.targets[rng.below(n)];
            const auto golden = setup.store.lookup(b);
            const Response probe =
                fleet.challengeResponse(a, rng.next64());
            if (golden &&
                jaccard(*golden, probe) >= ac.accept_threshold)
                ++false_accepts;
        }
        ctx.row("impostor probes",
                ResultRow()
                    .add("trials", static_cast<uint64_t>(trials))
                    .add("false_accepts", false_accepts));
    }
    ctx.note("Paper Section 6.1.1 reports 99.36% true accepts and "
             "0.00% false accepts for exact-match authentication; "
             "the fleet's Jaccard-threshold matcher reproduces both "
             "at population scale.");
}

TrafficConfig
mixedTraffic(RunContext &ctx, uint64_t default_requests)
{
    TrafficConfig tc;
    tc.traffic_seed = paperSeed(ctx.options(), 41);
    tc.requests = static_cast<uint64_t>(ctx.options().requestsOr(
        static_cast<int64_t>(default_requests)));
    tc.zipf = ctx.options().zipfOr(0.9);
    tc.weight_auth = 0.7;
    tc.weight_reenroll = 0.1;
    tc.weight_trng = 0.1;
    tc.weight_dealloc = 0.1;
    tc.offered_rps = 50000.0; // Open-loop arrival stamping.
    return tc;
}

void
runFleetMixed(RunContext &ctx)
{
    TrafficSetup setup = setupEnrolledFleet(
        ctx, static_cast<int64_t>(ctx.scaled(1000)));
    DeviceFleet fleet(setup.fleet_config);
    AuthService service(fleet, setup.store, authConfigFor(ctx));
    finishSetup(setup, service);

    const TrafficConfig tc = mixedTraffic(ctx, ctx.scaled(20000));
    const RequestGenerator gen(tc, setup.targets);
    const std::vector<FleetRequest> stream = gen.generate();
    const LoadReport report = service.execute(stream);

    for (int k = 0; k < kRequestKinds; ++k) {
        ctx.row("request mix",
                ResultRow()
                    .add("kind", requestKindName(
                                     static_cast<RequestKind>(k)))
                    .add("requests", report.by_kind[k])
                    .add("share",
                         report.requests
                             ? static_cast<double>(
                                   report.by_kind[k]) /
                                   static_cast<double>(
                                       report.requests)
                             : 0.0));
    }
    ctx.row("functionality outcomes",
            ResultRow()
                .add("accepted", report.accepted)
                .add("rejected", report.rejected)
                .add("unknown_device", report.unknown_device)
                .add("reenrolled", report.reenrolled)
                .add("trng_bits_delivered",
                     report.trng_bits_delivered)
                .add("trng_health_failures",
                     report.trng_health_failures)
                .add("dealloc_rows_cleared",
                     report.dealloc_rows_cleared));
    emitLatencyRow(ctx, "modeled service latency", report);
    ctx.note("Mixed CODIC traffic (70% authenticate, 10% each "
             "re-enroll / TRNG draw / secure-dealloc) over a "
             "Zipf(" + std::to_string(tc.zipf) +
             ") device-popularity law.");
}

/** Shared row emitter of the fleet_scaling sweep points. */
void
emitScalingRow(RunContext &ctx, int shards, const LoadReport &report,
               double makespan_1, double offered_rps)
{
    const double makespan_ns = report.makespanNs();
    // Max/mean busy ratio: 1 = perfectly balanced, and an idle
    // shard raises it instead of zeroing it out (max/min would
    // divide by an idle shard's 0).
    double busy_sum = 0.0;
    for (double b : report.shard_busy_ns)
        busy_sum += b;
    const double busy_mean = busy_sum / static_cast<double>(shards);
    const double speedup =
        makespan_ns > 0.0 ? makespan_1 / makespan_ns : 0.0;
    ctx.row("shard scaling (replayed DRAM makespan)",
            ResultRow()
                .add("shards", shards)
                .add("requests", report.requests)
                .add("makespan_ms", makespan_ns / 1e6)
                .add("speedup_vs_1_shard", speedup)
                .add("efficiency", speedup / shards)
                .add("achieved_krps",
                     makespan_ns > 0.0
                         ? static_cast<double>(report.requests) /
                               (makespan_ns / 1e9) / 1e3
                         : 0.0)
                .add("offered_krps", offered_rps / 1e3)
                .add("imbalance",
                     busy_mean > 0.0 ? makespan_ns / busy_mean
                                     : 1.0)
                .addTiming("wall_s", report.wall_seconds));
}

/**
 * fleet_scaling --store-mmap: the shard sweep served off a binary
 * store file through the mmap read path. When the file does not
 * exist yet it is synthesized as a deterministic pseudo-population
 * (a pure function of the population seed) - the serving data path
 * under study (index binary search, decode-on-demand, LRU cache,
 * overlay writes) never depends on whether the signatures came from
 * real PUF enrollment, and real enrollment of 10^7 devices would
 * take hours of simulated silicon. Auth outcomes against synthetic
 * signatures are reported but are not the study's subject.
 */
void
runFleetScalingMmap(RunContext &ctx)
{
    const RunOptions &options = ctx.options();
    FleetConfig proto_config = fleetConfigFor(
        ctx, static_cast<int64_t>(ctx.scaled(1000)));
    const std::string &path = options.store_path;

    if (!std::ifstream(path, std::ios::binary).good()) {
        const uint64_t written = writeSyntheticStore(
            path, proto_config.population_seed, proto_config.devices,
            proto_config.segment_bits, /*cells_per_record=*/24);
        // Path and reuse are environment detail: keep them out of
        // the structured rows (like fleet_enroll's --store write).
        inform("fleet_scaling: synthesized ", written,
               "-record store at '", path, "'");
    }

    const TrafficConfig tc = mixedTraffic(ctx, ctx.scaled(8000));
    std::vector<int> sweep = {1, 2, 4, 8};
    if (options.shards > 8)
        sweep.push_back(options.shards);

    bool described = false;
    double makespan_1 = 0.0;
    for (int shards : sweep) {
        FleetConfig fc = proto_config;
        fc.shards = shards;
        // A fresh mapping per sweep point: re-enrollment overlays
        // are per-point state (the file itself is never mutated).
        MmapEnrollmentStore store(path);
        fc.population_seed = store.populationSeed();
        if (!described) {
            described = true;
            ctx.row("mmap store",
                    ResultRow()
                        .add("base_records",
                             static_cast<uint64_t>(
                                 store.baseRecords()))
                        .add("mapped_mb",
                             static_cast<double>(
                                 store.mappedBytes()) /
                                 (1024.0 * 1024.0)));
        }
        DeviceFleet fleet(fc);
        AuthService service(fleet, store, authConfigFor(ctx));
        // The generator targets the population range directly: a
        // device-id scan of a 10^7-record index would cost the very
        // memory the mmap path exists to avoid.
        const RequestGenerator gen(tc, fc.devices);
        const LoadReport report = service.execute(gen.generate());
        if (shards == 1)
            makespan_1 = report.makespanNs();
        emitScalingRow(ctx, shards, report, makespan_1,
                       tc.offered_rps);
    }
    ctx.note("Store records are decoded on demand through the mmap "
             "index (O(log n) page touches per cold lookup) and the "
             "bounded LRU cache: per-request memory stays flat at "
             "any store size. Re-enrollments land in a heap overlay; "
             "MmapEnrollmentStore::compactTo() folds them back into "
             "a fresh file.");
}

void
runFleetScaling(RunContext &ctx)
{
    if (ctx.options().store_mmap) {
        runFleetScalingMmap(ctx);
        return;
    }
    const TrafficConfig tc = mixedTraffic(ctx, ctx.scaled(8000));

    // Like ablation_engine_parallelism: the sweep is the study
    // input; an explicit --shards above the floor extends it (and
    // with it the row set).
    std::vector<int> sweep = {1, 2, 4, 8};
    if (ctx.options().shards > 8)
        sweep.push_back(ctx.options().shards);

    // Enroll once and snapshot the store: the signatures are
    // identical at every shard count, and each sweep point needs a
    // fresh store only because execute() mutates it through
    // re-enrollments - a varint reload is far cheaper than
    // re-running the O(devices) PUF enrollment per sweep point.
    std::string store_snapshot;
    FleetConfig proto_config;
    {
        TrafficSetup setup = setupEnrolledFleet(
            ctx, static_cast<int64_t>(ctx.scaled(1000)));
        DeviceFleet fleet(setup.fleet_config);
        AuthService service(fleet, setup.store, authConfigFor(ctx));
        finishSetup(setup, service);
        proto_config = setup.fleet_config;
        std::ostringstream bytes;
        setup.store.saveBinary(bytes);
        store_snapshot = bytes.str();
    }

    double makespan_1 = 0.0;
    for (int shards : sweep) {
        FleetConfig fc = proto_config;
        fc.shards = shards;
        std::istringstream bytes(store_snapshot);
        EnrollmentStore store = EnrollmentStore::loadBinary(bytes);
        const std::vector<uint64_t> targets = store.deviceIds();
        DeviceFleet fleet(fc);
        AuthService service(fleet, store, authConfigFor(ctx));
        const RequestGenerator gen(tc, targets);
        const LoadReport report = service.execute(gen.generate());

        if (shards == 1)
            makespan_1 = report.makespanNs();
        emitScalingRow(ctx, shards, report, makespan_1,
                       tc.offered_rps);
    }
    ctx.note("Each shard replays its batch on its own DramSystem; "
             "the makespan is the slowest shard's busy time. "
             "Zipf-skewed popularity bounds the speedup through the "
             "hottest shard (device-id sharding keeps a device's "
             "state on one shard).");
}

/** Admission/shed telemetry row shared by the serving scenarios. */
void
emitAdmissionRow(RunContext &ctx, const std::string &section,
                 ResultRow row, const LoadReport &report)
{
    ctx.row(section,
            row.add("requests", report.requests)
                .add("admitted", report.admitted)
                .add("shed", report.shed)
                .add("shed_rate", report.shed_rate)
                .add("shed_urgent", report.shed_urgent)
                .add("shed_best_effort", report.shed_best_effort)
                .add("shed_deadline", report.shed_deadline)
                .add("shed_queue", report.shed_queue)
                .add("shed_bucket", report.shed_bucket)
                .add("latency_p50_us", report.latency_p50_ns / 1e3)
                .add("latency_p99_us", report.latency_p99_ns / 1e3)
                .add("admitted_urgent_p50_us",
                     report.admitted_urgent_p50_ns / 1e3)
                .add("admitted_urgent_p99_us",
                     report.admitted_urgent_p99_ns / 1e3));
}

/**
 * Open-loop overload study: sweep the offered arrival rate across
 * and past the admission capacity. The two properties the serving
 * stack is built for - and that CI gates on the summary row:
 *
 *  - p99_bounded: the admitted urgent p99 stays within 2x of its
 *    in-capacity value at every overload point (deadline-based drop
 *    caps the queueing wait an admitted request can have ahead of
 *    it);
 *  - shed_monotone: the shed rate rises (never falls beyond noise)
 *    with offered load - overload degrades smoothly instead of
 *    collapsing;
 *  - urgent_protected: at every point the urgent class's shed
 *    fraction stays at or below the best-effort class's (the
 *    reserve never sheds an authenticate while still admitting
 *    maintenance traffic).
 */
void
runFleetOverload(RunContext &ctx)
{
    TrafficSetup setup = setupEnrolledFleet(
        ctx, static_cast<int64_t>(ctx.scaled(400)));
    DeviceFleet fleet(setup.fleet_config);
    AuthConfig ac = authConfigFor(ctx);
    AuthService probe(fleet, setup.store, ac);
    finishSetup(setup, probe);

    // Capacity: --shed overrides; the default is the cost model's
    // own serving capacity (lanes over one authenticate service
    // time), so the sweep brackets saturation by construction.
    const double capacity_rps =
        ctx.options().shedOr(probe.modeledCapacityRps());
    ac.admission.capacity_rps = capacity_rps;
    AuthService service(fleet, setup.store, ac);

    // Mix without re-enrollment: the store stays read-only, so one
    // enrolled population serves every sweep point.
    TrafficConfig tc;
    tc.traffic_seed = paperSeed(ctx.options(), 47);
    tc.requests = static_cast<uint64_t>(ctx.options().requestsOr(
        static_cast<int64_t>(ctx.scaled(6000))));
    tc.zipf = ctx.options().zipfOr(0.9);
    tc.weight_auth = 0.8;
    tc.weight_reenroll = 0.0;
    tc.weight_trng = 0.15;
    tc.weight_dealloc = 0.05;

    const double multipliers[] = {0.5, 1.0, 1.5, 2.0, 3.0};
    double in_capacity_urgent_p99 = 0.0;
    double worst_urgent_p99 = 0.0;
    bool shed_monotone = true;
    bool urgent_protected = true;
    double prev_shed_rate = 0.0;
    for (double mult : multipliers) {
        tc.offered_rps = capacity_rps * mult;
        const RequestGenerator gen(tc, setup.targets);
        const LoadReport report = service.execute(gen.generate());

        if (mult == multipliers[0])
            in_capacity_urgent_p99 = report.admitted_urgent_p99_ns;
        worst_urgent_p99 = std::max(worst_urgent_p99,
                                    report.admitted_urgent_p99_ns);
        // "Rises smoothly": tolerate Poisson noise of a couple
        // percent between adjacent points, never a real drop.
        shed_monotone =
            shed_monotone && report.shed_rate >= prev_shed_rate - 0.02;
        prev_shed_rate = report.shed_rate;
        const uint64_t urgent_total =
            report.by_kind[static_cast<int>(
                RequestKind::Authenticate)];
        const uint64_t best_effort_total =
            report.requests - urgent_total;
        const double urgent_shed_frac =
            urgent_total ? static_cast<double>(report.shed_urgent) /
                               static_cast<double>(urgent_total)
                         : 0.0;
        const double best_effort_shed_frac =
            best_effort_total
                ? static_cast<double>(report.shed_best_effort) /
                      static_cast<double>(best_effort_total)
                : 0.0;
        // Strictly "never shed before": allow equality (both 0 in
        // capacity, both saturated deep into overload).
        urgent_protected = urgent_protected &&
                           urgent_shed_frac <=
                               best_effort_shed_frac + 1e-9;

        emitAdmissionRow(ctx, "offered-load sweep",
                         ResultRow()
                             .add("offered_over_capacity", mult)
                             .add("offered_krps",
                                  tc.offered_rps / 1e3),
                         report);
    }

    ctx.row("overload summary",
            ResultRow()
                .add("capacity_krps", capacity_rps / 1e3)
                .add("in_capacity_urgent_p99_us",
                     in_capacity_urgent_p99 / 1e3)
                .add("worst_urgent_p99_us", worst_urgent_p99 / 1e3)
                .add("p99_bounded",
                     worst_urgent_p99 <=
                         2.0 * in_capacity_urgent_p99)
                .add("shed_monotone", shed_monotone)
                .add("urgent_protected", urgent_protected));
    ctx.note("Token-bucket admission at the modeled capacity with "
             "an urgent reserve: past saturation the excess arrival "
             "rate is shed (best-effort first), and deadline-based "
             "drop keeps the admitted urgent p99 within the class "
             "deadline of its in-capacity value.");
}

/** Per-region presets of the multi-region storm (cycled by index). */
struct RegionPreset
{
    const char *name;
    double zipf;
    double capacity_multiplier; //!< Offered load vs modeled capacity.
    double weight_auth, weight_reenroll, weight_trng, weight_dealloc;
    const char *selector; //!< "modulo" | "hash" | "rebalanced".
};

constexpr RegionPreset kRegionPresets[] = {
    // In-capacity interactive region: hash placement spreads its
    // mild skew.
    {"americas", 0.6, 0.7, 0.85, 0.05, 0.05, 0.05, "hash"},
    // Near-capacity region with heavy skew: rebalanced placement
    // packs its hot head across shards.
    {"europe", 1.1, 1.0, 0.7, 0.1, 0.1, 0.1, "rebalanced"},
    // Overloaded maintenance-heavy region: sheds best-effort first.
    {"asia", 0.9, 2.0, 0.5, 0.15, 0.2, 0.15, "modulo"},
};
constexpr size_t kRegionPresetCount =
    sizeof(kRegionPresets) / sizeof(kRegionPresets[0]);

/**
 * Multi-region serving storm: --regions fleets (own population
 * seed, Zipf skew, request mix, arrival rate and shard-placement
 * policy) share one process, one engine pass, and one admission
 * model per region; reported per region and as the fleet-global
 * roll-up.
 */
void
runFleetRegionServing(RunContext &ctx)
{
    if (ctx.options().store_mmap)
        fatal("fleet: --store-mmap is supported by fleet_scaling "
              "(regions enroll their own in-memory stores)");
    const int region_count = ctx.options().regionsOr(3);
    const int threads = ctx.options().threads;

    // Each region's capacity comes from the shared cost model (all
    // regions serve the same DRAM grade), measured once on a probe.
    const double derived_capacity = [&] {
        FleetConfig fc = fleetConfigFor(ctx, 1);
        DeviceFleet probe_fleet(fc);
        EnrollmentStore probe_store(fc.population_seed);
        return AuthService(probe_fleet, probe_store,
                           authConfigFor(ctx))
            .modeledCapacityRps();
    }();
    const double capacity_rps =
        ctx.options().shedOr(derived_capacity);

    std::vector<RegionConfig> configs;
    std::vector<std::string> selector_names;
    for (int r = 0; r < region_count; ++r) {
        const RegionPreset &preset =
            kRegionPresets[static_cast<size_t>(r) %
                           kRegionPresetCount];
        RegionConfig rc;
        rc.name = std::string(preset.name) +
                  (static_cast<size_t>(r) < kRegionPresetCount
                       ? ""
                       : "_" + std::to_string(r));
        rc.fleet = fleetConfigFor(
            ctx, static_cast<int64_t>(ctx.scaled(300)));
        // Distinct populations: regions never share device identity.
        rc.fleet.population_seed +=
            1000ull * static_cast<uint64_t>(r + 1);
        rc.fleet.shards = ctx.options().shardsOr(2);
        rc.traffic.traffic_seed =
            paperSeed(ctx.options(), 53) +
            static_cast<uint64_t>(r);
        rc.traffic.requests =
            static_cast<uint64_t>(ctx.options().requestsOr(
                static_cast<int64_t>(ctx.scaled(4000))));
        rc.traffic.zipf = preset.zipf;
        rc.traffic.weight_auth = preset.weight_auth;
        rc.traffic.weight_reenroll = preset.weight_reenroll;
        rc.traffic.weight_trng = preset.weight_trng;
        rc.traffic.weight_dealloc = preset.weight_dealloc;
        rc.traffic.offered_rps =
            capacity_rps * preset.capacity_multiplier;
        rc.auth = authConfigFor(ctx);
        rc.auth.admission.capacity_rps = capacity_rps;

        if (std::string(preset.selector) == "rebalanced") {
            // The placement is trained on the region's own stream -
            // a pure function of its traffic config, so the serve()
            // pass regenerates the identical stream.
            RequestGenerator gen(rc.traffic, rc.fleet.devices);
            rc.fleet.shard_selector = rebalancedSelector(
                gen.generate(), rc.fleet.shards,
                ShardSelector::create("modulo"));
        } else {
            rc.fleet.shard_selector =
                ShardSelector::create(preset.selector);
        }
        selector_names.push_back(preset.selector);
        configs.push_back(std::move(rc));
    }

    RegionSet set(std::move(configs));
    set.enrollAll(threads);
    const RegionSet::Result result = set.serve(threads);

    for (size_t r = 0; r < result.reports.size(); ++r) {
        const LoadReport &report = result.reports[r];
        const uint64_t auth_known =
            report.accepted + report.rejected;
        emitAdmissionRow(
            ctx, "per-region serving",
            ResultRow()
                .add("region", result.names[r])
                .add("selector", selector_names[r])
                .add("offered_krps",
                     set.config(r).traffic.offered_rps / 1e3)
                .add("accepted", report.accepted)
                .add("planned_cache_hit_rate",
                     auth_known
                         ? static_cast<double>(
                               report.planned_cache_hits) /
                               static_cast<double>(auth_known)
                         : 0.0),
            report);
    }

    const GlobalReport &g = result.global;
    ctx.row("global roll-up",
            ResultRow()
                .add("regions",
                     static_cast<uint64_t>(result.reports.size()))
                .add("requests", g.requests)
                .add("admitted", g.admitted)
                .add("shed", g.shed)
                .add("shed_urgent", g.shed_urgent)
                .add("shed_rate", g.shed_rate)
                .add("latency_p50_us", g.latency_p50_ns / 1e3)
                .add("latency_p95_us", g.latency_p95_ns / 1e3)
                .add("latency_p99_us", g.latency_p99_ns / 1e3)
                .add("energy_mj", g.total_energy_nj / 1e6)
                .addTiming("wall_s", g.wall_seconds));
    ctx.note("One engine drains every region's shard batches, so "
             "worker threads are shared across regions. Each "
             "region's rows are byte-identical to serving it alone; "
             "the global roll-up merges admitted latencies across "
             "regions in region order.");
}

/**
 * QoS ablation: priority-blind vs priority-aware vs REFpb scheduling
 * under fleet-storm traffic, in two complementary halves.
 *
 * Half 1 replays the fleet_mixed request storm (shards pinned to 1
 * so the replay latency is comparable across variants and
 * independent of --shards/--threads) and reports the replay-measured
 * authenticate latency percentiles per scheduler variant.
 *
 * Half 2 drives the canonical mixed-priority storm straight at one
 * DramSystem per variant: background write storms and best-effort
 * read sweeps against one authenticate-class urgent read per wave
 * (the same priority tag AuthService stamps). This half exposes the
 * write-drain jumping path the fleet replay cannot reach (footprint
 * replays carry no writes) and the per-origin roll-ups.
 *
 * The priority-blind baseline is the batched preset with the serving
 * preset's refresh settings matched (refresh=auto, postpone 4), so
 * the serving-vs-blind delta isolates priority scheduling instead of
 * mixing in refresh-off-vs-on.
 */
void
runAblationQos(RunContext &ctx)
{
    struct Variant
    {
        const char *name;
        const char *spec;
    };
    const Variant variants[] = {
        {"batched_blind", "batched:refresh=auto,refresh_postpone=4"},
        {"serving", "serving"},
        {"serving_refpb", "serving:refresh=per-bank"},
    };

    // --- Half 1: fleet_mixed storm, replayed per variant. ---------
    const TrafficConfig tc = mixedTraffic(ctx, ctx.scaled(6000));
    std::string store_snapshot;
    FleetConfig proto_config;
    {
        TrafficSetup setup = setupEnrolledFleet(
            ctx, static_cast<int64_t>(ctx.scaled(400)));
        DeviceFleet fleet(setup.fleet_config);
        AuthService service(fleet, setup.store, authConfigFor(ctx));
        finishSetup(setup, service);
        proto_config = setup.fleet_config;
        std::ostringstream bytes;
        setup.store.saveBinary(bytes);
        store_snapshot = bytes.str();
    }
    proto_config.shards = 1;

    double fleet_p99_blind_us = 0.0;
    double fleet_p99_serving_us = 0.0;
    for (const Variant &v : variants) {
        FleetConfig fc = proto_config;
        fc.dram.scheduler = SchedulerPolicy::parse(v.spec);
        std::istringstream bytes(store_snapshot);
        EnrollmentStore store = EnrollmentStore::loadBinary(bytes);
        const std::vector<uint64_t> targets = store.deviceIds();
        DeviceFleet fleet(fc);
        AuthService service(fleet, store, authConfigFor(ctx));
        const RequestGenerator gen(tc, targets);
        const LoadReport report = service.execute(gen.generate());

        const double p99_us = report.auth_replay_p99_ns / 1e3;
        if (std::string(v.name) == "batched_blind")
            fleet_p99_blind_us = p99_us;
        else if (std::string(v.name) == "serving")
            fleet_p99_serving_us = p99_us;
        ctx.row("fleet storm auth replay latency",
                ResultRow()
                    .add("sched", v.name)
                    .add("auth_replayed", report.auth_replayed)
                    .add("auth_mean_us",
                         report.auth_replay_mean_ns / 1e3)
                    .add("auth_p50_us", report.auth_replay_p50_ns / 1e3)
                    .add("auth_p99_us", p99_us)
                    .add("auth_max_us", report.auth_replay_max_ns / 1e3)
                    .add("makespan_ms", report.makespanNs() / 1e6)
                    .addTiming("wall_s", report.wall_seconds));
    }

    // --- Half 2: controller-level mixed-priority storm. -----------
    const int64_t waves = static_cast<int64_t>(ctx.scaled(300));
    double storm_p99_blind_us = 0.0;
    double storm_p99_serving_us = 0.0;
    for (const Variant &v : variants) {
        DramConfig cfg =
            moduleFor(ctx.options(), /*capacity_mb=*/64,
                      /*channels=*/1);
        cfg.scheduler = SchedulerPolicy::parse(v.spec);
        DramSystem sys(cfg);
        std::vector<Cycle> urgent_lat;
        std::vector<Cycle> bg_lat;
        runPriorityStormWorkload(sys, waves, /*background_writes=*/48,
                                 /*background_reads=*/12, &urgent_lat,
                                 &bg_lat);

        std::vector<double> urgent_us;
        urgent_us.reserve(urgent_lat.size());
        for (Cycle c : urgent_lat)
            urgent_us.push_back(cfg.cyclesToNs(c) / 1e3);
        std::vector<double> bg_us;
        bg_us.reserve(bg_lat.size());
        for (Cycle c : bg_lat)
            bg_us.push_back(cfg.cyclesToNs(c) / 1e3);

        const double p99_us =
            urgent_us.empty() ? 0.0 : percentile(urgent_us, 99.0);
        if (std::string(v.name) == "batched_blind")
            storm_p99_blind_us = p99_us;
        else if (std::string(v.name) == "serving")
            storm_p99_serving_us = p99_us;

        const CommandCounts counts = sys.totalCounts();
        ctx.row("priority storm (urgent=authenticate class)",
                ResultRow()
                    .add("sched", v.name)
                    .add("waves", static_cast<uint64_t>(waves))
                    .add("urgent_p50_us",
                         urgent_us.empty()
                             ? 0.0
                             : percentile(urgent_us, 50.0))
                    .add("urgent_p99_us", p99_us)
                    .add("bg_p99_us",
                         bg_us.empty() ? 0.0
                                       : percentile(bg_us, 99.0))
                    .add("ref", counts.ref)
                    .add("refpb", counts.refpb)
                    .add("refresh_overlap_kcycles",
                         static_cast<double>(
                             counts.refresh_overlap_cycles) /
                             1e3));

        // Per-origin roll-ups straight off the DramSystem: origin 1
        // is the authenticate-class urgent stream, origin 0 the
        // background storm.
        for (const OriginCounts &oc : sys.perOriginCounts()) {
            ctx.row("per-origin accounting",
                    ResultRow()
                        .add("sched", v.name)
                        .add("origin", oc.origin)
                        .add("reads", oc.reads)
                        .add("writes", oc.writes)
                        .add("rowops", oc.rowops)
                        .add("read_mean_us",
                             oc.reads
                                 ? cfg.cyclesToNs(
                                       static_cast<Cycle>(
                                           oc.read_latency_cycles /
                                           oc.reads)) /
                                       1e3
                                 : 0.0)
                        .add("read_max_us",
                             cfg.cyclesToNs(oc.max_read_latency) /
                                 1e3));
        }
    }

    const auto improvement = [](double blind, double with) {
        return blind > 0.0 ? (blind - with) / blind * 100.0 : 0.0;
    };
    ctx.row("qos improvement (serving vs priority-blind)",
            ResultRow()
                .add("storm_p99_blind_us", storm_p99_blind_us)
                .add("storm_p99_serving_us", storm_p99_serving_us)
                .add("storm_p99_improvement_pct",
                     improvement(storm_p99_blind_us,
                                 storm_p99_serving_us))
                .add("fleet_p99_blind_us", fleet_p99_blind_us)
                .add("fleet_p99_serving_us", fleet_p99_serving_us)
                .add("fleet_p99_improvement_pct",
                     improvement(fleet_p99_blind_us,
                                 fleet_p99_serving_us)));
    ctx.note("The serving preset's priority scheduling pulls "
             "authenticate-class reads ahead of best-effort traffic "
             "in the FR-FCFS window and between write-drain batches; "
             "the 16-bypass aging rule bounds background starvation. "
             "The REFpb variant trades the all-bank REF lockout for "
             "per-bank refreshes that overlap with sibling-bank "
             "work.");
}

} // namespace

void
registerFleetScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "fleet_enroll",
        "Fleet: enroll a sharded device population into the "
        "golden-signature EnrollmentStore (persist with --store)",
        runFleetEnroll));
    registry.add(makeScenario(
        "fleet_auth_load",
        "Fleet: request-level authentication load with impostor "
        "probes and modeled p50/p95/p99 service latency",
        runFleetAuthLoad));
    registry.add(makeScenario(
        "fleet_mixed",
        "Fleet: mixed authenticate/re-enroll/TRNG/secure-dealloc "
        "traffic over a Zipfian device-popularity law",
        runFleetMixed));
    registry.add(makeScenario(
        "fleet_scaling",
        "Fleet: shard-count sweep of the replayed DRAM makespan "
        "(--shards above 8 extends the sweep)",
        runFleetScaling));
    registry.add(makeScenario(
        "fleet_overload",
        "Fleet: open-loop arrival sweep past the admission capacity "
        "- shed rate rises smoothly while the admitted urgent p99 "
        "stays bounded (CI-gated)",
        runFleetOverload));
    registry.add(makeScenario(
        "fleet_region_serving",
        "Fleet: multi-region mixed storm (per-region populations, "
        "skew, arrival rates, shard placement) on one shared engine "
        "with per-region and global percentiles",
        runFleetRegionServing));
    registry.add(makeScenario(
        "ablation_qos",
        "QoS: priority-blind vs serving vs REFpb scheduling under a "
        "fleet_mixed storm, with per-origin accounting",
        runAblationQos));
}

} // namespace codic
