/**
 * @file
 * Extension and ablation scenarios: per-row reduced activation
 * latency (Section 5.3.2), CODIC-enabled PIM (Section 5.3.3),
 * bank-level parallelism in self-destruction (Section 5.2.2), and
 * the CampaignEngine thread-count sweep (repository ablation).
 */

#include "scenario/builtin.h"

#include <algorithm>
#include <chrono>

#include "codic/variant.h"
#include "common/rng.h"
#include "dram/channel.h"
#include "optim/adaptive_act.h"
#include "pim/bitwise.h"
#include "puf/experiments.h"
#include "puf/sig_puf.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"

namespace codic {

namespace {

void
runAdaptiveAct(RunContext &ctx)
{
    const CircuitParams params = CircuitParams::ddr3();

    for (double rel : {-0.60, -0.30, 0.0, 0.25}) {
        VariationDraw draw;
        draw.access_rel = rel;
        const double ready = columnReadyNs(params, draw);
        ctx.row("circuit characterization: column-ready time vs "
                "device strength",
                ResultRow()
                    .add("access_conductance_rel", rel)
                    .add("column_ready_ns", ready)
                    .add("faster_than_trcd_frac",
                         1.0 - ready /
                                   RowReadyProfile::kNominalReadyNs));
    }

    RowReadyProfile profile(params, paperSeed(ctx.options(), 42));
    const auto s = profile.summarize(8, 65536);
    ctx.row("device profile (characterized deciles, 1 ns guardband)",
            ResultRow()
                .add("mean_ready_ns", s.mean_ready_ns)
                .add("min_ready_ns", s.min_ready_ns)
                .add("max_ready_ns", s.max_ready_ns)
                .add("frac_fast", s.frac_fast));

    const int accesses = static_cast<int>(ctx.scaled(2000));
    const auto r = evaluateAdaptiveActivation(
        params, paperSeed(ctx.options(), 42), accesses,
        paperSeed(ctx.options(), 11));
    ctx.row("system effect: row-miss read latency (ACT->data)",
            ResultRow()
                .add("activations", accesses)
                .add("baseline_avg_read_ns", r.baseline_avg_read_ns)
                .add("adaptive_avg_read_ns", r.adaptive_avg_read_ns)
                .add("speedup", r.speedup));
    ctx.note("With CODIC the controller knows the internal wl->sense "
             "state and can count data-ready from the characterized "
             "crossing time, safely per row - the optimization class "
             "fixed internal timings forbid (Section 5.3.2).");
}

RowPayload
randomRow(uint64_t seed)
{
    Rng rng(seed);
    RowPayload row(AmbitUnit::kWordsPerRow);
    for (auto &w : row)
        w = rng.next64();
    return row;
}

void
runPim(RunContext &ctx)
{
    const RowPayload a = randomRow(paperSeed(ctx.options(), 1));
    const RowPayload b = randomRow(paperSeed(ctx.options(), 2));
    RowPayload expect_and(AmbitUnit::kWordsPerRow);
    for (size_t i = 0; i < a.size(); ++i)
        expect_and[i] = a[i] & b[i];

    struct Case
    {
        const char *name;
        PimMode mode;
        double fraction;
    };
    for (const auto &[name, mode, fraction] :
         {Case{"CODIC (explicit internal timings)", PimMode::Codic,
               0.0},
          Case{"ComputeDRAM, good chip", PimMode::ComputeDram, 0.15},
          Case{"ComputeDRAM, typical chip", PimMode::ComputeDram, 0.4},
          Case{"ComputeDRAM, bad chip", PimMode::ComputeDram, 0.8}}) {
        DramChannel ch(DramConfig::ddr3_1600(64));
        AmbitUnit unit(ch, 0, mode, fraction);
        Cycle t = unit.writeRow(10, a, 0);
        t = unit.writeRow(11, b, t);
        unit.bitwiseAnd(10, 11, 12, t);
        ctx.row("reliability: CODIC timing control vs ComputeDRAM "
                "timing violations",
                ResultRow()
                    .add("trigger", name)
                    .add("unreliable_cells_frac", fraction)
                    .add("and_bit_error_rate",
                         bitErrorRate(unit.readRow(12), expect_and)));
    }
    ctx.note("Paper Section 1: with ComputeDRAM only a small "
             "fraction of the cells can reliably perform the "
             "intended computations; CODIC makes the mechanism "
             "exact.");

    DramChannel ch(DramConfig::ddr3_1600(64));
    AmbitUnit unit(ch, 0);
    Cycle t = unit.writeRow(10, a, 0);
    t = unit.writeRow(11, b, t);
    const Cycle start = t;
    const Cycle done = unit.bitwiseAnd(10, 11, 12, start);
    const double in_dram_ns = ch.config().cyclesToNs(done - start);
    // Column interface: read a, read b, write result = 3 row passes.
    const double burst_ns = 5.0;
    const double interface_ns = 3.0 * 128.0 * burst_ns;
    ctx.row("throughput: one 8 KB AND",
            ResultRow()
                .add("path", "in-DRAM (4 AAPs + triple activate)")
                .add("latency_ns", in_dram_ns)
                .add("effective_gbps", 8192.0 / in_dram_ns));
    ctx.row("throughput: one 8 KB AND",
            ResultRow()
                .add("path", "column interface (RD a, RD b, WR out)")
                .add("latency_ns", interface_ns)
                .add("effective_gbps", 8192.0 / interface_ns));
    ctx.row("in-DRAM advantage",
            ResultRow().add("speedup", interface_ns / in_dram_ns));
}

/** Destroy `rows` rows per bank using only the first `banks` banks. */
double
perRowTimeNs(int banks, int64_t rows)
{
    DramChannel ch(DramConfig::ddr3_1600(64));
    const int det = ch.registerVariant(variants::detZero().schedule);
    Cycle done = 0;
    for (int64_t row = 0; row < rows; ++row) {
        for (int b = 0; b < banks; ++b) {
            Command c;
            c.type = CommandType::Codic;
            c.addr.bank = b;
            c.addr.row = row;
            c.codic_variant = det;
            done = std::max(done, ch.issueAtEarliest(c, 0));
        }
    }
    return ch.config().cyclesToNs(done) /
           static_cast<double>(rows * banks);
}

void
runBankParallelism(RunContext &ctx)
{
    const DramConfig cfg = DramConfig::ddr3_1600(64);
    const auto &t = cfg.timing;
    ctx.row("constraints",
            ResultRow()
                .add("trc_ns", cfg.cyclesToNs(t.trc))
                .add("trrd_ns", cfg.cyclesToNs(t.trrd))
                .add("tfaw_over_4_ns", cfg.cyclesToNs(t.tfaw) / 4.0));

    const int64_t rows =
        static_cast<int64_t>(ctx.scaled(512));
    const double serial = perRowTimeNs(1, rows);
    for (int banks : {1, 2, 4, 8}) {
        const double per_row = perRowTimeNs(banks, rows);
        const char *binding;
        if (banks == 1)
            binding = "tRC (bank cycle)";
        else if (per_row > cfg.cyclesToNs(t.tfaw) / 4.0 + 0.5)
            binding = "tRC / tRRD";
        else
            binding = "tFAW";
        ctx.row("bank-level parallelism in CODIC self-destruction",
                ResultRow()
                    .add("banks", banks)
                    .add("per_row_ns", per_row)
                    .add("speedup_vs_1_bank", serial / per_row)
                    .add("binding_constraint", binding));
    }
    ctx.note("Parallelizing across banks (paper Section 5.2.2) buys "
             "~4x; beyond 4-5 banks the four-activate window (tFAW) "
             "caps throughput.");
}

void
runEngineParallelism(RunContext &ctx)
{
    const auto chips = buildPaperPopulation();
    const auto all = chipPtrs(chips);
    const CodicSigPuf sig;

    JaccardCampaignConfig cfg;
    cfg.run.seed = paperSeed(ctx.options(), 7);
    cfg.pairs = ctx.scaled(2000);

    auto timed = [&](int threads, JaccardCampaignResult *out) {
        cfg.run.threads = threads;
        const auto t0 = std::chrono::steady_clock::now();
        *out = runJaccardCampaign(sig, all, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::milli>(t1 - t0)
            .count();
    };

    // Sweep powers of two over the fixed {1,2,4,8} range by default,
    // so structured output is machine-independent; an explicit
    // --threads above 8 extends the top of the sweep (for this
    // scenario the thread count is an input parameter of the study -
    // the one documented exception to the "output independent of
    // --threads" rule). Auto-detect (threads == 0) deliberately does
    // NOT extend the sweep.
    const int max_threads = std::max(8, ctx.options().threads);
    std::vector<int> counts = {1};
    for (int c = 2; c <= max_threads; c *= 2)
        counts.push_back(c);
    if (counts.back() != max_threads)
        counts.push_back(max_threads);

    JaccardCampaignResult reference;
    const double ms1 = timed(1, &reference);
    bool all_identical = true;
    for (int threads : counts) {
        JaccardCampaignResult result;
        const double ms =
            threads == 1 ? ms1 : timed(threads, &result);
        if (threads == 1)
            result = reference;
        const bool identical = result.intra == reference.intra &&
                               result.inter == reference.inter;
        all_identical = all_identical && identical;
        ctx.row("Fig. 5 campaign vs CampaignEngine threads",
                ResultRow()
                    .add("threads", threads)
                    .add("pairs", cfg.pairs)
                    .add("bit_identical", identical)
                    .addTiming("wall_ms", ms)
                    .addTiming("speedup", ms1 / ms));
    }
    ctx.row("determinism summary",
            ResultRow()
                .add("max_threads", max_threads)
                .add("all_thread_counts_bit_identical",
                     all_identical));
    ctx.note("Speedup tracks the physical cores of this host; "
             "results are bit-identical at every thread count by the "
             "engine's determinism contract (per-task Rng::fork "
             "streams derived before scheduling).");
}

} // namespace

void
registerExtScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "ext_adaptive_act",
        "Section 5.3.2 extension: per-row reduced activation latency "
        "from CODIC-characterized device strength",
        runAdaptiveAct));
    registry.add(makeScenario(
        "ext_pim",
        "Section 5.3.3 extension: CODIC-enabled in-DRAM bulk bitwise "
        "operations - reliability and throughput",
        runPim));
    registry.add(makeScenario(
        "ablation_bank_parallelism",
        "Ablation: bank-level parallelism in CODIC self-destruction "
        "against the tRRD/tFAW constraints",
        runBankParallelism));
    registry.add(makeScenario(
        "ablation_engine_parallelism",
        "Ablation: CampaignEngine thread-count sweep of the Fig. 5 "
        "campaign with a bit-identical-result check",
        runEngineParallelism));
}

} // namespace codic
