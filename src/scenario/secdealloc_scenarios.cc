/**
 * @file
 * Secure-deallocation scenarios (paper Appendix A): single-core
 * speedup/energy savings over software zeroing (Fig. 8) and the
 * 4-core workload mixes (Fig. 9).
 */

#include "scenario/builtin.h"

#include <algorithm>

#include "common/stats.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"
#include "secdealloc/evaluate.h"

namespace codic {

namespace {

DeallocEvalConfig
evalConfig(const RunContext &ctx)
{
    DeallocEvalConfig cfg;
    cfg.run.seed = paperSeed(ctx.options(), 11);
    cfg.run.threads = ctx.options().threads;
    cfg.dram_capacity_mb = ctx.options().capacityMbOr(2048);
    cfg.dram_channels = ctx.options().channelsOr(1);
    return cfg;
}

ResultRow
comparisonRow(const BenchmarkComparison &c)
{
    return ResultRow()
        .add("name", c.name)
        .add("lisa_speedup", c.lisa_speedup)
        .add("rowclone_speedup", c.rowclone_speedup)
        .add("codic_speedup", c.codic_speedup)
        .add("lisa_energy", c.lisa_energy)
        .add("rowclone_energy", c.rowclone_energy)
        .add("codic_energy", c.codic_energy);
}

void
runFig8(RunContext &ctx)
{
    const DeallocEvalConfig cfg = evalConfig(ctx);
    auto names = allocationIntensiveBenchmarks();
    names.resize(std::min(names.size(),
                          ctx.scaled(names.size())));

    double max_sp = 0.0;
    double max_en = 0.0;
    for (const auto &c : compareSingleCoreAll(names, cfg)) {
        ctx.row("single-core speedup and energy savings vs software "
                "zeroing",
                comparisonRow(c));
        max_sp = std::max(max_sp, c.codic_speedup);
        max_en = std::max(max_en, c.codic_energy);
    }
    ctx.row("summary",
            ResultRow()
                .add("max_codic_speedup", max_sp)
                .add("max_codic_energy_savings", max_en));
    ctx.note("Paper: up to 21% speedup and 34% DRAM energy savings; "
             "CODIC performs at least as well as LISA-clone and "
             "RowClone for all workloads (observation 2).");
}

void
runFig9(RunContext &ctx)
{
    const DeallocEvalConfig cfg = evalConfig(ctx);

    auto mixes = representativeMixes(paperSeed(ctx.options(), 77));
    mixes.resize(std::min(mixes.size(),
                          ctx.scaled(mixes.size())));
    for (const auto &c : compareMultiCoreAll(mixes, cfg)) {
        ctx.row("4-core mixes: speedup and energy savings vs "
                "software zeroing",
                comparisonRow(c));
    }

    // The paper averages 50 random mixes of two intensive and two
    // background benchmarks.
    const size_t random_count = ctx.scaled(50);
    RunningStats sp_lisa, sp_rc, sp_codic;
    RunningStats en_lisa, en_rc, en_codic;
    for (const auto &c : compareMultiCoreAll(
             randomMixes(random_count, paperSeed(ctx.options(), 123)),
             cfg)) {
        sp_lisa.add(c.lisa_speedup);
        sp_rc.add(c.rowclone_speedup);
        sp_codic.add(c.codic_speedup);
        en_lisa.add(c.lisa_energy);
        en_rc.add(c.rowclone_energy);
        en_codic.add(c.codic_energy);
    }
    ctx.row("average over random mixes",
            ResultRow()
                .add("mixes", random_count)
                .add("lisa_speedup", sp_lisa.mean())
                .add("rowclone_speedup", sp_rc.mean())
                .add("codic_speedup", sp_codic.mean())
                .add("lisa_energy", en_lisa.mean())
                .add("rowclone_energy", en_rc.mean())
                .add("codic_energy", en_codic.mean()));
    ctx.note("Paper observations reproduced: hardware approaches "
             "beat software for every mix, and CODIC performs at "
             "least as well as LISA-clone and RowClone.");
}

} // namespace

void
registerSecdeallocScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "secdealloc_fig8",
        "Fig. 8: single-core secure-deallocation speedup and DRAM "
        "energy savings vs software zeroing",
        runFig8));
    registry.add(makeScenario(
        "secdealloc_fig9",
        "Fig. 9: 4-core mix secure-deallocation speedup and energy "
        "savings vs software zeroing",
        runFig9));
}

} // namespace codic
