/**
 * @file
 * Randomness scenarios: the CODIC TRNG extension (Section 5.3.1)
 * and the NIST SP 800-22 battery on CODIC-sig response streams
 * (Table 10, Appendix B).
 */

#include "scenario/builtin.h"

#include "common/rng.h"
#include "nist/extractor.h"
#include "nist/tests.h"
#include "puf/sig_puf.h"
#include "puf/stream.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"
#include "trng/trng.h"

namespace codic {

namespace {

void
emitNistRows(RunContext &ctx, const std::string &section,
             const std::vector<NistResult> &results)
{
    int passed = 0;
    int applicable = 0;
    for (const auto &r : results) {
        ctx.row(section, ResultRow()
                             .add("test", r.name)
                             .add("applicable", r.applicable)
                             .add("p_value", r.p_value)
                             .add("pass", r.pass()));
        if (r.applicable) {
            ++applicable;
            if (r.pass())
                ++passed;
        }
    }
    ctx.row(section + " summary", ResultRow()
                                      .add("passed", passed)
                                      .add("applicable", applicable));
}

void
runTrng(RunContext &ctx)
{
    for (double window : {0.5, 1.0, 2.0}) {
        TrngConfig cfg;
        cfg.run.seed = paperSeed(ctx.options(), 1);
        cfg.metastable_window = window;
        CodicTrng trng(cfg);
        ctx.row("metastable-window sweep",
                ResultRow()
                    .add("window_x_noise_rms", window)
                    .add("sources_per_8kb", trng.sources().size())
                    .add("raw_mbps",
                         trng.rawThroughputBitsPerSec() / 1e6)
                    .add("whitened_mbps",
                         trng.whitenedThroughputBitsPerSec() / 1e6));
    }

    TrngConfig cfg;
    cfg.run.seed = paperSeed(ctx.options(), 1);
    CodicTrng trng(cfg);
    Rng noise(paperSeed(ctx.options(), 2026));
    TrngHealthTests health;
    const size_t bits = ctx.scaled(1 << 20);
    const auto stream = trng.harvest(bits, noise, &health);
    ctx.row("SP 800-90B continuous health tests",
            ResultRow()
                .add("raw_bits_observed", health.observed())
                .add("failed", health.failed()));
    emitNistRows(ctx, "NIST battery on whitened TRNG output",
                 runNistSuite(stream));
    ctx.note("Contrast with D-RaNGe-class TRNGs (Section 5.3.1): "
             "those trigger failures by violating DDRx timings "
             "without knowing the internal mechanism; CODIC pins the "
             "mechanism (SA metastability at the trip point) and "
             "harvests it with one command per sample.");
}

void
runTable10(RunContext &ctx)
{
    const auto chips = buildPaperPopulation();
    const auto all = chipPtrs(chips);
    const CodicSigPuf sig;

    // The paper uses 250 KB (2 Mb) whitened streams; Von Neumann
    // yields ~1/4 of the raw bits, so gather ~8.2 Mb of raw response
    // address bits.
    const size_t raw_bits = ctx.scaled(8400000);
    const auto raw = buildResponseBitStream(
        sig, all, raw_bits, paperSeed(ctx.options(), 777));
    const auto white = vonNeumannExtract(raw);
    ctx.row("stream construction",
            ResultRow()
                .add("raw_bits", raw.size())
                .add("raw_ones_fraction", onesFraction(raw))
                .add("whitened_bits", white.size())
                .add("whitened_ones_fraction", onesFraction(white)));

    emitNistRows(ctx, "NIST SP 800-22 results", runNistSuite(white));
    ctx.note("Paper Table 10: all 15 tests pass on the whitened "
             "CODIC-sig response streams.");
}

} // namespace

void
registerTrngScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "trng_characterization",
        "Section 5.3.1 extension: CODIC TRNG source enrollment, "
        "throughput, health tests, and NIST battery",
        runTrng));
    registry.add(makeScenario(
        "trng_table10_nist",
        "Table 10: NIST SP 800-22 suite on whitened CODIC-sig "
        "response streams across all chips",
        runTable10));
}

} // namespace codic
