/**
 * @file
 * Co-simulation and thermal-feedback scenarios (repository
 * extension): the tick-driven TickEngine (sim/engine.h) advancing
 * producers against one DramSystem, with per-bank epoch activity
 * driving the RC thermal model (thermal/thermal_model.h) and
 * temperature feeding back into the chip model each epoch.
 *
 *  - thermal_feedback: activity -> temperature -> PUF flip-rate
 *    closed loop. At idle the per-bank temperatures sit at exactly
 *    the ambient fixed point, so every PUF evaluation is
 *    byte-identical to the paper's static 30 C campaign - the
 *    idle-convergence invariant CI pins. A sustained write storm
 *    heats the stormed bank and the response degrades monotonically
 *    (deterministic nested dropout in the sig-cell model).
 *  - multicore_contention: 2-8 InOrderCores sharing one DramSystem
 *    on the TickEngine, per-core slowdown vs a solo run of the same
 *    trace on a private system.
 *  - thermal_throttling: the storm's injection rate is throttled
 *    when the hottest bank crosses a temperature ceiling
 *    (hysteresis), bounding the peak the unregulated run exceeds.
 *
 * Determinism: the TickEngine is serial and tie-breaks by producer
 * registration order, so every structured row is a pure function of
 * (seed, scale) - independent of --threads by construction.
 */

#include "scenario/builtin.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <vector>

#include "dram/system.h"
#include "puf/puf.h"
#include "puf/retention.h"
#include "puf/sig_puf.h"
#include "scenario/registry.h"
#include "scenario/scenario_util.h"
#include "sim/core.h"
#include "sim/engine.h"
#include "sim/workloads.h"
#include "thermal/epoch_stats.h"
#include "thermal/thermal_model.h"

namespace codic {

namespace {

/** |a \ b|: enrolled cells missing from the query response. */
size_t
droppedCells(const Response &enrolled, const Response &query)
{
    std::vector<uint32_t> out;
    std::set_difference(enrolled.cells.begin(), enrolled.cells.end(),
                        query.cells.begin(), query.cells.end(),
                        std::back_inserter(out));
    return out.size();
}

/** Segments of `chip` that land on DRAM bank 0 (the stormed bank). */
std::vector<uint64_t>
bankZeroSegments(const SimulatedChip &chip, size_t count)
{
    std::vector<uint64_t> segs;
    for (uint64_t s = 0; segs.size() < count && s < 512; ++s)
        if (chip.segmentBank(s) == 0)
            segs.push_back(s);
    return segs;
}

/** The population chip with the densest sig flip-cell population. */
const SimulatedChip &
densestChip(const std::vector<SimulatedChip> &chips)
{
    const SimulatedChip *best = &chips.front();
    for (const auto &c : chips)
        if (c.sigFlipFraction() > best->sigFlipFraction())
            best = &c;
    return *best;
}

/** Mean Jaccard and total dropped cells of one epoch's evaluation. */
struct EpochPufSample
{
    double mean_jaccard = 1.0;
    uint64_t dropped = 0;
    uint64_t enrolled = 0;
};

EpochPufSample
evaluateAt(const CodicSigPuf &puf, const SimulatedChip &chip,
           const std::vector<uint64_t> &segments,
           const std::vector<Response> &enrolled, double temp_c)
{
    EpochPufSample sample;
    double jaccard_sum = 0.0;
    for (size_t i = 0; i < segments.size(); ++i) {
        Challenge ch;
        ch.segment_id = segments[i];
        QueryEnv env;
        env.temperature_c = temp_c;
        // Same nonce as enrollment: the only difference between the
        // epoch evaluation and the reference is the temperature, so
        // the response delta is purely the thermal feedback.
        env.nonce = segments[i];
        const Response resp = puf.evaluateFiltered(chip, ch, env);
        jaccard_sum += jaccard(enrolled[i], resp);
        sample.dropped += droppedCells(enrolled[i], resp);
        sample.enrolled += enrolled[i].size();
    }
    sample.mean_jaccard =
        jaccard_sum / static_cast<double>(segments.size());
    return sample;
}

void
runThermalFeedback(RunContext &ctx)
{
    const RunOptions &opts = ctx.options();
    DramConfig cfg =
        moduleFor(opts, opts.capacityMbOr(64), opts.channelsOr(1));
    cfg.scheduler = schedulerFor(opts, "eager");
    DramSystem sys(cfg);

    ThermalConfig tc;
    tc.ambient_c = opts.ambient_c;
    tc.epoch_us = opts.epochUsOr(100.0);
    EpochStats stats(sys);
    ThermalModel model(tc, stats.bankCount());
    const Cycle epoch_cycles = cfg.nsToCycles(tc.epoch_us * 1000.0);
    const double epoch_ns = tc.epoch_us * 1000.0;

    // The PUF under feedback: the densest flip-cell chip of the
    // paper population, enrolled at ambient on segments of the bank
    // the storm will heat.
    const auto chips = buildPaperPopulation(paperSeed(opts, 2021));
    const SimulatedChip &chip = densestChip(chips);
    const CodicSigPuf puf;
    const auto segments =
        bankZeroSegments(chip, std::max<size_t>(2, ctx.scaled(8)));
    std::vector<Response> enrolled;
    for (uint64_t s : segments) {
        Challenge ch;
        ch.segment_id = s;
        QueryEnv env;
        env.temperature_c = tc.ambient_c;
        env.nonce = s;
        enrolled.push_back(puf.evaluateFiltered(chip, ch, env));
    }
    uint64_t enrolled_cells = 0;
    for (const Response &r : enrolled)
        enrolled_cells += r.size();
    ctx.row("static reference (paper campaign conditions)",
            ResultRow()
                .add("ambient_c", tc.ambient_c)
                .add("segments", static_cast<uint64_t>(segments.size()))
                .add("enrolled_cells", enrolled_cells)
                .add("sig_flip_fraction", chip.sigFlipFraction()));

    // The bank the storm targets: channel 0 / rank 0 / bank 0 is
    // activity index 0 in EpochStats order.
    const size_t storm_bank = 0;

    // --- Phase 1: idle epochs. No activity means every bank's
    // steady state IS the ambient, so the closed loop must reproduce
    // the static reference byte-for-byte. ---
    const size_t idle_epochs = std::max<size_t>(3, ctx.scaled(6));
    Cycle now = 0;
    bool idle_identical = true;
    for (size_t e = 0; e < idle_epochs; ++e) {
        now += epoch_cycles;
        model.stepEpoch(stats.endEpoch(now), epoch_ns, cfg.tck_ns);
        const double temp = model.bankTemp(storm_bank);
        const EpochPufSample s =
            evaluateAt(puf, chip, segments, enrolled, temp);
        idle_identical = idle_identical && s.dropped == 0 &&
                         s.mean_jaccard == 1.0;
        ctx.row("idle epochs (must match the static reference)",
                ResultRow()
                    .add("epoch", static_cast<uint64_t>(e))
                    .add("bank_temp_c", temp)
                    .add("mean_jaccard", s.mean_jaccard)
                    .add("dropped_cells", s.dropped)
                    .add("matches_static", s.dropped == 0 &&
                                               s.mean_jaccard == 1.0));
    }
    ctx.note("Idle epochs carry zero activity energy, so the RC "
             "update holds every bank at exactly ambient_c and each "
             "PUF evaluation equals the paper's static campaign "
             "response bit-for-bit.");

    // --- Phase 2: write storm on bank 0 through the TickEngine. ---
    const size_t storm_epochs = std::max<size_t>(4, ctx.scaled(10));
    const Cycle gap = 4; // Saturating row-hit write stream.
    const uint64_t writes =
        static_cast<uint64_t>(storm_epochs) *
        static_cast<uint64_t>(epoch_cycles / gap);
    // One row of bank 0 under RowBankColumn: row-sequential wrap.
    StormSource storm(sys, /*base_addr=*/0,
                      static_cast<uint64_t>(sys.map().rowBytes()),
                      writes, gap, now);
    TickEngine engine(sys);
    engine.add(&storm);

    std::vector<double> temps;
    std::vector<double> jaccards;
    uint64_t epoch_index = 0;
    uint64_t last_wr = 0;
    engine.setEpoch(epoch_cycles, [&](Cycle boundary) {
        model.stepEpoch(stats.endEpoch(boundary), epoch_ns,
                        cfg.tck_ns);
        const double temp = model.bankTemp(storm_bank);
        const EpochPufSample s =
            evaluateAt(puf, chip, segments, enrolled, temp);
        const uint64_t wr = sys.totalCounts().wr;
        temps.push_back(temp);
        jaccards.push_back(s.mean_jaccard);
        ctx.row("write-storm epochs (temperature -> flip response)",
                ResultRow()
                    .add("epoch", epoch_index++)
                    .add("bank_temp_c", temp)
                    .add("delta_t_c", temp - tc.ambient_c)
                    .add("epoch_writes", wr - last_wr)
                    .add("mean_jaccard", s.mean_jaccard)
                    .add("dropped_cells", s.dropped));
        last_wr = wr;
    });
    engine.run();

    bool temps_monotone = true;
    bool flips_monotone = true;
    for (size_t i = 1; i < temps.size(); ++i) {
        // The closing partial epoch may cool; require monotonicity
        // over the full-length heating epochs.
        if (i + 1 < temps.size() && temps[i] < temps[i - 1])
            temps_monotone = false;
        if (i + 1 < jaccards.size() && jaccards[i] > jaccards[i - 1])
            flips_monotone = false;
    }
    const double peak = *std::max_element(temps.begin(), temps.end());
    const double final_jaccard =
        *std::min_element(jaccards.begin(), jaccards.end());

    // Retention feedback: the same peak temperature accelerates the
    // refresh-free decay of the Section 6.1 methodology, raising its
    // coverage (cells reach Vdd/2 sooner when hot).
    RetentionExperimentConfig rc;
    rc.sample_cells = static_cast<int>(ctx.scaled(4000));
    rc.temperature_c = tc.ambient_c;
    const auto ret_ambient = runRetentionExperiment(chip, rc);
    rc.temperature_c = peak;
    const auto ret_peak = runRetentionExperiment(chip, rc);

    ctx.row("closed-loop summary",
            ResultRow()
                .add("idle_matches_static", idle_identical)
                .add("storm_peak_temp_c", peak)
                .add("temps_monotone", temps_monotone)
                .add("flip_response_monotone", flips_monotone)
                .add("flip_response_nonzero", final_jaccard < 1.0)
                .add("min_mean_jaccard", final_jaccard)
                .add("retention_coverage_ambient",
                     ret_ambient.coverage())
                .add("retention_coverage_peak", ret_peak.coverage()));
    ctx.note("The storm's per-bank ACT/WR energy raises the stormed "
             "bank's RC temperature each epoch; the sig-cell dropout "
             "threshold grows with the delta, so dropped cells nest "
             "across epochs and the flip response is monotone by "
             "construction, while hotter retention decay widens the "
             "48 h methodology's coverage.");
}

void
runMulticoreContention(RunContext &ctx)
{
    const RunOptions &opts = ctx.options();
    DramConfig cfg =
        moduleFor(opts, opts.capacityMbOr(128), opts.channelsOr(1));
    cfg.scheduler = schedulerFor(opts, "eager");

    // Default sweep 2-8 cores; --cores pins a single point (like
    // --devices, an input parameter of the study).
    std::vector<int> core_counts;
    if (opts.cores > 0)
        core_counts.push_back(std::min(opts.cores, 8));
    else
        core_counts = {2, 4, 8};

    // Benchmarks cycle through the Table 8 allocation-intensive set
    // plus background traces (Table 9 methodology).
    std::vector<std::string> pool = allocationIntensiveBenchmarks();
    for (const auto &b : backgroundBenchmarks())
        pool.push_back(b);

    const uint64_t stride =
        static_cast<uint64_t>(cfg.capacityBytes()) / 8;
    for (const int n : core_counts) {
        // Per-core traces: scaled-down phase counts keep the sweep
        // fast while preserving the phased structure.
        std::vector<Workload> traces;
        for (int i = 0; i < n; ++i) {
            WorkloadParams wp = benchmarkParams(
                pool[static_cast<size_t>(i) % pool.size()],
                paperSeed(opts, 777) + static_cast<uint64_t>(i));
            wp.phases = ctx.scaled(120);
            wp.footprint_bytes = std::min<uint64_t>(
                wp.footprint_bytes, 4ull << 20);
            traces.push_back(generateWorkload(wp));
        }

        // Solo baselines: each trace on a private system, same
        // address base as in the shared run (identical mapping).
        std::vector<double> solo_ns(static_cast<size_t>(n), 0.0);
        for (int i = 0; i < n; ++i) {
            DramSystem solo_sys(cfg);
            InOrderCore core(solo_sys, CoreConfig{},
                             static_cast<uint64_t>(i) * stride);
            core.bind(&traces[static_cast<size_t>(i)]);
            solo_ns[static_cast<size_t>(i)] = core.run();
        }

        // Shared run: all cores on one DramSystem, interleaved by
        // the TickEngine in timestamp order.
        DramSystem sys(cfg);
        std::vector<std::unique_ptr<InOrderCore>> cores;
        std::vector<std::unique_ptr<CoreProducer>> producers;
        TickEngine engine(sys);
        for (int i = 0; i < n; ++i) {
            cores.push_back(std::make_unique<InOrderCore>(
                sys, CoreConfig{},
                static_cast<uint64_t>(i) * stride));
            cores.back()->bind(&traces[static_cast<size_t>(i)]);
            producers.push_back(
                std::make_unique<CoreProducer>(*cores.back()));
            engine.add(producers.back().get());
        }
        const Cycle quiescent = engine.run();

        double slowdown_sum = 0.0;
        double makespan_ns = 0.0;
        for (int i = 0; i < n; ++i) {
            const double shared =
                cores[static_cast<size_t>(i)]->timeNs();
            const double solo = solo_ns[static_cast<size_t>(i)];
            const double slowdown = solo > 0.0 ? shared / solo : 1.0;
            slowdown_sum += slowdown;
            makespan_ns = std::max(makespan_ns, shared);
            ctx.row("per-core slowdown vs solo",
                    ResultRow()
                        .add("cores", n)
                        .add("core", i)
                        .add("benchmark",
                             traces[static_cast<size_t>(i)].name)
                        .add("solo_us", solo / 1e3)
                        .add("shared_us", shared / 1e3)
                        .add("slowdown", slowdown));
        }
        ctx.row("contention summary",
                ResultRow()
                    .add("cores", n)
                    .add("mean_slowdown",
                         slowdown_sum / static_cast<double>(n))
                    .add("makespan_us", makespan_ns / 1e3)
                    .add("quiescent_us",
                         cfg.cyclesToNs(quiescent) / 1e3)
                    .add("total_commands",
                         sys.totalCounts().total()));
    }
    ctx.note("The TickEngine always steps the core with the earliest "
             "local clock, so N blocking cores interleave over one "
             "FR-FCFS front-end in global-time order; slowdown vs "
             "solo is pure queueing/bank contention (each core keeps "
             "a private address region).");
}

void
runThermalThrottling(RunContext &ctx)
{
    const RunOptions &opts = ctx.options();
    DramConfig cfg =
        moduleFor(opts, opts.capacityMbOr(64), opts.channelsOr(1));
    cfg.scheduler = schedulerFor(opts, "eager");

    ThermalConfig tc;
    tc.ambient_c = opts.ambient_c;
    tc.epoch_us = opts.epochUsOr(100.0);
    const double ceiling_c = tc.ambient_c + 6.0;
    const double floor_c = tc.ambient_c + 4.0;
    const Cycle epoch_cycles = cfg.nsToCycles(tc.epoch_us * 1000.0);
    const double epoch_ns = tc.epoch_us * 1000.0;
    const Cycle gap = 8;
    const uint64_t writes =
        static_cast<uint64_t>(std::max<size_t>(6, ctx.scaled(12))) *
        static_cast<uint64_t>(epoch_cycles / gap);

    // One storm run: returns the peak temperature; when `throttle`
    // is set, the epoch hook modulates the storm's duty cycle.
    const auto runStorm = [&](ThermalThrottle *throttle,
                              const char *section) {
        DramSystem sys(cfg);
        EpochStats stats(sys);
        ThermalModel model(tc, stats.bankCount());
        StormSource storm(sys, 0,
                          static_cast<uint64_t>(sys.map().rowBytes()),
                          writes, gap);
        TickEngine engine(sys);
        engine.add(&storm);
        double peak = tc.ambient_c;
        uint64_t epoch_index = 0;
        uint64_t last_wr = 0;
        engine.setEpoch(epoch_cycles, [&](Cycle boundary) {
            model.stepEpoch(stats.endEpoch(boundary), epoch_ns,
                            cfg.tck_ns);
            const double temp = model.maxTemp();
            peak = std::max(peak, temp);
            bool throttled = false;
            if (throttle != nullptr) {
                throttled = throttle->update(temp);
                // Throttled epochs inject at 1/8 rate: the drain
                // the scheduler would apply when a bank overheats.
                storm.setGapMultiplier(throttled ? 8 : 1);
            }
            const uint64_t wr = sys.totalCounts().wr;
            ctx.row(section,
                    ResultRow()
                        .add("epoch", epoch_index++)
                        .add("max_temp_c", temp)
                        .add("throttled", throttled)
                        .add("epoch_writes", wr - last_wr));
            last_wr = wr;
        });
        engine.run();
        return peak;
    };

    const double unregulated_peak =
        runStorm(nullptr, "unregulated storm");
    ThermalThrottle throttle(ceiling_c, floor_c);
    const double regulated_peak =
        runStorm(&throttle, "throttled storm");

    ctx.row("throttling summary",
            ResultRow()
                .add("ceiling_c", ceiling_c)
                .add("floor_c", floor_c)
                .add("unregulated_peak_c", unregulated_peak)
                .add("regulated_peak_c", regulated_peak)
                .add("peak_reduced",
                     regulated_peak < unregulated_peak)
                .add("overshoot_c",
                     std::max(0.0, regulated_peak - ceiling_c))
                .add("engagements", throttle.engagements()));
    ctx.note("The throttle engages above the ceiling and releases "
             "below the floor (hysteresis): throttled epochs inject "
             "at 1/8 rate, so the bank cools toward ambient and the "
             "regulated peak stays a bounded overshoot above the "
             "ceiling while the unregulated storm runs past it.");
}

} // namespace

void
registerThermalScenarios(ScenarioRegistry &registry)
{
    registry.add(makeScenario(
        "thermal_feedback",
        "Closed loop: per-bank epoch activity -> RC temperature -> "
        "PUF flip response (idle reproduces the static 30 C paper "
        "numbers)",
        runThermalFeedback));
    registry.add(makeScenario(
        "multicore_contention",
        "2-8 in-order cores share one DramSystem on the TickEngine; "
        "per-core slowdown vs solo",
        runMulticoreContention));
    registry.add(makeScenario(
        "thermal_throttling",
        "Injection throttling when a bank crosses the temperature "
        "ceiling (hysteresis) vs an unregulated storm",
        runThermalThrottling));
}

} // namespace codic
